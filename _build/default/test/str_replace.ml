(** Tiny helper: replace the first occurrence of a substring. *)

let first (s : string) (from_s : string) (to_s : string) : string option =
  let n = String.length s and m = String.length from_s in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = from_s then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i ^ to_s ^ String.sub s (i + m) (n - i - m))
