(** Integration tests over the Table 1 benchmark suite: every benchmark
    verifies with Flux (no loop annotations) and with the Prusti-style
    baseline (with its annotations); seeded off-by-one bugs are caught
    by both tools. *)

module Checker = Flux_check.Checker
module Wp = Flux_wp.Wp
module Workloads = Flux_workloads.Workloads

let flux_ok name =
  Alcotest.test_case (name ^ " verifies with flux") `Slow (fun () ->
      let b = Option.get (Workloads.find name) in
      let r = Checker.check_source b.Workloads.bm_flux in
      if not (Checker.report_ok r) then
        Alcotest.failf "flux rejected %s:@.%s" name
          (String.concat "\n"
             (List.map
                (fun e -> Format.asprintf "%a" Checker.pp_error e)
                (Checker.report_errors r))))

let prusti_ok name =
  Alcotest.test_case (name ^ " verifies with the baseline") `Slow (fun () ->
      let b = Option.get (Workloads.find name) in
      let r = Wp.verify_source b.Workloads.bm_prusti in
      if not (Wp.report_ok r) then
        Alcotest.failf "baseline rejected %s:@.%s" name
          (String.concat "\n"
             (List.map (fun e -> Format.asprintf "%a" Wp.pp_error e)
                (Wp.report_errors r))))

(** Seed a bug by textual replacement and expect rejection. *)
let flux_catches name ~bug:(from_s, to_s) =
  Alcotest.test_case (name ^ " mutation caught by flux") `Slow (fun () ->
      let b = Option.get (Workloads.find name) in
      let src = b.Workloads.bm_flux in
      (match String.index_opt src 'f' with None -> () | Some _ -> ());
      let mutated =
        match Str_replace.first src from_s to_s with
        | Some s -> s
        | None -> Alcotest.failf "mutation pattern %S not found" from_s
      in
      match Checker.check_source mutated with
      | r when not (Checker.report_ok r) -> ()
      | exception Checker.Check_error _ -> ()
      | exception Flux_rtype.Rty.Type_error _ -> ()
      | _ -> Alcotest.failf "flux accepted the %s mutation" name)

let names = List.map (fun b -> b.Workloads.bm_name) Workloads.all

module Extra = Flux_workloads.Wl_extra

let extra_ok (e : Extra.extra) =
  Alcotest.test_case ("extra: " ^ e.Extra.ex_name) `Slow (fun () ->
      let r = Checker.check_source e.Extra.ex_src in
      if not (Checker.report_ok r) then
        Alcotest.failf "flux rejected %s:@.%s" e.Extra.ex_name
          (String.concat "\n"
             (List.map
                (fun er -> Format.asprintf "%a" Checker.pp_error er)
                (Checker.report_errors r))))

let library_ok name src verify =
  Alcotest.test_case name `Slow (fun () -> verify src)

let tests =
  ( "workloads",
    List.map flux_ok names
    @ List.map prusti_ok names
    @ List.map extra_ok Extra.all
    @ [
        library_ok "rmat library verifies (Table 1 row)" Workloads.rmat_flux
          (fun src ->
            let r = Checker.check_source src in
            if not (Checker.report_ok r) then Alcotest.fail "rmat_flux rejected");
        flux_catches "bsearch" ~bug:("while lo < hi", "while lo <= hi");
        flux_catches "dotprod" ~bug:("i < x.len()", "i <= x.len()");
        flux_catches "heapsort" ~bug:("let mut end = len - 1;", "let mut end = len;");
        flux_catches "kmp" ~bug:("t.push(j + 1);", "t.push(j + 2);");
        flux_catches "kmeans" ~bug:("sums.push(init_zeros(n));", "sums.push(init_zeros(k));");
        flux_catches "simplex" ~bug:("let mut j = 1;", "let mut j = 0 - 1;");
        flux_catches "fft" ~bug:("if ip <= n {", "if ip <= n + 1 {");
      ] )
