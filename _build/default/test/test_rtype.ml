(** Tests for refinement types: spec conversion, templates, subtyping
    constraint generation and unpacking. *)

open Flux_smt
open Flux_fixpoint
open Flux_rtype
module Ast = Flux_syntax.Ast
module Parser = Flux_syntax.Parser

let senv : Rty.struct_env = Hashtbl.create 4

let () =
  Hashtbl.replace senv "RMat"
    {
      Rty.si_name = "RMat";
      si_params = [ ("m", Sort.Int); ("n", Sort.Int) ];
      si_fields = [];
      si_invariant = Some Term.(mk_and [ lt (int 0) (var "m"); lt (int 0) (var "n") ]);
    }

let conv src =
  let cx = Specconv.make_cx senv in
  let t = Specconv.conv_rty cx (Parser.parse_rtype src) in
  (t, cx.Specconv.params)

let test_conv_indexed () =
  let t, params = conv "usize<@n>" in
  Alcotest.(check int) "one param" 1 (List.length params);
  match t with
  | Rty.TBase (Rty.BInt Ast.Usize, Rty.Ix [ Term.Var ("n", Sort.Int) ]) -> ()
  | _ -> Alcotest.failf "unexpected %s" (Rty.to_string t)

let test_conv_existential () =
  let t, _ = conv "i32{v: 0 < v}" in
  match t with
  | Rty.TBase (Rty.BInt Ast.I32, Rty.Ex ([ ("v", Sort.Int) ], [ Horn.Conc _ ])) -> ()
  | _ -> Alcotest.failf "unexpected %s" (Rty.to_string t)

let test_conv_nested_vec () =
  (* an index expression may only mention binders already declared *)
  (match conv "RVec<RVec<f32, n>, @k>" with
  | exception Specconv.Spec_error _ -> ()
  | _ -> Alcotest.fail "unbound n should be rejected");
  (* with the binder declared first it converts *)
  let cx = Specconv.make_cx senv in
  let _ = Specconv.conv_rty cx (Parser.parse_rtype "usize<@n>") in
  match Specconv.conv_rty cx (Parser.parse_rtype "RVec<RVec<f32, n>, @k>") with
  | Rty.TBase (Rty.BVec (Rty.TBase (Rty.BVec _, _)), Rty.Ix _) -> ()
  | t -> Alcotest.failf "unexpected %s" (Rty.to_string t)

let test_conv_struct () =
  let t, _ = conv "RMat<3, 4>" in
  match t with
  | Rty.TBase (Rty.BStruct "RMat", Rty.Ix [ Term.Int 3; Term.Int 4 ]) -> ()
  | _ -> Alcotest.failf "unexpected %s" (Rty.to_string t)

let test_sig_resolution () =
  let src =
    "#[lr::sig(fn(usize<@n>, &mut RVec<f32, n>) -> RVec<f32, n+1> requires 0 < n)]\n\
     fn f(n: usize, v: &mut RVec<f32>) -> RVec<f32> { v.clone() }"
  in
  let prog = Parser.parse_program src in
  let fd = Option.get (Ast.find_fn prog "f") in
  let fsig = Specconv.resolve_sig senv fd in
  Alcotest.(check int) "params" 1 (List.length fsig.Specconv.fsg_params);
  Alcotest.(check int) "args" 2 (List.length fsig.Specconv.fsg_args);
  Alcotest.(check int) "requires" 1 (List.length fsig.Specconv.fsg_requires)

let test_sig_arity_mismatch () =
  let src = "#[lr::sig(fn(i32) -> i32)]\nfn f(x: i32, y: i32) -> i32 { x }" in
  let prog = Parser.parse_program src in
  let fd = Option.get (Ast.find_fn prog "f") in
  match Specconv.resolve_sig senv fd with
  | exception Specconv.Spec_error _ -> ()
  | _ -> Alcotest.fail "expected a spec error"

let test_binder_sort_clash () =
  let src = "#[lr::sig(fn(i32<@n>, bool<@n>) -> i32)]\nfn f(x: i32, b: bool) -> i32 { x }" in
  let prog = Parser.parse_program src in
  let fd = Option.get (Ast.find_fn prog "f") in
  match Specconv.resolve_sig senv fd with
  | exception Specconv.Spec_error _ -> ()
  | _ -> Alcotest.fail "expected a sort clash error"

(* ------------------------------------------------------------------ *)
(* Subtyping                                                           *)
(* ------------------------------------------------------------------ *)

let solve_clauses clauses kvars =
  match Solve.solve_clauses ~kvars clauses with
  | Solve.Sat _ -> true
  | Solve.Unsat _ -> false

let int_ix t = Rty.TBase (Rty.BInt Ast.I32, Rty.Ix [ t ])

let test_sub_index_equal () =
  let cls =
    Sub.sub senv Sub.empty_cx ~tag:0 (int_ix (Term.int 3)) (int_ix (Term.int 3))
  in
  Alcotest.(check bool) "trivial" true (solve_clauses cls [])

let test_sub_index_unequal () =
  let cls =
    Sub.sub senv Sub.empty_cx ~tag:0 (int_ix (Term.int 3)) (int_ix (Term.int 4))
  in
  Alcotest.(check bool) "3 is not 4" false (solve_clauses cls [])

let test_sub_exists_right () =
  (* i32<5> ≼ {v. i32<v> | 0 < v} *)
  let rhs =
    Rty.TBase
      ( Rty.BInt Ast.I32,
        Rty.Ex ([ ("v", Sort.Int) ], [ Horn.Conc Term.(lt (int 0) (var "v")) ])
      )
  in
  let ok = Sub.sub senv Sub.empty_cx ~tag:0 (int_ix (Term.int 5)) rhs in
  Alcotest.(check bool) "5 is positive" true (solve_clauses ok []);
  let bad = Sub.sub senv Sub.empty_cx ~tag:0 (int_ix (Term.int 0)) rhs in
  Alcotest.(check bool) "0 is not" false (solve_clauses bad [])

let test_sub_exists_left () =
  (* {v. i32<v> | 2 < v} ≼ {v. i32<v> | 0 < v} *)
  let mk p =
    Rty.TBase
      (Rty.BInt Ast.I32, Rty.Ex ([ ("v", Sort.Int) ], [ Horn.Conc p ]))
  in
  let cls =
    Sub.sub senv Sub.empty_cx ~tag:0
      (mk Term.(lt (int 2) (var "v")))
      (mk Term.(lt (int 0) (var "v")))
  in
  Alcotest.(check bool) "weakening ok" true (solve_clauses cls []);
  let cls_bad =
    Sub.sub senv Sub.empty_cx ~tag:0
      (mk Term.(lt (int 0) (var "v")))
      (mk Term.(lt (int 2) (var "v")))
  in
  Alcotest.(check bool) "strengthening fails" false (solve_clauses cls_bad [])

let test_sub_vec_covariant () =
  let vec elem len = Rty.TBase (Rty.BVec elem, Rty.Ix [ len ]) in
  let pos =
    Rty.TBase
      (Rty.BInt Ast.I32, Rty.Ex ([ ("v", Sort.Int) ], [ Horn.Conc Term.(lt (int 0) (var "v")) ]))
  in
  let nonneg =
    Rty.TBase
      (Rty.BInt Ast.I32, Rty.Ex ([ ("v", Sort.Int) ], [ Horn.Conc Term.(le (int 0) (var "v")) ]))
  in
  let n = Term.var "n" in
  let cls =
    Sub.sub senv
      { Sub.binders = [ ("n", Sort.Int) ]; hyps = [] }
      ~tag:0 (vec pos n) (vec nonneg n)
  in
  Alcotest.(check bool) "covariant elements" true (solve_clauses cls [])

let test_sub_mut_ref_invariant () =
  let pos =
    Rty.TBase
      (Rty.BInt Ast.I32, Rty.Ex ([ ("v", Sort.Int) ], [ Horn.Conc Term.(lt (int 0) (var "v")) ]))
  in
  let nonneg =
    Rty.TBase
      (Rty.BInt Ast.I32, Rty.Ex ([ ("v", Sort.Int) ], [ Horn.Conc Term.(le (int 0) (var "v")) ]))
  in
  (* &mut pos ≼ &mut nonneg must FAIL (needs both directions) *)
  let cls =
    Sub.sub senv Sub.empty_cx ~tag:0 (Rty.TRef (Rty.Mut, pos))
      (Rty.TRef (Rty.Mut, nonneg))
  in
  Alcotest.(check bool) "mutable refs are invariant" false (solve_clauses cls []);
  (* but &mut τ ≼ &τ' covariantly *)
  let cls2 =
    Sub.sub senv Sub.empty_cx ~tag:0 (Rty.TRef (Rty.Mut, pos))
      (Rty.TRef (Rty.Shr, nonneg))
  in
  Alcotest.(check bool) "&mut coerces to &" true (solve_clauses cls2 [])

let test_sub_shape_mismatch () =
  match
    Sub.sub senv Sub.empty_cx ~tag:0 (int_ix (Term.int 1))
      (Rty.TBase (Rty.BBool, Rty.Ix [ Term.tt ]))
  with
  | exception Rty.Type_error _ -> ()
  | _ -> Alcotest.fail "expected a shape error"

let test_template_kvars () =
  let kvars = ref [] in
  let t =
    Rty.template senv
      ~declare:(fun kv -> kvars := kv :: !kvars)
      ~scope:[ ("n", Sort.Int) ]
      (Ast.TVec (Ast.TVec Ast.TFloat))
  in
  (* one κ for the outer length, one for the element lengths *)
  Alcotest.(check int) "two kvars" 2 (List.length !kvars);
  match t with
  | Rty.TBase (Rty.BVec (Rty.TBase (Rty.BVec _, Rty.Ex (_, [ Horn.Kapp (_, args) ]))), Rty.Ex _)
    ->
      (* the element κ sees the outer binder and the scope *)
      Alcotest.(check bool) "element kvar has scope" true (List.length args >= 3)
  | _ -> Alcotest.failf "unexpected template %s" (Rty.to_string t)

let test_usize_invariant () =
  (* unpacking usize<v> must yield 0 <= v *)
  let bs, hyps, _, ts =
    Sub.unpack senv (Rty.BInt Ast.Usize) [ ("v", Sort.Int) ] []
  in
  Alcotest.(check int) "one binder" 1 (List.length bs);
  Alcotest.(check int) "one index" 1 (List.length ts);
  let has_nonneg =
    List.exists
      (function
        | Horn.Conc (Term.Cmp (Term.Ge, _, Term.Int 0)) -> true
        | _ -> false)
      hyps
  in
  Alcotest.(check bool) "usize invariant" true has_nonneg

let test_struct_invariant_unpack () =
  let bs, hyps, _, _ =
    Sub.unpack senv (Rty.BStruct "RMat")
      [ ("m", Sort.Int); ("n", Sort.Int) ]
      []
  in
  Alcotest.(check int) "two binders" 2 (List.length bs);
  Alcotest.(check bool) "invariant assumed" true (List.length hyps >= 1)

let tests =
  ( "rtype",
    [
      Alcotest.test_case "conv indexed" `Quick test_conv_indexed;
      Alcotest.test_case "conv existential" `Quick test_conv_existential;
      Alcotest.test_case "conv nested vec" `Quick test_conv_nested_vec;
      Alcotest.test_case "conv struct" `Quick test_conv_struct;
      Alcotest.test_case "sig resolution" `Quick test_sig_resolution;
      Alcotest.test_case "sig arity mismatch" `Quick test_sig_arity_mismatch;
      Alcotest.test_case "binder sort clash" `Quick test_binder_sort_clash;
      Alcotest.test_case "sub: equal indices" `Quick test_sub_index_equal;
      Alcotest.test_case "sub: unequal indices" `Quick test_sub_index_unequal;
      Alcotest.test_case "sub: exists right" `Quick test_sub_exists_right;
      Alcotest.test_case "sub: exists left" `Quick test_sub_exists_left;
      Alcotest.test_case "sub: vec covariance" `Quick test_sub_vec_covariant;
      Alcotest.test_case "sub: &mut invariance" `Quick test_sub_mut_ref_invariant;
      Alcotest.test_case "sub: shape mismatch" `Quick test_sub_shape_mismatch;
      Alcotest.test_case "templates" `Quick test_template_kvars;
      Alcotest.test_case "usize invariant" `Quick test_usize_invariant;
      Alcotest.test_case "struct invariant" `Quick test_struct_invariant_unpack;
    ] )
