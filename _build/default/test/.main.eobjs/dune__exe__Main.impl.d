test/main.ml: Alcotest Test_check Test_fixpoint Test_interp Test_loc Test_mir Test_rtype Test_smt Test_soundness Test_syntax Test_workloads Test_wp
