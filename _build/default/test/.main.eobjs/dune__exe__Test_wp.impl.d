test/test_wp.ml: Alcotest Flux_wp Format List String
