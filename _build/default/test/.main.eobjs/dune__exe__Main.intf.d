test/main.mli:
