test/test_rtype.ml: Alcotest Flux_fixpoint Flux_rtype Flux_smt Flux_syntax Hashtbl Horn List Option Rty Solve Sort Specconv Sub Term
