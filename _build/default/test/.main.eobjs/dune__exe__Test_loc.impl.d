test/test_loc.ml: Alcotest Flux_workloads List Printf
