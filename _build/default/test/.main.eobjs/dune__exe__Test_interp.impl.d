test/test_interp.ml: Alcotest Flux_interp Flux_workloads Format Interp List Option QCheck QCheck_alcotest
