test/test_check.ml: Alcotest Flux_check Flux_rtype Format List String
