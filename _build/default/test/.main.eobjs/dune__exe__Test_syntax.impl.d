test/test_syntax.ml: Alcotest Array Ast Flux_smt Flux_syntax Format Lexer List Parser String Token Typeck
