test/test_soundness.ml: Alcotest Flux_check Flux_interp Flux_rtype Flux_syntax Interp List Printf QCheck QCheck_alcotest Random String
