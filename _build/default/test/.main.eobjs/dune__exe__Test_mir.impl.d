test/test_mir.ml: Alcotest Array Ast Flux_mir Flux_syntax List Parser String Typeck
