test/test_workloads.ml: Alcotest Flux_check Flux_rtype Flux_workloads Flux_wp Format List Option Str_replace String
