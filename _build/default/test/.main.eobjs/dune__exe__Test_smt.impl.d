test/test_smt.ml: Alcotest Flux_smt List QCheck QCheck_alcotest Solver Sort Term
