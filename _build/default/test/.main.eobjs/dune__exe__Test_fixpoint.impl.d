test/test_fixpoint.ml: Alcotest Flux_fixpoint Flux_smt Hashtbl Horn List Qualifier Solve Solver Sort String Term
