(** Tests for the frontend: lexer, parser, specification parsing, and
    the unrefined typechecker. *)

open Flux_syntax

let parse_ok name src =
  Alcotest.test_case name `Quick (fun () ->
      let prog = Parser.parse_program src in
      Typeck.check_program prog;
      Alcotest.(check bool) "parsed" true (List.length prog > 0))

let parse_fails name src =
  Alcotest.test_case name `Quick (fun () ->
      match
        (try
           let prog = Parser.parse_program src in
           Typeck.check_program prog;
           `Ok
         with
        | Parser.Error _ | Lexer.Error _ -> `ParseError
        | Typeck.Error _ -> `TypeError)
      with
      | `Ok -> Alcotest.fail "expected a frontend error"
      | `ParseError | `TypeError -> ())

let lexer_tests =
  [
    Alcotest.test_case "tokens" `Quick (fun () ->
        let toks = Lexer.tokenize "fn f(x: i32) -> bool { x <= 0 }" in
        Alcotest.(check int) "count" 15 (Array.length toks));
    Alcotest.test_case "attribute capture" `Quick (fun () ->
        let toks = Lexer.tokenize "#[lr::sig(fn(i32<@n>) -> bool<0 < n>)] fn f() {}" in
        match toks.(0) with
        | Token.ATTR raw, _ ->
            Alcotest.(check string) "raw" "lr::sig(fn(i32<@n>) -> bool<0 < n>)" raw
        | _ -> Alcotest.fail "expected an attribute token");
    Alcotest.test_case "nested attribute brackets" `Quick (fun () ->
        let toks = Lexer.tokenize "#[outer(a[b[c]])] fn f() {}" in
        match toks.(0) with
        | Token.ATTR raw, _ -> Alcotest.(check string) "raw" "outer(a[b[c]])" raw
        | _ -> Alcotest.fail "expected an attribute token");
    Alcotest.test_case "comments" `Quick (fun () ->
        let toks = Lexer.tokenize "// line\n/* block\n */ fn" in
        Alcotest.(check int) "only fn+eof" 2 (Array.length toks));
    Alcotest.test_case "float vs method" `Quick (fun () ->
        let toks = Lexer.tokenize "1.5 x.len" in
        (match toks.(0) with
        | Token.FLOAT f, _ -> Alcotest.(check (float 0.0001)) "float" 1.5 f
        | _ -> Alcotest.fail "expected float");
        match toks.(2) with
        | Token.DOT, _ -> ()
        | t, _ -> Alcotest.failf "expected dot, got %s" (Token.to_string t));
    Alcotest.test_case "int suffix" `Quick (fun () ->
        let toks = Lexer.tokenize "1usize 2i32" in
        match (toks.(0), toks.(1)) with
        | (Token.INT 1, _), (Token.INT 2, _) -> ()
        | _ -> Alcotest.fail "suffixed ints");
    Alcotest.test_case "operators" `Quick (fun () ->
        let toks = Lexer.tokenize "==> => == = <= < >= >" in
        let expect =
          Token.[ IMPLIES; FATARROW; EQEQ; EQ; LE; LT; GE; GT; EOF ]
        in
        Alcotest.(check int) "count" (List.length expect) (Array.length toks);
        List.iteri
          (fun i t -> Alcotest.(check bool) "tok" true (fst toks.(i) = t))
          expect);
  ]

let parser_tests =
  [
    parse_ok "minimal fn" "fn f() {}";
    parse_ok "params and return" "fn f(x: i32, y: bool) -> i32 { x }";
    parse_ok "let and while"
      "fn f(n: usize) -> usize { let mut i = 0; while i < n { i += 1; } i }";
    parse_ok "if else chain"
      "fn f(x: i32) -> i32 { if x < 0 { -x } else if x == 0 { 1 } else { x } }";
    parse_ok "vector methods"
      "fn f() -> usize { let mut v: RVec<i32> = RVec::new(); v.push(1); v.len() }";
    parse_ok "nested generics" "fn f(v: &RVec<RVec<f32>>) -> usize { v.len() }";
    parse_ok "struct and impl"
      "struct P { x: i32, y: i32 }\n\
       impl P { fn get_x(&self) -> i32 { self.x } }\n\
       fn mk() -> P { P { x: 1, y: 2 } }";
    parse_ok "struct field shorthand" "struct P { x: i32 }\nfn mk(x: i32) -> P { P { x } }";
    parse_ok "early return" "fn f(x: i32) -> i32 { if x < 0 { return 0; } x }";
    parse_ok "break" "fn f() { let mut i = 0; while true { i += 1; break; } }";
    parse_ok "deref store"
      "fn f(v: &mut RVec<f32>) { if 0 < v.len() { *v.get_mut(0) = 1.0; } }";
    parse_ok "unary and precedence" "fn f(a: bool, b: bool) -> bool { !a && b || a }";
    parse_ok "trusted decl" "#[lr::trusted]\nfn ext(x: i32) -> f32;";
    parse_fails "missing semicolon" "fn f() { let x = 1 let y = 2; }";
    parse_fails "unknown variable" "fn f() -> i32 { y }";
    parse_fails "bad call arity" "fn g(x: i32) {}\nfn f() { g(1, 2); }";
    parse_fails "type mismatch" "fn f() -> i32 { true }";
    parse_fails "spec form in code" "fn f() -> bool { forall(|x: usize| true) }";
    parse_fails "shadowing rejected" "fn f() { let x = 1; let x = 2; }";
    parse_fails "float index" "fn f(v: &RVec<f32>) -> f32 { *v.get(1.5) }";
    parse_fails "assign to expression" "fn f() { 1 = 2; }";
  ]

let spec_tests =
  [
    Alcotest.test_case "indexed type" `Quick (fun () ->
        match Parser.parse_rtype "i32<n+1>" with
        | Ast.RBase (Ast.RBInt Ast.I32, [ Ast.IxExpr _ ]) -> ()
        | t -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Ast.pp_rty t));
    Alcotest.test_case "binder" `Quick (fun () ->
        match Parser.parse_rtype "usize<@n>" with
        | Ast.RBase (Ast.RBInt Ast.Usize, [ Ast.IxBinder "n" ]) -> ()
        | _ -> Alcotest.fail "binder");
    Alcotest.test_case "existential" `Quick (fun () ->
        match Parser.parse_rtype "usize{v: v < n}" with
        | Ast.RExists ("v", Ast.RBInt Ast.Usize, _) -> ()
        | _ -> Alcotest.fail "existential");
    Alcotest.test_case "bool with comparison index" `Quick (fun () ->
        match Parser.parse_rtype "bool<0 < n>" with
        | Ast.RBase (Ast.RBBool, [ Ast.IxExpr _ ]) -> ()
        | _ -> Alcotest.fail "bool index");
    Alcotest.test_case "vector with refined elements" `Quick (fun () ->
        match Parser.parse_rtype "RVec<usize{v: v < m}, m>" with
        | Ast.RBase (Ast.RBVec (Ast.RExists _), [ Ast.IxExpr _ ]) -> ()
        | _ -> Alcotest.fail "vec");
    Alcotest.test_case "references" `Quick (fun () ->
        (match Parser.parse_rtype "&mut RVec<f32, n>" with
        | Ast.RRef (Ast.RMut, _) -> ()
        | _ -> Alcotest.fail "mut");
        match Parser.parse_rtype "&strg RVec<T, n>" with
        | Ast.RRef (Ast.RStrg, _) -> ()
        | _ -> Alcotest.fail "strg");
    Alcotest.test_case "fn sig with requires/ensures" `Quick (fun () ->
        let s =
          Parser.parse_fn_spec
            "fn(&strg RVec<T, @n>, T) requires 0 <= n ensures *self: RVec<T, n+1>"
        in
        Alcotest.(check int) "args" 2 (List.length s.Ast.fs_args);
        Alcotest.(check int) "requires" 1 (List.length s.Ast.fs_requires);
        Alcotest.(check int) "ensures" 1 (List.length s.Ast.fs_ensures));
    Alcotest.test_case "sig without fn keyword (fig. 4 style)" `Quick (fun () ->
        let s = Parser.parse_fn_spec "(&RMat<@m, @n>, usize{v: v < m}) -> f32" in
        Alcotest.(check int) "args" 2 (List.length s.Ast.fs_args));
    Alcotest.test_case "refined_by attribute" `Quick (fun () ->
        match Parser.parse_attr "lr::refined_by(m: int, n: int)" with
        | Some (Parser.ARefinedBy [ ("m", Flux_smt.Sort.Int); ("n", Flux_smt.Sort.Int) ]) ->
            ()
        | _ -> Alcotest.fail "refined_by");
    Alcotest.test_case "prusti requires attr" `Quick (fun () ->
        match Parser.parse_attr "requires(x.len() == y.len())" with
        | Some (Parser.ARequires _) -> ()
        | _ -> Alcotest.fail "requires");
    Alcotest.test_case "forall spec" `Quick (fun () ->
        let e =
          Parser.parse_expression
            "forall(|x: usize| x < t.len() ==> t.lookup(x) < i)"
        in
        match e.Ast.e with
        | Ast.EForall ([ ("x", Ast.TInt Ast.Usize) ], _) -> ()
        | _ -> Alcotest.fail "forall");
  ]

(* round trip: pretty printing a parsed program reparses to the same
   shape (number of items & function names) *)
let roundtrip_src name src =
  Alcotest.test_case name `Quick (fun () ->
      let prog = Parser.parse_program src in
      let printed =
        String.concat "\n"
          (List.map
             (fun item ->
               match item with
               | Ast.IFn fd -> (
                   match fd.Ast.fn_body with
                   | Some body ->
                       Format.asprintf "fn %s(%s) -> %a %a"
                         (* method names like A::b cannot be reparsed bare *)
                         (String.map (fun c -> if c = ':' then '_' else c) fd.Ast.fn_name)
                         (String.concat ", "
                            (List.map
                               (fun (x, t) -> Format.asprintf "%s: %a" x Ast.pp_ty t)
                               (List.filter (fun (x, _) -> x <> "self") fd.Ast.fn_params)))
                         Ast.pp_ty fd.Ast.fn_ret Ast.pp_block body
                   | None -> "")
               | Ast.IStruct _ -> "")
             prog)
      in
      let reparsed = Parser.parse_program printed in
      Alcotest.(check int)
        "same item count"
        (List.length (Ast.program_fns prog))
        (List.length (Ast.program_fns reparsed)))

let roundtrip_tests =
  [
    roundtrip_src "roundtrip simple"
      "fn f(n: usize) -> usize { let mut i = 0; while i < n { i += 1; } i }";
    roundtrip_src "roundtrip branching"
      "fn f(x: i32) -> i32 { if x < 0 { -x } else { x + 1 } }";
  ]

let tests = ("syntax", lexer_tests @ parser_tests @ spec_tests @ roundtrip_tests)
