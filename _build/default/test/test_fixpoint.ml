(** Tests for the Horn constraint solver: the paper's worked examples
    (§4.2 loop inference, §4.3 polymorphic instantiation) and structural
    properties of solving. *)

open Flux_smt
open Flux_fixpoint

let mkk name params = Horn.{ kname = name; kparams = params; kvalues = 1 }

let solution_entails sol k (goal : Term.t) (formals : (string * Sort.t) list) =
  match Hashtbl.find_opt sol k with
  | None -> false
  | Some conjuncts ->
      ignore formals;
      Solver.entails conjuncts goal

(** §4.2: init_zeros loop — the solver must find κ(b,c) := b = c. *)
let test_init_zeros () =
  let k = mkk "k" [ ("b", Sort.Int); ("c", Sort.Int) ] in
  let open Term in
  let c =
    Horn.conj
      [
        Horn.CHead (Horn.Kapp ("k", [ int 0; int 0 ]), 1);
        Horn.CBind
          ( "j",
            Sort.Int,
            [ Horn.Kapp ("k", [ var "j"; var "j" ]) ],
            Horn.CBind
              ( "n",
                Sort.Int,
                [],
                Horn.CGuard
                  ( lt (var "j") (var "n"),
                    Horn.CHead
                      ( Horn.Kapp
                          ("k", [ add (var "j") (int 1); add (var "j") (int 1) ]),
                        2 ) ) ) );
        Horn.CBind
          ( "b",
            Sort.Int,
            [],
            Horn.CBind
              ( "c",
                Sort.Int,
                [ Horn.Kapp ("k", [ var "b"; var "c" ]) ],
                Horn.CBind
                  ( "n",
                    Sort.Int,
                    [],
                    Horn.CGuard
                      ( eq (var "b") (var "n"),
                        Horn.CHead (Horn.Conc (eq (var "c") (var "n")), 3) ) ) )
          );
      ]
  in
  match Solve.solve ~kvars:[ k ] c with
  | Solve.Sat sol ->
      Alcotest.(check bool)
        "solution entails b = c" true
        (solution_entails sol "k"
           Term.(eq (var "b") (var "c"))
           k.Horn.kparams)
  | Solve.Unsat _ -> Alcotest.fail "expected SAT"

(** §4.3: make_vec — κ₁(ν) ⇒ κ₂(ν), ν = 42 ⇒ κ₂(ν), κ₂(ν) ⇒ ν > 0. *)
let test_make_vec () =
  let k1 = mkk "k1" [ ("v", Sort.Int) ] in
  let k2 = mkk "k2" [ ("v", Sort.Int) ] in
  let open Term in
  let c =
    Horn.conj
      [
        Horn.CBind
          ( "v",
            Sort.Int,
            [ Horn.Kapp ("k1", [ var "v" ]) ],
            Horn.CHead (Horn.Kapp ("k2", [ var "v" ]), 1) );
        Horn.CBind
          ( "v",
            Sort.Int,
            [ Horn.Conc (eq (var "v") (int 42)) ],
            Horn.CHead (Horn.Kapp ("k2", [ var "v" ]), 2) );
        Horn.CBind
          ( "v",
            Sort.Int,
            [ Horn.Kapp ("k2", [ var "v" ]) ],
            Horn.CHead (Horn.Conc (gt (var "v") (int 0)), 3) );
      ]
  in
  match Solve.solve ~kvars:[ k1; k2 ] c with
  | Solve.Sat sol ->
      Alcotest.(check bool)
        "κ2 entails v > 0" true
        (solution_entails sol "k2" Term.(gt (var "v") (int 0)) k2.Horn.kparams)
  | Solve.Unsat _ -> Alcotest.fail "expected SAT"

(** An unsatisfiable system reports the failing tag. *)
let test_unsat_tags () =
  let open Term in
  let c =
    Horn.conj
      [
        Horn.CBind
          ( "x",
            Sort.Int,
            [ Horn.Conc (ge (var "x") (int 0)) ],
            Horn.CHead (Horn.Conc (gt (var "x") (int 0)), 42) );
      ]
  in
  match Solve.solve ~kvars:[] c with
  | Solve.Sat _ -> Alcotest.fail "expected UNSAT"
  | Solve.Unsat (fails, _) ->
      Alcotest.(check (list int)) "tags" [ 42 ]
        (List.map (fun f -> f.Solve.f_tag) fails)

(** A κ with no constraints keeps its full (strongest) instantiation. *)
let test_unconstrained_kvar () =
  let k = mkk "k" [ ("v", Sort.Int); ("x", Sort.Int) ] in
  match Solve.solve ~kvars:[ k ] Horn.CTrue with
  | Solve.Sat sol ->
      Alcotest.(check bool)
        "strongest solution retained" true
        (List.length (Hashtbl.find sol "k") > 0)
  | Solve.Unsat _ -> Alcotest.fail "expected SAT"

(** Multi-value κs (struct indices) constrain every value position. *)
let test_multi_value_kvar () =
  let k =
    Horn.{ kname = "k"; kparams = [ ("a", Sort.Int); ("b", Sort.Int); ("m", Sort.Int) ]; kvalues = 2 }
  in
  let open Term in
  let c =
    Horn.conj
      [
        Horn.CBind
          ( "m",
            Sort.Int,
            [],
            Horn.CHead (Horn.Kapp ("k", [ var "m"; add (var "m") (int 1); var "m" ]), 1)
          );
        Horn.CBind
          ( "a",
            Sort.Int,
            [],
            Horn.CBind
              ( "b",
                Sort.Int,
                [],
                Horn.CBind
                  ( "m",
                    Sort.Int,
                    [ Horn.Kapp ("k", [ var "a"; var "b"; var "m" ]) ],
                    Horn.CHead (Horn.Conc (eq (var "b") (add (var "m") (int 1))), 2)
                  ) ) );
      ]
  in
  match Solve.solve ~kvars:[ k ] c with
  | Solve.Sat _ -> ()
  | Solve.Unsat (fails, _) ->
      Alcotest.failf "expected SAT, failed tags %s"
        (String.concat "," (List.map (fun f -> string_of_int f.Solve.f_tag) fails))

(** Qualifier instantiation produces only well-scoped predicates. *)
let test_qualifier_scope () =
  let params = [ ("v", Sort.Int); ("a", Sort.Int); ("b", Sort.Bool) ] in
  let insts = Qualifier.instantiate_all Qualifier.default params in
  List.iter
    (fun q ->
      Term.VarSet.iter
        (fun x ->
          if not (List.mem_assoc x params) then
            Alcotest.failf "out-of-scope variable %s in %s" x (Term.to_string q))
        (Term.free_vars q))
    insts;
  Alcotest.(check bool) "nonempty" true (List.length insts > 5)

(** Qualifier rotation: a second value position gets instances too. *)
let test_qualifier_rotation () =
  let params = [ ("v1", Sort.Int); ("v2", Sort.Int); ("m", Sort.Int) ] in
  let insts = Qualifier.instantiate_all ~values:2 Qualifier.default params in
  let mentions_v2_first =
    List.exists
      (fun q ->
        match q with
        | Term.Cmp (_, Term.Var ("v2", _), _) | Term.Eq (Term.Var ("v2", _), _) ->
            true
        | _ -> false)
      insts
  in
  Alcotest.(check bool) "v2 constrained" true mentions_v2_first

(** Flattening preserves the number of heads. *)
let test_flatten () =
  let open Term in
  let c =
    Horn.CBind
      ( "x",
        Sort.Int,
        [ Horn.Conc (ge (var "x") (int 0)) ],
        Horn.CAnd
          [
            Horn.CHead (Horn.Conc (ge (var "x") (int 0)), 1);
            Horn.CGuard
              (lt (var "x") (int 10), Horn.CHead (Horn.Conc Term.tt, 2));
          ] )
  in
  let clauses = Horn.flatten c in
  Alcotest.(check int) "two clauses" 2 (List.length clauses);
  let c1 = List.nth clauses 0 in
  Alcotest.(check int) "binder count" 1 (List.length c1.Horn.binders)

let tests =
  ( "fixpoint",
    [
      Alcotest.test_case "init_zeros (§4.2)" `Quick test_init_zeros;
      Alcotest.test_case "make_vec (§4.3)" `Quick test_make_vec;
      Alcotest.test_case "unsat tags" `Quick test_unsat_tags;
      Alcotest.test_case "unconstrained kvar" `Quick test_unconstrained_kvar;
      Alcotest.test_case "multi-value kvar" `Quick test_multi_value_kvar;
      Alcotest.test_case "qualifier scoping" `Quick test_qualifier_scope;
      Alcotest.test_case "qualifier rotation" `Quick test_qualifier_rotation;
      Alcotest.test_case "flatten" `Quick test_flatten;
    ] )
