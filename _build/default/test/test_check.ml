(** End-to-end tests for the Flux checker: the paper's examples verify,
    seeded bugs are rejected, and inference finds the documented
    invariants. *)

module Checker = Flux_check.Checker

let accepts name src =
  Alcotest.test_case name `Quick (fun () ->
      let r = Checker.check_source src in
      if not (Checker.report_ok r) then
        Alcotest.failf "expected OK, got:@.%s"
          (String.concat "\n"
             (List.map
                (fun e -> Format.asprintf "%a" Checker.pp_error e)
                (Checker.report_errors r))))

let rejects name src =
  Alcotest.test_case name `Quick (fun () ->
      match Checker.check_source src with
      | r when not (Checker.report_ok r) -> ()
      | exception Checker.Check_error _ -> ()
      | exception Flux_rtype.Rty.Type_error _ -> ()
      | exception Flux_rtype.Specconv.Spec_error _ -> ()
      | _ -> Alcotest.fail "expected the checker to reject this program")

(* ---------------- paper figures ---------------- *)

let fig1 =
  [
    accepts "fig1: is_pos"
      {|#[lr::sig(fn(i32<@n>) -> bool<0 < n>)]
        fn is_pos(n: i32) -> bool { if 0 < n { true } else { false } }|};
    accepts "fig1: abs"
      {|#[lr::sig(fn(i32<@x>) -> i32{v: x <= v && 0 <= v})]
        fn abs(x: i32) -> i32 { if x < 0 { -x } else { x } }|};
    rejects "fig1: abs with wrong spec"
      {|#[lr::sig(fn(i32<@x>) -> i32{v: v < x})]
        fn abs(x: i32) -> i32 { if x < 0 { -x } else { x } }|};
  ]

let fig2 =
  [
    accepts "fig2: init_zeros (loop invariant synthesized)"
      {|#[lr::sig(fn(usize<@n>) -> RVec<f32, n>)]
        fn init_zeros(n: usize) -> RVec<f32> {
            let mut vec = RVec::new();
            let mut i = 0;
            while i < n { vec.push(0.0); i += 1; }
            vec
        }|};
    accepts "fig2: add (weak updates preserve the length)"
      {|#[lr::sig(fn(&mut RVec<f32, @n>, &RVec<f32, n>))]
        fn add(x: &mut RVec<f32>, y: &RVec<f32>) {
            let mut i = 0;
            while i < x.len() {
                *x.get_mut(i) = *x.get(i) + *y.get(i);
                i += 1;
            }
        }|};
    rejects "fig2: add with mismatched lengths"
      {|#[lr::sig(fn(&mut RVec<f32, @n>, &RVec<f32, @m>))]
        fn add(x: &mut RVec<f32>, y: &RVec<f32>) {
            let mut i = 0;
            while i < x.len() {
                *x.get_mut(i) = *x.get(i) + *y.get(i);
                i += 1;
            }
        }|};
    accepts "fig2: normalize_centers (polymorphic elements)"
      {|#[lr::sig(fn(&mut RVec<f32, @n>, usize))]
        fn normal(x: &mut RVec<f32>, w: usize) {}
        #[lr::sig(fn(usize<@n>, &mut RVec<RVec<f32, n>, @k>, &RVec<usize, k>))]
        fn normalize_centers(n: usize, xs: &mut RVec<RVec<f32>>, ws: &RVec<usize>) {
            let mut i = 0;
            while i < xs.len() {
                normal(xs.get_mut(i), *ws.get(i));
                i += 1;
            }
        }|};
  ]

let fig3_rvec =
  [
    accepts "rvec: push then pop"
      {|fn f() -> i32 {
            let mut v: RVec<i32> = RVec::new();
            v.push(1);
            v.push(2);
            v.pop()
        }|};
    rejects "rvec: pop from empty"
      {|fn f() -> i32 {
            let mut v: RVec<i32> = RVec::new();
            v.pop()
        }|};
    rejects "rvec: get out of bounds"
      {|fn f() -> i32 {
            let mut v: RVec<i32> = RVec::new();
            v.push(1);
            *v.get(1)
        }|};
    accepts "rvec: get in bounds after pushes"
      {|fn f() -> i32 {
            let mut v: RVec<i32> = RVec::new();
            v.push(1);
            v.push(2);
            *v.get(1)
        }|};
    accepts "rvec: len is exact"
      {|#[lr::sig(fn() -> usize<2>)]
        fn f() -> usize {
            let mut v: RVec<i32> = RVec::new();
            v.push(1);
            v.push(2);
            v.len()
        }|};
    accepts "rvec: is_empty"
      {|#[lr::sig(fn() -> bool<false>)]
        fn f() -> bool {
            let mut v: RVec<i32> = RVec::new();
            v.push(1);
            v.is_empty()
        }|};
    accepts "rvec: swap stays in bounds"
      {|#[lr::sig(fn(&mut RVec<i32, @n>) requires 2 <= n)]
        fn f(v: &mut RVec<i32>) { v.swap(0, 1); }|};
    rejects "rvec: swap out of bounds"
      {|#[lr::sig(fn(&mut RVec<i32, @n>) requires 1 <= n)]
        fn f(v: &mut RVec<i32>) { v.swap(0, 1); }|};
    rejects "rvec: push through &mut needs &strg"
      {|#[lr::sig(fn(&mut RVec<i32, @n>))]
        fn f(v: &mut RVec<i32>) { v.push(1); }|};
    accepts "rvec: strong reference push (ensures clause)"
      {|#[lr::sig(fn(&strg RVec<i32, @n>) ensures *v: RVec<i32, n+1>)]
        fn f(v: &mut RVec<i32>) { v.push(1); }|};
    rejects "rvec: strong push with wrong ensures"
      {|#[lr::sig(fn(&strg RVec<i32, @n>) ensures *v: RVec<i32, n+2>)]
        fn f(v: &mut RVec<i32>) { v.push(1); }|};
    accepts "rvec: strong reference grow loop"
      {|#[lr::sig(fn(&strg RVec<i32, @n>, usize<@k>) ensures *v: RVec<i32, n+k>)]
        fn grow(v: &mut RVec<i32>, k: usize) {
            let mut i = 0;
            while i < k { v.push(0); i += 1; }
        }|};
    accepts "rvec: clone preserves the index"
      {|#[lr::sig(fn(&RVec<i32, @n>) -> RVec<i32, n>)]
        fn f(v: &RVec<i32>) -> RVec<i32> { v.clone() }|};
  ]

let fig4_rmat =
  [
    accepts "fig4: RMat API"
      {|#[lr::sig(fn(usize<@n>) -> RVec<f32, n>)]
        fn init_zeros(n: usize) -> RVec<f32> {
            let mut vec = RVec::new();
            let mut i = 0;
            while i < n { vec.push(0.0); i += 1; }
            vec
        }
        #[lr::refined_by(m: int, n: int)]
        pub struct RMat {
            #[lr::field(RVec<RVec<f32, n>, m>)]
            vec: RVec<RVec<f32>>
        }
        impl RMat {
            #[lr::sig(fn(usize<@m>, usize<@n>) -> RMat<m, n>)]
            pub fn new(m: usize, n: usize) -> RMat {
                let mut vec = RVec::new();
                let mut i = 0;
                while i < m { vec.push(init_zeros(n)); i += 1; }
                RMat { vec }
            }
            #[lr::sig(fn(&RMat<@m, @n>, usize{v: v < m}, usize{v: v < n}) -> f32)]
            pub fn get(&self, i: usize, j: usize) -> f32 {
                *self.vec.get(i).get(j)
            }
            #[lr::sig(fn(&mut RMat<@m, @n>, usize{v: v < m}, usize{v: v < n}, f32))]
            pub fn set(&mut self, i: usize, j: usize, v: f32) {
                *self.vec.get_mut(i).get_mut(j) = v;
            }
        }|};
    rejects "fig4: RMat get with indices swapped"
      {|#[lr::refined_by(m: int, n: int)]
        pub struct RMat {
            #[lr::field(RVec<RVec<f32, n>, m>)]
            vec: RVec<RVec<f32>>
        }
        impl RMat {
            #[lr::sig(fn(&RMat<@m, @n>, usize{v: v < n}, usize{v: v < m}) -> f32)]
            pub fn get(&self, i: usize, j: usize) -> f32 {
                *self.vec.get(i).get(j)
            }
        }|};
    rejects "fig4: constructor with wrong inner size"
      {|#[lr::sig(fn(usize<@n>) -> RVec<f32, n>)]
        fn init_zeros(n: usize) -> RVec<f32> {
            let mut vec = RVec::new();
            let mut i = 0;
            while i < n { vec.push(0.0); i += 1; }
            vec
        }
        #[lr::refined_by(m: int, n: int)]
        pub struct RMat {
            #[lr::field(RVec<RVec<f32, n>, m>)]
            vec: RVec<RVec<f32>>
        }
        impl RMat {
            #[lr::sig(fn(usize<@m>, usize<@n>) -> RMat<m, n>)]
            pub fn new(m: usize, n: usize) -> RMat {
                let mut vec = RVec::new();
                let mut i = 0;
                while i < m { vec.push(init_zeros(m)); i += 1; }
                RMat { vec }
            }
        }|};
  ]

let sec43 =
  [
    accepts "§4.3: make_vec via polymorphic instantiation"
      {|#[lr::sig(fn() -> RVec<i32{v: 0 < v}, 1>)]
        fn make_vec() -> RVec<i32> {
            let mut vec = RVec::new();
            vec.push(42);
            vec
        }|};
    rejects "§4.3: make_vec with non-positive element"
      {|#[lr::sig(fn() -> RVec<i32{v: 0 < v}, 1>)]
        fn make_vec() -> RVec<i32> {
            let mut vec = RVec::new();
            vec.push(0);
            vec
        }|};
  ]

(* ---------------- modular verification & instantiation --------------- *)

let modular =
  [
    accepts "calls use signatures, not bodies"
      {|#[lr::sig(fn(i32<@x>) -> i32{v: x <= v && 0 <= v})]
        fn abs(x: i32) -> i32 { if x < 0 { -x } else { x } }
        #[lr::sig(fn(i32) -> i32{v: 0 <= v})]
        fn client(y: i32) -> i32 { abs(y) }|};
    rejects "precondition must hold at the call"
      {|#[lr::sig(fn(usize<@n>) -> usize requires 2 <= n)]
        fn need2(n: usize) -> usize { n }
        fn client() -> usize { need2(1) }|};
    accepts "precondition flows from a branch"
      {|#[lr::sig(fn(usize<@n>) -> usize requires 2 <= n)]
        fn need2(n: usize) -> usize { n }
        fn client(k: usize) -> usize { if 2 <= k { need2(k) } else { 0 } }|};
    accepts "recursion against the signature"
      {|#[lr::sig(fn(usize<@n>) -> usize<n>)]
        fn iddown(n: usize) -> usize {
            if n == 0 { 0 } else { iddown(n - 1) + 1 }
        }|};
    rejects "cannot instantiate a nested-only parameter (§4.1 limitation)"
      {|#[lr::sig(fn(&RVec<RVec<f32, @n>, @k>) -> usize)]
        fn f(xs: &RVec<RVec<f32>>) -> usize { xs.len() }
        fn client(ys: &RVec<RVec<f32>>) -> usize { f(ys) }|};
    accepts "binder instantiated by unpacking behind a reference"
      {|#[lr::sig(fn(&RVec<f32, @n>) -> usize<n>)]
        fn len_of(v: &RVec<f32>) -> usize { v.len() }
        fn client(w: &RVec<f32>) -> usize { len_of(w) }|};
  ]

(* ---------------- inference details ---------------- *)

let inference =
  [
    Alcotest.test_case "init_zeros solution pins len = i" `Quick (fun () ->
        let r =
          Checker.check_source
            {|#[lr::sig(fn(usize<@n>) -> RVec<f32, n>)]
              fn init_zeros(n: usize) -> RVec<f32> {
                  let mut vec = RVec::new();
                  let mut i = 0;
                  while i < n { vec.push(0.0); i += 1; }
                  vec
              }|}
        in
        Alcotest.(check bool) "verified" true (Checker.report_ok r);
        let fr = List.hd r.Checker.rp_fns in
        Alcotest.(check bool) "kvars inferred" true (fr.Checker.fr_kvars > 0));
    accepts "join of two branches"
      {|#[lr::sig(fn(bool<@b>, usize<@n>) -> usize{v: v <= n + 1})]
        fn f(b: bool, n: usize) -> usize {
            let r = if b { n + 1 } else { 0 };
            r
        }|};
    accepts "nested loops"
      {|#[lr::sig(fn(usize<@n>) -> RVec<RVec<f32, n>, n>)]
        fn grid(n: usize) -> RVec<RVec<f32>> {
            let mut rows = RVec::new();
            let mut i = 0;
            while i < n {
                let mut row = RVec::new();
                let mut j = 0;
                while j < n { row.push(0.0); j += 1; }
                rows.push(row);
                i += 1;
            }
            rows
        }|};
    accepts "assert is checked"
      {|fn f(n: usize) {
            if 2 <= n { assert!(1 <= n); }
        }|};
    rejects "failing assert"
      {|fn f(n: usize) { assert!(1 <= n); }|};
    accepts "break exits with the loop invariant"
      {|#[lr::sig(fn(usize<@n>) -> usize{v: v <= n})]
        fn f(n: usize) -> usize {
            let mut i = 0;
            while i < n {
                if i == 3 { break; }
                i += 1;
            }
            i
        }|};
    rejects "off-by-one loop bound"
      {|#[lr::sig(fn(&RVec<f32, @n>) -> f32)]
        fn sum(v: &RVec<f32>) -> f32 {
            let mut s = 0.0;
            let mut i = 0;
            while i <= v.len() {
                s = s + *v.get(i);
                i += 1;
            }
            s
        }|};
    rejects "use after move"
      {|fn consume(v: RVec<i32>) -> usize { v.len() }
        fn f() -> usize {
            let mut v: RVec<i32> = RVec::new();
            let a = consume(v);
            consume(v)
        }|};
  ]

let spec_errors =
  [
    rejects "struct invariant checked at construction"
      {|#[lr::refined_by(n: int)]
        #[lr::invariant(0 < n)]
        pub struct NonEmpty {
            #[lr::field(RVec<i32, n>)]
            items: RVec<i32>
        }
        #[lr::sig(fn() -> NonEmpty<0>)]
        fn bad() -> NonEmpty {
            let items: RVec<i32> = RVec::new();
            NonEmpty { items }
        }|};
    accepts "struct invariant usable by clients"
      {|#[lr::refined_by(n: int)]
        #[lr::invariant(0 < n)]
        pub struct NonEmpty {
            #[lr::field(RVec<i32, n>)]
            items: RVec<i32>
        }
        #[lr::sig(fn(&NonEmpty<@n>) -> i32)]
        fn first(s: &NonEmpty) -> i32 {
            *s.items.get(0)
        }|};
    rejects "struct index inference failure reported (§4.1 fallback)"
      {|#[lr::refined_by(m: int, n: int)]
        pub struct Grid {
            #[lr::field(RVec<RVec<f32, n>, m>)]
            rows: RVec<RVec<f32>>
        }
        fn bad() -> usize {
            let mut rows: RVec<RVec<f32>> = RVec::new();
            let g = Grid { rows };
            0
        }|};
    rejects "usize subtraction may underflow"
      {|fn f(i: usize) -> usize { i - 1 }|};
    accepts "guarded usize subtraction"
      {|#[lr::sig(fn(usize<@i>) -> usize requires 0 < i)]
        fn f(i: usize) -> usize { i - 1 }|};
    rejects "writing a too-weak value through &mut"
      {|#[lr::sig(fn(&mut i32{v: 0 < v}, i32<@x>))]
        fn f(r: &mut i32, x: i32) { *r = x; }|};
    accepts "writing a strong-enough value through &mut"
      {|#[lr::sig(fn(&mut i32{v: 0 <= v}, i32{v: 0 < v}))]
        fn f(r: &mut i32, x: i32) { *r = x; }|};
    rejects "ensures must actually hold at return"
      {|#[lr::sig(fn(&strg RVec<i32, @n>) ensures *v: RVec<i32, 0>)]
        fn not_clearing(v: &mut RVec<i32>) { }|};
    accepts "trusted functions are taken at their word"
      {|#[lr::trusted]
        #[lr::sig(fn(usize<@n>) -> RVec<i32, n>)]
        fn magic(n: usize) -> RVec<i32>;
        #[lr::sig(fn() -> i32)]
        fn client() -> i32 {
            let v = magic(3);
            *v.get(2)
        }|};
    rejects "even trusted signatures bind the caller"
      {|#[lr::trusted]
        #[lr::sig(fn(usize<@n>) -> RVec<i32, n>)]
        fn magic(n: usize) -> RVec<i32>;
        fn client() -> i32 {
            let v = magic(3);
            *v.get(3)
        }|};
  ]

let tests =
  ( "check",
    fig1 @ fig2 @ fig3_rvec @ fig4_rmat @ sec43 @ modular @ inference
    @ spec_errors )
