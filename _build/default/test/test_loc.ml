(** Tests for the Table 1 line-accounting rules. *)

module Loc = Flux_workloads.Loc
module Workloads = Flux_workloads.Workloads

let count_eq name src ~loc ~spec ~annot =
  Alcotest.test_case name `Quick (fun () ->
      let c = Loc.count src in
      Alcotest.(check int) "loc" loc c.Loc.loc;
      Alcotest.(check int) "spec" spec c.Loc.spec;
      Alcotest.(check int) "annot" annot c.Loc.annot)

let tests =
  ( "loc",
    [
      count_eq "blank and comments ignored" "\n// comment\n  \nfn f() {}\n"
        ~loc:1 ~spec:0 ~annot:0;
      count_eq "attribute lines are spec"
        "#[lr::sig(fn(i32) -> i32)]\nfn f(x: i32) -> i32 { x }" ~loc:1 ~spec:1
        ~annot:0;
      count_eq "multi-line attribute"
        "#[lr::sig(fn(i32) -> i32\n          requires 0 < n)]\nfn f(x: i32) -> i32 { x }"
        ~loc:1 ~spec:2 ~annot:0;
      count_eq "body_invariant is annot"
        "fn f() {\n    while true {\n        body_invariant!(true);\n    }\n}"
        ~loc:4 ~annot:1 ~spec:0;
      Alcotest.test_case "benchmark spec asymmetry (paper §5.2)" `Quick
        (fun () ->
          (* across the whole suite, the Prusti versions need roughly 2x
             the specification lines of the Flux versions *)
          let fs, ps =
            List.fold_left
              (fun (f, p) (b : Workloads.benchmark) ->
                ( f + (Loc.count b.Workloads.bm_flux).Loc.spec,
                  p + (Loc.count b.Workloads.bm_prusti).Loc.spec ))
              (0, 0) Workloads.all
          in
          Alcotest.(check bool)
            (Printf.sprintf "prusti spec (%d) > flux spec (%d)" ps fs)
            true (ps > fs));
      Alcotest.test_case "flux sources carry zero annotations" `Quick
        (fun () ->
          List.iter
            (fun (b : Workloads.benchmark) ->
              Alcotest.(check int)
                (b.Workloads.bm_name ^ " flux annot")
                0
                (Loc.count b.Workloads.bm_flux).Loc.annot)
            Workloads.all);
      Alcotest.test_case "prusti sources carry annotations" `Quick (fun () ->
          let total =
            List.fold_left
              (fun a (b : Workloads.benchmark) ->
                a + (Loc.count b.Workloads.bm_prusti).Loc.annot)
              0 Workloads.all
          in
          Alcotest.(check bool)
            (Printf.sprintf "total annot lines = %d" total)
            true (total >= 30));
    ] )
