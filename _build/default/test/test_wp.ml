(** Tests for the Prusti-style baseline: annotated programs verify,
    programs with missing or wrong loop invariants are rejected — the
    annotation burden the paper measures in §5.3. *)

module Wp = Flux_wp.Wp

let accepts name src =
  Alcotest.test_case name `Quick (fun () ->
      let r = Wp.verify_source src in
      if not (Wp.report_ok r) then
        Alcotest.failf "expected OK, got:@.%s"
          (String.concat "\n"
             (List.map (fun e -> Format.asprintf "%a" Wp.pp_error e)
                (Wp.report_errors r))))

let rejects name src =
  Alcotest.test_case name `Quick (fun () ->
      match Wp.verify_source src with
      | r when not (Wp.report_ok r) -> ()
      | exception Wp.Wp_error _ -> ()
      | _ -> Alcotest.fail "expected the baseline to reject this program")

let tests =
  ( "wp",
    [
      accepts "bounds from a guard"
        {|fn f(v: &RVec<i32>, i: usize) -> i32 {
              if i < v.len() { *v.get(i) } else { 0 }
          }|};
      rejects "unguarded access"
        {|fn f(v: &RVec<i32>, i: usize) -> i32 { *v.get(i) }|};
      accepts "loop with invariant"
        {|fn sum(v: &RVec<i32>) -> i32 {
              let mut s = 0;
              let mut i = 0;
              while i < v.len() {
                  body_invariant!(i <= v.len());
                  s = s + *v.get(i);
                  i += 1;
              }
              s
          }|};
      rejects "loop without the invariant fails (annotation burden)"
        {|fn sum2(v: &RVec<i32>) -> i32 {
              let mut s = 0;
              let mut j = v.len();
              while 0 < j {
                  j -= 1;
                  s = s + *v.get(j);
              }
              s
          }|};
      accepts "the same loop verifies once annotated"
        {|fn sum2(v: &RVec<i32>) -> i32 {
              let mut s = 0;
              let mut j = v.len();
              while 0 < j {
                  body_invariant!(j <= v.len());
                  j -= 1;
                  s = s + *v.get(j);
              }
              s
          }|};
      accepts "contracts compose across calls"
        {|#[requires(i < v.len())]
          #[ensures(result == v.lookup(i))]
          fn read(v: &RVec<i32>, i: usize) -> i32 { *v.get(i) }
          fn client(v: &RVec<i32>) -> i32 {
              if 0 < v.len() { read(v, 0) } else { 0 }
          }|};
      rejects "caller must establish the precondition"
        {|#[requires(i < v.len())]
          fn read(v: &RVec<i32>, i: usize) -> i32 { *v.get(i) }
          fn client(v: &RVec<i32>) -> i32 { read(v, 0) }|};
      accepts "push axiom: new length"
        {|fn f() -> i32 {
              let mut v: RVec<i32> = RVec::new();
              v.push(7);
              *v.get(0)
          }|};
      accepts "store frame: other slots unchanged"
        {|#[requires(2 <= v.len())]
          #[ensures(result == old(v.lookup(1)))]
          fn f(v: &mut RVec<i32>) -> i32 {
              *v.get_mut(0) = 9;
              *v.get(1)
          }|};
      accepts "quantified postcondition (kmp-style table)"
        {|#[requires(0 < n)]
          #[ensures(result.len() == n)]
          #[ensures(forall(|x: usize| x < result.len() ==> result.lookup(x) == 0))]
          fn zeros(n: usize) -> RVec<usize> {
              let mut t = RVec::new();
              let mut i = 0;
              while i < n {
                  body_invariant!(t.len() == i && i <= n);
                  body_invariant!(forall(|x: usize| x < t.len() ==> t.lookup(x) == 0));
                  t.push(0);
                  i += 1;
              }
              t
          }|};
      rejects "quantified postcondition without the quantified invariant"
        {|#[requires(0 < n)]
          #[ensures(forall(|x: usize| x < result.len() ==> result.lookup(x) == 0))]
          fn zeros(n: usize) -> RVec<usize> {
              let mut t = RVec::new();
              let mut i = 0;
              while i < n {
                  body_invariant!(t.len() == i && i <= n);
                  t.push(0);
                  i += 1;
              }
              t
          }|};
      accepts "old() in ensures"
        {|#[ensures(v.len() == old(v.len()))]
          fn touch(v: &mut RVec<f32>) {
              if 0 < v.len() { *v.get_mut(0) = 0.0; }
          }|};
      rejects "ensures violated by a push"
        {|#[ensures(v.len() == old(v.len()))]
          fn f(v: &mut RVec<f32>) { v.push(1.0); }|};
      accepts "swap keeps bounds"
        {|#[requires(2 <= v.len())]
          fn f(v: &mut RVec<i32>) { v.swap(0, 1); }|};
      rejects "pop requires non-empty"
        {|fn f(v: &mut RVec<i32>) -> i32 { v.pop() }|};
      accepts "assert discharged from facts"
        {|fn f(n: usize) { if 3 <= n { assert!(2 <= n); } }|};
      rejects "assert not discharged"
        {|fn f(n: usize) { assert!(2 <= n); }|};
    ] )
