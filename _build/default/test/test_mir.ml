(** Tests for MIR lowering: CFG structure, desugaring of method calls
    and short-circuit operators, and the liveness analysis. *)

open Flux_syntax
module Ir = Flux_mir.Ir
module Lower = Flux_mir.Lower
module Liveness = Flux_mir.Liveness

let lower_fn src name =
  let prog = Parser.parse_program src in
  Typeck.check_program prog;
  match List.assoc_opt name (Lower.lower_program prog) with
  | Some b -> b
  | None -> Alcotest.failf "no body for %s" name

let count_calls (b : Ir.body) pred =
  Array.fold_left
    (fun acc blk ->
      match blk.Ir.term with
      | Ir.TCall { tc_func; _ } when pred tc_func -> acc + 1
      | _ -> acc)
    0 b.Ir.mb_blocks

let test_loop_shape () =
  let b =
    lower_fn "fn f(n: usize) { let mut i = 0; while i < n { i += 1; } }" "f"
  in
  let heads =
    Array.to_list b.Ir.mb_loop_heads |> List.filter (fun x -> x) |> List.length
  in
  Alcotest.(check int) "one loop head" 1 heads

let test_method_desugar () =
  let b =
    lower_fn
      "fn f() -> usize { let mut v: RVec<i32> = RVec::new(); v.push(1); v.len() }"
      "f"
  in
  Alcotest.(check int) "push call" 1 (count_calls b (String.equal "RVec::push"));
  Alcotest.(check int) "len call" 1 (count_calls b (String.equal "RVec::len"));
  Alcotest.(check int) "new call" 1 (count_calls b (String.equal "RVec::new"));
  (* the push receiver must be a mutable borrow temp *)
  let has_mut_borrow =
    Array.exists
      (fun blk ->
        List.exists
          (function
            | Ir.SAssign (_, Ir.RRef (Ast.Mut, _), _) -> true
            | _ -> false)
          blk.Ir.stmts)
      b.Ir.mb_blocks
  in
  Alcotest.(check bool) "mutable borrow temp" true has_mut_borrow

let test_short_circuit () =
  (* i < v.len() && *v.get(i) > 0 must not evaluate get before the
     length check: the get call must be dominated by the comparison *)
  let b =
    lower_fn
      "fn f(v: &RVec<i32>, i: usize) -> bool { i < v.len() && 0 < *v.get(i) }"
      "f"
  in
  (* there must be at least two switches (one per conjunct path) *)
  let switches =
    Array.fold_left
      (fun acc blk ->
        match blk.Ir.term with Ir.TSwitch _ -> acc + 1 | _ -> acc)
      0 b.Ir.mb_blocks
  in
  Alcotest.(check bool) "branching for &&" true (switches >= 2)

let test_early_return () =
  let b = lower_fn "fn f(x: i32) -> i32 { if x < 0 { return 0; } x }" "f" in
  let returns =
    Array.fold_left
      (fun acc blk ->
        match blk.Ir.term with Ir.TReturn -> acc + 1 | _ -> acc)
      0 b.Ir.mb_blocks
  in
  Alcotest.(check bool) "two returns" true (returns >= 2)

let test_invariant_in_header () =
  let b =
    lower_fn
      "fn f(n: usize) { let mut i = 0; while i < n { body_invariant!(i <= n); i += 1; } }"
      "f"
  in
  let found = ref false in
  Array.iteri
    (fun bb blk ->
      if b.Ir.mb_loop_heads.(bb) then
        List.iter
          (function Ir.SInvariant _ -> found := true | _ -> ())
          blk.Ir.stmts)
    b.Ir.mb_blocks;
  Alcotest.(check bool) "invariant hoisted to header" true !found

let test_autoderef_receiver () =
  (* calling a method on a &mut parameter reborrows *x *)
  let b = lower_fn "fn f(v: &mut RVec<f32>) -> usize { v.len() }" "f" in
  let reborrows =
    Array.exists
      (fun blk ->
        List.exists
          (function
            | Ir.SAssign (_, Ir.RRef (_, p), _) -> p.Ir.projs = [ Ir.PDeref ]
            | _ -> false)
          blk.Ir.stmts)
      b.Ir.mb_blocks
  in
  Alcotest.(check bool) "reborrow through deref" true reborrows

let test_liveness () =
  let b =
    lower_fn
      "fn f(n: usize) -> usize {\n\
      \  let mut acc = 0;\n\
      \  let dead = 17;\n\
      \  let mut i = 0;\n\
      \  while i < n { acc += 1; i += 1; }\n\
      \  acc\n\
       }"
      "f"
  in
  let live = Liveness.compute b in
  (* find the loop head and the locals by name *)
  let local_of name =
    let r = ref (-1) in
    Array.iteri (fun i d -> if d.Ir.ld_name = name then r := i) b.Ir.mb_locals;
    !r
  in
  let head = ref (-1) in
  Array.iteri (fun i h -> if h then head := i) b.Ir.mb_loop_heads;
  let at_head = Liveness.live_at live ~block:!head in
  Alcotest.(check bool) "acc live at loop" true at_head.(local_of "acc");
  Alcotest.(check bool) "i live at loop" true at_head.(local_of "i");
  Alcotest.(check bool) "dead not live" false at_head.(local_of "dead")

let test_rpo () =
  let b =
    lower_fn "fn f(n: usize) { let mut i = 0; while i < n { i += 1; } }" "f"
  in
  let rpo = Ir.reverse_postorder b in
  Alcotest.(check int) "covers all blocks" (Array.length b.Ir.mb_blocks)
    (List.length rpo);
  Alcotest.(check int) "starts at entry" 0 (List.hd rpo)

let test_place_ty () =
  let src =
    "struct P { v: RVec<f32> }\nfn f(p: &mut P) -> usize { p.v.len() }"
  in
  let prog = Parser.parse_program src in
  Typeck.check_program prog;
  let b = List.assoc "f" (Lower.lower_program prog) in
  let ty =
    Ir.place_ty prog b { Ir.base = 1; Ir.projs = [ Ir.PDeref; Ir.PField "v" ] }
  in
  Alcotest.(check bool) "field type" true (Ast.ty_equal ty (Ast.TVec Ast.TFloat))

let test_dominators () =
  let b =
    lower_fn
      "fn f(n: usize) {\n\
      \  let mut i = 0;\n\
      \  while i < n {\n\
      \    let mut j = 0;\n\
      \    while j < n { j += 1; }\n\
      \    i += 1;\n\
      \  }\n\
       }"
      "f"
  in
  let dom = Ir.dominators b in
  (* the entry dominates everything *)
  Array.iteri
    (fun i di ->
      ignore i;
      Alcotest.(check bool) "entry dominates" true di.(0))
    dom;
  (* every loop head dominates its back-edge sources *)
  let preds = Ir.predecessors b in
  Array.iteri
    (fun h is_head ->
      if is_head then
        let back = List.filter (fun p -> dom.(p).(h)) preds.(h) in
        Alcotest.(check bool) "has a dominated back edge" true (back <> []))
    b.Ir.mb_loop_heads

let tests =
  ( "mir",
    [
      Alcotest.test_case "loop shape" `Quick test_loop_shape;
      Alcotest.test_case "method desugaring" `Quick test_method_desugar;
      Alcotest.test_case "short-circuit &&" `Quick test_short_circuit;
      Alcotest.test_case "early return" `Quick test_early_return;
      Alcotest.test_case "invariants in loop header" `Quick test_invariant_in_header;
      Alcotest.test_case "receiver autoderef" `Quick test_autoderef_receiver;
      Alcotest.test_case "liveness" `Quick test_liveness;
      Alcotest.test_case "reverse postorder" `Quick test_rpo;
      Alcotest.test_case "place types" `Quick test_place_ty;
      Alcotest.test_case "dominators" `Quick test_dominators;
    ] )
