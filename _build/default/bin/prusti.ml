(** The [prusti] command-line verifier — the program-logic baseline.

    Usage: [prusti check FILE.rs] verifies a program annotated with
    Prusti-style contracts ([#[requires]], [#[ensures]]) and loop
    invariants ([body_invariant!]). *)

open Cmdliner
module Wp = Flux_wp.Wp

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_cmd_run file quiet =
  try
    let src = read_file file in
    let report = Wp.verify_source src in
    List.iter
      (fun (fr : Wp.fn_report) ->
        if not quiet then
          Format.printf "%-24s %s  (%d VCs, %.3fs)@." fr.fr_name
            (if Wp.fn_ok fr then "OK" else "ERROR")
            fr.fr_vcs fr.fr_time;
        List.iter (fun e -> Format.printf "  error: %a@." Wp.pp_error e) fr.fr_errors)
      report.Wp.rp_fns;
    if Wp.report_ok report then begin
      if not quiet then
        Format.printf "prusti: %d function(s) verified in %.3fs@."
          (List.length report.Wp.rp_fns)
          report.Wp.rp_time;
      0
    end
    else begin
      Format.printf "prusti: verification FAILED@.";
      1
    end
  with
  | Sys_error msg ->
      Format.eprintf "prusti: %s@." msg;
      2
  | Flux_syntax.Lexer.Error (msg, p) ->
      Format.eprintf "prusti: %s:%d:%d: lexical error: %s@." file p.line p.col msg;
      2
  | Flux_syntax.Parser.Error (msg, p) ->
      Format.eprintf "prusti: %s:%d:%d: parse error: %s@." file p.line p.col msg;
      2
  | Flux_syntax.Typeck.Error (msg, sp) ->
      Format.eprintf "prusti: %s:%a: type error: %s@." file
        Flux_syntax.Ast.pp_span sp msg;
      2

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Annotated source file")

let quiet_flag = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print errors")

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Verify a program with the program-logic baseline")
    Term.(const check_cmd_run $ file_arg $ quiet_flag)

let main =
  Cmd.group
    (Cmd.info "prusti" ~version:"0.1.0"
       ~doc:"Program-logic baseline verifier (Prusti-style), for the paper's comparison")
    [ check_cmd ]

let () = exit (Cmd.eval' main)
