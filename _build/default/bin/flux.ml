(** The [flux] command-line verifier.

    Usage: [flux check FILE.rs] type-checks a program in the Rust
    subset against its [#[lr::sig(...)]] refinement signatures, with
    optional dumps of the MIR, the generated Horn constraints and the
    inferred κ solutions. *)

open Cmdliner
module Checker = Flux_check.Checker

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_cmd_run file dump_mir dump_solution quiet =
  try
    let src = read_file file in
    let prog = Flux_syntax.Parser.parse_program src in
    Flux_syntax.Typeck.check_program prog;
    if dump_mir then
      List.iter
        (fun (_, body) -> Format.printf "%a@." Flux_mir.Ir.pp_body body)
        (Flux_mir.Lower.lower_program prog);
    let report = Checker.check_program_ast prog in
    List.iter
      (fun (fr : Checker.fn_report) ->
        if not quiet then
          Format.printf "%-24s %s  (%d κ, %d clauses, %.3fs)@." fr.fr_name
            (if Checker.fn_ok fr then "OK" else "ERROR")
            fr.fr_kvars fr.fr_clauses fr.fr_time;
        List.iter
          (fun e -> Format.printf "  error: %a@." Checker.pp_error e)
          fr.fr_errors;
        if dump_solution then
          match fr.fr_solution with
          | Some sol ->
              Format.printf "  inferred solution:@.%a" Flux_fixpoint.Solve.pp_solution sol
          | None -> ())
      report.Checker.rp_fns;
    if Checker.report_ok report then begin
      if not quiet then
        Format.printf "flux: %d function(s) verified in %.3fs@."
          (List.length report.Checker.rp_fns)
          report.Checker.rp_time;
      0
    end
    else begin
      Format.printf "flux: verification FAILED@.";
      1
    end
  with
  | Sys_error msg ->
      Format.eprintf "flux: %s@." msg;
      2
  | Flux_syntax.Lexer.Error (msg, p) ->
      Format.eprintf "flux: %s:%d:%d: lexical error: %s@." file p.line p.col msg;
      2
  | Flux_syntax.Parser.Error (msg, p) ->
      Format.eprintf "flux: %s:%d:%d: parse error: %s@." file p.line p.col msg;
      2
  | Flux_syntax.Typeck.Error (msg, sp) ->
      Format.eprintf "flux: %s:%a: type error: %s@." file Flux_syntax.Ast.pp_span
        sp msg;
      2

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Rust-subset source file")

let dump_mir_flag =
  Arg.(value & flag & info [ "dump-mir" ] ~doc:"Print the lowered MIR")

let dump_solution_flag =
  Arg.(value & flag & info [ "dump-solution" ] ~doc:"Print the inferred κ solutions")

let quiet_flag = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print errors")

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Verify a program with liquid refinement types")
    Term.(const check_cmd_run $ file_arg $ dump_mir_flag $ dump_solution_flag $ quiet_flag)

let main =
  Cmd.group
    (Cmd.info "flux" ~version:"0.1.0"
       ~doc:"Liquid types for a Rust subset (OCaml reproduction of Flux, PLDI 2023)")
    [ check_cmd ]

let () = exit (Cmd.eval' main)
