package "smt" (
  directory = "smt"
  description = ""
  requires = "unix"
  archive(byte) = "flux_smt.cma"
  archive(native) = "flux_smt.cmxa"
  plugin(byte) = "flux_smt.cma"
  plugin(native) = "flux_smt.cmxs"
)