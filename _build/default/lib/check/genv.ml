(** Global checking environment: resolved signatures for every function,
    resolved struct declarations, and the lowered MIR bodies. *)

open Flux_rtype
module Ast = Flux_syntax.Ast
module Ir = Flux_mir.Ir

type t = {
  prog : Ast.program;
  senv : Rty.struct_env;
  sigs : (string, Specconv.fsig) Hashtbl.t;
  bodies : (string, Ir.body) Hashtbl.t;
}

let build (prog : Ast.program) : t =
  let senv = Specconv.build_struct_env prog in
  let sigs = Hashtbl.create 16 in
  List.iter
    (fun (fd : Ast.fn_def) ->
      Hashtbl.replace sigs fd.Ast.fn_name (Specconv.resolve_sig senv fd))
    (Ast.program_fns prog);
  let bodies = Hashtbl.create 16 in
  List.iter
    (fun (name, body) -> Hashtbl.replace bodies name body)
    (Flux_mir.Lower.lower_program prog);
  { prog; senv; sigs; bodies }

let find_sig (g : t) name = Hashtbl.find_opt g.sigs name
let find_body (g : t) name = Hashtbl.find_opt g.bodies name
