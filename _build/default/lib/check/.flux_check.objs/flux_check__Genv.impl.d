lib/check/genv.ml: Flux_mir Flux_rtype Flux_syntax Hashtbl List Rty Specconv
