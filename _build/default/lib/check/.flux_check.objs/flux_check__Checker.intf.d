lib/check/checker.mli: Flux_fixpoint Flux_mir Flux_syntax Format Genv
