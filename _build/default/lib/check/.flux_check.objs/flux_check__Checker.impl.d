lib/check/checker.ml: Array Flux_fixpoint Flux_mir Flux_rtype Flux_smt Flux_syntax Format Genv Hashtbl Horn Int List Map Printf Rty Solve Sort Specconv String Sub Term Unix
