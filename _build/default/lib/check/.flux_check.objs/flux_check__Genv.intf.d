lib/check/genv.mli: Flux_mir Flux_rtype Flux_syntax Hashtbl Rty Specconv
