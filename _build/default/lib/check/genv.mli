(** Global checking environment: resolved signatures, struct
    declarations, and lowered MIR bodies for a whole program. *)

open Flux_rtype
module Ast = Flux_syntax.Ast
module Ir = Flux_mir.Ir

type t = {
  prog : Ast.program;
  senv : Rty.struct_env;
  sigs : (string, Specconv.fsig) Hashtbl.t;
  bodies : (string, Ir.body) Hashtbl.t;
}

val build : Ast.program -> t
val find_sig : t -> string -> Specconv.fsig option
val find_body : t -> string -> Ir.body option
