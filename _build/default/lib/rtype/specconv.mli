(** Conversion from the surface specification language (parsed
    [#[lr::...]] attributes) into internal refinement types and terms,
    including resolution of [@binder] refinement parameters. *)

open Flux_smt
module Ast = Flux_syntax.Ast

exception Spec_error of string

(** Conversion context: collects [@binders] as they are declared and
    tracks existential value binders in scope. *)
type cx = {
  senv : Rty.struct_env;
  mutable params : (string * Sort.t) list;
  mutable scope : (string * Sort.t) list;
}

val make_cx : Rty.struct_env -> cx

val conv_term : cx -> Ast.expr -> Term.t
(** Refinement expression → term; raises {!Spec_error} on unbound
    variables or unsupported forms. *)

val conv_rty : cx -> Ast.rty -> Rty.rty

(** A resolved function signature (the paper's
    [∀v:σ. fn(r; x.T) → ρ.T]). *)
type fsig = {
  fsg_name : string;
  fsg_params : (string * Sort.t) list;  (** refinement parameters *)
  fsg_args : Rty.rty list;
  fsg_requires : Term.t list;
  fsg_ret : Rty.rty;
  fsg_ensures : (int * Rty.rty) list;
      (** argument position → updated type after return (strg refs) *)
}

val default_sig : Ast.fn_def -> fsig
(** Fully-unrefined signature for functions without a Flux spec. *)

val resolve_sig : Rty.struct_env -> Ast.fn_def -> fsig

val resolve_struct : Rty.struct_env -> Ast.struct_def -> Rty.struct_info

val build_struct_env : Ast.program -> Rty.struct_env
