lib/rtype/sub.ml: Flux_fixpoint Flux_smt Format Horn List Rty Sort String Term
