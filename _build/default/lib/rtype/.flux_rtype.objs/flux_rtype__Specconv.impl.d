lib/rtype/specconv.ml: Flux_fixpoint Flux_smt Flux_syntax Format Hashtbl Horn List Option Rty Sort String Term
