lib/rtype/sub.mli: Flux_fixpoint Flux_smt Horn Rty Sort Term
