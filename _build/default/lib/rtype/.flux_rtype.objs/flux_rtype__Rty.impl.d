lib/rtype/rty.ml: Flux_fixpoint Flux_mir Flux_smt Flux_syntax Format Hashtbl Horn List Printf Sort String Term
