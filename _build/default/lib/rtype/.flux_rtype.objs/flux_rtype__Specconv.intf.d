lib/rtype/specconv.mli: Flux_smt Flux_syntax Rty Sort Term
