(** Subtyping as constraint generation (fig. 8 of the paper): reduces a
    subtyping obligation τ₁ ≼ τ₂ under a logical context to flat Horn
    clauses. Shared references are covariant (and [&mut] coerces to
    [&]); mutable references are checked in both directions. *)

open Flux_smt
open Flux_fixpoint

type cx = {
  binders : (string * Sort.t) list;
  hyps : Horn.pred list;
}

val empty_cx : cx
val push_binder : cx -> string * Sort.t -> cx
val push_hyp : cx -> Horn.pred -> cx
val push_hyps : cx -> Horn.pred list -> cx

val clause : cx -> tag:int -> Horn.pred -> Horn.clause

val unpack :
  Rty.struct_env ->
  Rty.base ->
  (string * Sort.t) list ->
  Horn.pred list ->
  (string * Sort.t) list * Horn.pred list * Rty.base * Term.t list
(** Open an existential refinement: fresh rigid binders, substituted
    base and predicates, plus the base's index invariants. *)

val normalize : Rty.struct_env -> cx -> Rty.rty -> cx * Rty.rty
(** Bring a type into [Ix] form, opening existentials into the
    context. *)

val sub : Rty.struct_env -> cx -> tag:int -> Rty.rty -> Rty.rty -> Horn.clause list
(** Raises {!Rty.Type_error} on shape mismatches. *)
