(** Subtyping as constraint generation (fig. 8 of the paper).

    [sub] reduces a subtyping obligation τ₁ ≼ τ₂ under a logical
    context to a list of flat Horn clauses: S-RType emits index
    equalities, S-Exists instantiates the right-hand existential with
    the left-hand indices (emitting its predicates as clause heads,
    possibly κ applications), and S-Unpack opens left-hand existentials
    into fresh rigid binders and hypotheses. References follow
    S-Bor-Shr/S-Bor-Mut: shared references are covariant, mutable ones
    are checked in both directions. *)

open Flux_smt
open Flux_fixpoint
open Rty

type cx = {
  binders : (string * Sort.t) list;
  hyps : Horn.pred list;
}

let empty_cx = { binders = []; hyps = [] }

let push_binder cx (x, s) = { cx with binders = cx.binders @ [ (x, s) ] }
let push_hyp cx p = { cx with hyps = cx.hyps @ [ p ] }
let push_hyps cx ps = { cx with hyps = cx.hyps @ ps }

let clause cx ~tag (head : Horn.pred) : Horn.clause =
  { Horn.binders = cx.binders; Horn.hyps = cx.hyps; Horn.head = head; Horn.tag = tag }

(** Open an existential refinement: fresh rigid binders, substituted
    base and predicates, plus the index invariants of the base. *)
let unpack (senv : struct_env) (b : base) (binders : (string * Sort.t) list)
    (preds : Horn.pred list) :
    (string * Sort.t) list * Horn.pred list * base * Term.t list =
  let renaming =
    List.map (fun (x, s) -> (x, fresh_name (if x = "" then "v" else x), s)) binders
  in
  let m = List.map (fun (x, y, s) -> (x, Term.Var (y, s))) renaming in
  let fresh_binders = List.map (fun (_, y, s) -> (y, s)) renaming in
  let ts = List.map (fun (_, y, s) -> Term.Var (y, s)) renaming in
  let b' = subst_base m b in
  let preds' = List.map (subst_pred m) preds in
  let invs = List.map (fun t -> Horn.Conc t) (index_invariants senv b' ts) in
  (fresh_binders, preds' @ invs, b', ts)

(** Normalize an [rty] so that its top-level refinement is [Ix]:
    existentials are opened into [cx]. Returns the extended context. *)
let normalize (senv : struct_env) (cx : cx) (t : rty) : cx * rty =
  match t with
  | TBase (b, Ex (bs, ps)) ->
      let fresh_bs, hyp_ps, b', ts = unpack senv b bs ps in
      let cx = { binders = cx.binders @ fresh_bs; hyps = cx.hyps @ hyp_ps } in
      (cx, TBase (b', Ix ts))
  | _ -> (cx, t)

let rec sub (senv : struct_env) (cx : cx) ~(tag : int) (t1 : rty) (t2 : rty) :
    Horn.clause list =
  match (t1, t2) with
  | TBase (_, Ex _), _ ->
      let cx, t1' = normalize senv cx t1 in
      sub senv cx ~tag t1' t2
  | TBase (b1, Ix ts1), TBase (b2, Ex ([], [])) ->
      (* unrefined right-hand side of unknown arity: base check only *)
      ignore ts1;
      base_sub senv cx ~tag b1 b2
  | TBase (b1, Ix ts1), TBase (b2, Ex (bs, ps)) ->
      if List.length bs <> List.length ts1 then
        terr "index arity mismatch: %s vs %s" (to_string t1) (to_string t2);
      let m = List.map2 (fun (x, _) t -> (x, t)) bs ts1 in
      let b2' = subst_base m b2 in
      let heads = List.map (subst_pred m) ps in
      base_sub senv cx ~tag b1 b2'
      @ List.filter_map
          (fun h ->
            match h with
            | Horn.Conc (Term.Bool true) -> None
            | _ -> Some (clause cx ~tag h))
          heads
  | TBase (b1, Ix ts1), TBase (b2, Ix ts2) ->
      if List.length ts1 <> List.length ts2 then
        terr "index arity mismatch: %s vs %s" (to_string t1) (to_string t2);
      base_sub senv cx ~tag b1 b2
      @ List.concat_map
          (fun (a, b) ->
            if Term.equal a b then []
            else [ clause cx ~tag (Horn.Conc (Term.mk_eq a b)) ])
          (List.combine ts1 ts2)
  | TRef ((Shr | Mut | Strg), a), TRef (Shr, b) ->
      (* shared references are covariant; &mut coerces to & *)
      sub senv cx ~tag a b
  | TRef ((Mut | Strg), a), TRef ((Mut | Strg), b) ->
      sub senv cx ~tag a b @ sub senv cx ~tag b a
  | TPtr (_, p1), TPtr (_, p2) when p1 = p2 -> []
  | TUninit _, TUninit _ -> []
  | _ -> terr "incompatible types: %s vs %s" (to_string t1) (to_string t2)

and base_sub senv cx ~tag (b1 : base) (b2 : base) : Horn.clause list =
  match (b1, b2) with
  | BInt k1, BInt k2 when k1 = k2 -> []
  | BBool, BBool | BFloat, BFloat | BUnit, BUnit -> []
  | BVec e1, BVec e2 -> sub senv cx ~tag e1 e2
  | BStruct s1, BStruct s2 when String.equal s1 s2 -> []
  | _ ->
      terr "incompatible base types: %s vs %s"
        (Format.asprintf "%a" pp_base b1)
        (Format.asprintf "%a" pp_base b2)
