(** Benchmark: k-means clustering (fig. 2 of the paper plus the full
    algorithm). Chosen by the paper to showcase invariants over
    collections of collections — every point and center is an
    n-dimensional vector, expressed by instantiating RVec's element
    parameter with the indexed type [RVec<f32, n>]. *)

let name = "kmeans"

let flux_src =
  {|
#[lr::trusted]
#[lr::sig(fn(usize) -> f32)]
fn flt(x: usize) -> f32;

#[lr::sig(fn(usize<@n>) -> RVec<f32, n>)]
fn init_zeros(n: usize) -> RVec<f32> {
    let mut vec = RVec::new();
    let mut i = 0;
    while i < n {
        vec.push(0.0);
        i += 1;
    }
    vec
}

#[lr::sig(fn(&RVec<f32, @n>, &RVec<f32, n>) -> f32)]
fn dist(x: &RVec<f32>, y: &RVec<f32>) -> f32 {
    let mut d = 0.0;
    let mut i = 0;
    while i < x.len() {
        let dx = *x.get(i) - *y.get(i);
        d = d + dx * dx;
        i += 1;
    }
    d
}

#[lr::sig(fn(&mut RVec<f32, @n>, &RVec<f32, n>))]
fn add(x: &mut RVec<f32>, y: &RVec<f32>) {
    let mut i = 0;
    while i < x.len() {
        *x.get_mut(i) = *x.get(i) + *y.get(i);
        i += 1;
    }
}

#[lr::sig(fn(&mut RVec<f32, @n>, usize))]
fn normal(x: &mut RVec<f32>, w: usize) {
    let mut i = 0;
    while i < x.len() {
        *x.get_mut(i) = *x.get(i) / flt(w);
        i += 1;
    }
}

#[lr::sig(fn(&mut RVec<f32, @n>, &RVec<f32, n>))]
fn copy_into(dst: &mut RVec<f32>, src: &RVec<f32>) {
    let mut i = 0;
    while i < dst.len() {
        *dst.get_mut(i) = *src.get(i);
        i += 1;
    }
}

#[lr::sig(fn(usize<@n>, &RVec<RVec<f32, n>, @k>, &RVec<f32, n>) -> usize{v: v < k}
          requires 0 < k)]
fn nearest(n: usize, cs: &RVec<RVec<f32>>, p: &RVec<f32>) -> usize {
    let mut best = 0;
    let mut bestd = dist(cs.get(0), p);
    let mut i = 1;
    while i < cs.len() {
        let d = dist(cs.get(i), p);
        if d < bestd {
            best = i;
            bestd = d;
        }
        i += 1;
    }
    best
}

#[lr::sig(fn(usize<@n>, usize<@k>, &mut RVec<RVec<f32, n>, k>, &RVec<RVec<f32, n>, @p>)
          requires 0 < k)]
fn kmeans_step(n: usize, k: usize, cs: &mut RVec<RVec<f32>>, points: &RVec<RVec<f32>>) {
    let mut sums = RVec::new();
    let mut counts = RVec::new();
    let mut i = 0;
    while i < k {
        sums.push(init_zeros(n));
        counts.push(0);
        i += 1;
    }
    let mut j = 0;
    while j < points.len() {
        let pt = points.get(j);
        let c = nearest(n, cs, pt);
        add(sums.get_mut(c), pt);
        *counts.get_mut(c) = *counts.get(c) + 1;
        j += 1;
    }
    let mut c2 = 0;
    while c2 < k {
        let w = *counts.get(c2);
        if 0 < w {
            normal(sums.get_mut(c2), w);
            copy_into(cs.get_mut(c2), sums.get(c2));
        }
        c2 += 1;
    }
}

#[lr::sig(fn(usize<@n>, &mut RVec<RVec<f32, n>, @k>, &RVec<RVec<f32, n>, @p>, usize)
          requires 0 < k)]
fn kmeans(n: usize, cs: &mut RVec<RVec<f32>>, points: &RVec<RVec<f32>>, iters: usize) {
    let mut it = 0;
    while it < iters {
        kmeans_step(n, cs.len(), cs, points);
        it += 1;
    }
}
|}

let prusti_src =
  {|
#[trusted]
fn flt(x: usize) -> f32;

#[ensures(result.len() == n)]
fn init_zeros(n: usize) -> RVec<f32> {
    let mut vec = RVec::new();
    let mut i = 0;
    while i < n {
        body_invariant!(vec.len() == i && i <= n);
        vec.push(0.0);
        i += 1;
    }
    vec
}

#[requires(x.len() == y.len())]
fn dist(x: &RVec<f32>, y: &RVec<f32>) -> f32 {
    let mut d = 0.0;
    let mut i = 0;
    while i < x.len() {
        body_invariant!(i <= x.len() && x.len() == y.len());
        let dx = *x.get(i) - *y.get(i);
        d = d + dx * dx;
        i += 1;
    }
    d
}

#[requires(x.len() == y.len())]
#[ensures(x.len() == old(x.len()))]
fn add(x: &mut RVec<f32>, y: &RVec<f32>) {
    let mut i = 0;
    while i < x.len() {
        body_invariant!(i <= x.len() && x.len() == y.len());
        body_invariant!(x.len() == old(x.len()));
        *x.get_mut(i) = *x.get(i) + *y.get(i);
        i += 1;
    }
}

#[ensures(x.len() == old(x.len()))]
fn normal(x: &mut RVec<f32>, w: usize) {
    let mut i = 0;
    while i < x.len() {
        body_invariant!(i <= x.len() && x.len() == old(x.len()));
        *x.get_mut(i) = *x.get(i) / flt(w);
        i += 1;
    }
}

#[requires(dst.len() == src.len())]
#[ensures(dst.len() == old(dst.len()))]
fn copy_into(dst: &mut RVec<f32>, src: &RVec<f32>) {
    let mut i = 0;
    while i < dst.len() {
        body_invariant!(i <= dst.len() && dst.len() == src.len());
        body_invariant!(dst.len() == old(dst.len()));
        *dst.get_mut(i) = *src.get(i);
        i += 1;
    }
}

// In Prusti, quantifying over the inner vectors requires a trusted
// matrix abstraction (§5.2 of the paper); here each center/point is a
// row of a conceptual matrix and we expose only length facts.
#[requires(0 < cs.len())]
#[requires(forall(|r: usize| r < cs.len() ==> cs.row_len(r) == p.len()))]
#[ensures(result < cs.len())]
fn nearest(n: usize, cs: &RVec<RVec<f32>>, p: &RVec<f32>) -> usize {
    let mut best = 0;
    let mut bestd = dist(cs.get(0), p);
    let mut i = 1;
    while i < cs.len() {
        body_invariant!(best < cs.len() && i <= cs.len());
        body_invariant!(forall(|r: usize| r < cs.len() ==> cs.row_len(r) == p.len()));
        let d = dist(cs.get(i), p);
        if d < bestd {
            best = i;
            bestd = d;
        }
        i += 1;
    }
    best
}

// Unlike the Flux version (one function), the Prusti encoding must be
// factored into one helper per loop: the quantified invariants about
// several containers at once otherwise overwhelm the VC machinery —
// the same pressure that §5.2 of the paper describes.
#[requires(0 < k)]
#[ensures(result.len() == k)]
#[ensures(forall(|r: usize| r < result.len() ==> result.row_len(r) == n))]
fn init_sums(n: usize, k: usize) -> RVec<RVec<f32>> {
    let mut sums = RVec::new();
    let mut i = 0;
    while i < k {
        body_invariant!(sums.len() == i && i <= k);
        body_invariant!(forall(|r: usize| r < sums.len() ==> sums.row_len(r) == n));
        sums.push(init_zeros(n));
        i += 1;
    }
    sums
}

#[ensures(result.len() == k)]
fn init_counts(k: usize) -> RVec<usize> {
    let mut counts = RVec::new();
    let mut i = 0;
    while i < k {
        body_invariant!(counts.len() == i && i <= k);
        counts.push(0);
        i += 1;
    }
    counts
}

#[requires(c < sums.len() && c < counts.len() && pt.len() == n)]
#[requires(forall(|r: usize| r < sums.len() ==> sums.row_len(r) == n))]
#[ensures(sums.len() == old(sums.len()) && counts.len() == old(counts.len()))]
#[ensures(forall(|r: usize| r < sums.len() ==> sums.row_len(r) == n))]
fn add_point(n: usize, sums: &mut RVec<RVec<f32>>, counts: &mut RVec<usize>,
             pt: &RVec<f32>, c: usize) {
    add(sums.get_mut(c), pt);
    *counts.get_mut(c) = *counts.get(c) + 1;
}

#[requires(0 < cs.len() && sums.len() == cs.len() && counts.len() == cs.len())]
#[requires(forall(|r: usize| r < cs.len() ==> cs.row_len(r) == n))]
#[requires(forall(|r: usize| r < points.len() ==> points.row_len(r) == n))]
#[requires(forall(|r: usize| r < sums.len() ==> sums.row_len(r) == n))]
#[ensures(sums.len() == old(sums.len()) && counts.len() == old(counts.len()))]
#[ensures(forall(|r: usize| r < sums.len() ==> sums.row_len(r) == n))]
fn accumulate(n: usize, cs: &RVec<RVec<f32>>, points: &RVec<RVec<f32>>,
              sums: &mut RVec<RVec<f32>>, counts: &mut RVec<usize>) {
    let mut j = 0;
    while j < points.len() {
        body_invariant!(sums.len() == cs.len() && counts.len() == cs.len());
        body_invariant!(sums.len() == old(sums.len()) && counts.len() == old(counts.len()));
        body_invariant!(forall(|r: usize| r < sums.len() ==> sums.row_len(r) == n));
        let pt = points.get(j);
        let c = nearest(n, cs, pt);
        add_point(n, sums, counts, pt, c);
        j += 1;
    }
}

#[requires(c2 < cs.len() && c2 < sums.len())]
#[requires(forall(|r: usize| r < sums.len() ==> sums.row_len(r) == n))]
#[requires(forall(|r: usize| r < cs.len() ==> cs.row_len(r) == n))]
#[ensures(cs.len() == old(cs.len()) && sums.len() == old(sums.len()))]
#[ensures(forall(|r: usize| r < cs.len() ==> cs.row_len(r) == n))]
#[ensures(forall(|r: usize| r < sums.len() ==> sums.row_len(r) == n))]
fn write_center(n: usize, cs: &mut RVec<RVec<f32>>, sums: &mut RVec<RVec<f32>>,
                c2: usize, w: usize) {
    if 0 < w {
        normal(sums.get_mut(c2), w);
        copy_into(cs.get_mut(c2), sums.get(c2));
    }
}

#[requires(cs.len() == k && sums.len() == k && counts.len() == k)]
#[requires(forall(|r: usize| r < sums.len() ==> sums.row_len(r) == n))]
#[requires(forall(|r: usize| r < cs.len() ==> cs.row_len(r) == n))]
#[ensures(cs.len() == old(cs.len()))]
#[ensures(forall(|r: usize| r < cs.len() ==> cs.row_len(r) == n))]
fn write_back(n: usize, k: usize, cs: &mut RVec<RVec<f32>>,
              sums: &mut RVec<RVec<f32>>, counts: &RVec<usize>) {
    let mut c2 = 0;
    while c2 < k {
        body_invariant!(sums.len() == k && cs.len() == k);
        body_invariant!(cs.len() == old(cs.len()));
        body_invariant!(forall(|r: usize| r < sums.len() ==> sums.row_len(r) == n));
        body_invariant!(forall(|r: usize| r < cs.len() ==> cs.row_len(r) == n));
        let w = *counts.get(c2);
        write_center(n, cs, sums, c2, w);
        c2 += 1;
    }
}

#[requires(0 < k && cs.len() == k)]
#[requires(forall(|r: usize| r < cs.len() ==> cs.row_len(r) == n))]
#[requires(forall(|r: usize| r < points.len() ==> points.row_len(r) == n))]
#[ensures(cs.len() == old(cs.len()))]
#[ensures(forall(|r: usize| r < cs.len() ==> cs.row_len(r) == n))]
fn kmeans_step(n: usize, k: usize, cs: &mut RVec<RVec<f32>>, points: &RVec<RVec<f32>>) {
    let mut sums = init_sums(n, k);
    let mut counts = init_counts(k);
    accumulate(n, cs, points, &mut sums, &mut counts);
    write_back(n, k, cs, &mut sums, &counts);
}

#[requires(0 < cs.len())]
#[requires(forall(|r: usize| r < cs.len() ==> cs.row_len(r) == n))]
#[requires(forall(|r: usize| r < points.len() ==> points.row_len(r) == n))]
fn kmeans(n: usize, cs: &mut RVec<RVec<f32>>, points: &RVec<RVec<f32>>, iters: usize) {
    let mut it = 0;
    while it < iters {
        body_invariant!(forall(|r: usize| r < cs.len() ==> cs.row_len(r) == n));
        kmeans_step(n, cs.len(), cs, points);
        it += 1;
    }
}
|}
