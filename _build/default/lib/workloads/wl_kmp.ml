(** Benchmark: Knuth–Morris–Pratt string search. Chosen by the paper to
    showcase quantified invariants via polymorphism: the failure table
    holds indices into the pattern, expressed as the element type
    [usize{v: v < m}] instead of a universally quantified invariant. *)

let name = "kmp"

let flux_src =
  {|
#[lr::sig(fn(&RVec<i32, @m>) -> RVec<usize{v: v < m}, m> requires 0 < m)]
fn kmp_table(p: &RVec<i32>) -> RVec<usize> {
    let m = p.len();
    let mut t = RVec::new();
    t.push(0);
    let mut i = 1;
    let mut j = 0;
    while i < m {
        if *p.get(i) == *p.get(j) {
            t.push(j + 1);
            i += 1;
            j += 1;
        } else if j == 0 {
            t.push(0);
            i += 1;
        } else {
            j = *t.get(j - 1);
        }
    }
    t
}

#[lr::sig(fn(&RVec<i32, @n>, &RVec<i32, @m>) -> usize requires 0 < m)]
fn kmp_search(text: &RVec<i32>, pat: &RVec<i32>) -> usize {
    let n = text.len();
    let m = pat.len();
    let t = kmp_table(pat);
    let mut i = 0;
    let mut j = 0;
    while i < n {
        if *text.get(i) == *pat.get(j) {
            i += 1;
            j += 1;
            if j == m {
                // the match starts m characters back; the guard makes
                // the usize subtraction visibly safe
                if m <= i {
                    return i - m;
                }
                return 0;
            }
        } else if j == 0 {
            i += 1;
        } else {
            j = *t.get(j - 1);
        }
    }
    n
}
|}

let prusti_src =
  {|
#[requires(0 < p.len())]
#[ensures(result.len() == p.len())]
#[ensures(forall(|x: usize| x < result.len() ==> result.lookup(x) < p.len()))]
fn kmp_table(p: &RVec<usize>) -> RVec<usize> {
    let m = p.len();
    let mut t = RVec::new();
    t.push(0);
    let mut i = 1;
    let mut j = 0;
    while i < m {
        body_invariant!(forall(|x: usize| x < t.len() ==> t.lookup(x) < i));
        body_invariant!(j < i && t.len() == i && i <= m);
        if *p.get(i) == *p.get(j) {
            t.push(j + 1);
            i += 1;
            j += 1;
        } else if j == 0 {
            t.push(0);
            i += 1;
        } else {
            j = *t.get(j - 1);
        }
    }
    t
}

#[requires(0 < pat.len())]
fn kmp_search(text: &RVec<usize>, pat: &RVec<usize>) -> usize {
    let n = text.len();
    let m = pat.len();
    let t = kmp_table(pat);
    let mut i = 0;
    let mut j = 0;
    while i < n {
        body_invariant!(j < m && i <= n && t.len() == m);
        body_invariant!(forall(|x: usize| x < t.len() ==> t.lookup(x) < m));
        if *text.get(i) == *pat.get(j) {
            i += 1;
            j += 1;
            if j == m {
                if m <= i {
                    return i - m;
                }
                return 0;
            }
        } else if j == 0 {
            i += 1;
        } else {
            j = *t.get(j - 1);
        }
    }
    n
}
|}
