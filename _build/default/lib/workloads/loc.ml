(** Line accounting for Table 1: LOC (code), Spec (function
    specification lines: attributes like [#[lr::sig(..)]],
    [#[requires]], [#[ensures]]) and Annot (user loop-invariant lines:
    [body_invariant!]). Blank lines and comment-only lines are not
    counted, mirroring the paper's methodology. *)

type counts = { loc : int; spec : int; annot : int }

let zero = { loc = 0; spec = 0; annot = 0 }

let trim = String.trim

let is_blank_or_comment line =
  let l = trim line in
  String.length l = 0
  || (String.length l >= 2 && String.sub l 0 2 = "//")
  || (String.length l >= 2 && String.sub l 0 2 = "/*")
  || (String.length l >= 1 && l.[0] = '*')

let starts_with prefix l =
  String.length l >= String.length prefix
  && String.sub l 0 (String.length prefix) = prefix

let contains sub l =
  let n = String.length l and m = String.length sub in
  let rec go i = i + m <= n && (String.sub l i m = sub || go (i + 1)) in
  m = 0 || go 0

(** Count one source string. Attribute lines may span several physical
    lines (tracked by bracket depth starting from [#[]). *)
let count (src : string) : counts =
  let lines = String.split_on_char '\n' src in
  let in_attr = ref 0 in
  List.fold_left
    (fun acc line ->
      let l = trim line in
      if is_blank_or_comment line then acc
      else if !in_attr > 0 then begin
        (* continuation of a multi-line attribute *)
        String.iter
          (fun c ->
            if c = '[' then incr in_attr
            else if c = ']' then decr in_attr)
          l;
        { acc with spec = acc.spec + 1 }
      end
      else if starts_with "#[" l then begin
        let depth = ref 0 in
        String.iter
          (fun c ->
            if c = '[' then incr depth else if c = ']' then decr depth)
          l;
        in_attr := !depth;
        { acc with spec = acc.spec + 1 }
      end
      else if contains "body_invariant!" l then { acc with annot = acc.annot + 1 }
      else { acc with loc = acc.loc + 1 })
    zero lines
