(** An extended suite of verified programs beyond Table 1, exercising
    corners of the type system the paper describes but does not
    benchmark: data-dependent result lengths (existential indices),
    user functions with strong references, refined index vectors,
    in-place reversal with underflow guards, windowed accesses, and a
    struct-based stack abstraction. Each entry must verify with Flux;
    the test suite also runs them under the interpreter. *)

type extra = { ex_name : string; ex_src : string }

let all : extra list =
  [
    {
      ex_name = "selection_sort";
      ex_src =
        {|
#[lr::sig(fn(&mut RVec<f32, @n>))]
fn selection_sort(v: &mut RVec<f32>) {
    let n = v.len();
    let mut i = 0;
    while i < n {
        let mut min = i;
        let mut j = i + 1;
        while j < n {
            if *v.get(j) < *v.get(min) {
                min = j;
            }
            j += 1;
        }
        v.swap(i, min);
        i += 1;
    }
}
|};
    }
    ;
    {
      ex_name = "reverse_in_place";
      ex_src =
        {|
#[lr::sig(fn(&mut RVec<i32, @n>))]
fn reverse(v: &mut RVec<i32>) {
    let n = v.len();
    let mut i = 0;
    while 2 * i + 1 < n {
        v.swap(i, n - i - 1);
        i += 1;
    }
}
|};
    }
    ;
    {
      ex_name = "filter_positive";
      ex_src =
        {|
// data-dependent output size: all we know is out.len() <= in.len()
#[lr::sig(fn(&RVec<i32, @n>) -> RVec<i32{v: 0 < v}>{v: v <= n})]
fn filter_positive(xs: &RVec<i32>) -> RVec<i32> {
    let mut out = RVec::new();
    let mut i = 0;
    while i < xs.len() {
        let x = *xs.get(i);
        if 0 < x {
            out.push(x);
        }
        i += 1;
    }
    out
}
|};
    }
    ;
    {
      ex_name = "min_index";
      ex_src =
        {|
#[lr::sig(fn(&RVec<f32, @n>) -> usize{v: v < n} requires 0 < n)]
fn min_index(v: &RVec<f32>) -> usize {
    let mut best = 0;
    let mut i = 1;
    while i < v.len() {
        if *v.get(i) < *v.get(best) {
            best = i;
        }
        i += 1;
    }
    best
}
|};
    }
    ;
    {
      ex_name = "stack_struct";
      ex_src =
        {|
// a user abstraction with strong-reference methods, like RVec's own
#[lr::refined_by(n: int)]
pub struct Stack {
    #[lr::field(RVec<i32, n>)]
    items: RVec<i32>
}

impl Stack {
    #[lr::sig(fn() -> Stack<0>)]
    pub fn empty() -> Stack {
        let items: RVec<i32> = RVec::new();
        Stack { items }
    }

    #[lr::sig(fn(&Stack<@n>) -> usize<n>)]
    pub fn depth(&self) -> usize {
        self.items.len()
    }
}

#[lr::sig(fn(usize<@k>) -> Stack<k>)]
fn build(k: usize) -> Stack {
    let mut items = RVec::new();
    let mut i = 0;
    while i < k {
        items.push(0);
        i += 1;
    }
    Stack { items }
}

#[lr::sig(fn(usize) -> usize)]
fn client(k: usize) -> usize {
    let s = build(k);
    s.depth()
}
|};
    }
    ;
    {
      ex_name = "window_sum";
      ex_src =
        {|
// sliding window of width w: accesses i..i+w-1 must stay in bounds
#[lr::sig(fn(&RVec<f32, @n>, usize<@w>) -> RVec<f32> requires 0 < w)]
fn window_sums(v: &RVec<f32>, w: usize) -> RVec<f32> {
    let mut out = RVec::new();
    let mut i = 0;
    while i + w <= v.len() {
        let mut s = 0.0;
        let mut j = 0;
        while j < w {
            s = s + *v.get(i + j);
            j += 1;
        }
        out.push(s);
        i += 1;
    }
    out
}
|};
    }
    ;
    {
      ex_name = "index_vector";
      ex_src =
        {|
// a vector of valid indices into another vector (kmp-table pattern)
#[lr::sig(fn(usize<@n>) -> RVec<usize{v: v < n}, n> requires 0 < n)]
fn identity_perm(n: usize) -> RVec<usize> {
    let mut p = RVec::new();
    let mut i = 0;
    while i < n {
        p.push(i);
        i += 1;
    }
    p
}

#[lr::sig(fn(&RVec<f32, @n>, &RVec<usize{v: v < n}, n>) -> RVec<f32, n>)]
fn permute(v: &RVec<f32>, p: &RVec<usize>) -> RVec<f32> {
    let mut out = RVec::new();
    let mut i = 0;
    while i < p.len() {
        out.push(*v.get(*p.get(i)));
        i += 1;
    }
    out
}

#[lr::sig(fn(&RVec<f32, @n>) -> RVec<f32, n> requires 0 < n)]
fn roundtrip(v: &RVec<f32>) -> RVec<f32> {
    let p = identity_perm(v.len());
    permute(v, &p)
}
|};
    }
    ;
    {
      ex_name = "running_max_prefix";
      ex_src =
        {|
// prefix maxima: result has exactly the input's length
#[lr::sig(fn(&RVec<i32, @n>) -> RVec<i32, n>)]
fn prefix_max(v: &RVec<i32>) -> RVec<i32> {
    let mut out: RVec<i32> = RVec::new();
    let mut best = 0;
    let mut started = false;
    let mut i = 0;
    while i < v.len() {
        let x = *v.get(i);
        if !started {
            best = x;
            started = true;
        } else {
            if best < x {
                best = x;
            }
        }
        out.push(best);
        i += 1;
    }
    out
}
|};
    }
    ;
    {
      ex_name = "grow_and_drain";
      ex_src =
        {|
// strong references through user functions: grow by k, then drain
#[lr::sig(fn(&strg RVec<i32, @n>, usize<@k>) ensures *v: RVec<i32, n + k>)]
fn grow(v: &mut RVec<i32>, k: usize) {
    let mut i = 0;
    while i < k {
        v.push(0);
        i += 1;
    }
}

#[lr::sig(fn(&strg RVec<i32, @n>) -> i32 ensures *v: RVec<i32, 0>)]
fn drain_sum(v: &mut RVec<i32>) -> i32 {
    let mut s = 0;
    while !v.is_empty() {
        s = s + v.pop();
    }
    s
}

#[lr::sig(fn(usize<@k>) -> i32)]
fn roundtrip(k: usize) -> i32 {
    let mut v: RVec<i32> = RVec::new();
    grow(&mut v, k);
    drain_sum(&mut v)
}
|};
    }
    ;
    {
      ex_name = "dot_matrix_row";
      ex_src =
        {|
// mixing a refined struct with refined vectors across calls
#[lr::refined_by(m: int, n: int)]
#[lr::invariant(0 < m && 1 < n)]
pub struct RMat {
    #[lr::field(RVec<RVec<f32, n>, m>)]
    inner: RVec<RVec<f32>>
}

impl RMat {
    #[lr::sig(fn(&RMat<@m, @n>) -> usize<m>)]
    pub fn rows(&self) -> usize { self.inner.len() }

    #[lr::sig(fn(&RMat<@m, @n>, usize{v: v < m}) -> &RVec<f32, n>)]
    pub fn row(&self, i: usize) -> &RVec<f32> {
        self.inner.get(i)
    }
}

#[lr::sig(fn(&RVec<f32, @k>, &RVec<f32, k>) -> f32)]
fn dot(x: &RVec<f32>, y: &RVec<f32>) -> f32 {
    let mut s = 0.0;
    let mut i = 0;
    while i < x.len() {
        s = s + *x.get(i) * *y.get(i);
        i += 1;
    }
    s
}

#[lr::sig(fn(&RMat<@m, @n>, &RVec<f32, n>, usize{v: v < m}) -> f32)]
fn row_dot(a: &RMat, x: &RVec<f32>, i: usize) -> f32 {
    dot(a.row(i), x)
}
|};
    }
    ;
  ]

let find name = List.find_opt (fun e -> String.equal e.ex_name name) all
