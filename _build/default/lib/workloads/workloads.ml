(** Registry of the Table 1 benchmarks. Each entry carries the source
    of the Flux version (refinement signatures only, no loop
    annotations) and of the Prusti version (contracts plus
    [body_invariant!] loop annotations), exactly mirroring the paper's
    experimental setup. *)

type benchmark = {
  bm_name : string;
  bm_flux : string;
  bm_prusti : string;
}

let all : benchmark list =
  [
    { bm_name = Wl_bsearch.name; bm_flux = Wl_bsearch.flux_src; bm_prusti = Wl_bsearch.prusti_src };
    { bm_name = Wl_dotprod.name; bm_flux = Wl_dotprod.flux_src; bm_prusti = Wl_dotprod.prusti_src };
    { bm_name = Wl_fft.name; bm_flux = Wl_fft.flux_src; bm_prusti = Wl_fft.prusti_src };
    { bm_name = Wl_heapsort.name; bm_flux = Wl_heapsort.flux_src; bm_prusti = Wl_heapsort.prusti_src };
    { bm_name = Wl_simplex.name; bm_flux = Wl_simplex.flux_src; bm_prusti = Wl_simplex.prusti_src };
    { bm_name = Wl_kmeans.name; bm_flux = Wl_kmeans.flux_src; bm_prusti = Wl_kmeans.prusti_src };
    { bm_name = Wl_kmp.name; bm_flux = Wl_kmp.flux_src; bm_prusti = Wl_kmp.prusti_src };
  ]

let find name = List.find_opt (fun b -> String.equal b.bm_name name) all

(** The refined RVec interface of fig. 3. RVec is a built-in (trusted)
    library in this reproduction, exactly as it is `#[trusted]` code in
    the paper's artifact; these signatures are what Table 1 counts as
    its specification. *)
let rvec_spec =
  {|
impl RVec<T, @n> {
    #[lr::sig(fn() -> RVec<T, 0>)]
    fn new() -> RVec<T>;
    #[lr::sig(fn(&RVec<T, @n>) -> usize<n>)]
    fn len(&self) -> usize;
    #[lr::sig(fn(&RVec<T, @n>) -> bool<n == 0>)]
    fn is_empty(&self) -> bool;
    #[lr::sig(fn(&RVec<T, @n>, usize{v: v < n}) -> &T)]
    fn get(&self, idx: usize) -> &T;
    #[lr::sig(fn(&mut RVec<T, @n>, usize{v: v < n}) -> &mut T)]
    fn get_mut(&mut self, idx: usize) -> &mut T;
    #[lr::sig(fn(&strg RVec<T, @n>, T) ensures *self: RVec<T, n+1>)]
    fn push(&mut self, value: T);
    #[lr::sig(fn(&strg RVec<T, @n>) -> T requires 0 < n ensures *self: RVec<T, n-1>)]
    fn pop(&mut self) -> T;
    #[lr::sig(fn(&mut RVec<T, @n>, usize{v: v < n}, usize{v: v < n}))]
    fn swap(&mut self, i: usize, j: usize);
    #[lr::sig(fn(&RVec<T, @n>) -> RVec<T, n>)]
    fn clone(&self) -> RVec<T>;
}
|}

(** The RMat library (fig. 4 / §5): in Flux it is implemented and
    verified in the subset itself; in Prusti it must be a trusted
    abstraction (§5.2 of the paper). *)
let rmat_flux =
  {|
#[lr::refined_by(m: int, n: int)]
#[lr::invariant(0 < m && 1 < n)]
pub struct RMat {
    #[lr::field(RVec<RVec<f32, n>, m>)]
    inner: RVec<RVec<f32>>
}

impl RMat {
    #[lr::sig(fn(&RMat<@m, @n>) -> usize<m>)]
    pub fn rows(&self) -> usize {
        self.inner.len()
    }

    #[lr::sig(fn(&RMat<@m, @n>) -> usize<n>)]
    pub fn cols(&self) -> usize {
        self.inner.get(0).len()
    }

    #[lr::sig(fn(&RMat<@m, @n>, usize{v: v < m}, usize{v: v < n}) -> f32)]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        *self.inner.get(i).get(j)
    }

    #[lr::sig(fn(&mut RMat<@m, @n>, usize{v: v < m}, usize{v: v < n}, f32))]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        *self.inner.get_mut(i).get_mut(j) = v;
    }
}

#[lr::sig(fn(usize<@m>, usize<@n>) -> RMat<m, n> requires 0 < m && 1 < n)]
fn mat_zeros(m: usize, n: usize) -> RMat {
    let mut inner = RVec::new();
    let mut i = 0;
    while i < m {
        let mut row = RVec::new();
        let mut j = 0;
        while j < n {
            row.push(0.0);
            j += 1;
        }
        inner.push(row);
        i += 1;
    }
    RMat { inner }
}
|}

let rmat_prusti =
  {|
pub struct RMat { inner: RVec<RVec<f32>> }

#[trusted]
#[requires(i < t_rows(mat) && j < t_cols(mat))]
#[pure]
fn mat_get(mat: &RMat, i: usize, j: usize) -> f32;

#[trusted]
#[requires(i < t_rows(mat) && j < t_cols(mat))]
#[ensures(t_rows(mat) == old(t_rows(mat)) && t_cols(mat) == old(t_cols(mat)))]
fn mat_set(mat: &mut RMat, i: usize, j: usize, v: f32);

#[trusted]
#[ensures(result == t_rows(mat))]
fn mat_rows(mat: &RMat) -> usize;

#[trusted]
#[ensures(result == t_cols(mat))]
fn mat_cols(mat: &RMat) -> usize;

#[trusted]
#[requires(0 < m && 1 < n)]
#[ensures(t_rows(result) == m && t_cols(result) == n)]
fn mat_zeros(m: usize, n: usize) -> RMat;
|}
