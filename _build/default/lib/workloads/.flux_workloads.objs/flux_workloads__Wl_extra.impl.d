lib/workloads/wl_extra.ml: List String
