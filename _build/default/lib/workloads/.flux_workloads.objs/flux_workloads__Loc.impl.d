lib/workloads/loc.ml: List String
