lib/workloads/wl_kmp.ml:
