lib/workloads/workloads.ml: List String Wl_bsearch Wl_dotprod Wl_fft Wl_heapsort Wl_kmeans Wl_kmp Wl_simplex
