lib/workloads/wl_heapsort.ml:
