lib/workloads/wl_kmeans.ml:
