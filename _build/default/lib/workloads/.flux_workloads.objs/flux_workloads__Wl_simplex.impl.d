lib/workloads/wl_simplex.ml:
