lib/workloads/wl_bsearch.ml:
