lib/workloads/wl_dotprod.ml:
