(** Benchmark: dot product of two vectors (ported from DSOLVE). *)

let name = "dotprod"

let flux_src =
  {|
#[lr::sig(fn(&RVec<f32, @n>, &RVec<f32, n>) -> f32)]
fn dotprod(x: &RVec<f32>, y: &RVec<f32>) -> f32 {
    let mut sum = 0.0;
    let mut i = 0;
    while i < x.len() {
        sum = sum + *x.get(i) * *y.get(i);
        i += 1;
    }
    sum
}
|}

let prusti_src =
  {|
#[requires(x.len() == y.len())]
fn dotprod(x: &RVec<f32>, y: &RVec<f32>) -> f32 {
    let mut sum = 0.0;
    let mut i = 0;
    while i < x.len() {
        body_invariant!(i <= x.len() && x.len() == y.len());
        sum = sum + *x.get(i) * *y.get(i);
        i += 1;
    }
    sum
}
|}
