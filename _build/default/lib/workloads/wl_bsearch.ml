(** Benchmark: binary search (ported from DSOLVE, as in Table 1). The
    verification goal is bounds safety of every vector access. *)

let name = "bsearch"

let flux_src =
  {|
#[lr::sig(fn(i32, &RVec<i32, @n>) -> usize{v: v <= n})]
fn bsearch(k: i32, items: &RVec<i32>) -> usize {
    let size = items.len();
    if size == 0 {
        return size;
    }
    let mut lo = 0;
    let mut hi = size;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let val = *items.get(mid);
        if val < k {
            lo = mid + 1;
        } else if k < val {
            hi = mid;
        } else {
            return mid;
        }
    }
    size
}

#[lr::sig(fn(&RVec<i32, @n>, i32) -> bool)]
fn contains(items: &RVec<i32>, k: i32) -> bool {
    let idx = bsearch(k, items);
    if idx < items.len() {
        *items.get(idx) == k
    } else {
        false
    }
}
|}

let prusti_src =
  {|
#[ensures(result <= items.len())]
fn bsearch(k: i32, items: &RVec<i32>) -> usize {
    let size = items.len();
    if size == 0 {
        return size;
    }
    let mut lo = 0;
    let mut hi = size;
    while lo < hi {
        body_invariant!(lo <= hi && hi <= size);
        let mid = lo + (hi - lo) / 2;
        let val = *items.get(mid);
        if val < k {
            lo = mid + 1;
        } else if k < val {
            hi = mid;
        } else {
            return mid;
        }
    }
    size
}

fn contains(items: &RVec<i32>, k: i32) -> bool {
    let idx = bsearch(k, items);
    if idx < items.len() {
        *items.get(idx) == k
    } else {
        false
    }
}
|}
