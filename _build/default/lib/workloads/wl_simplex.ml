(** Benchmark: the simplex algorithm for linear programming (ported
    from DSOLVE), operating on an (m × n) tableau built as the refined
    matrix of fig. 4. Row 0 holds the objective; column n-1 the
    right-hand side. Sentinel index 0 signals "no pivot found". *)

let name = "simplex"

let flux_src =
  {|
#[lr::refined_by(m: int, n: int)]
#[lr::invariant(0 < m && 1 < n)]
pub struct RMat {
    #[lr::field(RVec<RVec<f32, n>, m>)]
    inner: RVec<RVec<f32>>
}

impl RMat {
    #[lr::sig(fn(&RMat<@m, @n>) -> usize<m>)]
    pub fn rows(&self) -> usize {
        self.inner.len()
    }

    #[lr::sig(fn(&RMat<@m, @n>) -> usize<n>)]
    pub fn cols(&self) -> usize {
        self.inner.get(0).len()
    }

    #[lr::sig(fn(&RMat<@m, @n>, usize{v: v < m}, usize{v: v < n}) -> f32)]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        *self.inner.get(i).get(j)
    }

    #[lr::sig(fn(&mut RMat<@m, @n>, usize{v: v < m}, usize{v: v < n}, f32))]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        *self.inner.get_mut(i).get_mut(j) = v;
    }
}

#[lr::sig(fn(usize<@m>, usize<@n>) -> RMat<m, n> requires 0 < m && 1 < n)]
fn mat_zeros(m: usize, n: usize) -> RMat {
    let mut inner = RVec::new();
    let mut i = 0;
    while i < m {
        let mut row = RVec::new();
        let mut j = 0;
        while j < n {
            row.push(0.0);
            j += 1;
        }
        inner.push(row);
        i += 1;
    }
    RMat { inner }
}

// entering column: smallest objective coefficient, 0 if none negative
#[lr::sig(fn(&RMat<@m, @n>) -> usize{v: v < n})]
fn pivot_col(t: &RMat) -> usize {
    let mut best = 0;
    let mut bestv = 0.0;
    let mut j = 1;
    while j < t.cols() - 1 {
        let c = t.get(0, j);
        if c < bestv {
            bestv = c;
            best = j;
        }
        j += 1;
    }
    best
}

// leaving row by minimum ratio test, 0 if the column is unbounded
#[lr::sig(fn(&RMat<@m, @n>, usize{v: v < n}) -> usize{v: v < m})]
fn pivot_row(t: &RMat, q: usize) -> usize {
    let mut best = 0;
    let mut bestr = 0.0;
    let mut found = false;
    let mut i = 1;
    while i < t.rows() {
        let c = t.get(i, q);
        if 0.0 < c {
            let r = t.get(i, t.cols() - 1) / c;
            if !found {
                best = i;
                bestr = r;
                found = true;
            } else {
                if r < bestr {
                    best = i;
                    bestr = r;
                }
            }
        }
        i += 1;
    }
    best
}

#[lr::sig(fn(&mut RMat<@m, @n>, usize{v: v < m}, usize{v: v < n}))]
fn do_pivot(t: &mut RMat, p: usize, q: usize) {
    let piv = t.get(p, q);
    // normalize the pivot row
    let mut j = 0;
    while j < t.cols() {
        t.set(p, j, t.get(p, j) / piv);
        j += 1;
    }
    // eliminate the pivot column from all other rows
    let mut i = 0;
    while i < t.rows() {
        if i != p {
            let f = t.get(i, q);
            let mut j2 = 0;
            while j2 < t.cols() {
                t.set(i, j2, t.get(i, j2) - f * t.get(p, j2));
                j2 += 1;
            }
        }
        i += 1;
    }
}

#[lr::sig(fn(&mut RMat<@m, @n>, usize) -> f32)]
fn simplex(t: &mut RMat, max_iters: usize) -> f32 {
    let mut it = 0;
    let mut go = true;
    while go && it < max_iters {
        let q = pivot_col(t);
        if q == 0 {
            go = false;
        } else {
            let p = pivot_row(t, q);
            if p == 0 {
                go = false;
            } else {
                do_pivot(t, p, q);
            }
        }
        it += 1;
    }
    t.get(0, t.cols() - 1)
}
|}

let prusti_src =
  {|
// In Prusti the matrix must be a trusted abstraction (§5.2 of the
// paper): rows cannot be verified independently, so the API exposes
// rows()/cols()/get/set with contracts.
#[trusted]
#[requires(i < t_rows(mat) && j < t_cols(mat))]
#[pure]
fn mat_get(mat: &RMat, i: usize, j: usize) -> f32;

#[trusted]
#[requires(i < t_rows(mat) && j < t_cols(mat))]
#[ensures(t_rows(mat) == old(t_rows(mat)) && t_cols(mat) == old(t_cols(mat)))]
fn mat_set(mat: &mut RMat, i: usize, j: usize, v: f32);

#[trusted]
#[ensures(result == t_rows(mat))]
fn mat_rows(mat: &RMat) -> usize;

#[trusted]
#[ensures(result == t_cols(mat))]
fn mat_cols(mat: &RMat) -> usize;

#[requires(0 < t_rows(t) && 1 < t_cols(t))]
#[ensures(result < t_cols(t))]
fn pivot_col(t: &RMat) -> usize {
    let mut best = 0;
    let mut bestv = 0.0;
    let mut j = 1;
    while j < mat_cols(t) - 1 {
        body_invariant!(best < t_cols(t) && 1 <= j);
        let c = mat_get(t, 0, j);
        if c < bestv {
            bestv = c;
            best = j;
        }
        j += 1;
    }
    best
}

#[requires(0 < t_rows(t) && 1 < t_cols(t) && q < t_cols(t))]
#[ensures(result < t_rows(t))]
fn pivot_row(t: &RMat, q: usize) -> usize {
    let mut best = 0;
    let mut bestr = 0.0;
    let mut found = false;
    let mut i = 1;
    while i < mat_rows(t) {
        body_invariant!(best < t_rows(t) && 1 <= i);
        let c = mat_get(t, i, q);
        if 0.0 < c {
            let r = mat_get(t, i, mat_cols(t) - 1) / c;
            if !found {
                best = i;
                bestr = r;
                found = true;
            } else {
                if r < bestr {
                    best = i;
                    bestr = r;
                }
            }
        }
        i += 1;
    }
    best
}

#[requires(p < t_rows(t) && q < t_cols(t) && 0 < t_rows(t) && 1 < t_cols(t))]
#[ensures(t_rows(t) == old(t_rows(t)) && t_cols(t) == old(t_cols(t)))]
fn do_pivot(t: &mut RMat, p: usize, q: usize) {
    let piv = mat_get(t, p, q);
    let mut j = 0;
    while j < mat_cols(t) {
        body_invariant!(p < t_rows(t) && q < t_cols(t));
        body_invariant!(t_rows(t) == old(t_rows(t)) && t_cols(t) == old(t_cols(t)));
        mat_set(t, p, j, mat_get(t, p, j) / piv);
        j += 1;
    }
    let mut i = 0;
    while i < mat_rows(t) {
        body_invariant!(p < t_rows(t) && q < t_cols(t));
        body_invariant!(t_rows(t) == old(t_rows(t)) && t_cols(t) == old(t_cols(t)));
        if i != p {
            let f = mat_get(t, i, q);
            let mut j2 = 0;
            while j2 < mat_cols(t) {
                body_invariant!(p < t_rows(t) && q < t_cols(t) && i < t_rows(t));
                body_invariant!(t_rows(t) == old(t_rows(t)) && t_cols(t) == old(t_cols(t)));
                mat_set(t, i, j2, mat_get(t, i, j2) - f * mat_get(t, p, j2));
                j2 += 1;
            }
        }
        i += 1;
    }
}

#[requires(0 < t_rows(t) && 1 < t_cols(t))]
fn simplex(t: &mut RMat, max_iters: usize) -> f32 {
    let mut it = 0;
    let mut go = true;
    while go && it < max_iters {
        body_invariant!(0 < t_rows(t) && 1 < t_cols(t));
        let q = pivot_col(t);
        if q == 0 {
            go = false;
        } else {
            let p = pivot_row(t, q);
            if p == 0 {
                go = false;
            } else {
                do_pivot(t, p, q);
            }
        }
        it += 1;
    }
    mat_get(t, 0, mat_cols(t) - 1)
}
|}
