(** Benchmark: heap sort (ported from DSOLVE). *)

let name = "heapsort"

let flux_src =
  {|
#[lr::sig(fn(&mut RVec<f32, @n>, usize{v: v < n}, usize{v: v < n}))]
fn sift_down(xs: &mut RVec<f32>, start: usize, end: usize) {
    let mut root = start;
    while root * 2 + 1 <= end {
        let child = root * 2 + 1;
        let mut sw = root;
        if *xs.get(sw) < *xs.get(child) {
            sw = child;
        }
        if child + 1 <= end {
            if *xs.get(sw) < *xs.get(child + 1) {
                sw = child + 1;
            }
        }
        if sw == root {
            return;
        }
        xs.swap(root, sw);
        root = sw;
    }
}

#[lr::sig(fn(&mut RVec<f32, @n>))]
fn heapsort(xs: &mut RVec<f32>) {
    let len = xs.len();
    if len <= 1 {
        return;
    }
    let mut start = len / 2;
    while 0 < start {
        start -= 1;
        sift_down(xs, start, len - 1);
    }
    let mut end = len - 1;
    while 0 < end {
        xs.swap(0, end);
        end -= 1;
        sift_down(xs, 0, end);
    }
}
|}

let prusti_src =
  {|
#[requires(start < xs.len() && end < xs.len())]
#[ensures(xs.len() == old(xs.len()))]
fn sift_down(xs: &mut RVec<f32>, start: usize, end: usize) {
    let mut root = start;
    while root * 2 + 1 <= end {
        body_invariant!(root < xs.len() && end < xs.len());
        body_invariant!(xs.len() == old(xs.len()));
        let child = root * 2 + 1;
        let mut sw = root;
        if *xs.get(sw) < *xs.get(child) {
            sw = child;
        }
        if child + 1 <= end {
            if *xs.get(sw) < *xs.get(child + 1) {
                sw = child + 1;
            }
        }
        if sw == root {
            return;
        }
        xs.swap(root, sw);
        root = sw;
    }
}

fn heapsort(xs: &mut RVec<f32>) {
    let len = xs.len();
    if len <= 1 {
        return;
    }
    let mut start = len / 2;
    while 0 < start {
        body_invariant!(start <= len / 2 && xs.len() == len && 2 <= len);
        start -= 1;
        sift_down(xs, start, len - 1);
    }
    let mut end = len - 1;
    while 0 < end {
        body_invariant!(end < len && xs.len() == len);
        xs.swap(0, end);
        end -= 1;
        sift_down(xs, 0, end);
    }
}
|}
