(** Theory solver for conjunctions of linear integer constraints:
    Fourier–Motzkin elimination with integer tightening, split over
    connected components.

    Reporting [false] (infeasible) is always sound; [true] may
    over-approximate satisfiability (rational shadow, elimination
    limits) — the safe polarity for the validity checker built on
    top. *)

module SMap : Map.S with type key = string

type lin = { coeffs : int SMap.t; const : int }
(** [Σ coeffs(x)·x + const], a linear integer form. *)

val lin_zero : lin
val lin_const : int -> lin
val lin_var : string -> lin
val lin_add : lin -> lin -> lin
val lin_scale : int -> lin -> lin
val lin_sub : lin -> lin -> lin
val lin_is_const : lin -> bool
val pp_lin : Format.formatter -> lin -> unit

val feasible : eqs:lin list -> ineqs:lin list -> bool
(** Feasibility of [⋀ eqs = 0 ∧ ⋀ ineqs ≤ 0] over the integers
    ([false] is definite). *)

(** Literals as consumed from the DPLL layer. *)
type literal =
  | Le0 of lin  (** lin ≤ 0 *)
  | Eq0 of lin  (** lin = 0 *)
  | Ne0 of lin  (** lin ≠ 0 *)

val pp_literal : Format.formatter -> literal -> unit

val sat_literals : literal list -> bool
(** Satisfiability of a conjunction of literals. Disequalities are
    pre-filtered (only those whose equality is consistent with the rest
    constrain anything), then either exactly case-split (few) or
    refuted independently (many; over-approximate). *)
