(** Refinement sorts.

    Flux refinements are drawn from a many-sorted, SMT-decidable logic
    (§3.1 of the paper). We support the three sorts of λ{_LR} — [Int],
    [Bool] and [Loc] — plus [Real], which we use to give float-indexed
    types a trivial (uninterpreted) sort. [Loc] values are ghost
    locations: only equality is ever used on them, so the theory solver
    treats them as opaque integers. *)

type t =
  | Int
  | Bool
  | Loc
  | Real

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let to_string = function
  | Int -> "int"
  | Bool -> "bool"
  | Loc -> "loc"
  | Real -> "real"

let pp fmt s = Format.pp_print_string fmt (to_string s)

(** Sorts whose values the linear-arithmetic theory solver can reason
    about numerically. *)
let is_numeric = function Int | Loc -> true | Bool | Real -> false
