(** Theory solver for conjunctions of linear integer constraints.

    Feasibility is decided by Fourier–Motzkin elimination with integer
    tightening (constraint normalization by the gcd of the variable
    coefficients, flooring the constant). Rational infeasibility implies
    integer infeasibility, so reporting [false] ("unsat") is always
    sound; reporting [true] may over-approximate satisfiability, which
    makes the overall validity checker sound-but-incomplete — the right
    polarity for a verifier (it can reject a good program but never
    accept a bad one).

    Constraints are [Σ cᵢ·xᵢ + k ≤ 0] over integer variables; strict
    inequalities are tightened to non-strict ones up front ([a < b]
    becomes [a + 1 ≤ b]). Equalities are eliminated by substitution when
    a unit-coefficient variable is available, otherwise split into two
    inequalities. *)

module SMap = Map.Make (String)

type lin = { coeffs : int SMap.t; const : int }
(** [Σ coeffs(x)·x + const], as a linear integer form. *)

let lin_zero = { coeffs = SMap.empty; const = 0 }
let lin_const k = { coeffs = SMap.empty; const = k }
let lin_var x = { coeffs = SMap.singleton x 1; const = 0 }

let lin_add a b =
  {
    coeffs =
      SMap.union
        (fun _ c1 c2 -> if c1 + c2 = 0 then None else Some (c1 + c2))
        a.coeffs b.coeffs;
    const = a.const + b.const;
  }

let lin_scale k a =
  if k = 0 then lin_zero
  else { coeffs = SMap.map (fun c -> k * c) a.coeffs; const = k * a.const }

let lin_sub a b = lin_add a (lin_scale (-1) b)
let lin_is_const a = SMap.is_empty a.coeffs

let pp_lin fmt a =
  let first = ref true in
  SMap.iter
    (fun x c ->
      if !first then (
        first := false;
        if c = 1 then Format.fprintf fmt "%s" x
        else Format.fprintf fmt "%d*%s" c x)
      else if c >= 0 then
        if c = 1 then Format.fprintf fmt " + %s" x
        else Format.fprintf fmt " + %d*%s" c x
      else if c = -1 then Format.fprintf fmt " - %s" x
      else Format.fprintf fmt " - %d*%s" (-c) x)
    a.coeffs;
  if !first then Format.fprintf fmt "%d" a.const
  else if a.const > 0 then Format.fprintf fmt " + %d" a.const
  else if a.const < 0 then Format.fprintf fmt " - %d" (-a.const)

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(** Euclidean-style floor division (rounds toward negative infinity). *)
let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

(** Tighten [lin ≤ 0]: divide the variable part by its gcd [g] and take
    the floor of [const/g]. Returns [None] if the constraint is the
    trivially true [k ≤ 0] with [k ≤ 0], and [Some] otherwise. Raises
    [Infeasible] on a constant contradiction. *)
exception Infeasible

let tighten (a : lin) : lin option =
  if lin_is_const a then if a.const > 0 then raise Infeasible else None
  else
    let g = SMap.fold (fun _ c acc -> gcd c acc) a.coeffs 0 in
    if g <= 1 then Some a
    else
      Some
        {
          coeffs = SMap.map (fun c -> c / g) a.coeffs;
          (* c·g·x + k ≤ 0  ⟺  c·x ≤ floor(-k/g)  ⟺ c·x - floor(-k/g) ≤ 0 *)
          const = -fdiv (-a.const) g;
        }

(* ------------------------------------------------------------------ *)
(* Equality elimination                                                *)
(* ------------------------------------------------------------------ *)

(** Substitute [x := rhs] (where the equality is [x = rhs]) into [a]. *)
let lin_subst x (rhs : lin) (a : lin) =
  match SMap.find_opt x a.coeffs with
  | None -> a
  | Some c ->
      let a' = { a with coeffs = SMap.remove x a.coeffs } in
      lin_add a' (lin_scale c rhs)

(** From an equality [e = 0], find a variable with coefficient ±1 and
    return [(x, rhs)] such that [x = rhs]. *)
let solvable_eq (e : lin) : (string * lin) option =
  let found =
    SMap.fold
      (fun x c acc ->
        match acc with
        | Some _ -> acc
        | None -> if c = 1 || c = -1 then Some (x, c) else None)
      e.coeffs None
  in
  match found with
  | None -> None
  | Some (x, c) ->
      (* c·x + rest = 0  ⟹  x = -rest/c; for c = ±1 this is exact. *)
      let rest = { e with coeffs = SMap.remove x e.coeffs } in
      Some (x, lin_scale (-c) rest)

(* ------------------------------------------------------------------ *)
(* Fourier–Motzkin                                                     *)
(* ------------------------------------------------------------------ *)

(** Bound on intermediate constraint-set size; beyond it we give up and
    answer "maybe satisfiable" (sound for the validity checker). *)
let fm_limit = 20_000

let choose_var (cs : lin list) : string option =
  (* Pick the variable minimizing (#positive × #negative) occurrences to
     keep the FM blowup small. *)
  let tally = Hashtbl.create 16 in
  List.iter
    (fun c ->
      SMap.iter
        (fun x k ->
          let p, n = try Hashtbl.find tally x with Not_found -> (0, 0) in
          if k > 0 then Hashtbl.replace tally x (p + 1, n)
          else Hashtbl.replace tally x (p, n + 1))
        c.coeffs)
    cs;
  Hashtbl.fold
    (fun x (p, n) best ->
      let cost = p * n in
      match best with
      | Some (_, bcost) when bcost <= cost -> best
      | _ -> Some (x, cost))
    tally None
  |> Option.map fst

(** Decide feasibility (over the rationals, with integer tightening) of
    the conjunction of [ineqs] (each [≤ 0]) and [eqs] (each [= 0]).
    Returns [false] only if definitely infeasible over the integers. *)
let feasible_conn ~(eqs : lin list) ~(ineqs : lin list) : bool =
  try
    (* Phase 1: eliminate equalities. *)
    let rec elim_eqs eqs ineqs =
      match eqs with
      | [] -> ineqs
      | e :: rest -> (
          if lin_is_const e then
            if e.const <> 0 then raise Infeasible else elim_eqs rest ineqs
          else
            match solvable_eq e with
            | Some (x, rhs) ->
                let sub = lin_subst x rhs in
                elim_eqs (List.map sub rest) (List.map sub ineqs)
            | None ->
                (* No unit coefficient: check gcd divisibility, then
                   split into two inequalities. *)
                let g = SMap.fold (fun _ c acc -> gcd c acc) e.coeffs 0 in
                if g > 1 && e.const mod g <> 0 then raise Infeasible
                else elim_eqs rest (e :: lin_scale (-1) e :: ineqs))
    in
    let ineqs = elim_eqs eqs ineqs in
    (* Phase 2: FM elimination. *)
    let rec fm (cs : lin list) =
      let cs = List.filter_map tighten cs in
      if List.length cs > fm_limit then true (* give up: maybe SAT *)
      else
        match choose_var cs with
        | None -> true (* only constants left, all satisfied *)
        | Some x ->
            let pos, neg, rest =
              List.fold_left
                (fun (p, n, r) c ->
                  match SMap.find_opt x c.coeffs with
                  | Some k when k > 0 -> (c :: p, n, r)
                  | Some _ -> (p, c :: n, r)
                  | None -> (p, n, c :: r))
                ([], [], []) cs
            in
            let combined =
              List.concat_map
                (fun cp ->
                  let a = SMap.find x cp.coeffs in
                  List.map
                    (fun cn ->
                      let b = -SMap.find x cn.coeffs in
                      (* b·cp + a·cn eliminates x (a>0, b>0). *)
                      lin_add (lin_scale b cp) (lin_scale a cn))
                    neg)
                pos
            in
            fm (combined @ rest)
    in
    fm ineqs
  with Infeasible -> false

(** Split the constraint system into connected components (constraints
    linked by shared variables) and decide each independently — the
    conjunction is infeasible iff some component is. This keeps
    Fourier–Motzkin small on the large contexts produced by join-heavy
    functions. *)
let feasible ~(eqs : lin list) ~(ineqs : lin list) : bool =
  let all = List.map (fun e -> (`Eq, e)) eqs @ List.map (fun i -> (`Ineq, i)) ineqs in
  (* constant constraints are decided immediately *)
  let consts, vars_cs =
    List.partition (fun (_, c) -> lin_is_const c) all
  in
  if
    List.exists
      (fun (k, c) ->
        match k with `Eq -> c.const <> 0 | `Ineq -> c.const > 0)
      consts
  then false
  else begin
    (* union-find over variable names *)
    let parent : (string, string) Hashtbl.t = Hashtbl.create 64 in
    let rec find x =
      match Hashtbl.find_opt parent x with
      | None -> x
      | Some p ->
          let r = find p in
          Hashtbl.replace parent x r;
          r
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then Hashtbl.replace parent ra rb
    in
    List.iter
      (fun (_, c) ->
        match SMap.min_binding_opt c.coeffs with
        | None -> ()
        | Some (x0, _) -> SMap.iter (fun x _ -> union x0 x) c.coeffs)
      vars_cs;
    let groups : (string, (bool * lin) list) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (k, c) ->
        let x0, _ = SMap.min_binding c.coeffs in
        let r = find x0 in
        let prev = try Hashtbl.find groups r with Not_found -> [] in
        Hashtbl.replace groups r ((k = `Eq, c) :: prev))
      vars_cs;
    Hashtbl.fold
      (fun _ cs acc ->
        acc
        && feasible_conn
             ~eqs:(List.filter_map (fun (e, c) -> if e then Some c else None) cs)
             ~ineqs:
               (List.filter_map (fun (e, c) -> if e then None else Some c) cs))
      groups true
  end

(* ------------------------------------------------------------------ *)
(* Literal interface                                                   *)
(* ------------------------------------------------------------------ *)

type literal =
  | Le0 of lin  (** lin ≤ 0 *)
  | Eq0 of lin  (** lin = 0 *)
  | Ne0 of lin  (** lin ≠ 0 *)

let pp_literal fmt = function
  | Le0 l -> Format.fprintf fmt "%a <= 0" pp_lin l
  | Eq0 l -> Format.fprintf fmt "%a = 0" pp_lin l
  | Ne0 l -> Format.fprintf fmt "%a != 0" pp_lin l

(** Cap on the number of disequalities we case-split on. *)
let diseq_limit = 12

(** Satisfiability of a conjunction of literals.

    Disequalities are handled in two steps. First, a cheap relevance
    filter: [l ≠ 0] only constrains the system if [l = 0] is consistent
    with it — otherwise the disequality is automatically satisfied and
    can be dropped (this covers the many negated congruence guards that
    Ackermannization produces). The few surviving "critical"
    disequalities are then case-split into [l ≤ -1 ∨ l ≥ 1]. Should
    more than [diseq_limit] survive, the rest are dropped, which
    over-approximates satisfiability (sound for the validity checker). *)
let sat_literals (lits : literal list) : bool =
  let eqs = List.filter_map (function Eq0 l -> Some l | _ -> None) lits in
  let ineqs = List.filter_map (function Le0 l -> Some l | _ -> None) lits in
  let diseqs = List.filter_map (function Ne0 l -> Some l | _ -> None) lits in
  if List.exists (fun l -> lin_is_const l && l.const = 0) diseqs then false
  else begin
    let diseqs = List.filter (fun l -> not (lin_is_const l)) diseqs in
    let le_neg1 d = { d with const = d.const + 1 } (* d ≤ -1 *) in
    let ge_1 d = { (lin_scale (-1) d) with const = 1 - d.const } (* d ≥ 1 *) in
    (* exact case split, pruning infeasible prefixes early *)
    let rec split acc = function
      | [] -> true
      | d :: rest ->
          (let c = le_neg1 d :: acc in
           feasible ~eqs ~ineqs:(c @ ineqs) && split c rest)
          || (let c = ge_1 d :: acc in
              feasible ~eqs ~ineqs:(c @ ineqs) && split c rest)
    in
    match diseqs with
    | [] -> feasible ~eqs ~ineqs
    | _ when List.length diseqs <= 4 ->
        feasible ~eqs ~ineqs && split [] diseqs
    | _ ->
        feasible ~eqs ~ineqs
        && begin
             (* keep only the disequalities whose equality is consistent *)
             let critical =
               List.filter (fun d -> feasible ~eqs:(d :: eqs) ~ineqs) diseqs
             in
             if List.length critical <= diseq_limit then split [] critical
             else
               (* many critical disequalities: refute each independently
                  (over-approximates joint satisfiability, sound) *)
               not
                 (List.exists
                    (fun d ->
                      (not (feasible ~eqs ~ineqs:(le_neg1 d :: ineqs)))
                      && not (feasible ~eqs ~ineqs:(ge_1 d :: ineqs)))
                    critical)
           end
  end

