(** Validity and satisfiability checking for the quantifier-free
    refinement logic.

    Pipeline:
    + {b Elaboration}: integer division/modulo by a positive constant is
      linearized with fresh quotient/remainder variables; products of
      two non-constants and general division are abstracted by opaque
      variables; uninterpreted applications are Ackermannized (opaque
      variables plus pairwise congruence constraints); [Ite] is lifted
      out of terms; atoms mentioning reals are abstracted as opaque
      boolean atoms (floats are never refined, only branched on).
    + {b DPLL}: the boolean skeleton is searched by splitting on atoms,
      with the theory consulted at (partially) complete assignments.
    + {b Theory}: conjunctions of linear integer literals go to
      {!Lia.sat_literals} (Fourier–Motzkin with integer tightening).

    The checker is sound for validity: [valid t = true] implies [t]
    holds over the integers. It can be incomplete (a valid [t] may be
    reported invalid) when rational reasoning or opaque abstraction
    loses information — the safe polarity for a verifier. *)

type stats = {
  mutable queries : int;
  mutable cache_hits : int;
  mutable theory_checks : int;
  mutable max_atoms : int;
  mutable time : float;
}

let stats = { queries = 0; cache_hits = 0; theory_checks = 0; max_atoms = 0; time = 0.0 }

let reset_stats () =
  stats.queries <- 0;
  stats.cache_hits <- 0;
  stats.theory_checks <- 0;
  stats.max_atoms <- 0;
  stats.time <- 0.0

(* ------------------------------------------------------------------ *)
(* Elaboration                                                         *)
(* ------------------------------------------------------------------ *)

type elab_state = {
  mutable defs : Term.t list;  (** definitional constraints *)
  opaque : (string, Term.t) Hashtbl.t;  (** original term -> opaque var *)
  apps : (string, (Term.t * Term.t list) list) Hashtbl.t;
      (** fn symbol -> [(opaque var, elaborated args)] for Ackermann *)
  mutable counter : int;
}

let fresh st prefix sort =
  st.counter <- st.counter + 1;
  Term.Var (Printf.sprintf "$%s%d" prefix st.counter, sort)

let opaque_of st key sort =
  match Hashtbl.find_opt st.opaque key with
  | Some v -> v
  | None ->
      let v = fresh st "o" sort in
      Hashtbl.add st.opaque key v;
      v

let rec has_real (t : Term.t) =
  match t with
  | Real _ -> true
  | Var (_, Sort.Real) -> true
  | Var _ | Int _ | Bool _ -> false
  | Neg a | Not a -> has_real a
  | Binop (_, a, b) | Cmp (_, a, b) | Eq (a, b) | Ne (a, b) | Imp (a, b) | Iff (a, b)
    ->
      has_real a || has_real b
  | And ts | Or ts | App (_, ts) -> List.exists has_real ts
  | Ite (a, b, c) -> has_real a || has_real b || has_real c

(** Elaborate an integer-sorted term into a linear-safe one. *)
let rec elab_int st (t : Term.t) : Term.t =
  match t with
  | Var _ | Int _ -> t
  | Real _ -> opaque_of st (Term.to_string t) Sort.Int
  | Neg a -> Term.neg (elab_int st a)
  | Binop (Add, a, b) -> Term.add (elab_int st a) (elab_int st b)
  | Binop (Sub, a, b) -> Term.sub (elab_int st a) (elab_int st b)
  | Binop (Mul, a, b) -> (
      let a = elab_int st a and b = elab_int st b in
      match (a, b) with
      | Int _, _ | _, Int _ -> Term.mul a b
      | _ ->
          (* nonlinear: abstract, but remember commutativity *)
          let key =
            let sa = Term.to_string a and sb = Term.to_string b in
            if sa <= sb then sa ^ "*" ^ sb else sb ^ "*" ^ sa
          in
          opaque_of st key Sort.Int)
  | Binop (Div, a, (Int c as cc)) when c > 0 ->
      let a = elab_int st a in
      let key = Term.to_string (Term.Binop (Div, a, cc)) in
      (match Hashtbl.find_opt st.opaque key with
      | Some q -> q
      | None ->
          let q = fresh st "q" Sort.Int in
          Hashtbl.add st.opaque key q;
          let r = Term.sub a (Term.mul (Term.int c) q) in
          st.defs <-
            Term.le (Term.int 0) r :: Term.lt r (Term.int c) :: st.defs;
          q)
  | Binop (Mod, a, (Int c as cc)) when c > 0 ->
      let a = elab_int st a in
      let key = Term.to_string (Term.Binop (Mod, a, cc)) in
      (match Hashtbl.find_opt st.opaque key with
      | Some r -> r
      | None ->
          let r = fresh st "r" Sort.Int in
          Hashtbl.add st.opaque key r;
          let q = fresh st "q" Sort.Int in
          st.defs <-
            Term.eq a (Term.add (Term.mul (Term.int c) q) r)
            :: Term.le (Term.int 0) r
            :: Term.lt r (Term.int c)
            :: st.defs;
          r)
  | Binop ((Div | Mod), _, _) -> opaque_of st (Term.to_string t) Sort.Int
  | App (f, args) ->
      let args = List.map (elab_int st) args in
      let key = Term.to_string (Term.App (f, args)) in
      let v = opaque_of st key Sort.Int in
      let prev = try Hashtbl.find st.apps f with Not_found -> [] in
      if not (List.exists (fun (v', _) -> Term.equal v v') prev) then begin
        (* Ackermann congruence with earlier applications of f. To keep
           the quadratic blowup in check on array-heavy queries (the WP
           baseline), once a symbol has many applications we only relate
           pairs that already share one argument syntactically — e.g.
           sel(a,i) vs sel(a,j). Dropping the other pairs only weakens
           the hypotheses, which is sound for validity. *)
        let filtered = List.length args >= 2 && List.length prev >= 8 in
        List.iter
          (fun (v', args') ->
            if
              List.length args = List.length args'
              && ((not filtered) || List.exists2 Term.equal args args')
            then
              st.defs <-
                Term.mk_imp
                  (Term.mk_and (List.map2 Term.eq args args'))
                  (Term.eq v v')
                :: st.defs)
          prev;
        Hashtbl.replace st.apps f ((v, args) :: prev)
      end;
      v
  | Ite (c, a, b) ->
      let c = elab_pred st c in
      let a = elab_int st a and b = elab_int st b in
      let v = fresh st "ite" Sort.Int in
      st.defs <-
        Term.mk_imp c (Term.eq v a)
        :: Term.mk_imp (Term.mk_not c) (Term.eq v b)
        :: st.defs;
      v
  | Bool _ | Cmp _ | Eq _ | Ne _ | And _ | Or _ | Not _ | Imp _ | Iff _ ->
      raise (Term.Ill_sorted (Term.to_string t))

(** Elaborate a boolean-sorted term (a predicate). *)
and elab_pred st (t : Term.t) : Term.t =
  match t with
  | Bool _ -> t
  | Var (_, Sort.Bool) -> t
  | Var _ -> raise (Term.Ill_sorted (Term.to_string t))
  | Cmp (op, a, b) ->
      if has_real a || has_real b then
        opaque_of st (Term.to_string t) Sort.Bool
      else Term.mk_cmp op (elab_int st a) (elab_int st b)
  | Eq (a, b) | Ne (a, b) -> (
      let mk x y = match t with Eq _ -> Term.mk_eq x y | _ -> Term.mk_ne x y in
      match Term.sort_of a with
      | Sort.Bool ->
          let p = Term.mk_iff (elab_pred st a) (elab_pred st b) in
          (match t with Eq _ -> p | _ -> Term.mk_not p)
      | Sort.Real -> opaque_of st (Term.to_string t) Sort.Bool
      | Sort.Int | Sort.Loc ->
          if has_real a || has_real b then
            opaque_of st (Term.to_string t) Sort.Bool
          else mk (elab_int st a) (elab_int st b))
  | And ts -> Term.mk_and (List.map (elab_pred st) ts)
  | Or ts -> Term.mk_or (List.map (elab_pred st) ts)
  | Not a -> Term.mk_not (elab_pred st a)
  | Imp (a, b) -> Term.mk_imp (elab_pred st a) (elab_pred st b)
  | Iff (a, b) -> Term.mk_iff (elab_pred st a) (elab_pred st b)
  | Ite (c, a, b) ->
      let c = elab_pred st c in
      Term.mk_or
        [
          Term.mk_and [ c; elab_pred st a ];
          Term.mk_and [ Term.mk_not c; elab_pred st b ];
        ]
  | App _ ->
      (* boolean-valued uninterpreted application: opaque atom *)
      opaque_of st (Term.to_string t) Sort.Bool
  | Int _ | Real _ | Binop _ | Neg _ ->
      raise (Term.Ill_sorted (Term.to_string t))

(* ------------------------------------------------------------------ *)
(* NNF over atom ids                                                   *)
(* ------------------------------------------------------------------ *)

type bform =
  | BTrue
  | BFalse
  | BLit of int * bool  (** atom id, polarity *)
  | BAnd of bform list
  | BOr of bform list

type atoms = {
  table : (Term.t, int) Hashtbl.t;  (** structural keys *)
  mutable list : Term.t list;  (** reversed *)
  mutable n : int;
}

let atom_id atoms (t : Term.t) =
  let key = t in
  match Hashtbl.find_opt atoms.table key with
  | Some i -> i
  | None ->
      let i = atoms.n in
      atoms.n <- i + 1;
      atoms.list <- t :: atoms.list;
      Hashtbl.add atoms.table key i;
      i

(** Convert an elaborated predicate to NNF over atom ids. *)
let rec to_bform atoms pol (t : Term.t) : bform =
  match t with
  | Bool b -> if b = pol then BTrue else BFalse
  | Not a -> to_bform atoms (not pol) a
  | And ts ->
      if pol then BAnd (List.map (to_bform atoms true) ts)
      else BOr (List.map (to_bform atoms false) ts)
  | Or ts ->
      if pol then BOr (List.map (to_bform atoms true) ts)
      else BAnd (List.map (to_bform atoms false) ts)
  | Imp (a, b) ->
      if pol then BOr [ to_bform atoms false a; to_bform atoms true b ]
      else BAnd [ to_bform atoms true a; to_bform atoms false b ]
  | Iff (a, b) ->
      if pol then
        BOr
          [
            BAnd [ to_bform atoms true a; to_bform atoms true b ];
            BAnd [ to_bform atoms false a; to_bform atoms false b ];
          ]
      else
        BOr
          [
            BAnd [ to_bform atoms true a; to_bform atoms false b ];
            BAnd [ to_bform atoms false a; to_bform atoms true b ];
          ]
  | Ne (a, b) -> to_bform atoms (not pol) (Term.Eq (a, b))
  | Var _ | Cmp _ | Eq _ -> BLit (atom_id atoms t, pol)
  | Ite _ | App _ | Int _ | Real _ | Binop _ | Neg _ ->
      raise (Term.Ill_sorted (Term.to_string t))

(* ------------------------------------------------------------------ *)
(* Linear conversion of atoms                                          *)
(* ------------------------------------------------------------------ *)

exception Nonlinear

let rec lin_of_term (t : Term.t) : Lia.lin =
  match t with
  | Var (x, _) -> Lia.lin_var x
  | Int n -> Lia.lin_const n
  | Neg a -> Lia.lin_scale (-1) (lin_of_term a)
  | Binop (Add, a, b) -> Lia.lin_add (lin_of_term a) (lin_of_term b)
  | Binop (Sub, a, b) -> Lia.lin_sub (lin_of_term a) (lin_of_term b)
  | Binop (Mul, Int k, a) | Binop (Mul, a, Int k) ->
      Lia.lin_scale k (lin_of_term a)
  | _ -> raise Nonlinear

(** Convert an assigned atom into a theory literal. Boolean-variable
    atoms carry no arithmetic content and yield [None]. *)
let literal_of_atom (t : Term.t) (value : bool) : Lia.literal option =
  match t with
  | Term.Var (_, Sort.Bool) -> None
  | Term.Cmp (op, a, b) -> (
      try
        let la = lin_of_term a and lb = lin_of_term b in
        let d = Lia.lin_sub la lb in
        (* a op b  ~  d ⋈ 0 *)
        let le0 l = Some (Lia.Le0 l) in
        match (op, value) with
        | Term.Lt, true -> le0 { d with Lia.const = d.Lia.const + 1 }
        | Term.Lt, false -> le0 (Lia.lin_scale (-1) d)
        | Term.Le, true -> le0 d
        | Term.Le, false ->
            let nd = Lia.lin_scale (-1) d in
            le0 { nd with Lia.const = nd.Lia.const + 1 }
        | Term.Gt, true ->
            let nd = Lia.lin_scale (-1) d in
            le0 { nd with Lia.const = nd.Lia.const + 1 }
        | Term.Gt, false -> le0 d
        | Term.Ge, true -> le0 (Lia.lin_scale (-1) d)
        | Term.Ge, false -> le0 { d with Lia.const = d.Lia.const + 1 }
      with Nonlinear -> None)
  | Term.Eq (a, b) -> (
      try
        let d = Lia.lin_sub (lin_of_term a) (lin_of_term b) in
        if value then Some (Lia.Eq0 d) else Some (Lia.Ne0 d)
      with Nonlinear -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* DPLL                                                                *)
(* ------------------------------------------------------------------ *)

let rec simplify (assign : int array) (f : bform) : bform =
  match f with
  | BTrue | BFalse -> f
  | BLit (i, pol) -> (
      match assign.(i) with
      | 0 -> f
      | 1 -> if pol then BTrue else BFalse
      | _ -> if pol then BFalse else BTrue)
  | BAnd fs ->
      let fs = List.map (simplify assign) fs in
      if List.exists (fun f -> f = BFalse) fs then BFalse
      else begin
        match List.filter (fun f -> f <> BTrue) fs with
        | [] -> BTrue
        | [ f ] -> f
        | fs -> BAnd fs
      end
  | BOr fs ->
      let fs = List.map (simplify assign) fs in
      if List.exists (fun f -> f = BTrue) fs then BTrue
      else begin
        match List.filter (fun f -> f <> BFalse) fs with
        | [] -> BFalse
        | [ f ] -> f
        | fs -> BOr fs
      end

let rec first_lit = function
  | BLit (i, _) -> Some i
  | BAnd fs | BOr fs -> List.find_map first_lit fs
  | BTrue | BFalse -> None

(** Literals forced by the top-level conjunctive structure. *)
let unit_literals (f : bform) : (int * bool) list =
  match f with
  | BLit (i, pol) -> [ (i, pol) ]
  | BAnd fs ->
      List.filter_map (function BLit (i, pol) -> Some (i, pol) | _ -> None) fs
  | _ -> []

let dpll_sat (atom_arr : Term.t array) (f : bform) : bool =
  let n = Array.length atom_arr in
  let assign = Array.make n 0 in
  let theory_consistent () =
    stats.theory_checks <- stats.theory_checks + 1;
    let lits = ref [] in
    Array.iteri
      (fun i v ->
        if v <> 0 then
          match literal_of_atom atom_arr.(i) (v = 1) with
          | Some l -> lits := l :: !lits
          | None -> ())
      assign;
    Lia.sat_literals !lits
  in
  (* [undo] records assignments made at this decision level *)
  let rec go f (undo : int list ref) =
    match simplify assign f with
    | BFalse -> false
    | BTrue -> theory_consistent ()
    | f' -> (
        match unit_literals f' with
        | _ :: _ as forced ->
            let ok =
              List.for_all
                (fun (i, pol) ->
                  let v = if pol then 1 else 2 in
                  if assign.(i) = 0 then begin
                    assign.(i) <- v;
                    undo := i :: !undo;
                    true
                  end
                  else assign.(i) = v)
                forced
            in
            if ok then go f' undo else false
        | [] -> (
            match first_lit f' with
            | None -> theory_consistent ()
            | Some i ->
                (* DPLL(T)-style early pruning: if the literals forced
                   so far are already theory-inconsistent, the whole
                   subtree is unsatisfiable *)
                if not (theory_consistent ()) then false
                else
                  let try_value v =
                    assign.(i) <- v;
                    let undo' = ref [] in
                    let r = go f' undo' in
                    List.iter (fun j -> assign.(j) <- 0) !undo';
                    assign.(i) <- 0;
                    r
                  in
                  try_value 1 || try_value 2))
  in
  let undo0 = ref [] in
  go f undo0

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let cache_sat : (Term.t, bool) Hashtbl.t = Hashtbl.create 4096
let cache_valid : (Term.t, bool) Hashtbl.t = Hashtbl.create 4096

let clear_cache () =
  Hashtbl.clear cache_sat;
  Hashtbl.clear cache_valid

(** [sat t]: is [t] satisfiable over the integers? May over-approximate
    (answer [true] for an unsatisfiable [t]) but [false] is definite. *)
let sat_raw (t : Term.t) : bool =
  let st =
    { defs = []; opaque = Hashtbl.create 16; apps = Hashtbl.create 8; counter = 0 }
  in
  let t' = elab_pred st t in
  let full = Term.mk_and (t' :: st.defs) in
  match full with
  | Bool b -> b
  | _ ->
      let atoms = { table = Hashtbl.create 64; list = []; n = 0 } in
      let f = to_bform atoms true full in
      let atom_arr = Array.of_list (List.rev atoms.list) in
      if Array.length atom_arr > stats.max_atoms then
        stats.max_atoms <- Array.length atom_arr;
      dpll_sat atom_arr f

let sat (t : Term.t) : bool =
  stats.queries <- stats.queries + 1;
  match Hashtbl.find_opt cache_sat t with
  | Some r ->
      stats.cache_hits <- stats.cache_hits + 1;
      r
  | None ->
      let t0 = Unix.gettimeofday () in
      let r = sat_raw t in
      stats.time <- stats.time +. (Unix.gettimeofday () -. t0);
      Hashtbl.replace cache_sat t r;
      r

(** [valid t]: does [t] hold for all integer assignments? [true] is
    definite; [false] may be incompleteness. *)
let valid (t : Term.t) : bool =
  match t with
  | Bool b -> b
  | _ ->
      stats.queries <- stats.queries + 1;
      (match Hashtbl.find_opt cache_valid t with
      | Some r ->
          stats.cache_hits <- stats.cache_hits + 1;
          r
      | None ->
          let t0 = Unix.gettimeofday () in
          let r = not (sat_raw (Term.mk_not t)) in
          stats.time <- stats.time +. (Unix.gettimeofday () -. t0);
          Hashtbl.replace cache_valid t r;
          r)

(** Does the conjunction of [hyps] entail [goal]? *)
let entails (hyps : Term.t list) (goal : Term.t) : bool =
  valid (Term.mk_imp (Term.mk_and hyps) goal)

(** Like {!entails}, but first slices the hypotheses to the cone of
    influence of the goal (hypotheses transitively sharing a variable
    with it). Sound: dropping hypotheses only weakens the left-hand
    side. Variable-free goals skip slicing. *)
let entails_sliced (hyps : Term.t list) (goal : Term.t) : bool =
  let seed = Term.free_vars goal in
  if Term.VarSet.is_empty seed then entails hyps goal
  else begin
    let tagged = List.map (fun h -> (h, Term.free_vars h)) hyps in
    let seed = ref seed in
    let remaining = ref tagged in
    let kept = ref [] in
    let changed = ref true in
    while !changed do
      changed := false;
      remaining :=
        List.filter
          (fun (h, vs) ->
            if Term.VarSet.exists (fun v -> Term.VarSet.mem v !seed) vs then begin
              kept := h :: !kept;
              seed := Term.VarSet.union vs !seed;
              changed := true;
              false
            end
            else true)
          !remaining
    done;
    entails !kept goal
  end
