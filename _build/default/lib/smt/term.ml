(** Terms of the quantifier-free refinement logic.

    A single syntactic category covers both integer-sorted expressions
    and boolean-sorted predicates; [sort_of] recovers the sort. Smart
    constructors perform light simplification (constant folding,
    flattening of [And]/[Or], double-negation elimination) so that the
    constraints shipped to the solver and printed in error messages stay
    readable. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** euclidean integer division *)
  | Mod

type cmpop =
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | Var of string * Sort.t
  | Int of int
  | Real of float
  | Bool of bool
  | Binop of binop * t * t
  | Neg of t
  | Cmp of cmpop * t * t
  | Eq of t * t
  | Ne of t * t
  | And of t list
  | Or of t list
  | Not of t
  | Imp of t * t
  | Iff of t * t
  | Ite of t * t * t
  | App of string * t list
      (** uninterpreted function application; result sort is [Int] by
          convention (sufficient for our use: opaque abstractions of
          nonlinear arithmetic and the WP baseline's array reads) *)

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let tt = Bool true
let ff = Bool false
let int n = Int n
let real x = Real x
let var ?(sort = Sort.Int) name = Var (name, sort)
let bvar name = Var (name, Sort.Bool)

let rec mk_not t =
  match t with
  | Bool b -> Bool (not b)
  | Not t' -> t'
  | Cmp (Lt, a, b) -> Cmp (Ge, a, b)
  | Cmp (Le, a, b) -> Cmp (Gt, a, b)
  | Cmp (Gt, a, b) -> Cmp (Le, a, b)
  | Cmp (Ge, a, b) -> Cmp (Lt, a, b)
  | Eq (a, b) -> Ne (a, b)
  | Ne (a, b) -> Eq (a, b)
  | And ts -> Or (List.map mk_not ts)
  | Or ts -> And (List.map mk_not ts)
  | _ -> Not t

let mk_and ts =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | Bool true :: rest -> flatten acc rest
    | Bool false :: _ -> None
    | And sub :: rest -> flatten acc (sub @ rest)
    | t :: rest -> flatten (t :: acc) rest
  in
  match flatten [] ts with
  | None -> ff
  | Some [] -> tt
  | Some [ t ] -> t
  | Some ts -> And ts

let mk_or ts =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | Bool false :: rest -> flatten acc rest
    | Bool true :: _ -> None
    | Or sub :: rest -> flatten acc (sub @ rest)
    | t :: rest -> flatten (t :: acc) rest
  in
  match flatten [] ts with
  | None -> tt
  | Some [] -> ff
  | Some [ t ] -> t
  | Some ts -> Or ts

let mk_imp a b =
  match (a, b) with
  | Bool true, b -> b
  | Bool false, _ -> tt
  | _, Bool true -> tt
  | _, Bool false -> mk_not a
  | _ -> Imp (a, b)

let mk_iff a b =
  match (a, b) with
  | Bool true, b -> b
  | b, Bool true -> b
  | Bool false, b -> mk_not b
  | b, Bool false -> mk_not b
  | _ -> Iff (a, b)

let mk_binop op a b =
  match (op, a, b) with
  | Add, Int x, Int y -> Int (x + y)
  | Sub, Int x, Int y -> Int (x - y)
  | Mul, Int x, Int y -> Int (x * y)
  | Add, t, Int 0 | Add, Int 0, t -> t
  | Sub, t, Int 0 -> t
  | Mul, t, Int 1 | Mul, Int 1, t -> t
  | Mul, _, Int 0 | Mul, Int 0, _ -> Int 0
  | Div, t, Int 1 -> t
  | _ -> Binop (op, a, b)

let add a b = mk_binop Add a b
let sub a b = mk_binop Sub a b
let mul a b = mk_binop Mul a b
let div a b = mk_binop Div a b
let md a b = mk_binop Mod a b

let neg = function Int n -> Int (-n) | Neg t -> t | t -> Neg t

let mk_cmp op a b =
  match (a, b) with
  | Int x, Int y ->
      Bool
        (match op with
        | Lt -> x < y
        | Le -> x <= y
        | Gt -> x > y
        | Ge -> x >= y)
  | _ -> Cmp (op, a, b)

let lt a b = mk_cmp Lt a b
let le a b = mk_cmp Le a b
let gt a b = mk_cmp Gt a b
let ge a b = mk_cmp Ge a b

let rec equal a b =
  match (a, b) with
  | Var (x, s), Var (y, s') -> String.equal x y && Sort.equal s s'
  | Int x, Int y -> x = y
  | Real x, Real y -> Float.equal x y
  | Bool x, Bool y -> x = y
  | Binop (o, a1, a2), Binop (o', b1, b2) -> o = o' && equal a1 b1 && equal a2 b2
  | Neg a, Neg b | Not a, Not b -> equal a b
  | Cmp (o, a1, a2), Cmp (o', b1, b2) -> o = o' && equal a1 b1 && equal a2 b2
  | Eq (a1, a2), Eq (b1, b2)
  | Ne (a1, a2), Ne (b1, b2)
  | Imp (a1, a2), Imp (b1, b2)
  | Iff (a1, a2), Iff (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | And xs, And ys | Or xs, Or ys -> equal_list xs ys
  | Ite (a1, a2, a3), Ite (b1, b2, b3) -> equal a1 b1 && equal a2 b2 && equal a3 b3
  | App (f, xs), App (g, ys) -> String.equal f g && equal_list xs ys
  | _ -> false

and equal_list xs ys =
  try List.for_all2 equal xs ys with Invalid_argument _ -> false

let mk_eq a b =
  match (a, b) with
  | Int x, Int y -> Bool (x = y)
  | Bool x, Bool y -> Bool (x = y)
  | Bool true, t | t, Bool true -> t
  | Bool false, t | t, Bool false -> mk_not t
  | _ -> if equal a b then tt else Eq (a, b)

let mk_ne a b =
  match (a, b) with
  | Int x, Int y -> Bool (x <> y)
  | Bool x, Bool y -> Bool (x <> y)
  | _ -> if equal a b then ff else Ne (a, b)

let eq = mk_eq
let ne = mk_ne

let ite c a b =
  match c with Bool true -> a | Bool false -> b | _ -> Ite (c, a, b)

let app f ts = App (f, ts)

(* ------------------------------------------------------------------ *)
(* Sorts                                                               *)
(* ------------------------------------------------------------------ *)

exception Ill_sorted of string

let rec sort_of = function
  | Var (_, s) -> s
  | Int _ -> Sort.Int
  | Real _ -> Sort.Real
  | Bool _ -> Sort.Bool
  | Binop (_, a, _) -> sort_of a
  | Neg a -> sort_of a
  | Cmp _ | Eq _ | Ne _ | And _ | Or _ | Not _ | Imp _ | Iff _ -> Sort.Bool
  | Ite (_, a, _) -> sort_of a
  | App _ -> Sort.Int

let is_pred t = Sort.equal (sort_of t) Sort.Bool

(* ------------------------------------------------------------------ *)
(* Free variables and substitution                                     *)
(* ------------------------------------------------------------------ *)

module VarSet = Set.Make (String)

let rec fold_vars f acc = function
  | Var (x, s) -> f acc x s
  | Int _ | Real _ | Bool _ -> acc
  | Neg a | Not a -> fold_vars f acc a
  | Binop (_, a, b) | Cmp (_, a, b) | Eq (a, b) | Ne (a, b) | Imp (a, b) | Iff (a, b)
    ->
      fold_vars f (fold_vars f acc a) b
  | And ts | Or ts | App (_, ts) -> List.fold_left (fold_vars f) acc ts
  | Ite (a, b, c) -> fold_vars f (fold_vars f (fold_vars f acc a) b) c

let free_vars t = fold_vars (fun acc x _ -> VarSet.add x acc) VarSet.empty t

let free_vars_sorted t =
  fold_vars
    (fun acc x s -> if List.mem_assoc x acc then acc else (x, s) :: acc)
    [] t
  |> List.rev

let mem_var x t = VarSet.mem x (free_vars t)

(** Capture-free is not a concern: the logic is quantifier-free. *)
let rec subst (m : (string * t) list) t =
  match t with
  | Var (x, _) -> ( match List.assoc_opt x m with Some u -> u | None -> t)
  | Int _ | Real _ | Bool _ -> t
  | Binop (op, a, b) -> mk_binop op (subst m a) (subst m b)
  | Neg a -> neg (subst m a)
  | Cmp (op, a, b) -> mk_cmp op (subst m a) (subst m b)
  | Eq (a, b) -> mk_eq (subst m a) (subst m b)
  | Ne (a, b) -> mk_ne (subst m a) (subst m b)
  | And ts -> mk_and (List.map (subst m) ts)
  | Or ts -> mk_or (List.map (subst m) ts)
  | Not a -> mk_not (subst m a)
  | Imp (a, b) -> mk_imp (subst m a) (subst m b)
  | Iff (a, b) -> mk_iff (subst m a) (subst m b)
  | Ite (a, b, c) -> ite (subst m a) (subst m b) (subst m c)
  | App (f, ts) -> App (f, List.map (subst m) ts)

let subst1 x u t = subst [ (x, u) ] t

(** Rename variables according to [m]; variables not in [m] are kept. *)
let rec rename_vars (m : (string * string) list) t =
  match t with
  | Var (x, s) -> (
      match List.assoc_opt x m with Some y -> Var (y, s) | None -> t)
  | Int _ | Real _ | Bool _ -> t
  | Binop (op, a, b) -> Binop (op, rename_vars m a, rename_vars m b)
  | Neg a -> Neg (rename_vars m a)
  | Cmp (op, a, b) -> Cmp (op, rename_vars m a, rename_vars m b)
  | Eq (a, b) -> Eq (rename_vars m a, rename_vars m b)
  | Ne (a, b) -> Ne (rename_vars m a, rename_vars m b)
  | And ts -> And (List.map (rename_vars m) ts)
  | Or ts -> Or (List.map (rename_vars m) ts)
  | Not a -> Not (rename_vars m a)
  | Imp (a, b) -> Imp (rename_vars m a, rename_vars m b)
  | Iff (a, b) -> Iff (rename_vars m a, rename_vars m b)
  | Ite (a, b, c) -> Ite (rename_vars m a, rename_vars m b, rename_vars m c)
  | App (f, ts) -> App (f, List.map (rename_vars m) ts)

(* ------------------------------------------------------------------ *)
(* Size & printing                                                     *)
(* ------------------------------------------------------------------ *)

let rec size = function
  | Var _ | Int _ | Real _ | Bool _ -> 1
  | Neg a | Not a -> 1 + size a
  | Binop (_, a, b) | Cmp (_, a, b) | Eq (a, b) | Ne (a, b) | Imp (a, b) | Iff (a, b)
    ->
      1 + size a + size b
  | And ts | Or ts | App (_, ts) -> List.fold_left (fun n t -> n + size t) 1 ts
  | Ite (a, b, c) -> 1 + size a + size b + size c

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let cmpop_str = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp fmt t =
  match t with
  | Var (x, _) -> Format.pp_print_string fmt x
  | Int n -> Format.pp_print_int fmt n
  | Real x -> Format.pp_print_float fmt x
  | Bool b -> Format.pp_print_bool fmt b
  | Binop (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp a (binop_str op) pp b
  | Neg a -> Format.fprintf fmt "(- %a)" pp a
  | Cmp (op, a, b) -> Format.fprintf fmt "%a %s %a" pp a (cmpop_str op) pp b
  | Eq (a, b) -> Format.fprintf fmt "%a = %a" pp a pp b
  | Ne (a, b) -> Format.fprintf fmt "%a != %a" pp a pp b
  | And ts ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " && ")
           pp)
        ts
  | Or ts ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " || ")
           pp)
        ts
  | Not a -> Format.fprintf fmt "!(%a)" pp a
  | Imp (a, b) -> Format.fprintf fmt "(%a => %a)" pp a pp b
  | Iff (a, b) -> Format.fprintf fmt "(%a <=> %a)" pp a pp b
  | Ite (a, b, c) -> Format.fprintf fmt "(if %a then %a else %a)" pp a pp b pp c
  | App (f, ts) ->
      Format.fprintf fmt "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp)
        ts

let to_string t = Format.asprintf "%a" pp t
