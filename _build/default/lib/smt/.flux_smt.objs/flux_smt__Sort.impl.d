lib/smt/sort.ml: Format Stdlib
