lib/smt/lia.mli: Format Map
