lib/smt/term.ml: Float Format List Set Sort String
