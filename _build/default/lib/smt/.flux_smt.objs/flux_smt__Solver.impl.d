lib/smt/solver.ml: Array Hashtbl Lia List Printf Sort Term Unix
