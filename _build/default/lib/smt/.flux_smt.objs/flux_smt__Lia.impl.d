lib/smt/lia.ml: Format Hashtbl List Map Option String
