lib/smt/solver.mli: Term
