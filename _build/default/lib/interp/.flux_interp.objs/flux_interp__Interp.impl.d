lib/interp/interp.ml: Array Float Flux_mir Flux_syntax Format Hashtbl List Printf String
