lib/interp/interp.mli: Flux_mir Flux_syntax Format
