(** Unrefined type checking and local type inference for the Rust
    subset.

    This pass plays the role of rustc's type checker in the paper's
    pipeline: Flux consumes MIR that is already borrow-checked and
    typed, so every expression node must carry its plain Rust type
    before lowering ({!Ast.expr.e_ty} is filled in here). Inference is a
    small union-find unifier — enough for idiomatic code such as
    [let mut vec = RVec::new()] whose element type is determined by a
    later [push]. Unresolved integer literals default to [i32].

    Borrow checking itself is assumed, exactly as in the paper ("as a
    compiler plug-in, Flux operates on compiled Rust programs" §4); we
    check well-typedness, arity, and that specification-only forms do
    not occur in code. *)

open Ast

exception Error of string * span

let err span msg = raise (Error (msg, span))

(* ------------------------------------------------------------------ *)
(* Unification                                                         *)
(* ------------------------------------------------------------------ *)

type tvar = { mutable link : ty option; int_only : bool }

type state = {
  prog : program;
  tvars : (int, tvar) Hashtbl.t;
  mutable next_tv : int;
  mutable locals : (string * ty) list;
  mutable exprs : expr list;  (** every visited node, for final zonking *)
  fn : fn_def;
}

let fresh_tv st ~int_only =
  let id = st.next_tv in
  st.next_tv <- id + 1;
  Hashtbl.replace st.tvars id { link = None; int_only };
  TInfer id

let rec repr st t =
  match t with
  | TInfer id -> (
      let tv = Hashtbl.find st.tvars id in
      match tv.link with
      | Some t' ->
          let r = repr st t' in
          tv.link <- Some r;
          r
      | None -> t)
  | _ -> t

let rec occurs st id t =
  match repr st t with
  | TInfer id' -> id = id'
  | TVec t' | TRef (_, t') -> occurs st id t'
  | _ -> false

let is_intish = function TInt _ -> true | TInfer _ -> true | _ -> false

let rec unify st span a b =
  let a = repr st a and b = repr st b in
  match (a, b) with
  | TInfer i, TInfer j when i = j -> ()
  | TInfer i, t | t, TInfer i ->
      let tv = Hashtbl.find st.tvars i in
      if tv.int_only && not (is_intish t) then
        err span
          (Format.asprintf "integer literal used at non-integer type %a" pp_ty t);
      if occurs st i t then err span "cyclic type during inference";
      tv.link <- Some t
  | TInt k1, TInt k2 when k1 = k2 -> ()
  | TFloat, TFloat | TBool, TBool | TUnit, TUnit -> ()
  | TVec t1, TVec t2 -> unify st span t1 t2
  | TStruct s1, TStruct s2 when String.equal s1 s2 -> ()
  | TParam x, TParam y when String.equal x y -> ()
  | TRef (m1, t1), TRef (m2, t2) when m1 = m2 -> unify st span t1 t2
  | _ ->
      err span (Format.asprintf "type mismatch: %a vs %a" pp_ty a pp_ty b)

let rec zonk st span t =
  match repr st t with
  | TInfer id ->
      let tv = Hashtbl.find st.tvars id in
      if tv.int_only then begin
        tv.link <- Some (TInt I32);
        TInt I32
      end
      else err span "could not infer a type; add an annotation"
  | TVec t' -> TVec (zonk st span t')
  | TRef (m, t') -> TRef (m, zonk st span t')
  | t -> t

(* ------------------------------------------------------------------ *)
(* Environment helpers                                                 *)
(* ------------------------------------------------------------------ *)

(** Argument passing allows the [&mut T → &T] coercion. *)
let unify_arg st span actual expected =
  match (repr st actual, repr st expected) with
  | TRef (Mut, t1), TRef (Imm, t2) -> unify st span t1 t2
  | a, e -> unify st span a e

let lookup_local st span x =
  match List.assoc_opt x st.locals with
  | Some t -> t
  | None -> err span (Printf.sprintf "unbound variable %s" x)

let define_local st span x t =
  if List.mem_assoc x st.locals then
    err span
      (Printf.sprintf
         "variable %s shadows an earlier binding (shadowing is not supported)"
         x);
  st.locals <- (x, t) :: st.locals

(** Strip references for auto-deref (method receivers, copies). *)
let rec peel_refs st t =
  match repr st t with TRef (_, t') -> peel_refs st t' | t -> t

(* ------------------------------------------------------------------ *)
(* Built-in RVec API                                                   *)
(* ------------------------------------------------------------------ *)

(** [method -> (arg types, result)]; [elt] is the receiver's element
    type. *)
let vec_method _st span elt name =
  match name with
  | "len" -> ([], TInt Usize)
  | "is_empty" -> ([], TBool)
  | "push" -> ([ elt ], TUnit)
  | "pop" -> ([], elt)
  | "get" -> ([ TInt Usize ], TRef (Imm, elt))
  | "get_mut" -> ([ TInt Usize ], TRef (Mut, elt))
  | "swap" -> ([ TInt Usize; TInt Usize ], TUnit)
  | "clone" -> ([], TVec elt)
  | _ -> err span (Printf.sprintf "unknown RVec method %s" name)

(* ------------------------------------------------------------------ *)
(* Expression checking                                                 *)
(* ------------------------------------------------------------------ *)

let rec infer_expr st (e : expr) : ty =
  let t = infer_expr_kind st e in
  e.e_ty <- Some t;
  st.exprs <- e :: st.exprs;
  t

and infer_expr_kind st (e : expr) : ty =
  let span = e.e_span in
  match e.e with
  | EInt _ -> fresh_tv st ~int_only:true
  | EFloat _ -> TFloat
  | EBool _ -> TBool
  | EUnit -> TUnit
  | EVar x -> lookup_local st span x
  | EBin (op, a, b) -> (
      let ta = infer_expr st a in
      let tb = infer_expr st b in
      match op with
      | Add | Sub | Mul | Div | Rem ->
          unify st span ta tb;
          ta
      | Lt | Le | Gt | Ge ->
          unify st span ta tb;
          TBool
      | EqOp | NeOp ->
          unify st span ta tb;
          TBool
      | AndOp | OrOp ->
          unify st span ta TBool;
          unify st span tb TBool;
          TBool
      | ImpOp -> err span "==> is only allowed in specifications")
  | EUn (Not, a) ->
      let ta = infer_expr st a in
      unify st span ta TBool;
      TBool
  | EUn (NegOp, a) -> infer_expr st a
  | EDeref a -> (
      let ta = infer_expr st a in
      match repr st ta with
      | TRef (_, t) -> t
      | t -> err span (Format.asprintf "cannot dereference non-reference %a" pp_ty t))
  | ERef (m, a) ->
      let ta = infer_expr st a in
      TRef (m, ta)
  | ECall ("RVec::new", args) ->
      if args <> [] then err span "RVec::new takes no arguments";
      TVec (fresh_tv st ~int_only:false)
  | ECall ("assert!", args) ->
      List.iter (fun a -> unify st span (infer_expr st a) TBool) args;
      TUnit
  | ECall (f, args) -> (
      match find_fn st.prog f with
      | None -> err span (Printf.sprintf "unknown function %s" f)
      | Some fd ->
          if List.length args <> List.length fd.fn_params then
            err span
              (Printf.sprintf "%s expects %d arguments, got %d" f
                 (List.length fd.fn_params)
                 (List.length args));
          List.iter2
            (fun arg (_, pty) ->
              let ta = infer_expr st arg in
              unify_arg st span ta pty)
            args fd.fn_params;
          fd.fn_ret)
  | EMethod (recv, m, args) -> (
      let tr = infer_expr st recv in
      match peel_refs st tr with
      | TVec elt ->
          let arg_tys, ret = vec_method st span elt m in
          if List.length args <> List.length arg_tys then
            err span (Printf.sprintf "RVec::%s: wrong number of arguments" m);
          List.iter2
            (fun arg ty -> unify_arg st span (infer_expr st arg) ty)
            args arg_tys;
          ret
      | TStruct sname -> (
          let mname = sname ^ "::" ^ m in
          match find_fn st.prog mname with
          | None -> err span (Printf.sprintf "unknown method %s" mname)
          | Some fd ->
              (* first parameter is the receiver *)
              let params =
                match fd.fn_params with
                | ("self", _) :: rest -> rest
                | _ -> err span (Printf.sprintf "%s is not a method" mname)
              in
              if List.length args <> List.length params then
                err span (Printf.sprintf "%s: wrong number of arguments" mname);
              List.iter2
                (fun arg (_, pty) -> unify_arg st span (infer_expr st arg) pty)
                args params;
              fd.fn_ret)
      | t -> err span (Format.asprintf "no methods on type %a" pp_ty t))
  | EField (recv, fname) -> (
      let tr = infer_expr st recv in
      match peel_refs st tr with
      | TStruct sname -> (
          match find_struct st.prog sname with
          | None -> err span (Printf.sprintf "unknown struct %s" sname)
          | Some sd -> (
              match
                List.find_opt (fun f -> String.equal f.fd_name fname) sd.st_fields
              with
              | Some f -> f.fd_ty
              | None ->
                  err span (Printf.sprintf "struct %s has no field %s" sname fname)))
      | t -> err span (Format.asprintf "no fields on type %a" pp_ty t))
  | EStruct (sname, fields) -> (
      match find_struct st.prog sname with
      | None -> err span (Printf.sprintf "unknown struct %s" sname)
      | Some sd ->
          List.iter
            (fun fd ->
              match
                List.find_opt (fun (n, _) -> String.equal n fd.fd_name) fields
              with
              | Some (_, value) ->
                  let tv = infer_expr st value in
                  unify st span tv fd.fd_ty
              | None ->
                  err span
                    (Printf.sprintf "missing field %s in %s literal" fd.fd_name
                       sname))
            sd.st_fields;
          if List.length fields <> List.length sd.st_fields then
            err span (Printf.sprintf "extra fields in %s literal" sname);
          TStruct sname)
  | EIf (cond, then_b, else_b) -> (
      let tc = infer_expr st cond in
      unify st span tc TBool;
      let tt = infer_block st then_b in
      match else_b with
      | Some eb ->
          let te = infer_block st eb in
          unify st span tt te;
          tt
      | None ->
          unify st span tt TUnit;
          TUnit)
  | EBlock b -> infer_block st b
  | EForall _ | EOld _ | EResult ->
      err span "specification-only expression in program code"

and infer_block st (b : block) : ty =
  let saved = st.locals in
  List.iter (check_stmt st) b.stmts;
  let t = match b.tail with Some e -> infer_expr st e | None -> TUnit in
  st.locals <- saved;
  t

and check_stmt st (s : stmt) : unit =
  match s with
  | SLet { lname; lty; linit; lspan; _ } ->
      let ti = infer_expr st linit in
      (match lty with Some t -> unify st lspan ti t | None -> ());
      define_local st lspan lname ti
  | SAssign (place, op, rhs, span) -> (
      check_place st place;
      let tp = infer_expr st place in
      let tr = infer_expr st rhs in
      unify st span tp tr;
      match op with
      | Some (Add | Sub | Mul | Div | Rem) | None -> ()
      | Some other ->
          err span
            (Printf.sprintf "operator %s= is not supported" (binop_str other)))
  | SExpr e -> ignore (infer_expr st e)
  | SWhile (cond, body, span) ->
      let tc = infer_expr st cond in
      unify st span tc TBool;
      ignore (infer_block st body)
  | SInvariant (e, _) ->
      (* Prusti invariant: typecheck in spec mode, permissively — the
         quantified variables are bound locally. *)
      check_spec_expr st e
  | SReturn (Some e, span) ->
      let t = infer_expr st e in
      unify st span t st.fn.fn_ret
  | SReturn (None, span) -> unify st span TUnit st.fn.fn_ret
  | SBreak _ -> ()

and check_place st (place : expr) : unit =
  match place.e with
  | EVar _ -> ()
  | EDeref _ -> ()
  | EField (r, _) -> check_place st r
  | _ -> err place.e_span "invalid assignment target"

(** Specification expressions (Prusti invariants/contracts): permissive
    checking that only fills in enough types for the WP encoder. Binders
    introduced by [forall] are pushed as locals; [old]/[result]/len and
    lookup calls are allowed. *)
and check_spec_expr st (e : expr) : unit =
  st.exprs <- e :: st.exprs;
  match e.e with
  | EForall (params, body) ->
      let saved = st.locals in
      List.iter (fun (x, t) -> st.locals <- (x, t) :: st.locals) params;
      check_spec_expr st body;
      st.locals <- saved
  | EOld inner -> check_spec_expr st inner
  | EResult -> ()
  | EBin (_, a, b) ->
      check_spec_expr st a;
      check_spec_expr st b
  | EUn (_, a) -> check_spec_expr st a
  | EMethod (recv, _, args) ->
      check_spec_expr st recv;
      List.iter (check_spec_expr st) args
  | ECall (_, args) -> List.iter (check_spec_expr st) args
  | EVar x -> if not (List.mem_assoc x st.locals) then
        err e.e_span (Printf.sprintf "unbound variable %s in specification" x)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

let check_fn (prog : program) (fd : fn_def) : unit =
  match fd.fn_body with
  | None -> ()
  | Some body ->
      let st =
        {
          prog;
          tvars = Hashtbl.create 32;
          next_tv = 0;
          locals = fd.fn_params;
          exprs = [];
          fn = fd;
        }
      in
      let t = infer_block st body in
      (* A body ending in a `return` has unit tail type; accept it. *)
      (match body.tail with
      | None -> ()
      | Some _ -> unify st fd.fn_span t fd.fn_ret);
      (* zonk all recorded expression types *)
      List.iter
        (fun (e : expr) ->
          match e.e_ty with
          | Some t -> e.e_ty <- Some (zonk st e.e_span t)
          | None -> ())
        st.exprs

let check_program (prog : program) : unit =
  (* duplicate detection *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun item ->
      let name, span =
        match item with
        | IFn f -> ("fn " ^ f.fn_name, f.fn_span)
        | IStruct s -> ("struct " ^ s.st_name, s.st_span)
      in
      if Hashtbl.mem seen name then err span (Printf.sprintf "duplicate %s" name);
      Hashtbl.add seen name ())
    prog;
  List.iter (function IFn f -> check_fn prog f | IStruct _ -> ()) prog
