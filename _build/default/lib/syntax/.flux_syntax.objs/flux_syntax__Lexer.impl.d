lib/syntax/lexer.ml: Array Ast List Printf String Token
