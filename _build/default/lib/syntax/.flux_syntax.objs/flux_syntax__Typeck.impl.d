lib/syntax/typeck.ml: Ast Format Hashtbl List Printf String
