lib/syntax/parser.ml: Array Ast Flux_smt Lexer List Printf String Token
