lib/syntax/ast.ml: Flux_smt Format List String
