(** Recursive-descent parser for the Rust subset and the specification
    language carried in attributes.

    The expression grammar is shared between program code and
    specifications; specification-only forms ([forall], [old],
    [result], [==>], [@binders]) are accepted grammatically everywhere
    and rejected later by the unrefined typechecker when they occur in
    code positions.

    Inside generic/index brackets [B<...>] the token [>] always closes
    the bracket and is never a comparison (write [a < b] instead of
    [b > a] there); this matches the paper's examples such as
    [bool<0 < n>]. *)

open Ast

exception Error of string * pos

let err p msg = raise (Error (msg, p))

type t = {
  toks : (Token.t * pos) array;
  mutable i : int;
  mutable no_struct : bool;
      (** inside an if/while condition: bare [Name { .. }] is a block,
          not a struct literal *)
  mutable no_gt : bool;  (** inside [<...>]: [>] closes, [>] is not an op *)
}

let make_parser toks = { toks; i = 0; no_struct = false; no_gt = false }

let of_string src = make_parser (Lexer.tokenize src)

let peek p = fst p.toks.(p.i)
let peek_pos p = snd p.toks.(p.i)
let peek2 p =
  if p.i + 1 < Array.length p.toks then fst p.toks.(p.i + 1) else Token.EOF

let advance p = if p.i < Array.length p.toks - 1 then p.i <- p.i + 1

let expect p tok =
  if peek p = tok then advance p
  else
    err (peek_pos p)
      (Printf.sprintf "expected %s, found %s" (Token.to_string tok)
         (Token.to_string (peek p)))

let accept p tok =
  if peek p = tok then begin
    advance p;
    true
  end
  else false

let expect_ident p =
  match peek p with
  | Token.IDENT x ->
      advance p;
      x
  | t -> err (peek_pos p) (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

let span_from p (start : pos) : span = { sp_start = start; sp_end = peek_pos p }

(* ------------------------------------------------------------------ *)
(* Types (code context)                                                *)
(* ------------------------------------------------------------------ *)

let int_kind_of_name = function
  | "i32" -> Some I32
  | "i64" -> Some I64
  | "usize" -> Some Usize
  | "isize" -> Some Isize
  | _ -> None

let rec parse_ty p : ty =
  match peek p with
  | Token.AMP ->
      advance p;
      let m = if accept p Token.KW_MUT then Mut else Imm in
      TRef (m, parse_ty p)
  | Token.LPAREN ->
      advance p;
      expect p Token.RPAREN;
      TUnit
  | Token.IDENT "f32" | Token.IDENT "f64" ->
      advance p;
      TFloat
  | Token.IDENT "bool" ->
      advance p;
      TBool
  | Token.IDENT "RVec" ->
      advance p;
      expect p Token.LT;
      let elt = parse_ty p in
      expect p Token.GT;
      TVec elt
  | Token.IDENT name -> (
      advance p;
      match int_kind_of_name name with
      | Some k -> TInt k
      | None ->
          (* "T" is reserved for the built-in library signatures *)
          if String.equal name "T" then TParam name else TStruct name)
  | t -> err (peek_pos p) (Printf.sprintf "expected a type, found %s" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr p : expr = parse_implies p

and parse_implies p =
  let lhs = parse_or p in
  if accept p Token.IMPLIES then
    let rhs = parse_implies p in
    mk_expr ~span:lhs.e_span (EBin (ImpOp, lhs, rhs))
  else lhs

and parse_or p =
  let lhs = parse_and p in
  let rec go lhs =
    if accept p Token.BARBAR then
      go (mk_expr ~span:lhs.e_span (EBin (OrOp, lhs, parse_and p)))
    else lhs
  in
  go lhs

and parse_and p =
  let lhs = parse_cmp p in
  let rec go lhs =
    if accept p Token.AMPAMP then
      go (mk_expr ~span:lhs.e_span (EBin (AndOp, lhs, parse_cmp p)))
    else lhs
  in
  go lhs

and parse_cmp p =
  let lhs = parse_add p in
  let op =
    match peek p with
    | Token.LT -> Some Lt
    | Token.LE -> Some Le
    | Token.GT when not p.no_gt -> Some Gt
    | Token.GE when not p.no_gt -> Some Ge
    | Token.EQEQ -> Some EqOp
    | Token.NE -> Some NeOp
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance p;
      let rhs = parse_add p in
      mk_expr ~span:lhs.e_span (EBin (op, lhs, rhs))

and parse_add p =
  let lhs = parse_mul p in
  let rec go lhs =
    match peek p with
    | Token.PLUS ->
        advance p;
        go (mk_expr ~span:lhs.e_span (EBin (Add, lhs, parse_mul p)))
    | Token.MINUS ->
        advance p;
        go (mk_expr ~span:lhs.e_span (EBin (Sub, lhs, parse_mul p)))
    | _ -> lhs
  in
  go lhs

and parse_mul p =
  let lhs = parse_unary p in
  let rec go lhs =
    match peek p with
    | Token.STAR ->
        advance p;
        go (mk_expr ~span:lhs.e_span (EBin (Mul, lhs, parse_unary p)))
    | Token.SLASH ->
        advance p;
        go (mk_expr ~span:lhs.e_span (EBin (Div, lhs, parse_unary p)))
    | Token.PERCENT ->
        advance p;
        go (mk_expr ~span:lhs.e_span (EBin (Rem, lhs, parse_unary p)))
    | _ -> lhs
  in
  go lhs

and parse_unary p =
  let start = peek_pos p in
  match peek p with
  | Token.BANG ->
      advance p;
      mk_expr ~span:(span_from p start) (EUn (Not, parse_unary p))
  | Token.MINUS ->
      advance p;
      mk_expr ~span:(span_from p start) (EUn (NegOp, parse_unary p))
  | Token.STAR ->
      advance p;
      mk_expr ~span:(span_from p start) (EDeref (parse_unary p))
  | Token.AMP ->
      advance p;
      let m = if accept p Token.KW_MUT then Mut else Imm in
      mk_expr ~span:(span_from p start) (ERef (m, parse_unary p))
  | _ -> parse_postfix p

and parse_postfix p =
  let e = parse_primary p in
  let rec go e =
    match peek p with
    | Token.DOT -> (
        advance p;
        let name = expect_ident p in
        match peek p with
        | Token.LPAREN ->
            let args = parse_paren_args p in
            go (mk_expr ~span:e.e_span (EMethod (e, name, args)))
        | _ -> go (mk_expr ~span:e.e_span (EField (e, name))))
    | _ -> e
  in
  go e

and parse_paren_args p =
  expect p Token.LPAREN;
  let saved_ns = p.no_struct and saved_ngt = p.no_gt in
  p.no_struct <- false;
  p.no_gt <- false;
  let args =
    if peek p = Token.RPAREN then []
    else
      let rec go acc =
        let e = parse_expr p in
        if accept p Token.COMMA then go (e :: acc) else List.rev (e :: acc)
      in
      go []
  in
  p.no_struct <- saved_ns;
  p.no_gt <- saved_ngt;
  expect p Token.RPAREN;
  args

and parse_primary p : expr =
  let start = peek_pos p in
  let mk e = mk_expr ~span:(span_from p start) e in
  match peek p with
  | Token.INT n ->
      advance p;
      mk (EInt n)
  | Token.FLOAT f ->
      advance p;
      mk (EFloat f)
  | Token.KW_TRUE ->
      advance p;
      mk (EBool true)
  | Token.KW_FALSE ->
      advance p;
      mk (EBool false)
  | Token.KW_RESULT ->
      advance p;
      mk EResult
  | Token.KW_OLD ->
      advance p;
      let args = parse_paren_args p in
      (match args with
      | [ e ] -> mk (EOld e)
      | _ -> err start "old(..) takes exactly one argument")
  | Token.KW_FORALL ->
      advance p;
      expect p Token.LPAREN;
      expect p Token.BAR;
      let rec params acc =
        let x = expect_ident p in
        expect p Token.COLON;
        let t = parse_ty p in
        if accept p Token.COMMA then params ((x, t) :: acc)
        else List.rev ((x, t) :: acc)
      in
      let ps = params [] in
      expect p Token.BAR;
      let body = parse_expr p in
      expect p Token.RPAREN;
      mk (EForall (ps, body))
  | Token.KW_SELF ->
      advance p;
      mk (EVar "self")
  | Token.LPAREN ->
      advance p;
      if accept p Token.RPAREN then mk EUnit
      else begin
        let saved_ns = p.no_struct and saved_ngt = p.no_gt in
        p.no_struct <- false;
        p.no_gt <- false;
        let e = parse_expr p in
        p.no_struct <- saved_ns;
        p.no_gt <- saved_ngt;
        expect p Token.RPAREN;
        e
      end
  | Token.KW_IF ->
      advance p;
      let saved = p.no_struct in
      p.no_struct <- true;
      let cond = parse_expr p in
      p.no_struct <- saved;
      let then_b = parse_block p in
      let else_b =
        if accept p Token.KW_ELSE then
          if peek p = Token.KW_IF then
            (* else-if chain: wrap as a one-expression block *)
            let e = parse_primary p in
            Some { stmts = []; tail = Some e; b_span = e.e_span }
          else Some (parse_block p)
        else None
      in
      mk (EIf (cond, then_b, else_b))
  | Token.LBRACE -> mk (EBlock (parse_block p))
  | Token.IDENT _ -> (
      let name = expect_ident p in
      (* path segments: Name::name2::... *)
      let rec path acc =
        if peek p = Token.COLONCOLON then begin
          advance p;
          let seg = expect_ident p in
          path (acc ^ "::" ^ seg)
        end
        else acc
      in
      let name = path name in
      match peek p with
      | Token.LPAREN ->
          let args = parse_paren_args p in
          mk (ECall (name, args))
      | Token.BANG ->
          (* macro call, e.g. body_invariant!(..) / assert!(..) *)
          advance p;
          let args = parse_paren_args p in
          mk (ECall (name ^ "!", args))
      | Token.LBRACE
        when (not p.no_struct)
             && String.length name > 0
             && name.[0] >= 'A'
             && name.[0] <= 'Z' ->
          advance p;
          let rec fields acc =
            if peek p = Token.RBRACE then List.rev acc
            else begin
              let f = expect_ident p in
              let value =
                if accept p Token.COLON then parse_expr p
                else mk_expr ~span:(span_from p start) (EVar f)
              in
              let acc = (f, value) :: acc in
              if accept p Token.COMMA then fields acc else List.rev acc
            end
          in
          let fs = fields [] in
          expect p Token.RBRACE;
          mk (EStruct (name, fs))
      | _ -> mk (EVar name))
  | t -> err start (Printf.sprintf "expected an expression, found %s" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Statements and blocks                                               *)
(* ------------------------------------------------------------------ *)

and parse_block p : block =
  let start = peek_pos p in
  expect p Token.LBRACE;
  let rec go stmts =
    if peek p = Token.RBRACE then begin
      advance p;
      { stmts = List.rev stmts; tail = None; b_span = span_from p start }
    end
    else
      match parse_stmt_or_tail p with
      | `Stmt s -> go (s :: stmts)
      | `Tail e ->
          expect p Token.RBRACE;
          { stmts = List.rev stmts; tail = Some e; b_span = span_from p start }
  in
  go []

and parse_stmt_or_tail p : [ `Stmt of stmt | `Tail of expr ] =
  let start = peek_pos p in
  match peek p with
  | Token.KW_LET ->
      advance p;
      let lmut = accept p Token.KW_MUT in
      let lname = expect_ident p in
      let lty = if accept p Token.COLON then Some (parse_ty p) else None in
      expect p Token.EQ;
      let linit = parse_expr p in
      expect p Token.SEMI;
      `Stmt (SLet { lname; lmut; lty; linit; lspan = span_from p start })
  | Token.KW_WHILE ->
      advance p;
      let saved = p.no_struct in
      p.no_struct <- true;
      let cond = parse_expr p in
      p.no_struct <- saved;
      let body = parse_block p in
      `Stmt (SWhile (cond, body, span_from p start))
  | Token.KW_RETURN ->
      advance p;
      if accept p Token.SEMI then `Stmt (SReturn (None, span_from p start))
      else begin
        let e = parse_expr p in
        expect p Token.SEMI;
        `Stmt (SReturn (Some e, span_from p start))
      end
  | Token.KW_BREAK ->
      advance p;
      expect p Token.SEMI;
      `Stmt (SBreak (span_from p start))
  | Token.KW_IF ->
      (* In statement position a block-like expression terminates the
         statement (as in Rust): `if c { .. } *p = e;` is an if
         statement followed by an assignment, not a multiplication. *)
      let e = parse_primary p in
      if peek p = Token.RBRACE then `Tail e
      else begin
        ignore (accept p Token.SEMI);
        `Stmt (SExpr e)
      end
  | _ -> (
      let e = parse_expr p in
      match peek p with
      | Token.EQ ->
          advance p;
          let rhs = parse_expr p in
          expect p Token.SEMI;
          `Stmt (SAssign (e, None, rhs, span_from p start))
      | Token.PLUSEQ | Token.MINUSEQ | Token.STAREQ | Token.SLASHEQ ->
          let op =
            match peek p with
            | Token.PLUSEQ -> Add
            | Token.MINUSEQ -> Sub
            | Token.STAREQ -> Mul
            | _ -> Div
          in
          advance p;
          let rhs = parse_expr p in
          expect p Token.SEMI;
          `Stmt (SAssign (e, Some op, rhs, span_from p start))
      | Token.SEMI ->
          advance p;
          (match e.e with
          | ECall ("body_invariant!", [ inv ]) ->
              `Stmt (SInvariant (inv, span_from p start))
          | _ -> `Stmt (SExpr e))
      | Token.RBRACE -> `Tail e
      | _ ->
          (* block-like expressions (if/while/blocks) need no semicolon *)
          (match e.e with
          | EIf _ | EBlock _ -> `Stmt (SExpr e)
          | _ ->
              err (peek_pos p)
                (Printf.sprintf "expected ';' or '}', found %s"
                   (Token.to_string (peek p)))))

(* ------------------------------------------------------------------ *)
(* Refined types (spec contexts)                                       *)
(* ------------------------------------------------------------------ *)

(** Parse an index inside [<...>]: either a binder [@n] or a refinement
    expression (with [>] reserved as the closing bracket). *)
let parse_index p : index =
  if accept p Token.AT then IxBinder (expect_ident p)
  else begin
    let saved = p.no_gt in
    p.no_gt <- true;
    let e = parse_expr p in
    p.no_gt <- saved;
    IxExpr e
  end

let rec parse_rty p : rty =
  match peek p with
  | Token.AMP ->
      advance p;
      let kind =
        if accept p Token.KW_MUT then RMut
        else if peek p = Token.IDENT "strg" then begin
          advance p;
          RStrg
        end
        else RShr
      in
      RRef (kind, parse_rty p)
  | Token.LPAREN ->
      advance p;
      expect p Token.RPAREN;
      RBase (RBUnit, [])
  | Token.IDENT _ -> parse_rty_base p
  | t -> err (peek_pos p) (Printf.sprintf "expected a refined type, found %s" (Token.to_string t))

and parse_rty_base p : rty =
  let name = expect_ident p in
  let base, indexes =
    if String.equal name "RVec" then begin
      expect p Token.LT;
      let saved = p.no_gt in
      p.no_gt <- true;
      let elt = parse_rty p in
      let idxs = if accept p Token.COMMA then parse_index_list p else [] in
      p.no_gt <- saved;
      expect p Token.GT;
      (RBVec elt, idxs)
    end
    else
      let base =
        match int_kind_of_name name with
        | Some k -> RBInt k
        | None -> (
            match name with
            | "f32" | "f64" -> RBFloat
            | "bool" -> RBBool
            | _ -> if String.equal name "T" then RBParam name else RBStruct name)
      in
      let idxs =
        if peek p = Token.LT then begin
          advance p;
          let saved = p.no_gt in
          p.no_gt <- true;
          let idxs = parse_index_list p in
          p.no_gt <- saved;
          expect p Token.GT;
          idxs
        end
        else []
      in
      (base, idxs)
  in
  (* optional existential tail: B{v: p} *)
  if peek p = Token.LBRACE then begin
    advance p;
    let v = expect_ident p in
    expect p Token.COLON;
    let pred = parse_expr p in
    expect p Token.RBRACE;
    if indexes <> [] then
      err (peek_pos p) "a type cannot have both indices and an existential refinement";
    RExists (v, base, pred)
  end
  else RBase (base, indexes)

and parse_index_list p : index list =
  let rec go acc =
    let ix = parse_index p in
    if accept p Token.COMMA then go (ix :: acc) else List.rev (ix :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Attribute contents                                                  *)
(* ------------------------------------------------------------------ *)

(** Parse the contents of [#[lr::sig(...)]]. Accepts both
    [fn(τ,..) -> τ ...] and the bare [(τ,..) -> τ ...] form used in
    fig. 4 of the paper. *)
let parse_fn_spec_inner p : fn_spec =
  let _ = accept p Token.KW_FN in
  expect p Token.LPAREN;
  let args =
    if peek p = Token.RPAREN then []
    else
      let rec go acc =
        (* allow optional `name:` prefixes for readability *)
        (match (peek p, peek2 p) with
        | Token.IDENT _, Token.COLON ->
            (* `x: τ` — consume the name and colon *)
            let _ = expect_ident p in
            expect p Token.COLON
        | _ -> ());
        let t = parse_rty p in
        if accept p Token.COMMA then go (t :: acc) else List.rev (t :: acc)
      in
      go []
  in
  expect p Token.RPAREN;
  let ret =
    if accept p Token.ARROW then parse_rty p else RBase (RBUnit, [])
  in
  let requires = ref [] in
  let ensures = ref [] in
  let rec clauses () =
    match peek p with
    | Token.KW_REQUIRES ->
        advance p;
        requires := parse_expr p :: !requires;
        clauses ()
    | Token.KW_ENSURES ->
        advance p;
        let rec ens () =
          let deref = accept p Token.STAR in
          ignore deref;
          let name = if peek p = Token.KW_SELF then (advance p; "self") else expect_ident p in
          expect p Token.COLON;
          let t = parse_rty p in
          ensures := (name, t) :: !ensures;
          if accept p Token.COMMA then ens ()
        in
        ens ();
        clauses ()
    | _ -> ()
  in
  clauses ();
  {
    fs_args = args;
    fs_ret = ret;
    fs_requires = List.rev !requires;
    fs_ensures = List.rev !ensures;
  }

type attr =
  | ASig of fn_spec
  | ARefinedBy of (string * Flux_smt.Sort.t) list
  | AField of rty
  | AInvariant of rexpr
  | ARequires of rexpr
  | AEnsures of rexpr
  | ATrusted
  | APure

let sort_of_name p name =
  match name with
  | "int" -> Flux_smt.Sort.Int
  | "bool" -> Flux_smt.Sort.Bool
  | "loc" -> Flux_smt.Sort.Loc
  | "real" -> Flux_smt.Sort.Real
  | _ -> err (peek_pos p) (Printf.sprintf "unknown sort %s" name)

(** Parse one attribute's raw text. Returns [None] for attributes we do
    not interpret (e.g. [derive(..)]). *)
let parse_attr (raw : string) : attr option =
  let p = of_string raw in
  match peek p with
  | Token.IDENT ("lr" | "flux") -> (
      advance p;
      expect p Token.COLONCOLON;
      let which = expect_ident p in
      match which with
      | "sig" ->
          expect p Token.LPAREN;
          let s = parse_fn_spec_inner p in
          expect p Token.RPAREN;
          Some (ASig s)
      | "refined_by" ->
          expect p Token.LPAREN;
          let rec go acc =
            if peek p = Token.RPAREN then List.rev acc
            else begin
              let x = expect_ident p in
              expect p Token.COLON;
              let s = sort_of_name p (expect_ident p) in
              let acc = (x, s) :: acc in
              if accept p Token.COMMA then go acc else List.rev acc
            end
          in
          let binds = go [] in
          expect p Token.RPAREN;
          Some (ARefinedBy binds)
      | "field" ->
          expect p Token.LPAREN;
          let t = parse_rty p in
          expect p Token.RPAREN;
          Some (AField t)
      | "invariant" ->
          expect p Token.LPAREN;
          let e = parse_expr p in
          expect p Token.RPAREN;
          Some (AInvariant e)
      | "trusted" -> Some ATrusted
      | _ -> None)
  | Token.KW_REQUIRES ->
      advance p;
      expect p Token.LPAREN;
      let e = parse_expr p in
      expect p Token.RPAREN;
      Some (ARequires e)
  | Token.KW_ENSURES ->
      advance p;
      expect p Token.LPAREN;
      let e = parse_expr p in
      expect p Token.RPAREN;
      Some (AEnsures e)
  | Token.IDENT "trusted" -> Some ATrusted
  | Token.IDENT "pure" -> Some APure
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Items                                                               *)
(* ------------------------------------------------------------------ *)

let parse_fn_item p ~(attrs : attr list) ~(prefix : string option) : fn_def =
  let start = peek_pos p in
  expect p Token.KW_FN;
  let name = expect_ident p in
  let name =
    match prefix with Some s -> s ^ "::" ^ name | None -> name
  in
  expect p Token.LPAREN;
  let params =
    if peek p = Token.RPAREN then []
    else
      let rec go acc =
        let param =
          match peek p with
          | Token.AMP ->
              (* receiver: &self or &mut self *)
              advance p;
              let m = if accept p Token.KW_MUT then Mut else Imm in
              expect p Token.KW_SELF;
              let self_ty =
                match prefix with
                | Some s -> TStruct s
                | None -> err start "self parameter outside impl block"
              in
              ("self", TRef (m, self_ty))
          | Token.KW_SELF ->
              advance p;
              let self_ty =
                match prefix with
                | Some s -> TStruct s
                | None -> err start "self parameter outside impl block"
              in
              ("self", self_ty)
          | _ ->
              let _ = accept p Token.KW_MUT in
              let x = expect_ident p in
              expect p Token.COLON;
              (x, parse_ty p)
        in
        if accept p Token.COMMA then go (param :: acc)
        else List.rev (param :: acc)
      in
      go []
  in
  expect p Token.RPAREN;
  let ret = if accept p Token.ARROW then parse_ty p else TUnit in
  let trusted = List.exists (fun a -> a = ATrusted) attrs in
  let body =
    if peek p = Token.SEMI then begin
      advance p;
      None
    end
    else Some (parse_block p)
  in
  let fn_sig =
    List.find_map (function ASig s -> Some s | _ -> None) attrs
  in
  let contract =
    {
      c_requires =
        List.filter_map (function ARequires e -> Some e | _ -> None) attrs;
      c_ensures =
        List.filter_map (function AEnsures e -> Some e | _ -> None) attrs;
    }
  in
  {
    fn_name = name;
    fn_params = params;
    fn_ret = ret;
    fn_body = body;
    fn_sig;
    fn_contract = contract;
    fn_trusted = trusted;
    fn_span = span_from p start;
  }

let parse_struct_item p ~(attrs : attr list) : struct_def =
  let start = peek_pos p in
  expect p Token.KW_STRUCT;
  let name = expect_ident p in
  expect p Token.LBRACE;
  let rec fields acc =
    if peek p = Token.RBRACE then List.rev acc
    else begin
      let fattrs =
        let rec go acc =
          match peek p with
          | Token.ATTR raw ->
              advance p;
              go (match parse_attr raw with Some a -> a :: acc | None -> acc)
          | _ -> List.rev acc
        in
        go []
      in
      let _ = accept p Token.KW_PUB in
      let fname = expect_ident p in
      expect p Token.COLON;
      let fty = parse_ty p in
      let frty =
        List.find_map (function AField t -> Some t | _ -> None) fattrs
      in
      let acc = { fd_name = fname; fd_ty = fty; fd_rty = frty } :: acc in
      if accept p Token.COMMA then fields acc else List.rev acc
    end
  in
  let fs = fields [] in
  expect p Token.RBRACE;
  {
    st_name = name;
    st_refined_by =
      (match List.find_map (function ARefinedBy b -> Some b | _ -> None) attrs with
      | Some b -> b
      | None -> []);
    st_fields = fs;
    st_invariant =
      List.find_map (function AInvariant e -> Some e | _ -> None) attrs;
    st_span = span_from p start;
  }

let parse_attrs p : attr list =
  let rec go acc =
    match peek p with
    | Token.ATTR raw ->
        advance p;
        go (match parse_attr raw with Some a -> a :: acc | None -> acc)
    | _ -> List.rev acc
  in
  go []

let rec parse_items p acc : item list =
  match peek p with
  | Token.EOF -> List.rev acc
  | _ -> (
      let attrs = parse_attrs p in
      let _ = accept p Token.KW_PUB in
      match peek p with
      | Token.KW_FN ->
          let f = parse_fn_item p ~attrs ~prefix:None in
          parse_items p (IFn f :: acc)
      | Token.KW_STRUCT ->
          let s = parse_struct_item p ~attrs in
          parse_items p (IStruct s :: acc)
      | Token.KW_IMPL ->
          advance p;
          let target = expect_ident p in
          expect p Token.LBRACE;
          let rec methods acc =
            if peek p = Token.RBRACE then begin
              advance p;
              acc
            end
            else begin
              let mattrs = parse_attrs p in
              let _ = accept p Token.KW_PUB in
              let f = parse_fn_item p ~attrs:mattrs ~prefix:(Some target) in
              methods (IFn f :: acc)
            end
          in
          parse_items p (methods acc)
      | Token.EOF -> List.rev acc
      | t ->
          err (peek_pos p)
            (Printf.sprintf "expected an item, found %s" (Token.to_string t)))

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let parse_program (src : string) : program =
  let p = of_string src in
  parse_items p []

let parse_expression (src : string) : expr =
  let p = of_string src in
  let e = parse_expr p in
  expect p Token.EOF;
  e

let parse_rtype (src : string) : rty =
  let p = of_string src in
  let t = parse_rty p in
  expect p Token.EOF;
  t

let parse_fn_spec (src : string) : fn_spec =
  let p = of_string src in
  let s = parse_fn_spec_inner p in
  expect p Token.EOF;
  s
