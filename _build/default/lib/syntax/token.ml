(** Tokens of the Rust subset and its specification sub-language. *)

type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | ATTR of string  (** raw contents of a [#[...]] attribute *)
  | KW_FN
  | KW_LET
  | KW_MUT
  | KW_WHILE
  | KW_IF
  | KW_ELSE
  | KW_RETURN
  | KW_BREAK
  | KW_TRUE
  | KW_FALSE
  | KW_STRUCT
  | KW_IMPL
  | KW_PUB
  | KW_SELF
  | KW_REQUIRES
  | KW_ENSURES
  | KW_FORALL
  | KW_OLD
  | KW_RESULT
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LT
  | GT
  | LE
  | GE
  | EQEQ
  | NE
  | EQ
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | AMP
  | AMPAMP
  | BARBAR
  | BAR
  | BANG
  | COMMA
  | SEMI
  | COLON
  | COLONCOLON
  | DOT
  | ARROW  (** -> *)
  | FATARROW  (** => *)
  | IMPLIES  (** ==> *)
  | AT
  | EOF

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT f -> Printf.sprintf "float %g" f
  | ATTR _ -> "attribute"
  | KW_FN -> "'fn'"
  | KW_LET -> "'let'"
  | KW_MUT -> "'mut'"
  | KW_WHILE -> "'while'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_RETURN -> "'return'"
  | KW_BREAK -> "'break'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | KW_STRUCT -> "'struct'"
  | KW_IMPL -> "'impl'"
  | KW_PUB -> "'pub'"
  | KW_SELF -> "'self'"
  | KW_REQUIRES -> "'requires'"
  | KW_ENSURES -> "'ensures'"
  | KW_FORALL -> "'forall'"
  | KW_OLD -> "'old'"
  | KW_RESULT -> "'result'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LT -> "'<'"
  | GT -> "'>'"
  | LE -> "'<='"
  | GE -> "'>='"
  | EQEQ -> "'=='"
  | NE -> "'!='"
  | EQ -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | PLUSEQ -> "'+='"
  | MINUSEQ -> "'-='"
  | STAREQ -> "'*='"
  | SLASHEQ -> "'/='"
  | AMP -> "'&'"
  | AMPAMP -> "'&&'"
  | BARBAR -> "'||'"
  | BAR -> "'|'"
  | BANG -> "'!'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | COLONCOLON -> "'::'"
  | DOT -> "'.'"
  | ARROW -> "'->'"
  | FATARROW -> "'=>'"
  | IMPLIES -> "'==>'"
  | AT -> "'@'"
  | EOF -> "end of input"
