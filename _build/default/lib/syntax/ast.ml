(** Surface AST for the Rust subset checked by Flux.

    The subset covers everything the paper's evaluation exercises:
    functions with [#[lr::sig(...)]] refinement signatures, structs with
    [#[lr::refined_by]]/[#[lr::field]] attributes and [impl] blocks,
    `let`/`while`/`if`/assignment statements, integer/float/boolean
    expressions, calls, method calls (incl. the built-in [RVec] API) and
    reference creation/dereference. Prusti-style specifications
    ([#[requires]], [#[ensures]], [body_invariant!]) share the same
    expression grammar extended with [forall], [old] and [==>]. *)

(* ------------------------------------------------------------------ *)
(* Positions                                                           *)
(* ------------------------------------------------------------------ *)

type pos = { line : int; col : int }
type span = { sp_start : pos; sp_end : pos }

let dummy_pos = { line = 0; col = 0 }
let dummy_span = { sp_start = dummy_pos; sp_end = dummy_pos }

let pp_span fmt s =
  if s.sp_start.line = 0 then Format.pp_print_string fmt "<builtin>"
  else Format.fprintf fmt "%d:%d" s.sp_start.line s.sp_start.col

(* ------------------------------------------------------------------ *)
(* Unrefined (plain Rust) types                                        *)
(* ------------------------------------------------------------------ *)

type int_kind = I32 | I64 | Usize | Isize

type mutability = Imm | Mut

type ty =
  | TInt of int_kind
  | TFloat  (** f32 *)
  | TBool
  | TUnit
  | TVec of ty  (** RVec<ty> *)
  | TStruct of string
  | TRef of mutability * ty
  | TParam of string  (** generic parameter, used in library signatures *)
  | TInfer of int  (** unification variable, local type inference only *)

let rec ty_equal a b =
  match (a, b) with
  | TInt k1, TInt k2 -> k1 = k2
  | TFloat, TFloat | TBool, TBool | TUnit, TUnit -> true
  | TVec t1, TVec t2 -> ty_equal t1 t2
  | TStruct s1, TStruct s2 -> String.equal s1 s2
  | TRef (m1, t1), TRef (m2, t2) -> m1 = m2 && ty_equal t1 t2
  | TParam x, TParam y -> String.equal x y
  | TInfer i, TInfer j -> i = j
  | _ -> false

let int_kind_str = function
  | I32 -> "i32"
  | I64 -> "i64"
  | Usize -> "usize"
  | Isize -> "isize"

let rec pp_ty fmt = function
  | TInt k -> Format.pp_print_string fmt (int_kind_str k)
  | TFloat -> Format.pp_print_string fmt "f32"
  | TBool -> Format.pp_print_string fmt "bool"
  | TUnit -> Format.pp_print_string fmt "()"
  | TVec t -> Format.fprintf fmt "RVec<%a>" pp_ty t
  | TStruct s -> Format.pp_print_string fmt s
  | TRef (Imm, t) -> Format.fprintf fmt "&%a" pp_ty t
  | TRef (Mut, t) -> Format.fprintf fmt "&mut %a" pp_ty t
  | TParam x -> Format.pp_print_string fmt x
  | TInfer i -> Format.fprintf fmt "_%d" i

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Lt
  | Le
  | Gt
  | Ge
  | EqOp
  | NeOp
  | AndOp
  | OrOp
  | ImpOp  (** [==>], spec contexts only *)

type unop = Not | NegOp

type expr = {
  e : expr_kind;
  e_span : span;
  mutable e_ty : ty option;  (** filled in by the unrefined typechecker *)
}

and expr_kind =
  | EInt of int
  | EFloat of float
  | EBool of bool
  | EUnit
  | EVar of string
  | EBin of binop * expr * expr
  | EUn of unop * expr
  | ECall of string * expr list  (** includes path calls like [RVec::new] *)
  | EMethod of expr * string * expr list
  | EField of expr * string
  | EStruct of string * (string * expr) list
  | ERef of mutability * expr
  | EDeref of expr
  | EIf of expr * block * block option  (** if-expression *)
  | EBlock of block
  (* --- specification-only forms --- *)
  | EForall of (string * ty) list * expr  (** forall(|x: usize| p) *)
  | EOld of expr  (** old(e) in Prusti postconditions *)
  | EResult  (** [result] in Prusti postconditions *)

and block = { stmts : stmt list; tail : expr option; b_span : span }

and stmt =
  | SLet of { lname : string; lmut : bool; lty : ty option; linit : expr; lspan : span }
  | SAssign of expr * binop option * expr * span
      (** place, optional compound op (for [+=] etc.), rhs *)
  | SExpr of expr
  | SWhile of expr * block * span
  | SInvariant of expr * span
      (** [body_invariant!(p)] — a Prusti loop-invariant annotation; only
          meaningful at the head of a [while] body *)
  | SReturn of expr option * span
  | SBreak of span

let mk_expr ?(span = dummy_span) e = { e; e_span = span; e_ty = None }

let expr_span e = e.e_span

(* ------------------------------------------------------------------ *)
(* Refinement specification types                                      *)
(* ------------------------------------------------------------------ *)

(** Refinement expressions: parsed form of index/predicate expressions
    in [lr::sig] attributes and Prusti contracts. They reuse [expr];
    variables refer to refinement parameters and the value binder. *)
type rexpr = expr

(** An index position in a refined base type. *)
type index =
  | IxExpr of rexpr  (** e.g. [i32<n+1>] *)
  | IxBinder of string  (** [@n]: binds a signature-scoped parameter *)

(** Refined surface types of the spec language. *)
type rty =
  | RBase of rbase * index list
      (** [B<ix,..>]; an empty index list means unrefined (≡ ∃v. true) *)
  | RExists of string * rbase * rexpr  (** [B{v: p}] *)
  | RRef of refkind * rty
  | RFn of fn_spec  (** only for nested positions; unused at present *)

and rbase =
  | RBInt of int_kind
  | RBFloat
  | RBBool
  | RBUnit
  | RBVec of rty  (** RVec<τ, ·> element type *)
  | RBStruct of string
  | RBParam of string

and refkind = RShr | RMut | RStrg

and fn_spec = {
  fs_args : rty list;  (** positional argument types *)
  fs_ret : rty;
  fs_requires : rexpr list;
  fs_ensures : (string * rty) list;
      (** [ensures *x: τ] — updated type of strong-reference argument [x];
          the name refers to the surface parameter at the same position *)
}

(** Prusti-style contracts attached to a function. *)
type contract = {
  c_requires : rexpr list;
  c_ensures : rexpr list;
}

let empty_contract = { c_requires = []; c_ensures = [] }

(* ------------------------------------------------------------------ *)
(* Items                                                               *)
(* ------------------------------------------------------------------ *)

type fn_def = {
  fn_name : string;  (** mangled with the impl target, e.g. "RMat::new" *)
  fn_params : (string * ty) list;
  fn_ret : ty;
  fn_body : block option;  (** [None] for trusted/extern declarations *)
  fn_sig : fn_spec option;  (** Flux signature from [#[lr::sig(...)]] *)
  fn_contract : contract;  (** Prusti contract, if any *)
  fn_trusted : bool;
  fn_span : span;
}

type field_def = {
  fd_name : string;
  fd_ty : ty;
  fd_rty : rty option;  (** from [#[lr::field(...)]] *)
}

type struct_def = {
  st_name : string;
  st_refined_by : (string * Flux_smt.Sort.t) list;
  st_fields : field_def list;
  st_invariant : rexpr option;  (** an optional index invariant *)
  st_span : span;
}

type item = IFn of fn_def | IStruct of struct_def

type program = item list

let program_fns (p : program) =
  List.filter_map (function IFn f -> Some f | _ -> None) p

let program_structs (p : program) =
  List.filter_map (function IStruct s -> Some s | _ -> None) p

let find_fn (p : program) name =
  List.find_opt (fun f -> String.equal f.fn_name name) (program_fns p)

let find_struct (p : program) name =
  List.find_opt (fun s -> String.equal s.st_name name) (program_structs p)

(* ------------------------------------------------------------------ *)
(* Pretty printing (for diagnostics and golden tests)                  *)
(* ------------------------------------------------------------------ *)

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | EqOp -> "=="
  | NeOp -> "!="
  | AndOp -> "&&"
  | OrOp -> "||"
  | ImpOp -> "==>"

let rec pp_expr fmt e =
  match e.e with
  | EInt n -> Format.pp_print_int fmt n
  | EFloat x -> Format.fprintf fmt "%g" x
  | EBool b -> Format.pp_print_bool fmt b
  | EUnit -> Format.pp_print_string fmt "()"
  | EVar x -> Format.pp_print_string fmt x
  | EBin (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | EUn (Not, a) -> Format.fprintf fmt "!%a" pp_expr a
  | EUn (NegOp, a) -> Format.fprintf fmt "-%a" pp_expr a
  | ECall (f, args) -> Format.fprintf fmt "%s(%a)" f pp_args args
  | EMethod (r, m, args) ->
      Format.fprintf fmt "%a.%s(%a)" pp_expr r m pp_args args
  | EField (r, f) -> Format.fprintf fmt "%a.%s" pp_expr r f
  | EStruct (s, fields) ->
      Format.fprintf fmt "%s { %a }" s
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (fun fmt (f, e) -> Format.fprintf fmt "%s: %a" f pp_expr e))
        fields
  | ERef (Imm, e) -> Format.fprintf fmt "&%a" pp_expr e
  | ERef (Mut, e) -> Format.fprintf fmt "&mut %a" pp_expr e
  | EDeref e -> Format.fprintf fmt "*%a" pp_expr e
  | EIf (c, t, None) -> Format.fprintf fmt "if %a %a" pp_expr c pp_block t
  | EIf (c, t, Some f) ->
      Format.fprintf fmt "if %a %a else %a" pp_expr c pp_block t pp_block f
  | EBlock b -> pp_block fmt b
  | EForall (params, body) ->
      Format.fprintf fmt "forall(|%a| %a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (fun fmt (x, t) -> Format.fprintf fmt "%s: %a" x pp_ty t))
        params pp_expr body
  | EOld e -> Format.fprintf fmt "old(%a)" pp_expr e
  | EResult -> Format.pp_print_string fmt "result"

and pp_args fmt args =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_expr fmt args

and pp_block fmt b =
  Format.fprintf fmt "{@[<v 2>@ %a%a@]@ }"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt)
    b.stmts
    (fun fmt -> function
      | None -> ()
      | Some e -> Format.fprintf fmt "@ %a" pp_expr e)
    b.tail

and pp_stmt fmt = function
  | SLet { lname; lmut; lty; linit; _ } ->
      Format.fprintf fmt "let %s%s%a = %a;"
        (if lmut then "mut " else "")
        lname
        (fun fmt -> function
          | None -> ()
          | Some t -> Format.fprintf fmt ": %a" pp_ty t)
        lty pp_expr linit
  | SAssign (p, None, e, _) -> Format.fprintf fmt "%a = %a;" pp_expr p pp_expr e
  | SAssign (p, Some op, e, _) ->
      Format.fprintf fmt "%a %s= %a;" pp_expr p (binop_str op) pp_expr e
  | SExpr e -> Format.fprintf fmt "%a;" pp_expr e
  | SWhile (c, b, _) -> Format.fprintf fmt "while %a %a" pp_expr c pp_block b
  | SInvariant (e, _) -> Format.fprintf fmt "body_invariant!(%a);" pp_expr e
  | SReturn (None, _) -> Format.pp_print_string fmt "return;"
  | SReturn (Some e, _) -> Format.fprintf fmt "return %a;" pp_expr e
  | SBreak _ -> Format.pp_print_string fmt "break;"

let rec pp_rty fmt = function
  | RBase (b, []) -> pp_rbase fmt b
  | RBase (b, ixs) ->
      Format.fprintf fmt "%a<%a>" pp_rbase b
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_index)
        ixs
  | RExists (v, b, p) ->
      Format.fprintf fmt "%a{%s: %a}" pp_rbase b v pp_expr p
  | RRef (RShr, t) -> Format.fprintf fmt "&%a" pp_rty t
  | RRef (RMut, t) -> Format.fprintf fmt "&mut %a" pp_rty t
  | RRef (RStrg, t) -> Format.fprintf fmt "&strg %a" pp_rty t
  | RFn _ -> Format.pp_print_string fmt "<fn>"

and pp_rbase fmt = function
  | RBInt k -> Format.pp_print_string fmt (int_kind_str k)
  | RBFloat -> Format.pp_print_string fmt "f32"
  | RBBool -> Format.pp_print_string fmt "bool"
  | RBUnit -> Format.pp_print_string fmt "()"
  | RBVec t -> Format.fprintf fmt "RVec<%a>" pp_rty t
  | RBStruct s -> Format.pp_print_string fmt s
  | RBParam x -> Format.pp_print_string fmt x

and pp_index fmt = function
  | IxExpr e -> pp_expr fmt e
  | IxBinder x -> Format.fprintf fmt "@%s" x
