(** Hand-written lexer for the Rust subset.

    Attributes ([#[...]], with balanced inner brackets) are captured as
    raw text and re-lexed by the specification parser; this avoids
    committing at lex time to an interpretation of [<]/[>], which are
    both comparison operators and generic-argument delimiters in the
    spec language. *)

open Ast

exception Error of string * pos

type t = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let make src = { src; off = 0; line = 1; col = 1 }

let pos lx = { line = lx.line; col = lx.col }

let peek_char lx =
  if lx.off < String.length lx.src then Some lx.src.[lx.off] else None

let peek_char2 lx =
  if lx.off + 1 < String.length lx.src then Some lx.src.[lx.off + 1] else None

let peek_char3 lx =
  if lx.off + 2 < String.length lx.src then Some lx.src.[lx.off + 2] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.off <- lx.off + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_trivia lx
  | Some '/' when peek_char2 lx = Some '/' ->
      let rec to_eol () =
        match peek_char lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_trivia lx
  | Some '/' when peek_char2 lx = Some '*' ->
      advance lx;
      advance lx;
      let rec to_close () =
        match (peek_char lx, peek_char2 lx) with
        | Some '*', Some '/' ->
            advance lx;
            advance lx
        | None, _ -> raise (Error ("unterminated block comment", pos lx))
        | _ ->
            advance lx;
            to_close ()
      in
      to_close ();
      skip_trivia lx
  | _ -> ()

let keyword_of = function
  | "fn" -> Some Token.KW_FN
  | "let" -> Some Token.KW_LET
  | "mut" -> Some Token.KW_MUT
  | "while" -> Some Token.KW_WHILE
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "return" -> Some Token.KW_RETURN
  | "break" -> Some Token.KW_BREAK
  | "true" -> Some Token.KW_TRUE
  | "false" -> Some Token.KW_FALSE
  | "struct" -> Some Token.KW_STRUCT
  | "impl" -> Some Token.KW_IMPL
  | "pub" -> Some Token.KW_PUB
  | "self" -> Some Token.KW_SELF
  | "requires" -> Some Token.KW_REQUIRES
  | "ensures" -> Some Token.KW_ENSURES
  | "forall" -> Some Token.KW_FORALL
  | "old" -> Some Token.KW_OLD
  | "result" -> Some Token.KW_RESULT
  | _ -> None

let lex_ident lx =
  let start = lx.off in
  while
    match peek_char lx with Some c -> is_ident_char c | None -> false
  do
    advance lx
  done;
  String.sub lx.src start (lx.off - start)

let lex_number lx =
  let start = lx.off in
  while match peek_char lx with Some c -> is_digit c | None -> false do
    advance lx
  done;
  (* float literal: digits '.' digits, but not '..' or method call '.' *)
  let is_float =
    peek_char lx = Some '.'
    && (match peek_char2 lx with Some c -> is_digit c | None -> false)
  in
  if is_float then begin
    advance lx;
    while match peek_char lx with Some c -> is_digit c | None -> false do
      advance lx
    done;
    Token.FLOAT (float_of_string (String.sub lx.src start (lx.off - start)))
  end
  else begin
    let text = String.sub lx.src start (lx.off - start) in
    (* optional integer suffix: 1usize, 0i32, ... *)
    if match peek_char lx with Some c -> is_ident_start c | None -> false then begin
      let _suffix = lex_ident lx in
      ()
    end;
    Token.INT (int_of_string text)
  end

(** Capture the raw contents of [#[...]] with balanced brackets. *)
let lex_attr lx =
  (* at call, current chars are '#' '[' *)
  advance lx;
  advance lx;
  let start = lx.off in
  let depth = ref 1 in
  while !depth > 0 do
    match peek_char lx with
    | Some '[' ->
        incr depth;
        advance lx
    | Some ']' ->
        decr depth;
        if !depth > 0 then advance lx
    | Some _ -> advance lx
    | None -> raise (Error ("unterminated attribute", pos lx))
  done;
  let text = String.sub lx.src start (lx.off - start) in
  advance lx (* consume final ']' *);
  Token.ATTR text

let next_token lx : Token.t * pos =
  skip_trivia lx;
  let p = pos lx in
  let tok =
    match peek_char lx with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_number lx
    | Some c when is_ident_start c -> (
        let id = lex_ident lx in
        match keyword_of id with Some kw -> kw | None -> Token.IDENT id)
    | Some '#' when peek_char2 lx = Some '[' -> lex_attr lx
    | Some c ->
        let two tok =
          advance lx;
          advance lx;
          tok
        in
        let one tok =
          advance lx;
          tok
        in
        let c2 = peek_char2 lx in
        (match (c, c2) with
        | '=', Some '=' when peek_char3 lx = Some '>' ->
            advance lx;
            two Token.IMPLIES
        | '=', Some '=' -> two Token.EQEQ
        | '=', Some '>' -> two Token.FATARROW
        | '=', _ -> one Token.EQ
        | '<', Some '=' -> two Token.LE
        | '<', _ -> one Token.LT
        | '>', Some '=' -> two Token.GE
        | '>', _ -> one Token.GT
        | '!', Some '=' -> two Token.NE
        | '!', _ -> one Token.BANG
        | '+', Some '=' -> two Token.PLUSEQ
        | '+', _ -> one Token.PLUS
        | '-', Some '>' -> two Token.ARROW
        | '-', Some '=' -> two Token.MINUSEQ
        | '-', _ -> one Token.MINUS
        | '*', Some '=' -> two Token.STAREQ
        | '*', _ -> one Token.STAR
        | '/', Some '=' -> two Token.SLASHEQ
        | '/', _ -> one Token.SLASH
        | '%', _ -> one Token.PERCENT
        | '&', Some '&' -> two Token.AMPAMP
        | '&', _ -> one Token.AMP
        | '|', Some '|' -> two Token.BARBAR
        | '|', _ -> one Token.BAR
        | '(', _ -> one Token.LPAREN
        | ')', _ -> one Token.RPAREN
        | '{', _ -> one Token.LBRACE
        | '}', _ -> one Token.RBRACE
        | '[', _ -> one Token.LBRACKET
        | ']', _ -> one Token.RBRACKET
        | ',', _ -> one Token.COMMA
        | ';', _ -> one Token.SEMI
        | ':', Some ':' -> two Token.COLONCOLON
        | ':', _ -> one Token.COLON
        | '.', _ -> one Token.DOT
        | '@', _ -> one Token.AT
        | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, p)))
  in
  (tok, p)

(** Lex a whole string into a token array (with positions). *)
let tokenize (src : string) : (Token.t * pos) array =
  let lx = make src in
  let rec go acc =
    let tok, p = next_token lx in
    if tok = Token.EOF then List.rev ((tok, p) :: acc)
    else go ((tok, p) :: acc)
  in
  Array.of_list (go [])
