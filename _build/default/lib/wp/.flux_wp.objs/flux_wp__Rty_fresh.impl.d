lib/wp/rty_fresh.ml: Printf
