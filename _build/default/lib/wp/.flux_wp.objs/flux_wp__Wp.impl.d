lib/wp/wp.ml: Array Flux_mir Flux_smt Flux_syntax Format Hashtbl Int List Map Printf Rty_fresh Solver Sort String Sys Term Unix
