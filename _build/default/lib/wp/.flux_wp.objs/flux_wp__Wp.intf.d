lib/wp/wp.mli: Flux_mir Flux_syntax Format
