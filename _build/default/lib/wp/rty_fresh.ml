let counter = ref 0
let fresh prefix = incr counter; Printf.sprintf "%s!w%d" prefix !counter
let reset () = counter := 0
