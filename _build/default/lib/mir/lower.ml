(** Lowering from the typed surface AST to MIR.

    This reproduces the relevant parts of rustc's HIR→MIR lowering:
    expressions are flattened to places/operands/rvalues with explicit
    temporaries, calls become block terminators, `&&`/`||` and
    if-expressions become control flow (so that short-circuiting is
    real — bounds-safety of `i < v.len() && v.get(i) > x` depends on
    it), and method calls desugar to function calls whose receiver is an
    explicit reference (`vec.push(x)` becomes
    `RVec::push(&mut vec, x)`, as in §2.2 of the paper). *)

open Flux_syntax
open Ir

exception Error of string * Ast.span

let err span msg = raise (Error (msg, span))

type builder = {
  prog : Ast.program;
  fn : Ast.fn_def;
  mutable locals : local_decl list;  (** reversed *)
  mutable nlocals : int;
  names : (string, local) Hashtbl.t;
  blocks : (int, block) Hashtbl.t;
  mutable nblocks : int;
  mutable cur : int;
  mutable loop_exits : int list;
}

let new_local b name ty kind =
  let id = b.nlocals in
  b.nlocals <- id + 1;
  b.locals <- { ld_name = name; ld_ty = ty; ld_kind = kind } :: b.locals;
  if kind = KUser || kind = KArg then Hashtbl.replace b.names name id;
  id

let new_temp b ty =
  let id = b.nlocals in
  let name = Printf.sprintf "_t%d" id in
  b.nlocals <- id + 1;
  b.locals <- { ld_name = name; ld_ty = ty; ld_kind = KTemp } :: b.locals;
  id

let new_block b =
  let id = b.nblocks in
  b.nblocks <- id + 1;
  Hashtbl.replace b.blocks id { stmts = []; term = TUnreachable };
  id

let block b id = Hashtbl.find b.blocks id
let emit b s = (block b b.cur).stmts <- (block b b.cur).stmts @ [ s ]
let set_term b t = (block b b.cur).term <- t
let switch_to b id = b.cur <- id

let expr_ty (e : Ast.expr) : Ast.ty =
  match e.Ast.e_ty with
  | Some t -> t
  | None -> err e.Ast.e_span "internal: expression missing a type (typeck not run?)"

let local_ty_b b l = (List.nth b.locals (b.nlocals - 1 - l)).ld_ty

let place_ty_b b (p : place) : Ast.ty =
  place_ty_from b.prog (local_ty_b b p.base) p.projs

(** Is this type moved (rather than copied) when used by value? *)
let is_move_ty = function
  | Ast.TVec _ | Ast.TStruct _ -> true
  | _ -> false

let operand_of_place b (p : place) : operand =
  if is_move_ty (place_ty_b b p) then Move p else Copy p

(** Add deref projections until the place's type is not a reference. *)
let rec autoderef b (p : place) : place =
  match place_ty_b b p with
  | Ast.TRef _ -> autoderef b { p with projs = p.projs @ [ PDeref ] }
  | _ -> p

(** Mutability of a built-in RVec method's receiver. *)
let vec_method_mut = function
  | "len" | "is_empty" | "get" | "clone" -> Ast.Imm
  | "push" | "pop" | "get_mut" | "swap" -> Ast.Mut
  | m -> invalid_arg ("vec_method_mut: " ^ m)

let int_kind_of_ty = function Ast.TInt k -> k | _ -> Ast.I32

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec lower_operand b (e : Ast.expr) : operand =
  match e.Ast.e with
  | Ast.EInt n -> Const (CInt (n, int_kind_of_ty (expr_ty e)))
  | Ast.EFloat f -> Const (CFloat f)
  | Ast.EBool v -> Const (CBool v)
  | Ast.EUnit -> Const CUnit
  | Ast.EVar _ | Ast.EDeref _ | Ast.EField _ ->
      let p = lower_place b e in
      operand_of_place b p
  | _ ->
      let t = new_temp b (expr_ty e) in
      lower_into b (local_place t) e;
      operand_of_place b (local_place t)

and lower_place b (e : Ast.expr) : place =
  match e.Ast.e with
  | Ast.EVar x -> (
      match Hashtbl.find_opt b.names x with
      | Some l -> local_place l
      | None -> err e.Ast.e_span (Printf.sprintf "unbound variable %s" x))
  | Ast.EDeref inner ->
      let p = lower_place b inner in
      { p with projs = p.projs @ [ PDeref ] }
  | Ast.EField (recv, f) ->
      let p = autoderef b (lower_place b recv) in
      { p with projs = p.projs @ [ PField f ] }
  | _ ->
      let t = new_temp b (expr_ty e) in
      lower_into b (local_place t) e;
      local_place t

(** Lower a boolean expression as control flow into [then_bb]/[else_bb]. *)
and lower_cond b (e : Ast.expr) ~(then_bb : int) ~(else_bb : int) : unit =
  match e.Ast.e with
  | Ast.EBin (Ast.AndOp, a, rest) ->
      let mid = new_block b in
      lower_cond b a ~then_bb:mid ~else_bb;
      switch_to b mid;
      lower_cond b rest ~then_bb ~else_bb
  | Ast.EBin (Ast.OrOp, a, rest) ->
      let mid = new_block b in
      lower_cond b a ~then_bb ~else_bb:mid;
      switch_to b mid;
      lower_cond b rest ~then_bb ~else_bb
  | Ast.EUn (Ast.Not, a) -> lower_cond b a ~then_bb:else_bb ~else_bb:then_bb
  | _ ->
      let op = lower_operand b e in
      set_term b (TSwitch (op, then_bb, else_bb))

(** Lower [e], storing its value into [dest]. *)
and lower_into b (dest : place) (e : Ast.expr) : unit =
  let span = e.Ast.e_span in
  match e.Ast.e with
  | Ast.EInt _ | Ast.EFloat _ | Ast.EBool _ | Ast.EUnit | Ast.EVar _
  | Ast.EDeref _ | Ast.EField _ ->
      let op = lower_operand b e in
      emit b (Ir.SAssign (dest, RUse op, span))
  | Ast.EBin ((Ast.AndOp | Ast.OrOp), _, _) ->
      (* materialize short-circuit booleans through control flow *)
      let then_bb = new_block b in
      let else_bb = new_block b in
      let join = new_block b in
      lower_cond b e ~then_bb ~else_bb;
      switch_to b then_bb;
      emit b (Ir.SAssign (dest, RUse (Const (CBool true)), span));
      set_term b (TGoto join);
      switch_to b else_bb;
      emit b (Ir.SAssign (dest, RUse (Const (CBool false)), span));
      set_term b (TGoto join);
      switch_to b join
  | Ast.EBin (Ast.ImpOp, _, _) -> err span "==> outside a specification"
  | Ast.EBin (op, a1, a2) ->
      let o1 = lower_operand b a1 in
      let o2 = lower_operand b a2 in
      emit b (Ir.SAssign (dest, RBin (op, o1, o2), span))
  | Ast.EUn (op, a) ->
      let o = lower_operand b a in
      emit b (Ir.SAssign (dest, RUn (op, o), span))
  | Ast.ERef (m, inner) ->
      let p = lower_place b inner in
      emit b (Ir.SAssign (dest, RRef (m, p), span))
  | Ast.EStruct (name, fields) ->
      (* evaluate fields in declaration order *)
      let sd =
        match Ast.find_struct b.prog name with
        | Some sd -> sd
        | None -> err span ("unknown struct " ^ name)
      in
      let ops =
        List.map
          (fun (fd : Ast.field_def) ->
            match
              List.find_opt (fun (n, _) -> String.equal n fd.Ast.fd_name) fields
            with
            | Some (_, value) -> (fd.Ast.fd_name, lower_operand b value)
            | None -> err span ("missing field " ^ fd.Ast.fd_name))
          sd.Ast.st_fields
      in
      emit b (Ir.SAssign (dest, RAggregate (name, ops), span))
  | Ast.ECall ("assert!", args) ->
      (* lower assert!(cond) as: if cond { } else { unreachable } *)
      List.iter
        (fun cond ->
          let ok = new_block b in
          let fail = new_block b in
          lower_cond b cond ~then_bb:ok ~else_bb:fail;
          switch_to b fail;
          set_term b TUnreachable;
          switch_to b ok)
        args;
      emit b (Ir.SAssign (dest, RUse (Const CUnit), span))
  | Ast.ECall (f, args) ->
      let ops = List.map (lower_operand b) args in
      let target = new_block b in
      set_term b
        (TCall { tc_func = f; tc_args = ops; tc_dest = dest; tc_target = target; tc_span = span });
      switch_to b target
  | Ast.EMethod (recv, m, args) ->
      let recv_place = autoderef b (lower_place b recv) in
      let recv_ty = place_ty_b b recv_place in
      let func, recv_mut =
        match recv_ty with
        | Ast.TVec _ -> ("RVec::" ^ m, vec_method_mut m)
        | Ast.TStruct s -> (
            let name = s ^ "::" ^ m in
            match Ast.find_fn b.prog name with
            | Some fd -> (
                match fd.Ast.fn_params with
                | (_, Ast.TRef (mu, _)) :: _ -> (name, mu)
                | _ -> (name, Ast.Imm))
            | None -> err span ("unknown method " ^ name))
        | t -> err span (Format.asprintf "no methods on %a" Ast.pp_ty t)
      in
      let ref_ty = Ast.TRef (recv_mut, recv_ty) in
      let recv_tmp = new_temp b ref_ty in
      emit b (Ir.SAssign (local_place recv_tmp, RRef (recv_mut, recv_place), span));
      let ops = List.map (lower_operand b) args in
      let target = new_block b in
      set_term b
        (TCall
           {
             tc_func = func;
             tc_args = Move (local_place recv_tmp) :: ops;
             tc_dest = dest;
             tc_target = target;
             tc_span = span;
           });
      switch_to b target
  | Ast.EIf (cond, then_b, else_b) -> (
      let then_bb = new_block b in
      let else_bb = new_block b in
      let join = new_block b in
      lower_cond b cond ~then_bb ~else_bb;
      switch_to b then_bb;
      lower_block_into b dest then_b;
      set_term b (TGoto join);
      switch_to b else_bb;
      (match else_b with
      | Some blk -> lower_block_into b dest blk
      | None -> emit b (Ir.SAssign (dest, RUse (Const CUnit), span)));
      set_term b (TGoto join);
      switch_to b join)
  | Ast.EBlock blk -> lower_block_into b dest blk
  | Ast.EForall _ | Ast.EOld _ | Ast.EResult ->
      err span "specification-only expression in program code"

and lower_block_into b (dest : place) (blk : Ast.block) : unit =
  List.iter (lower_stmt b) blk.Ast.stmts;
  match blk.Ast.tail with
  | Some e -> lower_into b dest e
  | None -> emit b (Ir.SAssign (dest, RUse (Const CUnit), blk.Ast.b_span))

and lower_stmt b (s : Ast.stmt) : unit =
  match s with
  | Ast.SLet { lname; linit; lspan; _ } ->
      let ty = expr_ty linit in
      let l = new_local b lname ty KUser in
      ignore lspan;
      lower_into b (local_place l) linit
  | Ast.SAssign (place_e, op, rhs, span) -> (
      let p = lower_place b place_e in
      match op with
      | None -> lower_into b p rhs
      | Some binop ->
          let lhs_op = operand_of_place b p in
          let rhs_op = lower_operand b rhs in
          emit b (Ir.SAssign (p, RBin (binop, lhs_op, rhs_op), span)))
  | Ast.SExpr e ->
      let t = new_temp b (expr_ty e) in
      lower_into b (local_place t) e
  | Ast.SWhile (cond, body, span) ->
      ignore span;
      let header = new_block b in
      let body_bb = new_block b in
      let exit_bb = new_block b in
      set_term b (TGoto header);
      switch_to b header;
      (* Prusti loop invariants written at the top of the body belong to
         the header block. *)
      let invs, rest_stmts =
        let rec split acc = function
          | Ast.SInvariant (e, sp) :: rest -> split ((e, sp) :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        split [] body.Ast.stmts
      in
      List.iter (fun (e, sp) -> emit b (Ir.SInvariant (e, sp))) invs;
      lower_cond b cond ~then_bb:body_bb ~else_bb:exit_bb;
      switch_to b body_bb;
      b.loop_exits <- exit_bb :: b.loop_exits;
      List.iter (lower_stmt b) rest_stmts;
      (match body.Ast.tail with
      | Some e -> lower_stmt b (Ast.SExpr e)
      | None -> ());
      b.loop_exits <- List.tl b.loop_exits;
      set_term b (TGoto header);
      switch_to b exit_bb
  | Ast.SInvariant _ -> () (* handled by SWhile; stray ones are inert *)
  | Ast.SReturn (eo, span) ->
      (match eo with
      | Some e -> lower_into b (local_place 0) e
      | None -> emit b (Ir.SAssign (local_place 0, RUse (Const CUnit), span)));
      set_term b TReturn;
      let dead = new_block b in
      switch_to b dead
  | Ast.SBreak span -> (
      match b.loop_exits with
      | exit_bb :: _ ->
          set_term b (TGoto exit_bb);
          let dead = new_block b in
          switch_to b dead
      | [] -> err span "break outside of a loop")

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)
(* ------------------------------------------------------------------ *)

let lower_fn (prog : Ast.program) (fd : Ast.fn_def) : body option =
  match fd.Ast.fn_body with
  | None -> None
  | Some body_blk ->
      let b =
        {
          prog;
          fn = fd;
          locals = [];
          nlocals = 0;
          names = Hashtbl.create 16;
          blocks = Hashtbl.create 16;
          nblocks = 0;
          cur = 0;
          loop_exits = [];
        }
      in
      ignore (new_local b "_ret" fd.Ast.fn_ret KReturn);
      List.iter (fun (x, t) -> ignore (new_local b x t KArg)) fd.Ast.fn_params;
      let entry = new_block b in
      switch_to b entry;
      lower_block_into b (local_place 0) body_blk;
      (match (block b b.cur).term with
      | TUnreachable -> set_term b TReturn
      | _ -> ());
      let blocks = Array.init b.nblocks (fun i -> Hashtbl.find b.blocks i) in
      Some
        {
          mb_name = fd.Ast.fn_name;
          mb_locals = Array.of_list (List.rev b.locals);
          mb_arg_count = List.length fd.Ast.fn_params;
          mb_blocks = blocks;
          mb_loop_heads = compute_loop_heads blocks;
          mb_span = fd.Ast.fn_span;
        }

let lower_program (prog : Ast.program) : (string * body) list =
  List.filter_map
    (fun item ->
      match item with
      | Ast.IFn fd -> (
          match lower_fn prog fd with
          | Some b -> Some (fd.Ast.fn_name, b)
          | None -> None)
      | Ast.IStruct _ -> None)
    prog
