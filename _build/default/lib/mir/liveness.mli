(** Backward liveness analysis over MIR.

    Used by the refinement checker to keep join templates small and to
    exclude moved-out locals whose types would not join. A use of any
    projection of a local counts as a use; `&x` keeps `x` alive. *)

type t

val compute : Ir.body -> t

val live_at : t -> block:int -> bool array
(** Per-local liveness at block entry. *)
