lib/mir/liveness.mli: Ir
