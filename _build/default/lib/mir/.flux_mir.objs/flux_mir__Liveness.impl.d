lib/mir/liveness.ml: Array Ir List
