lib/mir/lower.ml: Array Ast Flux_syntax Format Hashtbl Ir List Printf String
