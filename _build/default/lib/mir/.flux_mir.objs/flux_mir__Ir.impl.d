lib/mir/ir.ml: Array Ast Flux_syntax Format List String
