(** A MIR-style control-flow-graph IR, mirroring the representation the
    paper's implementation consumes ("Flux performs the analysis on
    Rust's Mid-level Intermediate Representation", §4).

    A function body is a graph of basic blocks over a flat array of
    typed locals. Local 0 is the return place; locals 1..arg_count are
    the arguments. Places are locals with deref/field projections;
    operands copy or move places or materialize constants. Function and
    method calls are block terminators. *)

open Flux_syntax

type local = int

type local_kind = KReturn | KArg | KUser | KTemp

type local_decl = {
  ld_name : string;
  ld_ty : Ast.ty;
  ld_kind : local_kind;
}

type proj = PDeref | PField of string

type place = { base : local; projs : proj list }

let local_place l = { base = l; projs = [] }

type constant =
  | CInt of int * Ast.int_kind
  | CFloat of float
  | CBool of bool
  | CUnit

type operand = Copy of place | Move of place | Const of constant

type rvalue =
  | RUse of operand
  | RBin of Ast.binop * operand * operand
  | RUn of Ast.unop * operand
  | RRef of Ast.mutability * place
  | RAggregate of string * (string * operand) list
      (** struct literal: name, field assignments in declaration order *)

type stmt =
  | SAssign of place * rvalue * Ast.span
  | SInvariant of Ast.expr * Ast.span
      (** Prusti [body_invariant!]; lives in the loop-header block *)
  | SNop

type terminator =
  | TGoto of int
  | TSwitch of operand * int * int  (** if: operand, then-block, else-block *)
  | TCall of {
      tc_func : string;
      tc_args : operand list;
      tc_dest : place;
      tc_target : int;
      tc_span : Ast.span;
    }
  | TReturn
  | TUnreachable

type block = { mutable stmts : stmt list; mutable term : terminator }

type body = {
  mb_name : string;
  mb_locals : local_decl array;
  mb_arg_count : int;
  mb_blocks : block array;
  mb_loop_heads : bool array;  (** targets of back edges *)
  mb_span : Ast.span;
}

let local_ty (b : body) (l : local) = b.mb_locals.(l).ld_ty

(** The plain type of a place, following projections. *)
let rec place_ty_from (prog : Ast.program) (t : Ast.ty) (projs : proj list) :
    Ast.ty =
  match projs with
  | [] -> t
  | PDeref :: rest -> (
      match t with
      | Ast.TRef (_, t') -> place_ty_from prog t' rest
      | _ -> invalid_arg "place_ty: deref of non-reference")
  | PField f :: rest -> (
      match t with
      | Ast.TStruct s -> (
          match Ast.find_struct prog s with
          | Some sd -> (
              match
                List.find_opt (fun fd -> String.equal fd.Ast.fd_name f) sd.Ast.st_fields
              with
              | Some fd -> place_ty_from prog fd.Ast.fd_ty rest
              | None -> invalid_arg ("place_ty: no field " ^ f))
          | None -> invalid_arg ("place_ty: unknown struct " ^ s))
      | _ -> invalid_arg "place_ty: field of non-struct")

let place_ty (prog : Ast.program) (b : body) (p : place) : Ast.ty =
  place_ty_from prog (local_ty b p.base) p.projs

(* ------------------------------------------------------------------ *)
(* CFG utilities                                                       *)
(* ------------------------------------------------------------------ *)

let successors (t : terminator) : int list =
  match t with
  | TGoto b -> [ b ]
  | TSwitch (_, b1, b2) -> [ b1; b2 ]
  | TCall { tc_target; _ } -> [ tc_target ]
  | TReturn | TUnreachable -> []

let predecessors (b : body) : int list array =
  let preds = Array.make (Array.length b.mb_blocks) [] in
  Array.iteri
    (fun i blk ->
      List.iter (fun s -> preds.(s) <- i :: preds.(s)) (successors blk.term))
    b.mb_blocks;
  preds

(** Reverse postorder from block 0. Unreachable blocks are appended at
    the end (they still typecheck vacuously). *)
let reverse_postorder (b : body) : int list =
  let n = Array.length b.mb_blocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs (successors b.mb_blocks.(i).term);
      order := i :: !order
    end
  in
  dfs 0;
  let unreachable = ref [] in
  for i = n - 1 downto 0 do
    if not visited.(i) then unreachable := i :: !unreachable
  done;
  !order @ !unreachable

(** Immediate dominance as full dominator sets (iterative bit-vector
    algorithm; the CFGs here are small). [dom.(b)] is the set of blocks
    that dominate [b], including [b] itself. Unreachable blocks get the
    full set. *)
let dominators (b : body) : bool array array =
  let n = Array.length b.mb_blocks in
  let preds = predecessors b in
  let dom = Array.init n (fun i -> Array.make n (i <> 0 || n = 0)) in
  if n > 0 then begin
    Array.fill dom.(0) 0 n false;
    dom.(0).(0) <- true;
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 1 to n - 1 do
        match preds.(i) with
        | [] -> ()
        | p0 :: rest ->
            let inter = Array.copy dom.(p0) in
            List.iter
              (fun p ->
                for j = 0 to n - 1 do
                  inter.(j) <- inter.(j) && dom.(p).(j)
                done)
              rest;
            inter.(i) <- true;
            if inter <> dom.(i) then begin
              dom.(i) <- inter;
              changed := true
            end
      done
    done
  end;
  dom

(** Mark loop headers: targets of back edges in a DFS from entry. *)
let compute_loop_heads (blocks : block array) : bool array =
  let n = Array.length blocks in
  let heads = Array.make n false in
  let state = Array.make n 0 (* 0 unvisited, 1 on stack, 2 done *) in
  let rec dfs i =
    state.(i) <- 1;
    List.iter
      (fun s ->
        if state.(s) = 1 then heads.(s) <- true
        else if state.(s) = 0 then dfs s)
      (successors blocks.(i).term);
    state.(i) <- 2
  in
  if n > 0 then dfs 0;
  heads

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_place (b : body) fmt (p : place) =
  let base = b.mb_locals.(p.base).ld_name in
  let rec go fmt = function
    | [] -> Format.pp_print_string fmt base
    | PDeref :: rest -> Format.fprintf fmt "(*%a)" go rest
    | PField f :: rest -> Format.fprintf fmt "%a.%s" go rest f
  in
  go fmt (List.rev p.projs)

let pp_constant fmt = function
  | CInt (n, k) -> Format.fprintf fmt "%d_%s" n (Ast.int_kind_str k)
  | CFloat f -> Format.fprintf fmt "%g" f
  | CBool b -> Format.pp_print_bool fmt b
  | CUnit -> Format.pp_print_string fmt "()"

let pp_operand (b : body) fmt = function
  | Copy p -> Format.fprintf fmt "copy %a" (pp_place b) p
  | Move p -> Format.fprintf fmt "move %a" (pp_place b) p
  | Const c -> pp_constant fmt c

let pp_rvalue (b : body) fmt = function
  | RUse op -> pp_operand b fmt op
  | RBin (op, a1, a2) ->
      Format.fprintf fmt "%a %s %a" (pp_operand b) a1 (Ast.binop_str op)
        (pp_operand b) a2
  | RUn (Ast.Not, a) -> Format.fprintf fmt "!%a" (pp_operand b) a
  | RUn (Ast.NegOp, a) -> Format.fprintf fmt "-%a" (pp_operand b) a
  | RRef (Ast.Imm, p) -> Format.fprintf fmt "&%a" (pp_place b) p
  | RRef (Ast.Mut, p) -> Format.fprintf fmt "&mut %a" (pp_place b) p
  | RAggregate (s, fields) ->
      Format.fprintf fmt "%s { %a }" s
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (fun fmt (f, op) -> Format.fprintf fmt "%s: %a" f (pp_operand b) op))
        fields

let pp_stmt (b : body) fmt = function
  | SAssign (p, rv, _) ->
      Format.fprintf fmt "%a = %a;" (pp_place b) p (pp_rvalue b) rv
  | SInvariant (e, _) -> Format.fprintf fmt "invariant(%a);" Ast.pp_expr e
  | SNop -> Format.pp_print_string fmt "nop;"

let pp_terminator (b : body) fmt = function
  | TGoto i -> Format.fprintf fmt "goto bb%d;" i
  | TSwitch (op, t, f) ->
      Format.fprintf fmt "if %a -> [bb%d, bb%d];" (pp_operand b) op t f
  | TCall { tc_func; tc_args; tc_dest; tc_target; _ } ->
      Format.fprintf fmt "%a = %s(%a) -> bb%d;" (pp_place b) tc_dest tc_func
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (pp_operand b))
        tc_args tc_target
  | TReturn -> Format.pp_print_string fmt "return;"
  | TUnreachable -> Format.pp_print_string fmt "unreachable;"

let pp_body fmt (b : body) =
  Format.fprintf fmt "fn %s {@." b.mb_name;
  Array.iteri
    (fun i (d : local_decl) ->
      Format.fprintf fmt "  let %s: %a; // _%d %s@." d.ld_name Ast.pp_ty d.ld_ty
        i
        (match d.ld_kind with
        | KReturn -> "(return)"
        | KArg -> "(arg)"
        | KUser -> ""
        | KTemp -> "(temp)"))
    b.mb_locals;
  Array.iteri
    (fun i blk ->
      Format.fprintf fmt "  bb%d%s:@." i
        (if b.mb_loop_heads.(i) then " (loop head)" else "");
      List.iter (fun s -> Format.fprintf fmt "    %a@." (pp_stmt b) s) blk.stmts;
      Format.fprintf fmt "    %a@." (pp_terminator b) blk.term)
    b.mb_blocks;
  Format.fprintf fmt "}@."
