(** Backward liveness analysis over MIR.

    The refinement checker synthesizes a template environment at every
    join block (§4.2); liveness keeps those templates small and — more
    importantly — excludes moved-out locals whose types would otherwise
    fail to join (a dead local may be initialized on one path and
    moved-out on another).

    The analysis is a standard bit-vector fixpoint. A use of any
    projection of a local counts as a use of the local; an assignment to
    a bare local is a def, while an assignment through a projection
    (deref/field) is both a use and a def (conservatively treated as a
    use only). References keep their referent alive: `&x` uses `x`. *)

open Ir

type t = {
  live_in : bool array array;  (** block -> local -> live at entry *)
}

let use_place (uses : bool array) (p : place) = uses.(p.base) <- true

let use_operand uses = function
  | Copy p | Move p -> use_place uses p
  | Const _ -> ()

let use_rvalue uses = function
  | RUse op -> use_operand uses op
  | RBin (_, a, b) ->
      use_operand uses a;
      use_operand uses b
  | RUn (_, a) -> use_operand uses a
  | RRef (_, p) -> use_place uses p
  | RAggregate (_, fields) -> List.iter (fun (_, op) -> use_operand uses op) fields

(** Transfer one statement backwards through the live set. *)
let transfer_stmt (live : bool array) (s : stmt) =
  match s with
  | SAssign (dest, rv, _) ->
      if dest.projs = [] then live.(dest.base) <- false
      else use_place live dest;
      use_rvalue live rv
  | SInvariant _ | SNop -> ()

let transfer_term (live : bool array) (t : terminator) =
  match t with
  | TGoto _ | TReturn | TUnreachable -> ()
  | TSwitch (op, _, _) -> use_operand live op
  | TCall { tc_args; tc_dest; _ } ->
      if tc_dest.projs = [] then live.(tc_dest.base) <- false
      else use_place live tc_dest;
      List.iter (use_operand live) tc_args

let compute (b : body) : t =
  let nb = Array.length b.mb_blocks in
  let nl = Array.length b.mb_locals in
  let live_in = Array.init nb (fun _ -> Array.make nl false) in
  let live_out = Array.init nb (fun _ -> Array.make nl false) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = nb - 1 downto 0 do
      let blk = b.mb_blocks.(i) in
      (* out = union of successors' in; the return local is live at
         TReturn *)
      let out = live_out.(i) in
      Array.fill out 0 nl false;
      (match blk.term with TReturn -> out.(0) <- true | _ -> ());
      List.iter
        (fun s ->
          Array.iteri (fun l v -> if v then out.(l) <- true) live_in.(s))
        (successors blk.term);
      (* in = transfer backwards *)
      let live = Array.copy out in
      transfer_term live blk.term;
      List.iter (transfer_stmt live) (List.rev blk.stmts);
      if live <> live_in.(i) then begin
        live_in.(i) <- live;
        changed := true
      end
    done
  done;
  { live_in }

let live_at (t : t) ~(block : int) : bool array = t.live_in.(block)
