(** Logical qualifiers — the quantifier-free templates from which the
    liquid solver assembles κ solutions (Rondon et al. 2008).

    A qualifier is a predicate over a distinguished value parameter [v]
    and zero or more wildcard parameters. Instantiation for a κ variable
    substitutes the κ's first formal for [v] and enumerates sort-correct
    choices of the κ's remaining formals (plus small integer constants)
    for the wildcards. *)

open Flux_smt

type t = {
  qname : string;
  qvv : string * Sort.t;  (** the value parameter *)
  qwild : (string * Sort.t) list;  (** wildcard parameters *)
  qbody : Term.t;
}

let make ?(name = "q") ~vv ~wild body =
  { qname = name; qvv = vv; qwild = wild; qbody = body }

let pp fmt q =
  Format.fprintf fmt "%s[%s|%a]: %a" q.qname (fst q.qvv)
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       (fun fmt (x, _) -> Format.pp_print_string fmt x))
    q.qwild Term.pp q.qbody

(** The default qualifier set, mirroring the small set of
    quantifier-free templates that DSOLVE/Flux ship with: order and
    equality comparisons of the value against a program variable or a
    small constant, and off-by-one variants. *)
let default : t list =
  let v = ("v", Sort.Int) in
  let x = ("x", Sort.Int) in
  let tv = Term.var "v" and tx = Term.var "x" in
  let cmps =
    [
      ("le", Term.le tv tx);
      ("lt", Term.lt tv tx);
      ("eq", Term.eq tv tx);
      ("ge", Term.ge tv tx);
      ("gt", Term.gt tv tx);
    ]
  in
  let with_var =
    List.map (fun (n, b) -> make ~name:("v_" ^ n ^ "_x") ~vv:v ~wild:[ x ] b) cmps
  in
  let consts =
    List.concat_map
      (fun c ->
        [
          make ~name:(Printf.sprintf "v_ge_%d" c) ~vv:v ~wild:[]
            (Term.ge tv (Term.int c));
          make ~name:(Printf.sprintf "v_eq_%d" c) ~vv:v ~wild:[]
            (Term.eq tv (Term.int c));
          make ~name:(Printf.sprintf "v_le_%d" c) ~vv:v ~wild:[]
            (Term.le tv (Term.int c));
        ])
      [ 0; 1 ]
  in
  let offsets =
    [
      make ~name:"v_eq_x_plus_1" ~vv:v ~wild:[ x ]
        (Term.eq tv (Term.add tx (Term.int 1)));
      make ~name:"v_eq_x_minus_1" ~vv:v ~wild:[ x ]
        (Term.eq tv (Term.sub tx (Term.int 1)));
      make ~name:"v_lt_x_plus_1" ~vv:v ~wild:[ x ]
        (Term.lt tv (Term.add tx (Term.int 1)));
      make ~name:"v_le_x_plus_1" ~vv:v ~wild:[ x ]
        (Term.le tv (Term.add tx (Term.int 1)));
      make ~name:"v_plus_1_le_x" ~vv:v ~wild:[ x ]
        (Term.le (Term.add tv (Term.int 1)) tx);
      (* halving patterns (binary search, fft bit-reversal) *)
      make ~name:"v_dbl_le_x" ~vv:v ~wild:[ x ]
        (Term.le (Term.mul (Term.int 2) tv) tx);
      (* two-variable sums (strong-reference growth loops, windows) *)
      (let y = ("y", Sort.Int) in
       make ~name:"v_eq_x_plus_y" ~vv:v ~wild:[ x; y ]
         (Term.eq tv (Term.add tx (Term.var "y"))));
      (let y = ("y", Sort.Int) in
       make ~name:"v_plus_x_le_y" ~vv:v ~wild:[ x; y ]
         (Term.le (Term.add tv tx) (Term.var "y")));
    ]
  in
  let bools =
    let vb = ("v", Sort.Bool) in
    let tvb = Term.bvar "v" in
    let y = ("y", Sort.Int) in
    let ty = Term.var "y" in
    [
      make ~name:"v_true" ~vv:vb ~wild:[] tvb;
      make ~name:"v_not" ~vv:vb ~wild:[] (Term.mk_not tvb);
      (* boolean results of comparisons, e.g. bool<0 < n> *)
      make ~name:"v_iff_lt" ~vv:vb ~wild:[ x; y ] (Term.mk_iff tvb (Term.lt tx ty));
      make ~name:"v_iff_le" ~vv:vb ~wild:[ x; y ] (Term.mk_iff tvb (Term.le tx ty));
      make ~name:"v_iff_eq" ~vv:vb ~wild:[ x; y ] (Term.mk_iff tvb (Term.eq tx ty));
    ]
  in
  with_var @ consts @ offsets @ bools

(** Scope bound above which multi-wildcard qualifiers are skipped: the
    quadratic instantiation only pays off in small scopes (growth loops,
    window bounds), while in large join environments it dominates solve
    time without adding solutions the suite needs. *)
let multi_wildcard_scope_limit = ref 9

(** Instantiate qualifier [q] for a κ with formals [params] (the first
    formal is the value position). Returns concrete predicates over the
    κ's formal parameters. *)
let instantiate (q : t) (params : (string * Sort.t) list) : Term.t list =
  match params with
  | [] -> []
  | _
    when List.length q.qwild >= 2
         && List.length params > !multi_wildcard_scope_limit ->
      []
  | (v0, s0) :: rest ->
      if not (Sort.equal s0 (snd q.qvv)) then []
      else
        let candidates_for (_, sw) =
          let vars =
            List.filter_map
              (fun (x, s) ->
                if Sort.equal s sw then Some (Term.Var (x, s)) else None)
              rest
          in
          (* small integer constants are also wildcard candidates, so
             templates like v ⇔ 0 < x are expressible *)
          if Sort.equal sw Sort.Int then vars @ [ Term.int 0 ] else vars
        in
        let rec combos = function
          | [] -> [ [] ]
          | w :: ws ->
              let rest_combos = combos ws in
              List.concat_map
                (fun c -> List.map (fun tl -> (fst w, c) :: tl) rest_combos)
                (candidates_for w)
        in
        let base = [ (fst q.qvv, Term.Var (v0, s0)) ] in
        List.map (fun m -> Term.subst (base @ m) q.qbody) (combos q.qwild)

(** Instantiate a whole qualifier set for a κ with [values] leading
    value positions: each value position in turn plays the qualifier's
    [v] role (a κ for a doubly-indexed struct must constrain both
    indices). Deduplicates syntactically. *)
let instantiate_all ?(values = 1) (qs : t list)
    (params : (string * Sort.t) list) : Term.t list =
  let seen = Hashtbl.create 64 in
  let rotations =
    List.init (max 1 (min values (List.length params))) (fun i ->
        let vi = List.nth params i in
        vi :: List.filteri (fun j _ -> j <> i) params)
  in
  List.concat_map
    (fun params -> List.concat_map (fun q -> instantiate q params) qs)
    rotations
  |> List.filter (fun t ->
         let key = Term.to_string t in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.add seen key ();
           true
         end)
