(** Horn constraints with refinement (κ) variables — the constraint
    language produced by the checker (§4.2 of the paper) and consumed by
    {!Solve}. *)

open Flux_smt

type kvar = {
  kname : string;
  kparams : (string * Sort.t) list;
      (** formal parameters; the first [kvalues] are the "value"
          positions of the template the κ refines, the rest are the
          scope's ghost variables *)
  kvalues : int;
}

type pred =
  | Conc of Term.t  (** concrete (κ-free) predicate *)
  | Kapp of string * Term.t list  (** κ variable applied to actuals *)

(** Nested constraints (the liquid-fixpoint format). *)
type cstr =
  | CTrue
  | CAnd of cstr list
  | CHead of pred * int  (** goal, with a caller-side tag for errors *)
  | CBind of string * Sort.t * pred list * cstr
      (** [∀ x:σ. preds(x) ⇒ c] — a binder with its refinements *)
  | CGuard of Term.t * cstr  (** [guard ⇒ c] *)

(** Flat clause [∀ binders. hyps ⇒ head]. *)
type clause = {
  binders : (string * Sort.t) list;
  hyps : pred list;
  head : pred;
  tag : int;
}

val pp_pred : Format.formatter -> pred -> unit
val pp_clause : Format.formatter -> clause -> unit
val pp_cstr : Format.formatter -> cstr -> unit

val flatten : cstr -> clause list
val kvars_of : cstr -> string list
val conj : cstr list -> cstr
