lib/fixpoint/solve.ml: Flux_smt Format Hashtbl Horn List Printf Qualifier Solver String Term
