lib/fixpoint/horn.ml: Flux_smt Format Hashtbl List Sort Term
