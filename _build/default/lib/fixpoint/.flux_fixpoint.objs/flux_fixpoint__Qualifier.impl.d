lib/fixpoint/qualifier.ml: Flux_smt Format Hashtbl List Printf Sort Term
