lib/fixpoint/solve.mli: Flux_smt Format Hashtbl Horn Qualifier Term
