lib/fixpoint/horn.mli: Flux_smt Format Sort Term
