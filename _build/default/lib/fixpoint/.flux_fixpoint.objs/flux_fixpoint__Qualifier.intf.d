lib/fixpoint/qualifier.mli: Flux_smt Format Sort Term
