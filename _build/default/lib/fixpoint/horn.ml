(** Horn constraints with refinement (κ) variables.

    This is the constraint language produced by phase 2 of the checker
    (§4.2 of the paper) and consumed by the predicate-abstraction solver
    in {!Solve}. A constraint is a tree of binders, guards and heads —
    the "nested" format of liquid-fixpoint — which we flatten into flat
    clauses [∀ binders. hyps ⇒ head] before solving. *)

open Flux_smt

type kvar = {
  kname : string;
  kparams : (string * Sort.t) list;
      (** formal parameters; the first [kvalues] are the "value"
          positions of the template the κ refines, the rest are the
          scope's ghost variables *)
  kvalues : int;
}

type pred =
  | Conc of Term.t  (** concrete (κ-free) predicate *)
  | Kapp of string * Term.t list  (** κ variable applied to actuals *)

type cstr =
  | CTrue
  | CAnd of cstr list
  | CHead of pred * int  (** goal, with a caller-side tag for errors *)
  | CBind of string * Sort.t * pred list * cstr
      (** [∀ x:σ. preds(x) ⇒ c] — a binder with its refinements *)
  | CGuard of Term.t * cstr  (** [guard ⇒ c] *)

type clause = {
  binders : (string * Sort.t) list;
  hyps : pred list;
  head : pred;
  tag : int;
}

let pp_pred fmt = function
  | Conc t -> Term.pp fmt t
  | Kapp (k, args) ->
      Format.fprintf fmt "%s(%a)" k
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           Term.pp)
        args

let pp_clause fmt c =
  Format.fprintf fmt "@[<hov 2>forall %a.@ %a@ => %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
       (fun fmt (x, s) -> Format.fprintf fmt "(%s:%a)" x Sort.pp s))
    c.binders
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " && ")
       pp_pred)
    c.hyps pp_pred c.head

let rec pp_cstr fmt = function
  | CTrue -> Format.pp_print_string fmt "true"
  | CAnd cs ->
      Format.fprintf fmt "@[<v>%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_cstr)
        cs
  | CHead (p, tag) -> Format.fprintf fmt "[%d] |- %a" tag pp_pred p
  | CBind (x, s, ps, c) ->
      Format.fprintf fmt "@[<v 2>forall %s:%a. %a =>@ %a@]" x Sort.pp s
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " && ")
           pp_pred)
        ps pp_cstr c
  | CGuard (g, c) -> Format.fprintf fmt "@[<v 2>%a =>@ %a@]" Term.pp g pp_cstr c

(** Flatten a nested constraint into clauses. *)
let flatten (c : cstr) : clause list =
  let rec go binders hyps acc = function
    | CTrue -> acc
    | CAnd cs -> List.fold_left (go binders hyps) acc cs
    | CHead (p, tag) ->
        { binders = List.rev binders; hyps = List.rev hyps; head = p; tag }
        :: acc
    | CBind (x, s, ps, c) ->
        go ((x, s) :: binders) (List.rev_append ps hyps) acc c
    | CGuard (g, c) -> go binders (Conc g :: hyps) acc c
  in
  List.rev (go [] [] [] c)

(** All κ names occurring in a constraint. *)
let kvars_of (c : cstr) : string list =
  let tbl = Hashtbl.create 16 in
  let pred = function Kapp (k, _) -> Hashtbl.replace tbl k () | Conc _ -> () in
  let rec go = function
    | CTrue -> ()
    | CAnd cs -> List.iter go cs
    | CHead (p, _) -> pred p
    | CBind (_, _, ps, c) ->
        List.iter pred ps;
        go c
    | CGuard (_, c) -> go c
  in
  go c;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []

let conj (cs : cstr list) : cstr =
  match List.filter (fun c -> c <> CTrue) cs with
  | [] -> CTrue
  | [ c ] -> c
  | cs -> CAnd cs
