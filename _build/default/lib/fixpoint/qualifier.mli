(** Logical qualifiers — the quantifier-free templates from which the
    liquid solver assembles κ solutions (Rondon et al. 2008). *)

open Flux_smt

type t = {
  qname : string;
  qvv : string * Sort.t;  (** the distinguished value parameter *)
  qwild : (string * Sort.t) list;  (** wildcard parameters *)
  qbody : Term.t;
}

val make :
  ?name:string ->
  vv:string * Sort.t ->
  wild:(string * Sort.t) list ->
  Term.t ->
  t

val pp : Format.formatter -> t -> unit

val default : t list
(** The default qualifier set: order/equality comparisons of the value
    against a variable or small constant, off-by-one variants, halving
    and two-variable-sum patterns, and boolean-iff templates. *)

val multi_wildcard_scope_limit : int ref
(** Multi-wildcard qualifiers are skipped for κs whose scope exceeds
    this bound (default 9) — their quadratic instantiation only pays
    off in small scopes. *)

val instantiate : t -> (string * Sort.t) list -> Term.t list
(** Instantiate one qualifier for a κ with the given formals (the first
    formal plays the [v] role; wildcards range over the rest plus small
    constants). *)

val instantiate_all :
  ?values:int -> t list -> (string * Sort.t) list -> Term.t list
(** Instantiate a whole set for a κ whose first [values] formals are
    value positions (each takes a turn as [v]); deduplicated. *)
