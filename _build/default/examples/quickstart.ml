(** Quickstart: verify the paper's fig. 1 examples with the library
    API, inspect an inferred loop invariant, and see an error message
    for a buggy variant.

    Run with: [dune exec examples/quickstart.exe] *)

module Checker = Flux_check.Checker

let good =
  {|
// fig. 1 (left): the result is true exactly when the input is positive
#[lr::sig(fn(i32<@n>) -> bool<0 < n>)]
fn is_pos(n: i32) -> bool {
    if 0 < n { true } else { false }
}

// fig. 1 (right): absolute value, with a lower bound on the result
#[lr::sig(fn(i32<@x>) -> i32{v: x <= v && 0 <= v})]
fn abs(x: i32) -> i32 {
    if x < 0 { -x } else { x }
}

// fig. 2: build a vector of n zeros; the loop invariant
// (len vec = i ∧ i <= n) is synthesized by liquid inference
#[lr::sig(fn(usize<@n>) -> RVec<f32, n>)]
fn init_zeros(n: usize) -> RVec<f32> {
    let mut vec = RVec::new();
    let mut i = 0;
    while i < n {
        vec.push(0.0);
        i += 1;
    }
    vec
}
|}

let buggy =
  {|
// out-of-bounds: i can reach v.len()
#[lr::sig(fn(&RVec<f32, @n>) -> f32)]
fn sum(v: &RVec<f32>) -> f32 {
    let mut s = 0.0;
    let mut i = 0;
    while i <= v.len() {
        s = s + *v.get(i);
        i += 1;
    }
    s
}
|}

let () =
  Format.printf "=== Verifying the paper's fig. 1 / fig. 2 examples ===@.";
  let report = Checker.check_source good in
  List.iter
    (fun (fr : Checker.fn_report) ->
      Format.printf "  %-12s %s  (%d κ variables, %d clauses, %.3fs)@."
        fr.fr_name
        (if Checker.fn_ok fr then "verified" else "REJECTED")
        fr.fr_kvars fr.fr_clauses fr.fr_time)
    report.Checker.rp_fns;
  Format.printf "@.=== Inferred κ solution for init_zeros ===@.";
  (match
     List.find_opt
       (fun (fr : Checker.fn_report) -> fr.Checker.fr_name = "init_zeros")
       report.Checker.rp_fns
   with
  | Some { fr_solution = Some sol; _ } ->
      Format.printf "%a" Flux_fixpoint.Solve.pp_solution sol
  | _ -> Format.printf "  (no solution recorded)@.");
  Format.printf "@.=== A buggy program is rejected with a precise message ===@.";
  let report = Checker.check_source buggy in
  List.iter
    (fun e -> Format.printf "  %a@." Checker.pp_error e)
    (Checker.report_errors report);
  if Checker.report_ok report then
    failwith "BUG: the out-of-bounds program was accepted!"
  else Format.printf "@.quickstart: done.@."
