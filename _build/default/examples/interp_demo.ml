(** Stuck freedom in action (Theorem 3.2): run every verified benchmark
    on concrete inputs under the bounds-checking interpreter and show
    that no verified access ever traps, while a seeded off-by-one bug
    panics at exactly the access Flux rejects.

    Run with: [dune exec examples/interp_demo.exe] *)

module Checker = Flux_check.Checker
module Workloads = Flux_workloads.Workloads
open Flux_interp

let vint n = Interp.VInt n
let vref v = Interp.VRefCell (ref v)
let ivec xs = Interp.VVec (Interp.vec_of_list (List.map vint xs))
let fvec xs =
  Interp.VVec (Interp.vec_of_list (List.map (fun f -> Interp.VFloat f) xs))

let () =
  Format.printf "=== Verified programs do not get stuck ===@.";
  let b = Option.get (Workloads.find "bsearch") in
  let r =
    Interp.run_source b.Workloads.bm_flux "bsearch"
      [ vint 7; vref (ivec [ 1; 3; 5; 7; 9 ]) ]
  in
  Format.printf "  bsearch 7 [1;3;5;7;9] = %a@." Interp.pp_value r;
  let b = Option.get (Workloads.find "heapsort") in
  let v = Interp.vec_of_list (List.map (fun f -> Interp.VFloat f) [ 9.0; 2.0; 7.0; 1.0 ]) in
  let _ = Interp.run_source b.Workloads.bm_flux "heapsort" [ vref (Interp.VVec v) ] in
  Format.printf "  heapsort [9;2;7;1] = %a@." Interp.pp_value (Interp.VVec v);
  let b = Option.get (Workloads.find "dotprod") in
  let r =
    Interp.run_source b.Workloads.bm_flux "dotprod"
      [ vref (fvec [ 1.0; 2.0; 3.0 ]); vref (fvec [ 4.0; 5.0; 6.0 ]) ]
  in
  Format.printf "  dotprod = %a@." Interp.pp_value r;

  Format.printf "@.=== A buggy variant panics exactly where Flux points ===@.";
  let buggy =
    {|#[lr::sig(fn(&RVec<f32, @n>) -> f32)]
      fn sum(v: &RVec<f32>) -> f32 {
          let mut s = 0.0;
          let mut i = 0;
          while i <= v.len() {
              s = s + *v.get(i);
              i += 1;
          }
          s
      }|}
  in
  let report = Checker.check_source buggy in
  List.iter
    (fun e -> Format.printf "  flux: %a@." Checker.pp_error e)
    (Checker.report_errors report);
  (match
     Interp.run_source buggy "sum" [ vref (fvec [ 1.0; 2.0 ]) ]
   with
  | exception Interp.Panic msg -> Format.printf "  runtime: panicked: %s@." msg
  | _ -> failwith "expected a panic");
  Format.printf "@.interp_demo: done.@."
