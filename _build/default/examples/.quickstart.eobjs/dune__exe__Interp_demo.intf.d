examples/interp_demo.mli:
