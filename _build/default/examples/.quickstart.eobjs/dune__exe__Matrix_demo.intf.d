examples/matrix_demo.mli:
