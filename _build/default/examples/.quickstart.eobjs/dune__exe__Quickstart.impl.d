examples/quickstart.ml: Flux_check Flux_fixpoint Format List
