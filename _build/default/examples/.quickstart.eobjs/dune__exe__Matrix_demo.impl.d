examples/matrix_demo.ml: Flux_check Flux_interp Flux_syntax Flux_workloads Format Interp List Option
