examples/quickstart.mli:
