examples/interp_demo.ml: Flux_check Flux_interp Flux_workloads Format Interp List Option
