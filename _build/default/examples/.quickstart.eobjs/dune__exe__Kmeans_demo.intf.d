examples/kmeans_demo.mli:
