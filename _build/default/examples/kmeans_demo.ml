(** The paper's motivating workload (fig. 2): k-means clustering over
    n-dimensional points as nested refined vectors.

    The demo (1) verifies the full k-means implementation with Flux —
    no loop invariants written — and (2) actually runs it with the MIR
    interpreter on a small 2-d dataset, printing the final centers.

    Run with: [dune exec examples/kmeans_demo.exe] *)

module Checker = Flux_check.Checker
module Workloads = Flux_workloads.Workloads
open Flux_interp

let () =
  let b = Option.get (Workloads.find "kmeans") in
  Format.printf "=== Verifying kmeans (nested RVec<RVec<f32, n>, k>) ===@.";
  let report = Checker.check_source b.Workloads.bm_flux in
  List.iter
    (fun (fr : Checker.fn_report) ->
      Format.printf "  %-20s %s  (%.3fs)@." fr.fr_name
        (if Checker.fn_ok fr then "verified" else "REJECTED")
        fr.fr_time)
    report.Checker.rp_fns;
  assert (Checker.report_ok report);
  Format.printf "@.=== Running kmeans on a 2-d dataset ===@.";
  let point xs = Interp.VVec (Interp.vec_of_list (List.map (fun f -> Interp.VFloat f) xs)) in
  let points =
    Interp.vec_of_list
      (List.map point
         [
           [ 0.0; 0.1 ]; [ 0.2; 0.0 ]; [ 0.1; 0.2 ];     (* cluster A *)
           [ 5.0; 5.1 ]; [ 5.2; 4.9 ]; [ 4.9; 5.0 ];     (* cluster B *)
         ])
  in
  let centers = Interp.vec_of_list [ point [ 1.0; 1.0 ]; point [ 4.0; 4.0 ] ] in
  let prog = Flux_syntax.Parser.parse_program b.Workloads.bm_flux in
  Flux_syntax.Typeck.check_program prog;
  let _ =
    Interp.run_fn prog "kmeans"
      [
        Interp.VInt 2;
        Interp.VRefCell (ref (Interp.VVec centers));
        Interp.VRefCell (ref (Interp.VVec points));
        Interp.VInt 10;
      ]
  in
  Format.printf "  final centers: %a@." Interp.pp_value (Interp.VVec centers);
  Format.printf "@.kmeans_demo: done.@."
