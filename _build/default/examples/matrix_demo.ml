(** Fig. 4 of the paper: a user-defined refined matrix built on RVec
    via [#[lr::refined_by]] / [#[lr::field]], plus the simplex solver
    from the evaluation both verified and executed.

    Run with: [dune exec examples/matrix_demo.exe] *)

module Checker = Flux_check.Checker
module Workloads = Flux_workloads.Workloads
open Flux_interp

let () =
  let b = Option.get (Workloads.find "simplex") in
  Format.printf "=== Verifying RMat + simplex ===@.";
  let report = Checker.check_source b.Workloads.bm_flux in
  List.iter
    (fun (fr : Checker.fn_report) ->
      Format.printf "  %-20s %s  (%.3fs)@." fr.fr_name
        (if Checker.fn_ok fr then "verified" else "REJECTED")
        fr.fr_time)
    report.Checker.rp_fns;
  assert (Checker.report_ok report);
  (* Solve: maximize 3x + 2y subject to x + y <= 4, x + 3y <= 6
     as a standard simplex tableau (row 0 = objective, last column =
     rhs, slack columns included). Optimum: x=4, y=0, objective 12. *)
  Format.printf "@.=== Running simplex on a small LP ===@.";
  let prog = Flux_syntax.Parser.parse_program b.Workloads.bm_flux in
  Flux_syntax.Typeck.check_program prog;
  let m = 3 and n = 5 in
  let mat =
    Interp.run_fn prog "mat_zeros" [ Interp.VInt m; Interp.VInt n ]
  in
  let set i j v =
    ignore
      (Interp.run_fn prog "RMat::set"
         [ Interp.VRefCell (ref mat); Interp.VInt i; Interp.VInt j; Interp.VFloat v ])
  in
  (* row 0: -3x -2y (minimized negated objective) *)
  set 0 1 (-3.0);
  set 0 2 (-2.0);
  (* row 1: x + y + s1 = 4 *)
  set 1 1 1.0;
  set 1 2 1.0;
  set 1 3 1.0;
  set 1 4 4.0;
  (* row 2: x + 3y + s2 = 6 *)
  set 2 1 1.0;
  set 2 2 3.0;
  set 2 3 0.0;
  set 2 4 6.0;
  let obj =
    Interp.run_fn prog "simplex" [ Interp.VRefCell (ref mat); Interp.VInt 16 ]
  in
  Format.printf "  objective value cell after pivoting: %a@." Interp.pp_value obj;
  Format.printf "  final tableau: %a@." Interp.pp_value mat;
  Format.printf "@.matrix_demo: done.@."
