(** Tests for the lint subsystem ([lib/analysis]) and the generic MIR
    dataflow framework: each seeded defect in [examples/lint/] fires
    its pass exactly once, the 7 Table-1 workloads produce zero
    findings under {e every} pass, a warm-cache lint hits everything
    without a single SMT query, lint results are jobs-invariant, and
    the CLI surfaces (exit codes, JSON, the [--dump-solution] cache
    note) behave as documented. *)

module Lint = Flux_analysis.Lint
module Passes = Flux_analysis.Passes
module Checker = Flux_check.Checker
module Genv = Flux_check.Genv
module Ir = Flux_mir.Ir
module Dataflow = Flux_mir.Dataflow
module Liveness = Flux_mir.Liveness
module Profile = Flux_smt.Profile
module Ast = Flux_syntax.Ast
module Workloads = Flux_workloads.Workloads

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let seed name = read_file (Filename.concat "../examples/lint" name)

let tmp_counter = ref 0

let fresh_cache_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flux-lint-cache-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let lint ?(jobs = 1) ?(cache_dir = None) ?(passes = Passes.all_passes) src =
  Lint.lint_source { Lint.jobs; cache_dir; passes } src

let diag_strings (r : Lint.run) : string list =
  List.map
    (fun d -> Format.asprintf "%a" Lint.pp_diag d)
    (Lint.run_diags r)

let sl = Alcotest.(list string)

(* ------------------------------------------------------------------ *)
(* Seeded defects: one finding each, from the right pass               *)
(* ------------------------------------------------------------------ *)

let seeds =
  [
    ("vacuous.rs", "vacuity");
    ("unreachable.rs", "unreachable");
    ("trivial.rs", "trivial-refinement");
    ("dead_store.rs", "dead-store");
    ("div_zero.rs", "div-by-zero");
    ("index_oob.rs", "index-bounds");
    ("overflow.rs", "overflow");
  ]

let seed_tests =
  List.map
    (fun (file, pass) ->
      Alcotest.test_case
        (Printf.sprintf "%s fires %s exactly once" file pass)
        `Quick
        (fun () ->
          let r = lint (seed file) in
          let diags = Lint.run_diags r in
          Alcotest.(check int)
            (file ^ " yields exactly one finding under every pass")
            1 (List.length diags);
          Alcotest.(check string)
            (file ^ " finding comes from the seeded pass")
            pass
            (List.hd diags).Passes.d_pass))
    seeds

let overflow_allow_by_default =
  Alcotest.test_case "overflow is allow-by-default" `Quick (fun () ->
      let r = lint ~passes:Passes.default_passes (seed "overflow.rs") in
      Alcotest.(check int) "default pass set reports nothing" 0
        (List.length (Lint.run_diags r));
      Alcotest.(check bool) "overflow not in the default set" false
        (List.mem "overflow" Passes.default_passes))

(* ------------------------------------------------------------------ *)
(* Workloads: clean under every pass; warm lints are query-free        *)
(* ------------------------------------------------------------------ *)

let workloads_clean_and_warm =
  Alcotest.test_case
    "workloads lint clean; warm lint all-hit with zero queries" `Slow
    (fun () ->
      let dir = fresh_cache_dir () in
      List.iter
        (fun (b : Workloads.benchmark) ->
          let r = lint ~cache_dir:(Some dir) b.Workloads.bm_flux in
          Alcotest.(check sl)
            (b.Workloads.bm_name ^ " has zero findings")
            [] (diag_strings r))
        Workloads.all;
      (* Warm pass: drop domain-local verifier state, re-lint, and
         demand full hits without a single SMT query. *)
      Flux_smt.Term.reset_intern ();
      Flux_smt.Solver.clear_cache ();
      Flux_smt.Solver.reset_stats ();
      Flux_fixpoint.Solve.reset_stats ();
      Profile.reset ();
      List.iter
        (fun (b : Workloads.benchmark) ->
          let r = lint ~cache_dir:(Some dir) b.Workloads.bm_flux in
          Alcotest.(check int)
            (b.Workloads.bm_name ^ " warm lint misses nothing")
            0 r.Lint.lr_misses;
          Alcotest.(check sl)
            (b.Workloads.bm_name ^ " warm lint stays clean")
            [] (diag_strings r))
        Workloads.all;
      let queries =
        match List.assoc_opt "solver.queries" (Profile.snapshot ()) with
        | Some (n, _, _) -> n
        | None -> 0
      in
      Alcotest.(check int) "warm lint issues zero solver queries" 0 queries)

let lint_jobs_invariant =
  Alcotest.test_case "findings identical across job counts" `Quick (fun () ->
      let srcs = [ seed "dead_store.rs"; seed "unreachable.rs" ] in
      let base =
        List.map (fun s -> diag_strings (lint ~jobs:1 s)) srcs
      in
      List.iter
        (fun jobs ->
          let got = List.map (fun s -> diag_strings (lint ~jobs s)) srcs in
          Alcotest.(check (list sl))
            (Printf.sprintf "jobs=%d matches jobs=1" jobs)
            base got)
        [ 2; -2 ])

(* ------------------------------------------------------------------ *)
(* The dataflow framework                                              *)
(* ------------------------------------------------------------------ *)

let lower_fn src name : Genv.t * Ast.fn_def * Ir.body =
  let prog = Flux_syntax.Parser.parse_program src in
  Flux_syntax.Typeck.check_program prog;
  let genv = Genv.build prog in
  let fd =
    List.find
      (fun (fd : Ast.fn_def) -> fd.Ast.fn_name = name)
      (Ast.program_fns prog)
  in
  match Genv.find_body genv name with
  | Some body -> (genv, fd, body)
  | None -> Alcotest.fail ("no body for " ^ name)

(* A forward reachability instance: block_in is true iff some path from
   the entry reaches the block. Must agree exactly with the checker's
   structurally-dead list. *)
module Reach = Dataflow.Make (struct
  type t = bool

  let direction = `Forward
  let init _ = true
  let bottom _ = false
  let join = ( || )
  let equal = Bool.equal
  let transfer_stmt _ f _ = f
  let transfer_term _ f _ = f
end)

let forward_reachability_matches_checker =
  Alcotest.test_case "forward instance agrees with the checker" `Quick
    (fun () ->
      let src =
        {|
#[lr::sig(fn(i32) -> i32)]
fn early(x: i32) -> i32 {
    if x < 0 {
        return 0;
    }
    return x;
}
|}
      in
      let genv, fd, body = lower_fn src "early" in
      let r = Reach.run body in
      let unreachable_blocks =
        List.filter
          (fun bb -> not r.Reach.block_in.(bb))
          (List.init (Array.length body.Ir.mb_blocks) Fun.id)
      in
      let _, li = Checker.check_body_lint genv fd body in
      Alcotest.(check (list int))
        "dataflow reachability = checker dead blocks"
        li.Checker.li_dead_blocks unreachable_blocks)

let stmt_liveness_replay =
  Alcotest.test_case "per-statement liveness finds the dead store" `Quick
    (fun () ->
      let _, _, body = lower_fn (seed "dead_store.rs") "wasted" in
      let x =
        let found = ref (-1) in
        Array.iteri
          (fun i (d : Ir.local_decl) -> if d.Ir.ld_name = "x" then found := i)
          body.Ir.mb_locals;
        !found
      in
      Alcotest.(check bool) "local x exists" true (x >= 0);
      let live = Liveness.compute body in
      let after_flags = ref [] in
      Array.iteri
        (fun bb _ ->
          List.iter
            (fun (s, _before, after) ->
              match s with
              | Ir.SAssign (dest, _, _)
                when dest.Ir.projs = [] && dest.Ir.base = x ->
                  after_flags := after.(x) :: !after_flags
              | _ -> ())
            (Liveness.stmt_liveness live ~block:bb))
        body.Ir.mb_blocks;
      (* `let mut x = 0;` is dead (overwritten unread); `x = n;` is
         live (read by the return). *)
      Alcotest.(check (list bool))
        "live-after per assignment to x" [ false; true ]
        (List.rev !after_flags))

(* ------------------------------------------------------------------ *)
(* CLI behaviour                                                       *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(** Run the [flux] binary, returning (exit code, stdout, stderr). *)
let run_flux args =
  let out = Filename.temp_file "flux-test" ".out" in
  let err = Filename.temp_file "flux-test" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "../bin/flux.exe %s > %s 2> %s" args
         (Filename.quote out) (Filename.quote err))
  in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout, stderr)

let cli_dump_solution_note =
  Alcotest.test_case "--dump-solution notes the disabled cache" `Quick
    (fun () ->
      let code, _, err =
        run_flux "check --dump-solution ../examples/programs/init_zeros.rs"
      in
      Alcotest.(check int) "clean program verifies" 0 code;
      Alcotest.(check bool) "stderr carries the note" true
        (contains ~sub:"--dump-solution disables the verification cache" err);
      let code2, _, err2 =
        run_flux
          "check --dump-solution --no-cache \
           ../examples/programs/init_zeros.rs"
      in
      Alcotest.(check int) "still verifies without a cache" 0 code2;
      Alcotest.(check bool) "no note when the cache is off anyway" false
        (contains ~sub:"disables the verification cache" err2))

let cli_lint_exit_codes =
  Alcotest.test_case "lint exit codes and JSON report" `Quick (fun () ->
      let code, out, _ =
        run_flux "lint --no-cache ../examples/programs/init_zeros.rs"
      in
      Alcotest.(check int) "clean file exits 0" 0 code;
      Alcotest.(check bool) "footer reports zero findings" true
        (contains ~sub:"0 finding(s)" out);
      let code, out, _ =
        run_flux "lint --format json --no-cache ../examples/lint/dead_store.rs"
      in
      Alcotest.(check int) "findings exit 1" 1 code;
      Alcotest.(check bool) "JSON names the pass" true
        (contains ~sub:"\"pass\": \"dead-store\"" out);
      Alcotest.(check bool) "JSON marks the run dirty" true
        (contains ~sub:"\"clean\": false" out);
      let code, _, err = run_flux "lint --pass nonsense ../examples/lint/dead_store.rs" in
      Alcotest.(check int) "unknown pass exits 2" 2 code;
      Alcotest.(check bool) "unknown pass named on stderr" true
        (contains ~sub:"unknown lint pass" err))

let tests =
  ( "analysis",
    seed_tests
    @ [
        overflow_allow_by_default;
        workloads_clean_and_warm;
        lint_jobs_invariant;
        forward_reachability_matches_checker;
        stmt_liveness_replay;
        cli_dump_solution_note;
        cli_lint_exit_codes;
      ] )
