(** Certificate emission and independent replay.

    The important property is the {e meta}-soundness one: the replay
    checker must accept everything the honest solver certifies and
    reject every tampered or mutant certificate with a distinct error —
    never accept. *)

open Flux_smt
module Replay = Flux_cert.Replay

let v = Term.var
let x = v "x"
let y = v "y"
let z = v "z"

let error_kind = function
  | Replay.Bad_sexp _ -> "bad-sexp"
  | Replay.Bad_fresh _ -> "bad-fresh"
  | Replay.Bad_def _ -> "bad-def"
  | Replay.Skeleton_mismatch _ -> "skeleton-mismatch"
  | Replay.Bad_tree _ -> "bad-tree"
  | Replay.Bad_refutation _ -> "bad-refutation"
  | Replay.Goal_falsified _ -> "goal-falsified"

let result_str = function
  | Ok () -> "ok"
  | Error e -> error_kind e

let certify_exn name t =
  match Solver.certify t with
  | Some p -> p
  | None -> Alcotest.failf "%s: no certificate for a valid goal" name

(* valid goals exercising every elaboration feature a certificate can
   record: pure propositional, FM with tightening, equalities,
   disequality splits, div/mod linearization, ite naming, opaque
   products (commutativity), Ackermann congruence *)
let valid_pool =
  [
    ("excluded middle", Term.(mk_or [ le x y; gt x y ]));
    ("transitivity", Term.(mk_imp (mk_and [ lt x y; le y z ]) (lt x z)));
    ( "tightening",
      Term.(mk_imp (mk_and [ lt (int 0) x; lt x (int 2) ]) (eq x (int 1))) );
    ( "eq substitution",
      Term.(mk_imp (mk_and [ eq x y; lt y z ]) (lt x z)) );
    ( "diseq split",
      Term.(mk_imp (mk_and [ ne x y; ge x y ]) (gt x y)) );
    ( "div lower bound",
      Term.(mk_imp (ge x (int 0)) (ge (div x (int 2)) (int 0))) );
    ( "div strict bound",
      Term.(mk_imp (gt x (int 0)) (lt (div x (int 2)) x)) );
    ( "mod range",
      Term.(
        mk_imp (ge x (int 0))
          (mk_and [ ge (md x (int 3)) (int 0); lt (md x (int 3)) (int 3) ])) );
    ( "ite bound",
      Term.(
        mk_imp (le x y) (le x (ite (lt x y) y x))) );
    ( "product commutes",
      Term.(mk_eq (mul x y) (mul y x)) );
    ( "congruence",
      Term.(mk_imp (mk_eq x y) (mk_eq (app "f" [ x ]) (app "f" [ y ]))) );
    ( "unit propagation",
      Term.(
        mk_imp
          (mk_and [ mk_or [ lt x y; mk_eq x y ]; ge x y ])
          (mk_eq x y)) );
  ]

let roundtrip_tests =
  List.map
    (fun (name, t) ->
      Alcotest.test_case name `Quick (fun () ->
          let p = certify_exn name t in
          Alcotest.(check bool) "goal recorded" true (Term.equal p.Proof.goal t);
          Alcotest.(check string)
            "replay accepts" "ok"
            (result_str (Replay.check ~goal:t p));
          (* text round trip through the on-disk format *)
          Alcotest.(check string)
            "replay accepts after round trip" "ok"
            (result_str (Replay.check_string ~goal:t (Proof.to_string p)))))
    valid_pool

let invalid_pool =
  [
    ("open comparison", Term.(lt x y));
    ("wrong direction", Term.(mk_imp (lt x y) (lt y x)));
    ("bad div", Term.(mk_imp (gt x (int 0)) (gt (div x (int 2)) (int 0))));
  ]

let no_cert_tests =
  List.map
    (fun (name, t) ->
      Alcotest.test_case name `Quick (fun () ->
          Alcotest.(check bool)
            "no certificate for invalid goal" true
            (Solver.certify t = None)))
    invalid_pool

(* ------------------------------------------------------------------ *)
(* Tampering: every mutation must be rejected, each for its own reason *)
(* ------------------------------------------------------------------ *)

(** Negate the first Farkas multiplier in the tree (the classic way an
    unsound solver would "prove" the impossible). *)
let flip_multiplier (p : Proof.t) : Proof.t option =
  let hit = ref false in
  let step = function
    | Proof.Comb ((k, s) :: rest) when not !hit ->
        hit := true;
        Proof.Comb ((-k, s) :: rest)
    | s -> s
  in
  let rec trefut = function
    | Proof.Steps ss -> Proof.Steps (List.map step ss)
    | Proof.Dsplit (i, l, r) -> Proof.Dsplit (i, trefut l, trefut r)
  in
  let rec tree = function
    | Proof.Split (i, l, r) -> Proof.Split (i, tree l, tree r)
    | Proof.Unit (i, pol, t) -> Proof.Unit (i, pol, tree t)
    | Proof.BoolLeaf -> Proof.BoolLeaf
    | Proof.TheoryLeaf tr -> Proof.TheoryLeaf (trefut tr)
  in
  let t = tree p.Proof.tree in
  if !hit then Some { p with Proof.tree = t } else None

let transitivity = Term.(mk_imp (mk_and [ lt x y; le y z ]) (lt x z))
let divgoal = Term.(mk_imp (ge x (int 0)) (ge (div x (int 2)) (int 0)))

let tamper_tests =
  [
    Alcotest.test_case "corrupt sexp" `Quick (fun () ->
        Alcotest.(check string)
          "rejected" "bad-sexp"
          (result_str (Replay.check_string "((proof")));
    Alcotest.test_case "truncated sexp" `Quick (fun () ->
        let p = certify_exn "transitivity" transitivity in
        let s = Proof.to_string p in
        let s = String.sub s 0 (String.length s - 10) in
        Alcotest.(check string)
          "rejected" "bad-sexp"
          (result_str (Replay.check_string s)));
    Alcotest.test_case "flipped multiplier" `Quick (fun () ->
        let p = certify_exn "transitivity" transitivity in
        match flip_multiplier p with
        | None -> Alcotest.fail "expected a Farkas combination to tamper with"
        | Some p' ->
            Alcotest.(check string)
              "rejected" "bad-refutation"
              (result_str (Replay.check p')));
    Alcotest.test_case "dropped fresh fact" `Quick (fun () ->
        let p = certify_exn "div" divgoal in
        Alcotest.(check bool) "has fresh facts" true (p.Proof.fresh <> []);
        let p' = { p with Proof.fresh = List.tl p.Proof.fresh } in
        let r = Replay.check p' in
        Alcotest.(check bool)
          (Printf.sprintf "rejected (%s)" (result_str r))
          true
          (match r with
          | Error (Replay.Bad_def _ | Replay.Skeleton_mismatch _) -> true
          | _ -> false));
    Alcotest.test_case "dropped def" `Quick (fun () ->
        (* removing a def weakens the refuted conjunction: the tree may
           no longer close. The divisor range facts are load-bearing for
           this goal, so the refutation must break. *)
        let p = certify_exn "div" divgoal in
        Alcotest.(check bool) "has defs" true (List.length p.Proof.defs >= 2);
        let p' = { p with Proof.defs = List.tl p.Proof.defs } in
        Alcotest.(check bool)
          "not accepted" true
          (Replay.check p' <> Ok ()));
    Alcotest.test_case "swapped goal" `Quick (fun () ->
        let p = certify_exn "transitivity" transitivity in
        let bogus = Term.(lt x y) in
        let p' = { p with Proof.goal = bogus } in
        let r = Replay.check ~goal:bogus p' in
        Alcotest.(check bool)
          (Printf.sprintf "rejected (%s)" (result_str r))
          true
          (match r with
          | Error (Replay.Skeleton_mismatch _ | Replay.Goal_falsified _) ->
              true
          | _ -> false));
    Alcotest.test_case "unsound divmod mutant" `Quick (fun () ->
        (* a solver mutant using Euclidean instead of truncated division
           semantics would emit these defs; replay must refuse to accept
           facts the fresh story does not license *)
        let p = certify_exn "div" divgoal in
        let q =
          List.find_map
            (function Proof.Divmod (_, _, q) -> Some q | _ -> None)
            p.Proof.fresh
        in
        match q with
        | None -> Alcotest.fail "expected a divmod fresh fact"
        | Some q ->
            let qv = Term.var ~sort:Sort.Int q in
            let euclid = Term.(ge (sub x (mul (int 2) qv)) (int 0)) in
            let p' = { p with Proof.defs = euclid :: p.Proof.defs } in
            Alcotest.(check string)
              "rejected" "bad-def"
              (result_str (Replay.check p')));
    Alcotest.test_case "truncated tree" `Quick (fun () ->
        let p = certify_exn "transitivity" transitivity in
        let p' = { p with Proof.tree = Proof.BoolLeaf } in
        let r = Replay.check p' in
        Alcotest.(check bool)
          (Printf.sprintf "rejected (%s)" (result_str r))
          true
          (match r with Error (Replay.Bad_tree _) -> true | _ -> false));
    Alcotest.test_case "captured fresh name" `Quick (fun () ->
        let p = certify_exn "div" divgoal in
        let rename = function
          | Proof.Divmod (a, c, _) -> Proof.Divmod (a, c, "x")
          | f -> f
        in
        let p' = { p with Proof.fresh = List.map rename p.Proof.fresh } in
        let r = Replay.check p' in
        Alcotest.(check bool)
          (Printf.sprintf "rejected (%s)" (result_str r))
          true
          (match r with
          | Error (Replay.Bad_fresh _ | Replay.Skeleton_mismatch _) -> true
          | _ -> false));
  ]

(* ------------------------------------------------------------------ *)
(* Models and counterexamples                                          *)
(* ------------------------------------------------------------------ *)

let eval_with env t =
  let lookup x =
    match List.assoc_opt x env with
    | Some v -> v
    | None -> Eval.VInt 0
  in
  Eval.eval_bool lookup t

let model_tests =
  [
    Alcotest.test_case "model satisfies" `Quick (fun () ->
        let t = Term.(mk_and [ lt x y; lt y z; gt x (int 10) ]) in
        match Solver.model t with
        | None -> Alcotest.fail "expected a model"
        | Some env ->
            Alcotest.(check bool) "model evaluates true" true (eval_with env t));
    Alcotest.test_case "counterexample falsifies" `Quick (fun () ->
        let t = Term.(mk_imp (ge x (int 0)) (ge (sub x (int 1)) (int 0))) in
        match Solver.counterexample t with
        | None -> Alcotest.fail "expected a counterexample"
        | Some env ->
            Alcotest.(check bool)
              "witness falsifies goal" false (eval_with env t));
    Alcotest.test_case "counterexample with divmod" `Quick (fun () ->
        let t = Term.(mk_imp (gt x (int 0)) (gt (div x (int 2)) (int 0))) in
        match Solver.counterexample t with
        | None -> Alcotest.fail "expected a counterexample"
        | Some env ->
            Alcotest.(check bool)
              "witness falsifies goal" false (eval_with env t));
    Alcotest.test_case "no counterexample for valid" `Quick (fun () ->
        let t = Term.(mk_imp (lt x y) (le x y)) in
        Alcotest.(check bool)
          "valid goal has no counterexample" true
          (Solver.counterexample t = None));
    Alcotest.test_case "no model for unsat" `Quick (fun () ->
        let t = Term.(mk_and [ lt x y; lt y x ]) in
        Alcotest.(check bool) "unsat has no model" true (Solver.model t = None));
  ]

let tests =
  ( "cert",
    roundtrip_tests @ no_cert_tests @ tamper_tests @ model_tests )
