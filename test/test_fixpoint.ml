(** Tests for the Horn constraint solver: the paper's worked examples
    (§4.2 loop inference, §4.3 polymorphic instantiation) and structural
    properties of solving. *)

open Flux_smt
open Flux_fixpoint

let mkk name params = Horn.{ kname = name; kparams = params; kvalues = 1 }

let solution_entails sol k (goal : Term.t) (formals : (string * Sort.t) list) =
  match Hashtbl.find_opt sol k with
  | None -> false
  | Some conjuncts ->
      ignore formals;
      Solver.entails conjuncts goal

(** §4.2: init_zeros loop — the solver must find κ(b,c) := b = c. *)
let test_init_zeros () =
  let k = mkk "k" [ ("b", Sort.Int); ("c", Sort.Int) ] in
  let open Term in
  let c =
    Horn.conj
      [
        Horn.CHead (Horn.Kapp ("k", [ int 0; int 0 ]), 1);
        Horn.CBind
          ( "j",
            Sort.Int,
            [ Horn.Kapp ("k", [ var "j"; var "j" ]) ],
            Horn.CBind
              ( "n",
                Sort.Int,
                [],
                Horn.CGuard
                  ( lt (var "j") (var "n"),
                    Horn.CHead
                      ( Horn.Kapp
                          ("k", [ add (var "j") (int 1); add (var "j") (int 1) ]),
                        2 ) ) ) );
        Horn.CBind
          ( "b",
            Sort.Int,
            [],
            Horn.CBind
              ( "c",
                Sort.Int,
                [ Horn.Kapp ("k", [ var "b"; var "c" ]) ],
                Horn.CBind
                  ( "n",
                    Sort.Int,
                    [],
                    Horn.CGuard
                      ( eq (var "b") (var "n"),
                        Horn.CHead (Horn.Conc (eq (var "c") (var "n")), 3) ) ) )
          );
      ]
  in
  match Solve.solve ~kvars:[ k ] c with
  | Solve.Sat sol ->
      Alcotest.(check bool)
        "solution entails b = c" true
        (solution_entails sol "k"
           Term.(eq (var "b") (var "c"))
           k.Horn.kparams)
  | Solve.Unsat _ -> Alcotest.fail "expected SAT"

(** §4.3: make_vec — κ₁(ν) ⇒ κ₂(ν), ν = 42 ⇒ κ₂(ν), κ₂(ν) ⇒ ν > 0. *)
let test_make_vec () =
  let k1 = mkk "k1" [ ("v", Sort.Int) ] in
  let k2 = mkk "k2" [ ("v", Sort.Int) ] in
  let open Term in
  let c =
    Horn.conj
      [
        Horn.CBind
          ( "v",
            Sort.Int,
            [ Horn.Kapp ("k1", [ var "v" ]) ],
            Horn.CHead (Horn.Kapp ("k2", [ var "v" ]), 1) );
        Horn.CBind
          ( "v",
            Sort.Int,
            [ Horn.Conc (eq (var "v") (int 42)) ],
            Horn.CHead (Horn.Kapp ("k2", [ var "v" ]), 2) );
        Horn.CBind
          ( "v",
            Sort.Int,
            [ Horn.Kapp ("k2", [ var "v" ]) ],
            Horn.CHead (Horn.Conc (gt (var "v") (int 0)), 3) );
      ]
  in
  match Solve.solve ~kvars:[ k1; k2 ] c with
  | Solve.Sat sol ->
      Alcotest.(check bool)
        "κ2 entails v > 0" true
        (solution_entails sol "k2" Term.(gt (var "v") (int 0)) k2.Horn.kparams)
  | Solve.Unsat _ -> Alcotest.fail "expected SAT"

(** An unsatisfiable system reports the failing tag. *)
let test_unsat_tags () =
  let open Term in
  let c =
    Horn.conj
      [
        Horn.CBind
          ( "x",
            Sort.Int,
            [ Horn.Conc (ge (var "x") (int 0)) ],
            Horn.CHead (Horn.Conc (gt (var "x") (int 0)), 42) );
      ]
  in
  match Solve.solve ~kvars:[] c with
  | Solve.Sat _ -> Alcotest.fail "expected UNSAT"
  | Solve.Unsat (fails, _) ->
      Alcotest.(check (list int)) "tags" [ 42 ]
        (List.map (fun f -> f.Solve.f_tag) fails)

(** A κ with no constraints keeps its full (strongest) instantiation. *)
let test_unconstrained_kvar () =
  let k = mkk "k" [ ("v", Sort.Int); ("x", Sort.Int) ] in
  match Solve.solve ~kvars:[ k ] Horn.CTrue with
  | Solve.Sat sol ->
      Alcotest.(check bool)
        "strongest solution retained" true
        (List.length (Hashtbl.find sol "k") > 0)
  | Solve.Unsat _ -> Alcotest.fail "expected SAT"

(** Multi-value κs (struct indices) constrain every value position. *)
let test_multi_value_kvar () =
  let k =
    Horn.{ kname = "k"; kparams = [ ("a", Sort.Int); ("b", Sort.Int); ("m", Sort.Int) ]; kvalues = 2 }
  in
  let open Term in
  let c =
    Horn.conj
      [
        Horn.CBind
          ( "m",
            Sort.Int,
            [],
            Horn.CHead (Horn.Kapp ("k", [ var "m"; add (var "m") (int 1); var "m" ]), 1)
          );
        Horn.CBind
          ( "a",
            Sort.Int,
            [],
            Horn.CBind
              ( "b",
                Sort.Int,
                [],
                Horn.CBind
                  ( "m",
                    Sort.Int,
                    [ Horn.Kapp ("k", [ var "a"; var "b"; var "m" ]) ],
                    Horn.CHead (Horn.Conc (eq (var "b") (add (var "m") (int 1))), 2)
                  ) ) );
      ]
  in
  match Solve.solve ~kvars:[ k ] c with
  | Solve.Sat _ -> ()
  | Solve.Unsat (fails, _) ->
      Alcotest.failf "expected SAT, failed tags %s"
        (String.concat "," (List.map (fun f -> string_of_int f.Solve.f_tag) fails))

(** Qualifier instantiation produces only well-scoped predicates. *)
let test_qualifier_scope () =
  let params = [ ("v", Sort.Int); ("a", Sort.Int); ("b", Sort.Bool) ] in
  let insts = Qualifier.instantiate_all Qualifier.default params in
  List.iter
    (fun q ->
      Term.VarSet.iter
        (fun x ->
          if not (List.mem_assoc x params) then
            Alcotest.failf "out-of-scope variable %s in %s" x (Term.to_string q))
        (Term.free_vars q))
    insts;
  Alcotest.(check bool) "nonempty" true (List.length insts > 5)

(** Qualifier rotation: a second value position gets instances too. *)
let test_qualifier_rotation () =
  let params = [ ("v1", Sort.Int); ("v2", Sort.Int); ("m", Sort.Int) ] in
  let insts = Qualifier.instantiate_all ~values:2 Qualifier.default params in
  let mentions_v2_first =
    List.exists
      (fun q ->
        match q with
        | Term.Cmp (_, Term.Var ("v2", _), _) | Term.Eq (Term.Var ("v2", _), _) ->
            true
        | _ -> false)
      insts
  in
  Alcotest.(check bool) "v2 constrained" true mentions_v2_first

(** Flattening preserves the number of heads. *)
let test_flatten () =
  let open Term in
  let c =
    Horn.CBind
      ( "x",
        Sort.Int,
        [ Horn.Conc (ge (var "x") (int 0)) ],
        Horn.CAnd
          [
            Horn.CHead (Horn.Conc (ge (var "x") (int 0)), 1);
            Horn.CGuard
              (lt (var "x") (int 10), Horn.CHead (Horn.Conc Term.tt, 2));
          ] )
  in
  let clauses = Horn.flatten c in
  Alcotest.(check int) "two clauses" 2 (List.length clauses);
  let c1 = List.nth clauses 0 in
  Alcotest.(check int) "binder count" 1 (List.length c1.Horn.binders)

(* ------------------------------------------------------------------ *)
(* κ-dependency graph and the incremental schedule                     *)
(* ------------------------------------------------------------------ *)

let clause binders hyps head tag = Horn.{ binders; hyps; head; tag }

(** Chain κ1 → κ2 plus a 2-cycle {κ3, κ4}: three SCCs, laid out
    dependencies-first with the cycle collapsed into one slice. *)
let test_kgraph_sccs () =
  let open Term in
  let kv n = mkk n [ ("v", Sort.Int) ] in
  let kvars = [ kv "k1"; kv "k2"; kv "k3"; kv "k4" ] in
  let b = [ ("v", Sort.Int) ] in
  let clauses =
    [
      clause b
        [ Horn.Conc (ge (var "v") (int 0)) ]
        (Horn.Kapp ("k1", [ var "v" ]))
        1;
      clause b
        [ Horn.Kapp ("k1", [ var "v" ]) ]
        (Horn.Kapp ("k2", [ var "v" ]))
        2;
      clause b
        [ Horn.Kapp ("k3", [ var "v" ]) ]
        (Horn.Kapp ("k4", [ var "v" ]))
        3;
      clause b
        [ Horn.Kapp ("k4", [ var "v" ]) ]
        (Horn.Kapp ("k3", [ var "v" ]))
        4;
      clause b
        [ Horn.Conc (gt (var "v") (int 3)) ]
        (Horn.Kapp ("k3", [ var "v" ]))
        5;
      clause b
        [ Horn.Kapp ("k2", [ var "v" ]) ]
        (Horn.Conc (ge (var "v") (int 0)))
        6;
    ]
  in
  let g = Kgraph.build ~kvars clauses in
  Alcotest.(check int) "three SCCs" 3 g.Kgraph.n_sccs;
  Alcotest.(check int) "four slices incl. root" 4 (Array.length g.Kgraph.slices);
  let slice_of k = Hashtbl.find g.Kgraph.scc_of k in
  let s1 = slice_of "k1" and s2 = slice_of "k2" in
  Alcotest.(check bool) "k1's slice precedes k2's" true (s1 < s2);
  Alcotest.(check bool)
    "the κ3/κ4 cycle shares a slice" true
    (slice_of "k3" = slice_of "k4");
  let sl1 = g.Kgraph.slices.(s1) and sl2 = g.Kgraph.slices.(s2) in
  Alcotest.(check bool)
    "k2's level is above k1's" true
    (sl2.Kgraph.sl_level > sl1.Kgraph.sl_level);
  Alcotest.(check (list string)) "k2 reads k1" [ "k1" ] sl2.Kgraph.sl_ext_kvars;
  (* a concrete-head clause lands on the slice of its last κ hypothesis *)
  Alcotest.(check (list int))
    "concrete clause scheduled on k2's slice" [ 5 ]
    (List.map fst sl2.Kgraph.sl_cclauses)

(** Regression: a clause whose {e head} applies an undeclared κ must
    raise under both schedules — the old silent ⊤ default made the
    clause vacuously valid and masked the missing declaration. *)
let test_unbound_head_kvar () =
  let open Term in
  let cl =
    clause
      [ ("x", Sort.Int) ]
      [ Horn.Conc (ge (var "x") (int 0)) ]
      (Horn.Kapp ("ghost", [ var "x" ]))
      1
  in
  Alcotest.check_raises "full schedule raises" (Solve.Unbound_kvar "ghost")
    (fun () -> ignore (Solve.solve_clauses_full ~kvars:[] [ cl ]));
  Alcotest.check_raises "incremental schedule raises"
    (Solve.Unbound_kvar "ghost") (fun () ->
      ignore (Solve.solve_clauses_incremental ~kvars:[] [ cl ]))

(** An undeclared κ in {e hypothesis} position still defaults to ⊤ —
    dropping it only weakens the left-hand side, which is sound. The
    clause below is unprovable once the ghost hypothesis is ⊤, so both
    schedules must report Unsat rather than raise (or verify). *)
let test_unbound_hyp_kvar_top () =
  let open Term in
  let cl =
    clause
      [ ("x", Sort.Int) ]
      [ Horn.Kapp ("ghost", [ var "x" ]) ]
      (Horn.Conc (ge (var "x") (int 0)))
      7
  in
  let run name solve =
    match solve () with
    | Solve.Unsat (fails, _) ->
        Alcotest.(check (list int))
          name [ 7 ]
          (List.map (fun f -> f.Solve.f_tag) fails)
    | Solve.Sat _ -> Alcotest.failf "%s: expected UNSAT under the ⊤ default" name
  in
  run "full" (fun () -> Solve.solve_clauses_full ~kvars:[] [ cl ]);
  run "incremental" (fun () ->
      Solve.solve_clauses_incremental ~kvars:[] [ cl ])

let tests =
  ( "fixpoint",
    [
      Alcotest.test_case "init_zeros (§4.2)" `Quick test_init_zeros;
      Alcotest.test_case "make_vec (§4.3)" `Quick test_make_vec;
      Alcotest.test_case "unsat tags" `Quick test_unsat_tags;
      Alcotest.test_case "unconstrained kvar" `Quick test_unconstrained_kvar;
      Alcotest.test_case "multi-value kvar" `Quick test_multi_value_kvar;
      Alcotest.test_case "qualifier scoping" `Quick test_qualifier_scope;
      Alcotest.test_case "qualifier rotation" `Quick test_qualifier_rotation;
      Alcotest.test_case "flatten" `Quick test_flatten;
      Alcotest.test_case "kgraph SCC layout" `Quick test_kgraph_sccs;
      Alcotest.test_case "unbound head κ raises" `Quick test_unbound_head_kvar;
      Alcotest.test_case "unbound hypothesis κ is ⊤" `Quick
        test_unbound_hyp_kvar_top;
    ] )
