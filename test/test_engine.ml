(** Tests for the verification engine: parallel determinism (identical
    verdicts, errors, and κ/clause counts for any [--jobs] value) and
    persistent-cache behaviour (full warm hits, exact invalidation of a
    changed callee and its callers, replay across fresh solver/intern
    state). *)

module Checker = Flux_check.Checker
module Wp = Flux_wp.Wp
module Engine = Flux_engine.Engine
module Profile = Flux_smt.Profile
module Workloads = Flux_workloads.Workloads

let tmp_counter = ref 0

(** A fresh empty cache directory per test. *)
let fresh_cache_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flux-test-cache-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  dir

(** The observable result of one function's check, time excluded (time
    is inherently nondeterministic; everything else must be exact). *)
let fingerprint (fr : Checker.fn_report) : string =
  Format.asprintf "%s|%b|%d|%d|%s" fr.Checker.fr_name (Checker.fn_ok fr)
    fr.Checker.fr_kvars fr.Checker.fr_clauses
    (String.concat ";"
       (List.map
          (fun e -> Format.asprintf "%a" Checker.pp_error e)
          fr.Checker.fr_errors))

let run_fingerprints (r : Engine.run) : string list =
  List.map (fun o -> fingerprint o.Engine.fo_report) r.Engine.run_fns

let cached_flags (r : Engine.run) : (string * bool) list =
  List.map
    (fun o -> (o.Engine.fo_report.Checker.fr_name, o.Engine.fo_cached))
    r.Engine.run_fns

(* ------------------------------------------------------------------ *)
(* Parallel determinism                                                *)
(* ------------------------------------------------------------------ *)

let sl = Alcotest.(list string)

(* Negative job counts force that many real domains past the
   core-count clamp (see [Pool.run]), so these tests exercise genuine
   multi-domain runs even on single-core CI machines. *)
let jobs_grid = [ 1; 2; -2; -8 ]

let pp_jobs jobs =
  if jobs < 0 then Printf.sprintf "%d forced domains" (-jobs)
  else Printf.sprintf "--jobs %d" jobs

(** Engine runs, sequential and multi-domain, must match the plain
    sequential checker byte for byte on every observable field. *)
let parallel_determinism name src =
  Alcotest.test_case (name ^ " identical across job counts") `Slow (fun () ->
      let seq = Checker.check_source src in
      let seq_fps = List.map fingerprint seq.Checker.rp_fns in
      List.iter
        (fun jobs ->
          let run = Engine.check_source { Engine.jobs; cache_dir = None } src in
          Alcotest.(check sl)
            (Printf.sprintf "%s at %s" name (pp_jobs jobs))
            seq_fps (run_fingerprints run))
        jobs_grid)

let workload_determinism name =
  let b = Option.get (Workloads.find name) in
  parallel_determinism name b.Workloads.bm_flux

(* A failing program: parallel error reports must also be identical. *)
let failing_src =
  {|
#[lr::sig(fn(&RVec<i32, @n>, usize) -> i32)]
fn get_unchecked(v: &RVec<i32>, i: usize) -> i32 {
    *v.get(i)
}

#[lr::sig(fn(&RVec<i32, @n>) -> i32 requires 0 < n)]
fn first(v: &RVec<i32>) -> i32 {
    *v.get(0)
}
|}

let wp_parallel_determinism =
  Alcotest.test_case "wp identical across job counts" `Slow (fun () ->
      let b = Option.get (Workloads.find "dotprod") in
      let src = b.Workloads.bm_prusti in
      let fp (fr : Wp.fn_report) =
        Format.asprintf "%s|%b|%d|%s" fr.Wp.fr_name (Wp.fn_ok fr) fr.Wp.fr_vcs
          (String.concat ";"
             (List.map (fun e -> Format.asprintf "%a" Wp.pp_error e) fr.Wp.fr_errors))
      in
      let seq = Wp.verify_source src in
      let seq_fps = List.map fp seq.Wp.rp_fns in
      List.iter
        (fun jobs ->
          let run = Engine.verify_source { Engine.jobs; cache_dir = None } src in
          Alcotest.(check sl)
            (Printf.sprintf "wp dotprod at %s" (pp_jobs jobs))
            seq_fps
            (List.map (fun o -> fp o.Engine.wo_report) run.Engine.wr_fns))
        jobs_grid)

(* ------------------------------------------------------------------ *)
(* Cache invalidation                                                  *)
(* ------------------------------------------------------------------ *)

(* [f] is called by [g]; [h] is independent. *)
let cache_src_v1 =
  {|
#[lr::sig(fn(usize<@n>) -> usize{v: n <= v})]
fn f(n: usize) -> usize {
    n + 1
}

#[lr::sig(fn(usize<@n>) -> usize{v: n <= v})]
fn g(n: usize) -> usize {
    f(n)
}

#[lr::sig(fn(usize<@n>) -> usize{v: v <= n})]
fn h(n: usize) -> usize {
    n - n
}
|}

(* Same program with [f]'s signature strengthened: [f] and its caller
   [g] must re-verify; [h] must still hit. *)
let cache_src_sig_edit =
  {|
#[lr::sig(fn(usize<@n>) -> usize{v: n < v})]
fn f(n: usize) -> usize {
    n + 1
}

#[lr::sig(fn(usize<@n>) -> usize{v: n <= v})]
fn g(n: usize) -> usize {
    f(n)
}

#[lr::sig(fn(usize<@n>) -> usize{v: v <= n})]
fn h(n: usize) -> usize {
    n - n
}
|}

(* Same program with only [f]'s body changed: callers depend on [f]'s
   signature alone, so exactly [f] re-verifies. *)
let cache_src_body_edit =
  {|
#[lr::sig(fn(usize<@n>) -> usize{v: n <= v})]
fn f(n: usize) -> usize {
    n + 2
}

#[lr::sig(fn(usize<@n>) -> usize{v: n <= v})]
fn g(n: usize) -> usize {
    f(n)
}

#[lr::sig(fn(usize<@n>) -> usize{v: v <= n})]
fn h(n: usize) -> usize {
    n - n
}
|}

(* v1 with a comment and blank lines prepended: every span moves, no
   content changes — fingerprints are span-insensitive, so all hits. *)
let cache_src_shifted = "// a comment\n\n\n" ^ cache_src_v1

let flags = Alcotest.(list (pair string bool))

let check_with dir src =
  Engine.check_source { Engine.jobs = 1; cache_dir = Some dir } src

let cache_warm_hits =
  Alcotest.test_case "warm rerun is 100% cache hits" `Quick (fun () ->
      let dir = fresh_cache_dir () in
      let cold = check_with dir cache_src_v1 in
      Alcotest.(check bool) "cold run verifies" true (Engine.run_ok cold);
      Alcotest.(check flags) "cold run misses everything"
        [ ("f", false); ("g", false); ("h", false) ]
        (cached_flags cold);
      let warm = check_with dir cache_src_v1 in
      Alcotest.(check bool) "warm run verifies" true (Engine.run_ok warm);
      Alcotest.(check flags) "warm run hits everything"
        [ ("f", true); ("g", true); ("h", true) ]
        (cached_flags warm);
      Alcotest.(check sl) "warm reports equal cold reports (sans solutions)"
        (run_fingerprints cold) (run_fingerprints warm))

let cache_sig_invalidation =
  Alcotest.test_case "sig edit re-verifies exactly callee + callers" `Quick
    (fun () ->
      let dir = fresh_cache_dir () in
      let _ = check_with dir cache_src_v1 in
      let edited = check_with dir cache_src_sig_edit in
      Alcotest.(check bool) "edited program verifies" true (Engine.run_ok edited);
      Alcotest.(check flags)
        "f (edited) and g (caller of f) re-verify; h hits"
        [ ("f", false); ("g", false); ("h", true) ]
        (cached_flags edited))

let cache_body_invalidation =
  Alcotest.test_case "body edit re-verifies exactly that function" `Quick
    (fun () ->
      let dir = fresh_cache_dir () in
      let _ = check_with dir cache_src_v1 in
      let edited = check_with dir cache_src_body_edit in
      Alcotest.(check bool) "edited program verifies" true (Engine.run_ok edited);
      Alcotest.(check flags)
        "only f re-verifies; g and h hit"
        [ ("f", false); ("g", true); ("h", true) ]
        (cached_flags edited))

let cache_span_insensitive =
  Alcotest.test_case "moving code invalidates nothing" `Quick (fun () ->
      let dir = fresh_cache_dir () in
      let _ = check_with dir cache_src_v1 in
      let shifted = check_with dir cache_src_shifted in
      Alcotest.(check flags) "shifted program hits everything"
        [ ("f", true); ("g", true); ("h", true) ]
        (cached_flags shifted))

let cache_fresh_state =
  Alcotest.test_case "replays across fresh solver/intern state" `Quick
    (fun () ->
      (* Approximates a cross-process rerun in-process: drop every piece
         of domain-local verifier state a new executable would lack (the
         CI smoke job exercises the real two-process case). *)
      let dir = fresh_cache_dir () in
      let cold = check_with dir cache_src_v1 in
      Alcotest.(check bool) "cold run verifies" true (Engine.run_ok cold);
      Flux_smt.Term.reset_intern ();
      Flux_smt.Solver.clear_cache ();
      Flux_smt.Solver.reset_stats ();
      Flux_fixpoint.Solve.reset_stats ();
      Profile.reset ();
      let warm = check_with dir cache_src_v1 in
      Alcotest.(check flags) "rerun hits everything"
        [ ("f", true); ("g", true); ("h", true) ]
        (cached_flags warm);
      let queries =
        match List.assoc_opt "solver.queries" (Profile.snapshot ()) with
        | Some (n, _, _) -> n
        | None -> 0
      in
      Alcotest.(check int) "warm run issues no solver queries" 0 queries)

let cache_disabled =
  Alcotest.test_case "--no-cache never hits" `Quick (fun () ->
      let r1 =
        Engine.check_source { Engine.jobs = 1; cache_dir = None } cache_src_v1
      in
      let r2 =
        Engine.check_source { Engine.jobs = 1; cache_dir = None } cache_src_v1
      in
      Alcotest.(check int) "no hits without a cache dir" 0
        (r1.Engine.run_hits + r2.Engine.run_hits))

let cache_failing_not_stored =
  Alcotest.test_case "failing functions are never cached" `Quick (fun () ->
      let dir = fresh_cache_dir () in
      let r1 = check_with dir failing_src in
      Alcotest.(check bool) "program fails" false (Engine.run_ok r1);
      let r2 = check_with dir failing_src in
      (* [first] is provably safe and caches; [get_unchecked] fails and
         must be re-checked (its errors re-derived, not replayed). *)
      Alcotest.(check flags) "failing fn misses, passing fn hits"
        [ ("get_unchecked", false); ("first", true) ]
        (cached_flags r2);
      Alcotest.(check sl) "identical reports on rerun" (run_fingerprints r1)
        (run_fingerprints r2))

(* ------------------------------------------------------------------ *)
(* Slice cache: a spec edit replays the unaffected κ-SCCs              *)
(* ------------------------------------------------------------------ *)

(* Two sequential loops: the second loop's join κ depends on the
   first's, so they land in distinct SCC slices; the return
   postcondition only reaches the later slice's concrete clauses. *)
let two_phase_src ret =
  Printf.sprintf
    {|
#[lr::sig(fn(usize<@n>) -> usize{v: %s})]
fn two_phase(n: usize) -> usize {
    let mut i = 0;
    let mut s = 0;
    while i < n {
        i += 1;
        s += 1;
    }
    let mut j = 0;
    while j < s {
        j += 1;
    }
    j
}
|}
    ret

let counter key =
  match List.assoc_opt key (Profile.snapshot ()) with
  | Some (n, _, _) -> n
  | None -> 0

let cache_slice_reuse =
  Alcotest.test_case "spec edit replays unchanged κ-slices" `Quick (fun () ->
      let v1 = two_phase_src "0 <= v" in
      let v2 = two_phase_src "v <= n" in
      (* baseline: how much weakening an uncached check of v2 does *)
      Profile.reset ();
      let cold =
        Engine.check_source { Engine.jobs = 1; cache_dir = None } v2
      in
      Alcotest.(check bool) "v2 verifies" true (Engine.run_ok cold);
      let cold_weaken = counter "fixpoint.weaken_checks" in
      Alcotest.(check bool) "uncached run weakens" true (cold_weaken > 0);
      (* warm the slice cache with v1, then check the edited spec: the
         function-level entry misses (sig changed) but the first loop's
         SCC is untouched and must replay from the slice cache, so the
         edited run re-weakens strictly less than from scratch *)
      let dir = fresh_cache_dir () in
      let _ = check_with dir v1 in
      Profile.reset ();
      let warm = check_with dir v2 in
      Alcotest.(check bool) "edited program verifies" true (Engine.run_ok warm);
      Alcotest.(check flags) "the edited function itself re-checks"
        [ ("two_phase", false) ]
        (cached_flags warm);
      Alcotest.(check bool) "unchanged slices replay from the cache" true
        (counter "cache.slice_hits" >= 1);
      let warm_weaken = counter "fixpoint.weaken_checks" in
      if warm_weaken >= cold_weaken then
        Alcotest.failf
          "spec edit re-weakened everything: %d checks warm vs %d cold"
          warm_weaken cold_weaken)

(* ------------------------------------------------------------------ *)
(* Profile JSON typing (the [_s]-key satellite fix)                    *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let profile_json_types =
  Alcotest.test_case "timers always serialize as floats" `Quick (fun () ->
      Profile.reset ();
      Profile.add_time "zero_timer_s" 0.0;
      Profile.incr "plain_counter";
      Profile.time "real_timer_s" (fun () -> ());
      let json = Profile.to_json () in
      Profile.reset ();
      Alcotest.(check bool)
        "a 0.0-second timer renders as a float, not its count" true
        (contains ~sub:"\"zero_timer_s\": 0.000000" json);
      Alcotest.(check bool)
        "counters still render as integers" true
        (contains ~sub:"\"plain_counter\": 1" json);
      Alcotest.(check bool)
        "timed cells never fall back to counts" false
        (contains ~sub:"\"real_timer_s\": 1" json))

let profile_capture_absorb =
  Alcotest.test_case "capture/absorb merges counters and timers" `Quick
    (fun () ->
      Profile.reset ();
      Profile.incr "c";
      Profile.add_time "t_s" 0.5;
      let cap = Profile.capture () in
      Profile.reset ();
      Profile.incr "c";
      Profile.absorb cap;
      let c, t =
        ( List.assoc_opt "c" (Profile.snapshot ()),
          List.assoc_opt "t_s" (Profile.snapshot ()) )
      in
      Profile.reset ();
      (match c with
      | Some (2, _, false) -> ()
      | _ -> Alcotest.fail "expected counter c = 2 (untimed)");
      match t with
      | Some (1, v, true) when abs_float (v -. 0.5) < 1e-9 -> ()
      | _ -> Alcotest.fail "expected timer t_s = 0.5s (timed)")

let tests =
  ( "engine",
    [
      profile_json_types;
      profile_capture_absorb;
      cache_warm_hits;
      cache_sig_invalidation;
      cache_body_invalidation;
      cache_span_insensitive;
      cache_fresh_state;
      cache_disabled;
      cache_failing_not_stored;
      cache_slice_reuse;
      parallel_determinism "failing-program" failing_src;
      wp_parallel_determinism;
      workload_determinism "dotprod";
      workload_determinism "bsearch";
      workload_determinism "heapsort";
      workload_determinism "kmp";
    ] )
