(** Test-suite entry point. *)

let () =
  Alcotest.run "flux"
    [
      Test_smt.tests;
      Test_cert.tests;
      Test_fixpoint.tests;
      Test_syntax.tests;
      Test_mir.tests;
      Test_rtype.tests;
      Test_check.tests;
      Test_wp.tests;
      Test_interp.tests;
      Test_loc.tests;
      Test_soundness.tests;
      Test_soundness.divmod_tests;
      Test_workloads.tests;
      Test_engine.tests;
      Test_incremental.tests;
      Test_analysis.tests;
      Test_absint.tests;
      Test_fuzz.tests;
      Test_server.tests;
    ]
