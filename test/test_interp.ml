(** Tests for the MIR interpreter, plus the empirical stuck-freedom
    property (Theorem 3.2): programs accepted by the Flux checker never
    panic on verified accesses, across randomized inputs. *)

open Flux_interp
module Workloads = Flux_workloads.Workloads

let vint n = Interp.VInt n
let vfloat f = Interp.VFloat f
let vref v = Interp.VRefCell (ref v)
let ivec xs = Interp.VVec (Interp.vec_of_list (List.map vint xs))
let fvec xs = Interp.VVec (Interp.vec_of_list (List.map vfloat xs))

let run name src fname args = ignore name; Interp.run_source src fname args

let unit_tests =
  [
    Alcotest.test_case "arith and loops" `Quick (fun () ->
        let r =
          Interp.run_source
            "fn tri(n: i32) -> i32 { let mut s = 0; let mut i = 0; while i < n { i += 1; s += i; } s }"
            "tri" [ vint 10 ]
        in
        Alcotest.(check bool) "55" true (Interp.value_eq r (vint 55)));
    Alcotest.test_case "vector push/pop/get" `Quick (fun () ->
        let r =
          Interp.run_source
            "fn f() -> i32 { let mut v: RVec<i32> = RVec::new(); v.push(1); v.push(2); v.push(3); v.pop() + *v.get(0) }"
            "f" []
        in
        Alcotest.(check bool) "4" true (Interp.value_eq r (vint 4)));
    Alcotest.test_case "mutation through references" `Quick (fun () ->
        let v = Interp.vec_of_list [ vfloat 1.0; vfloat 2.0 ] in
        let _ =
          Interp.run_source
            "fn f(v: &mut RVec<f32>) { *v.get_mut(0) = *v.get(1); }" "f"
            [ vref (Interp.VVec v) ]
        in
        Alcotest.(check bool) "copied" true
          (Interp.value_eq (Interp.vec_get v 0) (vfloat 2.0)));
    Alcotest.test_case "out of bounds panics" `Quick (fun () ->
        match
          Interp.run_source "fn f(v: &RVec<i32>) -> i32 { *v.get(5) }" "f"
            [ vref (ivec [ 1 ]) ]
        with
        | exception Interp.Panic _ -> ()
        | _ -> Alcotest.fail "expected a panic");
    Alcotest.test_case "struct fields" `Quick (fun () ->
        let r =
          Interp.run_source
            "struct P { a: i32, b: i32 }\nfn f() -> i32 { let p = P { a: 3, b: 4 }; p.a + p.b }"
            "f" []
        in
        Alcotest.(check bool) "7" true (Interp.value_eq r (vint 7)));
    Alcotest.test_case "early return" `Quick (fun () ->
        let r =
          Interp.run_source
            "fn f(x: i32) -> i32 { if x < 0 { return 0 - x; } x * 2 }" "f"
            [ vint (-5) ]
        in
        Alcotest.(check bool) "5" true (Interp.value_eq r (vint 5)));
    Alcotest.test_case "short-circuit avoids the panic" `Quick (fun () ->
        let r =
          Interp.run_source
            "fn f(v: &RVec<i32>, i: usize) -> bool { i < v.len() && 0 < *v.get(i) }"
            "f"
            [ vref (ivec [ 1 ]); vint 7 ]
        in
        Alcotest.(check bool) "false without panic" true
          (Interp.value_eq r (Interp.VBool false)));
    Alcotest.test_case "fuel bounds divergence" `Quick (fun () ->
        match
          Interp.run_source ~fuel:1000 "fn f() { while true { } }" "f" []
        with
        | exception Interp.Out_of_fuel -> ()
        | _ -> Alcotest.fail "expected to run out of fuel");
  ]

(* ---------------- benchmark behaviour ---------------- *)

let bench_tests =
  [
    Alcotest.test_case "bsearch agrees with linear search" `Quick (fun () ->
        let b = Option.get (Workloads.find "bsearch") in
        let sorted = [ 2; 4; 6; 8; 10; 12 ] in
        List.iter
          (fun k ->
            let expected =
              match List.find_index (fun x -> x = k) sorted with
              | Some i -> i
              | None -> List.length sorted
            in
            let r =
              run "bsearch" b.Workloads.bm_flux "bsearch"
                [ vint k; vref (ivec sorted) ]
            in
            (* any position with the right element is acceptable, or len *)
            match r with
            | Interp.VInt i when i = expected -> ()
            | Interp.VInt i
              when i < List.length sorted && List.nth sorted i = k ->
                ()
            | Interp.VInt i when i = List.length sorted && not (List.mem k sorted)
              ->
                ()
            | v ->
                Alcotest.failf "bsearch %d -> %s" k
                  (Format.asprintf "%a" Interp.pp_value v))
          [ 2; 5; 12; 13; 1 ]);
    Alcotest.test_case "heapsort sorts" `Quick (fun () ->
        let b = Option.get (Workloads.find "heapsort") in
        let v = Interp.vec_of_list (List.map vfloat [ 5.0; 1.0; 4.0; 2.0; 3.0 ]) in
        let _ = run "heapsort" b.Workloads.bm_flux "heapsort" [ vref (Interp.VVec v) ] in
        for i = 0 to v.Interp.len - 2 do
          match (Interp.vec_get v i, Interp.vec_get v (i + 1)) with
          | Interp.VFloat a, Interp.VFloat b ->
              if a > b then Alcotest.fail "not sorted"
          | _ -> Alcotest.fail "not floats"
        done);
    Alcotest.test_case "kmp finds the needle" `Quick (fun () ->
        let b = Option.get (Workloads.find "kmp") in
        let r =
          run "kmp" b.Workloads.bm_flux "kmp_search"
            [ vref (ivec [ 9; 9; 1; 2; 3; 9 ]); vref (ivec [ 1; 2; 3 ]) ]
        in
        Alcotest.(check bool) "found at 2" true (Interp.value_eq r (vint 2)));
    Alcotest.test_case "kmp misses gracefully" `Quick (fun () ->
        let b = Option.get (Workloads.find "kmp") in
        let r =
          run "kmp" b.Workloads.bm_flux "kmp_search"
            [ vref (ivec [ 1; 1; 1 ]); vref (ivec [ 2 ]) ]
        in
        Alcotest.(check bool) "returns n" true (Interp.value_eq r (vint 3)));
    Alcotest.test_case "dotprod computes" `Quick (fun () ->
        let b = Option.get (Workloads.find "dotprod") in
        let r =
          run "dotprod" b.Workloads.bm_flux "dotprod"
            [ vref (fvec [ 1.0; 2.0 ]); vref (fvec [ 3.0; 4.0 ]) ]
        in
        Alcotest.(check bool) "11" true (Interp.value_eq r (vfloat 11.0)));
    Alcotest.test_case "fft runs in bounds" `Quick (fun () ->
        let b = Option.get (Workloads.find "fft") in
        let r = run "fft" b.Workloads.bm_flux "fft_test" [ vint 8 ] in
        Alcotest.(check bool) "size" true (Interp.value_eq r (vint 9)));
  ]

(* ---------------- stuck freedom (Theorem 3.2, empirically) ---------- *)

(** Random vectors in, no panic out: every benchmark verified by Flux
    runs without hitting a bounds violation. *)
let gen_ints = QCheck.Gen.(list_size (int_range 1 12) (int_range (-5) 5))
let gen_floats =
  QCheck.Gen.(list_size (int_range 1 10) (map float_of_int (int_range (-9) 9)))

let no_panic f =
  try
    ignore (f ());
    true
  with
  | Interp.Panic msg -> QCheck.Test.fail_reportf "panicked: %s" msg
  | Interp.Out_of_fuel -> true

let stuck_freedom =
  [
    QCheck.Test.make ~name:"bsearch never panics" ~count:60
      (QCheck.make QCheck.Gen.(pair gen_ints (int_range (-10) 10)))
      (fun (xs, k) ->
        let b = Option.get (Workloads.find "bsearch") in
        let sorted = List.sort_uniq compare xs in
        no_panic (fun () ->
            run "bsearch" b.Workloads.bm_flux "bsearch"
              [ vint k; vref (ivec sorted) ]));
    QCheck.Test.make ~name:"heapsort never panics" ~count:60
      (QCheck.make gen_floats) (fun xs ->
        let b = Option.get (Workloads.find "heapsort") in
        no_panic (fun () ->
            run "heapsort" b.Workloads.bm_flux "heapsort"
              [ vref (fvec xs) ]));
    QCheck.Test.make ~name:"kmp never panics" ~count:60
      (QCheck.make QCheck.Gen.(pair gen_ints gen_ints))
      (fun (text, pat) ->
        let b = Option.get (Workloads.find "kmp") in
        let pat = match pat with [] -> [ 1 ] | p -> p in
        no_panic (fun () ->
            run "kmp" b.Workloads.bm_flux "kmp_search"
              [ vref (ivec text); vref (ivec pat) ]));
    QCheck.Test.make ~name:"kmeans never panics" ~count:20
      (QCheck.make QCheck.Gen.(pair (int_range 1 4) (int_range 1 4)))
      (fun (n, k) ->
        let b = Option.get (Workloads.find "kmeans") in
        let point i = fvec (List.init n (fun j -> float_of_int ((i * j) mod 5))) in
        let centers = Interp.vec_of_list (List.init k point) in
        let points = Interp.vec_of_list (List.init 6 point) in
        no_panic (fun () ->
            run "kmeans" b.Workloads.bm_flux "kmeans"
              [
                vint n;
                vref (Interp.VVec centers);
                vref (Interp.VVec points);
                vint 3;
              ]));
    QCheck.Test.make ~name:"fft never panics" ~count:20
      (QCheck.make QCheck.Gen.(int_range 2 32))
      (fun n ->
        let b = Option.get (Workloads.find "fft") in
        no_panic (fun () -> run "fft" b.Workloads.bm_flux "fft_test" [ vint n ]));
  ]

(* ---------------- typed outcomes and exhaustive div/mod ------------- *)

(** [Interp.run] classifies every termination mode without exceptions:
    values, faults (panic/stuck) and fuel exhaustion are distinct —
    the soundness fuzz oracle depends on divergence never being
    reported as a fault. *)
let parse_checked src =
  let p = Flux_syntax.Parser.parse_program src in
  Flux_syntax.Typeck.check_program p;
  p

let divmod_prog =
  parse_checked
    "fn d(a: i32, b: i32) -> i32 { a / b }\n\
     fn m(a: i32, b: i32) -> i32 { a % b }"

let outcome_tests =
  [
    Alcotest.test_case "run returns OValue" `Quick (fun () ->
        match Interp.run divmod_prog "d" [ vint 7; vint 2 ] with
        | Interp.OValue v ->
            Alcotest.(check bool) "3" true (Interp.value_eq v (vint 3))
        | o -> Alcotest.failf "expected a value, got %a" Interp.pp_outcome o);
    Alcotest.test_case "division by zero is OFault, not an exception" `Quick
      (fun () ->
        match Interp.run divmod_prog "d" [ vint 1; vint 0 ] with
        | Interp.OFault _ -> ()
        | o -> Alcotest.failf "expected a fault, got %a" Interp.pp_outcome o);
    Alcotest.test_case "out-of-bounds access is OFault" `Quick (fun () ->
        let p = parse_checked "fn f(v: &RVec<i32>) -> i32 { *v.get(5) }" in
        match Interp.run p "f" [ vref (ivec [ 1 ]) ] with
        | Interp.OFault _ -> ()
        | o -> Alcotest.failf "expected a fault, got %a" Interp.pp_outcome o);
    Alcotest.test_case "fuel exhaustion is ODiverged, not a fault" `Quick
      (fun () ->
        let p = parse_checked "fn f() { while true { } }" in
        match Interp.run ~fuel:1000 p "f" [] with
        | Interp.ODiverged -> ()
        | o -> Alcotest.failf "expected divergence, got %a" Interp.pp_outcome o);
    (* Exhaustive differential check of the interpreter's / and %
       against OCaml's truncated-toward-zero semantics (Rust's), over
       the full box [-8,8] x [-8,8] \ {b = 0}. Guards the Euclidean
       regression at the executable layer. *)
    Alcotest.test_case "div/mod truncate like Rust on [-8,8]^2" `Quick
      (fun () ->
        for a = -8 to 8 do
          for b = -8 to 8 do
            if b <> 0 then begin
              (match Interp.run divmod_prog "d" [ vint a; vint b ] with
              | Interp.OValue v when Interp.value_eq v (vint (a / b)) -> ()
              | o ->
                  Alcotest.failf "%d / %d: expected %d, got %a" a b (a / b)
                    Interp.pp_outcome o);
              match Interp.run divmod_prog "m" [ vint a; vint b ] with
              | Interp.OValue v when Interp.value_eq v (vint (a mod b)) -> ()
              | o ->
                  Alcotest.failf "%d %% %d: expected %d, got %a" a b (a mod b)
                    Interp.pp_outcome o
            end
          done
        done);
  ]

(** Fixed seed for the randomized stuck-freedom suite: reproduce a
    failure with [QCheck_alcotest.to_alcotest ~rand] below. *)
let qcheck_seed = 0x5eed1

let tests =
  ( "interp",
    unit_tests @ outcome_tests @ bench_tests
    @ List.map
        (QCheck_alcotest.to_alcotest
           ~rand:(Random.State.make [| qcheck_seed |]))
        stuck_freedom )
