(** Unit and property tests for the SMT substrate. *)

open Flux_smt

let v = Term.var
let x = v "x"
let y = v "y"
let z = v "z"
let n = v "n"

let check_valid name expected t =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) name expected (Solver.valid t))

let check_sat name expected t =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) name expected (Solver.sat t))

let unit_tests =
  [
    (* propositional *)
    check_valid "excluded middle" true Term.(mk_or [ le x y; gt x y ]);
    check_valid "contradiction invalid" false Term.(mk_and [ le x y; gt x y ]);
    check_sat "simple sat" true Term.(lt x y);
    check_sat "x<y && y<x unsat" false Term.(mk_and [ lt x y; lt y x ]);
    (* transitivity *)
    check_valid "lt-le transitivity" true
      Term.(mk_imp (mk_and [ lt x y; le y n ]) (lt x n));
    check_valid "not symmetric" false Term.(mk_imp (lt x y) (lt y x));
    (* integer tightening *)
    check_valid "0<x<2 => x=1" true
      Term.(mk_imp (mk_and [ lt (int 0) x; lt x (int 2) ]) (eq x (int 1)));
    check_valid "strict to nonstrict" true
      Term.(mk_imp (lt x y) (le (add x (int 1)) y));
    check_sat "no integer between" false
      Term.(mk_and [ lt (int 0) x; lt x (int 1) ]);
    (* equalities and disequalities *)
    check_valid "eq substitution" true
      Term.(mk_imp (mk_and [ eq x y; lt y z ]) (lt x z));
    check_valid "diseq split" true
      Term.(mk_imp (mk_and [ ne x y; ge x y ]) (gt x y));
    check_sat "x!=x unsat" false Term.(ne x x);
    (* division linearization *)
    check_valid "midpoint lower" true
      Term.(
        mk_imp
          (mk_and [ le x y; le (int 0) x ])
          (le x (add x (div (sub y x) (int 2)))));
    check_valid "midpoint strict upper" true
      Term.(
        mk_imp
          (mk_and [ lt x y; le (int 0) x ])
          (lt (add x (div (sub y x) (int 2))) y));
    check_valid "halving positive" true
      Term.(mk_imp (ge x (int 0)) (ge (div x (int 2)) (int 0)));
    check_valid "div by 2 bound" true
      Term.(mk_imp (gt x (int 0)) (lt (div x (int 2)) x));
    (* modulo *)
    check_valid "mod range" true
      Term.(
        mk_imp (ge x (int 0))
          (mk_and [ le (int 0) (md x (int 3)); lt (md x (int 3)) (int 3) ]));
    (* truncated (Rust/OCaml) div/mod on negative dividends: the
       quotient rounds toward zero, the remainder takes the dividend's
       sign. The old Euclidean encoding proved (-7)/2 = -4, which the
       interpreter falsifies. *)
    check_valid "(-7)/2 = -3 (truncated)" true
      Term.(eq (div (int (-7)) (int 2)) (int (-3)));
    check_valid "(-7) mod 2 = -1 (truncated)" true
      Term.(eq (md (int (-7)) (int 2)) (int (-1)));
    check_sat "(-7)/2 = -4 (Euclidean) unsat" false
      Term.(eq (div (int (-7)) (int 2)) (int (-4)));
    check_sat "(-7) mod 2 = 1 (Euclidean) unsat" false
      Term.(eq (md (int (-7)) (int 2)) (int 1));
    check_valid "mod sign follows dividend" true
      Term.(mk_imp (le x (int 0)) (le (md x (int 3)) (int 0)));
    check_valid "mod nonneg needs nonneg dividend" false
      Term.(ge (md x (int 2)) (int 0));
    check_valid "truncated div rounds toward zero" true
      Term.(mk_imp (le x (int 0)) (ge (mul (int 2) (div x (int 2))) x));
    (* booleans *)
    check_valid "bool hypothesis" true
      Term.(mk_imp (mk_and [ bvar "b"; mk_imp (bvar "b") (lt x y) ]) (le x y));
    check_valid "iff reasoning" true
      Term.(mk_imp (mk_and [ mk_iff (bvar "b") (lt x y); bvar "b" ]) (lt x y));
    (* uninterpreted functions: Ackermann congruence *)
    check_valid "congruence" true
      Term.(mk_imp (eq x y) (eq (app "f" [ x ]) (app "f" [ y ])));
    check_valid "no spurious congruence" false
      Term.(eq (app "f" [ x ]) (app "f" [ y ]));
    check_valid "congruence 2-ary" true
      Term.(
        mk_imp
          (mk_and [ eq x y; eq z n ])
          (eq (app "g" [ x; z ]) (app "g" [ y; n ])));
    (* nonlinear abstraction is sound: x*y = x*y *)
    check_valid "nonlinear reflexivity" true Term.(eq (mul x y) (mul x y));
    check_valid "nonlinear unknown" false Term.(ge (mul x x) (int 0));
    (* constant times variable stays linear *)
    check_valid "2x <= 2y from x<=y" true
      Term.(mk_imp (le x y) (le (mul (int 2) x) (mul (int 2) y)));
    (* floats are opaque but consistent *)
    check_valid "float branch consistency" true
      Term.(
        mk_imp
          (mk_and [ Cmp (Lt, real 1.0, v ~sort:Sort.Real "f"); lt x y ])
          (lt x y));
    (* ite lifting: z = min(x,y) implies z <= x *)
    check_valid "ite" true
      Term.(mk_imp (eq z (ite (lt x y) x y)) (mk_and [ le z x; le z y ]));
    (* entailment interface *)
    Alcotest.test_case "entails" `Quick (fun () ->
        Alcotest.(check bool) "yes" true
          (Solver.entails Term.[ le x y; le y z ] Term.(le x z));
        Alcotest.(check bool)
          "sliced" true
          (Solver.entails_sliced
             Term.[ le x y; le y z; lt n (int 0) ]
             Term.(le x z)));
    (* hash-consing: structurally equal smart-constructed terms are
       physically equal, and free_vars memoization agrees with a fresh
       computation *)
    Alcotest.test_case "hash-consing" `Quick (fun () ->
        let t1 = Term.(mk_and [ le x y; eq (add x (int 1)) z ]) in
        let t2 = Term.(mk_and [ le x y; eq (add x (int 1)) z ]) in
        Alcotest.(check bool) "interned phys-eq" true (t1 == t2);
        Alcotest.(check bool) "structural equal agrees" true (Term.equal t1 t2);
        Alcotest.(check bool)
          "hash agrees" true
          (Term.hash t1 = Term.hash t2);
        let fvs = Term.free_vars t1 in
        Alcotest.(check (list string))
          "free vars" [ "x"; "y"; "z" ]
          (Term.VarSet.elements fvs);
        (* memoized result is stable across calls *)
        Alcotest.(check bool)
          "memo stable" true
          (Term.VarSet.equal fvs (Term.free_vars t2)));
  ]

(* ------------------------------------------------------------------ *)
(* Property tests: agreement with brute-force evaluation               *)
(* ------------------------------------------------------------------ *)

let gen_term : Term.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ x; y; z ] in
  let atomg =
    let* a = var in
    let* b = var in
    let* c = int_range (-3) 3 in
    let lhs = Term.add a (Term.int c) in
    oneofl
      [ Term.lt lhs b; Term.le lhs b; Term.eq lhs b; Term.ne lhs b; Term.ge lhs b ]
  in
  fix
    (fun self depth ->
      if depth = 0 then atomg
      else
        frequency
          [
            (3, atomg);
            ( 2,
              map2
                (fun a b -> Term.mk_and [ a; b ])
                (self (depth - 1)) (self (depth - 1)) );
            ( 2,
              map2
                (fun a b -> Term.mk_or [ a; b ])
                (self (depth - 1)) (self (depth - 1)) );
            (1, map Term.mk_not (self (depth - 1)));
            (1, map2 Term.mk_imp (self (depth - 1)) (self (depth - 1)));
          ])
    3

let rec eval_term (env : (string * int) list) (t : Term.t) : int =
  match t with
  | Term.Var (s, _) -> List.assoc s env
  | Term.Int k -> k
  | Term.Binop (Term.Add, a, b) -> eval_term env a + eval_term env b
  | Term.Binop (Term.Sub, a, b) -> eval_term env a - eval_term env b
  | Term.Binop (Term.Mul, a, b) -> eval_term env a * eval_term env b
  | Term.Neg a -> -eval_term env a
  | _ -> failwith "eval_term"

let rec eval_pred (env : (string * int) list) (t : Term.t) : bool =
  match t with
  | Term.Bool b -> b
  | Term.Cmp (op, a, b) -> (
      let a = eval_term env a and b = eval_term env b in
      match op with
      | Term.Lt -> a < b
      | Term.Le -> a <= b
      | Term.Gt -> a > b
      | Term.Ge -> a >= b)
  | Term.Eq (a, b) -> eval_term env a = eval_term env b
  | Term.Ne (a, b) -> eval_term env a <> eval_term env b
  | Term.And ts -> List.for_all (eval_pred env) ts
  | Term.Or ts -> List.exists (eval_pred env) ts
  | Term.Not a -> not (eval_pred env a)
  | Term.Imp (a, b) -> (not (eval_pred env a)) || eval_pred env b
  | Term.Iff (a, b) -> eval_pred env a = eval_pred env b
  | _ -> failwith "eval_pred"

let cube =
  let range = [ -2; -1; 0; 1; 2; 3 ] in
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b -> List.map (fun c -> [ ("x", a); ("y", b); ("z", c) ]) range)
        range)
    range

let prop_validity_sound =
  QCheck.Test.make ~name:"valid formulas have no small counterexample"
    ~count:300 (QCheck.make gen_term) (fun t ->
      if Solver.valid t then List.for_all (fun env -> eval_pred env t) cube
      else true)

let prop_unsat_sound =
  QCheck.Test.make ~name:"unsat formulas have no small model" ~count:300
    (QCheck.make gen_term) (fun t ->
      if not (Solver.sat t) then
        List.for_all (fun env -> not (eval_pred env t)) cube
      else true)

let prop_negation =
  QCheck.Test.make ~name:"valid t implies unsat (not t)" ~count:200
    (QCheck.make gen_term) (fun t ->
      if Solver.valid t then not (Solver.sat (Term.mk_not t)) else true)

let prop_subst_ground =
  QCheck.Test.make ~name:"ground substitution agrees with evaluation"
    ~count:300 (QCheck.make gen_term) (fun t ->
      let env = [ ("x", 1); ("y", -2); ("z", 3) ] in
      let m = List.map (fun (s, k) -> (s, Term.int k)) env in
      match Term.subst m t with
      | Term.Bool b -> b = eval_pred env t
      | t' -> Solver.valid t' = eval_pred env t)

(* Exhaustive differential check of the solver's ground / and %
   against OCaml's truncated-toward-zero semantics (Rust's), over the
   full box [-8,8] x [-8,8] \ {b = 0}: both the claimed quotient and
   every wrong candidate in the box get a definite verdict. Guards the
   Euclidean-encoding regression at the solver layer. *)
let divmod_exhaustive () =
  for a = -8 to 8 do
    for b = -8 to 8 do
      if b <> 0 then begin
        let ta = Term.int a and tb = Term.int b in
        Alcotest.(check bool)
          (Printf.sprintf "%d / %d = %d is valid" a b (a / b))
          true
          (Solver.valid (Term.eq (Term.div ta tb) (Term.int (a / b))));
        Alcotest.(check bool)
          (Printf.sprintf "%d mod %d = %d is valid" a b (a mod b))
          true
          (Solver.valid (Term.eq (Term.md ta tb) (Term.int (a mod b))));
        (* and the Euclidean (always non-negative) remainder, where it
           differs, is definitely refuted *)
        let eucl = ((a mod b) + abs b) mod abs b in
        if eucl <> a mod b then
          Alcotest.(check bool)
            (Printf.sprintf "%d mod %d is not the Euclidean %d" a b eucl)
            false
            (Solver.sat (Term.eq (Term.md ta tb) (Term.int eucl)))
      end
    done
  done

(** Fixed seed for the randomized properties: reproduce a failure by
    re-running with the same constant. *)
let qcheck_seed = 0x5eed2

let tests =
  ( "smt",
    unit_tests
    @ [ Alcotest.test_case "exhaustive div/mod vs truncated semantics" `Quick
          divmod_exhaustive ]
    @ List.map
        (QCheck_alcotest.to_alcotest
           ~rand:(Random.State.make [| qcheck_seed |]))
        [ prop_validity_sound; prop_unsat_sound; prop_negation; prop_subst_ground ]
  )
