(** Tests for [lib/fuzz]: campaign determinism, seeded-bug meta-tests
    (a deliberately broken checker/solver/fixpoint must be caught and
    shrunk), generator/frontend drift, hash-consing invariants,
    printer round-trips, reproducer codecs and corpus replay.

    Every randomized path below derives from an explicit constant seed
    — there is no [Random.self_init] anywhere in the tree — so a
    failure always prints enough to reproduce it exactly. *)

module Fuzz = Flux_fuzz.Fuzz
module Oracle = Flux_fuzz.Oracle
module Rng = Flux_fuzz.Rng
module Tgen = Flux_fuzz.Tgen
module Pgen = Flux_fuzz.Pgen
module Hgen = Flux_fuzz.Hgen
module Repro = Flux_fuzz.Repro
module Ast = Flux_syntax.Ast
open Flux_smt

let cfg ?(seed = 42) oracles budget =
  { Fuzz.default_config with seed; budget; oracles; corpus_dir = None }

(* ------------------------------------------------------------------ *)
(* Campaign determinism and zero bugs on the current tree              *)
(* ------------------------------------------------------------------ *)

(** Two campaigns with identical arguments but different worker counts
    must produce byte-identical fingerprints; and on the current tree
    they must find zero bugs (any bug here is a real soundness/solver
    defect — investigate, don't re-seed). *)
let determinism () =
  let c = cfg Fuzz.all_oracles 1.0 in
  let s1 = Fuzz.run { c with jobs = 1 } in
  let s2 = Fuzz.run { c with jobs = 2 } in
  Alcotest.(check string)
    "fingerprints agree across --jobs" (Fuzz.fingerprint s1)
    (Fuzz.fingerprint s2);
  Alcotest.(check int)
    "zero bugs on the current tree" 0
    (List.length (Fuzz.summary_bugs s1));
  Alcotest.(check bool) "not truncated" false s1.Fuzz.s_truncated

(** A different seed examines different cases: fingerprints differ. *)
let seed_sensitivity () =
  let s1 = Fuzz.run (cfg ~seed:1 [ Fuzz.Solver ] 0.05) in
  let s2 = Fuzz.run (cfg ~seed:2 [ Fuzz.Solver ] 0.05) in
  (* same counts/verdict totals are fine; the guarantee under test is
     that equal seeds agree, which [determinism] pins — here we only
     sanity-check the runs completed with full case counts *)
  List.iter2
    (fun (o1 : Fuzz.oracle_summary) (o2 : Fuzz.oracle_summary) ->
      Alcotest.(check int) "case counts equal" o1.Fuzz.o_cases o2.Fuzz.o_cases)
    s1.Fuzz.s_oracles s2.Fuzz.s_oracles

(* ------------------------------------------------------------------ *)
(* Seeded-bug meta-tests                                               *)
(* ------------------------------------------------------------------ *)

(** The historical div/mod unsoundness, reinstated test-only: rewrite
    every [Mod (a, c)] into its Euclidean remainder
    [((a mod |c|) + |c|) mod |c|] before asking the real solver. The
    broken solver then claims e.g. [y % 3 >= 0] valid, which brute
    force refutes at [y = -1]. *)
let rec euclid (t : Term.t) : Term.t =
  match t with
  | Term.Var _ | Term.Int _ | Term.Real _ | Term.Bool _ -> t
  | Term.Binop (Term.Mod, a, Term.Int c) when c <> 0 ->
      let m = Term.int (abs c) in
      Term.md (Term.add (Term.md (euclid a) m) m) m
  | Term.Binop (op, a, b) -> Term.mk_binop op (euclid a) (euclid b)
  | Term.Neg a -> Term.neg (euclid a)
  | Term.Cmp (op, a, b) -> Term.mk_cmp op (euclid a) (euclid b)
  | Term.Eq (a, b) -> Term.eq (euclid a) (euclid b)
  | Term.Ne (a, b) -> Term.ne (euclid a) (euclid b)
  | Term.And ts -> Term.mk_and (List.map euclid ts)
  | Term.Or ts -> Term.mk_or (List.map euclid ts)
  | Term.Not a -> Term.mk_not (euclid a)
  | Term.Imp (a, b) -> Term.mk_imp (euclid a) (euclid b)
  | Term.Iff (a, b) -> Term.mk_iff (euclid a) (euclid b)
  | Term.Ite (c, a, b) -> Term.ite (euclid c) (euclid a) (euclid b)
  | Term.App (f, ts) -> Term.app f (List.map euclid ts)

let repro_lines (b : Oracle.bug) =
  List.length (String.split_on_char '\n' (String.trim b.Oracle.b_repro))

let solver_euclid_caught () =
  let valid t = Solver.valid (euclid t) in
  let sat t = Solver.sat (euclid t) in
  let s = Fuzz.run ~valid ~sat (cfg [ Fuzz.Solver ] 0.1) in
  match Fuzz.summary_bugs s with
  | [] -> Alcotest.fail "Euclidean mod encoding not caught"
  | b :: _ ->
      (* the shrunk term must still exhibit the mismatch, round-trip
         through the corpus codec, and be tiny *)
      let t = Repro.term_of_string b.Oracle.b_repro in
      Alcotest.(check bool)
        "shrunk term still refutes the broken solver" true
        (Oracle.solver_mismatch ~valid ~sat t <> None);
      Alcotest.(check bool)
        "real solver agrees with brute force on the shrunk term" true
        (Oracle.solver_mismatch ~valid:Solver.valid ~sat:Solver.sat t = None);
      if repro_lines b > 2 then
        Alcotest.failf "reproducer not minimal (%d lines):\n%s"
          (repro_lines b) b.Oracle.b_repro

let soundness_accept_all_caught () =
  (* worst possible checker: verifies everything *)
  let check (_ : Ast.program) = true in
  let s = Fuzz.run ~check (cfg [ Fuzz.Soundness ] 4.0) in
  match Fuzz.summary_bugs s with
  | [] -> Alcotest.fail "accept-everything checker not caught"
  | b :: _ ->
      if repro_lines b > 15 then
        Alcotest.failf "reproducer not shrunk to <= 15 lines (%d):\n%s"
          (repro_lines b) b.Oracle.b_repro;
      (* the reproducer is a well-formed program the real checker does
         not verify (otherwise the bug would be in the current tree) *)
      (match Oracle.parse_and_typecheck b.Oracle.b_repro with
      | None ->
          Alcotest.failf "reproducer does not re-parse:\n%s" b.Oracle.b_repro
      | Some prog ->
          Alcotest.(check bool)
            "real checker rejects the reproducer" false
            (try Oracle.default_check prog with _ -> false))

let fixpoint_top_caught () =
  (* broken solver: always answers Sat with the trivial top solution
     (every kappa := true), which cannot satisfy concrete query heads *)
  let solve ~kvars (_ : Flux_fixpoint.Horn.clause list) =
    let sol : Flux_fixpoint.Solve.solution = Hashtbl.create 8 in
    List.iter
      (fun (kv : Flux_fixpoint.Horn.kvar) ->
        Hashtbl.replace sol kv.Flux_fixpoint.Horn.kname [])
      kvars;
    Flux_fixpoint.Solve.Sat sol
  in
  let s = Fuzz.run ~solve (cfg [ Fuzz.Fixpoint ] 0.05) in
  match Fuzz.summary_bugs s with
  | [] -> Alcotest.fail "top-solution fixpoint solver not caught"
  | b :: _ ->
      let kvars, clauses = Repro.horn_of_string b.Oracle.b_repro in
      Alcotest.(check bool)
        "shrunk system still refutes the broken solver" true
        (Oracle.fixpoint_violation ~solve kvars clauses <> None);
      Alcotest.(check bool)
        "real fixpoint solver passes its self-check on the shrunk system"
        true
        (Oracle.fixpoint_violation ~solve:Oracle.default_solve kvars clauses
        = None)

let cert_goal_swap_caught () =
  (* broken certifier: proves the right thing but stamps the
     certificate with a different goal — the replay checker's goal
     binding must catch the swap *)
  let certify t =
    Option.map
      (fun p -> { p with Proof.goal = Term.bool true })
      (Solver.certify t)
  in
  let s = Fuzz.run ~certify (cfg [ Fuzz.Cert ] 0.05) in
  match Fuzz.summary_bugs s with
  | [] -> Alcotest.fail "goal-swapping certifier not caught"
  | b :: _ ->
      let t = Repro.term_of_string b.Oracle.b_repro in
      Alcotest.(check bool)
        "shrunk term still refutes the broken certifier" true
        (Oracle.cert_violation ~valid:Solver.valid ~certify t <> None);
      Alcotest.(check bool)
        "real certifier passes on the shrunk term" true
        (Oracle.cert_violation ~valid:Solver.valid ~certify:Solver.certify t
        = None)

let counterexample_lying_caught () =
  (* broken model finder: claims the empty assignment falsifies
     everything — ground evaluation must refuse the claim on any term
     that evaluates true under defaults *)
  let counterexample (_ : Term.t) = Some [] in
  let s = Fuzz.run ~counterexample (cfg [ Fuzz.Solver ] 0.05) in
  match Fuzz.summary_bugs s with
  | [] -> Alcotest.fail "lying counterexample finder not caught"
  | b :: _ ->
      let t = Repro.term_of_string b.Oracle.b_repro in
      Alcotest.(check bool)
        "shrunk term still refutes the lying finder" true
        (Oracle.solver_mismatch ~valid:Solver.valid ~sat:Solver.sat
           ~counterexample t
        <> None);
      Alcotest.(check bool)
        "real counterexamples are Eval-confirmed on the shrunk term" true
        (Oracle.solver_mismatch ~valid:Solver.valid ~sat:Solver.sat t = None)

let incremental_lying_caught () =
  (* broken incremental schedule: claims Sat with the empty solution
     table no matter what — diverges from the reference sweep whenever
     the system is Unsat or solves any kappa non-trivially *)
  let incremental ~kvars:(_ : Flux_fixpoint.Horn.kvar list)
      (_ : Flux_fixpoint.Horn.clause list) =
    Flux_fixpoint.Solve.Sat (Hashtbl.create 1)
  in
  let s = Fuzz.run ~incremental (cfg [ Fuzz.Incremental ] 0.1) in
  match Fuzz.summary_bugs s with
  | [] -> Alcotest.fail "lying incremental schedule not caught"
  | b :: _ ->
      let kvars, clauses = Repro.horn_of_string b.Oracle.b_repro in
      Alcotest.(check bool)
        "shrunk system still exposes the broken schedule" true
        (Oracle.incremental_mismatch ~incremental kvars clauses <> None);
      Alcotest.(check bool)
        "real incremental schedule matches the reference on the shrunk system"
        true
        (Oracle.incremental_mismatch ~incremental:Oracle.default_incremental
           kvars clauses
        = None)

(* ------------------------------------------------------------------ *)
(* Generator / frontend drift                                          *)
(* ------------------------------------------------------------------ *)

(** Every generated program must parse and typecheck: a [Frontend]
    verdict means the generator and the grammar drifted apart, which
    silently erodes soundness-oracle coverage. Pinned to zero. *)
let no_frontend_rejects () =
  let root = Rng.make 7 in
  for case = 0 to 79 do
    let src = Pgen.gen (Rng.split root case) in
    match Oracle.parse_and_typecheck src with
    | Some _ -> ()
    | None -> Alcotest.failf "case %d rejected by the frontend:\n%s" case src
  done

(** The soundness oracle must actually exercise the checker: over a
    fixed window, a healthy fraction of generated programs verifies
    (otherwise the oracle is vacuous). *)
let acceptance_mix () =
  let root = Rng.make 42 in
  let accepted = ref 0 in
  for case = 0 to 29 do
    let src = Pgen.gen (Rng.split root case) in
    match Oracle.parse_and_typecheck src with
    | None -> ()
    | Some prog -> if (try Oracle.default_check prog with _ -> false) then incr accepted
  done;
  if !accepted < 5 then
    Alcotest.failf "generator too hostile: only %d/30 programs verified"
      !accepted

(* ------------------------------------------------------------------ *)
(* Printer round-trip                                                  *)
(* ------------------------------------------------------------------ *)

(** [program_to_source] must be re-parseable and idempotent
    (print o parse o print = print), and re-parsing must not change
    the checker's verdict. *)
let printer_round_trip () =
  let root = Rng.make 1234 in
  for case = 0 to 39 do
    let src = Pgen.gen (Rng.split root case) in
    match Oracle.parse_and_typecheck src with
    | None -> Alcotest.failf "case %d: generated program rejected" case
    | Some prog -> (
        let printed = Ast.program_to_source prog in
        match Oracle.parse_and_typecheck printed with
        | None ->
            Alcotest.failf "case %d: printed program does not re-parse:\n%s"
              case printed
        | Some prog2 ->
            Alcotest.(check string)
              (Printf.sprintf "case %d: print is idempotent" case)
              printed
              (Ast.program_to_source prog2);
            let verdict p = try Oracle.default_check p with _ -> false in
            Alcotest.(check bool)
              (Printf.sprintf "case %d: verdict preserved" case)
              (verdict prog) (verdict prog2))
  done

(* ------------------------------------------------------------------ *)
(* Hash-consing invariants (property tests over Tgen terms)            *)
(* ------------------------------------------------------------------ *)

(** Rebuild a term bottom-up through the same smart constructors; on
    an interned term the result must be physically equal. *)
let rec rebuild (t : Term.t) : Term.t =
  match t with
  | Term.Var (x, s) -> Term.var ~sort:s x
  | Term.Int n -> Term.int n
  | Term.Real x -> Term.real x
  | Term.Bool b -> Term.bool b
  | Term.Binop (op, a, b) -> Term.mk_binop op (rebuild a) (rebuild b)
  | Term.Neg a -> Term.neg (rebuild a)
  | Term.Cmp (op, a, b) -> Term.mk_cmp op (rebuild a) (rebuild b)
  | Term.Eq (a, b) -> Term.eq (rebuild a) (rebuild b)
  | Term.Ne (a, b) -> Term.ne (rebuild a) (rebuild b)
  | Term.And ts -> Term.mk_and (List.map rebuild ts)
  | Term.Or ts -> Term.mk_or (List.map rebuild ts)
  | Term.Not a -> Term.mk_not (rebuild a)
  | Term.Imp (a, b) -> Term.mk_imp (rebuild a) (rebuild b)
  | Term.Iff (a, b) -> Term.mk_iff (rebuild a) (rebuild b)
  | Term.Ite (c, a, b) -> Term.ite (rebuild c) (rebuild a) (rebuild b)
  | Term.App (f, ts) -> Term.app f (List.map rebuild ts)

let hash_consing_props () =
  let root = Rng.make 0xC0FFEE in
  for case = 0 to 199 do
    let t = Tgen.gen (Rng.split root case) in
    let t' = rebuild t in
    if not (Term.equal t t') then
      Alcotest.failf "case %d: rebuild not structurally equal to original"
        case;
    Alcotest.(check int)
      (Printf.sprintf "case %d: hash stable under rebuild" case)
      (Term.hash t) (Term.hash t');
    if Term.internable t && not (t == t') then
      Alcotest.failf
        "case %d: structurally equal internable terms not physically shared"
        case;
    (* the memoized free-variable set matches a fold-based recount *)
    let folded =
      Term.fold_vars (fun acc x _ -> x :: acc) [] t
      |> List.sort_uniq compare
    in
    Alcotest.(check (list string))
      (Printf.sprintf "case %d: free_vars memo agrees with fold_vars" case)
      folded
      (Term.VarSet.elements (Term.free_vars t));
    Alcotest.(check (list string))
      (Printf.sprintf "case %d: free_vars_sorted agrees" case)
      folded
      (List.sort compare (List.map fst (Term.free_vars_sorted t)))
  done

(* ------------------------------------------------------------------ *)
(* Reproducer codecs                                                   *)
(* ------------------------------------------------------------------ *)

let term_codec_round_trip () =
  let root = Rng.make 99 in
  for case = 0 to 99 do
    let t = Tgen.gen (Rng.split root case) in
    let t' = Repro.term_of_string (Repro.term_to_string t) in
    if not (Term.equal t t') then
      Alcotest.failf "case %d: term codec round-trip changed the term:\n%s"
        case (Repro.term_to_string t)
  done

let horn_codec_round_trip () =
  let root = Rng.make 2718 in
  for case = 0 to 49 do
    let { Hgen.kvars; clauses } = Hgen.gen (Rng.split root case) in
    let s = Repro.horn_to_string kvars clauses in
    let kvars', clauses' = Repro.horn_of_string s in
    Alcotest.(check string)
      (Printf.sprintf "case %d: horn codec round-trip" case)
      s
      (Repro.horn_to_string kvars' clauses')
  done

(* ------------------------------------------------------------------ *)
(* Absint oracle meta-tests                                            *)
(* ------------------------------------------------------------------ *)

(** A discharge layer that answers every clause must be refuted by the
    first solver-invalid term the generator produces, and the shrunk
    reproducer must still refute it while the real layer stays sound. *)
let absint_lying_discharge_caught () =
  let try_valid (_ : Term.t) = true in
  let root = Rng.make 0 in
  let rec find case =
    if case > 400 then Alcotest.fail "lying discharge layer not caught"
    else
      match
        Oracle.absint_case ~try_valid ~seed:0 ~case (Rng.split root case)
      with
      | Oracle.Bug b ->
          Alcotest.(check string) "term reproducer" "aterm" b.Oracle.b_ext;
          let t = Repro.term_of_string b.Oracle.b_repro in
          Alcotest.(check bool)
            "shrunk term still refutes the lying layer" true
            (Oracle.discharge_mismatch ~try_valid t <> None);
          Alcotest.(check bool)
            "the real discharge layer is sound on the shrunk term" true
            (Oracle.discharge_mismatch t = None)
      | _ -> find (case + 1)
  in
  find 0

(** An abstract interpreter claiming every concrete state escapes must
    be caught on the first runnable program, and the real analysis must
    contain the shrunk reproducer's traces. *)
let absint_broken_containment_caught () =
  let contains (_ : Flux_absint.Absint.astate) (_ : int -> int option) =
    false
  in
  let root = Rng.make 0 in
  let rec find case =
    if case > 200 then Alcotest.fail "broken containment not caught"
    else
      match
        Oracle.absint_case ~contains ~seed:0 ~case (Rng.split root case)
      with
      | Oracle.Bug b ->
          Alcotest.(check string) "program reproducer" "airs" b.Oracle.b_ext;
          Alcotest.(check bool)
            "the real abstract states contain the shrunk program's traces"
            true
            (Oracle.absint_containment ~input_rng:(Rng.make 0)
               b.Oracle.b_repro
            = None)
      | _ -> find (case + 1)
  in
  find 0

(* ------------------------------------------------------------------ *)
(* Corpus replay                                                       *)
(* ------------------------------------------------------------------ *)

(** Replay every checked-in reproducer in [fuzz-corpus/] against the
    current tree: each one was a real bug once, so it must stay fixed.
    The directory is globbed into the test deps; unknown extensions
    (README.md) are ignored. *)
let corpus_dir = "../fuzz-corpus"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let corpus_replay () =
  let files =
    if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
      Sys.readdir corpus_dir |> Array.to_list |> List.sort compare
    else []
  in
  List.iter
    (fun name ->
      let path = Filename.concat corpus_dir name in
      let body = read_file path in
      match Filename.extension name with
      | ".rs" -> (
          match
            Oracle.soundness_violation ~check:Oracle.default_check
              ~input_rng:(Rng.make 0) body
          with
          | None -> ()
          | Some d -> Alcotest.failf "%s: regressed — %s" name d)
      | ".term" -> (
          let t = Repro.term_of_string body in
          match
            Oracle.solver_mismatch ~valid:Solver.valid ~sat:Solver.sat t
          with
          | None -> ()
          | Some d -> Alcotest.failf "%s: regressed — %s" name d)
      | ".cterm" -> (
          let t = Repro.term_of_string body in
          match
            Oracle.cert_violation ~valid:Solver.valid
              ~certify:Solver.certify t
          with
          | None -> ()
          | Some d -> Alcotest.failf "%s: regressed — %s" name d)
      | ".airs" -> (
          match Oracle.absint_containment ~input_rng:(Rng.make 0) body with
          | None -> ()
          | Some d -> Alcotest.failf "%s: regressed — %s" name d)
      | ".aterm" -> (
          let t = Repro.term_of_string body in
          match Oracle.discharge_mismatch t with
          | None -> ()
          | Some d -> Alcotest.failf "%s: regressed — %s" name d)
      | ".horn" -> (
          let kvars, clauses = Repro.horn_of_string body in
          (match
             Oracle.fixpoint_violation ~solve:Oracle.default_solve kvars
               clauses
           with
          | None -> ()
          | Some d -> Alcotest.failf "%s: regressed — %s" name d);
          match
            Oracle.incremental_mismatch
              ~incremental:Oracle.default_incremental kvars clauses
          with
          | None -> ()
          | Some d -> Alcotest.failf "%s: schedules diverged — %s" name d)
      | _ -> ())
    files

let tests =
  ( "fuzz",
    [
      Alcotest.test_case "campaign is deterministic, zero bugs" `Slow
        determinism;
      Alcotest.test_case "case counts independent of seed" `Quick
        seed_sensitivity;
      Alcotest.test_case "seeded Euclidean mod solver bug caught" `Slow
        solver_euclid_caught;
      Alcotest.test_case "seeded accept-all checker caught, shrunk <= 15 lines"
        `Slow soundness_accept_all_caught;
      Alcotest.test_case "seeded top-solution fixpoint bug caught" `Quick
        fixpoint_top_caught;
      Alcotest.test_case "seeded lying incremental schedule caught" `Quick
        incremental_lying_caught;
      Alcotest.test_case "seeded goal-swapping certifier caught" `Quick
        cert_goal_swap_caught;
      Alcotest.test_case "seeded lying counterexample finder caught" `Quick
        counterexample_lying_caught;
      Alcotest.test_case "no frontend rejects over 80 seeds" `Slow
        no_frontend_rejects;
      Alcotest.test_case "checker accepts a healthy fraction" `Slow
        acceptance_mix;
      Alcotest.test_case "printer round-trip idempotent, verdict stable" `Slow
        printer_round_trip;
      Alcotest.test_case "hash-consing: rebuild shares, memos agree" `Quick
        hash_consing_props;
      Alcotest.test_case "term reproducer codec round-trips" `Quick
        term_codec_round_trip;
      Alcotest.test_case "horn reproducer codec round-trips" `Quick
        horn_codec_round_trip;
      Alcotest.test_case "seeded lying discharge layer caught" `Quick
        absint_lying_discharge_caught;
      Alcotest.test_case "seeded broken γ-containment caught" `Quick
        absint_broken_containment_caught;
      Alcotest.test_case "fuzz-corpus reproducers stay fixed" `Quick
        corpus_replay;
    ] )
