(** Tests for the daemon subsystem ([lib/server]) and its engine-layer
    hooks: JSON and protocol codecs round-trip (property-tested),
    framing rejects truncated/oversized frames and foreign protocol
    versions, the in-memory verdict tier layers soundly over the disk
    cache, [--cache-dir] failures degrade with a diagnostic instead of
    a crash, and the daemon lifecycle behaves end-to-end — concurrent
    clients get output byte-identical to the plain CLI, deadlines
    expire without poisoning the session, SIGTERM drains cleanly,
    stale sockets are recovered, and a warm daemon re-check issues
    zero SMT queries. *)

module Json = Flux_server.Json
module Protocol = Flux_server.Protocol
module Exec = Flux_server.Exec
module Memcache = Flux_server.Memcache
module Metrics = Flux_server.Metrics
module Daemon = Flux_server.Daemon
module Client = Flux_server.Client
module Cache = Flux_engine.Cache
module Diag = Flux_engine.Diag
module Profile = Flux_smt.Profile

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let tmp_counter = ref 0

let fresh_tmp prefix =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)

let fresh_dir prefix =
  let dir = fresh_tmp prefix in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let run_cmd exe args =
  let out = Filename.temp_file "flux-test" ".out" in
  let err = Filename.temp_file "flux-test" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s > %s 2> %s" exe args (Filename.quote out)
         (Filename.quote err))
  in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout, stderr)

let run_flux args = run_cmd "../bin/flux.exe" args
let run_prusti args = run_cmd "../bin/prusti.exe" args

let wait_until ?(timeout = 10.) f =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if f () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      ignore (Unix.select [] [] [] 0.05);
      go ()
    end
  in
  go ()

(** Start a daemon on a fresh socket, run [f socket], and always tear
    the daemon down (graceful stop, then SIGKILL as a last resort so a
    failing test cannot leak a process into later tests). *)
let with_daemon f =
  let sock = fresh_tmp "fluxd-test" ^ ".sock" in
  let pidfile = sock ^ ".pid" in
  Fun.protect
    ~finally:(fun () ->
      ignore (run_flux (Printf.sprintf "daemon stop --socket %s" (Filename.quote sock)));
      (match int_of_string_opt (String.trim (try read_file pidfile with Sys_error _ -> "")) with
      | Some pid -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
      | None -> ());
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ sock; pidfile ])
    (fun () ->
      let code, out, err =
        run_flux (Printf.sprintf "daemon start --socket %s" (Filename.quote sock))
      in
      Alcotest.(check int) ("daemon start: " ^ out ^ err) 0 code;
      f sock)

let sq = Filename.quote

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_gen : Json.t QCheck.Gen.t =
  let open QCheck.Gen in
  let finite_float =
    map (fun f -> if Float.is_finite f then f else 0.) float
  in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) finite_float;
        map (fun s -> Json.String s) (string_size (int_bound 20));
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           oneof
             [
               scalar;
               map
                 (fun vs -> Json.List vs)
                 (list_size (int_bound 4) (self (n / 2)));
               map
                 (fun kvs -> Json.Obj kvs)
                 (list_size (int_bound 4)
                    (pair (string_size (int_bound 8)) (self (n / 2))));
             ])

let json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"JSON survives print-then-parse"
    (QCheck.make ~print:(fun j -> Json.to_string j) json_gen)
    (fun j ->
      Json.parse (Json.to_string j) = Ok j
      && Json.parse (Json.to_string ~pretty:true j) = Ok j)

let json_cases () =
  let rt s = Json.parse s in
  Alcotest.(check bool)
    "floats keep a decimal point" true
    (Json.to_string (Json.Float 1.0) = "1.0"
    && rt "1.0" = Ok (Json.Float 1.0)
    && rt "1" = Ok (Json.Int 1));
  Alcotest.(check bool)
    "\\u escapes decode to UTF-8" true
    (rt "\"A\\u00e9\\u20ac\"" = Ok (Json.String "A\xc3\xa9\xe2\x82\xac"));
  Alcotest.(check bool)
    "raw UTF-8 passes through verbatim" true
    (rt (Json.to_string (Json.String "Aé€")) = Ok (Json.String "Aé€"));
  Alcotest.(check bool)
    "trailing garbage rejected" true
    (Result.is_error (rt "{} x"));
  Alcotest.(check bool)
    "unterminated string rejected" true
    (Result.is_error (rt {|"abc|}));
  Alcotest.(check bool)
    "control characters round-trip" true
    (rt (Json.to_string (Json.String "a\nb\tc\x01d"))
    = Ok (Json.String "a\nb\tc\x01d"))

(** The non-finite-float satellite fix: [inf]/[-inf]/[nan] must print
    as [null] (never as bare words no parser accepts), containers
    holding them must stay parseable, and every {e finite} float —
    including signed zero, subnormals and extremes — must survive
    print-then-parse bit-exactly. *)
let json_nonfinite_floats () =
  List.iter
    (fun f ->
      Alcotest.(check string)
        (Printf.sprintf "%h prints as null" f)
        "null"
        (Json.to_string (Json.Float f));
      Alcotest.(check string)
        (Printf.sprintf "%h pretty-prints as null" f)
        "null"
        (String.trim (Json.to_string ~pretty:true (Json.Float f))))
    [ infinity; neg_infinity; nan; -.nan ];
  Alcotest.(check bool) "document with non-finite floats reparses" true
    (Json.parse
       (Json.to_string
          (Json.Obj
             [ ("p99_ms", Json.Float nan); ("rate", Json.Float infinity) ]))
    = Ok (Json.Obj [ ("p99_ms", Json.Null); ("rate", Json.Null) ]))

let json_finite_floats_bitexact () =
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) ->
          Alcotest.(check int64)
            (Printf.sprintf "%h round-trips bit-exactly" f)
            (Int64.bits_of_float f) (Int64.bits_of_float g)
      | _ -> Alcotest.failf "%h did not re-parse as a float" f)
    [
      0.1;
      -0.0;
      4.94e-324 (* smallest subnormal *);
      2.2250738585072014e-308 (* smallest normal *);
      1.7976931348623157e308 (* largest finite *);
      3.141592653589793;
      -1e22;
      1.0000000000000002 (* 1 + ulp *);
    ]

(** The surrogate-pair satellite fix: astral-plane [\u] escape pairs
    decode to 4-byte UTF-8, and lone/mismatched surrogates are parse
    errors rather than silent garbage. *)
let json_surrogates () =
  let rt s = Json.parse s in
  let grin = "\xf0\x9f\x98\x80" (* U+1F600 *) in
  Alcotest.(check bool) "\\ud83d\\ude00 decodes to U+1F600" true
    (rt "\"\\ud83d\\ude00\"" = Ok (Json.String grin));
  Alcotest.(check bool) "boundary pair \\ud800\\udc00 is U+10000" true
    (rt "\"\\ud800\\udc00\"" = Ok (Json.String "\xf0\x90\x80\x80"));
  Alcotest.(check bool) "top pair \\udbff\\udfff is U+10FFFF" true
    (rt "\"\\udbff\\udfff\"" = Ok (Json.String "\xf4\x8f\xbf\xbf"));
  Alcotest.(check bool) "raw astral UTF-8 survives print-then-parse" true
    (rt (Json.to_string (Json.String grin)) = Ok (Json.String grin));
  Alcotest.(check bool) "mixed text around the pair survives" true
    (rt "\"a\\ud83d\\ude00z\"" = Ok (Json.String ("a" ^ grin ^ "z")));
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%s rejected" (String.escaped s))
        true
        (Result.is_error (rt s)))
    [
      "\"\\ud83d\"" (* lone high at end *);
      "\"\\ud83dXY\"" (* high then plain chars *);
      "\"\\ud83d\\u0041\"" (* high then non-surrogate escape *);
      "\"\\ud83d\\ud83d\"" (* high then another high *);
      "\"\\udc00\"" (* lone low *);
      "\"x\\ude00y\"" (* lone low mid-string *);
    ]

(* ------------------------------------------------------------------ *)
(* Protocol codecs                                                     *)
(* ------------------------------------------------------------------ *)

let sample_opts =
  [
    Exec.default_opts Exec.Flux_check;
    {
      (Exec.default_opts Exec.Flux_lint) with
      Exec.quiet = true;
      times = true;
      jobs = 7;
      cache = false;
      cache_dir = "/tmp/weird dir/with spaces";
      format_json = true;
      passes = [ "vacuity"; "dead-store" ];
      all_passes = true;
    };
    { (Exec.default_opts Exec.Prusti_check) with Exec.dump_mir = true };
    { (Exec.default_opts Exec.Flux_check) with Exec.certify = true };
    {
      (Exec.default_opts Exec.Flux_check) with
      Exec.absint = false;
      absint_crosscheck = true;
    };
  ]

let sample_requests =
  Protocol.Status :: Protocol.Metrics :: Protocol.Shutdown
  :: List.concat_map
       (fun opts ->
         [
           Protocol.Check
             { opts; file = "a.rs"; source = None; deadline_ms = None };
           Protocol.Check
             {
               opts;
               file = "päth/δ.rs";
               source = Some "fn main() {}\n\x00\xff binary\n";
               deadline_ms = Some 1500;
             };
         ])
       sample_opts

let request_roundtrip () =
  List.iter
    (fun r ->
      match Protocol.decode_request (Protocol.encode_request r) with
      | Ok r' -> Alcotest.(check bool) "request round-trips" true (r = r')
      | Error e -> Alcotest.fail ("decode_request: " ^ e))
    sample_requests

let sample_responses =
  [
    Protocol.Result { code = 0; out = "all good\n"; err = "" };
    Protocol.Result
      { code = 3; out = ""; err = "flux: error: deadline of 5ms exceeded\n" };
    Protocol.Info
      (Json.Obj [ ("pid", Json.Int 42); ("uptime_s", Json.Float 0.25) ]);
    Protocol.Error "unsupported protocol version 9 (expected 1)";
  ]

let response_roundtrip () =
  List.iter
    (fun r ->
      match Protocol.decode_response (Protocol.encode_response r) with
      | Ok r' -> Alcotest.(check bool) "response round-trips" true (r = r')
      | Error e -> Alcotest.fail ("decode_response: " ^ e))
    sample_responses

let overlay_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"arbitrary overlay bytes survive the request codec"
    QCheck.(string)
    (fun src ->
      let r =
        Protocol.Check
          {
            opts = Exec.default_opts Exec.Flux_check;
            file = "f.rs";
            source = Some src;
            deadline_ms = None;
          }
      in
      Protocol.decode_request (Protocol.encode_request r) = Ok r)

let version_rejected () =
  let bump v =
    Printf.sprintf {|{"version":%d,"method":"status"}|} v
  in
  (match Protocol.decode_request (bump 99) with
  | Error msg ->
      Alcotest.(check bool)
        ("names the version: " ^ msg)
        true
        (String.length msg > 0
        && msg = "unsupported protocol version 99 (expected 1)")
  | Ok _ -> Alcotest.fail "version 99 accepted");
  match Protocol.decode_request {|{"method":"status"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing version accepted"

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ r; w ])
    (fun () -> f r w)

let frame_label = function
  | Protocol.Eof -> "Eof"
  | Protocol.Frame s -> "Frame:" ^ s
  | Protocol.Bad m -> "Bad:" ^ m

let framing () =
  (* round trip, including the empty frame *)
  with_pipe (fun r w ->
      Protocol.write_frame w "hello";
      Protocol.write_frame w "";
      Alcotest.(check string) "frame" "Frame:hello" (frame_label (Protocol.read_frame r));
      Alcotest.(check string) "empty frame" "Frame:" (frame_label (Protocol.read_frame r)));
  (* clean close = Eof *)
  with_pipe (fun r w ->
      Unix.close w;
      Alcotest.(check string) "eof" "Eof" (frame_label (Protocol.read_frame r)));
  (* truncated header *)
  with_pipe (fun r w ->
      ignore (Unix.write w (Bytes.of_string "\x00\x00") 0 2);
      Unix.close w;
      Alcotest.(check string) "short header" "Bad:truncated frame header"
        (frame_label (Protocol.read_frame r)));
  (* truncated body *)
  with_pipe (fun r w ->
      ignore (Unix.write w (Bytes.of_string "\x00\x00\x00\x0aabc") 0 7);
      Unix.close w;
      Alcotest.(check string) "short body" "Bad:truncated frame body"
        (frame_label (Protocol.read_frame r)));
  (* oversized length is rejected before allocation *)
  with_pipe (fun r w ->
      ignore (Unix.write w (Bytes.of_string "\x7f\xff\xff\xff") 0 4);
      Unix.close w;
      match Protocol.read_frame r with
      | Protocol.Bad m ->
          Alcotest.(check bool) ("oversized: " ^ m) true
            (String.length m >= 9 && String.sub m 0 9 = "oversized")
      | o -> Alcotest.fail ("expected Bad, got " ^ frame_label o))

(* ------------------------------------------------------------------ *)
(* Cache tiers and cache-dir diagnostics                               *)
(* ------------------------------------------------------------------ *)

let entry = { Cache.e_kvars = 2; e_clauses = 5; e_time = 0.25 }

let counter key =
  match List.assoc_opt key (Profile.snapshot ()) with
  | Some (n, _, _) -> n
  | None -> 0

let memory_tier_layering () =
  let dir = fresh_dir "flux-server-cache" in
  Fun.protect
    ~finally:(fun () -> Cache.set_memory_tier None)
    (fun () ->
      (* no memory tier: store goes to disk, load is a disk hit *)
      Cache.set_memory_tier None;
      Profile.reset ();
      Cache.store ~dir "k1" entry;
      Alcotest.(check bool) "disk hit" true (Cache.load ~dir "k1" = Some entry);
      Alcotest.(check int) "disk counter" 1 (counter "cache.disk_hits");
      Alcotest.(check int) "no mem counter" 0 (counter "cache.mem_hits");
      (* install an empty memory tier: first load promotes from disk,
         second is a pure memory hit *)
      let mem = Memcache.create () in
      Memcache.install mem;
      Profile.reset ();
      Alcotest.(check bool) "promoting load" true (Cache.load ~dir "k1" = Some entry);
      Alcotest.(check int) "promotion was a disk hit" 1 (counter "cache.disk_hits");
      Alcotest.(check bool) "promoted" true (Memcache.size mem = 1);
      Sys.remove (Filename.concat dir "k1.entry");
      Alcotest.(check bool) "memory hit survives disk removal" true
        (Cache.load ~dir "k1" = Some entry);
      Alcotest.(check int) "mem counter" 1 (counter "cache.mem_hits");
      (* a fresh store lands in both tiers *)
      Cache.store ~dir "k2" entry;
      Alcotest.(check bool) "store hits memory" true (Memcache.size mem = 2);
      Alcotest.(check bool) "store hits disk" true
        (Sys.file_exists (Filename.concat dir "k2.entry"));
      Memcache.clear mem;
      Alcotest.(check bool) "clear empties the tier" true (Memcache.size mem = 0))

let ensure_dir_diagnostics () =
  (* parents are created *)
  let base = fresh_dir "flux-server-ensure" in
  let nested = Filename.concat (Filename.concat base "a") "b" in
  (match Cache.ensure_dir nested with
  | Ok () -> Alcotest.(check bool) "nested dir created" true (Sys.is_directory nested)
  | Error e -> Alcotest.fail ("ensure_dir: " ^ e));
  (* a path under a regular file cannot be created: readable error, no
     exception (chmod tricks don't work for root, ENOTDIR always does) *)
  let file = Filename.concat base "plainfile" in
  let oc = open_out file in
  output_string oc "x";
  close_out oc;
  match Cache.ensure_dir (Filename.concat file "sub") with
  | Ok () -> Alcotest.fail "ensure_dir under a regular file succeeded"
  | Error msg ->
      Alcotest.(check bool)
        ("mentions the cache directory: " ^ msg)
        true
        (String.length msg > 0
        && (let sub = "cache directory" in
            let rec find i =
              i + String.length sub <= String.length msg
              && (String.sub msg i (String.length sub) = sub || find (i + 1))
            in
            find 0))

let cli_bad_cache_dir () =
  let base = fresh_dir "flux-server-badcache" in
  let file = Filename.concat base "plainfile" in
  let oc = open_out file in
  output_string oc "x";
  close_out oc;
  let bad = Filename.concat file "sub" in
  let code, out, err =
    run_flux
      (Printf.sprintf "check --cache-dir %s ../examples/programs/init_zeros.rs"
         (sq bad))
  in
  Alcotest.(check int) "verification still succeeds" 0 code;
  Alcotest.(check bool) "rows printed" true
    (String.length out > 0);
  Alcotest.(check bool) ("warning on stderr: " ^ err) true
    (let has sub s =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     has "warning" err && has "persistent cache disabled" err)

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let contains sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let lifecycle_start_status_stop () =
  let sock = fresh_tmp "fluxd-life" ^ ".sock" in
  Fun.protect
    ~finally:(fun () ->
      ignore (run_flux ("daemon stop --socket " ^ sq sock));
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ sock; sock ^ ".pid" ])
    (fun () ->
      let code, out, err = run_flux ("daemon start --socket " ^ sq sock) in
      Alcotest.(check int) ("daemon start: " ^ out ^ err) 0 code;
      Alcotest.(check bool) "start announces pid and socket" true
        (contains "fluxd: started" out);
      let code, out, _ = run_flux ("daemon status --socket " ^ sq sock) in
      Alcotest.(check int) "status while running" 0 code;
      (match Json.parse out with
      | Ok j ->
          Alcotest.(check bool) "status has pid" true
            (Option.bind (Json.member "pid" j) Json.get_int <> None);
          Alcotest.(check bool) "not draining" true
            (Option.bind (Json.member "draining" j) Json.get_bool = Some false)
      | Error e -> Alcotest.fail ("status JSON: " ^ e));
      let code, out, _ = run_flux ("daemon start --socket " ^ sq sock) in
      Alcotest.(check int) "second start is a no-op" 0 code;
      Alcotest.(check bool) "reports already running" true
        (contains "already running" out);
      let code, out, _ = run_flux ("daemon stop --socket " ^ sq sock) in
      Alcotest.(check int) "stop" 0 code;
      Alcotest.(check bool) "stop announces itself" true
        (contains "fluxd: stopped" out);
      Alcotest.(check bool) "socket removed by stop" true
        (wait_until (fun () -> not (Sys.file_exists sock)));
      let code, _, _ = run_flux ("daemon status --socket " ^ sq sock) in
      Alcotest.(check int) "status after stop fails" 1 code)

let byte_identity_cold_and_warm () =
  with_daemon (fun sock ->
      let f = "../examples/programs/init_zeros.rs" in
      (* cold vs cold, no cache *)
      let l = run_flux (Printf.sprintf "check --no-cache %s" f) in
      let d = run_flux (Printf.sprintf "check --daemon --socket %s --no-cache %s" (sq sock) f) in
      Alcotest.(check (triple int string string)) "check, no cache" l d;
      (* fresh parallel cache dirs: cold pass then warm pass must agree
         (the warm daemon answer comes from the memory tier, the warm
         local answer from disk — same bytes, including the footer's
         cache count) *)
      let dl = fresh_dir "flux-idl" and dd = fresh_dir "flux-idd" in
      let l1 = run_flux (Printf.sprintf "check --cache-dir %s %s" (sq dl) f) in
      let d1 = run_flux (Printf.sprintf "check --daemon --socket %s --cache-dir %s %s" (sq sock) (sq dd) f) in
      Alcotest.(check (triple int string string)) "check, cold cached pass" l1 d1;
      let l2 = run_flux (Printf.sprintf "check --cache-dir %s %s" (sq dl) f) in
      let d2 = run_flux (Printf.sprintf "check --daemon --socket %s --cache-dir %s %s" (sq sock) (sq dd) f) in
      Alcotest.(check (triple int string string)) "check, warm cached pass" l2 d2;
      Alcotest.(check bool) "warm pass states the cache hit" true
        (let _, out, _ = d2 in
         contains "from cache" out);
      (* a failing program: same rows, same exit code 1 *)
      let lf = run_flux "check --no-cache ../examples/programs/oob.rs" in
      let df = run_flux (Printf.sprintf "check --daemon --socket %s --no-cache ../examples/programs/oob.rs" (sq sock)) in
      Alcotest.(check (triple int string string)) "failing check" lf df;
      Alcotest.(check int) "failing exit code" 1 (let c, _, _ = lf in c);
      (* lint, text and json *)
      let ll = run_flux "lint --no-cache ../examples/lint/dead_store.rs" in
      let dl' = run_flux (Printf.sprintf "lint --daemon --socket %s --no-cache ../examples/lint/dead_store.rs" (sq sock)) in
      Alcotest.(check (triple int string string)) "lint text" ll dl';
      let lj = run_flux "lint --format json --no-cache ../examples/lint/dead_store.rs" in
      let dj = run_flux (Printf.sprintf "lint --format json --daemon --socket %s --no-cache ../examples/lint/dead_store.rs" (sq sock)) in
      Alcotest.(check (triple int string string)) "lint json" lj dj;
      (* prusti through the same daemon *)
      let lp = run_prusti (Printf.sprintf "check --no-cache %s" f) in
      let dp = run_prusti (Printf.sprintf "check --daemon --socket %s --no-cache %s" (sq sock) f) in
      Alcotest.(check (triple int string string)) "prusti check" lp dp)

let concurrent_clients () =
  with_daemon (fun sock ->
      let f = "../examples/programs/init_zeros.rs" in
      let g = "../examples/lint/dead_store.rs" in
      let a_out = Filename.temp_file "flux-conc" ".a" in
      let b_out = Filename.temp_file "flux-conc" ".b" in
      let a_code = a_out ^ ".code" and b_code = b_out ^ ".code" in
      let cmd =
        Printf.sprintf
          "( ../bin/flux.exe check --daemon --socket %s --no-cache %s > %s 2>&1; echo $? > %s ) & \
           ( ../bin/flux.exe lint --daemon --socket %s --no-cache %s > %s 2>&1; echo $? > %s ) & \
           wait"
          (sq sock) f (sq a_out) (sq a_code) (sq sock) g (sq b_out) (sq b_code)
      in
      Alcotest.(check int) "shell wait" 0 (Sys.command cmd);
      (* the daemon must have served both (no silent fallback) *)
      let _, m, _ = run_flux ("daemon metrics --socket " ^ sq sock) in
      (match Json.parse m with
      | Ok j ->
          Alcotest.(check bool) "daemon served both requests" true
            (Option.bind (Json.member "requests_served" j) Json.get_int
            = Some 2)
      | Error e -> Alcotest.fail ("metrics JSON: " ^ e));
      (* byte-identical to the sequential CLI *)
      let lc, lo, le = run_flux (Printf.sprintf "check --no-cache %s" f) in
      Alcotest.(check string) "concurrent check output" (lo ^ le) (read_file a_out);
      Alcotest.(check string) "concurrent check code" (string_of_int lc)
        (String.trim (read_file a_code));
      let gc, go, ge = run_flux (Printf.sprintf "lint --no-cache %s" g) in
      Alcotest.(check string) "concurrent lint output" (go ^ ge) (read_file b_out);
      Alcotest.(check string) "concurrent lint code" (string_of_int gc)
        (String.trim (read_file b_code));
      List.iter Sys.remove [ a_out; b_out; a_code; b_code ])

let deadline_does_not_poison () =
  with_daemon (fun sock ->
      let f = "../examples/programs/init_zeros.rs" in
      let code, _, err =
        run_flux
          (Printf.sprintf "check --daemon --socket %s --no-cache --deadline 0 %s"
             (sq sock) f)
      in
      Alcotest.(check int) "deadline exit code" Diag.exit_deadline code;
      Alcotest.(check bool) ("deadline message: " ^ err) true
        (contains "deadline of 0ms exceeded" err);
      (* the session and daemon stay healthy *)
      let code, _, _ =
        run_flux (Printf.sprintf "check --daemon --socket %s --no-cache %s" (sq sock) f)
      in
      Alcotest.(check int) "healthy request after timeout" 0 code;
      let _, m, _ = run_flux ("daemon metrics --socket " ^ sq sock) in
      match Json.parse m with
      | Ok j ->
          Alcotest.(check bool) "both requests were served by the daemon" true
            (Option.bind (Json.member "requests_served" j) Json.get_int = Some 2)
      | Error e -> Alcotest.fail ("metrics JSON: " ^ e))

let local_deadline () =
  (* the deadline also applies in-process, without --daemon *)
  let code, _, err =
    run_flux "check --no-cache --deadline 0 ../examples/programs/init_zeros.rs"
  in
  Alcotest.(check int) "local deadline exit code" Diag.exit_deadline code;
  Alcotest.(check bool) "local deadline message" true
    (contains "deadline of 0ms exceeded" err)

let sigterm_drain () =
  with_daemon (fun sock ->
      let pid =
        match int_of_string_opt (String.trim (read_file (sock ^ ".pid"))) with
        | Some p -> p
        | None -> Alcotest.fail "no pidfile"
      in
      let code, _, _ =
        run_flux
          (Printf.sprintf "check --daemon --socket %s --no-cache %s" (sq sock)
             "../examples/programs/init_zeros.rs")
      in
      Alcotest.(check int) "request before drain" 0 code;
      Unix.kill pid Sys.sigterm;
      Alcotest.(check bool) "socket removed after SIGTERM" true
        (wait_until (fun () -> not (Sys.file_exists sock)));
      Alcotest.(check bool) "pidfile removed after SIGTERM" true
        (wait_until (fun () -> not (Sys.file_exists (sock ^ ".pid")))))

let stale_socket_recovery () =
  let sock = fresh_tmp "fluxd-stale" ^ ".sock" in
  Fun.protect
    ~finally:(fun () ->
      ignore (run_flux ("daemon stop --socket " ^ sq sock));
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ sock; sock ^ ".pid" ])
    (fun () ->
      (* plant a stray file where the socket goes, plus a bogus pidfile *)
      let oc = open_out sock in
      output_string oc "junk";
      close_out oc;
      let oc = open_out (sock ^ ".pid") in
      output_string oc "999999";
      close_out oc;
      let code, out, err = run_flux ("daemon start --socket " ^ sq sock) in
      Alcotest.(check int) ("start over stale socket: " ^ out ^ err) 0 code;
      let code, _, _ = run_flux ("daemon status --socket " ^ sq sock) in
      Alcotest.(check int) "status after recovery" 0 code)

let auto_spawn_and_fallback () =
  let sock = fresh_tmp "fluxd-auto" ^ ".sock" in
  Fun.protect
    ~finally:(fun () ->
      ignore (run_flux ("daemon stop --socket " ^ sq sock));
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ sock; sock ^ ".pid" ])
    (fun () ->
      (* no daemon on this socket: --daemon must auto-start one *)
      let code, _, _ =
        run_flux
          (Printf.sprintf "check --daemon --socket %s --no-cache %s" (sq sock)
             "../examples/programs/init_zeros.rs")
      in
      Alcotest.(check int) "check auto-spawned a daemon" 0 code;
      let code, _, _ = run_flux ("daemon status --socket " ^ sq sock) in
      Alcotest.(check int) "daemon is now running" 0 code;
      (* library-level fallback: an unreachable socket with spawning
         disabled returns None (the CLI then checks in-process) *)
      let nowhere = fresh_tmp "fluxd-nowhere" ^ ".sock" in
      Alcotest.(check bool) "unreachable daemon falls back" true
        (Client.run ~spawn:Client.Never ~socket:nowhere
           (Exec.default_opts Exec.Flux_check)
           ~file:"../examples/programs/init_zeros.rs"
        = None))

let warm_daemon_zero_smt () =
  with_daemon (fun sock ->
      let f = "../examples/programs/init_zeros.rs" in
      let dir = fresh_dir "flux-warm" in
      let queries () =
        let _, m, _ = run_flux ("daemon metrics --socket " ^ sq sock) in
        match Json.parse m with
        | Ok j ->
            let c k =
              match Option.bind (Json.member "counters" j) (Json.member k) with
              | Some (Json.Int n) -> n
              | _ -> 0
            in
            (c "solver.queries", c "cache.mem_hits")
        | Error e -> Alcotest.fail ("metrics JSON: " ^ e)
      in
      let code, _, _ =
        run_flux
          (Printf.sprintf "check --daemon --socket %s --cache-dir %s %s"
             (sq sock) (sq dir) f)
      in
      Alcotest.(check int) "cold daemon check" 0 code;
      let q1, _ = queries () in
      Alcotest.(check bool) "cold pass used the solver" true (q1 > 0);
      let code, out, _ =
        run_flux
          (Printf.sprintf "check --daemon --socket %s --cache-dir %s %s"
             (sq sock) (sq dir) f)
      in
      Alcotest.(check int) "warm daemon check" 0 code;
      Alcotest.(check bool) "warm pass reports the cache" true
        (contains "from cache" out);
      let q2, mem2 = queries () in
      Alcotest.(check int) "warm pass issued zero SMT queries" q1 q2;
      Alcotest.(check bool) "warm pass hit the memory tier" true (mem2 > 0))

let raw_socket_version_error () =
  with_daemon (fun sock ->
      match Daemon.try_connect sock with
      | None -> Alcotest.fail "cannot connect"
      | Some fd ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Protocol.write_frame fd {|{"version":9,"method":"status"}|};
              match Protocol.read_frame fd with
              | Protocol.Frame payload -> (
                  match Protocol.decode_response payload with
                  | Ok (Protocol.Error msg) ->
                      Alcotest.(check bool)
                        ("daemon rejects foreign versions: " ^ msg)
                        true
                        (contains "unsupported protocol version" msg)
                  | Ok _ -> Alcotest.fail "daemon accepted version 9"
                  | Error e -> Alcotest.fail ("response decode: " ^ e))
              | o -> Alcotest.fail ("expected a frame, got " ^ frame_label o)))

(* ------------------------------------------------------------------ *)
(* Metrics unit behavior                                               *)
(* ------------------------------------------------------------------ *)

let metrics_percentiles () =
  let m = Metrics.create () in
  for i = 1 to 100 do
    (* integer-second latencies: ×1000 is exact in float, so the
       percentile expectations below compare exactly *)
    Metrics.record m ~meth:"check" ~latency_s:(float_of_int i)
      ~profile:[ ("solver.queries", (3, 0., false)) ]
  done;
  match Metrics.to_json m with
  | Json.Obj fields ->
      let get path =
        match List.assoc_opt "latency" fields with
        | Some (Json.Obj lat) -> List.assoc_opt path lat
        | _ -> None
      in
      Alcotest.(check bool) "p50" true (get "p50_ms" = Some (Json.Float 50000.));
      Alcotest.(check bool) "p95" true (get "p95_ms" = Some (Json.Float 95000.));
      Alcotest.(check bool) "p99" true (get "p99_ms" = Some (Json.Float 99000.));
      Alcotest.(check bool) "served" true
        (List.assoc_opt "requests_served" fields = Some (Json.Int 100));
      Alcotest.(check bool) "counters accumulate" true
        (match List.assoc_opt "counters" fields with
        | Some (Json.Obj cs) -> List.assoc_opt "solver.queries" cs = Some (Json.Int 300)
        | _ -> false)
  | _ -> Alcotest.fail "metrics JSON is not an object"

let tests =
  ( "server",
    [
      QCheck_alcotest.to_alcotest json_roundtrip;
      Alcotest.test_case "JSON edge cases" `Quick json_cases;
      Alcotest.test_case "non-finite floats print as null" `Quick
        json_nonfinite_floats;
      Alcotest.test_case "finite floats round-trip bit-exactly" `Quick
        json_finite_floats_bitexact;
      Alcotest.test_case "surrogate pairs decode, lone ones rejected" `Quick
        json_surrogates;
      Alcotest.test_case "protocol requests round-trip" `Quick request_roundtrip;
      Alcotest.test_case "protocol responses round-trip" `Quick response_roundtrip;
      QCheck_alcotest.to_alcotest overlay_roundtrip;
      Alcotest.test_case "foreign protocol versions rejected" `Quick version_rejected;
      Alcotest.test_case "framing: eof, truncation, oversize" `Quick framing;
      Alcotest.test_case "memory tier layers over the disk cache" `Quick memory_tier_layering;
      Alcotest.test_case "ensure_dir creates parents, explains failures" `Quick ensure_dir_diagnostics;
      Alcotest.test_case "CLI degrades gracefully on a bad --cache-dir" `Quick cli_bad_cache_dir;
      Alcotest.test_case "metrics: percentiles and counter absorption" `Quick metrics_percentiles;
      Alcotest.test_case "daemon start/status/stop lifecycle" `Quick lifecycle_start_status_stop;
      Alcotest.test_case "daemon output byte-identical to CLI" `Quick byte_identity_cold_and_warm;
      Alcotest.test_case "two concurrent clients, identical bytes" `Quick concurrent_clients;
      Alcotest.test_case "deadline expires without poisoning the session" `Quick deadline_does_not_poison;
      Alcotest.test_case "deadline applies in-process too" `Quick local_deadline;
      Alcotest.test_case "SIGTERM drains and cleans up" `Quick sigterm_drain;
      Alcotest.test_case "stale socket is recovered at start" `Quick stale_socket_recovery;
      Alcotest.test_case "auto-spawn on --daemon, fallback when unreachable" `Quick auto_spawn_and_fallback;
      Alcotest.test_case "warm daemon re-check issues zero SMT queries" `Quick warm_daemon_zero_smt;
      Alcotest.test_case "daemon answers foreign versions with an error" `Quick raw_socket_version_error;
    ] )
