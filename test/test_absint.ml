(** Tests for [lib/absint]: algebraic properties of the
    interval×congruence domain (γ-soundness of every transfer function
    against the truncated concrete semantics, lattice laws for
    join/meet/widen/narrow), back-edge and widening-point detection in
    the dataflow framework, difference-bound entailment, a
    widening/narrowing precision check on a counting loop, and the
    discharge layer's byte-identity promise ([--absint] vs
    [--no-absint] on a Table-1 workload, with crosscheck clean). *)

module Dom = Flux_absint.Dom
module Env = Flux_absint.Env
module Absint = Flux_absint.Absint
module Discharge = Flux_absint.Discharge
module Ir = Flux_mir.Ir
module Dataflow = Flux_mir.Dataflow
module Ast = Flux_syntax.Ast
module Checker = Flux_check.Checker
module Workloads = Flux_workloads.Workloads
open Flux_smt

(* ------------------------------------------------------------------ *)
(* Domain algebra (randomized)                                         *)
(* ------------------------------------------------------------------ *)

(** Random abstract values through the normalizing constructor: raw
    (lo, hi, m, r) tuples, including empty/contradictory ones (which
    reduce to ⊥) and unbounded sides. *)
let gen_dom : Dom.t QCheck.Gen.t =
  let open QCheck.Gen in
  let bound = oneof [ return None; map (fun n -> Some n) (int_range (-8) 8) ] in
  let* lo = bound in
  let* hi = bound in
  let* m = int_range 0 5 in
  let* r = int_range (-4) 5 in
  return (Dom.make ~lo ~hi ~m ~r)

let gen_pair = QCheck.Gen.pair gen_dom gen_dom

(* concrete sample points; wide enough to stick out of every generated
   bound *)
let points = List.init 25 (fun i -> i - 12)

let mem_pairs a b f =
  List.for_all
    (fun x ->
      List.for_all
        (fun y -> if Dom.mem x a && Dom.mem y b then f x y else true)
        points)
    points

let prop_gamma_arith =
  QCheck.Test.make ~name:"transfer functions are γ-sound (+, -, *, /, %)"
    ~count:500 (QCheck.make gen_pair) (fun (a, b) ->
      mem_pairs a b (fun x y ->
          Dom.mem (x + y) (Dom.add a b)
          && Dom.mem (x - y) (Dom.sub a b)
          && Dom.mem (x * y) (Dom.mul a b)
          && (y = 0
             || (* OCaml / and mod are the paper's truncated semantics *)
             Dom.mem (x / y) (Dom.div a b) && Dom.mem (x mod y) (Dom.md a b))))

let prop_join_meet =
  QCheck.Test.make ~name:"join is an upper bound, meet is exact" ~count:500
    (QCheck.make gen_pair) (fun (a, b) ->
      List.for_all
        (fun x ->
          (* γ(a) ∪ γ(b) ⊆ γ(a ⊔ b) *)
          ((not (Dom.mem x a || Dom.mem x b)) || Dom.mem x (Dom.join a b))
          (* γ(a ⊓ b) = γ(a) ∩ γ(b) on sampled points *)
          && Dom.mem x (Dom.meet a b) = (Dom.mem x a && Dom.mem x b))
        points)

let prop_widen_narrow =
  QCheck.Test.make ~name:"widen over-approximates join; narrow keeps meets"
    ~count:500 (QCheck.make gen_pair) (fun (a, b) ->
      List.for_all
        (fun x ->
          ((not (Dom.mem x a || Dom.mem x b)) || Dom.mem x (Dom.widen a b))
          && ((not (Dom.mem x a && Dom.mem x b)) || Dom.mem x (Dom.narrow a b)))
        points)

let prop_leq_monotone =
  QCheck.Test.make ~name:"leq agrees with γ-inclusion; join/widen dominate"
    ~count:500 (QCheck.make gen_pair) (fun (a, b) ->
      Dom.leq a (Dom.join a b)
      && Dom.leq b (Dom.join a b)
      && Dom.leq (Dom.join a b) (Dom.widen a b)
      && Dom.leq (Dom.meet a b) a
      && ((not (Dom.leq a b)) || List.for_all (fun x -> (not (Dom.mem x a)) || Dom.mem x b) points))

(* ------------------------------------------------------------------ *)
(* Back edges and widening points                                      *)
(* ------------------------------------------------------------------ *)

let lower_fn src name : Ir.body =
  let prog = Flux_syntax.Parser.parse_program src in
  Flux_syntax.Typeck.check_program prog;
  match List.assoc_opt name (Flux_mir.Lower.lower_program prog) with
  | Some body -> body
  | None -> Alcotest.fail ("no body for " ^ name)

let loop_src =
  {|
#[lr::sig(fn() -> i32)]
fn count() -> i32 {
    let mut i = 0;
    while i < 10 {
        i = i + 1;
    }
    return i;
}
|}

let straight_src =
  {|
#[lr::sig(fn(i32) -> i32)]
fn id(n: i32) -> i32 {
    let x = n;
    return x;
}
|}

let back_edges_loop () =
  let body = lower_fn loop_src "count" in
  let edges = Dataflow.back_edges body in
  Alcotest.(check int) "one back edge for one loop" 1 (List.length edges);
  let src, dst = List.hd edges in
  Alcotest.(check bool) "back edge runs backwards in the DFS" true (dst <= src);
  let wp = Dataflow.widening_points body in
  Alcotest.(check bool) "its target is the widening point" true wp.(dst);
  Alcotest.(check int) "exactly one widening point" 1
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 wp)

let back_edges_straight () =
  let body = lower_fn straight_src "id" in
  Alcotest.(check int) "no back edges in straight-line code" 0
    (List.length (Dataflow.back_edges body));
  Alcotest.(check bool) "no widening points either" true
    (Array.for_all not (Dataflow.widening_points body))

(* ------------------------------------------------------------------ *)
(* Widening/narrowing precision on the counting loop                   *)
(* ------------------------------------------------------------------ *)

let counting_loop_exact () =
  let body = lower_fn loop_src "count" in
  let a = Absint.analyze body in
  let i_local =
    let found = ref (-1) in
    Array.iteri
      (fun l (ld : Ir.local_decl) -> if ld.Ir.ld_name = "i" then found := l)
      body.Ir.mb_locals;
    !found
  in
  Alcotest.(check bool) "local i found" true (i_local >= 0);
  (* the block that returns sees the narrowed post-loop state: the
     widened +∞ bound must have been refined back to exactly 10 *)
  (* lowering also emits an unreachable trailing return block (its
     abstract state is ⊥); the reachable one comes first *)
  let return_block =
    let found = ref (-1) in
    Array.iteri
      (fun bb blk ->
        if blk.Ir.term = Ir.TReturn && !found < 0 then found := bb)
      body.Ir.mb_blocks;
    !found
  in
  let st = Absint.before_term a return_block in
  Alcotest.(check (option int))
    "i is exactly 10 after the loop" (Some 10)
    (Dom.is_const (Absint.local_value a st i_local))

(* ------------------------------------------------------------------ *)
(* Difference-bound entailment                                         *)
(* ------------------------------------------------------------------ *)

let x = Term.var ~sort:Sort.Int "x"
let y = Term.var ~sort:Sort.Int "y"
let z = Term.var ~sort:Sort.Int "z"

let env_entailment () =
  let e =
    Env.of_hyps
      [ Term.ge x (Term.int 0); Term.mk_eq y (Term.add x (Term.int 1)) ]
  in
  Alcotest.(check bool) "x >= 0, y = x+1 |= y >= 1" true
    (Env.entails e (Term.ge y (Term.int 1)));
  Alcotest.(check bool) "y > x follows" true (Env.entails e (Term.gt y x));
  Alcotest.(check bool) "y >= 2 must NOT be entailed" false
    (Env.entails e (Term.ge y (Term.int 2)));
  let chain =
    Env.of_hyps [ Term.lt x y; Term.lt y z ]
  in
  Alcotest.(check bool) "strict chain: x+2 <= z" true
    (Env.entails chain (Term.le (Term.add x (Term.int 2)) z));
  Alcotest.(check bool) "x+3 <= z must NOT be entailed" false
    (Env.entails chain (Term.le (Term.add x (Term.int 3)) z));
  (* contradictory hypotheses entail anything *)
  let contra = Env.of_hyps [ Term.lt x y; Term.lt y x ] in
  Alcotest.(check bool) "inconsistent env entails everything" true
    (Env.entails contra (Term.ge x (Term.int 1000)))

(** Every entailment the environment claims on random solver terms must
    be confirmed by the solver — the exact invariant [Discharge.valid]
    rests on (a tighter, directed version of the fuzz oracle). *)
let prop_discharge_sound =
  QCheck.Test.make ~name:"env entailment implies solver validity" ~count:300
    (QCheck.make Test_smt.gen_term) (fun t ->
      if Discharge.try_valid t then Solver.valid t else true)

(* ------------------------------------------------------------------ *)
(* Byte-identity: --absint vs --no-absint                              *)
(* ------------------------------------------------------------------ *)

let render (r : Checker.report) : string =
  String.concat "\n"
    (List.map
       (fun (fr : Checker.fn_report) ->
         Format.asprintf "%s kvars=%d clauses=%d errors=[%s] sol=%s"
           fr.Checker.fr_name fr.Checker.fr_kvars fr.Checker.fr_clauses
           (String.concat ";"
              (List.map
                 (fun e -> Format.asprintf "%a" Checker.pp_error e)
                 fr.Checker.fr_errors))
           (match fr.Checker.fr_solution with
           | None -> "-"
           | Some sol ->
               Format.asprintf "%a" Flux_fixpoint.Solve.pp_solution sol))
       r.Checker.rp_fns)

let run_rendered ~absint ~crosscheck src =
  let saved_e = !Discharge.enabled and saved_c = !Discharge.crosscheck in
  Fun.protect
    ~finally:(fun () ->
      Discharge.enabled := saved_e;
      Discharge.crosscheck := saved_c)
    (fun () ->
      Discharge.enabled := absint;
      Discharge.crosscheck := crosscheck;
      Discharge.reset ();
      render (Checker.check_source src))

let discharge_byte_identity () =
  let b = Option.get (Workloads.find "bsearch") in
  let src = b.Workloads.bm_flux in
  let off = run_rendered ~absint:false ~crosscheck:false src in
  let on = run_rendered ~absint:true ~crosscheck:false src in
  Alcotest.(check string) "verdicts byte-identical with discharge on" off on;
  Flux_smt.Profile.reset ();
  let xc = run_rendered ~absint:true ~crosscheck:true src in
  Alcotest.(check string) "crosscheck mode changes nothing" off xc;
  let fails =
    match
      List.assoc_opt "absint.crosscheck_fail" (Flux_smt.Profile.snapshot ())
    with
    | Some (n, _, _) -> n
    | None -> 0
  in
  Alcotest.(check int) "zero crosscheck disagreements" 0 fails;
  let discharged =
    match List.assoc_opt "absint.discharged" (Flux_smt.Profile.snapshot ()) with
    | Some (n, _, _) -> n
    | None -> 0
  in
  Alcotest.(check bool) "some clauses were discharged" true (discharged > 0)

(* ------------------------------------------------------------------ *)

let qcheck_seed = 0xab51

let tests =
  ( "absint",
    [
      Alcotest.test_case "loop back edge and widening point found" `Quick
        back_edges_loop;
      Alcotest.test_case "straight-line code has no widening points" `Quick
        back_edges_straight;
      Alcotest.test_case "counting loop narrows to an exact constant" `Quick
        counting_loop_exact;
      Alcotest.test_case "difference-bound entailment units" `Quick
        env_entailment;
      Alcotest.test_case "discharge byte-identity on bsearch" `Slow
        discharge_byte_identity;
    ]
    @ List.map
        (QCheck_alcotest.to_alcotest
           ~rand:(Random.State.make [| qcheck_seed |]))
        [
          prop_gamma_arith;
          prop_join_meet;
          prop_widen_narrow;
          prop_leq_monotone;
          prop_discharge_sound;
        ] )
