(** Differential tests pinning the incremental (SCC-sliced) fixpoint
    schedule to the retained reference sweep: on every Table-1 workload
    (including seeded-bug Unsat paths) and on a seeded random Horn
    corpus, the two schedules must produce identical verdicts, errors,
    κ/clause counts and rendered solutions — wall-clock excluded. *)

module Checker = Flux_check.Checker
module Workloads = Flux_workloads.Workloads
module Oracle = Flux_fuzz.Oracle
module Rng = Flux_fuzz.Rng
module Hgen = Flux_fuzz.Hgen
open Flux_fixpoint

(** Everything byte-identity promises for one function, time excluded. *)
let render_fn (fr : Checker.fn_report) : string =
  Format.asprintf "%s kvars=%d clauses=%d errors=[%s] sol=%s"
    fr.Checker.fr_name fr.Checker.fr_kvars fr.Checker.fr_clauses
    (String.concat ";"
       (List.map
          (fun e -> Format.asprintf "%a" Checker.pp_error e)
          fr.Checker.fr_errors))
    (match fr.Checker.fr_solution with
    | None -> "-"
    | Some sol -> Format.asprintf "%a" Solve.pp_solution sol)

(** Run the whole checker pipeline under one schedule, rendered;
    exceptions are outcomes too (both schedules must raise alike). *)
let run_rendered ~(incremental : bool) (src : string) : string =
  let saved = !Solve.incremental_enabled in
  Fun.protect
    ~finally:(fun () -> Solve.incremental_enabled := saved)
    (fun () ->
      Solve.incremental_enabled := incremental;
      match Checker.check_source src with
      | r -> String.concat "\n" (List.map render_fn r.Checker.rp_fns)
      | exception e -> "raised " ^ Printexc.to_string e)

let differential name src =
  Alcotest.test_case (name ^ ": schedules agree") `Slow (fun () ->
      Alcotest.(check string)
        name
        (run_rendered ~incremental:false src)
        (run_rendered ~incremental:true src))

(** The Unsat path: seeded mutations must fail identically — same
    failing clauses in the same order, same surviving solution. *)
let mutated name ~bug:(from_s, to_s) =
  let b = Option.get (Workloads.find name) in
  let src =
    match Str_replace.first b.Workloads.bm_flux from_s to_s with
    | Some s -> s
    | None -> Alcotest.failf "mutation pattern %S not found" from_s
  in
  differential (name ^ " (mutated)") src

(** A seeded random Horn corpus: the full-vs-incremental oracle must
    find no divergence on any of it. *)
let hgen_corpus () =
  let root = Rng.make 2026 in
  for case = 0 to 59 do
    let { Hgen.kvars; clauses } = Hgen.gen (Rng.split root case) in
    match
      Oracle.incremental_mismatch ~incremental:Oracle.default_incremental
        kvars clauses
    with
    | None -> ()
    | Some d -> Alcotest.failf "case %d: %s" case d
  done

let tests =
  ( "incremental",
    List.map
      (fun b -> differential b.Workloads.bm_name b.Workloads.bm_flux)
      Workloads.all
    @ [
        differential "rmat" Workloads.rmat_flux;
        mutated "bsearch" ~bug:("while lo < hi", "while lo <= hi");
        mutated "dotprod" ~bug:("i < x.len()", "i <= x.len()");
        Alcotest.test_case "seeded horn corpus: no divergence" `Slow
          hgen_corpus;
      ] )
