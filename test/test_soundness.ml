(** A differential soundness fuzzer for the checker (the executable
    counterpart of Theorem 3.2).

    We generate random well-typed programs in the Rust subset that
    manipulate vectors with arbitrary (possibly out-of-bounds) index
    arithmetic, run the Flux checker on them, and for every program the
    checker ACCEPTS we execute it on many random inputs: a bounds panic
    is a soundness bug and fails the test. (Programs the checker
    rejects are fine — the checker is deliberately incomplete.)

    The generator is biased to produce both safe access patterns
    (guarded by comparisons against [len]) and unsafe ones, so a
    meaningful fraction of programs lands on each side. *)

open Flux_interp
module Checker = Flux_check.Checker

(* ------------------------------------------------------------------ *)
(* Program generator                                                   *)
(* ------------------------------------------------------------------ *)

(** A tiny AST of generated statements; rendered to source text. The
    generated function has the shape:

    fn f(v: &mut RVec<i32>, a: usize, b: usize) -> i32 {
        let mut acc = 0;
        let mut i = <init>;
        <stmts, including a while loop over i>
        acc
    }
*)
type gexpr =
  | GVar of string
  | GInt of int
  | GAdd of gexpr * gexpr
  | GSub of gexpr * gexpr
  | GDiv2 of gexpr
  | GLen  (** v.len() *)

type gcond =
  | GLt of gexpr * gexpr
  | GLe of gexpr * gexpr

type gstmt =
  | GRead of gexpr  (** acc += *v.get(e) *)
  | GWrite of gexpr  (** *v.get_mut(e) = acc *)
  | GIncr of string * gexpr
  | GIf of gcond * gstmt list
  | GWhile of gcond * gstmt list

let rec render_expr = function
  | GVar x -> x
  | GInt n -> string_of_int n
  | GAdd (a, b) -> Printf.sprintf "(%s + %s)" (render_expr a) (render_expr b)
  | GSub (a, b) -> Printf.sprintf "(%s - %s)" (render_expr a) (render_expr b)
  | GDiv2 a -> Printf.sprintf "(%s / 2)" (render_expr a)
  | GLen -> "v.len()"

let render_cond = function
  | GLt (a, b) -> Printf.sprintf "%s < %s" (render_expr a) (render_expr b)
  | GLe (a, b) -> Printf.sprintf "%s <= %s" (render_expr a) (render_expr b)

let rec render_stmt ind (s : gstmt) : string =
  let pad = String.make ind ' ' in
  match s with
  | GRead e -> Printf.sprintf "%sacc = acc + *v.get(%s);" pad (render_expr e)
  | GWrite e -> Printf.sprintf "%s*v.get_mut(%s) = acc;" pad (render_expr e)
  | GIncr (x, e) -> Printf.sprintf "%s%s = %s + %s;" pad x x (render_expr e)
  | GIf (c, body) ->
      Printf.sprintf "%sif %s {\n%s\n%s}" pad (render_cond c)
        (String.concat "\n" (List.map (render_stmt (ind + 4)) body))
        pad
  | GWhile (c, body) ->
      Printf.sprintf "%swhile %s {\n%s\n%s}" pad (render_cond c)
        (String.concat "\n" (List.map (render_stmt (ind + 4)) body))
        pad

let render_program (stmts : gstmt list) : string =
  Printf.sprintf
    "fn f(v: &mut RVec<i32>, a: usize, b: usize) -> i32 {\n\
    \    let mut acc = 0;\n\
    \    let mut i = 0;\n\
     %s\n\
    \    acc\n\
     }"
    (String.concat "\n" (List.map (render_stmt 4) stmts))

let gen_program : gstmt list QCheck.Gen.t =
  let open QCheck.Gen in
  let base_expr =
    frequency
      [
        (3, return (GVar "i"));
        (2, return (GVar "a"));
        (1, return (GVar "b"));
        (2, map (fun n -> GInt n) (int_range 0 3));
        (1, return GLen);
      ]
  in
  let expr =
    frequency
      [
        (4, base_expr);
        (2, map2 (fun a b -> GAdd (a, b)) base_expr base_expr);
        (2, map2 (fun a b -> GSub (a, b)) base_expr base_expr);
        (1, map (fun a -> GDiv2 a) base_expr);
        (1, return (GSub (GLen, GInt 1)));
      ]
  in
  let cond =
    frequency
      [
        (3, map (fun e -> GLt (e, GLen)) expr);
        (2, map2 (fun a b -> GLt (a, b)) expr expr);
        (1, map2 (fun a b -> GLe (a, b)) expr expr);
      ]
  in
  let leaf =
    frequency
      [
        (3, map (fun e -> GRead e) expr);
        (2, map (fun e -> GWrite e) expr);
        (2, map (fun e -> GIncr ("i", e)) (oneofl [ GInt 1; GInt 2 ]));
      ]
  in
  let stmt =
    frequency
      [
        (4, leaf);
        (2, map2 (fun c body -> GIf (c, [ body ])) cond leaf);
        ( 2,
          map2
            (fun c body -> GWhile (GLt (GVar "i", GLen), [ body; GIncr ("i", c) ]))
            (oneofl [ GInt 1; GInt 2 ])
            leaf );
      ]
  in
  list_size (int_range 1 5) stmt

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)
(* ------------------------------------------------------------------ *)

let runs_without_panic (src : string) : bool =
  let prog = Flux_syntax.Parser.parse_program src in
  Flux_syntax.Typeck.check_program prog;
  let inputs =
    [
      ([], 0, 0);
      ([ 1 ], 0, 1);
      ([ 1; 2; 3 ], 1, 2);
      ([ 5; 4; 3; 2; 1 ], 4, 0);
      ([ 0 ], 7, 9);
      ([ 2; 2 ], 2, 2);
      ([ 1; 2; 3; 4; 5; 6; 7 ], 3, 6);
    ]
  in
  List.for_all
    (fun (xs, a, b) ->
      let vec =
        Interp.VVec (Interp.vec_of_list (List.map (fun n -> Interp.VInt n) xs))
      in
      match
        Interp.run_fn ~fuel:200_000 prog "f"
          [ Interp.VRefCell (ref vec); Interp.VInt a; Interp.VInt b ]
      with
      | _ -> true
      | exception Interp.Out_of_fuel -> true
      | exception Interp.Panic _ -> false)
    inputs

let accepted_by_flux (src : string) : bool =
  try Checker.report_ok (Checker.check_source src)
  with Checker.Check_error _ | Flux_rtype.Rty.Type_error _ -> false

let soundness_prop =
  QCheck.Test.make ~name:"accepted random programs never panic" ~count:150
    (QCheck.make ~print:render_program gen_program) (fun stmts ->
      let src = render_program stmts in
      if accepted_by_flux src then
        if runs_without_panic src then true
        else
          QCheck.Test.fail_reportf
            "SOUNDNESS BUG: flux accepted a panicking program:@.%s" src
      else true (* rejection is always allowed *))

(** Sanity meta-test: the generator must produce a healthy mix of
    accepted and rejected programs, otherwise the property above is
    vacuous. *)
let generator_mix () =
  let st = Random.State.make [| 42 |] in
  let accepted = ref 0 and rejected = ref 0 in
  for _ = 1 to 60 do
    let stmts = QCheck.Gen.generate1 ~rand:st gen_program in
    let src = render_program stmts in
    if accepted_by_flux src then incr accepted else incr rejected
  done;
  if !accepted < 3 then
    Alcotest.failf "generator too hostile: only %d/60 accepted" !accepted;
  if !rejected < 3 then
    Alcotest.failf "generator too tame: only %d/60 rejected" !rejected

(* ------------------------------------------------------------------ *)
(* Deterministic differential tests: truncated div/mod                 *)
(* ------------------------------------------------------------------ *)

(* The solver used to linearize [/] and [%] with Euclidean semantics
   (remainder in [0, c)), while the interpreter — like Rust — truncates
   toward zero: [(-7) / 2 = -3] and [(-7) % 2 = -1]. Each case below is
   a one-argument program, the checker's expected verdict, and an OCaml
   mirror of its spec. The [`dc_accept = false`] cases are exactly the
   programs the Euclidean encoding wrongly accepted: if the encoding
   regresses, either the verdict check or the interpreter cross-check
   fails. *)

type divmod_case = {
  dc_name : string;
  dc_src : string;
  dc_accept : bool;
  dc_spec : int -> int -> bool;  (** input → result → does the spec hold? *)
}

let divmod_cases =
  [
    {
      dc_name = "x % 2 is not nonnegative (Euclid-unsound)";
      dc_src =
        {|#[lr::sig(fn(i32) -> i32{v: 0 <= v})]
          fn f(x: i32) -> i32 { x % 2 }|};
      dc_accept = false;
      dc_spec = (fun _ r -> 0 <= r);
    };
    {
      dc_name = "x % 2 < 2";
      dc_src =
        {|#[lr::sig(fn(i32) -> i32{v: v < 2})]
          fn f(x: i32) -> i32 { x % 2 }|};
      dc_accept = true;
      dc_spec = (fun _ r -> r < 2);
    };
    {
      dc_name = "x / 2 halves within one";
      dc_src =
        {|#[lr::sig(fn(i32<@a>) -> i32{v: a - 1 <= v + v && v + v <= a + 1})]
          fn f(x: i32) -> i32 { x / 2 }|};
      dc_accept = true;
      dc_spec = (fun a r -> a - 1 <= r + r && r + r <= a + 1);
    };
    {
      dc_name = "2*(x/2) <= x (Euclid-unsound)";
      dc_src =
        {|#[lr::sig(fn(i32<@a>) -> i32{v: v + v <= a})]
          fn f(x: i32) -> i32 { x / 2 }|};
      dc_accept = false;
      dc_spec = (fun a r -> r + r <= a);
    };
    {
      (* joins infer κ over the qualifier lattice, so the spec sticks
         to qualifier-expressible facts (0 <= v); the point is that the
         sign guard still recovers nonnegativity of [%] under the
         truncated encoding *)
      dc_name = "guarded mod is nonnegative";
      dc_src =
        {|#[lr::sig(fn(i32) -> i32{v: 0 <= v})]
          fn f(x: i32) -> i32 { if 0 <= x { x % 5 } else { 0 } }|};
      dc_accept = true;
      dc_spec = (fun _ r -> 0 <= r);
    };
  ]

let divmod_inputs = [ -9; -8; -7; -5; -3; -2; -1; 0; 1; 2; 3; 5; 7; 8; 9 ]

let run_f (src : string) (n : int) : int =
  let prog = Flux_syntax.Parser.parse_program src in
  Flux_syntax.Typeck.check_program prog;
  match Interp.run_fn ~fuel:10_000 prog "f" [ Interp.VInt n ] with
  | Interp.VInt r -> r
  | _ -> Alcotest.fail "expected an integer result"

let divmod_test (c : divmod_case) =
  Alcotest.test_case c.dc_name `Quick (fun () ->
      Alcotest.(check bool) "checker verdict" c.dc_accept
        (accepted_by_flux c.dc_src);
      if c.dc_accept then
        (* accepted ⇒ the interpreter agrees with the spec everywhere,
           negative dividends included *)
        List.iter
          (fun n ->
            let r = run_f c.dc_src n in
            if not (c.dc_spec n r) then
              Alcotest.failf
                "SOUNDNESS BUG: accepted, but spec fails at x=%d (result %d)" n
                r)
          divmod_inputs
      else
        (* rejected ⇒ the rejection is a genuine soundness issue, not
           incompleteness: some input falsifies the spec, so any
           encoding accepting this program (Euclidean did) is unsound *)
        Alcotest.(check bool)
          "spec genuinely falsified by some input" true
          (List.exists
             (fun n -> not (c.dc_spec n (run_f c.dc_src n)))
             divmod_inputs))

(** Fixed seed for the randomized property: a failure reprints the
    offending program, and re-running with this constant replays the
    identical case sequence. *)
let qcheck_seed = 0x5eed0

let tests =
  ( "soundness-fuzz",
    [
      Alcotest.test_case "generator produces a mix" `Slow generator_mix;
      QCheck_alcotest.to_alcotest
        ~rand:(Random.State.make [| qcheck_seed |])
        soundness_prop;
    ] )

let divmod_tests = ("soundness-divmod", List.map divmod_test divmod_cases)
