(** Validity and satisfiability checking for the quantifier-free
    refinement logic.

    Pipeline:
    + {b Elaboration}: integer division/modulo by a positive constant is
      linearized with fresh quotient/remainder variables under
      {e truncated} (Rust/OCaml) semantics — the remainder's sign
      follows the dividend's; products of two non-constants and general
      division are abstracted by opaque variables; uninterpreted
      applications are Ackermannized (opaque variables plus pairwise
      congruence constraints); [Ite] is lifted out of terms; atoms
      mentioning reals are abstracted as opaque boolean atoms (floats
      are never refined, only branched on).
    + {b DPLL}: the boolean skeleton is searched by splitting on atoms,
      with the theory consulted at (partially) complete assignments.
    + {b Theory}: conjunctions of linear integer literals go to
      {!Lia.sat_literals} (Fourier–Motzkin with integer tightening).

    The checker is sound for validity: [valid t = true] implies [t]
    holds over the integers. It can be incomplete (a valid [t] may be
    reported invalid) when rational reasoning or opaque abstraction
    loses information — the safe polarity for a verifier. *)

type stats = {
  mutable queries : int;
  mutable cache_hits : int;
  mutable theory_checks : int;
  mutable max_atoms : int;
  mutable time : float;
}

(* Solver state — stats plus the query caches further below — is
   domain-local so concurrent per-function checks neither race nor
   contend. Each domain warms its own cache; the engine's profile
   merge step aggregates the per-domain counters. *)
type state = {
  st_stats : stats;
  st_cache_sat : bool Term.Tbl.t;
  st_cache_valid : bool Term.Tbl.t;
}

let dls : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        st_stats =
          { queries = 0; cache_hits = 0; theory_checks = 0; max_atoms = 0; time = 0.0 };
        st_cache_sat = Term.Tbl.create 4096;
        st_cache_valid = Term.Tbl.create 4096;
      })

let stats () = (Domain.DLS.get dls).st_stats

let reset_stats () =
  let stats = stats () in
  stats.queries <- 0;
  stats.cache_hits <- 0;
  stats.theory_checks <- 0;
  stats.max_atoms <- 0;
  stats.time <- 0.0

(* ------------------------------------------------------------------ *)
(* Linear conversion of atoms                                          *)
(* ------------------------------------------------------------------ *)

exception Nonlinear

let rec lin_of_term (t : Term.t) : Lia.lin =
  match t with
  | Var (x, _) -> Lia.lin_var x
  | Int n -> Lia.lin_const n
  | Neg a -> Lia.lin_scale (-1) (lin_of_term a)
  | Binop (Add, a, b) -> Lia.lin_add (lin_of_term a) (lin_of_term b)
  | Binop (Sub, a, b) -> Lia.lin_sub (lin_of_term a) (lin_of_term b)
  | Binop (Mul, Int k, a) | Binop (Mul, a, Int k) ->
      Lia.lin_scale k (lin_of_term a)
  | _ -> raise Nonlinear

(** Convert an assigned atom into a theory literal. Boolean-variable
    atoms carry no arithmetic content and yield [None]. *)
let literal_of_atom (t : Term.t) (value : bool) : Lia.literal option =
  match t with
  | Term.Var (_, Sort.Bool) -> None
  | Term.Cmp (op, a, b) -> (
      try
        let la = lin_of_term a and lb = lin_of_term b in
        let d = Lia.lin_sub la lb in
        (* a op b  ~  d ⋈ 0 *)
        let le0 l = Some (Lia.Le0 l) in
        match (op, value) with
        | Term.Lt, true -> le0 { d with Lia.const = d.Lia.const + 1 }
        | Term.Lt, false -> le0 (Lia.lin_scale (-1) d)
        | Term.Le, true -> le0 d
        | Term.Le, false ->
            let nd = Lia.lin_scale (-1) d in
            le0 { nd with Lia.const = nd.Lia.const + 1 }
        | Term.Gt, true ->
            let nd = Lia.lin_scale (-1) d in
            le0 { nd with Lia.const = nd.Lia.const + 1 }
        | Term.Gt, false -> le0 d
        | Term.Ge, true -> le0 (Lia.lin_scale (-1) d)
        | Term.Ge, false -> le0 { d with Lia.const = d.Lia.const + 1 }
      with Nonlinear -> None)
  | Term.Eq (a, b) -> (
      try
        let d = Lia.lin_sub (lin_of_term a) (lin_of_term b) in
        if value then Some (Lia.Eq0 d) else Some (Lia.Ne0 d)
      with Nonlinear -> None)
  | _ -> None

(** The query's top-level unit facts, as linear theory literals:
    conjuncts forced by the boolean structure alone ([And] children
    under positive polarity, [Or]/[Imp] children under negation).
    Every model of the query satisfies them, so the div/mod encoding
    below may consult them to settle a dividend's sign up front. *)
let rec unit_facts acc (sign : bool) (t : Term.t) : Lia.literal list =
  match (sign, t) with
  | true, Term.And ts ->
      List.fold_left (fun acc t -> unit_facts acc true t) acc ts
  | false, Term.Or ts ->
      List.fold_left (fun acc t -> unit_facts acc false t) acc ts
  | false, Term.Imp (a, b) -> unit_facts (unit_facts acc false b) true a
  | _, Term.Not a -> unit_facts acc (not sign) a
  | _, Term.Ne (a, b) -> unit_facts acc (not sign) (Term.Eq (a, b))
  | _, (Term.Cmp _ | Term.Eq _) -> (
      match literal_of_atom t sign with Some l -> l :: acc | None -> acc)
  | _ -> acc

(* ------------------------------------------------------------------ *)
(* Elaboration                                                         *)
(* ------------------------------------------------------------------ *)

(* Hash table for {e small} term keys — elaboration's opaque keys and
   the DPLL atom table. These keys are leaf-sized, so the bounded
   polymorphic hash covers them fully — one cheap lookup per
   occurrence, with the phys-first [Term.equal] resolving hits
   immediately because such terms are interned by the smart
   constructors. Keying by the memoized full [Term.hash] ({!Term.Tbl})
   would route every occurrence through the intern table a second time
   for no gain; [Term.Tbl] is reserved for the query caches, whose
   large raw keys the bounded hash would collapse into a few buckets. *)
module SmallTbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Stdlib.Hashtbl.hash
end)

type elab_state = {
  mutable defs : Term.t list;  (** definitional constraints *)
  opaque : Term.t SmallTbl.t;  (** original term -> opaque var *)
  apps : (string, (Term.t * Term.t list) list) Hashtbl.t;
      (** fn symbol -> [(opaque var, elaborated args)] for Ackermann *)
  mutable counter : int;
  units : Lia.literal list Lazy.t;
      (** the query's top-level unit facts (see {!unit_facts}); lazy
          because they are only consulted when elaboration meets a
          division/remainder, and computing them walks every top-level
          atom of the query *)
  mutable record : Proof.fresh list option;
      (** when [Some], every fresh-variable introduction is recorded
          (reversed) for a certificate, and the div/mod encoding always
          takes the unconditional split form — the sign-known shortcut
          consults the unit facts, which the independent replay checker
          does not re-derive *)
}

let fresh st prefix sort =
  st.counter <- st.counter + 1;
  Term.var ~sort (Printf.sprintf "$%s%d" prefix st.counter)

let record_fresh st (f : Proof.fresh) =
  match st.record with
  | None -> ()
  | Some acc -> st.record <- Some (f :: acc)

let var_name (v : Term.t) =
  match v with Term.Var (x, _) -> x | _ -> assert false

let opaque_of st key sort =
  let key = Term.hc key in
  match SmallTbl.find_opt st.opaque key with
  | Some v -> v
  | None ->
      let v = fresh st "o" sort in
      SmallTbl.add st.opaque key v;
      record_fresh st (Proof.Opaque (key, var_name v, sort));
      v

let rec has_real (t : Term.t) =
  match t with
  | Real _ -> true
  | Var (_, Sort.Real) -> true
  | Var _ | Int _ | Bool _ -> false
  | Neg a | Not a -> has_real a
  | Binop (_, a, b) | Cmp (_, a, b) | Eq (a, b) | Ne (a, b) | Imp (a, b) | Iff (a, b)
    ->
      has_real a || has_real b
  | And ts | Or ts | App (_, ts) -> List.exists has_real ts
  | Ite (a, b, c) -> has_real a || has_real b || has_real c

(** Truncated (Rust/OCaml) division semantics, shared between [a / c]
    and [a % c] for a positive constant [c]: one quotient variable [q]
    per (dividend, divisor) pair, with the remainder [r = a - c*q]
    constrained by

      -c < r < c,   a >= 0 ==> r >= 0,   a <= 0 ==> r <= 0

    so the remainder's sign follows the dividend's — exactly OCaml's
    [/]/[mod] and Rust's [/]/[%]. The previously-used Euclidean
    constraint [0 <= r < c] is {e unsound} for this operational
    semantics: it proves (-7)/2 = -4 and (-7) mod 2 = 1, while the
    interpreter computes -3 and -1. Sharing [q] also links [a / c] and
    [a % c] appearing in the same query via [a = c*q + r].

    The sign conditionals cost two extra DPLL branch atoms per
    division. When the query's unit facts already settle the dividend's
    sign (the common case: usize index arithmetic under hypotheses like
    [lo <= hi]), a single Fourier–Motzkin check here lets us emit the
    unconditional one-sided bounds instead — same strength, no case
    split. *)
let divmod st (a : Term.t) (c : int) : Term.t * Term.t =
  let dkey = Term.hc (Term.Binop (Div, a, Term.int c)) in
  let q =
    match SmallTbl.find_opt st.opaque dkey with
    | Some q -> q
    | None ->
        let q = fresh st "q" Sort.Int in
        SmallTbl.add st.opaque dkey q;
        record_fresh st (Proof.Divmod (a, c, var_name q));
        let r = Term.sub a (Term.mul (Term.int c) q) in
        let la = try Some (lin_of_term a) with Nonlinear -> None in
        (* [refuted l]: the unit facts rule out [l], definitely. *)
        let refuted l = not (Lia.sat_literals (l :: Lazy.force st.units)) in
        let a_neg la = Lia.Le0 { la with Lia.const = la.Lia.const + 1 } in
        let a_pos la =
          let n = Lia.lin_scale (-1) la in
          Lia.Le0 { n with Lia.const = n.Lia.const + 1 }
        in
        let recording = st.record <> None in
        let sign_defs =
          match la with
          | Some la when (not recording) && refuted (a_neg la) ->
              (* a >= 0 in every model: truncated = Euclidean *)
              Profile.incr "solver.divmod_sign_known";
              [ Term.le (Term.int 0) r; Term.lt r (Term.int c) ]
          | Some la when (not recording) && refuted (a_pos la) ->
              (* a <= 0 in every model *)
              Profile.incr "solver.divmod_sign_known";
              [ Term.lt (Term.int (-c)) r; Term.le r (Term.int 0) ]
          | _ ->
              Profile.incr "solver.divmod_sign_split";
              [
                Term.lt (Term.int (-c)) r;
                Term.lt r (Term.int c);
                Term.mk_imp (Term.ge a (Term.int 0)) (Term.ge r (Term.int 0));
                Term.mk_imp (Term.le a (Term.int 0)) (Term.le r (Term.int 0));
              ]
        in
        st.defs <- sign_defs @ st.defs;
        q
  in
  (q, Term.sub a (Term.mul (Term.int c) q))

(** Elaborate an integer-sorted term into a linear-safe one. *)
let rec elab_int st (t : Term.t) : Term.t =
  match t with
  | Var _ | Int _ -> t
  | Real _ -> opaque_of st t Sort.Int
  | Neg a -> Term.neg (elab_int st a)
  | Binop (Add, a, b) -> Term.add (elab_int st a) (elab_int st b)
  | Binop (Sub, a, b) -> Term.sub (elab_int st a) (elab_int st b)
  | Binop (Mul, a, b) -> (
      let a = elab_int st a and b = elab_int st b in
      match (a, b) with
      | Int _, _ | _, Int _ -> Term.mul a b
      | _ -> (
          (* nonlinear: abstract, but remember commutativity by also
             registering the flipped product under the same variable *)
          let key = Term.hc (Term.Binop (Mul, a, b)) in
          match SmallTbl.find_opt st.opaque key with
          | Some v -> v
          | None ->
              let v = fresh st "o" Sort.Int in
              SmallTbl.replace st.opaque key v;
              SmallTbl.replace st.opaque (Term.hc (Term.Binop (Mul, b, a))) v;
              record_fresh st (Proof.Opaque (key, var_name v, Sort.Int));
              v))
  | Binop (Div, a, Int c) when c > 0 ->
      let a = elab_int st a in
      fst (divmod st a c)
  | Binop (Mod, a, Int c) when c > 0 ->
      let a = elab_int st a in
      snd (divmod st a c)
  | Binop ((Div | Mod), _, _) -> opaque_of st t Sort.Int
  | App (f, args) ->
      let args = List.map (elab_int st) args in
      let key = Term.App (f, args) in
      let v = opaque_of st key Sort.Int in
      let prev = try Hashtbl.find st.apps f with Not_found -> [] in
      if not (List.exists (fun (v', _) -> Term.equal v v') prev) then begin
        (* Ackermann congruence with earlier applications of f. To keep
           the quadratic blowup in check on array-heavy queries (the WP
           baseline), once a symbol has many applications we only relate
           pairs that already share one argument syntactically — e.g.
           sel(a,i) vs sel(a,j). Dropping the other pairs only weakens
           the hypotheses, which is sound for validity. *)
        let filtered = List.length args >= 2 && List.length prev >= 8 in
        List.iter
          (fun (v', args') ->
            if
              List.length args = List.length args'
              && ((not filtered) || List.exists2 Term.equal args args')
            then
              st.defs <-
                Term.mk_imp
                  (Term.mk_and (List.map2 Term.eq args args'))
                  (Term.eq v v')
                :: st.defs)
          prev;
        Hashtbl.replace st.apps f ((v, args) :: prev)
      end;
      v
  | Ite (c, a, b) ->
      let c = elab_pred st c in
      let a = elab_int st a and b = elab_int st b in
      let v = fresh st "ite" Sort.Int in
      record_fresh st (Proof.IteV (c, a, b, var_name v));
      st.defs <-
        Term.mk_imp c (Term.eq v a)
        :: Term.mk_imp (Term.mk_not c) (Term.eq v b)
        :: st.defs;
      v
  | Bool _ | Cmp _ | Eq _ | Ne _ | And _ | Or _ | Not _ | Imp _ | Iff _ ->
      raise (Term.Ill_sorted (Term.to_string t))

(** Elaborate a boolean-sorted term (a predicate). *)
and elab_pred st (t : Term.t) : Term.t =
  match t with
  | Bool _ -> t
  | Var (_, Sort.Bool) -> t
  | Var _ -> raise (Term.Ill_sorted (Term.to_string t))
  | Cmp (op, a, b) ->
      if has_real a || has_real b then opaque_of st t Sort.Bool
      else Term.mk_cmp op (elab_int st a) (elab_int st b)
  | Eq (a, b) | Ne (a, b) -> (
      let mk x y = match t with Eq _ -> Term.mk_eq x y | _ -> Term.mk_ne x y in
      match Term.sort_of a with
      | Sort.Bool ->
          let p = Term.mk_iff (elab_pred st a) (elab_pred st b) in
          (match t with Eq _ -> p | _ -> Term.mk_not p)
      | Sort.Real -> opaque_of st t Sort.Bool
      | Sort.Int | Sort.Loc ->
          if has_real a || has_real b then opaque_of st t Sort.Bool
          else mk (elab_int st a) (elab_int st b))
  | And ts -> Term.mk_and (List.map (elab_pred st) ts)
  | Or ts -> Term.mk_or (List.map (elab_pred st) ts)
  | Not a -> Term.mk_not (elab_pred st a)
  | Imp (a, b) -> Term.mk_imp (elab_pred st a) (elab_pred st b)
  | Iff (a, b) -> Term.mk_iff (elab_pred st a) (elab_pred st b)
  | Ite (c, a, b) ->
      let c = elab_pred st c in
      Term.mk_or
        [
          Term.mk_and [ c; elab_pred st a ];
          Term.mk_and [ Term.mk_not c; elab_pred st b ];
        ]
  | App _ ->
      (* boolean-valued uninterpreted application: opaque atom *)
      opaque_of st t Sort.Bool
  | Int _ | Real _ | Binop _ | Neg _ ->
      raise (Term.Ill_sorted (Term.to_string t))

(* ------------------------------------------------------------------ *)
(* NNF over atom ids                                                   *)
(* ------------------------------------------------------------------ *)

type bform =
  | BTrue
  | BFalse
  | BLit of int * bool  (** atom id, polarity *)
  | BAnd of bform list
  | BOr of bform list

type atoms = {
  table : int SmallTbl.t;  (** structural keys, phys-fast on interned terms *)
  mutable list : Term.t list;  (** reversed *)
  mutable n : int;
}

let atom_id atoms (t : Term.t) =
  match SmallTbl.find_opt atoms.table t with
  | Some i -> i
  | None ->
      let i = atoms.n in
      atoms.n <- i + 1;
      atoms.list <- t :: atoms.list;
      SmallTbl.add atoms.table t i;
      i

(** Convert an elaborated predicate to NNF over atom ids. *)
let rec to_bform atoms pol (t : Term.t) : bform =
  match t with
  | Bool b -> if b = pol then BTrue else BFalse
  | Not a -> to_bform atoms (not pol) a
  | And ts ->
      if pol then BAnd (List.map (to_bform atoms true) ts)
      else BOr (List.map (to_bform atoms false) ts)
  | Or ts ->
      if pol then BOr (List.map (to_bform atoms true) ts)
      else BAnd (List.map (to_bform atoms false) ts)
  | Imp (a, b) ->
      if pol then BOr [ to_bform atoms false a; to_bform atoms true b ]
      else BAnd [ to_bform atoms true a; to_bform atoms false b ]
  | Iff (a, b) ->
      if pol then
        BOr
          [
            BAnd [ to_bform atoms true a; to_bform atoms true b ];
            BAnd [ to_bform atoms false a; to_bform atoms false b ];
          ]
      else
        BOr
          [
            BAnd [ to_bform atoms true a; to_bform atoms false b ];
            BAnd [ to_bform atoms false a; to_bform atoms true b ];
          ]
  | Ne (a, b) -> to_bform atoms (not pol) (Term.Eq (a, b))
  | Var _ | Cmp _ | Eq _ -> BLit (atom_id atoms t, pol)
  | Ite _ | App _ | Int _ | Real _ | Binop _ | Neg _ ->
      raise (Term.Ill_sorted (Term.to_string t))

(* ------------------------------------------------------------------ *)
(* DPLL                                                                *)
(* ------------------------------------------------------------------ *)

let rec simplify (assign : int array) (f : bform) : bform =
  match f with
  | BTrue | BFalse -> f
  | BLit (i, pol) -> (
      match assign.(i) with
      | 0 -> f
      | 1 -> if pol then BTrue else BFalse
      | _ -> if pol then BFalse else BTrue)
  | BAnd fs ->
      let fs = List.map (simplify assign) fs in
      if List.exists (fun f -> f = BFalse) fs then BFalse
      else begin
        match List.filter (fun f -> f <> BTrue) fs with
        | [] -> BTrue
        | [ f ] -> f
        | fs -> BAnd fs
      end
  | BOr fs ->
      let fs = List.map (simplify assign) fs in
      if List.exists (fun f -> f = BTrue) fs then BTrue
      else begin
        match List.filter (fun f -> f <> BFalse) fs with
        | [] -> BFalse
        | [ f ] -> f
        | fs -> BOr fs
      end

let rec first_lit = function
  | BLit (i, _) -> Some i
  | BAnd fs | BOr fs -> List.find_map first_lit fs
  | BTrue | BFalse -> None

(** Literals forced by the top-level conjunctive structure. *)
let unit_literals (f : bform) : (int * bool) list =
  match f with
  | BLit (i, pol) -> [ (i, pol) ]
  | BAnd fs ->
      List.filter_map (function BLit (i, pol) -> Some (i, pol) | _ -> None) fs
  | _ -> []

let dpll_sat (atom_arr : Term.t array) (f : bform) : bool =
  let n = Array.length atom_arr in
  let assign = Array.make n 0 in
  let stats = stats () in
  let theory_consistent () =
    stats.theory_checks <- stats.theory_checks + 1;
    let lits = ref [] in
    Array.iteri
      (fun i v ->
        if v <> 0 then
          match literal_of_atom atom_arr.(i) (v = 1) with
          | Some l -> lits := l :: !lits
          | None -> ())
      assign;
    Lia.sat_literals !lits
  in
  (* [undo] records assignments made at this decision level *)
  let rec go f (undo : int list ref) =
    match simplify assign f with
    | BFalse -> false
    | BTrue -> theory_consistent ()
    | f' -> (
        match unit_literals f' with
        | _ :: _ as forced ->
            let ok =
              List.for_all
                (fun (i, pol) ->
                  let v = if pol then 1 else 2 in
                  if assign.(i) = 0 then begin
                    assign.(i) <- v;
                    undo := i :: !undo;
                    true
                  end
                  else assign.(i) = v)
                forced
            in
            if ok then go f' undo else false
        | [] -> (
            match first_lit f' with
            | None -> theory_consistent ()
            | Some i ->
                (* DPLL(T)-style early pruning: if the literals forced
                   so far are already theory-inconsistent, the whole
                   subtree is unsatisfiable *)
                if not (theory_consistent ()) then false
                else
                  let try_value v =
                    assign.(i) <- v;
                    let undo' = ref [] in
                    let r = go f' undo' in
                    List.iter (fun j -> assign.(j) <- 0) !undo';
                    assign.(i) <- 0;
                    r
                  in
                  try_value 1 || try_value 2))
  in
  let undo0 = ref [] in
  go f undo0

(* ------------------------------------------------------------------ *)
(* Certifying refutation and model-producing search                    *)
(* ------------------------------------------------------------------ *)

(** Like {!dpll_sat} on an unsatisfiable skeleton, but building the
    search tree as a {!Proof.tree}: unit propagations become [Unit]
    nodes, branches become [Split] nodes, and every closed path carries
    either a propositional [BoolLeaf] or a {!Farkas.refute} certificate
    of its theory literals. Returns [None] when the skeleton is
    satisfiable {e or} when some infeasible path cannot be certified —
    never a wrong tree (the replay checker re-validates everything
    anyway). *)
let dpll_refute (atom_arr : Term.t array) (f : bform) : Proof.tree option =
  let n = Array.length atom_arr in
  let assign = Array.make n 0 in
  let assigned_hyps () =
    let hyps = ref [] in
    Array.iteri
      (fun i v ->
        if v <> 0 then
          match literal_of_atom atom_arr.(i) (v = 1) with
          | Some l -> hyps := (i, v = 1, l) :: !hyps
          | None -> ())
      assign;
    !hyps
  in
  let theory_refute () : Proof.trefut option =
    let hyps = assigned_hyps () in
    if Lia.sat_literals (List.map (fun (_, _, l) -> l) hyps) then None
    else
      match Farkas.refute hyps with
      | Some tr -> Some tr
      | None ->
          (* the theory found the path infeasible but the certifying
             mirror could not reproduce it — a completeness gap, not a
             soundness problem; the caller keeps searching deeper or
             gives up *)
          Profile.incr "cert.farkas_gap";
          None
  in
  let rec go f : Proof.tree option =
    match simplify assign f with
    | BFalse -> Some Proof.BoolLeaf
    | BTrue -> Option.map (fun tr -> Proof.TheoryLeaf tr) (theory_refute ())
    | f' -> (
        match unit_literals f' with
        | (i, pol) :: _ ->
            assign.(i) <- (if pol then 1 else 2);
            let sub = go f' in
            assign.(i) <- 0;
            Option.map (fun t -> Proof.Unit (i, pol, t)) sub
        | [] -> (
            (* early pruning, mirroring the sat search: a path already
               infeasible closes here if Farkas can certify it; if not,
               branching deeper adds literals and may still succeed *)
            match theory_refute () with
            | Some tr -> Some (Proof.TheoryLeaf tr)
            | None -> (
                match first_lit f' with
                | None -> None
                | Some i -> (
                    assign.(i) <- 1;
                    let l = go f' in
                    assign.(i) <- 0;
                    match l with
                    | None -> None
                    | Some lt -> (
                        assign.(i) <- 2;
                        let r = go f' in
                        assign.(i) <- 0;
                        match r with
                        | None -> None
                        | Some rt -> Some (Proof.Split (i, lt, rt)))))))
  in
  go f

(** Like {!dpll_sat}, but on success returns the satisfying atom
    assignment found at the accepting leaf. *)
let dpll_model (atom_arr : Term.t array) (f : bform) :
    (int * bool) list option =
  let n = Array.length atom_arr in
  let assign = Array.make n 0 in
  let result = ref None in
  let theory_consistent () =
    let lits = ref [] in
    Array.iteri
      (fun i v ->
        if v <> 0 then
          match literal_of_atom atom_arr.(i) (v = 1) with
          | Some l -> lits := l :: !lits
          | None -> ())
      assign;
    Lia.sat_literals !lits
  in
  let capture () =
    let m = ref [] in
    Array.iteri (fun i v -> if v <> 0 then m := (i, v = 1) :: !m) assign;
    result := Some (List.rev !m)
  in
  let accept () =
    if theory_consistent () then begin
      capture ();
      true
    end
    else false
  in
  let rec go f (undo : int list ref) =
    match simplify assign f with
    | BFalse -> false
    | BTrue -> accept ()
    | f' -> (
        match unit_literals f' with
        | _ :: _ as forced ->
            let ok =
              List.for_all
                (fun (i, pol) ->
                  let v = if pol then 1 else 2 in
                  if assign.(i) = 0 then begin
                    assign.(i) <- v;
                    undo := i :: !undo;
                    true
                  end
                  else assign.(i) = v)
                forced
            in
            if ok then go f' undo else false
        | [] -> (
            match first_lit f' with
            | None -> accept ()
            | Some i ->
                if not (theory_consistent ()) then false
                else
                  let try_value v =
                    assign.(i) <- v;
                    let undo' = ref [] in
                    let r = go f' undo' in
                    List.iter (fun j -> assign.(j) <- 0) !undo';
                    assign.(i) <- 0;
                    r
                  in
                  try_value 1 || try_value 2))
  in
  let undo0 = ref [] in
  if go f undo0 then !result else None

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let cache_sat () = (Domain.DLS.get dls).st_cache_sat
let cache_valid () = (Domain.DLS.get dls).st_cache_valid

let clear_cache () =
  Term.Tbl.clear (cache_sat ());
  Term.Tbl.clear (cache_valid ())

(** [sat t]: is [t] satisfiable over the integers? May over-approximate
    (answer [true] for an unsatisfiable [t]) but [false] is definite. *)
let sat_raw (t : Term.t) : bool =
  let st =
    {
      defs = [];
      opaque = SmallTbl.create 16;
      apps = Hashtbl.create 8;
      counter = 0;
      units = lazy (unit_facts [] true t);
      record = None;
    }
  in
  let t_elab = Unix.gettimeofday () in
  let t' = elab_pred st t in
  let full = Term.mk_and (t' :: st.defs) in
  Profile.add_time "solver.elab_s" (Unix.gettimeofday () -. t_elab);
  match full with
  | Bool b -> b
  | _ ->
      let atoms = { table = SmallTbl.create 64; list = []; n = 0 } in
      let f = to_bform atoms true full in
      let atom_arr = Array.of_list (List.rev atoms.list) in
      let stats = stats () in
      if Array.length atom_arr > stats.max_atoms then
        stats.max_atoms <- Array.length atom_arr;
      let tc0 = stats.theory_checks in
      let t_dpll = Unix.gettimeofday () in
      let r = dpll_sat atom_arr f in
      Profile.add_time "solver.dpll_s" (Unix.gettimeofday () -. t_dpll);
      Profile.add "solver.theory_checks" (stats.theory_checks - tc0);
      r

let sat (t : Term.t) : bool =
  let stats = stats () in
  stats.queries <- stats.queries + 1;
  Profile.incr "solver.queries";
  let cache_sat = cache_sat () in
  match Term.Tbl.find_opt cache_sat t with
  | Some r ->
      stats.cache_hits <- stats.cache_hits + 1;
      Profile.incr "solver.cache_hits";
      r
  | None ->
      let t0 = Unix.gettimeofday () in
      let r = sat_raw t in
      stats.time <- stats.time +. (Unix.gettimeofday () -. t0);
      Term.Tbl.replace cache_sat t r;
      r

(** [valid t]: does [t] hold for all integer assignments? [true] is
    definite; [false] may be incompleteness. *)
let valid (t : Term.t) : bool =
  (* trivial [Bool] goals short-circuit below, but still count as
     queries: cache-hit rates must be computed against the true query
     volume *)
  let stats = stats () in
  stats.queries <- stats.queries + 1;
  Profile.incr "solver.queries";
  match t with
  | Bool b ->
      Profile.incr "solver.trivial";
      b
  | _ -> (
      let cache_valid = cache_valid () in
      match Term.Tbl.find_opt cache_valid t with
      | Some r ->
          stats.cache_hits <- stats.cache_hits + 1;
          Profile.incr "solver.cache_hits";
          r
      | None ->
          let t0 = Unix.gettimeofday () in
          let r = not (sat_raw (Term.mk_not t)) in
          let dt = Unix.gettimeofday () -. t0 in
          stats.time <- stats.time +. dt;
          Profile.add_time "solver.solve_s" dt;
          Term.Tbl.replace cache_valid t r;
          r)

(** [first_invalid l qs]: decide [valid (l ⇒ qᵢ)] for each goal in
    order — exactly the singleton queries, sharing their cache
    entries — and return the index of the first one that does not
    hold ([None] when all do). One call decides a whole conjunction
    of goals while keeping verdicts bit-identical to asking conjunct
    by conjunct; the fixpoint weakening loop uses it to batch
    survivor re-checks. *)
let first_invalid (l : Term.t) (qs : Term.t list) : int option =
  let rec go i = function
    | [] -> None
    | q :: rest -> if valid (Term.mk_imp l q) then go (i + 1) rest else Some i
  in
  go 0 qs

(** Does the conjunction of [hyps] entail [goal]? *)
let entails (hyps : Term.t list) (goal : Term.t) : bool =
  valid (Term.mk_imp (Term.mk_and hyps) goal)

(** The exact implication {!entails_sliced} hands to {!valid} — exposed
    so certifying callers (the WP verifier) can record the goal they
    actually discharged. *)
let sliced_implication (hyps : Term.t list) (goal : Term.t) : Term.t =
  let seed = Term.free_vars goal in
  let hyps =
    if Term.VarSet.is_empty seed then hyps
    else
      let tagged = List.map (fun h -> (h, Term.free_vars h)) hyps in
      Term.cone_of_influence tagged seed
  in
  Term.mk_imp (Term.mk_and hyps) goal

let entails_sliced (hyps : Term.t list) (goal : Term.t) : bool =
  valid (sliced_implication hyps goal)

(* ------------------------------------------------------------------ *)
(* Certificates and models                                             *)
(* ------------------------------------------------------------------ *)

(** Produce a replayable validity certificate for [goal], or [None] if
    the certifying search cannot close it (including when [goal] is
    simply not valid). Independent of {!valid}: no cache is consulted
    and the div/mod encoding always takes the split form the replay
    checker knows how to re-derive. *)
let certify (goal : Term.t) : Proof.t option =
  let t0 = Unix.gettimeofday () in
  let result =
    match
      let neg = Term.mk_not goal in
      let st =
        {
          defs = [];
          opaque = SmallTbl.create 16;
          apps = Hashtbl.create 8;
          counter = 0;
          units = lazy [];
          record = Some [];
        }
      in
      let neg' = elab_pred st neg in
      let fresh = List.rev (Option.value st.record ~default:[]) in
      let defs = st.defs in
      let full = Term.mk_and (neg' :: defs) in
      match full with
      | Term.Bool false ->
          Some
            {
              Proof.goal;
              fresh;
              skeleton = neg';
              defs;
              atoms = [||];
              tree = Proof.BoolLeaf;
            }
      | Term.Bool true -> None
      | _ -> (
          let atoms = { table = SmallTbl.create 64; list = []; n = 0 } in
          let f = to_bform atoms true full in
          let atom_arr = Array.of_list (List.rev atoms.list) in
          match dpll_refute atom_arr f with
          | None -> None
          | Some tree ->
              Some
                { Proof.goal; fresh; skeleton = neg'; defs; atoms = atom_arr;
                  tree })
    with
    | exception Term.Ill_sorted _ -> None
    | r -> r
  in
  Profile.add_time "cert.certify_s" (Unix.gettimeofday () -. t0);
  result

(** A satisfying assignment for [t] over its free variables, verified
    by ground evaluation before being returned — [Some env] is
    definite. [None] means "no model found": unsatisfiable, or the
    model search / extraction / evaluation lost the witness (opaque
    abstraction, reals, interpreted applications). *)
let model (t : Term.t) : (string * Eval.value) list option =
  match
    let st =
      {
        defs = [];
        opaque = SmallTbl.create 16;
        apps = Hashtbl.create 8;
        counter = 0;
        units = lazy (unit_facts [] true t);
        record = None;
      }
    in
    let t' = elab_pred st t in
    let full = Term.mk_and (t' :: st.defs) in
    match full with
    | Term.Bool false -> None
    | Term.Bool true -> Some ([||], [])
    | _ -> (
        let atoms = { table = SmallTbl.create 64; list = []; n = 0 } in
        let f = to_bform atoms true full in
        let atom_arr = Array.of_list (List.rev atoms.list) in
        match dpll_model atom_arr f with
        | None -> None
        | Some asn -> Some (atom_arr, asn))
  with
  | exception Term.Ill_sorted _ -> None
  | None -> None
  | Some (atom_arr, asn) -> (
      let hyps =
        List.filter_map (fun (i, v) -> literal_of_atom atom_arr.(i) v) asn
      in
      match Farkas.model_literals hyps with
      | None -> None
      | Some ints -> (
          let bools =
            List.filter_map
              (fun (i, v) ->
                match atom_arr.(i) with
                | Term.Var (x, Sort.Bool) -> Some (x, v)
                | _ -> None)
              asn
          in
          let env =
            List.map
              (fun (x, s) ->
                match s with
                | Sort.Bool ->
                    ( x,
                      Eval.VBool
                        (match List.assoc_opt x bools with
                        | Some b -> b
                        | None -> false) )
                | _ ->
                    ( x,
                      Eval.VInt
                        (match List.assoc_opt x ints with
                        | Some n -> n
                        | None -> 0) ))
              (Term.free_vars_sorted t)
          in
          let lookup x =
            match List.assoc_opt x env with
            | Some v -> v
            | None -> Eval.VInt 0
          in
          match Eval.eval_bool lookup t with
          | true -> Some env
          | false -> None
          | exception Eval.Unsupported _ -> None
          | exception Division_by_zero -> None))

(** A verified falsifying assignment for [t]: a model of [¬t]. The
    witness behind an [invalid] verdict. *)
let counterexample (t : Term.t) : (string * Eval.value) list option =
  model (Term.mk_not t)
