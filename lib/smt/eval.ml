(** Concrete evaluation of terms under a finite assignment — the
    ground-truth side of the differential solver oracle.

    [eval] interprets the QF-LIA + bool fragment exactly as {!Solver}
    claims to decide it: truncated division and remainder (OCaml [/]
    and [mod], matching the interpreter and Rust), short-circuit-free
    boolean connectives, and integer comparisons. Anything the solver
    only treats opaquely ([Real] atoms, uninterpreted [App]s) raises
    {!Unsupported}: a differential check has no ground truth for
    opaque abstractions, so callers must avoid or skip such terms.

    Division or remainder by zero raises [Division_by_zero]; the fuzz
    generators only emit nonzero divisors, and the shrinker preserves
    that invariant. *)

type value = VInt of int | VBool of bool

exception Unsupported of string

let pp_value fmt = function
  | VInt n -> Format.pp_print_int fmt n
  | VBool b -> Format.pp_print_bool fmt b

let as_int = function
  | VInt n -> n
  | VBool _ -> raise (Unsupported "boolean used as integer")

let as_bool = function
  | VBool b -> b
  | VInt _ -> raise (Unsupported "integer used as boolean")

(** Evaluate [t] under [env] (mapping every free variable to a value).
    An unbound variable raises [Not_found]. *)
let rec eval (env : string -> value) (t : Term.t) : value =
  match t with
  | Term.Var (x, _) -> env x
  | Term.Int n -> VInt n
  | Term.Bool b -> VBool b
  | Term.Real _ -> raise (Unsupported "real constant")
  | Term.App (f, _) -> raise (Unsupported ("uninterpreted application " ^ f))
  | Term.Binop (op, a, b) ->
      let x = as_int (eval env a) and y = as_int (eval env b) in
      VInt
        (match op with
        | Term.Add -> x + y
        | Term.Sub -> x - y
        | Term.Mul -> x * y
        | Term.Div -> x / y
        | Term.Mod -> x mod y)
  | Term.Neg a -> VInt (-as_int (eval env a))
  | Term.Cmp (op, a, b) ->
      let x = as_int (eval env a) and y = as_int (eval env b) in
      VBool
        (match op with
        | Term.Lt -> x < y
        | Term.Le -> x <= y
        | Term.Gt -> x > y
        | Term.Ge -> x >= y)
  | Term.Eq (a, b) -> VBool (value_eq (eval env a) (eval env b))
  | Term.Ne (a, b) -> VBool (not (value_eq (eval env a) (eval env b)))
  | Term.And ts -> VBool (List.for_all (fun t -> as_bool (eval env t)) ts)
  | Term.Or ts -> VBool (List.exists (fun t -> as_bool (eval env t)) ts)
  | Term.Not a -> VBool (not (as_bool (eval env a)))
  | Term.Imp (a, b) ->
      VBool ((not (as_bool (eval env a))) || as_bool (eval env b))
  | Term.Iff (a, b) ->
      VBool (Bool.equal (as_bool (eval env a)) (as_bool (eval env b)))
  | Term.Ite (c, a, b) -> if as_bool (eval env c) then eval env a else eval env b

and value_eq a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VBool x, VBool y -> x = y
  | _ -> raise (Unsupported "equality at mixed sorts")

let eval_bool env t = as_bool (eval env t)
let eval_int env t = as_int (eval env t)

(** Enumerate every assignment of [vars] drawn from [ints] (for
    integer- and loc-sorted variables) and both booleans, calling [f]
    on each. Stops early when [f] returns [Some _]. The enumeration
    order is fixed (row-major in the given variable order), so searches
    are deterministic. *)
let find_assignment ~(ints : int list) (vars : (string * Sort.t) list)
    (f : (string -> value) -> 'a option) : 'a option =
  let rec go bound = function
    | [] ->
        let env x =
          match List.assoc_opt x bound with
          | Some v -> v
          | None -> raise Not_found
        in
        f env
    | (x, s) :: rest ->
        let candidates =
          match s with
          | Sort.Bool -> [ VBool false; VBool true ]
          | Sort.Int | Sort.Loc -> List.map (fun n -> VInt n) ints
          | Sort.Real -> raise (Unsupported "real variable")
        in
        List.find_map (fun v -> go ((x, v) :: bound) rest) candidates
  in
  go [] vars
