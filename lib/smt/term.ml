(** Terms of the quantifier-free refinement logic.

    A single syntactic category covers both integer-sorted expressions
    and boolean-sorted predicates; [sort_of] recovers the sort. Smart
    constructors perform light simplification (constant folding,
    flattening of [And]/[Or], double-negation elimination) so that the
    constraints shipped to the solver and printed in error messages stay
    readable.

    Small terms built through the smart constructors are
    {e hash-consed}: structurally equal terms under the size cap are
    physically equal, so {!equal} is O(1) on the fast path, {!hash} and
    {!free_vars} are memoized per term, and the solver's query caches
    and elaboration tables ({!Tbl}) avoid deep structural traversals.
    Terms above the cap stay raw (see [max_interned_size]); their
    {!hash}/{!free_vars} recurse one level and hit the memoized small
    children. The raw constructors remain exposed for pattern matching;
    terms built with them bypass interning and simply fall back to the
    structural (slow-path) implementations, so correctness never
    depends on interning. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** truncated integer division (Rust/OCaml [/]) *)
  | Mod  (** truncated remainder: sign follows the dividend *)

type cmpop =
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | Var of string * Sort.t
  | Int of int
  | Real of float
  | Bool of bool
  | Binop of binop * t * t
  | Neg of t
  | Cmp of cmpop * t * t
  | Eq of t * t
  | Ne of t * t
  | And of t list
  | Or of t list
  | Not of t
  | Imp of t * t
  | Iff of t * t
  | Ite of t * t * t
  | App of string * t list
      (** uninterpreted function application; result sort is [Int] by
          convention (sufficient for our use: opaque abstractions of
          nonlinear arithmetic and the WP baseline's array reads) *)

module VarSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Equality                                                            *)
(* ------------------------------------------------------------------ *)

let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Var (x, s), Var (y, s') -> String.equal x y && Sort.equal s s'
  | Int x, Int y -> x = y
  | Real x, Real y -> Float.equal x y
  | Bool x, Bool y -> x = y
  | Binop (o, a1, a2), Binop (o', b1, b2) -> o = o' && equal a1 b1 && equal a2 b2
  | Neg a, Neg b | Not a, Not b -> equal a b
  | Cmp (o, a1, a2), Cmp (o', b1, b2) -> o = o' && equal a1 b1 && equal a2 b2
  | Eq (a1, a2), Eq (b1, b2)
  | Ne (a1, a2), Ne (b1, b2)
  | Imp (a1, a2), Imp (b1, b2)
  | Iff (a1, a2), Iff (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | And xs, And ys | Or xs, Or ys -> equal_list xs ys
  | Ite (a1, a2, a3), Ite (b1, b2, b3) -> equal a1 b1 && equal a2 b2 && equal a3 b3
  | App (f, xs), App (g, ys) -> String.equal f g && equal_list xs ys
  | _ -> false

and equal_list xs ys =
  try List.for_all2 equal xs ys with Invalid_argument _ -> false

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

(** Per-term metadata, attached at intern time: a unique id, the full
    structural hash, and the lazily-memoized free-variable set. *)
type meta = { id : int; hash : int; mutable fvs : VarSet.t option }

(* The intern table is keyed by the bounded-depth polymorphic hash
   (O(1) regardless of term size) with phys-first structural equality:
   looking up a node whose children are already interned touches at
   most one level of structure. *)
module MetaTbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = Stdlib.Hashtbl.hash
end)

(* The intern table is domain-local: each OCaml 5 domain hash-conses
   into its own table, so parallel per-function checks never contend on
   (or race) a shared table. Terms built on one domain and inspected on
   another simply miss the local table and take the structural
   fallbacks — correctness never depends on interning. *)
type intern_state = { tbl : (t * meta) MetaTbl.t; mutable count : int }

let intern_dls : intern_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { tbl = MetaTbl.create (1 lsl 16); count = 0 })

let find_meta t = MetaTbl.find_opt (Domain.DLS.get intern_dls).tbl t

let hash_combine h1 h2 = (h1 * 0x01000193) lxor h2

(** Full structural hash, memoized on interned terms: computing the
    hash of a node built from interned children is O(1). *)
let rec hash t =
  match find_meta t with Some (_, m) -> m.hash | None -> hash_node t

and hash_node t =
  match t with
  | Var (x, s) -> hash_combine 1 (hash_combine (Hashtbl.hash x) (Hashtbl.hash s))
  | Int n -> hash_combine 2 (Hashtbl.hash n)
  | Real x -> hash_combine 3 (Hashtbl.hash x)
  | Bool b -> hash_combine 4 (Bool.to_int b)
  | Binop (op, a, b) ->
      hash_combine 5 (hash_combine (Hashtbl.hash op) (hash_combine (hash a) (hash b)))
  | Neg a -> hash_combine 6 (hash a)
  | Cmp (op, a, b) ->
      hash_combine 7 (hash_combine (Hashtbl.hash op) (hash_combine (hash a) (hash b)))
  | Eq (a, b) -> hash_combine 8 (hash_combine (hash a) (hash b))
  | Ne (a, b) -> hash_combine 9 (hash_combine (hash a) (hash b))
  | And ts -> List.fold_left (fun h t -> hash_combine h (hash t)) 10 ts
  | Or ts -> List.fold_left (fun h t -> hash_combine h (hash t)) 11 ts
  | Not a -> hash_combine 12 (hash a)
  | Imp (a, b) -> hash_combine 13 (hash_combine (hash a) (hash b))
  | Iff (a, b) -> hash_combine 14 (hash_combine (hash a) (hash b))
  | Ite (a, b, c) ->
      hash_combine 15 (hash_combine (hash a) (hash_combine (hash b) (hash c)))
  | App (f, ts) ->
      List.fold_left (fun h t -> hash_combine h (hash t))
        (hash_combine 16 (Hashtbl.hash f))
        ts

let intern_meta (t : t) : t * meta =
  let st = Domain.DLS.get intern_dls in
  match MetaTbl.find_opt st.tbl t with
  | Some cm -> cm
  | None ->
      let m = { id = st.count; hash = hash_node t; fvs = None } in
      st.count <- st.count + 1;
      MetaTbl.add st.tbl t (t, m);
      (t, m)

(* Interning large terms is counterproductive: the bounded polymorphic
   hash keying the intern table only samples a prefix of the term, so
   the thousands of near-identical query-sized conjunctions and
   implications built by the weakening loop (same hypothesis prefix,
   different tail or goal) collide into a few buckets, and every
   construction then pays a long bucket scan whose structural [equal]
   also resolves only at the end of the shared prefix. Gating on a
   small size cap keeps interning where it pays — atoms and
   qualifier-sized predicates, fully covered by the bounded hash — and
   is viral: a term containing a large subterm is itself large, so
   query-level wrappers ([Imp]/[Not] around a wide [And]) stay raw too
   and never reach those degenerate buckets. Raw terms fall back to the
   structural [hash]/[free_vars], which stay cheap level-by-level
   because their (small) children are still interned and memoized. *)
let max_interned_size = 32

let rec size_capped budget t =
  if budget <= 0 then 0
  else
    match t with
    | Var _ | Int _ | Real _ | Bool _ -> budget - 1
    | Neg a | Not a -> size_capped (budget - 1) a
    | Binop (_, a, b)
    | Cmp (_, a, b)
    | Eq (a, b)
    | Ne (a, b)
    | Imp (a, b)
    | Iff (a, b) ->
        size_capped (size_capped (budget - 1) a) b
    | And ts | Or ts | App (_, ts) -> List.fold_left size_capped (budget - 1) ts
    | Ite (a, b, c) -> size_capped (size_capped (size_capped (budget - 1) a) b) c

let internable t = size_capped max_interned_size t > 0

(** Intern a term node: returns the canonical physically-shared
    representative (for terms under the size cap; larger terms are
    returned as-is and handled by the structural fallbacks). All smart
    constructors route through this. *)
let hc (t : t) : t = if internable t then fst (intern_meta t) else t

(** Unique id of (the canonical representative of) a term. Stable for
    the lifetime of the intern table; useful as a cheap total order. *)
let term_id (t : t) : int = (snd (intern_meta t)).id

let interned_terms () = (Domain.DLS.get intern_dls).count

(** Drop all interning metadata. Existing terms stay valid ([hash] and
    [free_vars] recompute structurally); only sharing and memoization
    are lost. Exposed for long-running processes that want to bound the
    table. *)
let reset_intern () =
  let st = Domain.DLS.get intern_dls in
  MetaTbl.reset st.tbl;
  st.count <- 0

(** Hash tables keyed by terms, using the memoized structural hash and
    phys-first equality — the right key type for solver query caches
    and elaboration tables (replaces [to_string]-keyed tables). *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let tt = hc (Bool true)
let ff = hc (Bool false)
let bool b = if b then tt else ff
let int n = hc (Int n)
let real x = hc (Real x)
let var ?(sort = Sort.Int) name = hc (Var (name, sort))
let bvar name = hc (Var (name, Sort.Bool))

let rec mk_not t =
  match t with
  | Bool b -> bool (not b)
  | Not t' -> t'
  | Cmp (Lt, a, b) -> hc (Cmp (Ge, a, b))
  | Cmp (Le, a, b) -> hc (Cmp (Gt, a, b))
  | Cmp (Gt, a, b) -> hc (Cmp (Le, a, b))
  | Cmp (Ge, a, b) -> hc (Cmp (Lt, a, b))
  | Eq (a, b) -> hc (Ne (a, b))
  | Ne (a, b) -> hc (Eq (a, b))
  | And ts -> hc (Or (List.map mk_not ts))
  | Or ts -> hc (And (List.map mk_not ts))
  | _ -> hc (Not t)

let mk_and ts =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | Bool true :: rest -> flatten acc rest
    | Bool false :: _ -> None
    | And sub :: rest -> flatten acc (sub @ rest)
    | t :: rest -> flatten (t :: acc) rest
  in
  match flatten [] ts with
  | None -> ff
  | Some [] -> tt
  | Some [ t ] -> t
  | Some ts -> hc (And ts)

let mk_or ts =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | Bool false :: rest -> flatten acc rest
    | Bool true :: _ -> None
    | Or sub :: rest -> flatten acc (sub @ rest)
    | t :: rest -> flatten (t :: acc) rest
  in
  match flatten [] ts with
  | None -> tt
  | Some [] -> ff
  | Some [ t ] -> t
  | Some ts -> hc (Or ts)

let mk_imp a b =
  match (a, b) with
  | Bool true, b -> b
  | Bool false, _ -> tt
  | _, Bool true -> tt
  | _, Bool false -> mk_not a
  | _ -> hc (Imp (a, b))

let mk_iff a b =
  match (a, b) with
  | Bool true, b -> b
  | b, Bool true -> b
  | Bool false, b -> mk_not b
  | b, Bool false -> mk_not b
  | _ -> hc (Iff (a, b))

let rec mk_binop op a b =
  match (op, a, b) with
  | Add, Int x, Int y -> int (x + y)
  | Sub, Int x, Int y -> int (x - y)
  | Mul, Int x, Int y -> int (x * y)
  (* ground / and % fold with truncated (Rust/OCaml) semantics; a zero
     divisor stays symbolic *)
  | Div, Int x, Int y when y <> 0 -> int (x / y)
  | Mod, Int x, Int y when y <> 0 -> int (x mod y)
  | Add, t, Int 0 | Add, Int 0, t -> t
  | Sub, t, Int 0 -> t
  | Mul, t, Int 1 | Mul, Int 1, t -> t
  | Mul, _, Int 0 | Mul, Int 0, _ -> int 0
  | Div, t, Int 1 -> t
  (* negative constant divisors normalize to positive ones — exact for
     truncation: a / (-c) = -(a / c) and a % (-c) = a % c — so the LIA
     linearization (positive divisors only) covers them too *)
  | Div, t, Int c when c < 0 -> hc (Neg (mk_binop Div t (int (-c))))
  | Mod, t, Int c when c < 0 -> mk_binop Mod t (int (-c))
  | _ -> hc (Binop (op, a, b))

let add a b = mk_binop Add a b
let sub a b = mk_binop Sub a b
let mul a b = mk_binop Mul a b
let div a b = mk_binop Div a b
let md a b = mk_binop Mod a b

let neg = function Int n -> int (-n) | Neg t -> t | t -> hc (Neg t)

let mk_cmp op a b =
  match (a, b) with
  | Int x, Int y ->
      bool
        (match op with
        | Lt -> x < y
        | Le -> x <= y
        | Gt -> x > y
        | Ge -> x >= y)
  | _ -> hc (Cmp (op, a, b))

let lt a b = mk_cmp Lt a b
let le a b = mk_cmp Le a b
let gt a b = mk_cmp Gt a b
let ge a b = mk_cmp Ge a b

let mk_eq a b =
  match (a, b) with
  | Int x, Int y -> bool (x = y)
  | Bool x, Bool y -> bool (x = y)
  | Bool true, t | t, Bool true -> t
  | Bool false, t | t, Bool false -> mk_not t
  | _ -> if equal a b then tt else hc (Eq (a, b))

let mk_ne a b =
  match (a, b) with
  | Int x, Int y -> bool (x <> y)
  | Bool x, Bool y -> bool (x <> y)
  | _ -> if equal a b then ff else hc (Ne (a, b))

let eq = mk_eq
let ne = mk_ne

let ite c a b =
  match c with Bool true -> a | Bool false -> b | _ -> hc (Ite (c, a, b))

let app f ts = hc (App (f, ts))

(* ------------------------------------------------------------------ *)
(* Sorts                                                               *)
(* ------------------------------------------------------------------ *)

exception Ill_sorted of string

let rec sort_of = function
  | Var (_, s) -> s
  | Int _ -> Sort.Int
  | Real _ -> Sort.Real
  | Bool _ -> Sort.Bool
  | Binop (_, a, _) -> sort_of a
  | Neg a -> sort_of a
  | Cmp _ | Eq _ | Ne _ | And _ | Or _ | Not _ | Imp _ | Iff _ -> Sort.Bool
  | Ite (_, a, _) -> sort_of a
  | App _ -> Sort.Int

let is_pred t = Sort.equal (sort_of t) Sort.Bool

(* ------------------------------------------------------------------ *)
(* Free variables and substitution                                     *)
(* ------------------------------------------------------------------ *)

let rec fold_vars f acc = function
  | Var (x, s) -> f acc x s
  | Int _ | Real _ | Bool _ -> acc
  | Neg a | Not a -> fold_vars f acc a
  | Binop (_, a, b) | Cmp (_, a, b) | Eq (a, b) | Ne (a, b) | Imp (a, b) | Iff (a, b)
    ->
      fold_vars f (fold_vars f acc a) b
  | And ts | Or ts | App (_, ts) -> List.fold_left (fold_vars f) acc ts
  | Ite (a, b, c) -> fold_vars f (fold_vars f (fold_vars f acc a) b) c

(** Free-variable set, memoized on interned terms: after the first
    computation, [free_vars] on the same (physically shared) term is a
    table lookup — the payoff for cone-of-influence slicing, which
    re-tags the same hypotheses on every weakening iteration. *)
let rec free_vars t =
  match find_meta t with
  | Some (_, m) -> (
      match m.fvs with
      | Some s -> s
      | None ->
          let s = fvs_node t in
          m.fvs <- Some s;
          s)
  | None -> fvs_node t

and fvs_node = function
  | Var (x, _) -> VarSet.singleton x
  | Int _ | Real _ | Bool _ -> VarSet.empty
  | Neg a | Not a -> free_vars a
  | Binop (_, a, b) | Cmp (_, a, b) | Eq (a, b) | Ne (a, b) | Imp (a, b) | Iff (a, b)
    ->
      VarSet.union (free_vars a) (free_vars b)
  | And ts | Or ts | App (_, ts) ->
      List.fold_left (fun acc t -> VarSet.union acc (free_vars t)) VarSet.empty ts
  | Ite (a, b, c) ->
      VarSet.union (free_vars a) (VarSet.union (free_vars b) (free_vars c))

let free_vars_sorted t =
  fold_vars
    (fun acc x s -> if List.mem_assoc x acc then acc else (x, s) :: acc)
    [] t
  |> List.rev

let mem_var x t = VarSet.mem x (free_vars t)

(** Cone-of-influence slicing, shared by [Solver.entails_sliced] and
    the fixpoint solver: keep exactly the hypotheses transitively
    sharing a variable with [seed] (each hypothesis pre-tagged with its
    free variables, which [free_vars] memoizes). Dropping hypotheses
    only weakens the left-hand side of an entailment, so slicing is
    sound for validity. The result order is unspecified. *)
let cone_of_influence (hyps : (t * VarSet.t) list) (seed : VarSet.t) : t list =
  let seed = ref seed in
  let remaining = ref hyps in
  let kept = ref [] in
  let changed = ref true in
  while !changed do
    changed := false;
    remaining :=
      List.filter
        (fun (h, vs) ->
          if not (VarSet.disjoint vs !seed) then begin
            kept := h :: !kept;
            seed := VarSet.union vs !seed;
            changed := true;
            false
          end
          else true)
        !remaining
  done;
  !kept

(** Capture-free is not a concern: the logic is quantifier-free. *)
let rec subst (m : (string * t) list) t =
  match t with
  | Var (x, _) -> ( match List.assoc_opt x m with Some u -> u | None -> hc t)
  | Int _ | Real _ | Bool _ -> hc t
  | Binop (op, a, b) -> mk_binop op (subst m a) (subst m b)
  | Neg a -> neg (subst m a)
  | Cmp (op, a, b) -> mk_cmp op (subst m a) (subst m b)
  | Eq (a, b) -> mk_eq (subst m a) (subst m b)
  | Ne (a, b) -> mk_ne (subst m a) (subst m b)
  | And ts -> mk_and (List.map (subst m) ts)
  | Or ts -> mk_or (List.map (subst m) ts)
  | Not a -> mk_not (subst m a)
  | Imp (a, b) -> mk_imp (subst m a) (subst m b)
  | Iff (a, b) -> mk_iff (subst m a) (subst m b)
  | Ite (a, b, c) -> ite (subst m a) (subst m b) (subst m c)
  | App (f, ts) -> app f (List.map (subst m) ts)

let subst1 x u t = subst [ (x, u) ] t

(** Rename variables according to [m]; variables not in [m] are kept.
    Structure-preserving (no simplification), but still interned. *)
let rec rename_vars (m : (string * string) list) t =
  match t with
  | Var (x, s) -> (
      match List.assoc_opt x m with Some y -> hc (Var (y, s)) | None -> hc t)
  | Int _ | Real _ | Bool _ -> hc t
  | Binop (op, a, b) -> hc (Binop (op, rename_vars m a, rename_vars m b))
  | Neg a -> hc (Neg (rename_vars m a))
  | Cmp (op, a, b) -> hc (Cmp (op, rename_vars m a, rename_vars m b))
  | Eq (a, b) -> hc (Eq (rename_vars m a, rename_vars m b))
  | Ne (a, b) -> hc (Ne (rename_vars m a, rename_vars m b))
  | And ts -> hc (And (List.map (rename_vars m) ts))
  | Or ts -> hc (Or (List.map (rename_vars m) ts))
  | Not a -> hc (Not (rename_vars m a))
  | Imp (a, b) -> hc (Imp (rename_vars m a, rename_vars m b))
  | Iff (a, b) -> hc (Iff (rename_vars m a, rename_vars m b))
  | Ite (a, b, c) -> hc (Ite (rename_vars m a, rename_vars m b, rename_vars m c))
  | App (f, ts) -> hc (App (f, List.map (rename_vars m) ts))

(* ------------------------------------------------------------------ *)
(* Size & printing                                                     *)
(* ------------------------------------------------------------------ *)

let rec size = function
  | Var _ | Int _ | Real _ | Bool _ -> 1
  | Neg a | Not a -> 1 + size a
  | Binop (_, a, b) | Cmp (_, a, b) | Eq (a, b) | Ne (a, b) | Imp (a, b) | Iff (a, b)
    ->
      1 + size a + size b
  | And ts | Or ts | App (_, ts) -> List.fold_left (fun n t -> n + size t) 1 ts
  | Ite (a, b, c) -> 1 + size a + size b + size c

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let cmpop_str = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp fmt t =
  match t with
  | Var (x, _) -> Format.pp_print_string fmt x
  | Int n -> Format.pp_print_int fmt n
  | Real x -> Format.pp_print_float fmt x
  | Bool b -> Format.pp_print_bool fmt b
  | Binop (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp a (binop_str op) pp b
  | Neg a -> Format.fprintf fmt "(- %a)" pp a
  | Cmp (op, a, b) -> Format.fprintf fmt "%a %s %a" pp a (cmpop_str op) pp b
  | Eq (a, b) -> Format.fprintf fmt "%a = %a" pp a pp b
  | Ne (a, b) -> Format.fprintf fmt "%a != %a" pp a pp b
  | And ts ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " && ")
           pp)
        ts
  | Or ts ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " || ")
           pp)
        ts
  | Not a -> Format.fprintf fmt "!(%a)" pp a
  | Imp (a, b) -> Format.fprintf fmt "(%a => %a)" pp a pp b
  | Iff (a, b) -> Format.fprintf fmt "(%a <=> %a)" pp a pp b
  | Ite (a, b, c) -> Format.fprintf fmt "(if %a then %a else %a)" pp a pp b pp c
  | App (f, ts) ->
      Format.fprintf fmt "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp)
        ts

let to_string t = Format.asprintf "%a" pp t
