(** Unified performance counters and timers for the whole verification
    stack (SMT solver, fixpoint solver, Flux checker, WP baseline).

    Every metric is a named cell holding a count and an accumulated
    wall-clock time. Cells are recorded twice: once in a global group
    (totals for the current run) and once under the enclosing function
    scope established by {!with_fn}, so per-function solver costs are
    attributable ("which function burned the weaken checks?"). A
    counter bump is a hashtable lookup plus an integer increment, cheap
    enough to leave on unconditionally.

    The whole profile serializes to JSON ({!to_json}) — this is what
    [bench/main.exe table1] embeds in [BENCH_table1.json] so the perf
    trajectory is tracked across PRs. *)

type cell = { mutable count : int; mutable time : float }
type group = (string, cell) Hashtbl.t

let global : group = Hashtbl.create 64
let per_fn : (string, group) Hashtbl.t = Hashtbl.create 64
let current_fn : string option ref = ref None

let reset () =
  Hashtbl.reset global;
  Hashtbl.reset per_fn;
  current_fn := None

let cell_of (g : group) key =
  match Hashtbl.find_opt g key with
  | Some c -> c
  | None ->
      let c = { count = 0; time = 0.0 } in
      Hashtbl.add g key c;
      c

let touch key f =
  f (cell_of global key);
  match !current_fn with
  | None -> ()
  | Some fn ->
      let g =
        match Hashtbl.find_opt per_fn fn with
        | Some g -> g
        | None ->
            let g = Hashtbl.create 16 in
            Hashtbl.add per_fn fn g;
            g
      in
      f (cell_of g key)

(** [incr key]: bump counter [key] by one. *)
let incr key = touch key (fun c -> c.count <- c.count + 1)

(** [add key n]: bump counter [key] by [n]. *)
let add key n = if n <> 0 then touch key (fun c -> c.count <- c.count + n)

(** [add_time key dt]: record [dt] seconds (and one occurrence). *)
let add_time key dt = touch key (fun c -> c.time <- c.time +. dt; c.count <- c.count + 1)

(** [time key f]: run [f ()], charging its wall-clock time to [key]. *)
let time key f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_time key (Unix.gettimeofday () -. t0)) f

(** [with_fn name f]: run [f ()] with metrics additionally attributed
    to function scope [name]. Nesting restores the outer scope. *)
let with_fn name f =
  let saved = !current_fn in
  current_fn := Some name;
  Fun.protect ~finally:(fun () -> current_fn := saved) f

(* ------------------------------------------------------------------ *)
(* Snapshots and JSON                                                  *)
(* ------------------------------------------------------------------ *)

let snapshot_group (g : group) : (string * (int * float)) list =
  Hashtbl.fold (fun k c acc -> (k, (c.count, c.time)) :: acc) g []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Global metrics, sorted by name: [(key, (count, seconds))]. *)
let snapshot () = snapshot_group global

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_group (g : group) : string =
  let entries =
    List.map
      (fun (k, (n, t)) ->
        if t = 0.0 then Printf.sprintf "\"%s\": %d" (json_escape k) n
        else Printf.sprintf "\"%s\": %.6f" (json_escape k) t)
      (snapshot_group g)
  in
  "{" ^ String.concat ", " entries ^ "}"

(** The full profile as a JSON object: untimed metrics render as
    integer counts, timed metrics as accumulated seconds.
    [{"totals": {metric: value, ...},
      "functions": {fn: {metric: value, ...}, ...}}] *)
let to_json () : string =
  let fns =
    Hashtbl.fold (fun k g acc -> (k, g) :: acc) per_fn []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (k, g) ->
           Printf.sprintf "\"%s\": %s" (json_escape k) (json_of_group g))
  in
  Printf.sprintf "{\"totals\": %s, \"functions\": {%s}}" (json_of_group global)
    (String.concat ", " fns)
