(** Unified performance counters and timers for the whole verification
    stack (SMT solver, fixpoint solver, Flux checker, WP baseline).

    Every metric is a named cell holding a count and an accumulated
    wall-clock time. Cells are recorded twice: once in a global group
    (totals for the current run) and once under the enclosing function
    scope established by {!with_fn}, so per-function solver costs are
    attributable ("which function burned the weaken checks?"). A
    counter bump is a hashtable lookup plus an integer increment, cheap
    enough to leave on unconditionally.

    All state is domain-local ({!Domain.DLS}): every domain accumulates
    into its own profile, and the parallel engine merges worker
    profiles back into the coordinating domain with {!capture} /
    {!absorb}. Cells remember whether they were ever fed wall-clock
    time ([timed]); timed metrics always serialize as float seconds,
    even when the accumulated time is exactly 0.0, so JSON consumers
    can rely on [_s]-suffixed keys being seconds and bare keys being
    counts.

    The whole profile serializes to JSON ({!to_json}) — this is what
    [bench/main.exe table1] embeds in [BENCH_table1.json] so the perf
    trajectory is tracked across PRs. *)

type cell = { mutable count : int; mutable time : float; mutable timed : bool }
type group = (string, cell) Hashtbl.t

type state = {
  global : group;
  per_fn : (string, group) Hashtbl.t;
  mutable current_fn : string option;
}

let dls : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { global = Hashtbl.create 64; per_fn = Hashtbl.create 64; current_fn = None })

let state () = Domain.DLS.get dls

let reset () =
  let st = state () in
  Hashtbl.reset st.global;
  Hashtbl.reset st.per_fn;
  st.current_fn <- None

let cell_of (g : group) key =
  match Hashtbl.find_opt g key with
  | Some c -> c
  | None ->
      let c = { count = 0; time = 0.0; timed = false } in
      Hashtbl.add g key c;
      c

let touch key f =
  let st = state () in
  f (cell_of st.global key);
  match st.current_fn with
  | None -> ()
  | Some fn ->
      let g =
        match Hashtbl.find_opt st.per_fn fn with
        | Some g -> g
        | None ->
            let g = Hashtbl.create 16 in
            Hashtbl.add st.per_fn fn g;
            g
      in
      f (cell_of g key)

(** [incr key]: bump counter [key] by one. *)
let incr key = touch key (fun c -> c.count <- c.count + 1)

(** [add key n]: bump counter [key] by [n]. *)
let add key n = if n <> 0 then touch key (fun c -> c.count <- c.count + n)

(** [add_time key dt]: record [dt] seconds (and one occurrence). The
    cell is marked as a timer even when [dt] is 0.0. *)
let add_time key dt =
  touch key (fun c ->
      c.time <- c.time +. dt;
      c.count <- c.count + 1;
      c.timed <- true)

(** [time key f]: run [f ()], charging its wall-clock time to [key]. *)
let time key f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_time key (Unix.gettimeofday () -. t0)) f

(** [with_fn name f]: run [f ()] with metrics additionally attributed
    to function scope [name]. Nesting restores the outer scope. *)
let with_fn name f =
  let st = state () in
  let saved = st.current_fn in
  st.current_fn <- Some name;
  Fun.protect ~finally:(fun () -> st.current_fn <- saved) f

(* ------------------------------------------------------------------ *)
(* Snapshots, cross-domain merging, and JSON                           *)
(* ------------------------------------------------------------------ *)

let snapshot_group (g : group) : (string * (int * float * bool)) list =
  Hashtbl.fold (fun k c acc -> (k, (c.count, c.time, c.timed)) :: acc) g []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Global metrics, sorted by name:
    [(key, (count, seconds, is_timer))]. *)
let snapshot () = snapshot_group (state ()).global

type captured = {
  cap_global : (string * (int * float * bool)) list;
  cap_fns : (string * (string * (int * float * bool)) list) list;
}
(** An immutable copy of one domain's profile, safe to ship across
    domains (plain lists of scalars, no shared mutable cells). *)

(** [capture ()]: snapshot the calling domain's entire profile. *)
let capture () : captured =
  let st = state () in
  {
    cap_global = snapshot_group st.global;
    cap_fns =
      Hashtbl.fold (fun k g acc -> (k, snapshot_group g) :: acc) st.per_fn []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

let absorb_group (g : group) entries =
  List.iter
    (fun (k, (n, t, timed)) ->
      let c = cell_of g k in
      c.count <- c.count + n;
      c.time <- c.time +. t;
      c.timed <- c.timed || timed)
    entries

(** [absorb cap]: merge a captured profile (typically from a worker
    domain) into the calling domain's profile, cell by cell. *)
let absorb (cap : captured) =
  let st = state () in
  absorb_group st.global cap.cap_global;
  List.iter
    (fun (fn, entries) ->
      let g =
        match Hashtbl.find_opt st.per_fn fn with
        | Some g -> g
        | None ->
            let g = Hashtbl.create 16 in
            Hashtbl.add st.per_fn fn g;
            g
      in
      absorb_group g entries)
    cap.cap_fns

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_group (g : group) : string =
  let entries =
    List.map
      (fun (k, (n, t, timed)) ->
        if timed then Printf.sprintf "\"%s\": %.6f" (json_escape k) t
        else Printf.sprintf "\"%s\": %d" (json_escape k) n)
      (snapshot_group g)
  in
  "{" ^ String.concat ", " entries ^ "}"

(** The full profile as a JSON object: counter metrics render as
    integer counts, timed metrics as accumulated float seconds (a
    timer that never accumulated time still renders as [0.000000],
    never as its count).
    [{"totals": {metric: value, ...},
      "functions": {fn: {metric: value, ...}, ...}}] *)
let to_json () : string =
  let st = state () in
  let fns =
    Hashtbl.fold (fun k g acc -> (k, g) :: acc) st.per_fn []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (k, g) ->
           Printf.sprintf "\"%s\": %s" (json_escape k) (json_of_group g))
  in
  Printf.sprintf "{\"totals\": %s, \"functions\": {%s}}" (json_of_group st.global)
    (String.concat ", " fns)
