(** Validity and satisfiability checking for the quantifier-free
    refinement logic.

    The checker is {e sound for validity}: [valid t = true] implies [t]
    holds over the integers. It may be incomplete (a valid [t] can be
    reported invalid) when rational Fourier–Motzkin reasoning or opaque
    abstraction of nonlinear terms loses information — the safe polarity
    for a program verifier.

    Division and modulo by positive constants are linearized exactly
    with {e truncated} (Rust/OCaml) semantics — the quotient rounds
    toward zero and the remainder takes the sign of the dividend, e.g.
    [(-7)/2 = -3] and [(-7) mod 2 = -1] — matching [Interp]'s use of
    OCaml's [/] and [mod]. Products of two non-constants are abstracted
    as opaque variables; uninterpreted applications are Ackermannized;
    atoms over reals (floats) are abstracted as opaque boolean atoms. *)

type stats = {
  mutable queries : int;
      (** [valid]/[sat] calls, including cache hits and trivially
          constant ([Bool _]) goals *)
  mutable cache_hits : int;
  mutable theory_checks : int;  (** DPLL leaf/branch theory consultations *)
  mutable max_atoms : int;  (** largest boolean skeleton seen *)
  mutable time : float;  (** seconds spent solving (cache misses only) *)
}

val stats : unit -> stats
(** The calling domain's solver statistics. All solver state (stats
    and query caches) is domain-local, so parallel checks on separate
    domains never interfere; aggregate across domains by merging the
    per-domain profiles (see {!Profile.capture}/{!Profile.absorb}). *)

val reset_stats : unit -> unit

val clear_cache : unit -> unit
(** Reset the calling domain's query cache (useful for unbiased timing
    runs). *)

val sat : Term.t -> bool
(** [sat t]: is [t] satisfiable over the integers? [false] is definite;
    [true] may over-approximate. *)

val valid : Term.t -> bool
(** [valid t]: does [t] hold for all integer assignments? [true] is
    definite; [false] may be incompleteness. *)

val first_invalid : Term.t -> Term.t list -> int option
(** [first_invalid l qs]: decide [valid (l ⇒ qᵢ)] for each goal in
    order — exactly the singleton queries, sharing their cache
    entries — and return the index of the first one that does not hold
    ([None] when all do). One call decides a whole conjunction of
    goals with verdicts bit-identical to asking conjunct by
    conjunct. *)

val entails : Term.t list -> Term.t -> bool
(** [entails hyps goal]: does the conjunction of [hyps] entail [goal]? *)

val entails_sliced : Term.t list -> Term.t -> bool
(** Like {!entails}, but first slices the hypotheses to the cone of
    influence of the goal (hypotheses transitively sharing a variable
    with it). Sound: dropping hypotheses only weakens the left-hand
    side. *)

val sliced_implication : Term.t list -> Term.t -> Term.t
(** The exact implication {!entails_sliced} decides — exposed so
    certifying callers can record the goal they actually discharged. *)

val certify : Term.t -> Proof.t option
(** [certify goal]: re-derive [valid goal] as a replayable certificate
    (see {!Proof} and the independent checker in [lib/cert]). [None]
    means the certifying search could not close the goal — including
    when it is simply not valid; a returned certificate always replays
    against [goal] itself. Independent of {!valid}: no cache is
    consulted. *)

val model : Term.t -> (string * Eval.value) list option
(** A satisfying assignment for [t] over its free variables.
    Verified by ground evaluation before being returned, so
    [Some env] is definite; [None] means no model was found (which
    does not prove unsatisfiability). *)

val counterexample : Term.t -> (string * Eval.value) list option
(** A verified falsifying assignment for [t] — a model of [¬t]. The
    executable witness behind an [invalid] verdict. *)
