(** Certifying mirror of {!Lia}.

    [refute] re-runs the Fourier–Motzkin/equality-elimination pipeline
    of {!Lia.sat_literals} over a conjunction of theory literals, but
    with provenance: every derived row remembers the nonnegative
    combination of hypotheses that produced it, so an infeasibility
    verdict comes out as a {!Proof.trefut} — a derivation of a positive
    constant row [k ≤ 0] — that the independent replay checker can
    re-add without trusting any code here.

    [model_literals] runs the same elimination in reverse: it records
    each eliminated variable's bounding rows and each equality
    substitution, then back-substitutes to a concrete integer
    assignment. The result is verified against every input literal
    before it is returned, so callers can treat [Some m] as definite.

    Both directions may give up ([None]): rational shadows, elimination
    limits and integer gaps lose no soundness, only completeness — the
    same polarity as {!Lia} itself. *)

module SMap = Lia.SMap

let fm_limit = 20_000
let diseq_depth = 12
let refute_budget = 400

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(** Floor division (OCaml's [/] truncates). *)
let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

(** Ceiling division. *)
let cdiv a b = -fdiv (-a) b

let coeff x (l : Lia.lin) =
  match SMap.find_opt x l.Lia.coeffs with Some c -> c | None -> 0

(** [d ≤ -1] as a [≤ 0] row. *)
let le_neg1 (d : Lia.lin) = { d with Lia.const = d.Lia.const + 1 }

(** [d ≥ 1] as a [≤ 0] row. *)
let ge_1 (d : Lia.lin) =
  let m = Lia.lin_scale (-1) d in
  { m with Lia.const = m.Lia.const + 1 }

(** Integer tightening of a non-constant row: divide the coefficients
    by their gcd and round the constant up (exactly {!Lia}'s
    transform; replay recomputes it independently). *)
let tighten_lin (l : Lia.lin) : Lia.lin =
  let g = SMap.fold (fun _ c g -> gcd c g) l.Lia.coeffs 0 in
  if g <= 1 then l
  else
    {
      Lia.coeffs = SMap.map (fun c -> c / g) l.Lia.coeffs;
      const = -fdiv (-l.Lia.const) g;
    }

(** Pick the elimination variable minimizing the pos × neg occurrence
    product (the classic FM pivot heuristic, as in {!Lia}). *)
let choose_var (cs : Lia.lin list) : string option =
  let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (l : Lia.lin) ->
      SMap.iter
        (fun x c ->
          let p, n = try Hashtbl.find tbl x with Not_found -> (0, 0) in
          Hashtbl.replace tbl x (if c > 0 then (p + 1, n) else (p, n + 1)))
        l.Lia.coeffs)
    cs;
  Hashtbl.fold
    (fun x (p, n) best ->
      let cost = p * n in
      match best with
      | Some (_, bcost) when bcost <= cost -> best
      | _ -> Some (x, cost))
    tbl None
  |> Option.map fst

(** First variable with a unit coefficient, and the rest of the row
    solved for it: [e = 0] with [e = c·x + r], [c = ±1] gives
    [x = -c·r]. *)
let solvable_eq (e : Lia.lin) : (string * Lia.lin) option =
  SMap.fold
    (fun x c acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if abs c = 1 then
            Some
              ( x,
                Lia.lin_scale (-c)
                  { e with Lia.coeffs = SMap.remove x e.Lia.coeffs } )
          else None)
    e.Lia.coeffs None

(* ------------------------------------------------------------------ *)
(* Certifying refutation                                               *)
(* ------------------------------------------------------------------ *)

type buf = { mutable steps : Proof.step list (* reversed *); mutable n : int }

let emit (b : buf) (s : Proof.step) : Proof.src =
  b.steps <- s :: b.steps;
  let i = b.n in
  b.n <- b.n + 1;
  Proof.Step i

(** Raised when a derived row is a positive constant; carries the
    source deriving it. *)
exception Contra of Proof.src

(** Inequality rows with provenance; equalities carry both
    directions' sources ([e ≤ 0] and [-e ≤ 0]). *)
type row = Lia.lin * Proof.src
type eqrow = Lia.lin * Proof.src * Proof.src

(** Eliminate equalities by unit-coefficient substitution, mirroring
    {!Lia}'s [elim_eqs]: substituting [x := rhs] from [e] into a row
    [a] is the combination [a + m·e] with [m = -coeff(x,a)·c], split by
    sign of [m] over the two directions of [e] so multipliers stay
    nonnegative. *)
let elim_eqs (b : buf) (eqs : eqrow list) (ineqs : row list) : row list =
  let subst_row e sp sn x c ((a, sa) : row) : row =
    let k = coeff x a in
    if k = 0 then (a, sa)
    else
      let m = -k * c in
      let a' = Lia.lin_add a (Lia.lin_scale m e) in
      let s =
        if m > 0 then emit b (Proof.Comb [ (1, sa); (m, sp) ])
        else emit b (Proof.Comb [ (1, sa); (-m, sn) ])
      in
      (a', s)
  in
  let rec go eqs ineqs =
    match eqs with
    | [] -> ineqs
    | ((e, sp, sn) : eqrow) :: rest ->
        if Lia.lin_is_const e then
          if e.Lia.const = 0 then go rest ineqs
          else if e.Lia.const > 0 then raise (Contra sp)
          else raise (Contra sn)
        else (
          match solvable_eq e with
          | Some (x, _) ->
              let c = coeff x e in
              let subst_eq ((e2, p2, n2) : eqrow) : eqrow =
                let k = coeff x e2 in
                if k = 0 then (e2, p2, n2)
                else
                  let m = -k * c in
                  let e2' = Lia.lin_add e2 (Lia.lin_scale m e) in
                  let p', n' =
                    if m > 0 then
                      ( emit b (Proof.Comb [ (1, p2); (m, sp) ]),
                        emit b (Proof.Comb [ (1, n2); (m, sn) ]) )
                    else
                      ( emit b (Proof.Comb [ (1, p2); (-m, sn) ]),
                        emit b (Proof.Comb [ (1, n2); (-m, sp) ]) )
                  in
                  (e2', p', n')
              in
              go (List.map subst_eq rest)
                (List.map (subst_row e sp sn x c) ineqs)
          | None ->
              (* no unit coefficient: a gcd that misses the constant is
                 an integer infeasibility — certify it by tightening
                 both directions and adding them (the constants round
                 toward each other, leaving [1 ≤ 0]) *)
              let g = SMap.fold (fun _ c g -> gcd c g) e.Lia.coeffs 0 in
              if g > 1 && e.Lia.const mod g <> 0 then begin
                let t1 = emit b (Proof.Tight sp) in
                let t2 = emit b (Proof.Tight sn) in
                raise (Contra (emit b (Proof.Comb [ (1, t1); (1, t2) ])))
              end
              else
                go rest
                  ((e, sp) :: (Lia.lin_scale (-1) e, sn) :: ineqs))
  in
  go eqs ineqs

(** Fourier–Motzkin with provenance. Returns normally when it cannot
    refute (feasible or gave up); raises [Contra] on success. *)
let rec fm (b : buf) (cs : row list) : unit =
  let cs =
    List.filter_map
      (fun ((l, s) : row) ->
        if Lia.lin_is_const l then
          if l.Lia.const > 0 then raise (Contra s) else None
        else
          let l' = tighten_lin l in
          if l' == l then Some (l, s)
          else Some (l', emit b (Proof.Tight s)))
      cs
  in
  if List.length cs > fm_limit then ()
  else
    match choose_var (List.map fst cs) with
    | None -> ()
    | Some x ->
        let pos, rest =
          List.partition (fun ((l, _) : row) -> coeff x l > 0) cs
        in
        let neg, rest =
          List.partition (fun ((l, _) : row) -> coeff x l < 0) rest
        in
        let combined =
          List.concat_map
            (fun ((cp, sp) : row) ->
              let a = coeff x cp in
              List.map
                (fun ((cn, sn) : row) ->
                  let bcoef = -coeff x cn in
                  let l =
                    Lia.lin_add (Lia.lin_scale bcoef cp) (Lia.lin_scale a cn)
                  in
                  (l, emit b (Proof.Comb [ (bcoef, sp); (a, sn) ])))
                neg)
            pos
        in
        fm b (combined @ rest)

let srcs_of_step = function
  | Proof.Comb ks -> List.map snd ks
  | Proof.Tight s -> [ s ]

let map_step f = function
  | Proof.Comb ks -> Proof.Comb (List.map (fun (k, s) -> (k, f s)) ks)
  | Proof.Tight s -> Proof.Tight (f s)

(** Drop steps unreachable from the final one and renumber. *)
let gc_steps (steps : Proof.step list) : Proof.step list =
  let arr = Array.of_list steps in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let keep = Array.make n false in
    let rec mark i =
      if i >= 0 && i < n && not keep.(i) then begin
        keep.(i) <- true;
        List.iter
          (function Proof.Step j -> mark j | _ -> ())
          (srcs_of_step arr.(i))
      end
    in
    mark (n - 1);
    let remap = Array.make n (-1) in
    let k = ref 0 in
    Array.iteri
      (fun i kept ->
        if kept then begin
          remap.(i) <- !k;
          incr k
        end)
      keep;
    let rename = function
      | Proof.Step j -> Proof.Step remap.(j)
      | s -> s
    in
    Array.to_list arr
    |> List.filteri (fun i _ -> keep.(i))
    |> List.map (map_step rename)
  end

(** One refutation attempt by pure elimination (no disequality
    splits). *)
let run_steps (eqs : eqrow list) (ineqs : row list) : Proof.step list option =
  let b = { steps = []; n = 0 } in
  match
    try
      fm b (elim_eqs b eqs ineqs);
      None
    with Contra s -> Some s
  with
  | None -> None
  | Some s ->
      ignore (emit b (Proof.Comb [ (1, s) ]));
      Some (gc_steps (List.rev b.steps))

(** Certify the infeasibility of the conjunction of [hyps], each given
    as (atom index, assigned polarity, literal). [None] means "could
    not certify" — never "feasible". *)
let refute (hyps : (int * bool * Lia.literal) list) : Proof.trefut option =
  let ineqs = ref [] and eqs = ref [] and diseqs = ref [] in
  List.iter
    (fun (i, pol, lit) ->
      match lit with
      | Lia.Le0 l -> ineqs := (l, Proof.Hyp (i, pol, 1)) :: !ineqs
      | Lia.Eq0 l ->
          eqs := (l, Proof.Hyp (i, pol, 1), Proof.Hyp (i, pol, -1)) :: !eqs
      | Lia.Ne0 l -> diseqs := (i, l) :: !diseqs)
    hyps;
  let ineqs = List.rev !ineqs and eqs = List.rev !eqs in
  (* a constant disequality [0 ≠ 0] refutes on its own: both split
     branches are positive constant rows *)
  match
    List.find_opt
      (fun (_, d) -> Lia.lin_is_const d && d.Lia.const = 0)
      (List.rev !diseqs)
  with
  | Some (i, _) ->
      Some
        (Proof.Dsplit
           ( i,
             Proof.Steps [ Proof.Comb [ (1, Proof.Dle i) ] ],
             Proof.Steps [ Proof.Comb [ (1, Proof.Dge i) ] ] ))
  | None ->
      let diseqs =
        List.filter (fun (_, d) -> not (Lia.lin_is_const d)) (List.rev !diseqs)
      in
      let budget = ref refute_budget in
      let rec go eqs ineqs diseqs depth : Proof.trefut option =
        if !budget <= 0 then None
        else begin
          decr budget;
          match run_steps eqs ineqs with
          | Some steps -> Some (Proof.Steps steps)
          | None ->
              if depth >= diseq_depth then None
              else
                (* splitting on a disequality whose equality is already
                   inconsistent adds nothing (its negation is implied),
                   so restrict to critical ones — mirroring {!Lia}'s
                   pre-filter *)
                let eq_lins = List.map (fun ((e, _, _) : eqrow) -> e) eqs in
                let ineq_lins = List.map fst ineqs in
                let critical =
                  List.filter
                    (fun (_, d) ->
                      Lia.feasible ~eqs:(d :: eq_lins) ~ineqs:ineq_lins)
                    diseqs
                in
                let rec try_each seen = function
                  | [] -> None
                  | (i, d) :: rest -> (
                      let others = List.rev_append seen rest in
                      let attempt branch =
                        go eqs (branch :: ineqs) others (depth + 1)
                      in
                      match attempt (le_neg1 d, Proof.Dle i) with
                      | None -> try_each ((i, d) :: seen) rest
                      | Some lt -> (
                          match attempt (ge_1 d, Proof.Dge i) with
                          | None -> try_each ((i, d) :: seen) rest
                          | Some rt -> Some (Proof.Dsplit (i, lt, rt))))
                in
                try_each [] critical
        end
      in
      go eqs ineqs diseqs 0

(* ------------------------------------------------------------------ *)
(* Model extraction                                                    *)
(* ------------------------------------------------------------------ *)

exception Gap

(** Find an integer assignment satisfying every literal, or [None].
    The construction records the elimination order and back-substitutes
    bounds; the candidate is verified against all input literals before
    being returned, so [Some m] is definite. *)
let model_literals (lits : Lia.literal list) : (string * int) list option =
  let eqs = ref [] and ineqs = ref [] and diseqs = ref [] in
  (try
     List.iter
       (fun lit ->
         match lit with
         | Lia.Le0 l ->
             if Lia.lin_is_const l then (if l.Lia.const > 0 then raise Gap)
             else ineqs := l :: !ineqs
         | Lia.Eq0 l ->
             if Lia.lin_is_const l then (if l.Lia.const <> 0 then raise Gap)
             else eqs := l :: !eqs
         | Lia.Ne0 l ->
             if Lia.lin_is_const l then (if l.Lia.const = 0 then raise Gap)
             else diseqs := l :: !diseqs)
       lits
   with Gap ->
     eqs := [];
     ineqs := [];
     diseqs := [ Lia.lin_const 0 ] (* poison: forces None below *));
  let eqs = List.rev !eqs and ineqs = List.rev !ineqs in
  let diseqs = List.rev !diseqs in
  if List.exists Lia.lin_is_const diseqs then None
  else
    let solve (ineqs : Lia.lin list) : (string * int) list option =
      try
        (* 1. equality elimination, recording substitutions *)
        let substs = ref [] in
        let rec elim eqs ineqs =
          match eqs with
          | [] -> ineqs
          | e :: rest ->
              if Lia.lin_is_const e then
                if e.Lia.const = 0 then elim rest ineqs else raise Gap
              else (
                match solvable_eq e with
                | Some (x, rhs) ->
                    let sub (a : Lia.lin) =
                      let k = coeff x a in
                      if k = 0 then a
                      else
                        Lia.lin_add
                          { a with Lia.coeffs = SMap.remove x a.Lia.coeffs }
                          (Lia.lin_scale k rhs)
                    in
                    substs := (x, rhs) :: !substs;
                    elim (List.map sub rest) (List.map sub ineqs)
                | None ->
                    let g = SMap.fold (fun _ c g -> gcd c g) e.Lia.coeffs 0 in
                    if g > 1 && e.Lia.const mod g <> 0 then raise Gap
                    else elim rest (e :: Lia.lin_scale (-1) e :: ineqs))
        in
        let ineqs = elim eqs ineqs in
        (* 2. FM elimination, recording each variable's bounding rows *)
        let elims = ref [] in
        let rec fmrec cs =
          let cs =
            List.filter_map
              (fun l ->
                if Lia.lin_is_const l then
                  if l.Lia.const > 0 then raise Gap else None
                else Some (tighten_lin l))
              cs
          in
          if List.length cs > fm_limit then raise Gap
          else
            match choose_var cs with
            | None -> ()
            | Some x ->
                let withx, rest =
                  List.partition (fun l -> coeff x l <> 0) cs
                in
                let pos = List.filter (fun l -> coeff x l > 0) withx in
                let neg = List.filter (fun l -> coeff x l < 0) withx in
                let combined =
                  List.concat_map
                    (fun cp ->
                      let a = coeff x cp in
                      List.map
                        (fun cn ->
                          Lia.lin_add
                            (Lia.lin_scale (-coeff x cn) cp)
                            (Lia.lin_scale a cn))
                        neg)
                    pos
                in
                elims := (x, withx) :: !elims;
                fmrec (combined @ rest)
        in
        fmrec ineqs;
        (* 3. back-substitute: !elims has the last-eliminated variable
           first, whose rows only mention variables eliminated later —
           i.e. already assigned by the time we reach it *)
        let env : (string, int) Hashtbl.t = Hashtbl.create 16 in
        let value x =
          match Hashtbl.find_opt env x with
          | Some v -> v
          | None ->
              Hashtbl.replace env x 0;
              0
        in
        let eval_without x (l : Lia.lin) =
          SMap.fold
            (fun y c acc -> if y = x then acc else acc + (c * value y))
            l.Lia.coeffs l.Lia.const
        in
        List.iter
          (fun (x, rows) ->
            let lo = ref min_int and hi = ref max_int in
            List.iter
              (fun r ->
                let a = coeff x r in
                let rest = eval_without x r in
                if a > 0 then hi := min !hi (fdiv (-rest) a)
                else lo := max !lo (cdiv rest (-a)))
              rows;
            if !lo > !hi then raise Gap;
            let v = if !lo > 0 then !lo else if !hi < 0 then !hi else 0 in
            Hashtbl.replace env x v)
          !elims;
        (* 4. equality substitutions, most recent first *)
        List.iter
          (fun (x, rhs) ->
            let v =
              SMap.fold
                (fun y c acc -> acc + (c * value y))
                rhs.Lia.coeffs rhs.Lia.const
            in
            Hashtbl.replace env x v)
          !substs;
        (* 5. verify every input literal *)
        let lin_val (l : Lia.lin) =
          SMap.fold
            (fun y c acc -> acc + (c * value y))
            l.Lia.coeffs l.Lia.const
        in
        let ok =
          List.for_all
            (function
              | Lia.Le0 l -> lin_val l <= 0
              | Lia.Eq0 l -> lin_val l = 0
              | Lia.Ne0 l -> lin_val l <> 0)
            lits
        in
        if ok then Some (Hashtbl.fold (fun x v acc -> (x, v) :: acc) env [])
        else None
      with Gap -> None
    in
    (* place each disequality on a feasible side, backtracking through
       the integer solve *)
    let rec place ineqs = function
      | [] -> solve ineqs
      | d :: rest ->
          let attempt branch =
            if Lia.feasible ~eqs ~ineqs:(branch :: ineqs) then
              place (branch :: ineqs) rest
            else None
          in
          (match attempt (le_neg1 d) with
          | Some m -> Some m
          | None -> attempt (ge_1 d))
    in
    place ineqs diseqs
