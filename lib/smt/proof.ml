(** Proof certificates for [Solver.valid] verdicts.

    A certificate records enough of the solver's work that a small,
    independent checker ({!Flux_cert.Replay}) can re-establish the
    verdict without re-running any search: the elaboration facts that
    introduced fresh variables (div/mod linearization, opaque
    abstraction, if-then-else naming), the boolean skeleton the DPLL
    search refuted, the case-split/unit-propagation tree, and — at each
    theory leaf — a Farkas-style nonnegative combination of the path
    hypotheses deriving [0 < 0].

    The types here are pure data plus an s-expression codec; they
    depend only on {!Term} and {!Sort} so the replay checker shares no
    code with the solver. Steps deliberately do {e not} store the
    intermediate linear forms: replay recomputes every combination with
    its own arithmetic, so a tampered multiplier cannot be papered over
    by a tampered intermediate. *)

(* ------------------------------------------------------------------ *)
(* Certificate syntax                                                  *)
(* ------------------------------------------------------------------ *)

(** Elaboration facts that introduce fresh variables, in introduction
    order. Each later fact may mention variables introduced by earlier
    ones; the replay checker verifies this acyclicity, which is what
    makes "every model of the goal extends to the fresh variables"
    true. *)
type fresh =
  | Divmod of Term.t * int * string
      (** [Divmod (a, c, q)]: [q] names [a / c] for a positive constant
          [c]; the remainder is the derived term [a - c*q]. *)
  | Opaque of Term.t * string * Sort.t
      (** [Opaque (key, v, s)]: [v] abstracts the term [key] (nonlinear
          product, general div/mod, application, real atom). *)
  | IteV of Term.t * Term.t * Term.t * string
      (** [IteV (c, a, b, v)]: [v] names [if c then a else b]. *)

(** A hypothesis source inside a theory refutation. *)
type src =
  | Hyp of int * bool * int
      (** [Hyp (i, pol, dir)]: atom [i] assigned [pol] on the current
          DPLL path. [dir] is [+1] for the atom's literal as a [≤ 0]
          row; [-1] (equalities only) for its negation. *)
  | Step of int  (** the result of an earlier step in this leaf *)
  | Dle of int  (** [d ≤ -1] branch of the enclosing disequality split *)
  | Dge of int  (** [d ≥ 1] branch of the enclosing disequality split *)

(** One derivation step over linear rows [l ≤ 0]. *)
type step =
  | Comb of (int * src) list
      (** nonnegative linear combination: [Σ kᵢ·srcᵢ ≤ 0] *)
  | Tight of src
      (** integer gcd tightening: divide coefficients by their gcd and
          round the constant up *)

(** A refutation of the conjunction of the path's theory literals. *)
type trefut =
  | Steps of step list
      (** derivation ending in a constant row [k ≤ 0] with [k > 0] *)
  | Dsplit of int * trefut * trefut
      (** case split on a disequality atom (an [Eq] atom assigned
          false): left assumes [d ≤ -1], right [d ≥ 1] *)

(** The DPLL search tree over the boolean skeleton. *)
type tree =
  | Split of int * tree * tree  (** branch on atom: true / false *)
  | Unit of int * bool * tree  (** forced literal (unit propagation) *)
  | BoolLeaf  (** the skeleton simplifies to [false] propositionally *)
  | TheoryLeaf of trefut  (** the path's theory literals are infeasible *)

type t = {
  goal : Term.t;  (** the term claimed valid *)
  fresh : fresh list;  (** elaboration facts, in introduction order *)
  skeleton : Term.t;  (** the elaborated negated goal *)
  defs : Term.t list;  (** side conditions for the fresh variables *)
  atoms : Term.t array;  (** atom table for the boolean skeleton *)
  tree : tree;  (** refutation of [skeleton ∧ defs] *)
}

(* ------------------------------------------------------------------ *)
(* S-expressions (same tiny grammar as the fuzz reproducer files)      *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | List of sexp list

exception Parse_error of string

let parse_sexps (src : string) : sexp list =
  let n = String.length src in
  let i = ref 0 in
  let peek () = if !i < n then Some src.[!i] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr i;
        skip_ws ()
    | Some ';' ->
        while !i < n && src.[!i] <> '\n' do
          incr i
        done;
        skip_ws ()
    | _ -> ()
  in
  let atom () =
    let start = !i in
    while
      !i < n
      && match src.[!i] with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> false
         | _ -> true
    do
      incr i
    done;
    if !i = start then raise (Parse_error "empty atom");
    Atom (String.sub src start (!i - start))
  in
  let rec sexp () =
    skip_ws ();
    match peek () with
    | Some '(' ->
        incr i;
        let rec items acc =
          skip_ws ();
          match peek () with
          | Some ')' ->
              incr i;
              List (List.rev acc)
          | None -> raise (Parse_error "unclosed '('")
          | _ -> items (sexp () :: acc)
        in
        items []
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | None -> raise (Parse_error "unexpected end of input")
    | _ -> atom ()
  in
  let rec top acc =
    skip_ws ();
    if !i >= n then List.rev acc else top (sexp () :: acc)
  in
  top []

let rec pp_sexp buf = function
  | Atom a -> Buffer.add_string buf a
  | List xs ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ' ';
          pp_sexp buf x)
        xs;
      Buffer.add_char buf ')'

let sexps_to_string (xs : sexp list) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun x ->
      pp_sexp buf x;
      Buffer.add_char buf '\n')
    xs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Term codec                                                          *)
(* ------------------------------------------------------------------ *)

let sort_to_atom = function
  | Sort.Int -> "int"
  | Sort.Bool -> "bool"
  | Sort.Loc -> "loc"
  | Sort.Real -> "real"

let sort_of_atom = function
  | "int" -> Sort.Int
  | "bool" -> Sort.Bool
  | "loc" -> Sort.Loc
  | "real" -> Sort.Real
  | s -> raise (Parse_error ("unknown sort " ^ s))

let binop_tag = function
  | Term.Add -> "add"
  | Term.Sub -> "sub"
  | Term.Mul -> "mul"
  | Term.Div -> "div"
  | Term.Mod -> "mod"

let cmpop_tag = function
  | Term.Lt -> "lt"
  | Term.Le -> "le"
  | Term.Gt -> "gt"
  | Term.Ge -> "ge"

let rec term_to_sexp (t : Term.t) : sexp =
  let l tag xs = List (Atom tag :: xs) in
  match t with
  | Term.Var (x, s) -> l "var" [ Atom x; Atom (sort_to_atom s) ]
  | Term.Int n -> l "int" [ Atom (string_of_int n) ]
  | Term.Bool b -> l "bool" [ Atom (string_of_bool b) ]
  | Term.Real x -> l "real" [ Atom (string_of_float x) ]
  | Term.Binop (op, a, b) ->
      l (binop_tag op) [ term_to_sexp a; term_to_sexp b ]
  | Term.Neg a -> l "neg" [ term_to_sexp a ]
  | Term.Cmp (op, a, b) -> l (cmpop_tag op) [ term_to_sexp a; term_to_sexp b ]
  | Term.Eq (a, b) -> l "eq" [ term_to_sexp a; term_to_sexp b ]
  | Term.Ne (a, b) -> l "ne" [ term_to_sexp a; term_to_sexp b ]
  | Term.And ts -> l "and" (List.map term_to_sexp ts)
  | Term.Or ts -> l "or" (List.map term_to_sexp ts)
  | Term.Not a -> l "not" [ term_to_sexp a ]
  | Term.Imp (a, b) -> l "imp" [ term_to_sexp a; term_to_sexp b ]
  | Term.Iff (a, b) -> l "iff" [ term_to_sexp a; term_to_sexp b ]
  | Term.Ite (c, a, b) ->
      l "ite" [ term_to_sexp c; term_to_sexp a; term_to_sexp b ]
  | Term.App (f, ts) -> l "app" (Atom f :: List.map term_to_sexp ts)

(* Decoding rebuilds with the smart constructors: on terms that were
   themselves built with the smart constructors (everything a
   certificate stores) this is the identity, so replay's [Term.equal]
   comparisons are meaningful across a round trip. *)
let rec term_of_sexp (s : sexp) : Term.t =
  match s with
  | List (Atom tag :: args) -> (
      let t1 () =
        match args with [ a ] -> term_of_sexp a | _ -> raise (Parse_error tag)
      in
      let t2 () =
        match args with
        | [ a; b ] -> (term_of_sexp a, term_of_sexp b)
        | _ -> raise (Parse_error tag)
      in
      match tag with
      | "var" -> (
          match args with
          | [ Atom x; Atom s ] -> Term.var ~sort:(sort_of_atom s) x
          | _ -> raise (Parse_error "var"))
      | "int" -> (
          match args with
          | [ Atom n ] -> Term.int (int_of_string n)
          | _ -> raise (Parse_error "int"))
      | "bool" -> (
          match args with
          | [ Atom b ] -> Term.bool (bool_of_string b)
          | _ -> raise (Parse_error "bool"))
      | "real" -> (
          match args with
          | [ Atom x ] -> Term.real (float_of_string x)
          | _ -> raise (Parse_error "real"))
      | "add" | "sub" | "mul" | "div" | "mod" ->
          let a, b = t2 () in
          let op =
            match tag with
            | "add" -> Term.Add
            | "sub" -> Term.Sub
            | "mul" -> Term.Mul
            | "div" -> Term.Div
            | _ -> Term.Mod
          in
          Term.mk_binop op a b
      | "neg" -> Term.neg (t1 ())
      | "lt" | "le" | "gt" | "ge" ->
          let a, b = t2 () in
          let op =
            match tag with
            | "lt" -> Term.Lt
            | "le" -> Term.Le
            | "gt" -> Term.Gt
            | _ -> Term.Ge
          in
          Term.mk_cmp op a b
      | "eq" ->
          let a, b = t2 () in
          Term.mk_eq a b
      | "ne" ->
          let a, b = t2 () in
          Term.mk_ne a b
      | "and" -> Term.mk_and (List.map term_of_sexp args)
      | "or" -> Term.mk_or (List.map term_of_sexp args)
      | "not" -> Term.mk_not (t1 ())
      | "imp" ->
          let a, b = t2 () in
          Term.mk_imp a b
      | "iff" ->
          let a, b = t2 () in
          Term.mk_iff a b
      | "ite" -> (
          match args with
          | [ c; a; b ] ->
              Term.ite (term_of_sexp c) (term_of_sexp a) (term_of_sexp b)
          | _ -> raise (Parse_error "ite"))
      | "app" -> (
          match args with
          | Atom f :: ts -> Term.app f (List.map term_of_sexp ts)
          | _ -> raise (Parse_error "app"))
      | _ -> raise (Parse_error ("unknown term tag " ^ tag)))
  | _ -> raise (Parse_error "expected (tag ...)")

(* ------------------------------------------------------------------ *)
(* Certificate codec                                                   *)
(* ------------------------------------------------------------------ *)

let int_of_atom = function
  | Atom a -> (
      match int_of_string_opt a with
      | Some n -> n
      | None -> raise (Parse_error ("expected integer, got " ^ a)))
  | List _ -> raise (Parse_error "expected integer atom")

let bool_of_atom = function
  | Atom "true" -> true
  | Atom "false" -> false
  | _ -> raise (Parse_error "expected boolean atom")

let fresh_to_sexp = function
  | Divmod (a, c, q) ->
      List [ Atom "divmod"; term_to_sexp a; Atom (string_of_int c); Atom q ]
  | Opaque (key, v, s) ->
      List [ Atom "opaque"; term_to_sexp key; Atom v; Atom (sort_to_atom s) ]
  | IteV (c, a, b, v) ->
      List [ Atom "itev"; term_to_sexp c; term_to_sexp a; term_to_sexp b;
             Atom v ]

let fresh_of_sexp = function
  | List [ Atom "divmod"; a; c; Atom q ] ->
      Divmod (term_of_sexp a, int_of_atom c, q)
  | List [ Atom "opaque"; key; Atom v; Atom s ] ->
      Opaque (term_of_sexp key, v, sort_of_atom s)
  | List [ Atom "itev"; c; a; b; Atom v ] ->
      IteV (term_of_sexp c, term_of_sexp a, term_of_sexp b, v)
  | _ -> raise (Parse_error "fresh")

let src_to_sexp = function
  | Hyp (i, pol, dir) ->
      List
        [ Atom "hyp"; Atom (string_of_int i); Atom (string_of_bool pol);
          Atom (string_of_int dir) ]
  | Step i -> List [ Atom "step"; Atom (string_of_int i) ]
  | Dle i -> List [ Atom "dle"; Atom (string_of_int i) ]
  | Dge i -> List [ Atom "dge"; Atom (string_of_int i) ]

let src_of_sexp = function
  | List [ Atom "hyp"; i; pol; dir ] ->
      Hyp (int_of_atom i, bool_of_atom pol, int_of_atom dir)
  | List [ Atom "step"; i ] -> Step (int_of_atom i)
  | List [ Atom "dle"; i ] -> Dle (int_of_atom i)
  | List [ Atom "dge"; i ] -> Dge (int_of_atom i)
  | _ -> raise (Parse_error "src")

let step_to_sexp = function
  | Comb ks ->
      List
        (Atom "comb"
        :: List.map
             (fun (k, s) -> List [ Atom (string_of_int k); src_to_sexp s ])
             ks)
  | Tight s -> List [ Atom "tight"; src_to_sexp s ]

let step_of_sexp = function
  | List (Atom "comb" :: ks) ->
      Comb
        (List.map
           (function
             | List [ k; s ] -> (int_of_atom k, src_of_sexp s)
             | _ -> raise (Parse_error "comb entry"))
           ks)
  | List [ Atom "tight"; s ] -> Tight (src_of_sexp s)
  | _ -> raise (Parse_error "step")

let rec trefut_to_sexp = function
  | Steps ss -> List (Atom "steps" :: List.map step_to_sexp ss)
  | Dsplit (i, l, r) ->
      List
        [ Atom "dsplit"; Atom (string_of_int i); trefut_to_sexp l;
          trefut_to_sexp r ]

let rec trefut_of_sexp = function
  | List (Atom "steps" :: ss) -> Steps (List.map step_of_sexp ss)
  | List [ Atom "dsplit"; i; l; r ] ->
      Dsplit (int_of_atom i, trefut_of_sexp l, trefut_of_sexp r)
  | _ -> raise (Parse_error "trefut")

let rec tree_to_sexp = function
  | Split (i, l, r) ->
      List
        [ Atom "split"; Atom (string_of_int i); tree_to_sexp l; tree_to_sexp r ]
  | Unit (i, pol, sub) ->
      List
        [ Atom "unit"; Atom (string_of_int i); Atom (string_of_bool pol);
          tree_to_sexp sub ]
  | BoolLeaf -> List [ Atom "bfalse" ]
  | TheoryLeaf tr -> List [ Atom "theory"; trefut_to_sexp tr ]

let rec tree_of_sexp = function
  | List [ Atom "split"; i; l; r ] ->
      Split (int_of_atom i, tree_of_sexp l, tree_of_sexp r)
  | List [ Atom "unit"; i; pol; sub ] ->
      Unit (int_of_atom i, bool_of_atom pol, tree_of_sexp sub)
  | List [ Atom "bfalse" ] -> BoolLeaf
  | List [ Atom "theory"; tr ] -> TheoryLeaf (trefut_of_sexp tr)
  | _ -> raise (Parse_error "tree")

let to_sexp (p : t) : sexp =
  List
    [
      Atom "proof";
      List (Atom "goal" :: [ term_to_sexp p.goal ]);
      List (Atom "fresh" :: List.map fresh_to_sexp p.fresh);
      List (Atom "skeleton" :: [ term_to_sexp p.skeleton ]);
      List (Atom "defs" :: List.map term_to_sexp p.defs);
      List (Atom "atoms" :: List.map term_to_sexp (Array.to_list p.atoms));
      List (Atom "tree" :: [ tree_to_sexp p.tree ]);
    ]

let of_sexp (s : sexp) : t =
  match s with
  | List
      [
        Atom "proof";
        List (Atom "goal" :: [ goal ]);
        List (Atom "fresh" :: fresh);
        List (Atom "skeleton" :: [ skeleton ]);
        List (Atom "defs" :: defs);
        List (Atom "atoms" :: atoms);
        List (Atom "tree" :: [ tree ]);
      ] ->
      {
        goal = term_of_sexp goal;
        fresh = List.map fresh_of_sexp fresh;
        skeleton = term_of_sexp skeleton;
        defs = List.map term_of_sexp defs;
        atoms = Array.of_list (List.map term_of_sexp atoms);
        tree = tree_of_sexp tree;
      }
  | _ -> raise (Parse_error "proof")

let to_string (p : t) : string = sexps_to_string [ to_sexp p ]

let of_string (src : string) : t =
  match parse_sexps src with
  | [ s ] -> of_sexp s
  | _ -> raise (Parse_error "expected exactly one proof")

(* ------------------------------------------------------------------ *)
(* Function-level certificates                                         *)
(* ------------------------------------------------------------------ *)

(** A function's certificate: one proof per discharged goal, keyed by
    the clause tag (Flux) or VC index (WP). Stored next to the verdict
    in the cache as s-expression text under the same content key, so a
    certificate can never be replayed against the wrong source. *)
let cert_to_string (entries : (int * t) list) : string =
  sexps_to_string
    (List.map
       (fun (tag, p) ->
         List [ Atom "cert"; Atom (string_of_int tag); to_sexp p ])
       entries)

let cert_of_string (src : string) : (int * t) list =
  List.map
    (function
      | List [ Atom "cert"; tag; p ] -> (int_of_atom tag, of_sexp p)
      | _ -> raise (Parse_error "cert"))
    (parse_sexps src)
