(** A generic forward/backward dataflow framework over the MIR CFG.

    An analysis supplies a join-semilattice of facts and per-statement /
    per-terminator transfer functions; the framework runs the standard
    worklist iteration to the least fixpoint and exposes both the
    per-block entry/exit facts and a replay helper that recovers the
    fact at every statement inside a block (so clients like dead-store
    detection need not duplicate the transfer functions).

    Facts are treated as immutable values by the framework: [join] and
    the transfer functions must return fresh facts (or unshared copies)
    rather than mutating their arguments in place. The CFGs here are
    small (tens of blocks), so the simple list-based worklist seeded in
    iteration order is plenty. *)

module type DOMAIN = sig
  type t
  (** A dataflow fact. *)

  val direction : [ `Forward | `Backward ]

  val init : Ir.body -> t
  (** Boundary fact: at the entry block for a forward analysis, at
      every exit (block without successors) for a backward one. *)

  val bottom : Ir.body -> t
  (** Identity of [join]; the initial fact of every non-boundary
      block. *)

  val join : t -> t -> t
  val equal : t -> t -> bool

  val transfer_stmt : Ir.body -> t -> Ir.stmt -> t
  (** Fact after the statement (forward) / before it (backward). *)

  val transfer_term : Ir.body -> t -> Ir.terminator -> t
end

module Make (D : DOMAIN) = struct
  type result = {
    body : Ir.body;
    block_in : D.t array;  (** fact at block entry (execution order) *)
    block_out : D.t array;  (** fact at block exit (execution order) *)
  }

  (* Apply a whole block. Forward: stmts then terminator; backward:
     terminator then stmts in reverse. *)
  let through_block (b : Ir.body) (blk : Ir.block) (fact : D.t) : D.t =
    match D.direction with
    | `Forward ->
        let fact =
          List.fold_left (fun f s -> D.transfer_stmt b f s) fact blk.Ir.stmts
        in
        D.transfer_term b fact blk.Ir.term
    | `Backward ->
        let fact = D.transfer_term b fact blk.Ir.term in
        List.fold_left
          (fun f s -> D.transfer_stmt b f s)
          fact
          (List.rev blk.Ir.stmts)

  let run (b : Ir.body) : result =
    let n = Array.length b.Ir.mb_blocks in
    let preds = Ir.predecessors b in
    (* Dependency edges: forward analyses propagate along successor
       edges, backward ones against them. *)
    let feeds i =
      match D.direction with
      | `Forward -> Ir.successors b.Ir.mb_blocks.(i).Ir.term
      | `Backward -> preds.(i)
    in
    let sources i =
      match D.direction with
      | `Forward -> preds.(i)
      | `Backward -> Ir.successors b.Ir.mb_blocks.(i).Ir.term
    in
    let is_boundary i =
      match D.direction with
      | `Forward -> i = 0
      | `Backward -> Ir.successors b.Ir.mb_blocks.(i).Ir.term = []
    in
    (* entry.(i): fact flowing into the block in analysis order (block
       entry for forward, block exit for backward). *)
    let entry =
      Array.init n (fun i -> if is_boundary i then D.init b else D.bottom b)
    in
    let exit = Array.make n None in
    let on_list = Array.make n true in
    let worklist = Queue.create () in
    (* Seed in reverse postorder for forward analyses and its reverse
       for backward ones: fewer iterations on reducible CFGs. *)
    let rpo = Ir.reverse_postorder b in
    List.iter (fun i -> Queue.add i worklist)
      (match D.direction with `Forward -> rpo | `Backward -> List.rev rpo);
    while not (Queue.is_empty worklist) do
      let i = Queue.pop worklist in
      on_list.(i) <- false;
      let in_fact =
        List.fold_left
          (fun acc p ->
            match exit.(p) with Some f -> D.join acc f | None -> acc)
          (if is_boundary i then D.init b else D.bottom b)
          (sources i)
      in
      entry.(i) <- in_fact;
      let out_fact = through_block b b.Ir.mb_blocks.(i) in_fact in
      let changed =
        match exit.(i) with
        | Some old -> not (D.equal old out_fact)
        | None -> true
      in
      if changed then begin
        exit.(i) <- Some out_fact;
        List.iter
          (fun s ->
            if not on_list.(s) then begin
              on_list.(s) <- true;
              Queue.add s worklist
            end)
          (feeds i)
      end
    done;
    let exit =
      Array.mapi
        (fun i -> function
          | Some f -> f
          | None -> through_block b b.Ir.mb_blocks.(i) entry.(i))
        exit
    in
    match D.direction with
    | `Forward -> { body = b; block_in = entry; block_out = exit }
    | `Backward -> { body = b; block_in = exit; block_out = entry }

  (** Replay the facts at every statement of [block]. Returns, in
      statement order, [(stmt, before, after)] where [before]/[after]
      are in {e execution} order (for a backward analysis [after] is
      the fact the statement's transfer consumed). *)
  let stmt_facts (r : result) ~(block : int) :
      (Ir.stmt * D.t * D.t) list =
    let blk = r.body.Ir.mb_blocks.(block) in
    match D.direction with
    | `Forward ->
        let _, acc =
          List.fold_left
            (fun (fact, acc) s ->
              let after = D.transfer_stmt r.body fact s in
              (after, (s, fact, after) :: acc))
            (r.block_in.(block), [])
            blk.Ir.stmts
        in
        List.rev acc
    | `Backward ->
        let after_term = D.transfer_term r.body r.block_out.(block) blk.Ir.term in
        let _, acc =
          List.fold_left
            (fun (fact, acc) s ->
              let before = D.transfer_stmt r.body fact s in
              (before, (s, before, fact) :: acc))
            (after_term, [])
            (List.rev blk.Ir.stmts)
        in
        acc
end

(* ------------------------------------------------------------------ *)
(* Back edges and widening points                                      *)
(* ------------------------------------------------------------------ *)

(** CFG edges [(src, dst)] whose destination is an ancestor of the
    source on the DFS spanning tree from the entry block — the edges
    that close loops. On the reducible CFGs our lowering produces these
    are exactly the loop back edges; their targets are where a widening
    fixpoint must accelerate. *)
let back_edges (b : Ir.body) : (int * int) list =
  let n = Array.length b.Ir.mb_blocks in
  (* 0 = white (unvisited), 1 = grey (on the DFS stack), 2 = black *)
  let color = Array.make n 0 in
  let edges = ref [] in
  let rec dfs i =
    color.(i) <- 1;
    List.iter
      (fun s ->
        if color.(s) = 1 then edges := (i, s) :: !edges
        else if color.(s) = 0 then dfs s)
      (Ir.successors b.Ir.mb_blocks.(i).Ir.term);
    color.(i) <- 2
  in
  if n > 0 then dfs 0;
  List.rev !edges

(** [widening_points b]: the blocks that are targets of back edges. *)
let widening_points (b : Ir.body) : bool array =
  let pts = Array.make (Array.length b.Ir.mb_blocks) false in
  List.iter (fun (_, dst) -> pts.(dst) <- true) (back_edges b);
  pts

(** A forward analysis on a lattice of infinite ascending chains:
    {!DOMAIN} plus widening/narrowing operators and edge-sensitive
    terminator transfer (branch conditions refine the fact flowing
    along each outgoing edge; calls write their destination only on
    their return edge). *)
module type DOMAIN_W = sig
  type t

  val init : Ir.body -> t
  (** Fact at the entry block. *)

  val bottom : Ir.body -> t
  (** Unreachable: identity of [join], absorbed by everything. *)

  val join : t -> t -> t

  val widen : t -> t -> t
  (** [widen old new]: over-approximates [join old new] and guarantees
      stabilization of any chain [x ← widen x yᵢ]. *)

  val narrow : t -> t -> t
  (** [narrow wide refined]: recovers precision lost to widening;
      result lies between [refined] and [wide], and any chain
      [x ← narrow x yᵢ] stabilizes. *)

  val equal : t -> t -> bool
  val transfer_stmt : Ir.body -> t -> Ir.stmt -> t

  val transfer_edge : Ir.body -> src:int -> dst:int -> Ir.terminator -> t -> t
  (** Fact flowing along the CFG edge [src → dst], given the fact after
      [src]'s statements. This is where switch conditions refine and
      call destinations are written. *)
end

module MakeWiden (D : DOMAIN_W) = struct
  type result = {
    body : Ir.body;
    block_in : D.t array;
    block_out : D.t array;  (** after the block's statements *)
  }

  let through_stmts (b : Ir.body) (blk : Ir.block) (fact : D.t) : D.t =
    List.fold_left (fun f s -> D.transfer_stmt b f s) fact blk.Ir.stmts

  let run (b : Ir.body) : result =
    let n = Array.length b.Ir.mb_blocks in
    let preds = Ir.predecessors b in
    let wide = widening_points b in
    let entry = Array.init n (fun i -> if i = 0 then D.init b else D.bottom b) in
    let exit = Array.init n (fun _ -> D.bottom b) in
    let flow_in i =
      List.fold_left
        (fun acc p ->
          D.join acc
            (D.transfer_edge b ~src:p ~dst:i b.Ir.mb_blocks.(p).Ir.term
               exit.(p)))
        (if i = 0 then D.init b else D.bottom b)
        preds.(i)
    in
    (* Ascending phase: worklist with widening at loop heads. *)
    let on_list = Array.make n false in
    let worklist = Queue.create () in
    let push i =
      if not on_list.(i) then begin
        on_list.(i) <- true;
        Queue.add i worklist
      end
    in
    List.iter push (Ir.reverse_postorder b);
    while not (Queue.is_empty worklist) do
      let i = Queue.pop worklist in
      on_list.(i) <- false;
      let in_fact = flow_in i in
      let in_fact = if wide.(i) then D.widen entry.(i) in_fact else in_fact in
      let out_fact = through_stmts b b.Ir.mb_blocks.(i) in_fact in
      if (not (D.equal entry.(i) in_fact)) || not (D.equal exit.(i) out_fact)
      then begin
        entry.(i) <- in_fact;
        exit.(i) <- out_fact;
        List.iter push (Ir.successors b.Ir.mb_blocks.(i).Ir.term)
      end
    done;
    (* Descending phase: a bounded number of narrowing sweeps claws
       back the bounds widening discarded (loop exits regain the guard
       information). Narrowing only ever refines, so stopping after a
       fixed number of sweeps is sound. *)
    let rpo = Ir.reverse_postorder b in
    for _ = 1 to 2 do
      List.iter
        (fun i ->
          let in_fact = flow_in i in
          let in_fact =
            if wide.(i) then D.narrow entry.(i) in_fact else in_fact
          in
          entry.(i) <- in_fact;
          exit.(i) <- through_stmts b b.Ir.mb_blocks.(i) in_fact)
        rpo
    done;
    { body = b; block_in = entry; block_out = exit }

  (** Facts at every statement of [block], in statement order:
      [(stmt, before, after)]. *)
  let stmt_facts (r : result) ~(block : int) : (Ir.stmt * D.t * D.t) list =
    let blk = r.body.Ir.mb_blocks.(block) in
    let _, acc =
      List.fold_left
        (fun (fact, acc) s ->
          let after = D.transfer_stmt r.body fact s in
          (after, (s, fact, after) :: acc))
        (r.block_in.(block), [])
        blk.Ir.stmts
    in
    List.rev acc
end
