(** Backward liveness analysis over MIR (a {!Dataflow} instance).

    Used by the refinement checker to keep join templates small and to
    exclude moved-out locals whose types would not join. A use of any
    projection of a local counts as a use; `&x` keeps `x` alive. *)

type t

val compute : Ir.body -> t

val live_at : t -> block:int -> bool array
(** Per-local liveness at block entry. *)

val live_out : t -> block:int -> bool array
(** Per-local liveness at block exit (before the terminator). The
    return local's liveness at [TReturn] is accounted inside the
    terminator transfer, so it is visible in [live_at] of the block but
    not here. *)

val stmt_liveness : t -> block:int -> (Ir.stmt * bool array * bool array) list
(** Per-statement liveness inside a block, in statement order:
    [(stmt, live_before, live_after)]. [live_after] is the fact
    immediately after the statement in execution order — the input the
    backward transfer consumed. *)
