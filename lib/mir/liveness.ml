(** Backward liveness analysis over MIR.

    The refinement checker synthesizes a template environment at every
    join block (§4.2); liveness keeps those templates small and — more
    importantly — excludes moved-out locals whose types would otherwise
    fail to join (a dead local may be initialized on one path and
    moved-out on another).

    The analysis is an instance of the generic {!Dataflow} worklist
    framework. A use of any projection of a local counts as a use of the
    local; an assignment to a bare local is a def, while an assignment
    through a projection (deref/field) is both a use and a def
    (conservatively treated as a use only). References keep their
    referent alive: `&x` uses `x`. The return local is live at every
    [TReturn]. *)

open Ir

let use_place (uses : bool array) (p : place) = uses.(p.base) <- true

let use_operand uses = function
  | Copy p | Move p -> use_place uses p
  | Const _ -> ()

let use_rvalue uses = function
  | RUse op -> use_operand uses op
  | RBin (_, a, b) ->
      use_operand uses a;
      use_operand uses b
  | RUn (_, a) -> use_operand uses a
  | RRef (_, p) -> use_place uses p
  | RAggregate (_, fields) -> List.iter (fun (_, op) -> use_operand uses op) fields

module Domain = struct
  type t = bool array
  (** local -> live *)

  let direction = `Backward
  let bottom (b : body) = Array.make (Array.length b.mb_locals) false
  let init = bottom

  let join a b =
    let r = Array.copy a in
    Array.iteri (fun l v -> if v then r.(l) <- true) b;
    r

  let equal (a : t) (b : t) = a = b

  let transfer_stmt _ (live : t) (s : stmt) =
    match s with
    | SAssign (dest, rv, _) ->
        let live = Array.copy live in
        if dest.projs = [] then live.(dest.base) <- false
        else use_place live dest;
        use_rvalue live rv;
        live
    | SInvariant _ | SNop -> live

  let transfer_term _ (live : t) (t : terminator) =
    match t with
    | TGoto _ | TUnreachable -> live
    | TReturn ->
        let live = Array.copy live in
        live.(0) <- true;
        live
    | TSwitch (op, _, _) ->
        let live = Array.copy live in
        use_operand live op;
        live
    | TCall { tc_args; tc_dest; _ } ->
        let live = Array.copy live in
        if tc_dest.projs = [] then live.(tc_dest.base) <- false
        else use_place live tc_dest;
        List.iter (use_operand live) tc_args;
        live
end

module Flow = Dataflow.Make (Domain)

type t = Flow.result

let compute (b : body) : t = Flow.run b

let live_at (t : t) ~(block : int) : bool array = t.Flow.block_in.(block)

let live_out (t : t) ~(block : int) : bool array = t.Flow.block_out.(block)

(** Per-statement liveness inside a block, in statement order:
    [(stmt, live_before, live_after)]. *)
let stmt_liveness (t : t) ~(block : int) : (stmt * bool array * bool array) list
    =
  Flow.stmt_facts t ~block
