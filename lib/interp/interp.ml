(** An executable semantics for the MIR — the operational side of the
    paper's Theorem 3.2 (stuck freedom).

    Every vector access is dynamically bounds-checked and raises
    {!Panic} on violation; type confusion raises {!Stuck}. The property
    tests use this to check, on randomized inputs, that programs
    accepted by the Flux checker never panic on an access the checker
    verified — an executable reading of "well-typed programs do not get
    stuck". *)

module Ast = Flux_syntax.Ast
module Ir = Flux_mir.Ir

exception Panic of string
exception Stuck of string
exception Out_of_fuel

type vec = { mutable items : value array; mutable len : int }

and value =
  | VInt of int
  | VBool of bool
  | VFloat of float
  | VUnit
  | VVec of vec
  | VStruct of string * (string * value ref) list
  | VRefCell of value ref
  | VRefElem of vec * int

let rec pp_value fmt = function
  | VInt n -> Format.pp_print_int fmt n
  | VBool b -> Format.pp_print_bool fmt b
  | VFloat f -> Format.fprintf fmt "%g" f
  | VUnit -> Format.pp_print_string fmt "()"
  | VVec v ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_value)
        (Array.to_list (Array.sub v.items 0 v.len))
  | VStruct (s, fields) ->
      Format.fprintf fmt "%s { %a }" s
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (fun fmt (f, v) -> Format.fprintf fmt "%s: %a" f pp_value !v))
        fields
  | VRefCell _ -> Format.pp_print_string fmt "&_"
  | VRefElem _ -> Format.pp_print_string fmt "&elem"

let vec_make () = { items = [||]; len = 0 }

let vec_get v i =
  if i < 0 || i >= v.len then
    raise (Panic (Printf.sprintf "index out of bounds: %d (len %d)" i v.len))
  else v.items.(i)

let vec_set v i x =
  if i < 0 || i >= v.len then
    raise (Panic (Printf.sprintf "index out of bounds: %d (len %d)" i v.len))
  else v.items.(i) <- x

let vec_push v x =
  if v.len = Array.length v.items then begin
    let cap = max 4 (2 * Array.length v.items) in
    let items = Array.make cap VUnit in
    Array.blit v.items 0 items 0 v.len;
    v.items <- items
  end;
  v.items.(v.len) <- x;
  v.len <- v.len + 1

let vec_pop v =
  if v.len = 0 then raise (Panic "pop from empty vector")
  else begin
    v.len <- v.len - 1;
    v.items.(v.len)
  end

let vec_of_list xs =
  let v = vec_make () in
  List.iter (vec_push v) xs;
  v

let rec value_eq a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VBool x, VBool y -> x = y
  | VFloat x, VFloat y -> Float.equal x y
  | VUnit, VUnit -> true
  | VVec x, VVec y ->
      x.len = y.len
      && (let ok = ref true in
          for i = 0 to x.len - 1 do
            if not (value_eq x.items.(i) y.items.(i)) then ok := false
          done;
          !ok)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Machine                                                             *)
(* ------------------------------------------------------------------ *)

type machine = {
  prog : Ast.program;
  bodies : (string * Ir.body) list;
  builtins : (string, value list -> value) Hashtbl.t;
  mutable fuel : int;
  tracef : (string -> unit) option;
      (** called with one rendered line per function/method call —
          the step-by-step counterexample traces of [--certify] *)
  probe : (Ir.body -> int -> value ref array -> unit) option;
      (** called at every block entry with the body, the block id and
          the live frame locals — the γ-containment hook of the absint
          fuzz oracle *)
}

let default_builtins () =
  let tbl = Hashtbl.create 8 in
  let to_float = function
    | [ VInt n ] -> VFloat (float_of_int n)
    | _ -> raise (Stuck "flt: bad arguments")
  in
  Hashtbl.replace tbl "flt" to_float;
  Hashtbl.replace tbl "flt2" to_float;
  tbl

let make ?(fuel = 10_000_000) ?trace ?probe (prog : Ast.program) : machine =
  {
    prog;
    bodies = Flux_mir.Lower.lower_program prog;
    builtins = default_builtins ();
    fuel;
    tracef = trace;
    probe;
  }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type frame = { locals : value ref array; body : Ir.body }

let burn m =
  m.fuel <- m.fuel - 1;
  if m.fuel <= 0 then raise Out_of_fuel

(** Resolve a place to either a cell or a vector element. *)
let rec resolve_place (fr : frame) (p : Ir.place) :
    [ `Cell of value ref | `Elem of vec * int ] =
  let rec go (target : [ `Cell of value ref | `Elem of vec * int ])
      (projs : Ir.proj list) =
    match projs with
    | [] -> target
    | Ir.PDeref :: rest -> (
        let v =
          match target with
          | `Cell c -> !c
          | `Elem (vec, i) -> vec_get vec i
        in
        match v with
        | VRefCell c -> go (`Cell c) rest
        | VRefElem (vec, i) -> go (`Elem (vec, i)) rest
        | _ -> raise (Stuck "deref of non-reference"))
    | Ir.PField f :: rest -> (
        let v =
          match target with
          | `Cell c -> !c
          | `Elem (vec, i) -> vec_get vec i
        in
        match v with
        | VStruct (_, fields) -> (
            match List.assoc_opt f fields with
            | Some cell -> go (`Cell cell) rest
            | None -> raise (Stuck ("no field " ^ f)))
        | _ -> raise (Stuck "field of non-struct"))
  in
  go (`Cell fr.locals.(p.Ir.base)) p.Ir.projs

and read_place (fr : frame) (p : Ir.place) : value =
  match resolve_place fr p with
  | `Cell c -> !c
  | `Elem (vec, i) -> vec_get vec i

let write_place (fr : frame) (p : Ir.place) (v : value) : unit =
  match resolve_place fr p with
  | `Cell c -> c := v
  | `Elem (vec, i) -> vec_set vec i v

let read_operand (fr : frame) (op : Ir.operand) : value =
  match op with
  | Ir.Const (Ir.CInt (n, _)) -> VInt n
  | Ir.Const (Ir.CBool b) -> VBool b
  | Ir.Const (Ir.CFloat f) -> VFloat f
  | Ir.Const Ir.CUnit -> VUnit
  | Ir.Copy p | Ir.Move p -> read_place fr p

let as_bool = function VBool b -> b | _ -> raise (Stuck "expected a boolean")

let eval_binop (op : Ast.binop) (a : value) (b : value) : value =
  match (op, a, b) with
  | Ast.Add, VInt x, VInt y -> VInt (x + y)
  | Ast.Sub, VInt x, VInt y -> VInt (x - y)
  | Ast.Mul, VInt x, VInt y -> VInt (x * y)
  | Ast.Div, VInt x, VInt y ->
      if y = 0 then raise (Panic "division by zero") else VInt (x / y)
  | Ast.Rem, VInt x, VInt y ->
      if y = 0 then raise (Panic "remainder by zero") else VInt (x mod y)
  | Ast.Lt, VInt x, VInt y -> VBool (x < y)
  | Ast.Le, VInt x, VInt y -> VBool (x <= y)
  | Ast.Gt, VInt x, VInt y -> VBool (x > y)
  | Ast.Ge, VInt x, VInt y -> VBool (x >= y)
  | Ast.EqOp, VInt x, VInt y -> VBool (x = y)
  | Ast.NeOp, VInt x, VInt y -> VBool (x <> y)
  | Ast.Add, VFloat x, VFloat y -> VFloat (x +. y)
  | Ast.Sub, VFloat x, VFloat y -> VFloat (x -. y)
  | Ast.Mul, VFloat x, VFloat y -> VFloat (x *. y)
  | Ast.Div, VFloat x, VFloat y -> VFloat (x /. y)
  | Ast.Rem, VFloat x, VFloat y -> VFloat (Float.rem x y)
  | Ast.Lt, VFloat x, VFloat y -> VBool (x < y)
  | Ast.Le, VFloat x, VFloat y -> VBool (x <= y)
  | Ast.Gt, VFloat x, VFloat y -> VBool (x > y)
  | Ast.Ge, VFloat x, VFloat y -> VBool (x >= y)
  | Ast.EqOp, VFloat x, VFloat y -> VBool (Float.equal x y)
  | Ast.NeOp, VFloat x, VFloat y -> VBool (not (Float.equal x y))
  | Ast.EqOp, VBool x, VBool y -> VBool (x = y)
  | Ast.NeOp, VBool x, VBool y -> VBool (x <> y)
  | Ast.AndOp, VBool x, VBool y -> VBool (x && y)
  | Ast.OrOp, VBool x, VBool y -> VBool (x || y)
  | _ -> raise (Stuck "invalid binary operation")

(** Call a function by name. *)
let rec call (m : machine) (fname : string) (args : value list) : value =
  burn m;
  (match m.tracef with
  | Some f ->
      f
        (Format.asprintf "%s(%s)" fname
           (String.concat ", "
              (List.map (Format.asprintf "%a" pp_value) args)))
  | None -> ());
  if String.length fname > 6 && String.sub fname 0 6 = "RVec::" then
    vec_call (String.sub fname 6 (String.length fname - 6)) args
  else if String.equal fname "RVec::new" then VVec (vec_make ())
  else
    match List.assoc_opt fname m.bodies with
    | Some body -> exec_body m body args
    | None -> (
        match Hashtbl.find_opt m.builtins fname with
        | Some f -> f args
        | None -> raise (Stuck ("unknown function " ^ fname)))

and vec_call (meth : string) (args : value list) : value =
  let the_vec = function
    | VRefCell { contents = VVec v } -> v
    | VRefElem (outer, i) -> (
        match vec_get outer i with
        | VVec v -> v
        | _ -> raise (Stuck "receiver element is not a vector"))
    | VVec v -> v
    | _ -> raise (Stuck "receiver is not a vector")
  in
  match (meth, args) with
  | "new", [] -> VVec (vec_make ())
  | "len", [ r ] -> VInt (the_vec r).len
  | "is_empty", [ r ] -> VBool ((the_vec r).len = 0)
  | "get", [ r; VInt i ] ->
      let v = the_vec r in
      ignore (vec_get v i);
      VRefElem (v, i)
  | "get_mut", [ r; VInt i ] ->
      let v = the_vec r in
      ignore (vec_get v i);
      VRefElem (v, i)
  | "push", [ r; x ] ->
      vec_push (the_vec r) x;
      VUnit
  | "pop", [ r ] -> vec_pop (the_vec r)
  | "swap", [ r; VInt i; VInt j ] ->
      let v = the_vec r in
      let a = vec_get v i and b = vec_get v j in
      vec_set v i b;
      vec_set v j a;
      VUnit
  | "clone", [ r ] ->
      let v = the_vec r in
      let c = vec_make () in
      for i = 0 to v.len - 1 do
        vec_push c v.items.(i)
      done;
      VVec c
  | _ -> raise (Stuck ("unknown RVec method " ^ meth))

and exec_body (m : machine) (body : Ir.body) (args : value list) : value =
  let n = Array.length body.Ir.mb_locals in
  let fr = { locals = Array.init n (fun _ -> ref VUnit); body } in
  List.iteri (fun i v -> fr.locals.(i + 1) := v) args;
  let rec run (bb : int) : value =
    burn m;
    (match m.probe with Some p -> p body bb fr.locals | None -> ());
    let blk = body.Ir.mb_blocks.(bb) in
    List.iter
      (fun s ->
        match s with
        | Ir.SNop | Ir.SInvariant _ -> ()
        | Ir.SAssign (dest, rv, _) -> write_place fr dest (eval_rvalue fr rv))
      blk.Ir.stmts;
    match blk.Ir.term with
    | Ir.TGoto s -> run s
    | Ir.TSwitch (op, s_then, s_else) ->
        if as_bool (read_operand fr op) then run s_then else run s_else
    | Ir.TReturn -> !(fr.locals.(0))
    | Ir.TUnreachable -> raise (Panic "assertion failed / unreachable reached")
    | Ir.TCall { tc_func; tc_args; tc_dest; tc_target; _ } ->
        let argv = List.map (read_operand fr) tc_args in
        let result = call m tc_func argv in
        write_place fr tc_dest result;
        run tc_target
  and eval_rvalue fr (rv : Ir.rvalue) : value =
    match rv with
    | Ir.RUse op -> read_operand fr op
    | Ir.RBin (op, a, b) -> eval_binop op (read_operand fr a) (read_operand fr b)
    | Ir.RUn (Ast.Not, a) -> VBool (not (as_bool (read_operand fr a)))
    | Ir.RUn (Ast.NegOp, a) -> (
        match read_operand fr a with
        | VInt n -> VInt (-n)
        | VFloat f -> VFloat (-.f)
        | _ -> raise (Stuck "negation of non-number"))
    | Ir.RRef (_, p) -> (
        match resolve_place fr p with
        | `Cell c -> VRefCell c
        | `Elem (vec, i) -> VRefElem (vec, i))
    | Ir.RAggregate (sname, fields) ->
        VStruct (sname, List.map (fun (f, op) -> (f, ref (read_operand fr op))) fields)
  in
  run 0

(** Run a named function of a parsed program. *)
let run_fn ?(fuel = 10_000_000) ?trace ?probe (prog : Ast.program)
    (fname : string) (args : value list) : value =
  let m = make ~fuel ?trace ?probe prog in
  call m fname args

(** Parse, typecheck and run. *)
let run_source ?fuel (src : string) (fname : string) (args : value list) :
    value =
  let prog = Flux_syntax.Parser.parse_program src in
  Flux_syntax.Typeck.check_program prog;
  run_fn ?fuel prog fname args

(* ------------------------------------------------------------------ *)
(* Typed outcomes                                                      *)
(* ------------------------------------------------------------------ *)

type fault =
  | FPanic of string  (** dynamic check failed: bounds, div-by-zero, assert *)
  | FStuck of string  (** type confusion — unreachable after typeck *)

type outcome = OValue of value | OFault of fault | ODiverged

let pp_fault fmt = function
  | FPanic msg -> Format.fprintf fmt "panic: %s" msg
  | FStuck msg -> Format.fprintf fmt "stuck: %s" msg

let pp_outcome fmt = function
  | OValue v -> Format.fprintf fmt "value %a" pp_value v
  | OFault f -> pp_fault fmt f
  | ODiverged -> Format.pp_print_string fmt "diverged (fuel exhausted)"

let run ?fuel ?trace ?probe (prog : Ast.program) (fname : string)
    (args : value list) : outcome =
  match run_fn ?fuel ?trace ?probe prog fname args with
  | v -> OValue v
  | exception Panic msg -> OFault (FPanic msg)
  | exception Stuck msg -> OFault (FStuck msg)
  | exception Out_of_fuel -> ODiverged
