(** Executable MIR semantics with dynamic bounds checks — the
    operational side of the paper's Theorem 3.2 (stuck freedom).

    Values are deep (vectors carry their elements); references are
    first-class ([VRefCell] to a cell, [VRefElem] into a vector).
    Out-of-bounds accesses raise {!Panic}; type confusion (impossible
    for programs that pass the unrefined typechecker) raises {!Stuck};
    the fuel counter bounds divergence with {!Out_of_fuel}. *)

module Ast = Flux_syntax.Ast
module Ir = Flux_mir.Ir

exception Panic of string
exception Stuck of string
exception Out_of_fuel

type vec = { mutable items : value array; mutable len : int }

and value =
  | VInt of int
  | VBool of bool
  | VFloat of float
  | VUnit
  | VVec of vec
  | VStruct of string * (string * value ref) list
  | VRefCell of value ref
  | VRefElem of vec * int

val pp_value : Format.formatter -> value -> unit
val value_eq : value -> value -> bool

(** Vector helpers (bounds-checked). *)

val vec_make : unit -> vec
val vec_of_list : value list -> vec
val vec_get : vec -> int -> value
val vec_set : vec -> int -> value -> unit
val vec_push : vec -> value -> unit
val vec_pop : vec -> value

(** A loaded program with its builtins ([flt]/[flt2] integer-to-float
    conversions) and a fuel budget. *)
type machine

val make :
  ?fuel:int -> ?trace:(string -> unit) ->
  ?probe:(Ir.body -> int -> value ref array -> unit) ->
  Ast.program -> machine
(** [?trace] receives one rendered ["f(arg, ...)"] line per function or
    built-in method call — used to narrate counterexample executions.
    [?probe] fires at every block entry with the executing body, the
    block id and the frame's locals — the γ-containment hook of the
    absint fuzz oracle. *)

val call : machine -> string -> value list -> value
(** Call a function (or built-in RVec method) by name. *)

val run_fn :
  ?fuel:int -> ?trace:(string -> unit) ->
  ?probe:(Ir.body -> int -> value ref array -> unit) ->
  Ast.program -> string -> value list -> value
(** One-shot: build a machine and call [fname]. *)

val run_source : ?fuel:int -> string -> string -> value list -> value
(** Parse, typecheck and run [fname] from a source string. *)

(** {2 Typed outcomes}

    The exception-free entry point used by the soundness oracle, which
    must treat a genuine fault (a failed dynamic check — the event
    refinement checking rules out) differently from running out of
    fuel (the program may simply diverge, which verification does not
    preclude). *)

type fault =
  | FPanic of string  (** dynamic check failed: bounds, div-by-zero, assert *)
  | FStuck of string  (** type confusion — unreachable after typeck *)

type outcome = OValue of value | OFault of fault | ODiverged

val pp_fault : Format.formatter -> fault -> unit
val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?fuel:int -> ?trace:(string -> unit) ->
  ?probe:(Ir.body -> int -> value ref array -> unit) ->
  Ast.program -> string -> value list -> outcome
(** Like {!run_fn}, but classifying the result instead of raising.
    [ODiverged] means the fuel budget was exhausted — {e not} a fault. *)
