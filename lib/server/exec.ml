(** The one execution path behind [flux check], [flux lint], [prusti
    check] and the daemon's [check]/[lint] requests.

    Both the CLI binaries and {!Daemon} call {!run} with the same
    options record; it performs the full frontend → engine → report
    sequence and renders stdout/stderr into buffers. Because daemon
    responses and CLI output come from the *same* rendering code,
    [--daemon] output is byte-identical to in-process output by
    construction — the golden CLI tests double as daemon tests.

    [run] also owns the two cancellation conditions of the daemon
    protocol: a per-request deadline and a client-liveness probe. Both
    are folded into one [cancel] closure polled by the engine pool at
    function boundaries ({!Flux_engine.Pool.run}), so a request is
    abandoned at the next function once its client hung up or its
    deadline passed (a single long function still runs to completion —
    cancellation is task-granular). *)

module Ast = Flux_syntax.Ast
module Parser = Flux_syntax.Parser
module Typeck = Flux_syntax.Typeck
module Profile = Flux_smt.Profile
module Eval = Flux_smt.Eval
module Checker = Flux_check.Checker
module Wp = Flux_wp.Wp
module Engine = Flux_engine.Engine
module Diag = Flux_engine.Diag
module Cache = Flux_engine.Cache
module Pool = Flux_engine.Pool
module Lint = Flux_analysis.Lint
module Passes = Flux_analysis.Passes
module Discharge = Flux_absint.Discharge

type tool = Flux_check | Prusti_check | Flux_lint

let tool_name = function
  | Flux_check | Flux_lint -> "flux"
  | Prusti_check -> "prusti"

type opts = {
  tool : tool;
  quiet : bool;
  times : bool;
  jobs : int;
  cache : bool;
  cache_dir : string;
  certify : bool;
      (** [--certify]: emit/replay proof certificates and attach
          executable counterexample witnesses to failures *)
  absint : bool;
      (** abstract-interpretation pre-solver discharge (on by
          default; [--no-absint] disables) *)
  absint_crosscheck : bool;
      (** [--absint-crosscheck]: re-solve every discharged clause,
          solver verdict winning *)
  dump_mir : bool;  (** [flux check] only *)
  dump_solution : bool;  (** [flux check] only *)
  format_json : bool;  (** [flux check] and [flux lint] *)
  passes : string list;  (** [flux lint] only: [--pass] selections *)
  all_passes : bool;  (** [flux lint] only *)
}

let default_opts tool =
  {
    tool;
    quiet = false;
    times = false;
    jobs = 0;
    cache = true;
    cache_dir = Engine.default_cache_dir;
    certify = false;
    absint = true;
    absint_crosscheck = false;
    dump_mir = false;
    dump_solution = false;
    format_json = false;
    passes = [];
    all_passes = false;
  }

type outcome = { out : string; err : string; code : int }
(** Rendered stdout, rendered stderr, and the process exit code. *)

exception Disconnected
(** The run was cancelled because [check_alive] reported the client
    gone; there is nobody to render a reply for. *)

(* Per-request certificate counter deltas: the profile is domain-local
   and the daemon accumulates across requests, so summarize against a
   snapshot taken before the engine ran. *)
let cert_counts (before : (string * (int * float * bool)) list) :
    int * int * int =
  let get key snap =
    match List.assoc_opt key snap with Some (n, _, _) -> n | None -> 0
  in
  let after = Profile.snapshot () in
  let d key = get key after - get key before in
  (d "cert.emitted", d "cert.replayed", d "cert.failed")

let json_of_witness (w : (string * Eval.value) list) : Json.t =
  Json.Obj
    (List.map
       (fun (x, v) ->
         ( x,
           match v with
           | Eval.VInt n -> Json.Int n
           | Eval.VBool b -> Json.Bool b ))
       w)

let run ?deadline_ms ?(check_alive = fun () -> true) (o : opts)
    ~(file : string) ~(read : unit -> string) : outcome =
  let tool = tool_name o.tool in
  let out_buf = Buffer.create 4096 and err_buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer out_buf in
  let err = Format.formatter_of_buffer err_buf in
  let deadline =
    Option.map
      (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
      deadline_ms
  in
  let deadline_hit () =
    match deadline with Some t -> Unix.gettimeofday () >= t | None -> false
  in
  (* polled concurrently from pool worker domains: both conditions are
     plain syscalls on immutable data, no shared mutable state *)
  let cancel () = deadline_hit () || not (check_alive ()) in
  let finish code =
    Format.pp_print_flush out ();
    Format.pp_print_flush err ();
    { out = Buffer.contents out_buf; err = Buffer.contents err_buf; code }
  in
  (* Satellite fix: a bad --cache-dir used to surface as a raw
     Sys_error (or a silent no-op) from deep inside Cache.store; now
     the directory is created (with parents) and probed up front, and
     failure degrades to uncached verification with one warning. *)
  let cache_dir_if enabled =
    if not enabled then None
    else
      match Cache.ensure_dir o.cache_dir with
      | Ok () -> Some o.cache_dir
      | Error msg ->
          Format.fprintf err "%s: warning: %s; persistent cache disabled@."
            tool msg;
          None
  in
  (* The discharge switches are process globals (read by engine worker
     domains); daemon requests are serialized, so set-for-the-request /
     restore-after keeps concurrent-free semantics identical to a fresh
     CLI process with the same flags. *)
  let saved_absint = !Discharge.enabled
  and saved_xcheck = !Discharge.crosscheck in
  Discharge.enabled := o.absint;
  Discharge.crosscheck := o.absint_crosscheck;
  Fun.protect ~finally:(fun () ->
      Discharge.enabled := saved_absint;
      Discharge.crosscheck := saved_xcheck)
  @@ fun () ->
  try
    match o.tool with
    | Flux_check ->
        let src = read () in
        let prog = Parser.parse_program src in
        Typeck.check_program prog;
        if o.dump_mir then
          List.iter
            (fun (_, body) ->
              Format.fprintf out "%a@." Flux_mir.Ir.pp_body body)
            (Flux_mir.Lower.lower_program prog);
        (* cached hits replay verdicts without re-solving, so they have
           no κ solution to dump: --dump-solution implies a full
           re-check *)
        if o.dump_solution && o.cache then
          Format.fprintf err
            "flux: note: --dump-solution disables the verification cache \
             (cached verdicts carry no solution)@.";
        let cfg =
          {
            Engine.jobs = o.jobs;
            cache_dir = cache_dir_if (o.cache && not o.dump_solution);
          }
        in
        let before = Profile.snapshot () in
        let run =
          Engine.check_program_ast ~cancel ~certify:o.certify cfg prog
        in
        (* executable counterexample replay for failures that carry a
           verified model ([--certify] only) *)
        let demo (e : Checker.error) : Witness.run option =
          match e.Checker.err_witness with
          | Some w when o.certify -> (
              match Ast.find_fn prog e.Checker.err_fn with
              | Some fd -> Some (Witness.demonstrate prog fd w)
              | None -> None)
          | _ -> None
        in
        if o.format_json then begin
          let err_json (e : Checker.error) =
            Json.Obj
              ([
                 ("fn", Json.String e.Checker.err_fn);
                 ( "span",
                   Json.String
                     (Format.asprintf "%a" Ast.pp_span e.Checker.err_span) );
                 ("msg", Json.String e.Checker.err_msg);
               ]
              @ (match e.Checker.err_witness with
                | Some w -> [ ("witness", json_of_witness w) ]
                | None -> [])
              @
              match demo e with
              | Some r -> [ ("counterexample", Witness.to_json r) ]
              | None -> [])
          in
          let fn_json (fo : Engine.fn_outcome) =
            let fr = fo.Engine.fo_report in
            Json.Obj
              [
                ("name", Json.String fr.Checker.fr_name);
                ("ok", Json.Bool (Checker.fn_ok fr));
                ("kvars", Json.Int fr.Checker.fr_kvars);
                ("clauses", Json.Int fr.Checker.fr_clauses);
                ("cached", Json.Bool fo.Engine.fo_cached);
                ( "errors",
                  Json.List (List.map err_json fr.Checker.fr_errors) );
              ]
          in
          let certs =
            if o.certify then
              let e, r, f = cert_counts before in
              [
                ( "certificates",
                  Json.Obj
                    [
                      ("emitted", Json.Int e);
                      ("replayed", Json.Int r);
                      ("failed", Json.Int f);
                    ] );
              ]
            else []
          in
          let j =
            Json.Obj
              ([
                 ("tool", Json.String "flux");
                 ("file", Json.String file);
                 ("ok", Json.Bool (Engine.run_ok run));
                 ( "fns",
                   Json.List (List.map fn_json run.Engine.run_fns) );
               ]
              @ certs)
          in
          Format.fprintf out "%s@." (Json.to_string ~pretty:true j);
          finish
            (if Engine.run_ok run then Diag.exit_ok else Diag.exit_failed)
        end
        else begin
          List.iter
            (fun (fo : Engine.fn_outcome) ->
              let fr = fo.Engine.fo_report in
              Diag.print_row out ~quiet:o.quiet ~times:o.times
                ~name:fr.fr_name ~ok:(Checker.fn_ok fr)
                ~stats:
                  (Printf.sprintf "%d κ, %d clauses" fr.fr_kvars
                     fr.fr_clauses)
                ~time:fr.fr_time ~cached:fo.Engine.fo_cached;
              Diag.print_errors out Checker.pp_error fr.fr_errors;
              if o.certify then
                List.iter
                  (fun e ->
                    match demo e with
                    | Some r -> Witness.print out r
                    | None -> ())
                  fr.fr_errors;
              if o.dump_solution then
                match fr.fr_solution with
                | Some sol ->
                    Format.fprintf out "  inferred solution:@.%a"
                      Flux_fixpoint.Solve.pp_solution sol
                | None -> ())
            run.Engine.run_fns;
          (if o.certify && not o.quiet then
             let e, r, f = cert_counts before in
             Format.fprintf out
               "flux: certificates: %d emitted, %d replayed, %d failed@." e r
               f);
          finish
            (Diag.print_footer out ~quiet:o.quiet ~times:o.times ~tool:"flux"
               ~ok:(Engine.run_ok run)
               ~fns:(List.length run.Engine.run_fns)
               ~hits:run.Engine.run_hits ~time:run.Engine.run_time)
        end
    | Prusti_check ->
        let src = read () in
        let prog = Parser.parse_program src in
        Typeck.check_program prog;
        let cfg = { Engine.jobs = o.jobs; cache_dir = cache_dir_if o.cache } in
        let before = Profile.snapshot () in
        let run =
          Engine.verify_program_ast ~cancel ~certify:o.certify cfg prog
        in
        List.iter
          (fun (wo : Engine.wp_outcome) ->
            let fr = wo.Engine.wo_report in
            Diag.print_row out ~quiet:o.quiet ~times:o.times ~name:fr.fr_name
              ~ok:(Wp.fn_ok fr)
              ~stats:(Printf.sprintf "%d VCs" fr.fr_vcs)
              ~time:fr.fr_time ~cached:wo.Engine.wo_cached;
            Diag.print_errors out Wp.pp_error fr.fr_errors;
            if o.certify then
              List.iter
                (fun (e : Wp.error) ->
                  match e.Wp.err_witness with
                  | Some w -> (
                      match Ast.find_fn prog e.Wp.err_fn with
                      | Some fd ->
                          Witness.print out (Witness.demonstrate prog fd w)
                      | None -> ())
                  | None -> ())
                fr.fr_errors)
          run.Engine.wr_fns;
        (if o.certify && not o.quiet then
           let e, r, f = cert_counts before in
           Format.fprintf out
             "prusti: certificates: %d emitted, %d replayed, %d failed@." e r
             f);
        finish
          (Diag.print_footer out ~quiet:o.quiet ~times:o.times ~tool:"prusti"
             ~ok:(Engine.wp_run_ok run)
             ~fns:(List.length run.Engine.wr_fns)
             ~hits:run.Engine.wr_hits ~time:run.Engine.wr_time)
    | Flux_lint -> (
        let passes =
          if o.all_passes then Passes.all_passes
          else if o.passes <> [] then o.passes
          else Passes.default_passes
        in
        match
          List.find_opt (fun p -> not (List.mem p Passes.all_passes)) passes
        with
        | Some p ->
            Format.fprintf err "flux: unknown lint pass `%s` (available: %s)@."
              p
              (String.concat ", " Passes.all_passes);
            finish Diag.exit_frontend
        | None ->
            let src = read () in
            let cfg =
              { Lint.jobs = o.jobs; cache_dir = cache_dir_if o.cache; passes }
            in
            let run = Lint.lint_source ~cancel cfg src in
            if o.format_json then begin
              Format.pp_print_flush out ();
              Buffer.add_string out_buf (Lint.json_of_run ~file run)
            end
            else Lint.print_text out ~quiet:o.quiet ~times:o.times run;
            finish
              (if Lint.run_clean run then Diag.exit_ok else Diag.exit_failed))
  with
  | Pool.Cancelled ->
      if deadline_hit () then begin
        (match deadline_ms with
        | Some ms ->
            Format.fprintf err "%s: error: deadline of %dms exceeded@." tool ms
        | None -> ());
        finish Diag.exit_deadline
      end
      else raise Disconnected
  | e -> (
      match Diag.render_frontend_error ~tool ~file e with
      | Some msg ->
          Format.pp_print_string err msg;
          finish Diag.exit_frontend
      | None -> raise e)
