(** Aggregate daemon metrics, served by the [metrics] request.

    Two ingredients:

    - request accounting kept here: requests served (check/lint work
      requests only — [status]/[metrics]/[shutdown] are control
      traffic), per-method counts, and a bounded ring of request
      latencies from which p50/p95/p99 are computed by nearest rank
      over the retained window (the most recent {!ring_cap} requests);
    - verifier counters absorbed from {!Flux_smt.Profile}: each session
      resets its domain-local profile per request and feeds the
      snapshot here, so totals like [solver.queries],
      [engine.cache_hits], [cache.mem_hits] and [cache.disk_hits]
      accumulate across every request the daemon ever served. CI's
      zero-SMT-on-warm assertion is a delta of [solver.queries]
      between two [metrics] calls.

    All entry points take the mutex; sessions on different domains
    record concurrently. *)

let ring_cap = 4096

type t = {
  mu : Mutex.t;
  mutable served : int;
  by_method : (string, int) Hashtbl.t;
  ring : float array;  (** last [ring_cap] request latencies, seconds *)
  mutable recorded : int;  (** total latencies ever recorded *)
  counters : (string, int) Hashtbl.t;  (** absorbed profile counts *)
  timers : (string, float) Hashtbl.t;  (** absorbed profile seconds *)
}

let create () : t =
  {
    mu = Mutex.create ();
    served = 0;
    by_method = Hashtbl.create 8;
    ring = Array.make ring_cap 0.;
    recorded = 0;
    counters = Hashtbl.create 32;
    timers = Hashtbl.create 32;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let bump tbl k n =
  Hashtbl.replace tbl k (Option.value (Hashtbl.find_opt tbl k) ~default:0 + n)

(** Record one completed work request: its method name, wall-clock
    latency, and the per-request profile snapshot
    ({!Flux_smt.Profile.snapshot} taken after a per-request reset). *)
let record (t : t) ~(meth : string) ~(latency_s : float)
    ~(profile : (string * (int * float * bool)) list) : unit =
  locked t (fun () ->
      t.served <- t.served + 1;
      bump t.by_method meth 1;
      t.ring.(t.recorded mod ring_cap) <- latency_s;
      t.recorded <- t.recorded + 1;
      List.iter
        (fun (k, (n, time, timed)) ->
          if timed then
            Hashtbl.replace t.timers k
              (Option.value (Hashtbl.find_opt t.timers k) ~default:0. +. time)
          else if n <> 0 then bump t.counters k n)
        profile)

let served (t : t) : int = locked t (fun () -> t.served)

(** Nearest-rank percentile over a sorted window; [p] in [0,100]. *)
let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let sorted_assoc tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json (t : t) : Json.t =
  locked t (fun () ->
      let window = min t.recorded ring_cap in
      let lats = Array.sub t.ring 0 window in
      Array.sort Float.compare lats;
      let ms p = Json.Float (1000. *. percentile lats p) in
      Json.Obj
        [
          ("requests_served", Json.Int t.served);
          ("by_method", Json.Obj (sorted_assoc t.by_method (fun n -> Json.Int n)));
          ( "latency",
            Json.Obj
              [
                ("count", Json.Int t.recorded);
                ("window", Json.Int window);
                ("p50_ms", ms 50.);
                ("p95_ms", ms 95.);
                ("p99_ms", ms 99.);
              ] );
          ("counters", Json.Obj (sorted_assoc t.counters (fun n -> Json.Int n)));
          ( "timers_s",
            Json.Obj (sorted_assoc t.timers (fun s -> Json.Float s)) );
        ])
