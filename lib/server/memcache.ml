(** The daemon's in-memory verdict-cache tier.

    A mutex-protected hashtable over the engine's content-addressed MD5
    keys, installed into {!Flux_engine.Cache.memory_tier} at daemon
    start. The keys are the same as the disk tier's, so the layering is
    trivially sound: memory is probed first, a disk hit is promoted
    into memory, and a fresh verdict is written to both. A warm request
    therefore replays entirely out of this table — zero SMT queries and
    zero disk I/O per function.

    Sessions run on separate domains, so every access takes the mutex;
    entries are small immutable records and the table only grows (no
    eviction — a verdict entry is ~tens of bytes and a daemon serving
    even millions of functions stays modest; restart the daemon to
    drop it). *)

module Cache = Flux_engine.Cache

type t = { mu : Mutex.t; tbl : (string, Cache.entry) Hashtbl.t }

let create () : t = { mu = Mutex.create (); tbl = Hashtbl.create 1024 }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let tier (t : t) : Cache.tier =
  {
    Cache.t_load = (fun k -> locked t (fun () -> Hashtbl.find_opt t.tbl k));
    t_store = (fun k e -> locked t (fun () -> Hashtbl.replace t.tbl k e));
  }

(** Install this table as the process-wide memory tier. Call once,
    before serving requests (the tier ref is written once and then only
    read — see {!Flux_engine.Cache.memory_tier}). *)
let install (t : t) : unit = Cache.set_memory_tier (Some (tier t))

let size (t : t) : int = locked t (fun () -> Hashtbl.length t.tbl)
let clear (t : t) : unit = locked t (fun () -> Hashtbl.reset t.tbl)
