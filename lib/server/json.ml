(** A small JSON library for the daemon protocol, the metrics report
    and the bench tables.

    The toolchain this repo builds against has no JSON package, and the
    protocol needs both directions (the existing ad-hoc emitters in
    {!Flux_analysis.Lint} and {!Flux_smt.Profile} only print), so this
    is a complete value type with a printer and a recursive-descent
    parser. Integers and floats are kept distinct: protocol fields are
    integers and must decode as such, while bench/metrics values are
    seconds and must survive a round trip — floats always print with a
    decimal point or exponent so they re-parse as [Float], and [%.17g]
    guarantees bit-exact round trips for finite values. Non-finite
    floats print as [null] (JSON has no inf/nan; this matches
    JavaScript's [JSON.stringify]), so they do {e not} round-trip —
    the lossy direction is deliberate and the only standard-conforming
    one.

    Unicode: strings are byte sequences passed through verbatim (the
    protocol ships file contents, which are not necessarily UTF-8);
    only the characters JSON requires escaping for are escaped. On
    input, [\uXXXX] escapes decode to UTF-8, including surrogate pairs
    for supplementary-plane characters; lone surrogates are rejected
    (our own encoder only emits [\u] for control characters). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if not (Float.is_finite f) then
    (* JSON has no inf/nan tokens; [%.17g] would print them as bare
       words no parser accepts. [null] is the interoperable rendering
       (what e.g. JavaScript's JSON.stringify emits). *)
    "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    (* force a decimal point so the value re-parses as a float *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) (v : t) : string =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | String s -> escape_to buf s
    | List [] -> Buffer.add_string buf "[]"
    | List vs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then (Buffer.add_char buf '\n'; pad (depth + 1));
            go (depth + 1) v)
          vs;
        if pretty then (Buffer.add_char buf '\n'; pad depth);
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then (Buffer.add_char buf '\n'; pad (depth + 1));
            escape_to buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) v)
          kvs;
        if pretty then (Buffer.add_char buf '\n'; pad depth);
        Buffer.add_char buf '}'
  in
  go 0 v;
  if pretty then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (pos := !pos + String.length word; v)
    else fail ("expected " ^ word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit in \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              let read_hex4 () =
                if !pos + 4 > n then fail "truncated \\u escape";
                let v =
                  (hex_digit s.[!pos] lsl 12)
                  lor (hex_digit s.[!pos + 1] lsl 8)
                  lor (hex_digit s.[!pos + 2] lsl 4)
                  lor hex_digit s.[!pos + 3]
                in
                pos := !pos + 4;
                v
              in
              let cp = read_hex4 () in
              let cp =
                if cp >= 0xd800 && cp <= 0xdbff then
                  (* high surrogate: JSON encodes supplementary-plane
                     characters as a \u pair; the low half must follow
                     immediately *)
                  if !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = read_hex4 () in
                    if lo >= 0xdc00 && lo <= 0xdfff then
                      0x10000 + (((cp - 0xd800) lsl 10) lor (lo - 0xdc00))
                    else fail "high surrogate not followed by low surrogate"
                  end
                  else fail "lone high surrogate"
                else if cp >= 0xdc00 && cp <= 0xdfff then
                  fail "lone low surrogate"
                else cp
              in
              (* UTF-8 encode the code point *)
              if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
              end
              else if cp < 0x10000 then begin
                Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
                Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
                Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
              end
          | _ -> fail "unknown escape");
          go ())
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some '0' .. '9' -> advance (); digits ()
      | _ -> ()
    in
    digits ();
    (match peek () with
    | Some '.' -> is_float := true; advance (); digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "bad number"
    else if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* integer overflow: degrade to float *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let get_string = function String s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List vs -> Some vs | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
