(** Executable counterexample witnesses ([--certify]).

    A failed refinement obligation under [--certify] carries a verified
    falsifying assignment for the symbolic variables of the failing
    implication ([err_witness]). This module lifts that model back to
    entry-point argument values, replays the function in the reference
    interpreter ({!Flux_interp.Interp}) with call tracing on, and
    renders the execution as a step-by-step trace — turning a static
    "refinement may not hold" into a demonstrated runtime fault
    whenever the model concretises at the entry point.

    The lift is best-effort by design: symbolic variables carry the
    rtype fresh-name suffix ([n!3]), inner path conditions may make an
    entry model unreachable, and vector element values are not part of
    the length-indexed model. When the replay does not fault, the
    verdict says so honestly ({!Not_demonstrated}) — a witness is only
    ever {e claimed} when the interpreter actually faulted or the
    produced value violates the declared return refinement. *)

module Ast = Flux_syntax.Ast
module Interp = Flux_interp.Interp
module Eval = Flux_smt.Eval
module Spec_eval = Flux_fuzz.Spec_eval

type run =
  | Fault of { call : string; steps : string list; fault : string }
      (** the replay faulted: the static error is demonstrated *)
  | Post_violation of { call : string; steps : string list; result : string }
      (** the replay returned a value violating the return refinement *)
  | Not_demonstrated of string
      (** the model did not concretise, or the replay did not fault *)

let fuel = 200_000
let max_steps = 32

(* Witness variables carry the rtype fresh suffix ("n!3"); recover the
   source-level prefix for matching against parameter/binder names. *)
let base_name w =
  match String.index_opt w '!' with
  | Some i when i > 0 -> String.sub w 0 i
  | _ -> w

let lookup (witness : (string * Eval.value) list) (name : string) :
    Eval.value option =
  match List.assoc_opt name witness with
  | Some v -> Some v
  | None ->
      List.find_map
        (fun (w, v) ->
          if String.equal (base_name w) name then Some v else None)
        witness

let rec strip_ref_ty = function Ast.TRef (_, t) -> strip_ref_ty t | t -> t

(* The names the model is likely to bind this parameter under: the
   signature index binder (or existential binder) first, then the
   surface parameter name itself. *)
let binder_names (pname : string) (rty : Ast.rty option) : string list =
  let rec of_rty = function
    | Some (Ast.RRef (_, t)) -> of_rty (Some t)
    | Some (Ast.RBase (_, [ Ast.IxBinder n ])) -> [ n ]
    | Some (Ast.RExists (x, _, _)) -> [ x ]
    | _ -> []
  in
  of_rty rty @ [ pname ]

(** Concretise one parameter from the model; [None] when the parameter
    type is outside the executable subset (structs, floats, generics).
    Unconstrained positions default to 0/false/empty — the replay
    itself decides whether the resulting input demonstrates anything. *)
let build_arg (witness : (string * Eval.value) list) (pname : string)
    (rty : Ast.rty option) (ty : Ast.ty) : Interp.value option =
  let find () = List.find_map (lookup witness) (binder_names pname rty) in
  match strip_ref_ty ty with
  | Ast.TInt _ ->
      Some
        (Interp.VInt (match find () with Some (Eval.VInt n) -> n | _ -> 0))
  | Ast.TBool ->
      Some
        (Interp.VBool
           (match find () with Some (Eval.VBool b) -> b | _ -> false))
  | Ast.TUnit -> Some Interp.VUnit
  | Ast.TFloat ->
      (* float positions are never part of the (int/bool) model *)
      Some (Interp.VFloat 0.0)
  | Ast.TVec ((Ast.TInt _ | Ast.TFloat) as elt) ->
      (* the vector's index is its length; elements are unconstrained *)
      let len =
        match find () with
        | Some (Eval.VInt n) when n >= 0 && n <= 64 -> n
        | _ -> 0
      in
      let zero =
        match elt with Ast.TFloat -> Interp.VFloat 0.0 | _ -> Interp.VInt 0
      in
      Some
        (Interp.VRefCell
           (ref (Interp.VVec (Interp.vec_of_list (List.init len (fun _ -> zero))))))
  | _ -> None

let demonstrate (prog : Ast.program) (fd : Ast.fn_def)
    (witness : (string * Eval.value) list) : run =
  match fd.Ast.fn_body with
  | None -> Not_demonstrated "function has no executable body"
  | Some _ -> (
      let sig_args =
        match fd.Ast.fn_sig with
        | Some fs
          when List.length fs.Ast.fs_args = List.length fd.Ast.fn_params ->
            List.map Option.some fs.Ast.fs_args
        | _ -> List.map (fun _ -> None) fd.Ast.fn_params
      in
      let args_opt =
        List.fold_left2
          (fun acc (pname, ty) rty ->
            match acc with
            | None -> None
            | Some xs -> (
                match build_arg witness pname rty ty with
                | Some v -> Some (v :: xs)
                | None -> None))
          (Some []) fd.Ast.fn_params sig_args
      in
      match args_opt with
      | None -> Not_demonstrated "argument types outside the executable subset"
      | Some rev_args -> (
          let args = List.rev rev_args in
          if Spec_eval.precond_holds fd args = Some false then
            Not_demonstrated
              "lifted model does not satisfy the entry precondition"
          else
            (* render through ref cells (Interp.pp_value prints "&_"),
               and before the run — vectors are mutated in place *)
            let rec pp_arg fmt (v : Interp.value) =
              match v with
              | Interp.VRefCell r -> Format.fprintf fmt "&%a" pp_arg !r
              | v -> Interp.pp_value fmt v
            in
            let call =
              Format.asprintf "%s(%s)" fd.Ast.fn_name
                (String.concat ", "
                   (List.map (Format.asprintf "%a" pp_arg) args))
            in
            let steps = ref [] and count = ref 0 in
            let trace s =
              incr count;
              if !count <= max_steps then steps := s :: !steps
            in
            let finish_steps () =
              let st = List.rev !steps in
              if !count > max_steps then
                st @ [ Printf.sprintf "... (%d more calls)" (!count - max_steps) ]
              else st
            in
            match Interp.run ~fuel ~trace prog fd.Ast.fn_name args with
            | Interp.OFault f ->
                Fault
                  {
                    call;
                    steps = finish_steps ();
                    fault = Format.asprintf "%a" Interp.pp_fault f;
                  }
            | Interp.OValue v -> (
                match Spec_eval.postcond_holds fd args v with
                | Some false ->
                    Post_violation
                      {
                        call;
                        steps = finish_steps ();
                        result = Format.asprintf "%a" Interp.pp_value v;
                      }
                | _ ->
                    Not_demonstrated
                      "replay completed without fault on the lifted model")
            | Interp.ODiverged ->
                Not_demonstrated "replay exhausted its fuel budget"))

let to_json (r : run) : Json.t =
  match r with
  | Fault { call; steps; fault } ->
      Json.Obj
        [
          ("kind", Json.String "fault");
          ("call", Json.String call);
          ("steps", Json.List (List.map (fun s -> Json.String s) steps));
          ("fault", Json.String fault);
        ]
  | Post_violation { call; steps; result } ->
      Json.Obj
        [
          ("kind", Json.String "post-violation");
          ("call", Json.String call);
          ("steps", Json.List (List.map (fun s -> Json.String s) steps));
          ("result", Json.String result);
        ]
  | Not_demonstrated reason ->
      Json.Obj
        [
          ("kind", Json.String "not-demonstrated");
          ("reason", Json.String reason);
        ]

(** Render a replay verdict as the indented trace block printed under
    an error row (both CLI and daemon go through this). *)
let print (fmt : Format.formatter) (r : run) : unit =
  let print_trace call steps verdict =
    Format.fprintf fmt "    counterexample execution: %s@." call;
    List.iteri
      (fun i s -> Format.fprintf fmt "      %2d. call %s@." (i + 1) s)
      steps;
    Format.fprintf fmt "      => %s@." verdict
  in
  match r with
  | Fault { call; steps; fault } -> print_trace call steps fault
  | Post_violation { call; steps; result } ->
      print_trace call steps
        ("returned " ^ result ^ ", violating the declared return refinement")
  | Not_demonstrated reason ->
      Format.fprintf fmt "    counterexample: not executable (%s)@." reason
