(** The daemon client behind [--daemon] and the [flux daemon *]
    subcommands.

    Transparency contract: [flux check --daemon F] must be
    indistinguishable from [flux check F] except for latency. Three
    design points enforce it:

    - the client reads [F] itself and ships an overlay (contents +
      display path), so the daemon's working directory and filesystem
      view are irrelevant and diagnostics print the path the user
      typed; relative [--cache-dir] is absolutized against the
      client's cwd for the same reason;
    - the rendered response is the daemon's {!Exec} output — the same
      renderer the in-process path uses;
    - {e any} failure (no daemon and spawn failed, protocol error,
      connection dropped) makes {!run} return [None] and the caller
      falls back to in-process checking, so [--daemon] can never fail a
      build that would have succeeded without it.

    Auto-spawn shells out to [flux daemon start] (stdio on /dev/null so
    a transparent spawn never pollutes the byte-identical streams);
    [prusti --daemon] finds the [flux] binary next to its own. *)

module Diag = Flux_engine.Diag

type spawn = Never | If_needed

let default_socket () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "fluxd-%d.sock" (Unix.getuid ()))

let absolutize p =
  if Filename.is_relative p then Filename.concat (Unix.getcwd ()) p else p

(** One request/response round trip on a fresh connection. *)
let roundtrip ~(socket : string) (req : Protocol.request) :
    (Protocol.response, string) result =
  match Daemon.try_connect socket with
  | None -> Error (Printf.sprintf "cannot connect to %s" socket)
  | Some fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Protocol.write_frame fd (Protocol.encode_request req) with
          | exception Unix.Unix_error (e, _, _) ->
              Error (Unix.error_message e)
          | () -> (
              match Protocol.read_frame fd with
              | Protocol.Frame payload -> Protocol.decode_response payload
              | Protocol.Eof -> Error "connection closed before response"
              | Protocol.Bad msg -> Error ("bad response frame: " ^ msg)
              | exception Unix.Unix_error (e, _, _) ->
                  Error (Unix.error_message e)))

(** Locate the [flux] binary for auto-spawn: ourselves if we are flux,
    else a sibling of the running executable, else [$PATH]. *)
let flux_binary () =
  let self = Sys.executable_name in
  let base = Filename.basename self in
  if String.length base >= 4 && String.sub base 0 4 = "flux" then self
  else
    let dir = Filename.dirname self in
    let candidates =
      [ Filename.concat dir "flux.exe"; Filename.concat dir "flux" ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> "flux"

let spawn_daemon ~(socket : string) : bool =
  match Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 with
  | exception Unix.Unix_error (_, _, _) -> false
  | null -> (
      let cleanup () = try Unix.close null with Unix.Unix_error _ -> () in
      match
        Unix.create_process (flux_binary ())
          [| "flux"; "daemon"; "start"; "--socket"; socket |]
          null null null
      with
      | exception Unix.Unix_error (_, _, _) ->
          cleanup ();
          false
      | pid -> (
          let rec wait () =
            match Unix.waitpid [] pid with
            | _, Unix.WEXITED 0 -> true
            | _, _ -> false
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
            | exception Unix.Unix_error (_, _, _) -> false
          in
          let ok = wait () in
          cleanup ();
          (* [daemon start] returns once the socket answers, but give a
             raced winner a moment too *)
          ok || Daemon.wait_for_socket socket ~timeout_s:2.))

(** Run a check/lint through the daemon. [None] means "do it locally"
    — for whatever reason (unreachable and [spawn = Never] or spawn
    failed, version skew, mid-request drop, unreadable input file). *)
let run ?(spawn = If_needed) ~(socket : string) ?deadline_ms
    (opts : Exec.opts) ~(file : string) : Exec.outcome option =
  match Diag.read_file file with
  | exception Sys_error _ -> None (* local path reports the error *)
  | source ->
      let socket = absolutize socket in
      let opts =
        { opts with Exec.cache_dir = absolutize opts.Exec.cache_dir }
      in
      let req =
        Protocol.Check { opts; file; source = Some source; deadline_ms }
      in
      let resp =
        match roundtrip ~socket req with
        | Ok r -> Some r
        | Error _ when spawn = If_needed ->
            if spawn_daemon ~socket then
              match roundtrip ~socket req with Ok r -> Some r | Error _ -> None
            else None
        | Error _ -> None
      in
      (match resp with
      | Some (Protocol.Result { code; out; err }) ->
          Some { Exec.out; err; code }
      | Some (Protocol.Info _) | Some (Protocol.Error _) | None -> None)
