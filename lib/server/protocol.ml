(** The daemon wire protocol: length-prefixed JSON frames with a
    versioned codec.

    Framing: every message is a 4-byte big-endian byte length followed
    by that many bytes of JSON. Frames above {!max_frame} are rejected
    before allocation (a malicious or corrupt length cannot OOM the
    daemon), and a short read anywhere is reported as a distinct
    [`Bad] outcome rather than confused with a clean [`Eof].

    Versioning: every message carries a top-level ["version"] field.
    {!decode_request} rejects any version other than {!version} with a
    message the daemon returns verbatim as an error response, so an old
    client talking to a new daemon (or vice versa) gets a diagnosis,
    not a parse failure — and the CLI client falls back to in-process
    checking on any error response, so mixed-version installs degrade
    to exactly the non-daemon behavior.

    The payload codecs are total inverses ([decode (encode x) = Ok x]),
    property-tested in [test/test_server.ml]. *)

let version = 1
let max_frame = 64 * 1024 * 1024

type request =
  | Check of {
      opts : Exec.opts;
      file : string;  (** display path, used verbatim in diagnostics *)
      source : string option;
          (** overlay contents; [None] = daemon reads [file] itself *)
      deadline_ms : int option;
    }
  | Status
  | Metrics
  | Shutdown

type response =
  | Result of { code : int; out : string; err : string }
      (** a completed check/lint: exit code plus rendered streams *)
  | Info of Json.t  (** status/metrics payload *)
  | Error of string
      (** protocol-level failure; the client should fall back *)

(* ------------------------------------------------------------------ *)
(* Codecs                                                              *)
(* ------------------------------------------------------------------ *)

let string_of_tool = function
  | Exec.Flux_check -> "check"
  | Exec.Prusti_check -> "prusti-check"
  | Exec.Flux_lint -> "lint"

let tool_of_string = function
  | "check" -> Some Exec.Flux_check
  | "prusti-check" -> Some Exec.Prusti_check
  | "lint" -> Some Exec.Flux_lint
  | _ -> None

let json_of_opts (o : Exec.opts) : Json.t =
  Json.Obj
    [
      ("tool", Json.String (string_of_tool o.Exec.tool));
      ("quiet", Json.Bool o.Exec.quiet);
      ("times", Json.Bool o.Exec.times);
      ("jobs", Json.Int o.Exec.jobs);
      ("cache", Json.Bool o.Exec.cache);
      ("cache_dir", Json.String o.Exec.cache_dir);
      ("certify", Json.Bool o.Exec.certify);
      ("absint", Json.Bool o.Exec.absint);
      ("absint_crosscheck", Json.Bool o.Exec.absint_crosscheck);
      ("dump_mir", Json.Bool o.Exec.dump_mir);
      ("dump_solution", Json.Bool o.Exec.dump_solution);
      ("format_json", Json.Bool o.Exec.format_json);
      ("passes", Json.List (List.map (fun p -> Json.String p) o.Exec.passes));
      ("all_passes", Json.Bool o.Exec.all_passes);
    ]

(* Decoding helpers: [let*] threads the first failure out. *)
let ( let* ) r f = Result.bind r f

let field j k get what =
  match Option.bind (Json.member k j) get with
  | Some v -> Ok v
  | None -> Result.Error (Printf.sprintf "missing or ill-typed field %S" what)

let opts_of_json (j : Json.t) : (Exec.opts, string) result =
  let* tool_s = field j "tool" Json.get_string "opts.tool" in
  let* tool =
    match tool_of_string tool_s with
    | Some t -> Ok t
    | None -> Result.Error (Printf.sprintf "unknown tool %S" tool_s)
  in
  let* quiet = field j "quiet" Json.get_bool "opts.quiet" in
  let* times = field j "times" Json.get_bool "opts.times" in
  let* jobs = field j "jobs" Json.get_int "opts.jobs" in
  let* cache = field j "cache" Json.get_bool "opts.cache" in
  let* cache_dir = field j "cache_dir" Json.get_string "opts.cache_dir" in
  let* certify = field j "certify" Json.get_bool "opts.certify" in
  let* absint = field j "absint" Json.get_bool "opts.absint" in
  let* absint_crosscheck =
    field j "absint_crosscheck" Json.get_bool "opts.absint_crosscheck"
  in
  let* dump_mir = field j "dump_mir" Json.get_bool "opts.dump_mir" in
  let* dump_solution =
    field j "dump_solution" Json.get_bool "opts.dump_solution"
  in
  let* format_json = field j "format_json" Json.get_bool "opts.format_json" in
  let* passes_j = field j "passes" Json.get_list "opts.passes" in
  let* passes =
    List.fold_right
      (fun p acc ->
        let* acc = acc in
        match Json.get_string p with
        | Some s -> Ok (s :: acc)
        | None -> Result.Error "ill-typed entry in opts.passes")
      passes_j (Ok [])
  in
  let* all_passes = field j "all_passes" Json.get_bool "opts.all_passes" in
  Ok
    {
      Exec.tool;
      quiet;
      times;
      jobs;
      cache;
      cache_dir;
      certify;
      absint;
      absint_crosscheck;
      dump_mir;
      dump_solution;
      format_json;
      passes;
      all_passes;
    }

let encode_request (r : request) : string =
  let fields =
    match r with
    | Check { opts; file; source; deadline_ms } ->
        [
          ("method", Json.String "check");
          ("opts", json_of_opts opts);
          ("file", Json.String file);
        ]
        @ (match source with
          | Some s -> [ ("source", Json.String s) ]
          | None -> [])
        @
        (match deadline_ms with
        | Some ms -> [ ("deadline_ms", Json.Int ms) ]
        | None -> [])
    | Status -> [ ("method", Json.String "status") ]
    | Metrics -> [ ("method", Json.String "metrics") ]
    | Shutdown -> [ ("method", Json.String "shutdown") ]
  in
  Json.to_string (Json.Obj (("version", Json.Int version) :: fields))

let check_version (j : Json.t) : (unit, string) result =
  match Option.bind (Json.member "version" j) Json.get_int with
  | Some v when v = version -> Ok ()
  | Some v ->
      Result.Error
        (Printf.sprintf "unsupported protocol version %d (expected %d)" v
           version)
  | None -> Result.Error "missing protocol version"

let decode_request (s : string) : (request, string) result =
  let* j = Json.parse s in
  let* () = check_version j in
  let* meth = field j "method" Json.get_string "method" in
  match meth with
  | "status" -> Ok Status
  | "metrics" -> Ok Metrics
  | "shutdown" -> Ok Shutdown
  | "check" ->
      let* opts_j =
        match Json.member "opts" j with
        | Some o -> Ok o
        | None -> Result.Error "missing field \"opts\""
      in
      let* opts = opts_of_json opts_j in
      let* file = field j "file" Json.get_string "file" in
      let source = Option.bind (Json.member "source" j) Json.get_string in
      let deadline_ms =
        Option.bind (Json.member "deadline_ms" j) Json.get_int
      in
      Ok (Check { opts; file; source; deadline_ms })
  | m -> Result.Error (Printf.sprintf "unknown method %S" m)

let encode_response (r : response) : string =
  let fields =
    match r with
    | Result { code; out; err } ->
        [
          ("status", Json.String "result");
          ("code", Json.Int code);
          ("out", Json.String out);
          ("err", Json.String err);
        ]
    | Info j -> [ ("status", Json.String "info"); ("info", j) ]
    | Error msg ->
        [ ("status", Json.String "error"); ("message", Json.String msg) ]
  in
  Json.to_string (Json.Obj (("version", Json.Int version) :: fields))

let decode_response (s : string) : (response, string) result =
  let* j = Json.parse s in
  let* () = check_version j in
  let* status = field j "status" Json.get_string "status" in
  match status with
  | "result" ->
      let* code = field j "code" Json.get_int "code" in
      let* out = field j "out" Json.get_string "out" in
      let* err = field j "err" Json.get_string "err" in
      Ok (Result { code; out; err })
  | "info" -> (
      match Json.member "info" j with
      | Some i -> Ok (Info i)
      | None -> Result.Error "missing field \"info\"")
  | "error" ->
      let* msg = field j "message" Json.get_string "message" in
      Ok (Error msg)
  | s -> Result.Error (Printf.sprintf "unknown status %S" s)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let rec write_all fd bytes off len =
  if len > 0 then begin
    let n =
      try Unix.write fd bytes off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd bytes (off + n) (len - n)
  end

let write_frame (fd : Unix.file_descr) (payload : string) : unit =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Protocol.write_frame: oversized frame";
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  write_all fd hdr 0 4;
  write_all fd (Bytes.of_string payload) 0 n

type read_outcome =
  | Eof  (** clean close before any header byte *)
  | Frame of string
  | Bad of string  (** truncated or oversized frame: unrecoverable *)

(* Read exactly [len] bytes; [`Eof] only if the very first read at
   offset 0 hits end-of-stream. *)
let read_exact fd len : [ `Ok of bytes | `Eof | `Short ] =
  let buf = Bytes.create len in
  let rec go off =
    if off >= len then `Ok buf
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then `Eof else `Short
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_frame (fd : Unix.file_descr) : read_outcome =
  match read_exact fd 4 with
  | `Eof -> Eof
  | `Short -> Bad "truncated frame header"
  | `Ok hdr ->
      let len =
        (Bytes.get_uint8 hdr 0 lsl 24)
        lor (Bytes.get_uint8 hdr 1 lsl 16)
        lor (Bytes.get_uint8 hdr 2 lsl 8)
        lor Bytes.get_uint8 hdr 3
      in
      if len > max_frame then
        Bad (Printf.sprintf "oversized frame (%d bytes > %d max)" len max_frame)
      else if len = 0 then Frame ""
      else begin
        match read_exact fd len with
        | `Ok b -> Frame (Bytes.unsafe_to_string b)
        | `Eof | `Short -> Bad "truncated frame body"
      end
