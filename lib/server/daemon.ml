(** [fluxd]: the persistent verification daemon.

    One process listens on a Unix-domain socket; each accepted
    connection becomes a session on its own domain, handling a stream
    of framed requests ({!Protocol}). Work requests run through
    {!Exec.run} with the shared in-memory verdict tier ({!Memcache})
    installed, so a warm re-check of unchanged code replays entirely
    from memory — zero SMT queries, zero disk probes.

    Lifecycle invariants:

    - {e startup} claims the socket: a connectable socket means a live
      daemon (refuse to start); an unconnectable leftover path (crashed
      daemon, stray file) is stale and is removed along with its
      pidfile before binding;
    - a {e pidfile} ([SOCKET.pid]) is written after bind so [kill
      $(cat …)] and the tests can address the process;
    - {e drain}: SIGTERM/SIGINT (or a [shutdown] request) set one
      atomic flag; the accept loop stops taking connections, idle
      sessions close, in-flight requests run to completion and their
      responses are delivered, new requests on live sessions are
      rejected. The socket and pidfile are removed on the way out, so
      the next start needs no stale-cleanup. Every blocking wait
      ([select] on the listener and on each session) wakes at least
      every 0.5 s to observe the flag, which also makes delivery
      independent of which domain the signal lands on. *)

module Profile = Flux_smt.Profile
module Diag = Flux_engine.Diag

type config = { socket : string }

let pidfile_of socket = socket ^ ".pid"

let try_connect (socket : string) : Unix.file_descr option =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Some fd
  | exception Unix.Unix_error (_, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None

let remove_quiet p = try Sys.remove p with Sys_error _ -> ()

(** Refuse if a daemon answers on [socket]; otherwise clear any stale
    socket/pidfile so bind can succeed. *)
let claim_socket (socket : string) : (unit, string) result =
  if not (Sys.file_exists socket) then Ok ()
  else
    match try_connect socket with
    | Some fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "fluxd: already running (socket %s)" socket)
    | None ->
        remove_quiet socket;
        remove_quiet (pidfile_of socket);
        Ok ()

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type state = {
  cfg : config;
  mem : Memcache.t;
  metrics : Metrics.t;
  draining : bool Atomic.t;
  started : float;
}

(** Is the peer of [fd] still connected? While a response is owed the
    client sends nothing, so a readable fd that yields 0 bytes on a
    peek is a hangup. Called concurrently from pool worker domains —
    both calls are stateless syscalls. *)
let client_alive (fd : Unix.file_descr) : bool =
  match Unix.select [ fd ] [] [] 0. with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
  | [], _, _ -> true
  | _ :: _, _, _ -> (
      match Unix.recv fd (Bytes.create 1) 0 1 [ Unix.MSG_PEEK ] with
      | 0 -> false
      | _ -> true
      | exception Unix.Unix_error (_, _, _) -> false)

let send_response fd (resp : Protocol.response) : unit =
  Protocol.write_frame fd (Protocol.encode_response resp)

let status_info (st : state) : Json.t =
  Json.Obj
    [
      ("pid", Json.Int (Unix.getpid ()));
      ("socket", Json.String st.cfg.socket);
      ("uptime_s", Json.Float (Unix.gettimeofday () -. st.started));
      ("draining", Json.Bool (Atomic.get st.draining));
      ("requests_served", Json.Int (Metrics.served st.metrics));
      ("memcache_entries", Json.Int (Memcache.size st.mem));
    ]

let metrics_info (st : state) : Json.t =
  match Metrics.to_json st.metrics with
  | Json.Obj fields ->
      Json.Obj
        (fields
        @ [
            ("pid", Json.Int (Unix.getpid ()));
            ("uptime_s", Json.Float (Unix.gettimeofday () -. st.started));
            ("memcache_entries", Json.Int (Memcache.size st.mem));
          ])
  | j -> j

(** Run one check/lint request. The session's domain-local profile is
    reset first, so the snapshot absorbed into {!Metrics} afterwards is
    exactly this request's counters. Raises {!Exec.Disconnected} if the
    client went away mid-run. *)
let handle_check (st : state) fd ~opts ~file ~source ~deadline_ms : unit =
  let t0 = Unix.gettimeofday () in
  Profile.reset ();
  let read =
    match source with
    | Some src -> fun () -> src
    | None -> fun () -> Diag.read_file file
  in
  let outcome =
    Exec.run ?deadline_ms
      ~check_alive:(fun () -> client_alive fd)
      opts ~file ~read
  in
  Metrics.record st.metrics
    ~meth:(Protocol.string_of_tool opts.Exec.tool)
    ~latency_s:(Unix.gettimeofday () -. t0)
    ~profile:(Profile.snapshot ());
  send_response fd
    (Protocol.Result
       { code = outcome.Exec.code; out = outcome.Exec.out; err = outcome.Exec.err })

(** Serve one connection until the client closes, shutdown, or drain.
    Any exception is confined to this session. *)
let handle_conn (st : state) (fd : Unix.file_descr) : unit =
  let reject () =
    send_response fd (Protocol.Error "fluxd: draining, request rejected")
  in
  let rec loop () =
    match Unix.select [ fd ] [] [] 0.5 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | [], _, _ -> if Atomic.get st.draining then () else loop ()
    | _ :: _, _, _ -> (
        match Protocol.read_frame fd with
        | Protocol.Eof -> ()
        | Protocol.Bad msg ->
            (* framing is lost; answer once and hang up *)
            send_response fd (Protocol.Error ("fluxd: bad frame: " ^ msg))
        | Protocol.Frame payload ->
            if Atomic.get st.draining then reject ()
            else (
              (match Protocol.decode_request payload with
              | Error msg -> send_response fd (Protocol.Error msg)
              | Ok (Protocol.Check { opts; file; source; deadline_ms }) -> (
                  match handle_check st fd ~opts ~file ~source ~deadline_ms with
                  | () -> ()
                  | exception Exec.Disconnected -> raise Exec.Disconnected
                  | exception e ->
                      send_response fd
                        (Protocol.Error
                           ("fluxd: internal error: " ^ Printexc.to_string e)))
              | Ok Protocol.Status ->
                  send_response fd (Protocol.Info (status_info st))
              | Ok Protocol.Metrics ->
                  send_response fd (Protocol.Info (metrics_info st))
              | Ok Protocol.Shutdown ->
                  send_response fd
                    (Protocol.Info (Json.Obj [ ("stopping", Json.Bool true) ]));
                  Atomic.set st.draining true);
              loop ()))
  in
  try loop () with
  | Exec.Disconnected -> ()
  | Unix.Unix_error (_, _, _) -> () (* e.g. EPIPE on reply to a dead client *)

(* ------------------------------------------------------------------ *)
(* The accept loop                                                     *)
(* ------------------------------------------------------------------ *)

(** [serve cfg]: claim the socket and serve until drained. Returns only
    after in-flight sessions finished and the socket/pidfile are
    removed. The caller's stdout/stderr are untouched (daemonized runs
    point them at /dev/null). *)
let serve (cfg : config) : (unit, string) result =
  match claim_socket cfg.socket with
  | Error _ as e -> e
  | Ok () -> (
      let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.bind lfd (Unix.ADDR_UNIX cfg.socket) with
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close lfd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "fluxd: cannot bind socket %s (%s)" cfg.socket
               (Unix.error_message e))
      | () ->
          Unix.listen lfd 64;
          let pidfile = pidfile_of cfg.socket in
          let oc = open_out pidfile in
          output_string oc (string_of_int (Unix.getpid ()));
          close_out oc;
          let st =
            {
              cfg;
              mem = Memcache.create ();
              metrics = Metrics.create ();
              draining = Atomic.make false;
              started = Unix.gettimeofday ();
            }
          in
          Memcache.install st.mem;
          let drain _ = Atomic.set st.draining true in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
          Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
          Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
          (* finished sessions are joined opportunistically; [done_]
             flags let us join without blocking on live ones *)
          let sessions : (unit Domain.t * bool Atomic.t) list ref = ref [] in
          let reap ~blocking =
            sessions :=
              List.filter
                (fun (d, done_) ->
                  if blocking || Atomic.get done_ then (Domain.join d; false)
                  else true)
                !sessions
          in
          let rec accept_loop () =
            if Atomic.get st.draining then ()
            else
              match Unix.select [ lfd ] [] [] 0.5 with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
              | [], _, _ ->
                  reap ~blocking:false;
                  accept_loop ()
              | _ :: _, _, _ -> (
                  match Unix.accept lfd with
                  | exception Unix.Unix_error (_, _, _) -> accept_loop ()
                  | cfd, _ ->
                      reap ~blocking:false;
                      (* hard backstop well under the runtime's domain
                         limit: park on the oldest session if a client
                         storm outruns reaping *)
                      (match !sessions with
                      | (d, _) :: rest when List.length !sessions >= 64 ->
                          Domain.join d;
                          sessions := rest
                      | _ -> ());
                      let done_ = Atomic.make false in
                      let d =
                        Domain.spawn (fun () ->
                            Fun.protect
                              ~finally:(fun () ->
                                (try Unix.close cfd
                                 with Unix.Unix_error _ -> ());
                                Atomic.set done_ true)
                              (fun () ->
                                try handle_conn st cfd with _ -> ()))
                      in
                      sessions := !sessions @ [ (d, done_) ];
                      accept_loop ())
          in
          accept_loop ();
          (try Unix.close lfd with Unix.Unix_error _ -> ());
          reap ~blocking:true;
          remove_quiet cfg.socket;
          remove_quiet pidfile;
          Ok ())

(* ------------------------------------------------------------------ *)
(* Daemonization                                                       *)
(* ------------------------------------------------------------------ *)

type started =
  | Started of int  (** fresh daemon, its pid *)
  | Already_running

let wait_for_socket (socket : string) ~(timeout_s : float) : bool =
  let t0 = Unix.gettimeofday () in
  let rec poll () =
    match try_connect socket with
    | Some fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        true
    | None ->
        if Unix.gettimeofday () -. t0 > timeout_s then false
        else begin
          ignore (Unix.select [] [] [] 0.05);
          poll ()
        end
  in
  poll ()

let read_pid (socket : string) : int option =
  match Diag.read_file (pidfile_of socket) with
  | s -> int_of_string_opt (String.trim s)
  | exception Sys_error _ -> None

(** Start a background daemon on [socket] and return once it accepts
    connections. Double-forks (the daemon is reparented to init, no
    zombie for the caller to reap) with stdio on /dev/null. Must be
    called from a single-domain process — fork and domains don't mix. *)
let daemonize (cfg : config) : (started, string) result =
  match try_connect cfg.socket with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Ok Already_running
  | None -> (
      (match claim_socket cfg.socket with
      | Ok () -> ()
      | Error _ -> () (* raced with another starter; resolved below *));
      let mid = Unix.fork () in
      if mid = 0 then begin
        (* middle child: new session, then fork the real daemon *)
        ignore (Unix.setsid ());
        let pid2 = Unix.fork () in
        if pid2 > 0 then Unix._exit 0
        else begin
          (try
             let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
             Unix.dup2 null Unix.stdin;
             Unix.dup2 null Unix.stdout;
             Unix.dup2 null Unix.stderr;
             Unix.close null
           with Unix.Unix_error _ -> ());
          match serve cfg with
          | Ok () -> Unix._exit 0
          | Error _ -> Unix._exit 1
        end
      end
      else begin
        ignore (Unix.waitpid [] mid);
        if wait_for_socket cfg.socket ~timeout_s:10. then
          match read_pid cfg.socket with
          | Some pid -> Ok (Started pid)
          | None -> Ok Already_running (* lost a start race; daemon is up *)
        else
          Error
            (Printf.sprintf "fluxd: failed to start (socket %s not answering)"
               cfg.socket)
      end)
