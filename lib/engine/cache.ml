(** The persistent incremental verification cache.

    Content-addressed: a function's cache key is the MD5 of everything
    its (modular) verification depends on — its lowered MIR body, its
    own resolved refinement signature, the signatures of every function
    it calls, the struct environment, the qualifier set, the relevant
    configuration flags, and a checker-version salt. Two consequences:

    - a hit is sound to reuse: by modularity (PAPER.md §6) the check of
      a function reads nothing outside the key material;
    - edits invalidate exactly the affected keys: changing one callee's
      [lr::sig] changes the keys of that callee and its callers, and
      nothing else (fingerprints are span-insensitive, so shifting line
      numbers invalidates nothing, and signature binder names restart
      at zero per declaration — see [Specconv.resolve_sig] — so they
      do not leak positional state between declarations).

    Only error-free verdicts are stored: error reports carry source
    spans, which the key deliberately ignores, so replaying them after
    an edit elsewhere in the file could point at stale locations.
    Failing functions are simply re-checked — re-reporting errors is
    the cheap case compared to re-proving successes.

    Entries are plain scalar records serialized with [Marshal] (no
    closures or custom blocks, so they are stable across executables
    built by the same compiler) and written atomically (temp file +
    rename), making concurrent writers from parallel runs or separate
    processes safe. A corrupt or unreadable entry degrades to a miss. *)

module Ast = Flux_syntax.Ast
module Ir = Flux_mir.Ir
open Flux_smt
open Flux_rtype
open Flux_fixpoint

(** Bump on any change to constraint generation, solving, or the
    fingerprint scheme: stale entries from older checkers must miss. *)
let version = "flux-engine-v2"

type entry = {
  e_kvars : int;  (** κ variables of the original check (0 for WP) *)
  e_clauses : int;  (** Horn clauses (Flux) or VCs discharged (WP) *)
  e_time : float;  (** wall-clock seconds of the original check *)
}

type slice_entry = { se_sols : (string * Term.t list) list }
(** The solved conjuncts of one SCC slice's own κs (see
    {!Flux_fixpoint.Solve.slice_fingerprint}). Stored only for slices
    whose concrete heads all passed, for the same reason whole-function
    entries only store error-free verdicts. Terms are closed qualifier
    instantiations over the κ formals — plain constructor trees, safe
    to [Marshal]. *)

(* ------------------------------------------------------------------ *)
(* The in-memory tier                                                  *)
(* ------------------------------------------------------------------ *)

type tier = {
  t_load : string -> entry option;
  t_store : string -> entry -> unit;
}
(** A second cache tier consulted before the disk store. Keys are the
    same content-addressed MD5s, so an entry is valid independently of
    which directory it was first written under. The daemon installs a
    mutex-protected hashtable here ({!Flux_server.Memcache}) so warm
    requests skip even the disk probe; CLI processes leave it unset.

    The tier is installed once at process/daemon start, before any
    requests run, and is then only read — so plain [ref] access is safe
    across the request and worker domains (the tier's own callbacks
    must be domain-safe). *)

let memory_tier : tier option ref = ref None
let set_memory_tier t = memory_tier := t

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let hex s = Digest.to_hex (Digest.string s)

(** The printers used below render no source spans, so fingerprints are
    stable under edits that only move code around. *)
let body_fingerprint (b : Ir.body) : string =
  hex (Format.asprintf "%a" Ir.pp_body b)

let pp_sorted_binders fmt bs =
  List.iter (fun (x, s) -> Format.fprintf fmt "%s:%a;" x Sort.pp s) bs

let fsig_fingerprint (s : Specconv.fsig) : string =
  hex
    (Format.asprintf "%s|params:%a|args:%a|req:%a|ret:%a|ens:%a"
       s.Specconv.fsg_name pp_sorted_binders s.Specconv.fsg_params
       (Format.pp_print_list Rty.pp)
       s.Specconv.fsg_args
       (Format.pp_print_list Term.pp)
       s.Specconv.fsg_requires Rty.pp s.Specconv.fsg_ret
       (Format.pp_print_list (fun fmt (i, t) ->
            Format.fprintf fmt "%d->%a" i Rty.pp t))
       s.Specconv.fsg_ensures)

let struct_env_fingerprint (senv : Rty.struct_env) : string =
  let infos =
    Hashtbl.fold (fun _ si acc -> si :: acc) senv []
    |> List.sort (fun a b -> String.compare a.Rty.si_name b.Rty.si_name)
  in
  hex
    (Format.asprintf "%a"
       (Format.pp_print_list (fun fmt si ->
            Format.fprintf fmt "%s|%a|%a|inv:%a;" si.Rty.si_name
              pp_sorted_binders si.Rty.si_params
              (Format.pp_print_list (fun fmt (f, t) ->
                   Format.fprintf fmt "%s:%a," f Rty.pp t))
              si.Rty.si_fields
              (Format.pp_print_option Term.pp)
              si.Rty.si_invariant))
       infos)

let qualifiers_fingerprint (qs : Qualifier.t list) : string =
  hex
    (Format.asprintf "%a|limit:%d"
       (Format.pp_print_list Qualifier.pp)
       qs
       !Qualifier.multi_wildcard_scope_limit)

(** A function's Prusti-side interface: plain types plus contract. *)
let contract_fingerprint (fd : Ast.fn_def) : string =
  hex
    (Format.asprintf "%s|%a|ret:%a|req:%a|ens:%a|trusted:%b" fd.Ast.fn_name
       (Format.pp_print_list (fun fmt (x, t) ->
            Format.fprintf fmt "%s:%a;" x Ast.pp_ty t))
       fd.Ast.fn_params Ast.pp_ty fd.Ast.fn_ret
       (Format.pp_print_list Ast.pp_expr)
       fd.Ast.fn_contract.Ast.c_requires
       (Format.pp_print_list Ast.pp_expr)
       fd.Ast.fn_contract.Ast.c_ensures fd.Ast.fn_trusted)

(** Direct callees of a body, sorted and deduplicated — modular
    checking consults exactly their signatures, no deeper. *)
let callees (b : Ir.body) : string list =
  Array.fold_left
    (fun acc blk ->
      match blk.Ir.term with
      | Ir.TCall { tc_func; _ } -> tc_func :: acc
      | _ -> acc)
    [] b.Ir.mb_blocks
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

let callee_material ~fingerprint ~lookup names =
  List.map
    (fun f ->
      match lookup f with
      | Some x -> f ^ "=" ^ fingerprint x
      (* no user signature: semantics are built in (e.g. [RVec::*]),
         covered by the version salt *)
      | None -> f ^ "=builtin")
    names

(** Cache key for one Flux per-function check. [config] captures the
    flag state the check runs under (underflow checking, slicing);
    [lookup] resolves callee names the way the checker will. *)
let flux_key ~(config : string) ~(senv_fp : string) ~(quals_fp : string)
    ~(lookup : string -> Specconv.fsig option) (fd : Ast.fn_def)
    (body : Ir.body) : string =
  let own =
    match lookup fd.Ast.fn_name with
    | Some s -> fsig_fingerprint s
    | None -> "default"
  in
  hex
    (String.concat "\n"
       ([ version; "flux"; config; senv_fp; quals_fp; own;
          body_fingerprint body ]
       @ callee_material ~fingerprint:fsig_fingerprint ~lookup
           (callees body)))

(** Cache key for one WP (Prusti-baseline) per-function check. *)
let wp_key ~(config : string) ~(lookup : string -> Ast.fn_def option)
    (fd : Ast.fn_def) (body : Ir.body) : string =
  hex
    (String.concat "\n"
       ([ version; "wp"; config; contract_fingerprint fd;
          body_fingerprint body ]
       @ callee_material ~fingerprint:contract_fingerprint ~lookup
           (callees body)))

(** Cache key for one SCC slice of a function's fixpoint computation.
    [fp] is {!Flux_fixpoint.Solve.slice_fingerprint} — κ declarations,
    clauses, and the final solutions of external κs — so a spec edit
    re-keys only the slices downstream of the κs it actually changed;
    everything a slice's solve reads is covered by [fp], the qualifier
    set, and the flag state. *)
let slice_key ~(config : string) ~(quals_fp : string) (fp : string) : string =
  hex (String.concat "\n" [ version; "slice"; config; quals_fp; fp ])

(* ------------------------------------------------------------------ *)
(* The on-disk store                                                   *)
(* ------------------------------------------------------------------ *)

let path dir key = Filename.concat dir (key ^ ".entry")

(** [mkdir_p dir]: create [dir] and any missing parents. Re-raises the
    first {!Unix.Unix_error} other than [EEXIST] (surfaced by
    {!ensure_dir} as a readable diagnostic). *)
let rec mkdir_p (dir : string) : unit =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(** [ensure_dir dir]: create the cache directory (with parents) and
    probe that it is writable, returning a human-readable reason on
    failure. The CLI and daemon call this once per run and degrade to
    uncached verification with a clear warning instead of the silent
    no-op (or raw [Sys_error]) a bad [--cache-dir] used to produce —
    e.g. a daemon started under a read-only home. *)
let ensure_dir (dir : string) : (unit, string) result =
  match mkdir_p dir with
  | exception Unix.Unix_error (e, _, at) ->
      Error
        (Printf.sprintf "cannot create cache directory `%s' (%s: %s)" dir at
           (Unix.error_message e))
  | () ->
      if not (try Sys.is_directory dir with Sys_error _ -> false) then
        Error
          (Printf.sprintf
             "cache directory `%s' is not a directory" dir)
      else begin
        let probe =
          Filename.concat dir (Printf.sprintf ".probe.%d" (Unix.getpid ()))
        in
        match open_out_bin probe with
        | exception Sys_error msg ->
            Error
              (Printf.sprintf "cache directory `%s' is not writable (%s)" dir
                 msg)
        | oc ->
            close_out_noerr oc;
            (try Sys.remove probe with Sys_error _ -> ());
            Ok ()
      end

(** Read one marshalled value; any failure (missing file, short read,
    wrong type tag from an old executable) degrades to a miss. *)
let read_marshalled : 'a. string -> 'a option =
 fun file ->
  match open_in_bin file with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match Marshal.from_channel ic with
          | e -> Some e
          | exception _ -> None)

(** Write one marshalled value atomically (temp file + rename), never
    raising: a full disk or permission flip degrades to not caching. *)
let write_marshalled : 'a. string -> 'a -> unit =
 fun file v ->
  let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
  match open_out_bin tmp with
  | exception Sys_error _ -> ()
  | oc ->
      let written =
        match Marshal.to_channel oc v [] with
        | () ->
            close_out_noerr oc;
            true
        | exception _ ->
            close_out_noerr oc;
            false
      in
      if written then ( try Sys.rename tmp file with Sys_error _ -> ())
      else ( try Sys.remove tmp with Sys_error _ -> ())

let disk_load ~(dir : string) (key : string) : entry option =
  (read_marshalled (path dir key) : entry option)

(** Tiered lookup: memory first (when installed), then disk; a disk hit
    is promoted into the memory tier. Per-tier hits are counted in the
    profile ([cache.mem_hits] / [cache.disk_hits]) for the daemon's
    metrics. *)
let load ~(dir : string) (key : string) : entry option =
  match !memory_tier with
  | None -> (
      match disk_load ~dir key with
      | Some e ->
          Profile.incr "cache.disk_hits";
          Some e
      | None -> None)
  | Some m -> (
      match m.t_load key with
      | Some e ->
          Profile.incr "cache.mem_hits";
          Some e
      | None -> (
          match disk_load ~dir key with
          | Some e ->
              Profile.incr "cache.disk_hits";
              m.t_store key e;
              Some e
          | None -> None))

let store ~(dir : string) (key : string) (e : entry) : unit =
  (match !memory_tier with Some m -> m.t_store key e | None -> ());
  (try mkdir_p dir with Unix.Unix_error _ -> ());
  write_marshalled (path dir key) e

(* ------------------------------------------------------------------ *)
(* The per-slice store                                                 *)
(* ------------------------------------------------------------------ *)

(* Slice entries live beside the whole-function entries under their own
   suffix; they are disk-only (no memory tier — the daemon's warm path
   is the whole-function entry, which subsumes every slice). Per-tier
   traffic is counted by the engine as [cache.slice_hits] /
   [cache.slice_misses]. *)

let slice_path dir key = Filename.concat dir (key ^ ".slice")

let slice_load ~(dir : string) (key : string) : slice_entry option =
  (read_marshalled (slice_path dir key) : slice_entry option)

let slice_store ~(dir : string) (key : string) (e : slice_entry) : unit =
  (try mkdir_p dir with Unix.Unix_error _ -> ());
  write_marshalled (slice_path dir key) e
