(** Shared CLI diagnostics for the [flux] and [prusti] front ends: one
    result-row formatter, one run footer, and one exit-code policy, so
    the two binaries cannot drift apart.

    Exit codes: 0 = verified / no findings; 1 = verification failed (or
    lint findings); 2 = the frontend rejected the input (I/O, lexing,
    parsing, or type errors). *)

module Ast = Flux_syntax.Ast

let exit_ok = 0
let exit_failed = 1
let exit_frontend = 2

(** One per-function result row: name, OK/ERROR, tool-specific stats
    (e.g. ["3 κ, 17 clauses"] or ["12 VCs"]), and — only with [times] —
    the wall clock and cache provenance (both nondeterministic). *)
let print_row ~quiet ~times ~name ~ok ~stats ~time ~cached =
  if not quiet then
    if times then
      Format.printf "%-24s %s  (%s, %.3fs%s)@." name
        (if ok then "OK" else "ERROR")
        stats time
        (if cached then ", cached" else "")
    else
      Format.printf "%-24s %s  (%s)@." name
        (if ok then "OK" else "ERROR")
        stats

(** Indented error lines under a result row. *)
let print_errors (pp : Format.formatter -> 'e -> unit) (errors : 'e list) :
    unit =
  List.iter (fun e -> Format.printf "  error: %a@." pp e) errors

(** Run footer; returns the process exit code. *)
let print_footer ~quiet ~times ~tool ~ok ~fns ~hits ~time =
  if ok then begin
    if not quiet then begin
      let cached =
        if hits > 0 then Printf.sprintf " (%d from cache)" hits else ""
      in
      if times then
        Format.printf "%s: %d function(s) verified%s in %.3fs@." tool fns
          cached time
      else Format.printf "%s: %d function(s) verified%s@." tool fns cached
    end;
    exit_ok
  end
  else begin
    Format.printf "%s: verification FAILED@." tool;
    exit_failed
  end

(** Run [f], mapping the frontend's exceptions (file system, lexer,
    parser, typechecker) to stderr messages and {!exit_frontend}. *)
let with_frontend_errors ~(tool : string) ~(file : string) (f : unit -> int) :
    int =
  try f () with
  | Sys_error msg ->
      Format.eprintf "%s: %s@." tool msg;
      exit_frontend
  | Flux_syntax.Lexer.Error (msg, p) ->
      Format.eprintf "%s: %s:%d:%d: lexical error: %s@." tool file p.Ast.line
        p.Ast.col msg;
      exit_frontend
  | Flux_syntax.Parser.Error (msg, p) ->
      Format.eprintf "%s: %s:%d:%d: parse error: %s@." tool file p.Ast.line
        p.Ast.col msg;
      exit_frontend
  | Flux_syntax.Typeck.Error (msg, sp) ->
      Format.eprintf "%s: %s:%a: type error: %s@." tool file Ast.pp_span sp msg;
      exit_frontend
