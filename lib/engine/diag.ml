(** Shared CLI diagnostics for the [flux] and [prusti] front ends: one
    result-row formatter, one run footer, and one exit-code policy, so
    the two binaries cannot drift apart.

    Every renderer writes to an explicit formatter rather than
    [Format.std_formatter]: the CLI renders into a buffer and prints
    it, and the daemon renders into a buffer and ships it over the
    socket — one code path, so daemon output is byte-identical to the
    CLI by construction (see {!Flux_server.Exec}).

    Exit codes: 0 = verified / no findings; 1 = verification failed (or
    lint findings); 2 = the frontend rejected the input (I/O, lexing,
    parsing, or type errors); 3 = a per-request deadline expired before
    the check completed. *)

module Ast = Flux_syntax.Ast

let exit_ok = 0
let exit_failed = 1
let exit_frontend = 2
let exit_deadline = 3

(** Read a whole file (binary-exact). Shared by both CLIs, the daemon
    client, and the daemon's path-request handler; raises [Sys_error]
    like [open_in_bin] on failure. *)
let read_file (path : string) : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** One per-function result row: name, OK/ERROR, tool-specific stats
    (e.g. ["3 κ, 17 clauses"] or ["12 VCs"]), and — only with [times] —
    the wall clock and cache provenance (both nondeterministic). *)
let print_row fmt ~quiet ~times ~name ~ok ~stats ~time ~cached =
  if not quiet then
    if times then
      Format.fprintf fmt "%-24s %s  (%s, %.3fs%s)@." name
        (if ok then "OK" else "ERROR")
        stats time
        (if cached then ", cached" else "")
    else
      Format.fprintf fmt "%-24s %s  (%s)@." name
        (if ok then "OK" else "ERROR")
        stats

(** Indented error lines under a result row. *)
let print_errors fmt (pp : Format.formatter -> 'e -> unit)
    (errors : 'e list) : unit =
  List.iter (fun e -> Format.fprintf fmt "  error: %a@." pp e) errors

(** Run footer; returns the process exit code. *)
let print_footer fmt ~quiet ~times ~tool ~ok ~fns ~hits ~time =
  if ok then begin
    if not quiet then begin
      let cached =
        if hits > 0 then Printf.sprintf " (%d from cache)" hits else ""
      in
      if times then
        Format.fprintf fmt "%s: %d function(s) verified%s in %.3fs@." tool fns
          cached time
      else Format.fprintf fmt "%s: %d function(s) verified%s@." tool fns cached
    end;
    exit_ok
  end
  else begin
    Format.fprintf fmt "%s: verification FAILED@." tool;
    exit_failed
  end

(** Render a frontend exception (file system, lexer, parser,
    typechecker) as the stderr message the CLI has always printed, or
    [None] for exceptions that are not frontend errors (re-raise
    those). *)
let render_frontend_error ~(tool : string) ~(file : string) (e : exn) :
    string option =
  match e with
  | Sys_error msg -> Some (Format.asprintf "%s: %s@." tool msg)
  | Flux_syntax.Lexer.Error (msg, p) ->
      Some
        (Format.asprintf "%s: %s:%d:%d: lexical error: %s@." tool file
           p.Ast.line p.Ast.col msg)
  | Flux_syntax.Parser.Error (msg, p) ->
      Some
        (Format.asprintf "%s: %s:%d:%d: parse error: %s@." tool file
           p.Ast.line p.Ast.col msg)
  | Flux_syntax.Typeck.Error (msg, sp) ->
      Some
        (Format.asprintf "%s: %s:%a: type error: %s@." tool file Ast.pp_span
           sp msg)
  | _ -> None
