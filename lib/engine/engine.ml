(** The verification engine: parallel scheduling plus the persistent
    incremental cache, between the CLI/bench drivers and the checkers.

    Flux checking is modular — each function is verified against callee
    {e signatures} only — so per-function checks are independent tasks.
    The engine exploits that twice:

    - {b Parallelism}: misses run on a {!Pool} of OCaml 5 domains,
      largest estimated task first (LPT) so one heavyweight function
      does not serialize the tail of the schedule. All checker state is
      domain-local (term interning, solver stats/caches, fixpoint
      stats, profiles, fresh-name counters), and each per-function
      check resets its fresh-name counter, so results — verdicts,
      errors, κ/clause counts — are byte-identical to a sequential run
      regardless of [jobs]. Worker profiles are merged back into the
      calling domain in declaration order ({!Flux_smt.Profile.absorb}).
      Under the (default) incremental fixpoint schedule, Flux checking
      is split finer still: constraint generation is one pooled phase,
      then the SCC slices of {e all} functions' κ-dependency graphs are
      pooled level by level ({!Flux_fixpoint.Solve}'s slice API), so
      independent SCCs of one heavyweight function spread across the
      pool instead of serializing on it.

    - {b Incrementality}: before scheduling, each function is probed in
      the content-addressed on-disk cache ({!Cache}); hits return the
      stored verdict/stats without generating or solving anything. A
      function-level miss (say, after a single spec edit) then probes
      per-SCC-slice: slices whose fingerprint — clauses plus the final
      solutions of the external κs they read — is unchanged replay
      their stored κ conjuncts with zero weaken checks, so only the
      slices downstream of the edited κs are re-solved.

    The engine accepts a {e list} of programs and pools all their
    functions into one schedule: for a suite (the Table-1 benchmarks),
    the makespan is governed by the single largest function rather than
    the largest per-program sum. *)

module Ast = Flux_syntax.Ast
module Ir = Flux_mir.Ir
module Checker = Flux_check.Checker
module Genv = Flux_check.Genv
module Wp = Flux_wp.Wp
module Replay = Flux_cert.Replay
module Cert_store = Flux_cert.Store
open Flux_smt
open Flux_fixpoint

type config = {
  jobs : int;  (** worker domains; [<= 0] selects {!Pool.default_jobs} *)
  cache_dir : string option;  (** [None] disables the persistent cache *)
}

let default_cache_dir = ".flux-cache"
let default_config = { jobs = 0; cache_dir = Some default_cache_dir }

(* Flag state a check runs under; part of the cache key so toggling a
   flag cannot replay verdicts obtained under another configuration. *)
let flux_config_string () =
  Printf.sprintf "underflow=%b;slice=%b;incremental=%b;absint=%b;xcheck=%b"
    !Checker.check_underflow !Solve.slice_enabled !Solve.incremental_enabled
    !Flux_absint.Discharge.enabled !Flux_absint.Discharge.crosscheck

let wp_config_string () =
  Printf.sprintf "underflow=%b;rounds=%d;cap=%d;absint=%b;xcheck=%b"
    !Wp.check_underflow !Wp.inst_rounds !Wp.inst_cap
    !Flux_absint.Discharge.enabled !Flux_absint.Discharge.crosscheck

(* ------------------------------------------------------------------ *)
(* The pooled scheduler                                                *)
(* ------------------------------------------------------------------ *)

(** Static size estimate driving the LPT schedule: constraint volume —
    and hence solving time — grows with the number of statements and
    blocks. Mis-estimates cost only schedule quality, never results. *)
let body_size (b : Ir.body) : int =
  Array.fold_left
    (fun acc blk -> acc + 1 + List.length blk.Ir.stmts)
    0 b.Ir.mb_blocks

(** Run independent checks through the domain pool, largest first,
    returning results in input order. Each task runs with a clean
    per-domain profile; the captured profiles are merged back into the
    calling domain in input order, so the aggregated profile is
    deterministic and scheduling-independent.

    [cancel] is polled at task (i.e. function) boundaries; when it
    reports [true], {!Pool.Cancelled} escapes after the in-flight
    checks finish (the daemon uses this for per-request deadlines and
    client-disconnect cancellation). *)
let run_pool ?cancel ~(jobs : int) ~(sizes : int array)
    (fns : (unit -> 'a) array) : 'a array =
  let n = Array.length fns in
  if n = 0 then [||]
  else begin
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare (sizes.(b), a) (sizes.(a), b)) order;
    let tasks =
      Array.map
        (fun i () ->
          Profile.reset ();
          let r = fns.(i) () in
          (r, Profile.capture ()))
        order
    in
    (* The per-task resets also clear the calling domain's profile when
       running inline (jobs <= 1); save it and merge it back — also on
       the cancellation path, so an abandoned request does not wipe the
       session's accumulated profile. *)
    let outer = Profile.capture () in
    let outcomes =
      match Pool.run ?cancel ~jobs tasks with
      | o -> o
      | exception e ->
          Profile.reset ();
          Profile.absorb outer;
          raise e
    in
    Profile.reset ();
    Profile.absorb outer;
    let results = Array.make n None in
    Array.iteri (fun k i -> results.(i) <- Some outcomes.(k)) order;
    Array.init n (fun i ->
        match results.(i) with
        | Some (r, cap) ->
            Profile.absorb cap;
            r
        | None -> assert false)
  end

(* ------------------------------------------------------------------ *)
(* Flux                                                                *)
(* ------------------------------------------------------------------ *)

type fn_outcome = {
  fo_report : Checker.fn_report;
  fo_cached : bool;  (** verdict replayed from the persistent cache *)
}

type run = {
  run_fns : fn_outcome list;  (** declaration order *)
  run_hits : int;
  run_misses : int;  (** functions actually checked *)
  run_time : float;
      (** wall-clock of the engine invocation that produced this run
          (shared across the batch for {!check_programs}) *)
}

let report_of_run (r : run) : Checker.report =
  {
    Checker.rp_fns = List.map (fun o -> o.fo_report) r.run_fns;
    rp_time = r.run_time;
  }

let run_ok (r : run) = List.for_all (fun o -> Checker.fn_ok o.fo_report) r.run_fns

(* A per-function slot is either replayed from the cache or an index
   into the shared task arrays. *)
type 'r slot = Hit of 'r | Todo of int * string option

(* ------------------------------------------------------------------ *)
(* Certificates (--certify)                                            *)
(* ------------------------------------------------------------------ *)

(* Warm-path revalidation: under [--certify] a cache hit only stands if
   the certificate stored next to the verdict replays in full through
   the independent checker — no SMT queries. A missing certificate
   (e.g. the entry predates --certify) demotes the hit to a plain miss
   so the re-check can emit one; a corrupt or non-replaying certificate
   additionally counts as [cert.failed]. *)
let cert_replay_ok ~dir key : bool =
  match Cert_store.load dir key with
  | Cert_store.Missing -> false
  | Cert_store.Corrupt ->
      Profile.incr "cert.failed";
      false
  | Cert_store.Loaded entries ->
      Profile.time "cert.replay_s" @@ fun () ->
      List.for_all
        (fun (_, p) ->
          match Replay.check p with
          | Ok () ->
              Profile.incr "cert.replayed";
              true
          | Error _ ->
              Profile.incr "cert.failed";
              false)
        entries

(* Cold-path emission is all-or-nothing per function: if any clause
   resists certification (the certifying search is deliberately
   simpler than the solver and may give up), no file is written — a
   partial certificate would let a warm replay claim full coverage. *)
let save_cert_entries ~dir key (entries : (int * Proof.t) list option) : unit
    =
  match entries with
  | Some entries ->
      Cert_store.save dir key entries;
      Profile.add "cert.emitted" (List.length entries)
  | None -> Profile.incr "cert.incomplete"

let emit_flux_cert ~dir key ~(kvars : Horn.kvar list)
    (sol : Solve.solution) (clauses : Horn.clause list) : unit =
  Profile.time "cert.emit_s" @@ fun () ->
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | cl :: rest -> (
        match Solver.certify (Solve.clause_query ~kvars sol cl) with
        | Some p -> go ((cl.Horn.tag, p) :: acc) rest
        | None -> None)
  in
  save_cert_entries ~dir key (go [] clauses)

let emit_wp_cert ~dir key (goals : (int * Term.t) list) : unit =
  Profile.time "cert.emit_s" @@ fun () ->
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | (tag, g) :: rest -> (
        match Solver.certify g with
        | Some p -> go ((tag, p) :: acc) rest
        | None -> None)
  in
  save_cert_entries ~dir key (go [] goals)

(* ------------------------------------------------------------------ *)
(* Split-phase Flux checking: slice-level pooling + per-slice cache    *)
(* ------------------------------------------------------------------ *)

(** Check the miss functions through the split-phase pipeline:
    {!Checker.prepare} pooled per function, then every function's SCC
    slices pooled level by level (dependencies first — slices of equal
    level cannot depend on each other, across functions trivially so),
    with results merged on the calling domain between levels, finally
    {!Checker.finish}. Before solving, each non-trivial slice is probed
    under its {!Flux_fixpoint.Solve.slice_fingerprint}; a hit replays
    the stored κ conjuncts without any weaken checks. Only failure-free
    slices are stored (failures carry obligation tags whose spans the
    fingerprint deliberately ignores — same policy as whole-function
    entries). Reports are byte-identical to {!Checker.check_body}'s:
    the slice schedule converges to the same strongest fixpoint, and
    {!Flux_fixpoint.Solve.finish} restores input-clause failure
    order. *)
let check_split ?cancel ~(certify : bool) (cfg : config) ~(config : string)
    ~(quals_fp : string) ~(sizes : int array)
    (task_arr : (Genv.t * Ast.fn_def * Ir.body * string option) array) :
    (Checker.fn_report * (Horn.kvar list * Horn.clause list) option) array =
  let n = Array.length task_arr in
  (* Phase A: pooled constraint generation, plus solver prep (initial κ
     instantiation + dependency graph). The prep is built on whichever
     worker ran the task and only read by others afterwards: its tables
     are written exclusively by {!Solve.apply_slice} on this domain,
     between the pooled batches below. *)
  let preps =
    run_pool ?cancel ~jobs:cfg.jobs ~sizes
      (Array.map
         (fun (genv, fd, body, _) () ->
           let p = Checker.prepare genv fd body in
           if Checker.prepared_early p then (p, None, 0.0)
           else
             let t0 = Unix.gettimeofday () in
             let sp =
               Profile.with_fn fd.Ast.fn_name @@ fun () ->
               Solve.prepare
                 ~kvars:(Checker.prepared_kvars p)
                 (Checker.prepared_clauses p)
             in
             (p, Some sp, Unix.gettimeofday () -. t0))
         task_arr)
  in
  (* Per-function solving wall-clock, fed to [Checker.finish] so
     [fr_time] matches a monolithic check's accounting. *)
  let solve_s = Array.map (fun (_, _, dt) -> dt) preps in
  let max_level =
    Array.fold_left
      (fun acc (_, sp, _) ->
        match sp with
        | None -> acc
        | Some p ->
            let m = ref acc in
            for s = 0 to Solve.slice_count p - 1 do
              m := max !m (Solve.slice_level p s)
            done;
            !m)
      (-1) preps
  in
  (* Phase B: one pooled batch per dependency level. *)
  for level = 0 to max_level do
    let acc = ref [] in
    Array.iteri
      (fun i (_, sp, _) ->
        match sp with
        | None -> ()
        | Some p ->
            for s = 0 to Solve.slice_count p - 1 do
              if Solve.slice_level p s = level then acc := (i, p, s) :: !acc
            done)
      preps;
    let items = Array.of_list (List.rev !acc) in
    (* Probe the slice cache. Trivial slices (nothing to weaken, no
       concrete heads) skip the disk round-trip; they still run — the
       run is a no-op — so the apply protocol stays uniform. *)
    let probes =
      Array.map
        (fun (_, p, s) ->
          match cfg.cache_dir with
          | Some dir when Solve.slice_size p s > 0 -> (
              let key =
                Cache.slice_key ~config ~quals_fp
                  (Solve.slice_fingerprint p s)
              in
              match Cache.slice_load ~dir key with
              | Some e ->
                  Profile.incr "cache.slice_hits";
                  `Hit
                    {
                      Solve.sr_slice = s;
                      sr_sols = e.Cache.se_sols;
                      sr_failures = [];
                    }
              | None ->
                  Profile.incr "cache.slice_misses";
                  `Run (Some (dir, key)))
          | _ -> `Run None)
        items
    in
    let todo = ref [] in
    Array.iteri
      (fun j _ -> match probes.(j) with `Run _ -> todo := j :: !todo | `Hit _ -> ())
      probes;
    let todo = Array.of_list (List.rev !todo) in
    let slice_sizes =
      Array.map
        (fun j ->
          let _, p, s = items.(j) in
          Solve.slice_size p s)
        todo
    in
    let tasks =
      Array.map
        (fun j () ->
          let i, p, s = items.(j) in
          let _, fd, _, _ = task_arr.(i) in
          let t0 = Unix.gettimeofday () in
          let r =
            Profile.with_fn fd.Ast.fn_name @@ fun () -> Solve.run_slice p s
          in
          (r, Unix.gettimeofday () -. t0))
        todo
    in
    let solved = run_pool ?cancel ~jobs:cfg.jobs ~sizes:slice_sizes tasks in
    (* Merge in deterministic item order; store fresh clean slices. *)
    let next = ref 0 in
    Array.iteri
      (fun j (i, p, _) ->
        match probes.(j) with
        | `Hit r -> Solve.apply_slice p r
        | `Run key ->
            let r, dt = solved.(!next) in
            incr next;
            solve_s.(i) <- solve_s.(i) +. dt;
            Solve.apply_slice p r;
            (match key with
            | Some (dir, k) when r.Solve.sr_failures = [] ->
                Cache.slice_store ~dir k { Cache.se_sols = r.Solve.sr_sols }
            | _ -> ()))
      items
  done;
  (* Phase C: verdicts back to source spans (plus, under --certify, the
     constraint payload cert emission re-derives clause queries from). *)
  Array.init n (fun i ->
      let p, sp, _ = preps.(i) in
      match sp with
      | None -> (Checker.finish ~certify p None, None)
      | Some sprep ->
          ( Checker.finish ~solve_s:solve_s.(i) ~certify p
              (Some (Solve.finish sprep)),
            Some (Checker.prepared_kvars p, Checker.prepared_clauses p) ))

(** Check several programs through one shared schedule. Genvs are built
    sequentially on the calling domain and are read-only afterwards, so
    worker domains may read them concurrently. *)
let check_programs ?cancel ?(certify = false) (cfg : config)
    (progs : Ast.program list) : run list =
  let t0 = Unix.gettimeofday () in
  let config = flux_config_string () in
  let quals_fp = Cache.qualifiers_fingerprint Qualifier.default in
  let tasks = ref [] in
  let n_tasks = ref 0 in
  let slots =
    List.map
      (fun prog ->
        let genv = Genv.build prog in
        let senv_fp =
          if cfg.cache_dir = None then ""
          else Cache.struct_env_fingerprint genv.Genv.senv
        in
        List.filter_map
          (fun (fd : Ast.fn_def) ->
            if fd.Ast.fn_trusted then None
            else
              match Genv.find_body genv fd.Ast.fn_name with
              | None -> None
              | Some body ->
                  let key =
                    Option.map
                      (fun _dir ->
                        Cache.flux_key ~config ~senv_fp ~quals_fp
                          ~lookup:(Genv.find_sig genv) fd body)
                      cfg.cache_dir
                  in
                  let hit =
                    match (key, cfg.cache_dir) with
                    | Some k, Some dir -> (
                        match Cache.load ~dir k with
                        | Some _ when certify && not (cert_replay_ok ~dir k)
                          ->
                            (* verdict present but certificate missing
                               or not replaying: demote to a miss so the
                               re-check re-emits it *)
                            None
                        | Some (e : Cache.entry) ->
                            Some
                              {
                                Checker.fr_name = fd.Ast.fn_name;
                                fr_errors = [];
                                fr_solution = None;
                                fr_kvars = e.Cache.e_kvars;
                                fr_clauses = e.Cache.e_clauses;
                                fr_time = 0.0;
                              }
                        | None -> None)
                    | _ -> None
                  in
                  (match hit with
                  | Some r ->
                      Profile.incr "engine.cache_hits";
                      Some (Hit r)
                  | None ->
                      if key <> None then Profile.incr "engine.cache_misses";
                      let i = !n_tasks in
                      incr n_tasks;
                      tasks := (genv, fd, body, key) :: !tasks;
                      Some (Todo (i, key))))
          (Ast.program_fns prog))
      progs
  in
  let task_arr = Array.of_list (List.rev !tasks) in
  let sizes = Array.map (fun (_, _, body, _) -> body_size body) task_arr in
  let results =
    if !Solve.incremental_enabled then
      check_split ?cancel ~certify cfg ~config ~quals_fp ~sizes task_arr
    else
      (* Naive schedule (--fixpoint naive): monolithic per-function
         checks, the pre-slicing engine path — unrolled from
         [Checker.check_body] so the constraint payload stays available
         for certificate emission. *)
      run_pool ?cancel ~jobs:cfg.jobs ~sizes
        (Array.map
           (fun (genv, fd, body, _) () ->
             let pr = Checker.prepare genv fd body in
             if Checker.prepared_early pr then
               (Checker.finish ~certify pr None, None)
             else begin
               let t0 = Unix.gettimeofday () in
               let result =
                 Profile.with_fn fd.Ast.fn_name @@ fun () ->
                 Solve.solve_clauses
                   ~kvars:(Checker.prepared_kvars pr)
                   (Checker.prepared_clauses pr)
               in
               let solve_s = Unix.gettimeofday () -. t0 in
               ( Checker.finish ~solve_s ~certify pr (Some result),
                 Some
                   (Checker.prepared_kvars pr, Checker.prepared_clauses pr)
               )
             end)
           task_arr)
  in
  (match cfg.cache_dir with
  | Some dir ->
      Array.iteri
        (fun i (_, _, _, key) ->
          match key with
          | Some k when Checker.fn_ok (fst results.(i)) ->
              let r, payload = results.(i) in
              Cache.store ~dir k
                {
                  Cache.e_kvars = r.Checker.fr_kvars;
                  e_clauses = r.Checker.fr_clauses;
                  e_time = r.Checker.fr_time;
                };
              if certify then begin
                match (payload, r.Checker.fr_solution) with
                | Some (kvars, clauses), Some sol ->
                    emit_flux_cert ~dir k ~kvars sol clauses
                | _ -> ()
              end
          | _ -> ())
        task_arr
  | None -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  List.map
    (fun prog_slots ->
      let fns =
        List.map
          (function
            | Hit r -> { fo_report = r; fo_cached = true }
            | Todo (i, _) ->
                { fo_report = fst results.(i); fo_cached = false })
          prog_slots
      in
      let hits =
        List.length (List.filter (fun o -> o.fo_cached) fns)
      in
      {
        run_fns = fns;
        run_hits = hits;
        run_misses = List.length fns - hits;
        run_time = elapsed;
      })
    slots

let check_program_ast ?cancel ?certify (cfg : config) (prog : Ast.program) :
    run =
  match check_programs ?cancel ?certify cfg [ prog ] with
  | [ r ] -> r
  | _ -> assert false

let check_source ?cancel ?certify (cfg : config) (src : string) : run =
  let prog = Flux_syntax.Parser.parse_program src in
  Flux_syntax.Typeck.check_program prog;
  check_program_ast ?cancel ?certify cfg prog

(* ------------------------------------------------------------------ *)
(* WP (Prusti baseline)                                                *)
(* ------------------------------------------------------------------ *)

type wp_outcome = { wo_report : Wp.fn_report; wo_cached : bool }

type wp_run = {
  wr_fns : wp_outcome list;
  wr_hits : int;
  wr_misses : int;
  wr_time : float;
}

let wp_report_of_run (r : wp_run) : Wp.report =
  {
    Wp.rp_fns = List.map (fun o -> o.wo_report) r.wr_fns;
    rp_time = r.wr_time;
  }

let wp_run_ok (r : wp_run) = List.for_all (fun o -> Wp.fn_ok o.wo_report) r.wr_fns

let verify_programs ?cancel ?(certify = false) (cfg : config)
    (progs : Ast.program list) : wp_run list =
  let t0 = Unix.gettimeofday () in
  let config = wp_config_string () in
  let tasks = ref [] in
  let n_tasks = ref 0 in
  let slots =
    List.map
      (fun prog ->
        let bodies = Flux_mir.Lower.lower_program prog in
        List.filter_map
          (fun (fd : Ast.fn_def) ->
            if fd.Ast.fn_trusted then None
            else
              match List.assoc_opt fd.Ast.fn_name bodies with
              | None -> None
              | Some body ->
                  let key =
                    Option.map
                      (fun _dir ->
                        Cache.wp_key ~config ~lookup:(Ast.find_fn prog) fd body)
                      cfg.cache_dir
                  in
                  let hit =
                    match (key, cfg.cache_dir) with
                    | Some k, Some dir -> (
                        match Cache.load ~dir k with
                        | Some _ when certify && not (cert_replay_ok ~dir k)
                          ->
                            None
                        | Some (e : Cache.entry) ->
                            Some
                              {
                                Wp.fr_name = fd.Ast.fn_name;
                                fr_errors = [];
                                fr_vcs = e.Cache.e_clauses;
                                fr_time = 0.0;
                                fr_goals = [];
                              }
                        | None -> None)
                    | _ -> None
                  in
                  (match hit with
                  | Some r ->
                      Profile.incr "engine.cache_hits";
                      Some (Hit r)
                  | None ->
                      if key <> None then Profile.incr "engine.cache_misses";
                      let i = !n_tasks in
                      incr n_tasks;
                      tasks := (prog, fd, body, key) :: !tasks;
                      Some (Todo (i, key))))
          (Ast.program_fns prog))
      progs
  in
  let task_arr = Array.of_list (List.rev !tasks) in
  let sizes = Array.map (fun (_, _, body, _) -> body_size body) task_arr in
  let fns =
    Array.map
      (fun (prog, fd, body, _) () -> Wp.verify_body ~certify prog fd body)
      task_arr
  in
  let results = run_pool ?cancel ~jobs:cfg.jobs ~sizes fns in
  (match cfg.cache_dir with
  | Some dir ->
      Array.iteri
        (fun i (_, _, _, key) ->
          match key with
          | Some k when Wp.fn_ok results.(i) ->
              let r = results.(i) in
              Cache.store ~dir k
                {
                  Cache.e_kvars = 0;
                  e_clauses = r.Wp.fr_vcs;
                  e_time = r.Wp.fr_time;
                };
              if certify then emit_wp_cert ~dir k r.Wp.fr_goals
          | _ -> ())
        task_arr
  | None -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  List.map
    (fun prog_slots ->
      let fns =
        List.map
          (function
            | Hit r -> { wo_report = r; wo_cached = true }
            | Todo (i, _) -> { wo_report = results.(i); wo_cached = false })
          prog_slots
      in
      let hits = List.length (List.filter (fun o -> o.wo_cached) fns) in
      {
        wr_fns = fns;
        wr_hits = hits;
        wr_misses = List.length fns - hits;
        wr_time = elapsed;
      })
    slots

let verify_program_ast ?cancel ?certify (cfg : config) (prog : Ast.program) :
    wp_run =
  match verify_programs ?cancel ?certify cfg [ prog ] with
  | [ r ] -> r
  | _ -> assert false

let verify_source ?cancel ?certify (cfg : config) (src : string) : wp_run =
  let prog = Flux_syntax.Parser.parse_program src in
  Flux_syntax.Typeck.check_program prog;
  verify_program_ast ?cancel ?certify cfg prog
