(** A fixed-size pool of OCaml 5 domains draining an array of
    independent tasks.

    Tasks are claimed off a shared atomic counter in array order, so
    callers control scheduling priority by ordering the array (the
    engine submits largest-estimated tasks first, LPT-style). Results
    come back positionally: [run tasks] returns an array where slot
    [i] holds the result of [tasks.(i)] no matter which domain ran it
    or when it finished. *)

let default_jobs () = Domain.recommended_domain_count ()

exception Cancelled
(** Raised by {!run} when its [cancel] callback reports [true]: the
    remaining tasks are abandoned at the next task boundary (an
    in-flight task always runs to completion — cancellation is
    task-granular, never mid-task) and the partial results are
    discarded. *)

type 'a outcome = Done of 'a | Failed of exn * Printexc.raw_backtrace

(** [run ~jobs tasks]: execute every task and return the results in
    task order. [jobs <= 0] selects {!default_jobs}; [jobs <= 1] (or a
    single task) runs inline on the calling domain, so sequential mode
    has no domain overhead and shares the caller's domain-local state.
    Requested jobs are clamped to the physical core count: verification
    is CPU-bound and the minor GC is a stop-the-world barrier across
    all domains, so domains beyond cores only add synchronization
    stalls (measured ~1.4-2x slowdown when oversubscribed). [jobs < 0]
    bypasses the clamp and forces exactly [-jobs] domains — only for
    tests that must exercise true multi-domain runs on small machines.
    If tasks raised, the first failure in {e task order} is re-raised
    (identically for sequential and parallel runs).

    [cancel] is polled before every task claim — on the calling domain
    when sequential, on each worker domain when parallel, so it must be
    safe to call concurrently (the daemon's deadline/disconnect checks
    are plain syscalls). Once it reports [true], {!Cancelled} is raised
    after the in-flight tasks finish. *)
let run (type a) ?(cancel = fun () -> false) ~(jobs : int)
    (tasks : (unit -> a) array) : a array =
  let n = Array.length tasks in
  let results : a outcome option array = Array.make n None in
  let exec i =
    results.(i) <-
      Some
        (try Done (tasks.(i) ())
         with e -> Failed (e, Printexc.get_raw_backtrace ()))
  in
  let jobs =
    if jobs < 0 then -jobs
    else min (if jobs = 0 then default_jobs () else jobs) (default_jobs ())
  in
  (if jobs <= 1 || n <= 1 then
     for i = 0 to n - 1 do
       if cancel () then raise Cancelled;
       exec i
     done
   else begin
     let next = Atomic.make 0 in
     let stop = Atomic.make false in
     let worker () =
       let rec loop () =
         if Atomic.get stop then ()
         else if cancel () then Atomic.set stop true
         else begin
           let i = Atomic.fetch_and_add next 1 in
           if i < n then begin
             exec i;
             loop ()
           end
         end
       in
       loop ()
     in
     (* Workers catch everything, so [Domain.join] never re-raises;
        failures are reported positionally below instead. *)
     let doms = Array.init (min jobs n) (fun _ -> Domain.spawn worker) in
     Array.iter Domain.join doms;
     if Atomic.get stop then raise Cancelled
   end);
  Array.init n (fun i ->
      match results.(i) with
      | Some (Done r) -> r
      | Some (Failed (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false)
