(** The Flux refinement checker: the algorithmic system of §4.

    The checker walks each function's MIR in reverse postorder carrying
    a refinement environment (rigid refinement variables + path
    predicates + a location typing for every local). Three phases, as
    in the paper:

    + {b Spatial/shape} — join blocks (loop headers and other
      multi-predecessor blocks) get a {e template environment}: every
      live local keeps its unrefined shape while every index position
      becomes a fresh existential constrained by a fresh κ variable
      over the join's "ghost" variables (§4.2 phase 1).
    + {b Checking} — straight-line code is checked against the
      declarative rules, strong updates for exclusively-owned
      locations, weak updates through references, and κ-template
      instantiation for polymorphic library calls (§4.3). Every
      obligation becomes a flat Horn clause.
    + {b Inference} — the clauses go to the liquid fixpoint solver;
      failures are mapped back to source spans. *)

open Flux_smt
open Flux_fixpoint
open Flux_rtype
open Rty
module Ast = Flux_syntax.Ast
module Ir = Flux_mir.Ir
module Liveness = Flux_mir.Liveness
module IMap = Map.Make (Int)

type error = {
  err_fn : string;
  err_span : Ast.span;
  err_msg : string;
  err_witness : (string * Eval.value) list option;
      (** a verified falsifying assignment for the failed obligation
          (constraint-level variables), present under [--certify] *)
}

let pp_witness fmt = function
  | Some ((_ :: _) as w) ->
      Format.fprintf fmt "@.    falsified by %s"
        (String.concat ", "
           (List.map
              (fun (x, v) -> Format.asprintf "%s = %a" x Eval.pp_value v)
              w))
  | Some [] | None -> ()

let pp_error fmt e =
  Format.fprintf fmt "%s:%a: %s%a" e.err_fn Ast.pp_span e.err_span e.err_msg
    pp_witness e.err_witness

type fn_report = {
  fr_name : string;
  fr_errors : error list;
  fr_solution : Solve.solution option;
  fr_kvars : int;
  fr_clauses : int;
  fr_time : float;
}

let fn_ok r = r.fr_errors = []

(** Check that usize subtractions cannot underflow. The paper's
    evaluation runs with overflow checking off, but our operational
    model is mathematical integers: without underflow checks, the
    assumed usize invariant [0 <= v] would be unsound (the soundness
    fuzzer in test/test_soundness.ml finds the counterexample). This
    mirrors Flux's [check_overflow] for subtraction. *)
let check_underflow = ref true

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)
(* ------------------------------------------------------------------ *)

type env = {
  binders : (string * Sort.t) list;
  hyps : Horn.pred list;
  locals : rty IMap.t;
}

let cx_of (env : env) : Sub.cx = { Sub.binders = env.binders; hyps = env.hyps }

(* ------------------------------------------------------------------ *)
(* Lint side channel                                                   *)
(* ------------------------------------------------------------------ *)

(** Facts the checker can record for the lint passes as it walks a body
    — the concrete entry hypotheses of every checked block, the blocks
    it never reached, which κs each join template declared, and overflow
    side conditions. Collecting them here (rather than re-walking the
    MIR in [lib/analysis]) keeps the lint passes in exact agreement with
    what the checker proved. The channel is off during plain
    verification, and recording never adds clauses or tags, so a lint
    run produces the same [fn_report] as a plain one. *)
type lint_info = {
  li_precond : Term.t list;
      (** the function's assumed entry context: resolved preconditions
          plus argument index invariants (unsat = vacuous spec) *)
  li_blocks : (int * Term.t list) list;
      (** per checked block: the concrete (κ-free) entry hypotheses —
          an over-approximation of the block's path condition, so unsat
          implies the block is unreachable *)
  li_dead_blocks : int list;
      (** blocks the checker never flowed into (structurally dead) *)
  li_join_kvars : (int * string list) list;
      (** per join block: κ names declared for its template *)
  li_overflow : (Ast.span * string * Horn.clause) list;
      (** machine-int range side conditions, to be evaluated against
          the final solution with {!Solve.check_clause} *)
  li_kvars : Horn.kvar list;
      (** all κ declarations of the body (for clause evaluation) *)
}

type lint_acc = {
  mutable la_precond : Term.t list;
  mutable la_blocks : (int * Term.t list) list;
  mutable la_dead : int list;
  la_join_kvars : (int, string list) Hashtbl.t;
  mutable la_overflow : (Ast.span * string * Horn.clause) list;
}

(* ------------------------------------------------------------------ *)
(* Checker state                                                       *)
(* ------------------------------------------------------------------ *)

type ck = {
  genv : Genv.t;
  body : Ir.body;
  live : Liveness.t;
  fsig : Specconv.fsig;
  mutable clauses : Horn.clause list;
  mutable kvars : Horn.kvar list;
  tags : (int, Ast.span * string) Hashtbl.t;
  mutable next_tag : int;
  mutable errors : error list;
  (* shadow locals backing &strg parameters (ids beyond the MIR locals) *)
  shadow_tys : (int, Ast.ty) Hashtbl.t;
  mutable next_shadow : int;
  strg_args : (int, int) Hashtbl.t;
      (** argument local → shadow local backing a &strg parameter *)
  (* per-join-block: template binders (for per-pred substitution) and
     the template local typing *)
  templates : (int, (string * Sort.t) list * rty IMap.t) Hashtbl.t;
  pending : (int, env) Hashtbl.t;  (** entry envs of single-pred blocks *)
  lint : lint_acc option;  (** lint side channel ([None] when verifying) *)
}

(** The concrete (κ-free) hypotheses of an environment. *)
let conc_hyps (env : env) : Term.t list =
  List.filter_map
    (function Horn.Conc t -> Some t | Horn.Kapp _ -> None)
    env.hyps

exception Check_error of string * Ast.span

let cerr span fmt = Format.kasprintf (fun s -> raise (Check_error (s, span))) fmt

let new_tag ck span msg =
  let t = ck.next_tag in
  ck.next_tag <- t + 1;
  Hashtbl.replace ck.tags t (span, msg);
  t

let add_clauses ck cls = ck.clauses <- List.rev_append cls ck.clauses

let declare_kvar ck kv = ck.kvars <- kv :: ck.kvars

let local_name ck (l : int) : string =
  if l < Array.length ck.body.Ir.mb_locals then
    ck.body.Ir.mb_locals.(l).Ir.ld_name
  else Printf.sprintf "*strg_%d" l

let local_shape ck (l : int) : Ast.ty =
  if l < Array.length ck.body.Ir.mb_locals then Ir.local_ty ck.body l
  else Hashtbl.find ck.shadow_tys l

let new_shadow ck (shape : Ast.ty) : int =
  let id = ck.next_shadow in
  ck.next_shadow <- id + 1;
  Hashtbl.replace ck.shadow_tys id shape;
  id

(* ------------------------------------------------------------------ *)
(* Binding types into the environment                                  *)
(* ------------------------------------------------------------------ *)

(** Assume the index invariants of an [Ix]-form type (non-negativity of
    usize and vector lengths, struct invariants). *)
let rec invariant_hyps ck (t : rty) : Horn.pred list =
  match t with
  | TBase (b, Ix ts) ->
      List.map (fun p -> Horn.Conc p) (index_invariants ck.genv.Genv.senv b ts)
  | TRef (_, t') -> invariant_hyps ck t'
  | _ -> []

(** Normalize a type into [Ix] form, extending the environment with the
    unpacked binders and hypotheses (plus invariants). References are
    left packed — their pointee is re-unpacked at each read. *)
let bind_rty ck (env : env) (t : rty) : env * rty =
  match t with
  | TBase (b, Ex (bs, ps)) ->
      let fresh_bs, hyp_ps, b', ts = Sub.unpack ck.genv.Genv.senv b bs ps in
      ( {
          env with
          binders = env.binders @ fresh_bs;
          hyps = env.hyps @ hyp_ps;
        },
        TBase (b', Ix ts) )
  | TBase (_, Ix _) | TRef _ ->
      ({ env with hyps = env.hyps @ invariant_hyps ck t }, t)
  | _ -> (env, t)

let set_local (env : env) l t = { env with locals = IMap.add l t env.locals }

let get_local ck (env : env) span l : rty =
  match IMap.find_opt l env.locals with
  | Some t -> t
  | None ->
      cerr span "internal: local %s has no refinement type"
        (if l < Array.length ck.body.Ir.mb_locals then
           ck.body.Ir.mb_locals.(l).Ir.ld_name
         else Printf.sprintf "shadow_%d" l)

(* ------------------------------------------------------------------ *)
(* Places                                                              *)
(* ------------------------------------------------------------------ *)

(** Chase strong pointers: if [place] starts with a [TPtr] local
    followed by a deref, redirect to the pointee place. *)
let rec resolve_place ck (env : env) span (p : Ir.place) : Ir.place =
  match (IMap.find_opt p.Ir.base env.locals, p.Ir.projs) with
  | Some (TPtr (_, target)), Ir.PDeref :: rest ->
      resolve_place ck env span
        { Ir.base = target.Ir.base; Ir.projs = target.Ir.projs @ rest }
  | _ -> p

(** Read the type at a place, unpacking any existential encountered on
    the way (reference pointees, container fields). Returns the
    extended environment and the [Ix]-normalized type of the value. *)
let rec read_place ck (env : env) span (p : Ir.place) : env * rty =
  let p = resolve_place ck env span p in
  let t0 = get_local ck env span p.Ir.base in
  let rec go env (t : rty) (projs : Ir.proj list) : env * rty =
    match projs with
    | [] -> bind_rty ck env t
    | Ir.PDeref :: rest -> (
        match t with
        | TRef (_, t') ->
            let env, t'' = bind_rty ck env t' in
            go env t'' rest
        | TPtr (_, target) ->
            (* pointer chains not collapsed by resolve_place (pointer
               read through a projection) *)
            let env, t' = read_place ck env span target in
            go env t' rest
        | _ -> cerr span "cannot dereference a value of type %s" (to_string t))
    | Ir.PField f :: rest -> (
        match t with
        | TBase (BStruct s, Ix ts) -> (
            match Hashtbl.find_opt ck.genv.Genv.senv s with
            | None -> cerr span "unknown struct %s" s
            | Some si -> (
                match List.assoc_opt f si.si_fields with
                | None -> cerr span "struct %s has no field %s" s f
                | Some fty ->
                    let m =
                      List.map2 (fun (x, _) t -> (x, t)) si.si_params ts
                    in
                    let env, fty = bind_rty ck env (subst_rty m fty) in
                    go env fty rest))
        | _ -> cerr span "cannot access field %s of %s" f (to_string t))
  in
  go env t0 p.Ir.projs

let read_operand ck (env : env) span (op : Ir.operand) : env * rty =
  match op with
  | Ir.Const (Ir.CInt (n, k)) -> (env, TBase (BInt k, Ix [ Term.int n ]))
  | Ir.Const (Ir.CBool b) -> (env, TBase (BBool, Ix [ Term.Bool b ]))
  | Ir.Const (Ir.CFloat _) -> (env, TBase (BFloat, Ix []))
  | Ir.Const Ir.CUnit -> (env, TBase (BUnit, Ix []))
  | Ir.Copy p -> read_place ck env span p
  | Ir.Move p ->
      let env, t = read_place ck env span p in
      let p' = resolve_place ck env span p in
      let env =
        if p'.Ir.projs = [] then
          set_local env p'.Ir.base (TUninit (local_shape ck p'.Ir.base))
        else env
      in
      (env, t)

(** Write [t] to [place]. Strong update for bare owned locals; weak
    update (a subtyping obligation against the declared pointee/field
    type) through references and fields. *)
let write_place ck (env : env) span (p : Ir.place) (t : rty) : env =
  let p = resolve_place ck env span p in
  if p.Ir.projs = [] then set_local env p.Ir.base t
  else begin
    (* weak update: find the target's declared type *)
    let t0 = get_local ck env span p.Ir.base in
    let rec go env (cur : rty) (projs : Ir.proj list) : unit =
      match (projs, cur) with
      | [], _ ->
          let tag =
            new_tag ck span
              (Format.asprintf "value of type %s does not satisfy the type %s required through this reference"
                 (to_string t) (to_string cur))
          in
          add_clauses ck (Sub.sub ck.genv.Genv.senv (cx_of env) ~tag t cur)
      | Ir.PDeref :: rest, TRef (k, t') ->
          if k = Shr then cerr span "cannot write through a shared reference";
          if rest = [] then begin
            let tag =
              new_tag ck span
                (Format.asprintf
                   "value of type %s does not satisfy the mutable reference's type %s"
                   (to_string t) (to_string t'))
            in
            add_clauses ck (Sub.sub ck.genv.Genv.senv (cx_of env) ~tag t t')
          end
          else
            let env, t'' = bind_rty ck env t' in
            go env t'' rest
      | Ir.PDeref :: _, other ->
          cerr span "cannot write through %s" (to_string other)
      | Ir.PField f :: rest, TBase (BStruct s, Ix ts) -> (
          match Hashtbl.find_opt ck.genv.Genv.senv s with
          | None -> cerr span "unknown struct %s" s
          | Some si -> (
              match List.assoc_opt f si.si_fields with
              | None -> cerr span "struct %s has no field %s" s f
              | Some fty ->
                  let m = List.map2 (fun (x, _) t -> (x, t)) si.si_params ts in
                  let fty = subst_rty m fty in
                  if rest = [] then begin
                    let tag =
                      new_tag ck span
                        (Format.asprintf
                           "value of type %s does not satisfy field type %s"
                           (to_string t) (to_string fty))
                    in
                    add_clauses ck
                      (Sub.sub ck.genv.Genv.senv (cx_of env) ~tag t fty)
                  end
                  else
                    let env, fty = bind_rty ck env fty in
                    go env fty rest))
      | Ir.PField f :: _, other ->
          cerr span "cannot access field %s of %s" f (to_string other)
    in
    go env t0 p.Ir.projs;
    env
  end

(* ------------------------------------------------------------------ *)
(* Rvalues                                                             *)
(* ------------------------------------------------------------------ *)

let ix1 span t =
  match t with
  | TBase (b, Ix [ ix ]) -> (b, ix)
  | _ -> cerr span "expected a singly-indexed value, got %s" (to_string t)

let refkind_of_mut = function Ast.Imm -> Shr | Ast.Mut -> Mut

let check_rvalue ck (env : env) span (dest : Ir.place) (rv : Ir.rvalue) :
    env * rty =
  ignore dest;
  match rv with
  | Ir.RUse op -> read_operand ck env span op
  | Ir.RRef (m, p) ->
      let p = resolve_place ck env span p in
      (env, TPtr (refkind_of_mut m, p))
  | Ir.RUn (uop, op) -> (
      let env, t = read_operand ck env span op in
      match (uop, t) with
      | Ast.Not, TBase (BBool, Ix [ r ]) ->
          (env, TBase (BBool, Ix [ Term.mk_not r ]))
      | Ast.NegOp, TBase (BInt k, Ix [ r ]) ->
          (env, TBase (BInt k, Ix [ Term.neg r ]))
      | Ast.NegOp, TBase (BFloat, _) -> (env, TBase (BFloat, Ix []))
      | _ -> cerr span "invalid operand for unary operator")
  | Ir.RBin (bop, o1, o2) -> (
      let env, t1 = read_operand ck env span o1 in
      let env, t2 = read_operand ck env span o2 in
      match (t1, t2) with
      | TBase (BFloat, _), TBase (BFloat, _) -> (
          match bop with
          | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Rem ->
              (env, TBase (BFloat, Ix []))
          | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.EqOp | Ast.NeOp ->
              (* float comparisons are unrefined booleans *)
              (env, TBase (BBool, Ex ([ (fresh_name "b", Sort.Bool) ], [])))
          | _ -> cerr span "invalid float operation")
      | TBase (BInt k, Ix [ r1 ]), TBase (BInt _, Ix [ r2 ]) -> (
          (* Lint side condition: does the current context bound the
             result within the i32 machine range? Recorded for
             post-solve evaluation, never added to the verification
             clauses. Only i32: the wider kinds' bounds exceed OCaml's
             native int. *)
          let overflow_candidate res =
            match ck.lint with
            | Some la when k = Ast.I32 ->
                let head =
                  Horn.Conc
                    (Term.mk_and
                       [
                         Term.le (Term.int (-2147483648)) res;
                         Term.le res (Term.int 2147483647);
                       ])
                in
                let msg =
                  Format.asprintf
                    "i32 arithmetic `%a` is not provably within [-2^31, \
                     2^31): possible overflow"
                    Term.pp res
                in
                la.la_overflow <-
                  (span, msg, Sub.clause (cx_of env) ~tag:0 head)
                  :: la.la_overflow
            | _ -> ()
          in
          match bop with
          | Ast.Add ->
              let res = Term.add r1 r2 in
              overflow_candidate res;
              (env, TBase (BInt k, Ix [ res ]))
          | Ast.Sub ->
              if k = Ast.Usize && !check_underflow then begin
                let tag =
                  new_tag ck span
                    (Format.asprintf
                       "usize subtraction %a - %a may underflow" Term.pp r1
                       Term.pp r2)
                in
                add_clauses ck
                  [ Sub.clause (cx_of env) ~tag (Horn.Conc (Term.le r2 r1)) ]
              end;
              let res = Term.sub r1 r2 in
              overflow_candidate res;
              (env, TBase (BInt k, Ix [ res ]))
          | Ast.Mul ->
              let res = Term.mul r1 r2 in
              overflow_candidate res;
              (env, TBase (BInt k, Ix [ res ]))
          | Ast.Div -> (env, TBase (BInt k, Ix [ Term.div r1 r2 ]))
          | Ast.Rem -> (env, TBase (BInt k, Ix [ Term.md r1 r2 ]))
          | Ast.Lt -> (env, TBase (BBool, Ix [ Term.lt r1 r2 ]))
          | Ast.Le -> (env, TBase (BBool, Ix [ Term.le r1 r2 ]))
          | Ast.Gt -> (env, TBase (BBool, Ix [ Term.gt r1 r2 ]))
          | Ast.Ge -> (env, TBase (BBool, Ix [ Term.ge r1 r2 ]))
          | Ast.EqOp -> (env, TBase (BBool, Ix [ Term.eq r1 r2 ]))
          | Ast.NeOp -> (env, TBase (BBool, Ix [ Term.ne r1 r2 ]))
          | _ -> cerr span "invalid integer operation")
      | TBase (BBool, Ix [ r1 ]), TBase (BBool, Ix [ r2 ]) -> (
          match bop with
          | Ast.EqOp -> (env, TBase (BBool, Ix [ Term.eq r1 r2 ]))
          | Ast.NeOp -> (env, TBase (BBool, Ix [ Term.ne r1 r2 ]))
          | Ast.AndOp -> (env, TBase (BBool, Ix [ Term.mk_and [ r1; r2 ] ]))
          | Ast.OrOp -> (env, TBase (BBool, Ix [ Term.mk_or [ r1; r2 ] ]))
          | _ -> cerr span "invalid boolean operation")
      | _ ->
          cerr span "invalid operands %s and %s for %s" (to_string t1)
            (to_string t2) (Ast.binop_str bop))
  | Ir.RAggregate (sname, fields) -> (
      let si =
        match Hashtbl.find_opt ck.genv.Genv.senv sname with
        | Some si -> si
        | None -> cerr span "unknown struct %s" sname
      in
      (* Determine the struct's indices: if the destination is the
         return place and the signature declares an indexed return of
         this struct, check against it (bidirectional flow, cf.
         RMat::new in fig. 4); otherwise infer indices by first-order
         matching of the field specs against the actual field types. *)
      let expected =
        if dest.Ir.base = 0 && dest.Ir.projs = [] then
          match ck.fsig.Specconv.fsg_ret with
          | TBase (BStruct s', Ix ts) when String.equal s' sname -> Some ts
          | _ -> None
        else None
      in
      let env, actuals =
        List.fold_left
          (fun (env, acc) (fname, op) ->
            let env, t = read_operand ck env span op in
            (env, (fname, t) :: acc))
          (env, []) fields
      in
      let actuals = List.rev actuals in
      let ts =
        match expected with
        | Some ts -> ts
        | None ->
            (* match field specs against actuals to solve the params *)
            let theta : (string, Term.t) Hashtbl.t = Hashtbl.create 4 in
            let rec mtch (spec : rty) (actual : rty) =
              match (spec, actual) with
              | TBase (bs, Ix ss), TBase (ba, Ix aa)
                when List.length ss = List.length aa ->
                  List.iter2
                    (fun s a ->
                      match s with
                      | Term.Var (x, _)
                        when List.mem_assoc x si.si_params
                             && not (Hashtbl.mem theta x) ->
                          Hashtbl.replace theta x a
                      | _ -> ())
                    ss aa;
                  (match (bs, ba) with
                  | BVec es, BVec ea -> mtch es ea
                  | _ -> ())
              | TRef (_, s), TRef (_, a) -> mtch s a
              | _ -> ()
            in
            List.iter
              (fun (fname, spec) ->
                match List.assoc_opt fname actuals with
                | Some actual -> mtch spec actual
                | None -> ())
              si.si_fields;
            List.map
              (fun (x, _) ->
                match Hashtbl.find_opt theta x with
                | Some t -> t
                | None ->
                    cerr span
                      "cannot infer index %s of struct %s from the field \
                       types; construct it in return position of a function \
                       with a signature"
                      x sname)
              si.si_params
      in
      let m = List.map2 (fun (x, _) t -> (x, t)) si.si_params ts in
      (* the declared struct invariant must hold at construction *)
      (match si.si_invariant with
      | Some inv ->
          let inv' = Term.subst m inv in
          let tag =
            new_tag ck span
              (Format.asprintf
                 "cannot prove the invariant %a of struct %s at construction"
                 Term.pp inv' sname)
          in
          add_clauses ck [ Sub.clause (cx_of env) ~tag (Horn.Conc inv') ]
      | None -> ());
      List.iter
        (fun (fname, spec) ->
          match List.assoc_opt fname actuals with
          | None -> cerr span "missing field %s" fname
          | Some actual ->
              let tag =
                new_tag ck span
                  (Format.asprintf "field %s: %s is not a subtype of %s" fname
                     (to_string actual)
                     (to_string (subst_rty m spec)))
              in
              add_clauses ck
                (Sub.sub ck.genv.Genv.senv (cx_of env) ~tag actual
                   (subst_rty m spec)))
        si.si_fields;
      (env, TBase (BStruct sname, Ix ts)))

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)
(* ------------------------------------------------------------------ *)

(** Read the vector behind a receiver pointer operand. Returns the
    resolved place (or [None] when the receiver sits behind an opaque
    reference, in which case strong updates are illegal), the extended
    env, the element type and the length term. *)
let read_vec_receiver ck (env : env) span (op : Ir.operand) :
    env * Ir.place option * rty * Term.t =
  let recv_place =
    match op with
    | Ir.Move p | Ir.Copy p -> p
    | Ir.Const _ -> cerr span "invalid receiver"
  in
  match IMap.find_opt recv_place.Ir.base env.locals with
  | Some (TPtr (_, target)) -> (
      let target = resolve_place ck env span target in
      (* consume the receiver temp *)
      let env =
        set_local env recv_place.Ir.base
          (TUninit (local_shape ck recv_place.Ir.base))
      in
      let strong =
        target.Ir.projs = []
        &&
        match IMap.find_opt target.Ir.base env.locals with
        | Some (TBase _) -> true
        | _ -> false
      in
      let env, t = read_place ck env span target in
      match t with
      | TBase (BVec elem, Ix [ len ]) ->
          (env, (if strong then Some target else None), elem, len)
      | _ -> cerr span "receiver is not a vector: %s" (to_string t))
  | Some t -> cerr span "expected a borrowed receiver, got %s" (to_string t)
  | None -> cerr span "receiver has no type"

(** Fresh element template for polymorphic instantiation (§4.3). If the
    candidate types already coincide syntactically the template is
    skipped — a cheap but faithful optimization (the fixpoint would
    solve it to the same thing). *)
let instantiate_elem ck (env : env) (shape : Ast.ty) (cands : rty list) span :
    rty =
  match cands with
  | [ t ] -> t
  | t0 :: rest when List.for_all (fun t -> to_string t = to_string t0) rest ->
      t0
  | _ ->
      (match shape with
      | Ast.TFloat -> TBase (BFloat, Ix [])
      | Ast.TUnit -> TBase (BUnit, Ix [])
      | _ ->
          let tmpl =
            Rty.template ck.genv.Genv.senv ~declare:(declare_kvar ck)
              ~scope:env.binders shape
          in
          List.iter
            (fun cand ->
              let tag =
                new_tag ck span
                  (Format.asprintf
                     "cannot reconcile element type %s with the instantiated \
                      template"
                     (to_string cand))
              in
              add_clauses ck (Sub.sub ck.genv.Genv.senv (cx_of env) ~tag cand tmpl))
            cands;
          tmpl)

let check_bounds ck (env : env) span ~(what : string) (idx : Term.t)
    (len : Term.t) =
  let mk msg head =
    let tag = new_tag ck span msg in
    add_clauses ck [ Sub.clause (cx_of env) ~tag (Horn.Conc head) ]
  in
  mk
    (Format.asprintf "%s: cannot prove index %a < length %a" what Term.pp idx
       Term.pp len)
    (Term.lt idx len);
  mk
    (Format.asprintf "%s: cannot prove index %a >= 0" what Term.pp idx)
    (Term.ge idx (Term.int 0))

(** Built-in refined RVec API (fig. 3 of the paper). *)
let check_vec_call ck (env : env) span (m : string) (args : Ir.operand list)
    (dest : Ir.place) : env =
  let strong_target target =
    match target with
    | Some p -> p
    | None ->
        cerr span
          "method RVec::%s requires a strong (&strg) receiver, but the \
           receiver is behind a mutable reference"
          m
  in
  match (m, args) with
  | "len", [ recv ] ->
      let env, _, _, len = read_vec_receiver ck env span recv in
      write_place ck env span dest (TBase (BInt Ast.Usize, Ix [ len ]))
  | "is_empty", [ recv ] ->
      let env, _, _, len = read_vec_receiver ck env span recv in
      write_place ck env span dest
        (TBase (BBool, Ix [ Term.eq len (Term.int 0) ]))
  | "get", [ recv; idx ] | "get_mut", [ recv; idx ] ->
      let env, _, elem, len = read_vec_receiver ck env span recv in
      let env, ti = read_operand ck env span idx in
      let _, i = ix1 span ti in
      check_bounds ck env span ~what:("RVec::" ^ m) i len;
      let kind = if m = "get" then Shr else Mut in
      write_place ck env span dest (TRef (kind, elem))
  | "swap", [ recv; i1; i2 ] ->
      let env, _, _, len = read_vec_receiver ck env span recv in
      let env, t1 = read_operand ck env span i1 in
      let env, t2 = read_operand ck env span i2 in
      let _, x1 = ix1 span t1 in
      let _, x2 = ix1 span t2 in
      check_bounds ck env span ~what:"RVec::swap (first index)" x1 len;
      check_bounds ck env span ~what:"RVec::swap (second index)" x2 len;
      write_place ck env span dest (TBase (BUnit, Ix []))
  | "push", [ recv; value ] ->
      let env, target, elem, len = read_vec_receiver ck env span recv in
      let target = strong_target target in
      let env, tv = read_operand ck env span value in
      let eshape =
        match local_shape ck target.Ir.base with
        | Ast.TVec e -> e
        | _ -> to_shape tv
      in
      let elem' = instantiate_elem ck env eshape [ elem; tv ] span in
      let elem' =
        (* a push into an empty vector need not reconcile with the old
           element type *)
        match len with
        | Term.Int 0 -> instantiate_elem ck env eshape [ tv ] span
        | _ -> elem'
      in
      let env =
        set_local env target.Ir.base
          (TBase (BVec elem', Ix [ Term.add len (Term.int 1) ]))
      in
      write_place ck env span dest (TBase (BUnit, Ix []))
  | "pop", [ recv ] ->
      let env, target, elem, len = read_vec_receiver ck env span recv in
      let target = strong_target target in
      let tag =
        new_tag ck span "RVec::pop: cannot prove the vector is non-empty"
      in
      add_clauses ck
        [ Sub.clause (cx_of env) ~tag (Horn.Conc (Term.gt len (Term.int 0))) ];
      let env =
        set_local env target.Ir.base
          (TBase (BVec elem, Ix [ Term.sub len (Term.int 1) ]))
      in
      let env, velem = bind_rty ck env elem in
      write_place ck env span dest velem
  | "clone", [ recv ] ->
      let env, _, elem, len = read_vec_receiver ck env span recv in
      write_place ck env span dest (TBase (BVec elem, Ix [ len ]))
  | _ -> cerr span "unknown RVec method %s (arity %d)" m (List.length args)

(** Syntax-directed instantiation of a user function's refinement
    parameters (§4.1): match signature argument types against actual
    argument types, unpacking top-level existentials behind references
    when needed. *)
let instantiate_params ck (env : env) span (fsig : Specconv.fsig)
    (actuals : rty list) : env * (string * Term.t) list =
  let theta : (string, Term.t) Hashtbl.t = Hashtbl.create 8 in
  let params = fsig.Specconv.fsg_params in
  let env = ref env in
  (* Unpack a top-level existential actual: it denotes a single value,
     so a fresh rigid variable is a sound instantiation witness. *)
  let unpack_actual (b : base) bs ps : rty =
    let fresh_bs, hyp_ps, b', ts = Sub.unpack ck.genv.Genv.senv b bs ps in
    env :=
      {
        !env with
        binders = !env.binders @ fresh_bs;
        hyps = !env.hyps @ hyp_ps;
      };
    TBase (b', Ix ts)
  in
  let rec mtch ~(top : bool) (spec : rty) (actual : rty) =
    match (spec, actual) with
    | TBase (_, Ix _), TBase (ba, Ex (bs, ps)) when top ->
        mtch ~top (spec) (unpack_actual ba bs ps)
    | TBase (bs, Ix ss), TBase (ba, Ix aa) when List.length ss = List.length aa
      ->
        List.iter2
          (fun s a ->
            match s with
            | Term.Var (x, _)
              when List.mem_assoc x params && not (Hashtbl.mem theta x) ->
                Hashtbl.replace theta x a
            | _ -> ())
          ss aa;
        (match (bs, ba) with BVec es, BVec ea -> mtch ~top:false es ea | _ -> ())
    | TRef (_, s), TRef (_, a) -> mtch ~top:true s a
    | TRef (_, s), TPtr (_, place) ->
        let env', a = read_place ck !env span place in
        env := env';
        mtch ~top:true s a
    | _ -> ()
  in
  List.iter2
    (fun s a -> mtch ~top:true s a)
    fsig.Specconv.fsg_args actuals;
  let m =
    List.map
      (fun (x, _) ->
        match Hashtbl.find_opt theta x with
        | Some t -> (x, t)
        | None ->
            cerr span
              "cannot instantiate refinement parameter @%s of %s from the \
               call site (it only occurs in a nested polymorphic position); \
               pass it as an explicit argument"
              x fsig.Specconv.fsg_name)
      params
  in
  (!env, m)

(** Check a call to a user-defined function against its resolved
    signature (rule T-CALL). *)
let check_user_call ck (env : env) span (fsig : Specconv.fsig)
    (args : Ir.operand list) (dest : Ir.place) : env =
  if List.length args <> List.length fsig.Specconv.fsg_args then
    cerr span "%s: expected %d arguments, got %d" fsig.Specconv.fsg_name
      (List.length fsig.Specconv.fsg_args)
      (List.length args);
  (* read all actuals (moves consume) *)
  let env, actuals =
    List.fold_left
      (fun (env, acc) op ->
        match op with
        | Ir.Move p | Ir.Copy p -> (
            (* keep pointers unresolved: we need them for strong refs *)
            match IMap.find_opt (resolve_place ck env span p).Ir.base env.locals
            with
            | Some (TPtr _ as t) when p.Ir.projs = [] ->
                let env =
                  match op with
                  | Ir.Move _ ->
                      set_local env p.Ir.base (TUninit (local_shape ck p.Ir.base))
                  | _ -> env
                in
                (env, t :: acc)
            | _ ->
                let env, t = read_operand ck env span op in
                (env, t :: acc))
        | Ir.Const _ ->
            let env, t = read_operand ck env span op in
            (env, t :: acc))
      (env, []) args
  in
  let actuals = List.rev actuals in
  (* Normalize top-level existential actuals ONCE, so that parameter
     instantiation and the subtyping checks below see the same rigid
     witness (a value has one index; two independent unpackings would
     be unrelated). *)
  let env = ref env in
  let normalize_actual (t : rty) : rty =
    match t with
    | TBase (_, Ex _) ->
        let env', t' = bind_rty ck !env t in
        env := env';
        t'
    | TRef (k, (TBase (_, Ex _) as inner)) ->
        let env', inner' = bind_rty ck !env inner in
        env := env';
        TRef (k, inner')
    | t -> t
  in
  let actuals = List.map normalize_actual actuals in
  let env = !env in
  (* instantiate refinement parameters *)
  let env, theta = instantiate_params ck env span fsig actuals in
  (* preconditions *)
  List.iter
    (fun r ->
      let r' = Term.subst theta r in
      let tag =
        new_tag ck span
          (Format.asprintf "%s: cannot prove precondition %a"
             fsig.Specconv.fsg_name Term.pp r')
      in
      add_clauses ck [ Sub.clause (cx_of env) ~tag (Horn.Conc r') ])
    fsig.Specconv.fsg_requires;
  (* argument subtyping; strong references are handled via their target *)
  let env = ref env in
  List.iteri
    (fun i (spec, actual) ->
      let spec = subst_rty theta spec in
      match (spec, actual) with
      | TRef (Strg, t_in), TPtr (_, place) ->
          let place = resolve_place ck !env span place in
          if place.Ir.projs <> [] then
            cerr span
              "%s: strong reference argument must point to an exclusively \
               owned location"
              fsig.Specconv.fsg_name;
          let env', t_a = read_place ck !env span place in
          env := env';
          let tag =
            new_tag ck span
              (Format.asprintf "%s: argument %d: %s is not a subtype of %s"
                 fsig.Specconv.fsg_name (i + 1) (to_string t_a) (to_string t_in))
          in
          add_clauses ck (Sub.sub ck.genv.Genv.senv (cx_of !env) ~tag t_a t_in);
          (* apply the ensures clause as a strong update *)
          let t_out =
            match List.assoc_opt i fsig.Specconv.fsg_ensures with
            | Some t -> subst_rty theta t
            | None -> t_in
          in
          let env', t_out = bind_rty ck !env t_out in
          env := set_local env' place.Ir.base t_out
      | TRef (Strg, _), other ->
          cerr span "%s: argument %d must be a strong reference, got %s"
            fsig.Specconv.fsg_name (i + 1) (to_string other)
      | TRef (k, t_spec), TPtr (_, place) ->
          let env', t_a = read_place ck !env span place in
          env := env';
          let tag =
            new_tag ck span
              (Format.asprintf "%s: argument %d: %s is not a subtype of %s"
                 fsig.Specconv.fsg_name (i + 1) (to_string t_a)
                 (to_string t_spec))
          in
          let cls = Sub.sub ck.genv.Genv.senv (cx_of !env) ~tag t_a t_spec in
          let cls =
            if k = Shr then cls
            else
              cls @ Sub.sub ck.genv.Genv.senv (cx_of !env) ~tag t_spec t_a
          in
          add_clauses ck cls
      | spec, actual ->
          let tag =
            new_tag ck span
              (Format.asprintf "%s: argument %d: %s is not a subtype of %s"
                 fsig.Specconv.fsg_name (i + 1) (to_string actual)
                 (to_string spec))
          in
          add_clauses ck (Sub.sub ck.genv.Genv.senv (cx_of !env) ~tag actual spec))
    (List.combine fsig.Specconv.fsg_args actuals);
  (* return value *)
  let ret = subst_rty theta fsig.Specconv.fsg_ret in
  let env', ret = bind_rty ck !env ret in
  write_place ck env' span dest ret

let check_call ck (env : env) span (func : string) (args : Ir.operand list)
    (dest : Ir.place) : env =
  if String.equal func "RVec::new" then begin
    let eshape =
      match Ir.place_ty_from ck.genv.Genv.prog (local_shape ck dest.Ir.base)
              dest.Ir.projs
      with
      | Ast.TVec e -> e
      | t -> cerr span "RVec::new at non-vector type %s" (Format.asprintf "%a" Ast.pp_ty t)
    in
    let elem =
      match eshape with
      | Ast.TFloat -> TBase (BFloat, Ix [])
      | Ast.TUnit -> TBase (BUnit, Ix [])
      | _ ->
          Rty.template ck.genv.Genv.senv ~declare:(declare_kvar ck)
            ~scope:env.binders eshape
    in
    write_place ck env span dest (TBase (BVec elem, Ix [ Term.int 0 ]))
  end
  else
    match String.index_opt func ':' with
    | Some _ when String.length func > 6 && String.sub func 0 6 = "RVec::" ->
        let m = String.sub func 6 (String.length func - 6) in
        check_vec_call ck env span m args dest
    | _ -> (
        match Genv.find_sig ck.genv func with
        | Some fsig -> check_user_call ck env span fsig args dest
        | None -> cerr span "unknown function %s" func)

(* ------------------------------------------------------------------ *)
(* Join templates                                                      *)
(* ------------------------------------------------------------------ *)

(** Index terms exported by a local's normalized type (used to build the
    per-predecessor substitution at a join). *)
let exported_indices (t : rty) : Term.t list option =
  match t with TBase (_, Ix ts) -> Some ts | _ -> None

(** Build the template environment for a join block: live locals keep
    their shape, every index becomes an existential bound by a fresh κ
    over (value, earlier join binders, signature parameters). *)
let build_template ck (bb : int) : (string * Sort.t) list * rty IMap.t =
  match Hashtbl.find_opt ck.templates bb with
  | Some t -> t
  | None ->
      let live = Liveness.live_at ck.live ~block:bb in
      let live_locals = ref [] in
      Array.iteri (fun l b -> if b then live_locals := l :: !live_locals) live;
      (* shadow locals of &strg parameters are always live *)
      Hashtbl.iter (fun l _ -> live_locals := l :: !live_locals) ck.shadow_tys;
      let live_locals = List.sort compare !live_locals in
      (* pass 1: every local's top-level binders become the join's
         ghost variables, visible to every κ (the paper's κ(b, c)) *)
      let tops =
        List.map
          (fun l ->
            if Hashtbl.mem ck.strg_args l then (l, [])
            else (l, Rty.top_binders ck.genv.Genv.senv (local_shape ck l)))
          live_locals
      in
      let binders = List.concat_map snd tops in
      (* pass 2: build each template with the full ghost scope minus the
         local's own binders (they are the κ's value slots) *)
      let locals =
        List.fold_left
          (fun acc (l, own) ->
            let others =
              List.filter (fun b -> not (List.memq b own)) binders
            in
            let scope = ck.fsig.Specconv.fsg_params @ others in
            let t =
              match Hashtbl.find_opt ck.strg_args l with
              | Some shadow ->
                  (* &strg parameters keep pointing at their shadow *)
                  TPtr (Mut, Ir.local_place shadow)
              | None ->
                  (* record which κs belong to this join's template so
                     the trivial-refinement lint can ask whether they
                     all collapsed to [true] *)
                  let declare kv =
                    (match ck.lint with
                    | Some la ->
                        let prev =
                          Option.value ~default:[]
                            (Hashtbl.find_opt la.la_join_kvars bb)
                        in
                        Hashtbl.replace la.la_join_kvars bb
                          (kv.Horn.kname :: prev)
                    | None -> ());
                    declare_kvar ck kv
                  in
                  Rty.template ck.genv.Genv.senv ~declare ~scope ~top:own
                    (local_shape ck l)
            in
            IMap.add l t acc)
          IMap.empty tops
      in
      let result = (binders, locals) in
      Hashtbl.replace ck.templates bb result;
      result

(** Emit the context-inclusion constraints Γ ⊢ T_bb for a jump from an
    environment into a join block (rule T-JUMP / phase 2 of §4.2). *)
let flow_into_join ck (env : env) span (bb : int) : unit =
  let tmpl_binders, tmpl_locals = build_template ck bb in
  (* per-predecessor substitution: template binders := actual indices *)
  let subst =
    IMap.fold
      (fun l t acc ->
        match t with
        | TBase (_, Ex (bs, _)) -> (
            match IMap.find_opt l env.locals with
            | Some actual -> (
                match exported_indices actual with
                | Some ts when List.length ts = List.length bs ->
                    List.map2 (fun (x, _) t -> (x, t)) bs ts @ acc
                | _ -> acc)
            | None -> acc)
        | _ -> acc)
      tmpl_locals []
  in
  ignore tmpl_binders;
  IMap.iter
    (fun l tmpl ->
      match IMap.find_opt l env.locals with
      | None ->
          cerr span "internal: live local %s has no type at a join"
            (local_name ck l)
      | Some actual -> (
          match (actual, tmpl) with
          | TPtr (_, p1), TPtr (_, p2) when p1 = p2 -> ()
          | TPtr _, _ ->
              cerr span
                "a borrow with a statically-known target is live at a join \
                 point; this is not supported"
          | TUninit _, _ ->
              cerr span "a possibly-uninitialized local is live at a join"
          | _ ->
              let tmpl = subst_rty subst tmpl in
              let tag =
                new_tag ck span
                  (Format.asprintf
                     "at join bb%d, local %s: %s does not flow into the \
                      inferred invariant"
                     bb (local_name ck l) (to_string actual))
              in
              add_clauses ck
                (Sub.sub ck.genv.Genv.senv (cx_of env) ~tag actual tmpl)))
    tmpl_locals

(** Entry environment of a join block: bind the template, keeping
    binder names (they are globally fresh, and later locals' κ
    applications refer to earlier locals' binders). *)
let join_entry_env ck (bb : int) : env =
  let _, tmpl_locals = build_template ck bb in
  let env =
    ref
      {
        binders = ck.fsig.Specconv.fsg_params;
        hyps = [];
        locals = IMap.empty;
      }
  in
  (* signature preconditions still hold for the parameters in scope *)
  env :=
    { !env with
      hyps = List.map (fun r -> Horn.Conc r) ck.fsig.Specconv.fsg_requires };
  IMap.iter
    (fun l t ->
      match t with
      | TBase (b, Ex (bs, ps)) ->
          let ts = List.map (fun (x, s) -> Term.Var (x, s)) bs in
          let invs =
            List.map
              (fun p -> Horn.Conc p)
              (index_invariants ck.genv.Genv.senv b ts)
          in
          env :=
            {
              binders = !env.binders @ bs;
              hyps = !env.hyps @ ps @ invs;
              locals = IMap.add l (TBase (b, Ix ts)) !env.locals;
            }
      | t -> env := { !env with locals = IMap.add l t !env.locals })
    tmpl_locals;
  !env

(* ------------------------------------------------------------------ *)
(* Statements and terminators                                          *)
(* ------------------------------------------------------------------ *)

let check_stmt ck (env : env) (s : Ir.stmt) : env =
  match s with
  | Ir.SNop | Ir.SInvariant _ -> env (* Prusti annotations are inert here *)
  | Ir.SAssign (dest, rv, span) ->
      let env, t = check_rvalue ck env span dest rv in
      write_place ck env span dest t

(** Path condition of a switch operand. *)
let switch_cond ck (env : env) span (op : Ir.operand) : env * Term.t =
  let env, t = read_operand ck env span op in
  match t with
  | TBase (BBool, Ix [ r ]) -> (env, r)
  | TBase (BBool, Ex _) ->
      let env, t' = bind_rty ck env t in
      (match t' with
      | TBase (BBool, Ix [ r ]) -> (env, r)
      | _ -> cerr span "switch on non-boolean")
  | _ -> cerr span "switch on non-boolean %s" (to_string t)

(* ------------------------------------------------------------------ *)
(* Per-function driver                                                 *)
(* ------------------------------------------------------------------ *)

let is_join ck preds bb =
  List.length preds.(bb) > 1 || ck.body.Ir.mb_loop_heads.(bb)

let flow ck preds (env : env) span (succ : int) : unit =
  if is_join ck preds succ then flow_into_join ck env span succ
  else Hashtbl.replace ck.pending succ env

let check_return ck (env : env) span : unit =
  let ret_t = get_local ck env span 0 in
  (match ret_t with
  | TUninit _ -> cerr span "return place is uninitialized at return"
  | _ -> ());
  let tag =
    new_tag ck span
      (Format.asprintf "return value %s does not satisfy the declared return \
                        type %s"
         (to_string ret_t)
         (to_string ck.fsig.Specconv.fsg_ret))
  in
  add_clauses ck
    (Sub.sub ck.genv.Genv.senv (cx_of env) ~tag ret_t ck.fsig.Specconv.fsg_ret);
  (* strong-reference parameters must satisfy their ensured types *)
  List.iteri
    (fun i spec_arg ->
      match spec_arg with
      | TRef (Strg, t_in) ->
          let t_out =
            match List.assoc_opt i ck.fsig.Specconv.fsg_ensures with
            | Some t -> t
            | None -> t_in
          in
          let arg_local = i + 1 in
          (match IMap.find_opt arg_local env.locals with
          | Some (TPtr (_, place)) ->
              let env', t_cur = read_place ck env span place in
              let tag =
                new_tag ck span
                  (Format.asprintf
                     "at return, strong reference %s has type %s, which does \
                      not satisfy the ensured type %s"
                     ck.body.Ir.mb_locals.(arg_local).Ir.ld_name
                     (to_string t_cur) (to_string t_out))
              in
              add_clauses ck
                (Sub.sub ck.genv.Genv.senv (cx_of env') ~tag t_cur t_out)
          | _ ->
              cerr span "strong reference parameter was moved or overwritten")
      | _ -> ())
    ck.fsig.Specconv.fsg_args

let check_terminator ck preds (env : env) (t : Ir.terminator) : unit =
  let span = ck.body.Ir.mb_span in
  match t with
  | Ir.TGoto s -> flow ck preds env span s
  | Ir.TSwitch (op, s_then, s_else) ->
      let env, r = switch_cond ck env span op in
      flow ck preds { env with hyps = env.hyps @ [ Horn.Conc r ] } span s_then;
      flow ck preds
        { env with hyps = env.hyps @ [ Horn.Conc (Term.mk_not r) ] }
        span s_else
  | Ir.TCall { tc_func; tc_args; tc_dest; tc_target; tc_span } ->
      let env' = check_call ck env tc_span tc_func tc_args tc_dest in
      flow ck preds env' tc_span tc_target
  | Ir.TReturn -> check_return ck env span
  | Ir.TUnreachable ->
      (* reachable `unreachable` (e.g. a failed assert!): prove the path
         infeasible *)
      let tag = new_tag ck span "cannot prove this assertion/unreachable code" in
      add_clauses ck [ Sub.clause (cx_of env) ~tag (Horn.Conc Term.ff) ]

(** Initial environment from the function's signature (rule T-DEF). *)
let initial_env ck : env =
  let env =
    ref
      {
        binders = ck.fsig.Specconv.fsg_params;
        hyps = List.map (fun r -> Horn.Conc r) ck.fsig.Specconv.fsg_requires;
        locals = IMap.empty;
      }
  in
  (* return place *)
  env := set_local !env 0 (TUninit (Ir.local_ty ck.body 0));
  (* arguments *)
  List.iteri
    (fun i spec_arg ->
      let l = i + 1 in
      match spec_arg with
      | TRef (Strg, t_in) ->
          let pointee_shape =
            match Ir.local_ty ck.body l with
            | Ast.TRef (_, inner) -> inner
            | t -> t
          in
          let shadow = new_shadow ck pointee_shape in
          Hashtbl.replace ck.strg_args l shadow;
          let env', t_in = bind_rty ck !env t_in in
          env := set_local env' shadow t_in;
          env := set_local !env l (TPtr (Mut, Ir.local_place shadow))
      | t ->
          let env', t' = bind_rty ck !env t in
          env := set_local env' l t')
    ck.fsig.Specconv.fsg_args;
  (* all other locals start uninitialized *)
  Array.iteri
    (fun l _ ->
      if not (IMap.mem l !env.locals) then
        env := set_local !env l (TUninit (Ir.local_ty ck.body l)))
    ck.body.Ir.mb_locals;
  !env

(** A function's checked-but-unsolved state: the constraint system the
    walk produced (or the errors that aborted it), plus everything
    needed to map solver failures back to source spans. Splitting the
    check here lets the engine pool constraint generation and fixpoint
    solving separately — in particular, to schedule the solve's SCC
    slices across functions. *)
type prepared = {
  pr_name : string;
  pr_kvars : Horn.kvar list;
  pr_clauses : Horn.clause list;
  pr_tags : (int, Ast.span * string) Hashtbl.t;
  pr_span : Ast.span;  (** body span, the fallback for unknown tags *)
  pr_lint : lint_info option;
  pr_early : error list option;
      (** [Some errors] when generation itself failed (parse-level
          check errors, spec errors): there is nothing to solve *)
  pr_gen_s : float;
}

let prepared_name pr = pr.pr_name
let prepared_early pr = pr.pr_early <> None
let prepared_kvars pr = pr.pr_kvars
let prepared_clauses pr = pr.pr_clauses
let prepared_lint pr = pr.pr_lint

let prepare_core ~(lint : bool) (genv : Genv.t) (fd : Ast.fn_def)
    (body : Ir.body) : prepared =
  let t0 = Unix.gettimeofday () in
  (* Per-function determinism: every check draws fresh names (and κ
     names) from zero, so the constraints — and the report — are a
     pure function of (genv, fd, body), independent of check order or
     of which domain runs the check. Signature-era binders cannot be
     captured: [Sub.unpack] renames them and [Sub.sub] substitutes
     them away before they reach any context. *)
  Rty.reset_fresh ();
  let fsig =
    match Genv.find_sig genv fd.Ast.fn_name with
    | Some s -> s
    | None -> Specconv.default_sig fd
  in
  let ck =
    {
      genv;
      body;
      live = Liveness.compute body;
      fsig;
      clauses = [];
      kvars = [];
      tags = Hashtbl.create 64;
      next_tag = 0;
      errors = [];
      shadow_tys = Hashtbl.create 4;
      next_shadow = Array.length body.Ir.mb_blocks + Array.length body.Ir.mb_locals + 1000;
      strg_args = Hashtbl.create 4;
      templates = Hashtbl.create 8;
      pending = Hashtbl.create 16;
      lint =
        (if lint then
           Some
             {
               la_precond = [];
               la_blocks = [];
               la_dead = [];
               la_join_kvars = Hashtbl.create 8;
               la_overflow = [];
             }
         else None);
    }
  in
  let lint_result () =
    Option.map
      (fun la ->
        {
          li_precond = la.la_precond;
          li_blocks = List.rev la.la_blocks;
          li_dead_blocks = List.rev la.la_dead;
          li_join_kvars =
            Hashtbl.fold
              (fun bb ks acc -> (bb, List.rev ks) :: acc)
              la.la_join_kvars []
            |> List.sort compare;
          li_overflow = List.rev la.la_overflow;
          li_kvars = ck.kvars;
        })
      ck.lint
  in
  let prepared early =
    Profile.add "check.clauses" (List.length ck.clauses);
    Profile.add "check.kvars" (List.length ck.kvars);
    {
      pr_name = fd.Ast.fn_name;
      pr_kvars = ck.kvars;
      pr_clauses = List.rev ck.clauses;
      pr_tags = ck.tags;
      pr_span = body.Ir.mb_span;
      pr_lint = lint_result ();
      pr_early = early;
      pr_gen_s = Unix.gettimeofday () -. t0;
    }
  in
  try
    let preds = Ir.predecessors body in
    let entry_env = initial_env ck in
    Option.iter
      (fun la -> la.la_precond <- conc_hyps entry_env)
      ck.lint;
    let rpo = Ir.reverse_postorder body in
    List.iter
      (fun bb ->
        let env_opt =
          if bb = 0 && not (is_join ck preds 0) then Some entry_env
          else if is_join ck preds bb then begin
            if bb = 0 then flow_into_join ck entry_env body.Ir.mb_span 0;
            Some (join_entry_env ck bb)
          end
          else Hashtbl.find_opt ck.pending bb
        in
        match env_opt with
        | None ->
            (* unreachable block *)
            Option.iter (fun la -> la.la_dead <- bb :: la.la_dead) ck.lint
        | Some env ->
            Option.iter
              (fun la -> la.la_blocks <- (bb, conc_hyps env) :: la.la_blocks)
              ck.lint;
            let blk = body.Ir.mb_blocks.(bb) in
            let env = List.fold_left (check_stmt ck) env blk.Ir.stmts in
            check_terminator ck preds env blk.Ir.term)
      rpo;
    prepared None
  with
  | Check_error (msg, span) ->
      prepared
        (Some
           [
             {
               err_fn = fd.Ast.fn_name;
               err_span = span;
               err_msg = msg;
               err_witness = None;
             };
           ])
  | Rty.Type_error msg | Specconv.Spec_error msg ->
      prepared
        (Some
           [
             {
               err_fn = fd.Ast.fn_name;
               err_span = fd.Ast.fn_span;
               err_msg = msg;
               err_witness = None;
             };
           ])

let prepare ?(lint = false) (genv : Genv.t) (fd : Ast.fn_def) (body : Ir.body)
    : prepared =
  Profile.with_fn fd.Ast.fn_name @@ fun () ->
  Profile.time "check.fn_s" @@ fun () -> prepare_core ~lint genv fd body

(** Turn a prepared function plus its solver verdict into a report:
    map failing tags back to source spans. [solve_s] is the wall-clock
    the solve took (added to the generation time for [fr_time]). *)
let finish ?(solve_s = 0.) ?(certify = false) (pr : prepared)
    (result : Solve.result option) : fn_report =
  let mk errors solution =
    {
      fr_name = pr.pr_name;
      fr_errors = errors;
      fr_solution = solution;
      fr_kvars = List.length pr.pr_kvars;
      fr_clauses = List.length pr.pr_clauses;
      fr_time = pr.pr_gen_s +. solve_s;
    }
  in
  match pr.pr_early with
  | Some errors -> mk errors None
  | None -> (
      match result with
      | None -> mk [] None
      | Some (Solve.Sat sol) -> mk [] (Some sol)
      | Some (Solve.Unsat (fails, sol)) ->
          let errors =
            List.map
              (fun (f : Solve.failure) ->
                let span, msg =
                  match Hashtbl.find_opt pr.pr_tags f.Solve.f_tag with
                  | Some x -> x
                  | None -> (pr.pr_span, "unknown obligation")
                in
                let witness =
                  if certify then begin
                    let w =
                      Solver.counterexample
                        (Term.mk_imp f.Solve.f_lhs f.Solve.f_rhs)
                    in
                    if w <> None then Profile.incr "cert.cex";
                    w
                  end
                  else None
                in
                {
                  err_fn = pr.pr_name;
                  err_span = span;
                  err_msg = msg;
                  err_witness = witness;
                })
              fails
          in
          mk errors (Some sol))

let check_body_gen ~(lint : bool) (genv : Genv.t) (fd : Ast.fn_def)
    (body : Ir.body) : fn_report * lint_info option =
  let pr = prepare ~lint genv fd body in
  if pr.pr_early <> None then (finish pr None, pr.pr_lint)
  else
    let t0 = Unix.gettimeofday () in
    let result =
      Profile.with_fn fd.Ast.fn_name @@ fun () ->
      Solve.solve_clauses ~kvars:pr.pr_kvars pr.pr_clauses
    in
    let solve_s = Unix.gettimeofday () -. t0 in
    (finish ~solve_s pr (Some result), pr.pr_lint)

let check_body (genv : Genv.t) (fd : Ast.fn_def) (body : Ir.body) : fn_report =
  fst (check_body_gen ~lint:false genv fd body)

let check_body_lint (genv : Genv.t) (fd : Ast.fn_def) (body : Ir.body) :
    fn_report * lint_info =
  match check_body_gen ~lint:true genv fd body with
  | fr, Some li -> (fr, li)
  | _, None -> assert false

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

type report = {
  rp_fns : fn_report list;
  rp_time : float;
}

let report_ok (r : report) = List.for_all fn_ok r.rp_fns

let report_errors (r : report) =
  List.concat_map (fun fr -> fr.fr_errors) r.rp_fns

let check_program_ast (prog : Ast.program) : report =
  let t0 = Unix.gettimeofday () in
  let genv = Genv.build prog in
  let fns =
    List.filter_map
      (fun (fd : Ast.fn_def) ->
        if fd.Ast.fn_trusted then None
        else
          match Genv.find_body genv fd.Ast.fn_name with
          | Some body -> Some (check_body genv fd body)
          | None -> None)
      (Ast.program_fns prog)
  in
  { rp_fns = fns; rp_time = Unix.gettimeofday () -. t0 }

(** Parse, typecheck, lower and refine-check a source string. *)
let check_source (src : string) : report =
  let prog = Flux_syntax.Parser.parse_program src in
  Flux_syntax.Typeck.check_program prog;
  check_program_ast prog
