(** The Flux refinement checker — the algorithmic system of §4 of the
    paper, over MIR.

    Typical use:
    {[
      let report = Checker.check_source source_text in
      if Checker.report_ok report then print_endline "verified"
      else
        List.iter
          (fun e -> Format.printf "%a@." Checker.pp_error e)
          (Checker.report_errors report)
    ]} *)

module Ast = Flux_syntax.Ast

(** A verification error, mapped back to a source span. [err_witness]
    (present under [--certify]) is a falsifying assignment for the
    failed obligation's constraint variables, verified by ground
    evaluation before being attached. *)
type error = {
  err_fn : string;
  err_span : Ast.span;
  err_msg : string;
  err_witness : (string * Flux_smt.Eval.value) list option;
}

val pp_error : Format.formatter -> error -> unit

(** Per-function result: errors (empty = verified), the inferred κ
    solution, and constraint statistics. *)
type fn_report = {
  fr_name : string;
  fr_errors : error list;
  fr_solution : Flux_fixpoint.Solve.solution option;
  fr_kvars : int;  (** κ variables created (joins + instantiations) *)
  fr_clauses : int;  (** flat Horn clauses generated *)
  fr_time : float;  (** seconds, including fixpoint solving *)
}

val fn_ok : fn_report -> bool

exception Check_error of string * Ast.span
(** Raised for structural problems (ill-formed specs, unsupported
    constructs); refinement failures are reported in [fn_report]
    instead. [check_body] converts this exception into an error report;
    it can still escape from programs that fail before checking
    starts. *)

val check_underflow : bool ref
(** Check that usize subtractions cannot underflow (default [true]; see
    DESIGN.md decision 6). *)

(** Whole-program report. *)
type report = { rp_fns : fn_report list; rp_time : float }

val report_ok : report -> bool
val report_errors : report -> error list

val check_body : Genv.t -> Ast.fn_def -> Flux_mir.Ir.body -> fn_report
(** Check one lowered function against its resolved signature. *)

(** Facts recorded for the lint passes as the checker walks a body (see
    [lib/analysis]). Recording never adds clauses or tags, so the
    [fn_report] of a lint run is identical to a plain run's. *)
type lint_info = {
  li_precond : Flux_smt.Term.t list;
      (** the assumed entry context: resolved preconditions plus
          argument index invariants (unsat = vacuous spec) *)
  li_blocks : (int * Flux_smt.Term.t list) list;
      (** per checked block: the concrete (κ-free) entry hypotheses —
          unsat implies the block is unreachable *)
  li_dead_blocks : int list;
      (** blocks the checker never flowed into (structurally dead) *)
  li_join_kvars : (int * string list) list;
      (** per join block: κ names declared for its template *)
  li_overflow :
    (Ast.span * string * Flux_fixpoint.Horn.clause) list;
      (** machine-int range side conditions, for
          {!Flux_fixpoint.Solve.check_clause} under [fr_solution] *)
  li_kvars : Flux_fixpoint.Horn.kvar list;
      (** all κ declarations of the body (for clause evaluation) *)
}

val check_body_lint :
  Genv.t -> Ast.fn_def -> Flux_mir.Ir.body -> fn_report * lint_info
(** Like {!check_body}, with the lint side channel enabled. *)

(** {2 Split-phase checking}

    The engine schedules constraint generation and fixpoint solving as
    separate pool tasks (the latter one SCC slice at a time, see
    {!Flux_fixpoint.Solve}): {!prepare} walks the body and returns the
    constraint system, {!finish} turns the solver's verdict into the
    report {!check_body} would have produced. *)

type prepared
(** A checked-but-unsolved function: its constraint system, or the
    errors that aborted generation. *)

val prepare : ?lint:bool -> Genv.t -> Ast.fn_def -> Flux_mir.Ir.body -> prepared
(** Walk one lowered function and generate its constraints
    ([lint] defaults to [false]). Never raises {!Check_error} for
    per-function problems — those surface as early errors in the
    resulting report. *)

val prepared_name : prepared -> string
val prepared_early : prepared -> bool
(** Whether generation failed; if [true] there is nothing to solve. *)

val prepared_kvars : prepared -> Flux_fixpoint.Horn.kvar list
val prepared_clauses : prepared -> Flux_fixpoint.Horn.clause list
val prepared_lint : prepared -> lint_info option

val finish :
  ?solve_s:float ->
  ?certify:bool ->
  prepared ->
  Flux_fixpoint.Solve.result option ->
  fn_report
(** Map the solver verdict back to source spans ([None] only for early
    failures). [solve_s] is added to the generation time in [fr_time].
    With [~certify:true], each failure additionally gets a verified
    counterexample assignment in [err_witness] (when the solver can
    produce one). *)

val check_program_ast : Ast.program -> report
(** Check every non-trusted function of a parsed, typechecked program. *)

val check_source : string -> report
(** Parse, typecheck, lower and refine-check a source string. Raises the
    frontend's exceptions ({!Flux_syntax.Parser.Error},
    {!Flux_syntax.Typeck.Error}, {!Flux_syntax.Lexer.Error}) on
    ill-formed input. *)
