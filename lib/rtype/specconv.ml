(** Conversion from the surface specification language (attributes
    parsed into {!Flux_syntax.Ast.rty}/[rexpr]) into internal refinement
    types and SMT terms, including resolution of [@binder] refinement
    parameters and function-signature assembly. *)

open Flux_smt
open Flux_fixpoint
open Rty
module Ast = Flux_syntax.Ast

exception Spec_error of string

let serr fmt = Format.kasprintf (fun s -> raise (Spec_error s)) fmt

type cx = {
  senv : struct_env;
  mutable params : (string * Sort.t) list;  (** collected [@binders] *)
  mutable scope : (string * Sort.t) list;  (** value binders, invariants *)
}

let make_cx senv = { senv; params = []; scope = [] }

let lookup_sort cx x =
  match List.assoc_opt x cx.scope with
  | Some s -> Some s
  | None -> List.assoc_opt x cx.params

(* ------------------------------------------------------------------ *)
(* Refinement expressions → terms                                      *)
(* ------------------------------------------------------------------ *)

let rec conv_term (cx : cx) (e : Ast.expr) : Term.t =
  match e.Ast.e with
  | Ast.EInt n -> Term.int n
  | Ast.EBool b -> Term.Bool b
  | Ast.EFloat f -> Term.real f
  | Ast.EUnit -> serr "unit value in refinement"
  | Ast.EVar x -> (
      match lookup_sort cx x with
      | Some s -> Term.Var (x, s)
      | None -> serr "unbound refinement variable %s" x)
  | Ast.EBin (op, a, b) -> (
      let ta = conv_term cx a and tb = conv_term cx b in
      match op with
      | Ast.Add -> Term.add ta tb
      | Ast.Sub -> Term.sub ta tb
      | Ast.Mul -> Term.mul ta tb
      | Ast.Div -> Term.div ta tb
      | Ast.Rem -> Term.md ta tb
      | Ast.Lt -> Term.lt ta tb
      | Ast.Le -> Term.le ta tb
      | Ast.Gt -> Term.gt ta tb
      | Ast.Ge -> Term.ge ta tb
      | Ast.EqOp -> Term.eq ta tb
      | Ast.NeOp -> Term.ne ta tb
      | Ast.AndOp -> Term.mk_and [ ta; tb ]
      | Ast.OrOp -> Term.mk_or [ ta; tb ]
      | Ast.ImpOp -> Term.mk_imp ta tb)
  | Ast.EUn (Ast.Not, a) -> Term.mk_not (conv_term cx a)
  | Ast.EUn (Ast.NegOp, a) -> Term.neg (conv_term cx a)
  | Ast.EIf (c, t, f) -> (
      match ((t : Ast.block), f) with
      | { stmts = []; tail = Some te; _ }, Some { stmts = []; tail = Some fe; _ }
        ->
          Term.ite (conv_term cx c) (conv_term cx te) (conv_term cx fe)
      | _ -> serr "only simple if-expressions are allowed in refinements")
  | _ -> serr "unsupported refinement expression: %a" Ast.pp_expr e

(* ------------------------------------------------------------------ *)
(* Refined types                                                       *)
(* ------------------------------------------------------------------ *)

let conv_base (cx : cx) conv_rty (b : Ast.rbase) : base =
  match b with
  | Ast.RBInt k -> BInt k
  | Ast.RBFloat -> BFloat
  | Ast.RBBool -> BBool
  | Ast.RBUnit -> BUnit
  | Ast.RBVec elt -> BVec (conv_rty cx elt)
  | Ast.RBStruct s ->
      if not (Hashtbl.mem cx.senv s) then serr "unknown struct %s in spec" s;
      BStruct s
  | Ast.RBParam x ->
      serr "type parameter %s is only allowed in built-in library signatures" x

let conv_index (cx : cx) (sort : Sort.t) (ix : Ast.index) : Term.t =
  match ix with
  | Ast.IxBinder n ->
      (match List.assoc_opt n cx.params with
      | Some s ->
          if not (Sort.equal s sort) then
            serr "binder @%s used at two different sorts" n
      | None -> cx.params <- cx.params @ [ (n, sort) ]);
      Term.Var (n, sort)
  | Ast.IxExpr e -> conv_term cx e

let rec conv_rty (cx : cx) (t : Ast.rty) : rty =
  match t with
  | Ast.RBase (b, []) ->
      let b' = conv_base cx conv_rty b in
      (match b' with
      | BFloat -> TBase (BFloat, Ix [])
      | BUnit -> TBase (BUnit, Ix [])
      | _ ->
          let sorts = index_sorts cx.senv b' in
          let binders = List.map (fun s -> (fresh_name "v", s)) sorts in
          TBase (b', Ex (binders, [])))
  | Ast.RBase (b, idxs) ->
      let b' = conv_base cx conv_rty b in
      let sorts = index_sorts cx.senv b' in
      if List.length sorts <> List.length idxs then
        serr "wrong number of indices for %a" pp_base b';
      let ts = List.map2 (conv_index cx) sorts idxs in
      TBase (b', Ix ts)
  | Ast.RExists (v, b, p) ->
      let b' = conv_base cx conv_rty b in
      (match index_sorts cx.senv b' with
      | [ s ] ->
          let saved = cx.scope in
          cx.scope <- (v, s) :: cx.scope;
          let pred = conv_term cx p in
          cx.scope <- saved;
          TBase (b', Ex ([ (v, s) ], [ Horn.Conc pred ]))
      | _ ->
          serr "existential refinement requires a singly-indexed base, got %a"
            pp_base b')
  | Ast.RRef (k, inner) ->
      let kind =
        match k with Ast.RShr -> Shr | Ast.RMut -> Mut | Ast.RStrg -> Strg
      in
      TRef (kind, conv_rty cx inner)
  | Ast.RFn _ -> serr "function types are not first-class"

(* ------------------------------------------------------------------ *)
(* Function signatures                                                 *)
(* ------------------------------------------------------------------ *)

type fsig = {
  fsg_name : string;
  fsg_params : (string * Sort.t) list;  (** refinement parameters *)
  fsg_args : rty list;
  fsg_requires : Term.t list;
  fsg_ret : rty;
  fsg_ensures : (int * rty) list;
      (** argument position → updated type after return (strg refs) *)
}

(** A fully-unrefined signature for functions without a Flux spec. *)
let default_sig (fd : Ast.fn_def) : fsig =
  {
    fsg_name = fd.Ast.fn_name;
    fsg_params = [];
    fsg_args = List.map (fun (_, t) -> of_plain_ty t) fd.Ast.fn_params;
    fsg_requires = [];
    fsg_ret = of_plain_ty fd.Ast.fn_ret;
    fsg_ensures = [];
  }

(** Resolve a parsed [#[lr::sig(...)]] against the function's plain
    parameter list. *)
let resolve_sig (senv : struct_env) (fd : Ast.fn_def) : fsig =
  (* Start each signature's fresh-name stream at zero: resolved
     signatures (and hence their fingerprints in the incremental
     cache) depend only on the function's own spec text, not on how
     many names earlier signatures consumed. Binder-name collisions
     across signatures are harmless — see [Rty.fresh_name]. *)
  reset_fresh ();
  match fd.Ast.fn_sig with
  | None -> default_sig fd
  | Some s ->
      let cx = make_cx senv in
      if List.length s.Ast.fs_args <> List.length fd.Ast.fn_params then
        serr "signature of %s has %d argument types but the function has %d"
          fd.Ast.fn_name
          (List.length s.Ast.fs_args)
          (List.length fd.Ast.fn_params);
      let args = List.map (conv_rty cx) s.Ast.fs_args in
      let ret = conv_rty cx s.Ast.fs_ret in
      let requires = List.map (conv_term cx) s.Ast.fs_requires in
      let ensures =
        List.map
          (fun (name, t) ->
            let pos =
              let rec find i = function
                | [] -> serr "ensures clause mentions unknown parameter %s" name
                | (x, _) :: _ when String.equal x name -> i
                | _ :: rest -> find (i + 1) rest
              in
              find 0 fd.Ast.fn_params
            in
            (pos, conv_rty cx t))
          s.Ast.fs_ensures
      in
      {
        fsg_name = fd.Ast.fn_name;
        fsg_params = cx.params;
        fsg_args = args;
        fsg_requires = requires;
        fsg_ret = ret;
        fsg_ensures = ensures;
      }

(* ------------------------------------------------------------------ *)
(* Structs                                                             *)
(* ------------------------------------------------------------------ *)

(** Resolve a struct definition. [senv] may already contain the other
    structs (struct types can mention each other in fields). *)
let resolve_struct (senv : struct_env) (sd : Ast.struct_def) : struct_info =
  (* Same per-declaration reset as [resolve_sig]. *)
  reset_fresh ();
  let cx = make_cx senv in
  cx.params <- sd.Ast.st_refined_by;
  let fields =
    List.map
      (fun (f : Ast.field_def) ->
        let t =
          match f.Ast.fd_rty with
          | Some rt -> conv_rty cx rt
          | None -> of_plain_ty f.Ast.fd_ty
        in
        (f.Ast.fd_name, t))
      sd.Ast.st_fields
  in
  let invariant = Option.map (conv_term cx) sd.Ast.st_invariant in
  if List.length cx.params <> List.length sd.Ast.st_refined_by then
    serr "field specifications of %s introduce new binders" sd.Ast.st_name;
  {
    si_name = sd.Ast.st_name;
    si_params = sd.Ast.st_refined_by;
    si_fields = fields;
    si_invariant = invariant;
  }

let build_struct_env (prog : Ast.program) : struct_env =
  let senv : struct_env = Hashtbl.create 8 in
  (* two passes so that struct fields can reference other structs *)
  List.iter
    (fun sd ->
      Hashtbl.replace senv sd.Ast.st_name
        {
          si_name = sd.Ast.st_name;
          si_params = sd.Ast.st_refined_by;
          si_fields = [];
          si_invariant = None;
        })
    (Ast.program_structs prog);
  List.iter
    (fun sd -> Hashtbl.replace senv sd.Ast.st_name (resolve_struct senv sd))
    (Ast.program_structs prog);
  senv
