(** Refinement types (the τ of §3.1), in the normalized representation
    used by the checker.

    A base type carries either a concrete tuple of index terms
    ([Ix ts], the paper's B⟨r⟩) or an existential package
    ([Ex (binders, preds)], the paper's {v. B⟨v⟩ | r}) whose predicates
    may be unknown κ applications — that is how join/instantiation
    templates are represented (§4.2–4.3). The environment keeps
    location types in [Ix] form by eagerly unpacking existentials into
    fresh rigid variables, exactly as the implementation described in
    §4.1 ("Flux introduces a fresh refinement variable as soon as an
    existential type goes into the context"); [Ex] survives only inside
    container element positions and in function signatures.

    Borrows whose target the checker knows are [TPtr] (the paper's
    ptr(ℓ) strong pointers); borrows received from callees or callers
    are opaque [TRef]s permitting weak updates only. *)

open Flux_smt
open Flux_fixpoint
module Ast = Flux_syntax.Ast
module Ir = Flux_mir.Ir

type refkind = Shr | Mut | Strg

type rty =
  | TBase of base * refinement
  | TRef of refkind * rty
  | TPtr of refkind * Ir.place  (** strong pointer to a known location *)
  | TUninit of Ast.ty  (** moved-out or not-yet-initialized memory *)

and base =
  | BInt of Ast.int_kind
  | BBool
  | BFloat
  | BUnit
  | BVec of rty  (** element type; the single index is the length *)
  | BStruct of string

and refinement =
  | Ix of Term.t list
  | Ex of (string * Sort.t) list * Horn.pred list

exception Type_error of string

let terr fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Fresh names                                                         *)
(* ------------------------------------------------------------------ *)

(* Domain-local so parallel per-function checks draw from independent
   streams; the checker additionally resets the counter at each
   function entry, making generated names (and thus κ names, clauses
   and reports) deterministic regardless of which domain runs the
   check. Collisions between the binder names of different signatures
   are harmless: existential binders are always renamed ([Sub.unpack])
   or substituted away ([Sub.sub]) before they can meet a context. *)
let counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let reset_fresh () = Domain.DLS.get counter := 0

let fresh_name prefix =
  let c = Domain.DLS.get counter in
  incr c;
  Printf.sprintf "%s!%d" prefix !c

(* ------------------------------------------------------------------ *)
(* Index sorts and invariants                                          *)
(* ------------------------------------------------------------------ *)

type struct_info = {
  si_name : string;
  si_params : (string * Sort.t) list;  (** from [#[lr::refined_by]] *)
  si_fields : (string * rty) list;  (** field types, params free *)
  si_invariant : Term.t option;  (** over the params *)
}

type struct_env = (string, struct_info) Hashtbl.t

(** Sorts of the index tuple of a base. *)
let index_sorts (senv : struct_env) (b : base) : Sort.t list =
  match b with
  | BInt _ -> [ Sort.Int ]
  | BBool -> [ Sort.Bool ]
  | BFloat | BUnit -> []
  | BVec _ -> [ Sort.Int ]
  | BStruct s -> (
      match Hashtbl.find_opt senv s with
      | Some si -> List.map snd si.si_params
      | None -> terr "unknown struct %s" s)

(** Invariants assumed of a base's indices (cf. design decision 4 in
    DESIGN.md): [usize] values and vector lengths are non-negative, and
    user structs may declare an [#[lr::invariant]]. *)
let index_invariants (senv : struct_env) (b : base) (ts : Term.t list) :
    Term.t list =
  match (b, ts) with
  | BInt Ast.Usize, [ t ] -> [ Term.ge t (Term.int 0) ]
  | BVec _, [ t ] -> [ Term.ge t (Term.int 0) ]
  | BStruct s, ts -> (
      match Hashtbl.find_opt senv s with
      | Some { si_invariant = Some inv; si_params; _ } ->
          [ Term.subst (List.map2 (fun (x, _) t -> (x, t)) si_params ts) inv ]
      | _ -> [])
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Substitution                                                        *)
(* ------------------------------------------------------------------ *)

let subst_pred (m : (string * Term.t) list) (p : Horn.pred) : Horn.pred =
  match p with
  | Horn.Conc t -> Horn.Conc (Term.subst m t)
  | Horn.Kapp (k, args) -> Horn.Kapp (k, List.map (Term.subst m) args)

let rec subst_rty (m : (string * Term.t) list) (t : rty) : rty =
  if m = [] then t
  else
    match t with
    | TBase (b, r) -> TBase (subst_base m b, subst_refinement m r)
    | TRef (k, t') -> TRef (k, subst_rty m t')
    | TPtr _ | TUninit _ -> t

and subst_base m = function
  | BVec elt -> BVec (subst_rty m elt)
  | b -> b

and subst_refinement m = function
  | Ix ts -> Ix (List.map (Term.subst m) ts)
  | Ex (binders, preds) ->
      (* binders shadow the substitution *)
      let m' = List.filter (fun (x, _) -> not (List.mem_assoc x binders)) m in
      Ex (binders, List.map (subst_pred m') preds)

(* ------------------------------------------------------------------ *)
(* Shapes                                                              *)
(* ------------------------------------------------------------------ *)

(** The unrefined shape of a refinement type. *)
let rec to_shape (t : rty) : Ast.ty =
  match t with
  | TBase (BInt k, _) -> Ast.TInt k
  | TBase (BBool, _) -> Ast.TBool
  | TBase (BFloat, _) -> Ast.TFloat
  | TBase (BUnit, _) -> Ast.TUnit
  | TBase (BVec elt, _) -> Ast.TVec (to_shape elt)
  | TBase (BStruct s, _) -> Ast.TStruct s
  | TRef (Shr, t') -> Ast.TRef (Ast.Imm, to_shape t')
  | TRef ((Mut | Strg), t') -> Ast.TRef (Ast.Mut, to_shape t')
  | TPtr _ -> Ast.TRef (Ast.Mut, Ast.TUnit) (* opaque; shape rarely needed *)
  | TUninit ty -> ty

(** The fully-unrefined type of a plain Rust type: every base gets the
    trivial existential. *)
let rec of_plain_ty (t : Ast.ty) : rty =
  match t with
  | Ast.TInt k -> TBase (BInt k, Ex ([ (fresh_name "v", Sort.Int) ], []))
  | Ast.TBool -> TBase (BBool, Ex ([ (fresh_name "v", Sort.Bool) ], []))
  | Ast.TFloat -> TBase (BFloat, Ix [])
  | Ast.TUnit -> TBase (BUnit, Ix [])
  | Ast.TVec elt ->
      TBase (BVec (of_plain_ty elt), Ex ([ (fresh_name "v", Sort.Int) ], []))
  | Ast.TStruct s ->
      (* sorts filled in lazily: trivial existential over unknown arity
         is represented with an empty binder list, meaning "any";
         structs in unrefined position are rare. *)
      TBase (BStruct s, Ex ([], []))
  | Ast.TRef (Ast.Imm, t') -> TRef (Shr, of_plain_ty t')
  | Ast.TRef (Ast.Mut, t') -> TRef (Mut, of_plain_ty t')
  | Ast.TParam x -> terr "cannot refine a type parameter %s" x
  | Ast.TInfer _ -> terr "unresolved inference variable in type"

(* ------------------------------------------------------------------ *)
(* Templates (phase 1 of §4.2 / instantiation of §4.3)                 *)
(* ------------------------------------------------------------------ *)

(** Pre-generate the top-level existential binders for a shape (what a
    local of this shape exports to the join's ghost-variable scope):
    one binder per index of the base, none for references. *)
let top_binders (senv : struct_env) (shape : Ast.ty) : (string * Sort.t) list =
  match shape with
  | Ast.TFloat | Ast.TUnit | Ast.TRef _ -> []
  | Ast.TInt _ -> [ (fresh_name "v", Sort.Int) ]
  | Ast.TBool -> [ (fresh_name "v", Sort.Bool) ]
  | Ast.TVec _ -> [ (fresh_name "len", Sort.Int) ]
  | Ast.TStruct s ->
      List.map (fun srt -> (fresh_name "ix", srt)) (index_sorts senv (BStruct s))
  | Ast.TParam x -> terr "cannot build a template for type parameter %s" x
  | Ast.TInfer _ -> terr "unresolved inference variable in template shape"

(** [?top] overrides the generated top-level binders (used at joins,
    where every local's binders are in every κ's scope — the paper's
    κ(b, c) relates all the join's ghost variables). The binders must
    not already occur in [scope]. *)
let rec template (senv : struct_env) ~(declare : Horn.kvar -> unit)
    ~(scope : (string * Sort.t) list) ?top (shape : Ast.ty) : rty =
  let binders =
    match top with Some bs -> bs | None -> top_binders senv shape
  in
  let kvar_of binders =
    let kname = fresh_name "$k" in
    let params = binders @ scope in
    declare
      { Horn.kname; Horn.kparams = params; Horn.kvalues = List.length binders };
    Horn.Kapp (kname, List.map (fun (x, s) -> Term.Var (x, s)) params)
  in
  match shape with
  | Ast.TFloat -> TBase (BFloat, Ix [])
  | Ast.TUnit -> TBase (BUnit, Ix [])
  | Ast.TInt k -> TBase (BInt k, Ex (binders, [ kvar_of binders ]))
  | Ast.TBool -> TBase (BBool, Ex (binders, [ kvar_of binders ]))
  | Ast.TVec elt_shape ->
      (* the vector's length binder is in scope for the element κs *)
      let elt =
        template senv ~declare ~scope:(scope @ binders) elt_shape
      in
      TBase (BVec elt, Ex (binders, [ kvar_of binders ]))
  | Ast.TStruct s -> TBase (BStruct s, Ex (binders, [ kvar_of binders ]))
  | Ast.TRef (Ast.Imm, t') -> TRef (Shr, template senv ~declare ~scope t')
  | Ast.TRef (Ast.Mut, t') -> TRef (Mut, template senv ~declare ~scope t')
  | Ast.TParam x -> terr "cannot build a template for type parameter %s" x
  | Ast.TInfer _ -> terr "unresolved inference variable in template shape"

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec pp fmt (t : rty) =
  match t with
  | TBase (b, Ix []) -> pp_base fmt b
  | TBase (b, Ix ts) ->
      Format.fprintf fmt "%a<%a>" pp_base b
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           Term.pp)
        ts
  | TBase (b, Ex (binders, preds)) ->
      Format.fprintf fmt "{%a. %a | %a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
           (fun fmt (x, _) -> Format.pp_print_string fmt x))
        binders pp_base b
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " && ")
           Horn.pp_pred)
        preds
  | TRef (Shr, t) -> Format.fprintf fmt "&%a" pp t
  | TRef (Mut, t) -> Format.fprintf fmt "&mut %a" pp t
  | TRef (Strg, t) -> Format.fprintf fmt "&strg %a" pp t
  | TPtr (k, p) ->
      Format.fprintf fmt "ptr(%s_%d%s)"
        (match k with Shr -> "shr " | Mut -> "mut " | Strg -> "strg ")
        p.Ir.base
        (String.concat ""
           (List.map
              (function Ir.PDeref -> ".*" | Ir.PField f -> "." ^ f)
              p.Ir.projs))
  | TUninit ty -> Format.fprintf fmt "uninit(%a)" Ast.pp_ty ty

and pp_base fmt = function
  | BInt k -> Format.pp_print_string fmt (Ast.int_kind_str k)
  | BBool -> Format.pp_print_string fmt "bool"
  | BFloat -> Format.pp_print_string fmt "f32"
  | BUnit -> Format.pp_print_string fmt "()"
  | BVec elt -> Format.fprintf fmt "RVec<%a>" pp elt
  | BStruct s -> Format.pp_print_string fmt s

let to_string t = Format.asprintf "%a" pp t
