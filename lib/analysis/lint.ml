(** The [flux lint] driver: runs the {!Passes} suite over every
    function of one or more programs, through the same parallel pool
    and persistent cache as verification.

    Functions are independent lint tasks, exactly as they are
    independent verification tasks, so misses are scheduled on the
    engine's domain pool ([--jobs]). The cache reuses the engine's
    content-addressed key ({!Flux_engine.Cache.flux_key}) with the
    enabled pass set folded into the configuration string; only {e
    clean} results — zero findings, verification OK — are stored, so a
    hit soundly replays "nothing to report" without a single SMT query,
    and anything that produced findings (whose messages carry source
    spans the key deliberately ignores) is re-linted. *)

module Ast = Flux_syntax.Ast
module Checker = Flux_check.Checker
module Genv = Flux_check.Genv
module Engine = Flux_engine.Engine
module Cache = Flux_engine.Cache
open Flux_fixpoint

type config = {
  jobs : int;  (** worker domains; [<= 0] selects one per core *)
  cache_dir : string option;  (** [None] disables the persistent cache *)
  passes : string list;  (** enabled pass ids (see {!Passes.catalog}) *)
}

let default_config =
  {
    jobs = 0;
    cache_dir = Some Engine.default_cache_dir;
    passes = Passes.default_passes;
  }

(* The lint cache key extends the verification configuration with the
   pass set: a verification verdict never answers for a lint result,
   and enabling a pass re-lints everything. *)
let lint_config_string (passes : string list) =
  Printf.sprintf "%s;lint=%s"
    (Engine.flux_config_string ())
    (String.concat "," (List.sort String.compare passes))

(** Per-function lint outcome, in declaration order. *)
type outcome = {
  lo_fn : string;
  lo_diags : Passes.diag list;
  lo_cached : bool;
  lo_errors : Checker.error list;
      (** refinement errors from the underlying verification (lint
          findings are about meaning; these are about correctness) *)
}

type run = {
  lr_fns : outcome list;
  lr_hits : int;
  lr_misses : int;
  lr_time : float;
}

let run_diags (r : run) : Passes.diag list =
  List.concat_map (fun o -> o.lo_diags) r.lr_fns

let run_clean (r : run) = run_diags r = []

(** Lint several programs through one shared pool schedule (mirrors
    {!Flux_engine.Engine.check_programs}). *)
let lint_programs ?cancel (cfg : config) (progs : Ast.program list) :
    run list =
  let t0 = Unix.gettimeofday () in
  let config = lint_config_string cfg.passes in
  let quals_fp = Cache.qualifiers_fingerprint Qualifier.default in
  let tasks = ref [] in
  let n_tasks = ref 0 in
  let slots =
    List.map
      (fun prog ->
        let genv = Genv.build prog in
        let senv_fp =
          if cfg.cache_dir = None then ""
          else Cache.struct_env_fingerprint genv.Genv.senv
        in
        List.filter_map
          (fun (fd : Ast.fn_def) ->
            if fd.Ast.fn_trusted then None
            else
              match Genv.find_body genv fd.Ast.fn_name with
              | None -> None
              | Some body ->
                  let key =
                    Option.map
                      (fun _dir ->
                        Cache.flux_key ~config ~senv_fp ~quals_fp
                          ~lookup:(Genv.find_sig genv) fd body)
                      cfg.cache_dir
                  in
                  let hit =
                    match (key, cfg.cache_dir) with
                    | Some k, Some dir ->
                        Option.map
                          (fun (_ : Cache.entry) ->
                            {
                              lo_fn = fd.Ast.fn_name;
                              lo_diags = [];
                              lo_cached = true;
                              lo_errors = [];
                            })
                          (Cache.load ~dir k)
                    | _ -> None
                  in
                  (match hit with
                  | Some o ->
                      Flux_smt.Profile.incr "lint.cache_hits";
                      Some (`Hit o)
                  | None ->
                      if key <> None then
                        Flux_smt.Profile.incr "lint.cache_misses";
                      let i = !n_tasks in
                      incr n_tasks;
                      tasks := (genv, fd, body, key) :: !tasks;
                      Some (`Todo (i, fd.Ast.fn_name, key))))
          (Ast.program_fns prog))
      progs
  in
  let task_arr = Array.of_list (List.rev !tasks) in
  let sizes = Array.map (fun (_, _, body, _) -> Engine.body_size body) task_arr in
  let fns =
    Array.map
      (fun (genv, fd, body, _) () ->
        Passes.run_function ~passes:cfg.passes genv fd body)
      task_arr
  in
  let results = Engine.run_pool ?cancel ~jobs:cfg.jobs ~sizes fns in
  (* Store clean results only: a hit must imply "nothing to report". *)
  (match cfg.cache_dir with
  | Some dir ->
      Array.iteri
        (fun i (_, _, _, key) ->
          let fr, diags = results.(i) in
          match key with
          | Some k when diags = [] && Checker.fn_ok fr ->
              Cache.store ~dir k
                {
                  Cache.e_kvars = fr.Checker.fr_kvars;
                  e_clauses = fr.Checker.fr_clauses;
                  e_time = fr.Checker.fr_time;
                }
          | _ -> ())
        task_arr
  | None -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  List.map
    (fun prog_slots ->
      let fns =
        List.map
          (function
            | `Hit o -> o
            | `Todo (i, name, _) ->
                let fr, diags = results.(i) in
                {
                  lo_fn = name;
                  lo_diags = diags;
                  lo_cached = false;
                  lo_errors = fr.Checker.fr_errors;
                })
          prog_slots
      in
      let hits = List.length (List.filter (fun o -> o.lo_cached) fns) in
      {
        lr_fns = fns;
        lr_hits = hits;
        lr_misses = List.length fns - hits;
        lr_time = elapsed;
      })
    slots

let lint_program_ast ?cancel (cfg : config) (prog : Ast.program) : run =
  match lint_programs ?cancel cfg [ prog ] with
  | [ r ] -> r
  | _ -> assert false

let lint_source ?cancel (cfg : config) (src : string) : run =
  let prog = Flux_syntax.Parser.parse_program src in
  Flux_syntax.Typeck.check_program prog;
  lint_program_ast ?cancel cfg prog

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_diag fmt (d : Passes.diag) =
  Format.fprintf fmt "%s[%s] %s:%a: %s"
    (Passes.severity_str d.Passes.d_severity)
    d.Passes.d_pass d.Passes.d_fn Ast.pp_span d.Passes.d_span
    d.Passes.d_msg

(** Human-readable report. [quiet] prints findings only, no footer. *)
let print_text fmt ~(quiet : bool) ~(times : bool) (r : run) : unit =
  List.iter
    (fun o ->
      List.iter (fun d -> Format.fprintf fmt "%a@." pp_diag d) o.lo_diags)
    r.lr_fns;
  if not quiet then begin
    let n = List.length r.lr_fns in
    let d = List.length (run_diags r) in
    let cached =
      if r.lr_hits > 0 then Printf.sprintf " (%d from cache)" r.lr_hits
      else ""
    in
    if times then
      Format.fprintf fmt "flux lint: %d function(s), %d finding(s)%s in %.3fs@."
        n d cached r.lr_time
    else
      Format.fprintf fmt "flux lint: %d function(s), %d finding(s)%s@." n d
        cached
  end

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Machine-readable report for [--format json] and the CI artifact. *)
let json_of_run ~(file : string) (r : run) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"file\": \"%s\",\n" (json_escape file));
  Buffer.add_string buf
    (Printf.sprintf "  \"functions\": %d,\n  \"cache_hits\": %d,\n"
       (List.length r.lr_fns) r.lr_hits);
  Buffer.add_string buf "  \"diagnostics\": [";
  let first = ref true in
  List.iter
    (fun o ->
      List.iter
        (fun (d : Passes.diag) ->
          if not !first then Buffer.add_char buf ',';
          first := false;
          Buffer.add_string buf
            (Printf.sprintf
               "\n    {\"pass\": \"%s\", \"severity\": \"%s\", \"function\": \
                \"%s\", \"line\": %d, \"col\": %d, \"message\": \"%s\"}"
               (json_escape d.Passes.d_pass)
               (Passes.severity_str d.Passes.d_severity)
               (json_escape d.Passes.d_fn)
               d.Passes.d_span.Ast.sp_start.Ast.line
               d.Passes.d_span.Ast.sp_start.Ast.col
               (json_escape d.Passes.d_msg)))
        o.lo_diags)
    r.lr_fns;
  if not !first then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"clean\": %b\n}\n" (run_clean r));
  Buffer.contents buf
