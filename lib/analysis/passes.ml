(** The lint passes behind [flux lint].

    Each pass inspects one function — its MIR, the facts the checker
    recorded while verifying it ({!Flux_check.Checker.lint_info}), and
    the fixpoint solution — and reports defects of {e meaning}, not of
    correctness: specs that hold vacuously, code no input can reach,
    inferred invariants that say nothing, stores nothing reads, and
    arithmetic the refinements do not bound. Solver queries only ever
    use the definite polarity ([Solver.sat] returning [false] is a
    proof of unsatisfiability), so every diagnostic is a theorem about
    the program, never a heuristic guess. *)

module Ast = Flux_syntax.Ast
module Ir = Flux_mir.Ir
module Liveness = Flux_mir.Liveness
module Checker = Flux_check.Checker
module Absint = Flux_absint.Absint
module Dom = Flux_absint.Dom
open Flux_smt
open Flux_fixpoint

type severity = Info | Warning

let severity_str = function Info -> "info" | Warning -> "warning"

(** One lint finding. *)
type diag = {
  d_pass : string;
  d_severity : severity;
  d_fn : string;
  d_span : Ast.span;
  d_msg : string;
}

(** The pass catalog: id and one-line description, in report order.
    [overflow] is allow-by-default (like clippy's pedantic group):
    unbounded integer state — a plain accumulator loop — can never be
    proved in range, so it only runs when asked for. *)
let catalog =
  [
    ("vacuity", "function precondition is unsatisfiable (verifies vacuously)");
    ("unreachable", "no input reaches this block (path condition unsat)");
    ( "trivial-refinement",
      "every inferred \xce\xba at a loop head collapsed to true" );
    ("dead-store", "a value is assigned but never subsequently read");
    ( "div-by-zero",
      "a division or remainder whose divisor is zero on every execution \
       reaching it" );
    ( "index-bounds",
      "a vector access whose index is out of bounds on every execution \
       reaching it" );
    ( "overflow",
      "arithmetic whose operand refinements do not bound it within the \
       machine-integer range (allow-by-default)" );
  ]

let all_passes = List.map fst catalog
let default_passes = List.filter (fun p -> p <> "overflow") all_passes

(* ------------------------------------------------------------------ *)
(* Span recovery                                                       *)
(* ------------------------------------------------------------------ *)

let real_span (sp : Ast.span) : Ast.span option =
  if sp.Ast.sp_start.Ast.line = 0 then None else Some sp

(** Unit-constant assignments to compiler-generated locals are lowering
    artifacts (the value of an [if] statement whose branch returned,
    the implicit else); they carry the enclosing statement's span but
    represent no user code. *)
let artifact_stmt (body : Ir.body) = function
  | Ir.SAssign (dest, Ir.RUse (Ir.Const Ir.CUnit), _) ->
      dest.Ir.projs = []
      && body.Ir.mb_locals.(dest.Ir.base).Ir.ld_kind <> Ir.KUser
  | _ -> false

(** A block's best source anchor: its first spanned non-artifact
    statement, else a spanned call terminator. Blocks with no anchor
    are lowering artifacts (empty assert-fail targets, synthesized
    joins, branch-merge stubs) and are never reported. *)
let block_span (body : Ir.body) (bb : int) : Ast.span option =
  let blk = body.Ir.mb_blocks.(bb) in
  let stmt_span s =
    if artifact_stmt body s then None
    else
      match s with
      | Ir.SAssign (_, _, sp) | Ir.SInvariant (_, sp) -> real_span sp
      | Ir.SNop -> None
  in
  match List.find_map stmt_span blk.Ir.stmts with
  | Some sp -> Some sp
  | None -> (
      match blk.Ir.term with
      | Ir.TCall { tc_span; _ } -> real_span tc_span
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* The passes                                                          *)
(* ------------------------------------------------------------------ *)

(** Vacuity: the function's assumed entry context — resolved
    preconditions plus argument index invariants — is unsatisfiable, so
    every obligation holds for free. *)
let vacuity (fd : Ast.fn_def) (li : Checker.lint_info) : diag list =
  match li.Checker.li_precond with
  | [] -> []
  | pre ->
      if Solver.sat (Term.mk_and pre) then []
      else
        [
          {
            d_pass = "vacuity";
            d_severity = Warning;
            d_fn = fd.Ast.fn_name;
            d_span = fd.Ast.fn_span;
            d_msg =
              Printf.sprintf
                "precondition of `%s` is unsatisfiable: no input satisfies \
                 it, so the function verifies vacuously"
                fd.Ast.fn_name;
          };
        ]

(** Unreachable blocks, from two sources. Structurally dead blocks are
    the ones the checker never flowed into (code after a `return` or
    `break`). Semantically dead blocks are reached only under an entry
    hypothesis set the solver proves unsatisfiable (e.g. the branch of
    a condition contradicting a dominating test). Expected-unreachable
    blocks — the empty targets of lowered `assert!` failures — carry no
    source anchor and are skipped by {!block_span}; blocks that {e end}
    in [TUnreachable] with real statements are still reported. *)
let unreachable (fd : Ast.fn_def) (body : Ir.body) (li : Checker.lint_info) :
    diag list =
  let mk bb why =
    Option.map
      (fun sp ->
        {
          d_pass = "unreachable";
          d_severity = Warning;
          d_fn = fd.Ast.fn_name;
          d_span = sp;
          d_msg = Printf.sprintf "unreachable code: %s" why;
        })
      (block_span body bb)
  in
  let structural =
    List.filter_map
      (fun bb -> mk bb "no path from the function entry reaches it")
      li.Checker.li_dead_blocks
  in
  let semantic =
    List.filter_map
      (fun (bb, hyps) ->
        if bb = 0 || hyps = [] then None
        else if Solver.sat (Term.mk_and hyps) then None
        else mk bb "its path condition is unsatisfiable")
      li.Checker.li_blocks
  in
  structural @ semantic

(** Trivial refinements: a loop head where {e every} κ declared for the
    join template solved to [true]. The inferred "invariant" then says
    nothing about any live local — the loop verifies only if nothing
    after it needs a fact from it, which usually means the refinements
    feeding the loop are too weak (or the spec never needed the loop at
    all). Non-loop joins are exempt: an if/else merge with no residual
    facts is ordinary. *)
let trivial_refinement (fd : Ast.fn_def) (body : Ir.body)
    (li : Checker.lint_info) (sol : Solve.solution option) : diag list =
  match sol with
  | None -> []
  | Some sol ->
      List.filter_map
        (fun (bb, kvars) ->
          if (not body.Ir.mb_loop_heads.(bb)) || kvars = [] then None
          else
            let solved_true k =
              match Hashtbl.find_opt sol k with
              | Some [] -> true
              | Some _ | None -> false
            in
            if not (List.for_all solved_true kvars) then None
            else
              Option.map
                (fun sp ->
                  {
                    d_pass = "trivial-refinement";
                    d_severity = Warning;
                    d_fn = fd.Ast.fn_name;
                    d_span = sp;
                    d_msg =
                      Printf.sprintf
                        "the inferred loop invariant is trivial: all %d \
                         \xce\xba variable(s) at this loop head collapsed \
                         to `true`"
                        (List.length kvars);
                  })
                (block_span body bb))
        li.Checker.li_join_kvars

(** Dead stores, via the liveness instance of the dataflow framework: a
    whole-local assignment to a user variable that nothing ever reads
    afterwards. Temporaries are exempt (the lowering manufactures and
    immediately consumes them), as are projections (writes through a
    reference or into a field have aliased readers). *)
let dead_store (fd : Ast.fn_def) (body : Ir.body) : diag list =
  let live = Liveness.compute body in
  let n = Array.length body.Ir.mb_blocks in
  let out = ref [] in
  for bb = 0 to n - 1 do
    List.iter
      (fun (s, _before, after) ->
        match s with
        | Ir.SAssign (dest, _, sp)
          when dest.Ir.projs = []
               && body.Ir.mb_locals.(dest.Ir.base).Ir.ld_kind = Ir.KUser
               && not after.(dest.Ir.base) -> (
            match real_span sp with
            | None -> ()
            | Some sp ->
                out :=
                  {
                    d_pass = "dead-store";
                    d_severity = Warning;
                    d_fn = fd.Ast.fn_name;
                    d_span = sp;
                    d_msg =
                      Printf.sprintf
                        "value assigned to `%s` is never read"
                        body.Ir.mb_locals.(dest.Ir.base).Ir.ld_name;
                  }
                  :: !out)
        | _ -> ())
      (Liveness.stmt_liveness live ~block:bb)
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Abstract-interpretation passes                                      *)
(* ------------------------------------------------------------------ *)

(* The next two passes read the interval/congruence/difference-bound
   states of {!Flux_absint.Absint} instead of asking the solver: the
   abstract semantics treats faulting operations as filters (only
   surviving executions flow on), so a fact that holds of the state
   {e before} a fault site is a theorem about every execution reaching
   it — the same definite polarity the solver-backed passes promise,
   at zero queries. *)

(** Definite division by zero: the divisor's abstract value at the
    division is the constant 0, so every execution reaching the
    operation faults. *)
let div_by_zero (fd : Ast.fn_def) (a : Absint.analysis) : diag list =
  let out = ref [] in
  Absint.iter_stmts a (fun ~block:_ s st ->
      match (s, st) with
      | _, Absint.Bot -> ()
      | Ir.SAssign (_, Ir.RBin (((Ast.Div | Ast.Rem) as op), _, divisor), sp), _
        -> (
          match
            (Dom.is_const (Absint.state_eval_operand a st divisor), real_span sp)
          with
          | Some 0, Some sp ->
              out :=
                {
                  d_pass = "div-by-zero";
                  d_severity = Warning;
                  d_fn = fd.Ast.fn_name;
                  d_span = sp;
                  d_msg =
                    Printf.sprintf
                      "division by zero: the divisor of this `%s` is 0 on \
                       every execution reaching it"
                      (if op = Ast.Div then "/" else "%");
                }
                :: !out
          | _ -> ())
      | _ -> ());
  List.rev !out

(** Definite out-of-bounds vector access: at an [RVec::get]/[get_mut]/
    [swap] call, the index is provably negative, or provably at least
    the receiver's length (by interval comparison or by a
    difference-bound between the index local and the vector's length). *)
let index_bounds (fd : Ast.fn_def) (body : Ir.body) (a : Absint.analysis) :
    diag list =
  let oob st recv_local (idx : Ir.operand) : bool =
    let di = Absint.state_eval_operand a st idx in
    Dom.always_lt di (Dom.const 0)
    ||
    match recv_local with
    | None -> false
    | Some v -> (
        Dom.always_le (Absint.local_value a st v) di
        ||
        match (idx, st) with
        | (Ir.Copy p | Ir.Move p), Absint.St _ when p.Ir.projs = [] -> (
            (* len(v) - i <= 0 as a tracked difference bound *)
            match Absint.state_diff_ub st v p.Ir.base with
            | Some c -> c <= 0
            | None -> false)
        | _ -> false)
  in
  let out = ref [] in
  Array.iteri
    (fun bb blk ->
      match blk.Ir.term with
      | Ir.TCall { tc_func; tc_args; tc_span; _ } -> (
          match Absint.vec_method tc_func with
          | Some (("get" | "get_mut" | "swap") as m) -> (
              match Absint.before_term a bb with
              | Absint.Bot -> ()
              | st ->
                  let recv = Absint.state_recv_target st tc_args in
                  let indices =
                    match (m, tc_args) with
                    | "swap", [ _; i; j ] -> [ i; j ]
                    | _, [ _; i ] -> [ i ]
                    | _ -> []
                  in
                  if List.exists (oob st recv) indices then
                    match real_span tc_span with
                    | Some sp ->
                        out :=
                          {
                            d_pass = "index-bounds";
                            d_severity = Warning;
                            d_fn = fd.Ast.fn_name;
                            d_span = sp;
                            d_msg =
                              Printf.sprintf
                                "index out of bounds: this `%s` is outside \
                                 the vector's length on every execution \
                                 reaching it"
                                m;
                          }
                          :: !out
                    | None -> ())
          | _ -> ())
      | _ -> ())
    body.Ir.mb_blocks;
  List.rev !out

(** Overflow candidates: the i32 range side conditions the checker
    recorded, evaluated against the κ solution it inferred. A finding
    means the context — refinements, path conditions, invariants — does
    not bound the result within [-2^31, 2^31); it is [Info] severity
    because unbounded-by-design arithmetic (plain accumulators) is
    common and correct. [Solve.check_clause] consults the abstract
    interval/difference-bound environment first and only falls back to
    the solver on clauses the environment cannot settle, so the sharper
    ranges inferred by the absint layer discharge most side conditions
    with no SMT at all. *)
let overflow (fd : Ast.fn_def) (li : Checker.lint_info)
    (sol : Solve.solution option) : diag list =
  match sol with
  | None -> []
  | Some sol ->
      List.filter_map
        (fun (sp, msg, clause) ->
          if Solve.check_clause ~kvars:li.Checker.li_kvars sol clause then None
          else
            Option.map
              (fun sp ->
                {
                  d_pass = "overflow";
                  d_severity = Info;
                  d_fn = fd.Ast.fn_name;
                  d_span = sp;
                  d_msg = msg;
                })
              (real_span sp))
        li.Checker.li_overflow

(* ------------------------------------------------------------------ *)
(* Per-function driver                                                 *)
(* ------------------------------------------------------------------ *)

let span_order (a : diag) (b : diag) =
  compare
    (a.d_span.Ast.sp_start.Ast.line, a.d_span.Ast.sp_start.Ast.col, a.d_pass)
    (b.d_span.Ast.sp_start.Ast.line, b.d_span.Ast.sp_start.Ast.col, b.d_pass)

(** Verify one function with the lint side channel on and run the
    enabled [passes] over the recorded facts. The verification report
    rides along so the caller can distinguish lint findings from
    refinement errors. *)
let run_function ~(passes : string list) (genv : Flux_check.Genv.t)
    (fd : Ast.fn_def) (body : Ir.body) : Checker.fn_report * diag list =
  let fr, li = Checker.check_body_lint genv fd body in
  let on p = List.mem p passes in
  (* one abstract fixpoint serves both absint-backed passes *)
  let absint =
    if on "div-by-zero" || on "index-bounds" then Some (Absint.analyze body)
    else None
  in
  let diags =
    (if on "vacuity" then vacuity fd li else [])
    @ (if on "unreachable" then unreachable fd body li else [])
    @ (if on "trivial-refinement" then
         trivial_refinement fd body li fr.Checker.fr_solution
       else [])
    @ (if on "dead-store" then dead_store fd body else [])
    @ (match absint with
      | Some a ->
          (if on "div-by-zero" then div_by_zero fd a else [])
          @ if on "index-bounds" then index_bounds fd body a else []
      | None -> [])
    @
    if on "overflow" then overflow fd li fr.Checker.fr_solution else []
  in
  (fr, List.stable_sort span_order diags)
