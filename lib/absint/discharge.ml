(** Pre-solver discharge of trivially-valid clauses.

    Every validity query from the weakening loop has the shape
    [lhs ⇒ rhs] where one [lhs] (the clause's instantiated hypotheses)
    is probed against many candidate [rhs] goals. [try_valid] builds
    the {!Env} difference-bound environment of the [lhs] once
    (memoized per domain on the hash-consed term) and answers goals it
    can prove with zero SMT; everything else falls through to the
    solver untouched.

    Counters (all flowing into [bench table1] profiles and daemon
    metrics):
    - [absint.discharged] — queries answered without the solver
    - [absint.fallthrough] — queries the environment could not decide
    - [absint.crosscheck_fail] — crosscheck disagreements (always 0
      unless the environment is unsound; asserted by CI)

    [--absint-crosscheck] re-solves every discharged clause and takes
    the {e solver's} verdict, so even a hypothetical environment bug
    cannot change a verdict in that mode — the trust story mirrors
    certificate replay: the fast path is checked by the slow path it
    replaces. *)

open Flux_smt

let enabled = ref true
let crosscheck = ref false

(* lhs → environment memo, domain-local like the solver's own caches:
   worker domains in the engine pool each build their own (terms are
   hash-consed per domain, and the weaken loop reuses one lhs across
   hundreds of candidate goals within a single function check). *)
let memo_dls : Env.t Term.Tbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Term.Tbl.create 256)

let reset () = Term.Tbl.reset (Domain.DLS.get memo_dls)

let env_of_lhs (lhs : Term.t) : Env.t =
  let tbl = Domain.DLS.get memo_dls in
  match Term.Tbl.find_opt tbl lhs with
  | Some e -> e
  | None ->
      let e = Env.of_hyps [ lhs ] in
      Term.Tbl.add tbl lhs e;
      e

(** [try_valid f]: [true] means [f] is definitely valid (and was
    counted as discharged); [false] means "ask the solver". *)
let try_valid (f : Term.t) : bool =
  if not !enabled then false
  else
    let ok =
      match f with
      | Term.Imp (lhs, rhs) -> Env.entails (env_of_lhs lhs) rhs
      | g -> Env.entails Env.top g
    in
    if ok then Profile.incr "absint.discharged"
    else Profile.incr "absint.fallthrough";
    ok

(** Drop-in replacement for {!Flux_smt.Solver.valid}: abstract
    environment first, solver on fallthrough. Under [crosscheck] the
    solver is consulted even for discharged clauses and its verdict
    wins (disagreements are counted, never masked). *)
let valid (f : Term.t) : bool =
  if try_valid f then
    if !crosscheck then begin
      let v = Solver.valid f in
      if not v then Profile.incr "absint.crosscheck_fail";
      v
    end
    else true
  else Solver.valid f
