(** Term-level abstract environment for pre-solver discharge.

    Holds the {e linear} consequences of a clause's hypotheses as a
    difference-bound matrix over the hypothesis variables plus a
    virtual zero node: entry [(i, j) ↦ c] asserts [vᵢ − vⱼ ≤ c], and
    edges to/from the zero node encode unary bounds ([x ≤ c],
    [−x ≤ c]). The matrix is closed by Floyd–Warshall, so every query
    is an O(1) table lookup plus endpoint arithmetic.

    Deliberately weaker than {!Dom}: no congruence component and no
    div/mod evaluation. Everything this environment can prove is a
    positive-combination (Fourier–Motzkin) consequence of the
    hypotheses after the same strict→non-strict and gcd normalization
    the solver applies to its input constraints — so a clause
    discharged here is one the solver would also prove, which is what
    keeps [--absint] verdicts byte-identical to [--no-absint] and lets
    [--absint-crosscheck] re-solve every discharged clause without
    disagreement. Anything outside that fragment (nonlinear atoms,
    div/mod, disjunctive hypotheses) simply contributes nothing and the
    clause falls through to SMT. *)

open Flux_smt
module SMap = Lia.SMap

(* Saturating weight arithmetic: [None] is +∞. Weights derived from
   term constants fit comfortably; sums of two stay far from
   wrap-around after clamping. *)
let big = 1 lsl 60
let clamp c = if c >= big then None else Some (max (-big) c)
let w_add a b = match (a, b) with Some a, Some b -> clamp (a + b) | _ -> None
let w_min a b = match (a, b) with Some a, Some b -> Some (min a b) | None, w | w, None -> w
let w_le a b = match (a, b) with Some a, Some b -> a <= b | _, None -> true | None, _ -> false

type t = {
  bot : bool;  (** hypotheses are contradictory: everything is entailed *)
  idx : int SMap.t;  (** variable → matrix index; index 0 is the zero node *)
  m : int option array array;  (** closed DBM *)
}

let top = { bot = false; idx = SMap.empty; m = [| [| Some 0 |] |] }
let bot = { top with bot = true }
let is_bot (e : t) = e.bot

(* ------------------------------------------------------------------ *)
(* Linearization                                                       *)
(* ------------------------------------------------------------------ *)

exception Nonlinear

let rec lin_of_term (t : Term.t) : Lia.lin =
  match t with
  | Term.Int n -> Lia.lin_const n
  | Term.Var (x, s) when Sort.equal s Sort.Int -> Lia.lin_var x
  | Term.Neg a -> Lia.lin_scale (-1) (lin_of_term a)
  | Term.Binop (Term.Add, a, b) -> Lia.lin_add (lin_of_term a) (lin_of_term b)
  | Term.Binop (Term.Sub, a, b) -> Lia.lin_sub (lin_of_term a) (lin_of_term b)
  | Term.Binop (Term.Mul, Term.Int k, a) | Term.Binop (Term.Mul, a, Term.Int k)
    ->
      Lia.lin_scale k (lin_of_term a)
  | _ -> raise Nonlinear

(* ------------------------------------------------------------------ *)
(* Constraint collection                                               *)
(* ------------------------------------------------------------------ *)

(* An atomic fact [lin ≤ 0]. Equalities contribute one in each
   direction; strict inequalities are tightened by 1 up front, exactly
   as the solver's normalization does. *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

(* gcd-normalize [lin ≤ 0] the same way the solver normalizes its input
   constraints (divide by the coefficient gcd, floor the constant).
   Applied only to original hypothesis atoms — everything derived
   afterwards stays at unit coefficients, inside rational FM's power. *)
let tighten (l : Lia.lin) : Lia.lin =
  let g = SMap.fold (fun _ c acc -> gcd c acc) l.Lia.coeffs 0 in
  if g <= 1 then l
  else
    {
      Lia.coeffs = SMap.map (fun c -> c / g) l.Lia.coeffs;
      const = fdiv l.Lia.const g;
    }

exception Contradiction

(** Accumulate the ≤-atoms of a hypothesis term. Only conjunctive
    structure is mined; disjunctions and boolean atoms are skipped
    (sound: skipping a hypothesis only weakens the environment). *)
let rec collect (acc : Lia.lin list) (t : Term.t) : Lia.lin list =
  match t with
  | Term.Bool true -> acc
  | Term.Bool false -> raise Contradiction
  | Term.And ts -> List.fold_left collect acc ts
  | Term.Not inner -> (
      match Term.mk_not inner with
      | Term.Not _ -> acc (* no usable normal form *)
      | t' -> collect acc t')
  | Term.Cmp (op, a, b) -> (
      try
        let d = Lia.lin_sub (lin_of_term a) (lin_of_term b) in
        let atom =
          match op with
          | Term.Le -> d (* a − b ≤ 0 *)
          | Term.Lt -> Lia.lin_add d (Lia.lin_const 1) (* a − b + 1 ≤ 0 *)
          | Term.Ge -> Lia.lin_scale (-1) d
          | Term.Gt -> Lia.lin_add (Lia.lin_scale (-1) d) (Lia.lin_const 1)
        in
        tighten atom :: acc
      with Nonlinear -> acc)
  | Term.Eq (a, b) -> (
      try
        let d = Lia.lin_sub (lin_of_term a) (lin_of_term b) in
        tighten d :: tighten (Lia.lin_scale (-1) d) :: acc
      with Nonlinear -> acc)
  | _ -> acc

(* ------------------------------------------------------------------ *)
(* Building and closing the DBM                                        *)
(* ------------------------------------------------------------------ *)

(* Install [lin ≤ 0] into the matrix when it fits the DBM fragment:
   at most two variables with coefficients {+1}, {−1} or {+1, −1}. *)
let install idx m (l : Lia.lin) =
  let bindings = SMap.bindings l.Lia.coeffs in
  let edge i j c = m.(i).(j) <- w_min m.(i).(j) (Some c) in
  match bindings with
  | [] -> if l.Lia.const > 0 then raise Contradiction
  | [ (x, 1) ] -> edge (SMap.find x idx) 0 (-l.Lia.const) (* x ≤ −k *)
  | [ (x, -1) ] -> edge 0 (SMap.find x idx) (-l.Lia.const) (* −x ≤ −k *)
  | [ (x, 1); (y, -1) ] | [ (y, -1); (x, 1) ] ->
      edge (SMap.find x idx) (SMap.find y idx) (-l.Lia.const)
  | _ -> () (* outside the DBM fragment: drop (sound) *)

let close m =
  let n = Array.length m in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        m.(i).(j) <- w_min m.(i).(j) (w_add m.(i).(k) m.(k).(j))
      done
    done
  done;
  (* negative self-loop = contradictory hypotheses *)
  let neg = ref false in
  for i = 0 to n - 1 do
    match m.(i).(i) with Some c when c < 0 -> neg := true | _ -> ()
  done;
  !neg

let of_atoms (atoms : Lia.lin list) : t =
  let idx =
    List.fold_left
      (fun idx l ->
        SMap.fold
          (fun x _ idx ->
            if SMap.mem x idx then idx else SMap.add x (SMap.cardinal idx + 1) idx)
          l.Lia.coeffs idx)
      SMap.empty atoms
  in
  let n = SMap.cardinal idx + 1 in
  let m = Array.init n (fun i -> Array.init n (fun j -> if i = j then Some 0 else None)) in
  try
    List.iter (install idx m) atoms;
    if close m then bot else { bot = false; idx; m }
  with Contradiction -> bot

(** Build the environment from a clause's hypotheses. *)
let of_hyps (hyps : Term.t list) : t =
  try of_atoms (List.fold_left collect [] hyps) with Contradiction -> bot

(** Extend with one more hypothesis and re-close. Rebuilds from the raw
    matrix facts; environments are small (clause-local variables), so
    this stays cheap and is only taken on [Imp] goals. *)
let assume (e : t) (h : Term.t) : t =
  if e.bot then e
  else
    try
      let atoms = collect [] h in
      if atoms = [] then e
      else begin
        (* re-express the existing closed matrix as atoms and rebuild *)
        let existing = ref [] in
        let names = Array.make (Array.length e.m) "" in
        SMap.iter (fun x i -> names.(i) <- x) e.idx;
        Array.iteri
          (fun i row ->
            Array.iteri
              (fun j w ->
                match w with
                | Some c when i <> j ->
                    let l =
                      match (i, j) with
                      | 0, j ->
                          Lia.lin_add
                            (Lia.lin_scale (-1) (Lia.lin_var names.(j)))
                            (Lia.lin_const (-c))
                      | i, 0 ->
                          Lia.lin_add (Lia.lin_var names.(i))
                            (Lia.lin_const (-c))
                      | i, j ->
                          Lia.lin_add
                            (Lia.lin_sub (Lia.lin_var names.(i))
                               (Lia.lin_var names.(j)))
                            (Lia.lin_const (-c))
                    in
                    existing := l :: !existing
                | _ -> ())
              row)
          e.m;
        of_atoms (atoms @ !existing)
      end
    with Contradiction -> bot

(* ------------------------------------------------------------------ *)
(* Bounding linear forms                                               *)
(* ------------------------------------------------------------------ *)

(* Upper bound of a variable / its negation, as DBM edges. *)
let var_hi e x =
  match SMap.find_opt x e.idx with None -> None | Some i -> e.m.(i).(0)

let var_neg_hi e x =
  match SMap.find_opt x e.idx with None -> None | Some i -> e.m.(0).(i)

(** A sound upper bound of [lin] under the environment, or [None]. Uses
    the pairwise difference edge when the form is exactly [x − y + k];
    otherwise sums per-variable interval bounds. *)
let upper_bound (e : t) (l : Lia.lin) : int option =
  if e.bot then Some min_int
  else
    let bindings = SMap.bindings l.Lia.coeffs in
    let pairwise =
      match bindings with
      | [ (x, 1); (y, -1) ] | [ (y, -1); (x, 1) ] -> (
          match (SMap.find_opt x e.idx, SMap.find_opt y e.idx) with
          | Some i, Some j -> w_add e.m.(i).(j) (Some l.Lia.const)
          | _ -> None)
      | _ -> None
    in
    let interval =
      List.fold_left
        (fun acc (x, c) ->
          let term_bound =
            if c > 0 then
              match var_hi e x with Some h -> clamp (c * h) | None -> None
            else
              (* c < 0: c·x ≤ (−c)·(−x) ≤ (−c)·ub(−x) *)
              match var_neg_hi e x with
              | Some h -> clamp (-c * h)
              | None -> None
          in
          w_add acc term_bound)
        (Some l.Lia.const) bindings
    in
    w_min pairwise interval

let lower_bound (e : t) (l : Lia.lin) : int option =
  match upper_bound e (Lia.lin_scale (-1) l) with
  | Some b -> Some (-b)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Entailment                                                          *)
(* ------------------------------------------------------------------ *)

(** [entails e goal]: do the hypotheses definitely imply [goal]? A
    [false] answer means "unknown" — the clause falls through to the
    solver. Every [true] answer is a Fourier–Motzkin consequence of
    the collected hypotheses (see the module header). *)
let rec entails (e : t) (goal : Term.t) : bool =
  e.bot
  ||
  match goal with
  | Term.Bool b -> b
  | Term.And ts -> List.for_all (entails e) ts
  | Term.Or ts -> List.exists (entails e) ts
  | Term.Imp (a, b) -> entails (assume e a) b
  | Term.Ite (c, a, b) -> entails (assume e c) a && entails (assume e (Term.mk_not c)) b
  | Term.Not inner -> (
      match Term.mk_not inner with
      | Term.Not _ -> false
      | g -> entails e g)
  | Term.Cmp (op, a, b) -> (
      try
        let d = Lia.lin_sub (lin_of_term a) (lin_of_term b) in
        match op with
        | Term.Le -> w_le (upper_bound e d) (Some 0)
        | Term.Lt -> w_le (upper_bound e d) (Some (-1))
        | Term.Ge -> w_le (upper_bound e (Lia.lin_scale (-1) d)) (Some 0)
        | Term.Gt -> w_le (upper_bound e (Lia.lin_scale (-1) d)) (Some (-1))
      with Nonlinear -> false)
  | Term.Eq (a, b) -> (
      try
        let d = Lia.lin_sub (lin_of_term a) (lin_of_term b) in
        w_le (upper_bound e d) (Some 0)
        && w_le (upper_bound e (Lia.lin_scale (-1) d)) (Some 0)
      with Nonlinear -> false)
  | Term.Ne (a, b) -> (
      try
        let d = Lia.lin_sub (lin_of_term a) (lin_of_term b) in
        w_le (upper_bound e d) (Some (-1))
        || w_le (upper_bound e (Lia.lin_scale (-1) d)) (Some (-1))
      with Nonlinear -> false)
  | _ -> false
