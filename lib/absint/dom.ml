(** The numeric abstract domain: a reduced product of intervals and
    congruences.

    An abstract value describes a set of integers as the intersection
    of an interval [\[lo, hi\]] (either bound possibly infinite) and a
    congruence class [r mod m] ([m = 0] pins a single constant, [m = 1]
    says nothing). The product is {e reduced} after every operation:
    an empty intersection collapses to [Bot], interval endpoints snap
    inward to the congruence class, and a singleton interval promotes
    to a constant congruence — so structural equality of reduced
    values is a usable fixpoint test.

    All transfer functions follow the {e truncated} (Rust/OCaml)
    division semantics established in PR 1: [(-7)/2 = -3] and
    [(-7) mod 2 = -1], the sign of a remainder follows the dividend.
    Division and remainder abstract only the {e non-faulting}
    executions (a zero divisor panics at runtime), so dividing by the
    constant zero yields [Bot] — no execution survives the statement.

    Arithmetic on bounds saturates: any finite bound whose computation
    could exceed the native [int] range widens to infinity instead of
    wrapping, so γ-soundness never depends on overflow behaviour. *)

(* ------------------------------------------------------------------ *)
(* Saturating bound arithmetic                                         *)
(* ------------------------------------------------------------------ *)

(* Bounds above this magnitude are treated as infinite. Keeping a wide
   margin below [max_int] means sums and differences of two in-range
   bounds can never wrap. *)
let big = 1 lsl 53

let sat (n : int) : int option = if n > big || n < -big then None else Some n

let sat_add (a : int option) (b : int option) : int option =
  match (a, b) with Some a, Some b -> sat (a + b) | _ -> None

let sat_mul (a : int option) (b : int option) : int option =
  match (a, b) with
  | Some 0, _ | _, Some 0 -> Some 0
  | Some a, Some b ->
      if abs a > big / abs b then None else sat (a * b)
  | _ -> None

let sat_neg = function Some n -> Some (-n) | None -> None

(* min/max where [None] is -inf (for lows) or +inf (for highs); the
   caller picks the interpretation. *)
let opt_min a b =
  match (a, b) with Some a, Some b -> Some (min a b) | _ -> None

let opt_max a b =
  match (a, b) with Some a, Some b -> Some (max a b) | _ -> None

(* ------------------------------------------------------------------ *)
(* The product                                                         *)
(* ------------------------------------------------------------------ *)

type v = {
  lo : int option;  (** [None] = -∞ *)
  hi : int option;  (** [None] = +∞ *)
  m : int;  (** congruence modulus: 0 = constant, 1 = top *)
  r : int;  (** residue; the constant itself when [m = 0] *)
}

type t = Bot | V of v

let top = V { lo = None; hi = None; m = 1; r = 0 }

let is_bot = function Bot -> true | V _ -> false

(* Mathematical mod with a nonnegative result, for residue
   normalization (distinct from the truncated [mod] we abstract). *)
let emod a m = ((a mod m) + m) mod m

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Largest multiplier the congruence component may carry; beyond it we
   give up the congruence rather than chase huge lcms. *)
let max_modulus = 1 lsl 20

(* Smallest value >= n congruent to r (mod m); m > 1. *)
let snap_up n m r = n + emod (r - n) m

(* Largest value <= n congruent to r (mod m); m > 1. *)
let snap_down n m r = n - emod (n - r) m

(** Re-establish the reduction invariants. This is the only way
    abstract values are built internally. *)
let make ~lo ~hi ~m ~r : t =
  let m = abs m in
  let r = if m > 1 then emod r m else if m = 1 then 0 else r in
  (* constant congruence: intersect the interval with {r} *)
  if m = 0 then
    let ok_lo = match lo with Some l -> l <= r | None -> true in
    let ok_hi = match hi with Some h -> r <= h | None -> true in
    if ok_lo && ok_hi then V { lo = Some r; hi = Some r; m = 0; r } else Bot
  else
    (* snap finite endpoints inward to the congruence class *)
    let lo = match lo with Some l when m > 1 -> Some (snap_up l m r) | b -> b in
    let hi =
      match hi with Some h when m > 1 -> Some (snap_down h m r) | b -> b
    in
    match (lo, hi) with
    | Some l, Some h when l > h -> Bot
    | Some l, Some h when l = h -> V { lo; hi; m = 0; r = l }
    | _ -> V { lo; hi; m; r }

let const n = make ~lo:(Some n) ~hi:(Some n) ~m:0 ~r:n
let range lo hi = make ~lo ~hi ~m:1 ~r:0
let at_least n = range (Some n) None
let at_most n = range None (Some n)

let is_const = function V { m = 0; r; _ } -> Some r | _ -> None

(** Concretization membership: the executable γ, asserted by the fuzz
    oracle against every concrete interpreter trace. *)
let mem (n : int) (d : t) : bool =
  match d with
  | Bot -> false
  | V { lo; hi; m; r } ->
      (match lo with Some l -> l <= n | None -> true)
      && (match hi with Some h -> n <= h | None -> true)
      && (match m with 0 -> n = r | 1 -> true | m -> emod n m = r)

let equal (a : t) (b : t) : bool =
  match (a, b) with
  | Bot, Bot -> true
  | V a, V b -> a.lo = b.lo && a.hi = b.hi && a.m = b.m && a.r = b.r
  | _ -> false

(** [leq a b]: does [a] describe a subset of [b]? (Partial-order test
    used by the monotonicity property tests.) *)
let leq (a : t) (b : t) : bool =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | V a, V b ->
      (match (a.lo, b.lo) with
      | _, None -> true
      | None, Some _ -> false
      | Some x, Some y -> x >= y)
      && (match (a.hi, b.hi) with
         | _, None -> true
         | None, Some _ -> false
         | Some x, Some y -> x <= y)
      && (match (a.m, b.m) with
         | _, 1 -> true
         | 0, 0 -> a.r = b.r
         | 0, m -> emod a.r m = b.r
         | _, 0 -> false
         | m1, m2 -> m1 mod m2 = 0 && emod a.r m2 = b.r)

(* ------------------------------------------------------------------ *)
(* Lattice operations                                                  *)
(* ------------------------------------------------------------------ *)

let cong_join (m1, r1) (m2, r2) =
  if m1 = 1 || m2 = 1 then (1, 0)
  else
    let g = gcd m1 (gcd m2 (r1 - r2)) in
    if g = 0 then (0, r1) (* both the same constant *)
    else if g > max_modulus then (1, 0)
    else (g, emod r1 g)

let join (a : t) (b : t) : t =
  match (a, b) with
  | Bot, d | d, Bot -> d
  | V a, V b ->
      let m, r = cong_join (a.m, a.r) (b.m, b.r) in
      make
        ~lo:(opt_min a.lo b.lo)
        ~hi:(opt_max a.hi b.hi)
        ~m ~r

let cong_meet (m1, r1) (m2, r2) =
  if m1 = 1 then Some (m2, r2)
  else if m2 = 1 then Some (m1, r1)
  else if m1 = 0 && m2 = 0 then if r1 = r2 then Some (0, r1) else None
  else if m1 = 0 then if emod r1 m2 = r2 then Some (0, r1) else None
  else if m2 = 0 then if emod r2 m1 = r1 then Some (0, r2) else None
  else
    let g = gcd m1 m2 in
    if emod (r1 - r2) g <> 0 then None
    else
      let l = m1 / g * m2 in
      if l > max_modulus then
        (* lcm too large: keep the finer of the two inputs (a sound
           over-approximation of the true meet) *)
        Some (if m1 >= m2 then (m1, r1) else (m2, r2))
      else
        (* CRT: walk r1 + k*m1 until it hits r2 (mod m2); the loop runs
           at most m2/g <= max_modulus steps *)
        let rec find x = if emod x m2 = r2 then x else find (x + m1) in
        Some (l, emod (find r1) l)

let meet (a : t) (b : t) : t =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b -> (
      let lo =
        match (a.lo, b.lo) with
        | None, x | x, None -> x
        | Some x, Some y -> Some (max x y)
      in
      let hi =
        match (a.hi, b.hi) with
        | None, x | x, None -> x
        | Some x, Some y -> Some (min x y)
      in
      match cong_meet (a.m, a.r) (b.m, b.r) with
      | None -> Bot
      | Some (m, r) -> make ~lo ~hi ~m ~r)

(** Widening: unstable interval bounds jump straight to infinity. The
    congruence component joins — its chains are finite (divisor
    chains), so it needs no acceleration. *)
let widen (a : t) (b : t) : t =
  match (a, b) with
  | Bot, d -> d
  | d, Bot -> d
  | V a, V b ->
      let lo =
        match (a.lo, b.lo) with
        | Some x, Some y when y >= x -> Some x
        | _ -> None
      in
      let hi =
        match (a.hi, b.hi) with
        | Some x, Some y when y <= x -> Some x
        | _ -> None
      in
      let m, r = cong_join (a.m, a.r) (b.m, b.r) in
      make ~lo ~hi ~m ~r

(** Narrowing: refill bounds the widening threw to infinity, but never
    move a finite bound (guarantees termination of the descending
    passes). *)
let narrow (a : t) (b : t) : t =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b ->
      let lo = match a.lo with None -> b.lo | some -> some in
      let hi = match a.hi with None -> b.hi | some -> some in
      make ~lo ~hi ~m:a.m ~r:a.r

(* ------------------------------------------------------------------ *)
(* Transfer functions                                                  *)
(* ------------------------------------------------------------------ *)

let lift2 f (a : t) (b : t) : t =
  match (a, b) with Bot, _ | _, Bot -> Bot | V a, V b -> f a b

let add =
  lift2 (fun a b ->
      (* a+b ≡ r₁+r₂ (mod gcd(m₁, m₂)); gcd's identity at 0 makes the
         constant cases (m = 0) fall out: const+const stays const,
         const+congruence keeps the modulus. *)
      make
        ~lo:(sat_add a.lo b.lo)
        ~hi:(sat_add a.hi b.hi)
        ~m:(gcd a.m b.m) ~r:(a.r + b.r))

let neg (d : t) : t =
  match d with
  | Bot -> Bot
  | V { lo; hi; m; r } -> make ~lo:(sat_neg hi) ~hi:(sat_neg lo) ~m ~r:(-r)

let sub a b = add a (neg b)

let mul =
  lift2 (fun a b ->
      let cands =
        [
          sat_mul a.lo b.lo; sat_mul a.lo b.hi; sat_mul a.hi b.lo;
          sat_mul a.hi b.hi;
        ]
      in
      (* an infinite endpoint on either side leaves the product
         unbounded in both directions, unless the other side is the
         constant zero (handled by [sat_mul]) *)
      let bounded =
        a.lo <> None && a.hi <> None && b.lo <> None && b.hi <> None
      in
      let lo, hi =
        if bounded && List.for_all (( <> ) None) cands then
          ( List.fold_left opt_min (List.hd cands) (List.tl cands),
            List.fold_left opt_max (List.hd cands) (List.tl cands) )
        else if (a.lo = Some 0 && a.hi = Some 0) || (b.lo = Some 0 && b.hi = Some 0)
        then (Some 0, Some 0)
        else (None, None)
      in
      if a.m = 0 && b.m = 0 then
        (* both constants: exact, provided the product stays in range *)
        match sat_mul (Some a.r) (Some b.r) with
        | Some p -> make ~lo:(Some p) ~hi:(Some p) ~m:0 ~r:p
        | None -> make ~lo ~hi ~m:1 ~r:0
      else
        (* a·b ≡ r₁·r₂ (mod gcd(m₁m₂, m₁r₂, m₂r₁)); covers the
           constant-times-congruence cases through m = 0. Guarded
           against residue overflow (constants can be arbitrarily
           large when m = 0). *)
        let m, r =
          if abs a.r > max_modulus || abs b.r > max_modulus then (1, 0)
          else
            let g = gcd (a.m * b.m) (gcd (a.m * b.r) (b.m * a.r)) in
            if g = 0 || g > max_modulus then (1, 0) else (g, a.r * b.r)
        in
        make ~lo ~hi ~m ~r)

(* Truncated division of intervals, divisor restricted to one sign.
   For a fixed divisor sign the quotient is monotone in the dividend
   and anti-monotone (pos) in the divisor magnitude, so the extrema sit
   at endpoint combinations. *)
let div_part (a : int option * int option) (dlo : int) (dhi : int) :
    (int option * int option) option =
  if dlo > dhi then None
  else
    let alo, ahi = a in
    let q x d = x / d in
    let cands =
      match (alo, ahi) with
      | Some alo, Some ahi ->
          Some [ q alo dlo; q alo dhi; q ahi dlo; q ahi dhi ]
      | _ -> None
    in
    match cands with
    | Some cs ->
        Some
          ( Some (List.fold_left min (List.hd cs) (List.tl cs)),
            Some (List.fold_left max (List.hd cs) (List.tl cs)) )
    | None -> Some (None, None)

let div =
  lift2 (fun a b ->
      (* drop 0 from the divisor: dividing by zero faults, so only the
         nonzero divisors describe surviving executions *)
      let neg_part =
        div_part (a.lo, a.hi)
          (match b.lo with Some l -> max l (-big) | None -> -big)
          (match b.hi with Some h -> min h (-1) | None -> -1)
      in
      let pos_part =
        div_part (a.lo, a.hi)
          (match b.lo with Some l -> max l 1 | None -> 1)
          (match b.hi with Some h -> min h big | None -> big)
      in
      (* unbounded divisor magnitude still bounds the quotient by the
         dividend: |a/b| <= |a| for |b| >= 1 *)
      match (neg_part, pos_part) with
      | None, None -> Bot (* divisor can only be zero *)
      | parts -> (
          let merge =
            match parts with
            | Some (l1, h1), Some (l2, h2) -> (opt_min l1 l2, opt_max h1 h2)
            | Some p, None | None, Some p -> p
            | None, None -> assert false
          in
          let lo, hi = merge in
          (* clamp with |q| <= |a| when the dividend is bounded *)
          let abs_bound =
            match (a.lo, a.hi) with
            | Some l, Some h -> Some (max (abs l) (abs h))
            | _ -> None
          in
          match abs_bound with
          | Some m ->
              make
                ~lo:(opt_max lo (Some (-m)))
                ~hi:(opt_min hi (Some m))
                ~m:1 ~r:0
          | None -> make ~lo ~hi ~m:1 ~r:0))

let md =
  lift2 (fun a b ->
      (* truncated remainder: |a mod b| < |b|, |a mod b| <= |a|, and the
         sign follows the dividend *)
      let mag =
        match (b.lo, b.hi) with
        | Some l, Some h -> Some (max (abs l) (abs h) - 1)
        | _ -> None
      in
      let lo =
        if match a.lo with Some l -> l >= 0 | None -> false then Some 0
        else sat_neg mag
      in
      let hi =
        if match a.hi with Some h -> h <= 0 | None -> false then Some 0
        else mag
      in
      (* |a mod b| <= |a| *)
      let lo =
        match a.lo with
        | Some l when l >= 0 -> lo
        | Some l -> opt_max lo (Some l)
        | None -> lo
      in
      let hi =
        match a.hi with
        | Some h when h <= 0 -> hi
        | Some h -> opt_min hi (Some h)
        | None -> hi
      in
      (* exact when both are constants (and the divisor nonzero) *)
      match (a.m, b.m) with
      | 0, 0 when b.r <> 0 -> const (a.r mod b.r)
      | 0, 0 -> Bot (* constant zero divisor: no execution survives *)
      | _ ->
          (* remainder by a known even/odd modulus: when b is the
             constant c > 0 and a's congruence modulus is divisible by
             c, the residue is determined up to sign; only claim it
             when the dividend is known nonnegative *)
          let m, r =
            match b.m with
            | 0
              when b.r > 0
                   && a.m > 1
                   && a.m mod b.r = 0
                   && (match a.lo with Some l -> l >= 0 | None -> false) ->
                (0, emod a.r b.r)
            | _ -> (1, 0)
          in
          if m = 0 then make ~lo:(Some r) ~hi:(Some r) ~m:0 ~r
          else make ~lo ~hi ~m:1 ~r:0)

(* ------------------------------------------------------------------ *)
(* Comparison deciders (definite answers only)                         *)
(* ------------------------------------------------------------------ *)

(** [always_lt a b]: every value of [a] is < every value of [b]. *)
let always_lt (a : t) (b : t) : bool =
  match (a, b) with
  | Bot, _ | _, Bot -> true (* vacuous *)
  | V a, V b -> (
      match (a.hi, b.lo) with Some h, Some l -> h < l | _ -> false)

let always_le (a : t) (b : t) : bool =
  match (a, b) with
  | Bot, _ | _, Bot -> true
  | V a, V b -> (
      match (a.hi, b.lo) with Some h, Some l -> h <= l | _ -> false)

(** [always_ne a b]: the two sets of values are disjoint. *)
let always_ne (a : t) (b : t) : bool = is_bot (meet a b)

let pp fmt (d : t) =
  match d with
  | Bot -> Format.pp_print_string fmt "⊥"
  | V { lo; hi; m; r } ->
      let b fmt = function
        | Some n -> Format.pp_print_int fmt n
        | None -> Format.pp_print_string fmt "∞"
      in
      Format.fprintf fmt "[%a,%a]" b lo b hi;
      if m = 0 then ()
      else if m > 1 then Format.fprintf fmt "≡%d(%d)" r m

let to_string d = Format.asprintf "%a" pp d
