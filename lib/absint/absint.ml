(** Abstract interpretation of MIR bodies.

    Computes, for every program point, a reduced product of the
    interval×congruence domain ({!Dom}) over the integer locals plus a
    set of difference bounds [x − y ≤ c] between locals — run as a
    widening/narrowing fixpoint on {!Flux_mir.Dataflow.MakeWiden}.

    A vector-typed local is abstracted by its {e length} (always
    [≥ 0]); element contents are untracked. Faulting operations
    (division by zero, out-of-bounds indexing, [pop] on empty) describe
    {e surviving} executions only, so their post-states refine — e.g.
    after [v.get(i)] the index satisfies [0 ≤ i < len v] — and an
    operation with no surviving execution collapses the state to
    bottom. This is exactly the γ-containment contract the [absint]
    fuzz oracle asserts against concrete interpreter traces: at every
    block entry, every defined integer local lies in γ of its abstract
    value and every recorded difference bound holds.

    Soundness around aliasing is handled structurally rather than with
    a points-to analysis:
    - vector locals that are ever copied/moved to another vector local,
      packed into an aggregate, or passed by value to a user function
      are {e dirty}: their length is pinned to the alias-insensitive
      [\[0, ∞)] for the whole body;
    - reference temporaries ([RRef]) are tracked to their target local;
      a mutable reference consumed by a user call havocs its target,
      and one that escapes into an aggregate marks the target {e wild}
      — wild locals are additionally havocked at every subsequent user
      call or opaque write. *)

module Ast = Flux_syntax.Ast
module Ir = Flux_mir.Ir
module Dataflow = Flux_mir.Dataflow
module IMap = Map.Make (Int)

module PMap = Map.Make (struct
  type t = int * int

  let compare = compare
end)

module ISet = Set.Make (Int)

type atom = AL of int | AC of int

type rtgt = RLocal of Ast.mutability * int | RUnknown

type st = {
  vals : Dom.t IMap.t;  (** missing key = ⊤; never maps to [Dom.Bot] *)
  diffs : int PMap.t;  (** [(x, y) ↦ c]: x − y ≤ c *)
  guards : (Ast.binop * atom * atom) IMap.t;
      (** boolean local ↦ the comparison it currently holds *)
  refs : rtgt IMap.t;  (** reference temporaries ↦ their target *)
  wild : ISet.t;  (** locals with escaped mutable aliases *)
}

type astate = Bot | St of st

let reachable = function Bot -> false | St _ -> true

(* ------------------------------------------------------------------ *)
(* Per-body static context                                             *)
(* ------------------------------------------------------------------ *)

type ctx = {
  body : Ir.body;
  is_vec : bool array;  (** vec-typed locals (tracked as lengths) *)
  dirty : bool array;  (** vec locals whose length is alias-unsafe *)
  addressable : bool array;  (** locals that ever appear under [RRef] *)
}

let vec_zero = Dom.at_least 0

let operand_base (o : Ir.operand) : int option =
  match o with
  | Ir.Copy p | Ir.Move p -> if p.Ir.projs = [] then Some p.Ir.base else None
  | Ir.Const _ -> None

let make_ctx (b : Ir.body) : ctx =
  let n = Array.length b.Ir.mb_locals in
  let is_vec =
    Array.init n (fun l ->
        match Ir.local_ty b l with Ast.TVec _ -> true | _ -> false)
  in
  let dirty = Array.make n false in
  let addressable = Array.make n false in
  let mark_dirty o =
    match operand_base o with
    | Some l when is_vec.(l) -> dirty.(l) <- true
    | _ -> ()
  in
  Array.iter
    (fun blk ->
      List.iter
        (fun s ->
          match s with
          | Ir.SAssign (dest, rv, _) -> (
              match rv with
              | Ir.RUse o ->
                  (* vec-to-vec copy/move: both ends lose precision *)
                  if dest.Ir.projs = [] && is_vec.(dest.Ir.base) then begin
                    dirty.(dest.Ir.base) <- true;
                    mark_dirty o
                  end
                  else mark_dirty o
              | Ir.RAggregate (_, fields) ->
                  List.iter (fun (_, o) -> mark_dirty o) fields
              | Ir.RRef (_, p) -> addressable.(p.Ir.base) <- true
              | _ -> ())
          | _ -> ())
        blk.Ir.stmts;
      match blk.Ir.term with
      | Ir.TCall { tc_func; tc_args; _ } ->
          (* a vec passed by value to a user function escapes *)
          if not (String.length tc_func > 6 && String.sub tc_func 0 6 = "RVec::")
          then List.iter mark_dirty tc_args
      | _ -> ())
    b.Ir.mb_blocks;
  { body = b; is_vec; dirty; addressable }

(* ------------------------------------------------------------------ *)
(* State helpers                                                       *)
(* ------------------------------------------------------------------ *)

let empty_st =
  {
    vals = IMap.empty;
    diffs = PMap.empty;
    guards = IMap.empty;
    refs = IMap.empty;
    wild = ISet.empty;
  }

let find_val (c : ctx) (s : st) (l : int) : Dom.t =
  match IMap.find_opt l s.vals with
  | Some d -> d
  | None -> if c.is_vec.(l) then vec_zero else Dom.top

(* Drop facts (guards, diffs) that mention [l]. *)
let forget_facts (s : st) (l : int) : st =
  let mentions = function AL x -> x = l | AC _ -> false in
  {
    s with
    diffs = PMap.filter (fun (x, y) _ -> x <> l && y <> l) s.diffs;
    guards =
      IMap.filter
        (fun b (_, a1, a2) -> b <> l && (not (mentions a1)) && not (mentions a2))
        s.guards;
  }

(* Overwrite local [l] with abstract value [d]. Collapses to [Bot] when
   [d] is bottom: the only transfer that produces bottom from reachable
   inputs is a faulting one (division by a definite zero), which no
   execution survives. *)
let set_val (c : ctx) (s : st) (l : int) (d : Dom.t) : astate =
  if Dom.is_bot d then Bot
  else
    let s = forget_facts s l in
    let s = { s with refs = IMap.remove l s.refs } in
    let d = if c.dirty.(l) then vec_zero else d in
    let keep = if c.is_vec.(l) then not (Dom.equal d vec_zero) else not (Dom.equal d Dom.top) in
    St { s with vals = (if keep then IMap.add l d s.vals else IMap.remove l s.vals) }

(* Havoc: [l] takes any value it can concretely have. *)
let havoc (c : ctx) (s : st) (l : int) : st =
  match set_val c s l (if c.is_vec.(l) then vec_zero else Dom.top) with
  | St s -> s
  | Bot -> assert false

let havoc_wild (c : ctx) (s : st) : st =
  ISet.fold (fun l s -> havoc c s l) s.wild s

(* Refine (meet) the value of [l] — used for guard/fault refinement,
   never invalidates facts. *)
let refine_val (c : ctx) (s : st) (l : int) (d : Dom.t) : astate =
  let d = Dom.meet (find_val c s l) d in
  if Dom.is_bot d then Bot
  else
    let keep =
      if c.is_vec.(l) then not (Dom.equal d vec_zero)
      else not (Dom.equal d Dom.top)
    in
    St
      {
        s with
        vals = (if keep then IMap.add l d s.vals else IMap.remove l s.vals);
      }

let add_diff (s : st) (x : int) (y : int) (cst : int) : st =
  let key = (x, y) in
  let cst =
    match PMap.find_opt key s.diffs with Some c -> min c cst | None -> cst
  in
  { s with diffs = PMap.add key cst s.diffs }

(** Upper bound of [x − y] from the recorded difference bounds (the
    direct edge only; transitive consequences were already folded in
    when the facts were created). *)
let diff_ub (s : st) (x : int) (y : int) : int option =
  PMap.find_opt (x, y) s.diffs

(* ------------------------------------------------------------------ *)
(* Operand / rvalue evaluation                                         *)
(* ------------------------------------------------------------------ *)

let eval_operand (c : ctx) (s : st) (o : Ir.operand) : Dom.t =
  match o with
  | Ir.Const (Ir.CInt (n, _)) -> Dom.const n
  | Ir.Const _ -> Dom.top
  | Ir.Copy p | Ir.Move p ->
      if p.Ir.projs = [] then find_val c s p.Ir.base else Dom.top

let atom_of_operand (o : Ir.operand) : atom option =
  match o with
  | Ir.Const (Ir.CInt (n, _)) -> Some (AC n)
  | Ir.Copy p | Ir.Move p -> if p.Ir.projs = [] then Some (AL p.Ir.base) else None
  | Ir.Const _ -> None

let eval_binop (op : Ast.binop) (a : Dom.t) (b : Dom.t) : Dom.t =
  match op with
  | Ast.Add -> Dom.add a b
  | Ast.Sub -> Dom.sub a b
  | Ast.Mul -> Dom.mul a b
  | Ast.Div -> Dom.div a b
  | Ast.Rem -> Dom.md a b
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.EqOp | Ast.NeOp | Ast.AndOp
  | Ast.OrOp | Ast.ImpOp ->
      (* boolean result: 0/1, precise when the comparison is decided *)
      if Dom.is_bot a || Dom.is_bot b then Dom.Bot
      else
        let decided v = Dom.const (if v then 1 else 0) in
        let unknown = Dom.range (Some 0) (Some 1) in
        (match op with
        | Ast.Lt ->
            if Dom.always_lt a b then decided true
            else if Dom.always_le b a then decided false
            else unknown
        | Ast.Le ->
            if Dom.always_le a b then decided true
            else if Dom.always_lt b a then decided false
            else unknown
        | Ast.Gt ->
            if Dom.always_lt b a then decided true
            else if Dom.always_le a b then decided false
            else unknown
        | Ast.Ge ->
            if Dom.always_le b a then decided true
            else if Dom.always_lt a b then decided false
            else unknown
        | Ast.EqOp ->
            if Dom.always_ne a b then decided false
            else (
              match (Dom.is_const a, Dom.is_const b) with
              | Some x, Some y -> decided (x = y)
              | _ -> unknown)
        | Ast.NeOp ->
            if Dom.always_ne a b then decided true
            else (
              match (Dom.is_const a, Dom.is_const b) with
              | Some x, Some y -> decided (x <> y)
              | _ -> unknown)
        | _ -> unknown)

(* ------------------------------------------------------------------ *)
(* Guard refinement                                                    *)
(* ------------------------------------------------------------------ *)

let eval_atom (c : ctx) (s : st) = function
  | AC n -> Dom.const n
  | AL l -> find_val c s l

(* Assume the comparison [a1 op a2] holds; [op] is one of the six
   comparison operators. Refines intervals and records difference
   bounds between locals. *)
let assume_cmp (c : ctx) (st0 : astate) ((op, a1, a2) : Ast.binop * atom * atom)
    : astate =
  match st0 with
  | Bot -> Bot
  | St s -> (
      let d1 = eval_atom c s a1 and d2 = eval_atom c s a2 in
      (* translate everything to a ≤ b + k form, both directions *)
      let apply s (lhs, rhs, k) =
        (* lhs ≤ rhs + k *)
        let dr = eval_atom c s rhs in
        let s =
          match lhs with
          | AL l -> (
              let bound =
                match dr with
                | Dom.Bot -> Dom.Bot
                | Dom.V { hi = Some h; _ } -> Dom.at_most (h + k)
                | _ -> Dom.top
              in
              match refine_val c s l bound with Bot -> None | St s -> Some s)
          | AC n -> (
              (* n ≤ rhs + k is a lower bound on rhs *)
              match rhs with
              | AL r -> (
                  match refine_val c s r (Dom.at_least (n - k)) with
                  | Bot -> None
                  | St s -> Some s)
              | AC m -> if n <= m + k then Some s else None)
        in
        match s with
        | None -> None
        | Some s -> (
            match (lhs, rhs) with
            | AL l, AL r -> Some (add_diff s l r k)
            | _ -> Some s)
      in
      let constraints =
        match op with
        | Ast.Lt -> [ (a1, a2, -1) ]
        | Ast.Le -> [ (a1, a2, 0) ]
        | Ast.Gt -> [ (a2, a1, -1) ]
        | Ast.Ge -> [ (a2, a1, 0) ]
        | Ast.EqOp -> [ (a1, a2, 0); (a2, a1, 0) ]
        | Ast.NeOp -> []
        | _ -> []
      in
      match op with
      | Ast.NeOp ->
          (* disjointness can only refute *)
          if Dom.is_bot d1 || Dom.is_bot d2 then Bot
          else (
            match (Dom.is_const d1, Dom.is_const d2) with
            | Some x, Some y when x = y -> Bot
            | _ -> St s)
      | Ast.EqOp when Dom.always_ne d1 d2 -> Bot
      | _ -> (
          let rec go s = function
            | [] -> St s
            | cstr :: rest -> (
                match apply s cstr with None -> Bot | Some s -> go s rest)
          in
          match go s constraints with
          | Bot -> Bot
          | St s ->
              (* symmetric pass: upper bounds on the smaller side *)
              let s =
                match (op, a1, a2) with
                | (Ast.Lt | Ast.Le), AL l, AL r -> (
                    let k = if op = Ast.Lt then -1 else 0 in
                    match eval_atom c s (AL l) with
                    | Dom.V { lo = Some lo1; _ } -> (
                        match refine_val c s r (Dom.at_least (lo1 - k)) with
                        | St s -> s
                        | Bot -> s)
                    | _ -> s)
                | (Ast.Gt | Ast.Ge), AL l, AL r -> (
                    let k = if op = Ast.Gt then -1 else 0 in
                    match eval_atom c s (AL r) with
                    | Dom.V { lo = Some lo2; _ } -> (
                        match refine_val c s l (Dom.at_least (lo2 - k)) with
                        | St s -> s
                        | Bot -> s)
                    | _ -> s)
                | _ -> s
              in
              St s))

let negate_cmp (op : Ast.binop) : Ast.binop option =
  match op with
  | Ast.Lt -> Some Ast.Ge
  | Ast.Le -> Some Ast.Gt
  | Ast.Gt -> Some Ast.Le
  | Ast.Ge -> Some Ast.Lt
  | Ast.EqOp -> Some Ast.NeOp
  | Ast.NeOp -> Some Ast.EqOp
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Statement transfer                                                  *)
(* ------------------------------------------------------------------ *)

let is_cmp = function
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.EqOp | Ast.NeOp -> true
  | _ -> false

let transfer_stmt (c : ctx) (st0 : astate) (stmt : Ir.stmt) : astate =
  match st0 with
  | Bot -> Bot
  | St s -> (
      match stmt with
      | Ir.SNop | Ir.SInvariant _ -> st0
      | Ir.SAssign (dest, rv, _) -> (
          match dest.Ir.projs with
          | Ir.PDeref :: _ -> (
              (* write through a reference *)
              match IMap.find_opt dest.Ir.base s.refs with
              | Some (RLocal (_, l)) -> St (havoc c s l)
              | Some RUnknown | None ->
                  (* unknown target: havoc everything addressable *)
                  let s = havoc_wild c s in
                  let s' = ref s in
                  Array.iteri
                    (fun l addr -> if addr then s' := havoc c !s' l)
                    c.addressable;
                  St !s')
          | Ir.PField _ :: _ ->
              (* struct locals are untracked; the write is invisible *)
              st0
          | [] -> (
              let l = dest.Ir.base in
              match rv with
              | Ir.RUse o -> (
                  let v = eval_operand c s o in
                  match set_val c s l v with
                  | Bot -> Bot
                  | St s -> (
                      (* propagate ref bindings and add copy equalities *)
                      match operand_base o with
                      | Some src when src <> l ->
                          let s =
                            match IMap.find_opt src s.refs with
                            | Some t -> { s with refs = IMap.add l t s.refs }
                            | None -> s
                          in
                          let s =
                            if
                              (not c.is_vec.(l))
                              && (not c.is_vec.(src))
                              && not (Dom.is_bot v)
                            then add_diff (add_diff s l src 0) src l 0
                            else if
                              c.is_vec.(l) && c.is_vec.(src)
                              && (not c.dirty.(l))
                              && not c.dirty.(src)
                            then add_diff (add_diff s l src 0) src l 0
                            else s
                          in
                          St s
                      | _ -> St s))
              | Ir.RBin (op, o1, o2) -> (
                  let v = eval_binop op (eval_operand c s o1) (eval_operand c s o2) in
                  match set_val c s l v with
                  | Bot -> Bot
                  | St s -> (
                      (* x = y ± const: difference bounds in both
                         directions *)
                      let s =
                        match (op, atom_of_operand o1, atom_of_operand o2) with
                        | Ast.Add, Some (AL y), Some (AC k)
                        | Ast.Add, Some (AC k), Some (AL y)
                          when y <> l ->
                            add_diff (add_diff s l y k) y l (-k)
                        | Ast.Sub, Some (AL y), Some (AC k) when y <> l ->
                            add_diff (add_diff s l y (-k)) y l k
                        | _ -> s
                      in
                      (* record comparison guards on the bool result *)
                      if is_cmp op then
                        match (atom_of_operand o1, atom_of_operand o2) with
                        | Some a1, Some a2 ->
                            St { s with guards = IMap.add l (op, a1, a2) s.guards }
                        | _ -> St s
                      else St s))
              | Ir.RUn (un, o) -> (
                  let v =
                    match un with
                    | Ast.NegOp -> Dom.neg (eval_operand c s o)
                    | Ast.Not -> Dom.sub (Dom.const 1) (eval_operand c s o)
                  in
                  match set_val c s l v with
                  | Bot -> Bot
                  | St s -> (
                      (* !b inherits b's guard, negated *)
                      match (un, operand_base o) with
                      | Ast.Not, Some b -> (
                          match IMap.find_opt b s.guards with
                          | Some (op, a1, a2) -> (
                              match negate_cmp op with
                              | Some op' ->
                                  St
                                    {
                                      s with
                                      guards = IMap.add l (op', a1, a2) s.guards;
                                    }
                              | None -> St s)
                          | None -> St s)
                      | _ -> St s))
              | Ir.RRef (mu, p) -> (
                  match set_val c s l Dom.top with
                  | Bot -> Bot
                  | St s ->
                      let tgt =
                        if p.Ir.projs = [] then RLocal (mu, p.Ir.base)
                        else RUnknown
                      in
                      St { s with refs = IMap.add l tgt s.refs })
              | Ir.RAggregate (_, fields) ->
                  (* any mutable reference packed into the aggregate
                     escapes: its target becomes wild *)
                  let wild =
                    List.fold_left
                      (fun w (_, o) ->
                        match operand_base o with
                        | Some b -> (
                            match IMap.find_opt b s.refs with
                            | Some (RLocal (Ast.Mut, t)) -> ISet.add t w
                            | Some RUnknown ->
                                (* unknown target: everything whose
                                   address was ever taken may alias *)
                                let w = ref w in
                                Array.iteri
                                  (fun l addr -> if addr then w := ISet.add l !w)
                                  c.addressable;
                                !w
                            | _ -> w)
                        | None -> w)
                      s.wild fields
                  in
                  let s = { s with wild } in
                  set_val c s l Dom.top)))

(* ------------------------------------------------------------------ *)
(* Terminator / edge transfer                                          *)
(* ------------------------------------------------------------------ *)

let vec_method (f : string) : string option =
  if String.length f > 6 && String.sub f 0 6 = "RVec::" then
    Some (String.sub f 6 (String.length f - 6))
  else None

(* The vector local a receiver reference designates, when tracked. *)
let recv_target (s : st) (args : Ir.operand list) : int option =
  match args with
  | recv :: _ -> (
      match operand_base recv with
      | Some t -> (
          match IMap.find_opt t s.refs with
          | Some (RLocal (_, l)) -> Some l
          | _ -> None)
      | None -> None)
  | [] -> None

(* Refine an index operand after a bounds-checked access survived:
   0 ≤ i < len v. *)
let refine_index (c : ctx) (st0 : astate) (vec : int option)
    (idx : Ir.operand) : astate =
  match st0 with
  | Bot -> Bot
  | St s -> (
      match operand_base idx with
      | Some i when not c.is_vec.(i) -> (
          let len =
            match vec with Some v -> find_val c s v | None -> vec_zero
          in
          let upper =
            match len with
            | Dom.V { hi = Some h; _ } -> Dom.range (Some 0) (Some (h - 1))
            | _ -> Dom.at_least 0
          in
          match refine_val c s i upper with
          | Bot -> Bot
          | St s -> (
              let s =
                match vec with
                | Some v -> add_diff s i v (-1) (* i ≤ len v − 1 *)
                | None -> s
              in
              (* the length, conversely, exceeds the index *)
              match vec with
              | Some v when not c.dirty.(v) -> (
                  match find_val c s i with
                  | Dom.V { lo = Some lo; _ } ->
                      refine_val c s v (Dom.at_least (lo + 1))
                  | _ -> St s)
              | _ -> St s))
      | _ -> (
          (* constant or untracked index: still refines the length *)
          match (vec, eval_operand c s idx) with
          | Some v, Dom.V { lo = Some lo; _ } when not c.dirty.(v) ->
              refine_val c s v (Dom.at_least (lo + 1))
          | _ -> st0))

let drop_vec_diffs (s : st) (v : int) : st =
  { s with diffs = PMap.filter (fun (x, y) _ -> x <> v && y <> v) s.diffs }

let transfer_call (c : ctx) (st0 : astate) ~(dst : int)
    (tc : Ir.terminator) : astate =
  match (st0, tc) with
  | Bot, _ -> Bot
  | St s, Ir.TCall { tc_func; tc_args; tc_dest; tc_target; _ } -> (
      if tc_target <> dst then Bot
      else
        let assign_dest st0 v =
          match st0 with
          | Bot -> Bot
          | St s -> (
              match tc_dest.Ir.projs with
              | [] -> set_val c s tc_dest.Ir.base v
              | _ -> St s)
        in
        let dest_default st0 =
          match st0 with
          | Bot -> Bot
          | St s -> (
              match tc_dest.Ir.projs with
              | [] ->
                  set_val c s tc_dest.Ir.base
                    (if c.is_vec.(tc_dest.Ir.base) then vec_zero else Dom.top)
              | _ -> St s)
        in
        match vec_method tc_func with
        | Some "new" -> assign_dest (St s) (Dom.const 0)
        | Some "len" -> (
            match recv_target s tc_args with
            | Some v -> (
                let lv = find_val c s v in
                match assign_dest (St s) lv with
                | Bot -> Bot
                | St s -> (
                    match tc_dest.Ir.projs with
                    | [] when (not c.is_vec.(tc_dest.Ir.base)) && not c.dirty.(v)
                      ->
                        let d = tc_dest.Ir.base in
                        if d <> v then St (add_diff (add_diff s d v 0) v d 0)
                        else St s
                    | _ -> St s))
            | None -> assign_dest (St s) vec_zero)
        | Some "is_empty" -> dest_default (St s)
        | Some "push" -> (
            match recv_target s tc_args with
            | Some v ->
                let s = drop_vec_diffs s v in
                let grown = Dom.add (find_val c s v) (Dom.const 1) in
                (match set_val c s v (Dom.meet grown vec_zero) with
                | Bot -> Bot
                | St s -> dest_default (St s))
            | None ->
                (* unknown receiver: any vector may have grown *)
                let s' = ref s in
                Array.iteri
                  (fun l isv -> if isv then s' := havoc c !s' l)
                  c.is_vec;
                dest_default (St !s'))
        | Some "pop" -> (
            match recv_target s tc_args with
            | Some v -> (
                (* pop faults on empty: survivors had len ≥ 1 *)
                match refine_val c s v (Dom.at_least 1) with
                | Bot -> Bot
                | St s ->
                    let s = drop_vec_diffs s v in
                    let shrunk = Dom.add (find_val c s v) (Dom.const (-1)) in
                    (match set_val c s v (Dom.meet shrunk vec_zero) with
                    | Bot -> Bot
                    | St s -> dest_default (St s)))
            | None ->
                let s' = ref s in
                Array.iteri
                  (fun l isv -> if isv then s' := havoc c !s' l)
                  c.is_vec;
                dest_default (St !s'))
        | Some ("get" | "get_mut") -> (
            let v = recv_target s tc_args in
            match tc_args with
            | [ _; idx ] -> dest_default (refine_index c (St s) v idx)
            | _ -> dest_default (St s))
        | Some "swap" -> (
            let v = recv_target s tc_args in
            match tc_args with
            | [ _; i; j ] ->
                dest_default (refine_index c (refine_index c (St s) v i) v j)
            | _ -> dest_default (St s))
        | Some "clone" -> (
            match recv_target s tc_args with
            | Some v -> assign_dest (St s) (find_val c s v)
            | None -> dest_default (St s))
        | Some _ -> dest_default (St s)
        | None ->
            (* user function: mutable ref args havoc their targets;
               wild locals may be reachable through stored aliases *)
            let s = havoc_wild c s in
            let s =
              List.fold_left
                (fun s o ->
                  match operand_base o with
                  | Some b -> (
                      match IMap.find_opt b s.refs with
                      | Some (RLocal (Ast.Mut, l)) -> havoc c s l
                      | Some RUnknown ->
                          let s' = ref s in
                          Array.iteri
                            (fun l addr -> if addr then s' := havoc c !s' l)
                            c.addressable;
                          !s'
                      | _ -> s)
                  | None -> s)
                s tc_args
            in
            dest_default (St s))
  | _, _ -> Bot

let transfer_edge (c : ctx) ~(src : int) ~(dst : int) (term : Ir.terminator)
    (st0 : astate) : astate =
  ignore src;
  match st0 with
  | Bot -> Bot
  | St s -> (
      match term with
      | Ir.TGoto _ -> st0
      | Ir.TReturn | Ir.TUnreachable -> Bot (* no CFG successors *)
      | Ir.TCall _ -> transfer_call c st0 ~dst term
      | Ir.TSwitch (op, then_bb, else_bb) -> (
          let taken_true = dst = then_bb and taken_false = dst = else_bb in
          (* the same block can be both targets; then no refinement *)
          if taken_true && taken_false then st0
          else
            match op with
            | Ir.Const (Ir.CBool b) ->
                if (b && taken_true) || ((not b) && taken_false) then st0
                else Bot
            | _ -> (
                match operand_base op with
                | Some b -> (
                    match IMap.find_opt b s.guards with
                    | Some (cmp, a1, a2) ->
                        if taken_true then assume_cmp c st0 (cmp, a1, a2)
                        else (
                          match negate_cmp cmp with
                          | Some cmp' -> assume_cmp c st0 (cmp', a1, a2)
                          | None -> st0)
                    | None -> st0)
                | None -> st0)))

(* ------------------------------------------------------------------ *)
(* Lattice operations on states                                        *)
(* ------------------------------------------------------------------ *)

let join_st (a : st) (b : st) : st =
  {
    vals =
      IMap.merge
        (fun _ va vb ->
          match (va, vb) with
          | Some va, Some vb ->
              let j = Dom.join va vb in
              if Dom.equal j Dom.top then None else Some j
          | _ -> None (* missing = ⊤ on one side *))
        a.vals b.vals;
    diffs =
      PMap.merge
        (fun _ ca cb ->
          match (ca, cb) with
          | Some ca, Some cb -> Some (max ca cb)
          | _ -> None)
        a.diffs b.diffs;
    guards =
      IMap.merge
        (fun _ ga gb ->
          match (ga, gb) with
          | Some ga, Some gb when ga = gb -> Some ga
          | _ -> None)
        a.guards b.guards;
    refs =
      IMap.merge
        (fun _ ra rb ->
          match (ra, rb) with
          | Some ra, Some rb when ra = rb -> Some ra
          | _ -> None)
        a.refs b.refs;
    wild = ISet.union a.wild b.wild;
  }

let widen_st (old : st) (nw : st) : st =
  {
    vals =
      IMap.merge
        (fun _ vo vn ->
          match (vo, vn) with
          | Some vo, Some vn ->
              let w = Dom.widen vo vn in
              if Dom.equal w Dom.top then None else Some w
          | _ -> None)
        old.vals nw.vals;
    diffs =
      PMap.merge
        (fun _ co cn ->
          match (co, cn) with
          | Some co, Some cn when cn <= co -> Some co
          | _ -> None)
        old.diffs nw.diffs;
    guards =
      IMap.merge
        (fun _ go gn ->
          match (go, gn) with
          | Some go, Some gn when go = gn -> Some go
          | _ -> None)
        old.guards nw.guards;
    refs =
      IMap.merge
        (fun _ ro rn ->
          match (ro, rn) with
          | Some ro, Some rn when ro = rn -> Some ro
          | _ -> None)
        old.refs nw.refs;
    wild = ISet.union old.wild nw.wild;
  }

let narrow_st (old : st) (nw : st) : st =
  {
    nw with
    vals =
      IMap.merge
        (fun _ vo vn ->
          match (vo, vn) with
          | Some vo, Some vn ->
              let n = Dom.narrow vo vn in
              if Dom.equal n Dom.top then None else Some n
          | None, Some vn -> Some vn
          | Some vo, None -> Some vo
          | None, None -> None)
        old.vals nw.vals;
  }

let equal_st (a : st) (b : st) : bool =
  IMap.equal Dom.equal a.vals b.vals
  && PMap.equal ( = ) a.diffs b.diffs
  && IMap.equal ( = ) a.guards b.guards
  && IMap.equal ( = ) a.refs b.refs
  && ISet.equal a.wild b.wild

(* ------------------------------------------------------------------ *)
(* The fixpoint                                                        *)
(* ------------------------------------------------------------------ *)

type analysis = {
  ctx : ctx;
  block_in : astate array;
  block_out : astate array;  (** after statements, before the terminator *)
}

let analyze (b : Ir.body) : analysis =
  let ctx = make_ctx b in
  let module D = struct
    type t = astate

    let init (b : Ir.body) : t =
      (* arguments: integers unconstrained (usize can underflow in the
         concrete semantics, so no n ≥ 0 assumption); vector lengths
         are genuinely nonnegative *)
      ignore b;
      St empty_st

    let bottom _ = Bot

    let join a b =
      match (a, b) with
      | Bot, x | x, Bot -> x
      | St a, St b -> St (join_st a b)

    let widen a b =
      match (a, b) with
      | Bot, x | x, Bot -> x
      | St a, St b -> St (widen_st a b)

    let narrow a b =
      match (a, b) with
      | Bot, _ | _, Bot -> Bot
      | St a, St b -> St (narrow_st a b)

    let equal a b =
      match (a, b) with
      | Bot, Bot -> true
      | St a, St b -> equal_st a b
      | _ -> false

    let transfer_stmt _ fact s = transfer_stmt ctx fact s
    let transfer_edge _ ~src ~dst term fact = transfer_edge ctx ~src ~dst term fact
  end in
  let module F = Dataflow.MakeWiden (D) in
  let r = F.run b in
  { ctx; block_in = r.F.block_in; block_out = r.F.block_out }

let block_entry (a : analysis) (i : int) : astate = a.block_in.(i)
let before_term (a : analysis) (i : int) : astate = a.block_out.(i)

(** Iterate all statements with the state in force {e before} each. *)
let iter_stmts (a : analysis) (f : block:int -> Ir.stmt -> astate -> unit) :
    unit =
  Array.iteri
    (fun i blk ->
      let fact = ref a.block_in.(i) in
      List.iter
        (fun s ->
          f ~block:i s !fact;
          fact := transfer_stmt a.ctx !fact s)
        blk.Ir.stmts)
    a.ctx.body.Ir.mb_blocks

(* ------------------------------------------------------------------ *)
(* γ-containment (the fuzz-oracle contract)                            *)
(* ------------------------------------------------------------------ *)

(** [contains st lookup]: does the concrete store lie in γ(st)?
    [lookup l] returns the integer view of local [l] — the value of an
    integer local, the {e length} of a vector local — or [None] when
    the local is undefined/non-numeric at this point. Unreachable
    abstract states contain nothing: reaching one concretely is
    exactly the soundness violation the oracle reports. *)
let contains (st0 : astate) (lookup : int -> int option) : bool =
  match st0 with
  | Bot -> false
  | St s ->
      IMap.for_all
        (fun l d ->
          match lookup l with Some n -> Dom.mem n d | None -> true)
        s.vals
      && PMap.for_all
           (fun (x, y) cst ->
             match (lookup x, lookup y) with
             | Some nx, Some ny -> nx - ny <= cst
             | _ -> true)
           s.diffs

let local_value (c : analysis) (st0 : astate) (l : int) : Dom.t =
  match st0 with Bot -> Dom.Bot | St s -> find_val c.ctx s l

let state_diff_ub (st0 : astate) (x : int) (y : int) : int option =
  match st0 with Bot -> Some min_int | St s -> diff_ub s x y

let state_eval_operand (a : analysis) (st0 : astate) (o : Ir.operand) : Dom.t =
  match st0 with Bot -> Dom.Bot | St s -> eval_operand a.ctx s o

let state_recv_target (st0 : astate) (args : Ir.operand list) : int option =
  match st0 with Bot -> None | St s -> recv_target s args

let is_vec_local (a : analysis) (l : int) : bool = a.ctx.is_vec.(l)
