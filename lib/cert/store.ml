(** Certificate files: one text file of [(cert <tag> <proof>)] lines
    per verified function, stored next to the verdict entry in the
    on-disk cache under the same content key ([<key>.cert] beside
    [<key>.entry]). Because the key hashes the function's source and
    environment, a certificate can never be replayed against the wrong
    code. Plain s-expression text — not [Marshal] — so certificates
    survive compiler upgrades and can be inspected (and tampered with,
    in the meta-tests) with a text editor. *)

open Flux_smt

let path (dir : string) (key : string) : string =
  Filename.concat dir (key ^ ".cert")

(** Atomic write (temp file + rename); never raises — certificate
    emission is an optimization, losing one is only a future cache
    demotion. *)
let save (dir : string) (key : string) (entries : (int * Proof.t) list) :
    unit =
  let file = path dir key in
  let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
  match open_out_bin tmp with
  | exception Sys_error _ -> ()
  | oc ->
      let written =
        try
          output_string oc (Proof.cert_to_string entries);
          close_out oc;
          true
        with Sys_error _ ->
          close_out_noerr oc;
          false
      in
      if written then (try Sys.rename tmp file with Sys_error _ -> ())
      else try Sys.remove tmp with Sys_error _ -> ()

type loaded =
  | Missing  (** no certificate file (plain cache miss) *)
  | Corrupt  (** present but unparseable: counts as a replay failure *)
  | Loaded of (int * Proof.t) list

let load (dir : string) (key : string) : loaded =
  let file = path dir key in
  match open_in_bin file with
  | exception Sys_error _ -> Missing
  | ic -> (
      let src =
        try
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          Some s
        with Sys_error _ | End_of_file ->
          close_in_noerr ic;
          None
      in
      match src with
      | None -> Corrupt
      | Some src -> (
          match Proof.cert_of_string src with
          | entries -> Loaded entries
          | exception
              ( Proof.Parse_error _ | Failure _ | Invalid_argument _
              | Term.Ill_sorted _ ) ->
              Corrupt))

let remove (dir : string) (key : string) : unit =
  try Sys.remove (path dir key) with Sys_error _ -> ()
