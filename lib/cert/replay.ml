(** Independent replay checker for {!Flux_smt.Proof} certificates.

    Trust story: accepting a certificate must not require trusting the
    solver, so this module shares {e no} code with it. The trusted base
    is
    + {!Flux_smt.Term}'s smart constructors (used to re-derive the
      elaborated skeleton and the allowed definitional facts),
    + the ~40-line association-list linear arithmetic below (used to
      re-add every Farkas combination from scratch — certificates
      store only multipliers, never intermediate rows, so a tampered
      hint cannot be covered up), and
    + {!Flux_smt.Eval}'s ground evaluation (a final spot check that
      enumerates a small box of inputs and rejects if the supposedly
      valid goal evaluates to [false] anywhere).

    The checker validates, in order: the fresh-variable discipline
    (names are new and acyclically defined — which is what makes "every
    model of the negated goal extends to the fresh variables" true),
    that every recorded definitional fact is licensed by a recorded
    fresh fact, that the recorded skeleton is exactly the re-derived
    elaboration of the negated goal, and that the case-split tree
    closes every path — propositionally, or by a theory derivation
    ending in a positive constant row [k ≤ 0].

    Every rejection carries a distinct {!error}; [Ok ()] means the goal
    is valid whenever the trusted base is correct, independently of any
    solver bug. *)

open Flux_smt

type error =
  | Bad_sexp of string  (** unparseable certificate text *)
  | Bad_fresh of string  (** fresh-variable discipline violated *)
  | Bad_def of string  (** a recorded def is not licensed *)
  | Skeleton_mismatch of string  (** re-derived elaboration differs *)
  | Bad_tree of string  (** split/unit structure invalid *)
  | Bad_refutation of string  (** theory-leaf derivation broken *)
  | Goal_falsified of string  (** ground evaluation found a countermodel *)

let error_to_string = function
  | Bad_sexp m -> "malformed certificate: " ^ m
  | Bad_fresh m -> "bad fresh fact: " ^ m
  | Bad_def m -> "unlicensed definition: " ^ m
  | Skeleton_mismatch m -> "skeleton mismatch: " ^ m
  | Bad_tree m -> "bad search tree: " ^ m
  | Bad_refutation m -> "bad theory refutation: " ^ m
  | Goal_falsified m -> "goal falsified by ground evaluation: " ^ m

exception Reject of error

let reject e = raise (Reject e)

module TermTbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Stdlib.Hashtbl.hash
end)

(* ------------------------------------------------------------------ *)
(* Linear forms (independent of the solver's)                          *)
(* ------------------------------------------------------------------ *)

module Lin = struct
  type t = { coeffs : (string * int) list; const : int }
  (** sorted by variable name, coefficients nonzero *)

  let const k = { coeffs = []; const = k }
  let var x = { coeffs = [ (x, 1) ]; const = 0 }

  let add a b =
    let rec merge xs ys =
      match (xs, ys) with
      | [], l | l, [] -> l
      | (x, cx) :: xs', (y, cy) :: ys' ->
          if x = y then
            let c = cx + cy in
            if c = 0 then merge xs' ys' else (x, c) :: merge xs' ys'
          else if x < y then (x, cx) :: merge xs' ys
          else (y, cy) :: merge xs ys'
    in
    { coeffs = merge a.coeffs b.coeffs; const = a.const + b.const }

  let scale k a =
    if k = 0 then const 0
    else
      { coeffs = List.map (fun (x, c) -> (x, k * c)) a.coeffs;
        const = k * a.const }

  let sub a b = add a (scale (-1) b)
  let is_const a = a.coeffs = []
  let plus1 a = { a with const = a.const + 1 }

  let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

  let fdiv a b =
    let q = a / b and r = a mod b in
    if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

  (** Integer tightening: [Σcᵢxᵢ + k ≤ 0] with [g = gcd cᵢ > 1]
      implies [Σ(cᵢ/g)xᵢ + ⌈k/g⌉ ≤ 0]. Undefined on constant rows. *)
  let tighten a =
    if is_const a then reject (Bad_refutation "tighten on constant row")
    else
      let g = List.fold_left (fun g (_, c) -> gcd c g) 0 a.coeffs in
      if g <= 1 then a
      else
        { coeffs = List.map (fun (x, c) -> (x, c / g)) a.coeffs;
          const = -fdiv (-a.const) g }
end

exception Nonlinear

let rec lin_of_term (t : Term.t) : Lin.t =
  match t with
  | Term.Var (x, _) -> Lin.var x
  | Term.Int n -> Lin.const n
  | Term.Neg a -> Lin.scale (-1) (lin_of_term a)
  | Term.Binop (Term.Add, a, b) -> Lin.add (lin_of_term a) (lin_of_term b)
  | Term.Binop (Term.Sub, a, b) -> Lin.sub (lin_of_term a) (lin_of_term b)
  | Term.Binop (Term.Mul, Term.Int k, a)
  | Term.Binop (Term.Mul, a, Term.Int k) ->
      Lin.scale k (lin_of_term a)
  | _ -> raise Nonlinear

(** The row [≤ 0] asserted by atom [t] assigned [pol] (direction [dir]
    selects a side for equalities). This table {e defines} what an atom
    means arithmetically — e.g. [a < b] iff [a - b + 1 ≤ 0] over the
    integers — and is justified on its own, not by mirroring the
    solver. *)
let row_of_atom (t : Term.t) (pol : bool) (dir : int) : Lin.t =
  match t with
  | Term.Cmp (op, a, b) -> (
      if dir <> 1 then reject (Bad_refutation "directed comparison hypothesis")
      else
        try
          let d = Lin.sub (lin_of_term a) (lin_of_term b) in
          match (op, pol) with
          | Term.Lt, true -> Lin.plus1 d
          | Term.Lt, false -> Lin.scale (-1) d
          | Term.Le, true -> d
          | Term.Le, false -> Lin.plus1 (Lin.scale (-1) d)
          | Term.Gt, true -> Lin.plus1 (Lin.scale (-1) d)
          | Term.Gt, false -> d
          | Term.Ge, true -> Lin.scale (-1) d
          | Term.Ge, false -> Lin.plus1 d
        with Nonlinear -> reject (Bad_refutation "nonlinear hypothesis"))
  | Term.Eq (a, b) -> (
      if not pol then reject (Bad_refutation "disequality used as hypothesis")
      else
        try
          let d = Lin.sub (lin_of_term a) (lin_of_term b) in
          if dir = 1 then d
          else if dir = -1 then Lin.scale (-1) d
          else reject (Bad_refutation "bad direction")
        with Nonlinear -> reject (Bad_refutation "nonlinear hypothesis"))
  | _ -> reject (Bad_refutation "non-arithmetic hypothesis")

(* ------------------------------------------------------------------ *)
(* Mirror elaboration                                                  *)
(* ------------------------------------------------------------------ *)

let rec has_real (t : Term.t) =
  match t with
  | Term.Real _ | Term.Var (_, Sort.Real) -> true
  | Term.Var _ | Term.Int _ | Term.Bool _ -> false
  | Term.Neg a | Term.Not a -> has_real a
  | Term.Binop (_, a, b)
  | Term.Cmp (_, a, b)
  | Term.Eq (a, b)
  | Term.Ne (a, b)
  | Term.Imp (a, b)
  | Term.Iff (a, b) ->
      has_real a || has_real b
  | Term.And ts | Term.Or ts | Term.App (_, ts) -> List.exists has_real ts
  | Term.Ite (a, b, c) -> has_real a || has_real b || has_real c

type mirror = {
  keyed : Term.t TermTbl.t;  (** opaque/quotient key → fresh variable *)
  mutable itevs : (Term.t * Term.t * Term.t * Term.t) list;
      (** pending ite facts, in introduction order *)
}

let lookup m (key : Term.t) : Term.t =
  match TermTbl.find_opt m.keyed key with
  | Some v -> v
  | None ->
      reject
        (Skeleton_mismatch
           ("no fresh fact for " ^ Term.to_string key))

let rec e_int m (t : Term.t) : Term.t =
  match t with
  | Term.Var _ | Term.Int _ -> t
  | Term.Real _ -> lookup m t
  | Term.Neg a -> Term.neg (e_int m a)
  | Term.Binop (Term.Add, a, b) -> Term.add (e_int m a) (e_int m b)
  | Term.Binop (Term.Sub, a, b) -> Term.sub (e_int m a) (e_int m b)
  | Term.Binop (Term.Mul, a, b) -> (
      let a = e_int m a and b = e_int m b in
      match (a, b) with
      | Term.Int _, _ | _, Term.Int _ -> Term.mul a b
      | _ -> lookup m (Term.Binop (Term.Mul, a, b)))
  | Term.Binop (Term.Div, a, Term.Int c) when c > 0 ->
      let a = e_int m a in
      lookup m (Term.Binop (Term.Div, a, Term.int c))
  | Term.Binop (Term.Mod, a, Term.Int c) when c > 0 ->
      let a = e_int m a in
      let q = lookup m (Term.Binop (Term.Div, a, Term.int c)) in
      Term.sub a (Term.mul (Term.int c) q)
  | Term.Binop ((Term.Div | Term.Mod), _, _) -> lookup m t
  | Term.App (f, args) ->
      let args = List.map (e_int m) args in
      lookup m (Term.App (f, args))
  | Term.Ite (c, a, b) -> (
      let c = e_pred m c in
      let a = e_int m a and b = e_int m b in
      match m.itevs with
      | (c', a', b', v) :: rest
        when Term.equal c c' && Term.equal a a' && Term.equal b b' ->
          m.itevs <- rest;
          v
      | _ -> reject (Skeleton_mismatch "ite fact out of order"))
  | _ -> reject (Skeleton_mismatch ("ill-sorted term " ^ Term.to_string t))

and e_pred m (t : Term.t) : Term.t =
  match t with
  | Term.Bool _ -> t
  | Term.Var (_, Sort.Bool) -> t
  | Term.Var _ -> reject (Skeleton_mismatch "ill-sorted variable")
  | Term.Cmp (op, a, b) ->
      if has_real a || has_real b then lookup m t
      else Term.mk_cmp op (e_int m a) (e_int m b)
  | Term.Eq (a, b) | Term.Ne (a, b) -> (
      let mk x y =
        match t with Term.Eq _ -> Term.mk_eq x y | _ -> Term.mk_ne x y
      in
      match Term.sort_of a with
      | Sort.Bool ->
          let p = Term.mk_iff (e_pred m a) (e_pred m b) in
          (match t with Term.Eq _ -> p | _ -> Term.mk_not p)
      | Sort.Real -> lookup m t
      | Sort.Int | Sort.Loc ->
          if has_real a || has_real b then lookup m t
          else mk (e_int m a) (e_int m b))
  | Term.And ts -> Term.mk_and (List.map (e_pred m) ts)
  | Term.Or ts -> Term.mk_or (List.map (e_pred m) ts)
  | Term.Not a -> Term.mk_not (e_pred m a)
  | Term.Imp (a, b) -> Term.mk_imp (e_pred m a) (e_pred m b)
  | Term.Iff (a, b) -> Term.mk_iff (e_pred m a) (e_pred m b)
  | Term.Ite (c, a, b) ->
      let c = e_pred m c in
      Term.mk_or
        [ Term.mk_and [ c; e_pred m a ];
          Term.mk_and [ Term.mk_not c; e_pred m b ] ]
  | Term.App _ -> lookup m t
  | Term.Int _ | Term.Real _ | Term.Binop _ | Term.Neg _ ->
      reject (Skeleton_mismatch ("ill-sorted term " ^ Term.to_string t))

(* ------------------------------------------------------------------ *)
(* NNF and propositional simplification                                *)
(* ------------------------------------------------------------------ *)

type bform = BTrue | BFalse | BLit of int * bool | BAnd of bform list | BOr of bform list

let rec to_bform (ids : int TermTbl.t) pol (t : Term.t) : bform =
  match t with
  | Term.Bool b -> if b = pol then BTrue else BFalse
  | Term.Not a -> to_bform ids (not pol) a
  | Term.And ts ->
      if pol then BAnd (List.map (to_bform ids true) ts)
      else BOr (List.map (to_bform ids false) ts)
  | Term.Or ts ->
      if pol then BOr (List.map (to_bform ids true) ts)
      else BAnd (List.map (to_bform ids false) ts)
  | Term.Imp (a, b) ->
      if pol then BOr [ to_bform ids false a; to_bform ids true b ]
      else BAnd [ to_bform ids true a; to_bform ids false b ]
  | Term.Iff (a, b) ->
      if pol then
        BOr
          [ BAnd [ to_bform ids true a; to_bform ids true b ];
            BAnd [ to_bform ids false a; to_bform ids false b ] ]
      else
        BOr
          [ BAnd [ to_bform ids true a; to_bform ids false b ];
            BAnd [ to_bform ids false a; to_bform ids true b ] ]
  | Term.Ne (a, b) -> to_bform ids (not pol) (Term.Eq (a, b))
  | Term.Var _ | Term.Cmp _ | Term.Eq _ -> (
      match TermTbl.find_opt ids t with
      | Some i -> BLit (i, pol)
      | None -> reject (Bad_tree ("atom missing from table: " ^ Term.to_string t)))
  | _ -> reject (Bad_tree ("non-atomic leaf: " ^ Term.to_string t))

let rec simplify (assign : int array) (f : bform) : bform =
  match f with
  | BTrue | BFalse -> f
  | BLit (i, pol) -> (
      match assign.(i) with
      | 0 -> f
      | 1 -> if pol then BTrue else BFalse
      | _ -> if pol then BFalse else BTrue)
  | BAnd fs ->
      let fs = List.map (simplify assign) fs in
      if List.exists (fun f -> f = BFalse) fs then BFalse
      else begin
        match List.filter (fun f -> f <> BTrue) fs with
        | [] -> BTrue
        | [ f ] -> f
        | fs -> BAnd fs
      end
  | BOr fs ->
      let fs = List.map (simplify assign) fs in
      if List.exists (fun f -> f = BTrue) fs then BTrue
      else begin
        match List.filter (fun f -> f <> BFalse) fs with
        | [] -> BFalse
        | [ f ] -> f
        | fs -> BOr fs
      end

(* ------------------------------------------------------------------ *)
(* Theory refutations                                                  *)
(* ------------------------------------------------------------------ *)

(** Check a derivation of [k ≤ 0], [k > 0] from the literals assigned
    on the current path. [ctx] maps disequality atoms to the branch
    side currently active. *)
let check_trefut (atoms : Term.t array) (assign : int array)
    (tr : Proof.trefut) : unit =
  let natoms = Array.length atoms in
  let diseq_row i (side : [ `Le | `Ge ]) ctx =
    match List.assoc_opt i ctx with
    | Some (s, d) when s = side -> d
    | Some _ -> reject (Bad_refutation "wrong disequality branch")
    | None -> reject (Bad_refutation "disequality split not in scope")
  in
  let rec go ctx tr =
    match tr with
    | Proof.Dsplit (i, l, r) ->
        if i < 0 || i >= natoms then
          reject (Bad_refutation "split atom out of range");
        if assign.(i) <> 2 then
          reject (Bad_refutation "disequality split on non-false atom");
        let d =
          match atoms.(i) with
          | Term.Eq (a, b) -> (
              try Lin.sub (lin_of_term a) (lin_of_term b)
              with Nonlinear ->
                reject (Bad_refutation "nonlinear disequality"))
          | _ -> reject (Bad_refutation "disequality split on non-equality")
        in
        go ((i, (`Le, Lin.plus1 d)) :: ctx) l;
        go ((i, (`Ge, Lin.plus1 (Lin.scale (-1) d))) :: ctx) r
    | Proof.Steps steps ->
        if steps = [] then reject (Bad_refutation "empty derivation");
        let rows = Array.make (List.length steps) (Lin.const 0) in
        let row_of_src k = function
          | Proof.Hyp (i, pol, dir) ->
              if i < 0 || i >= natoms then
                reject (Bad_refutation "hypothesis atom out of range");
              if assign.(i) <> (if pol then 1 else 2) then
                reject (Bad_refutation "hypothesis not on this path");
              row_of_atom atoms.(i) pol dir
          | Proof.Step j ->
              if j < 0 || j >= k then
                reject (Bad_refutation "forward step reference");
              rows.(j)
          | Proof.Dle i -> diseq_row i `Le ctx
          | Proof.Dge i -> diseq_row i `Ge ctx
        in
        List.iteri
          (fun k step ->
            rows.(k) <-
              (match step with
              | Proof.Comb [] -> reject (Bad_refutation "empty combination")
              | Proof.Comb ks ->
                  List.fold_left
                    (fun acc (c, s) ->
                      if c < 0 then
                        reject (Bad_refutation "negative multiplier");
                      Lin.add acc (Lin.scale c (row_of_src k s)))
                    (Lin.const 0) ks
              | Proof.Tight s -> Lin.tighten (row_of_src k s)))
          steps;
        let final = rows.(Array.length rows - 1) in
        if not (Lin.is_const final && final.Lin.const > 0) then
          reject (Bad_refutation "derivation does not end in 0 < 0")
  in
  go [] tr

(* ------------------------------------------------------------------ *)
(* Main check                                                          *)
(* ------------------------------------------------------------------ *)

let names_of (t : Term.t) : string list =
  Term.VarSet.elements (Term.free_vars t)

(** Walk the fresh facts: every name must be new, every payload must
    only mention the goal's variables and earlier fresh names. Returns
    the populated mirror tables plus the allowed-defs set. *)
let build_mirror (goal : Term.t) (fresh : Proof.fresh list) :
    mirror * unit TermTbl.t =
  let known : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun x -> Hashtbl.replace known x ()) (names_of goal);
  let m = { keyed = TermTbl.create 32; itevs = [] } in
  let allowed : unit TermTbl.t = TermTbl.create 64 in
  let allow d = TermTbl.replace allowed d () in
  let apps : (string * Term.t list * Term.t) list ref = ref [] in
  let payload_ok t =
    List.for_all (Hashtbl.mem known) (names_of t)
  in
  let intro name =
    if Hashtbl.mem known name then
      reject (Bad_fresh ("name not fresh: " ^ name));
    Hashtbl.replace known name ()
  in
  let itevs = ref [] in
  List.iter
    (fun (f : Proof.fresh) ->
      match f with
      | Proof.Divmod (a, c, q) ->
          if c <= 0 then reject (Bad_fresh "non-positive divisor");
          if not (payload_ok a) then
            reject (Bad_fresh ("forward reference in divmod of " ^ q));
          intro q;
          let qv = Term.var ~sort:Sort.Int q in
          TermTbl.replace m.keyed
            (Term.Binop (Term.Div, a, Term.int c))
            qv;
          let r = Term.sub a (Term.mul (Term.int c) qv) in
          allow (Term.lt (Term.int (-c)) r);
          allow (Term.lt r (Term.int c));
          allow
            (Term.mk_imp (Term.ge a (Term.int 0)) (Term.ge r (Term.int 0)));
          allow
            (Term.mk_imp (Term.le a (Term.int 0)) (Term.le r (Term.int 0)))
      | Proof.Opaque (key, v, sort) ->
          if not (payload_ok key) then
            reject (Bad_fresh ("forward reference in opaque key of " ^ v));
          intro v;
          let vv = Term.var ~sort v in
          TermTbl.replace m.keyed key vv;
          (match key with
          | Term.Binop (Term.Mul, a, b) ->
              (* products are commutative: the solver registers both
                 orientations under one variable *)
              TermTbl.replace m.keyed (Term.Binop (Term.Mul, b, a)) vv
          | Term.App (f, args) ->
              (* congruence with every other application of the same
                 symbol is licensed (a superset of what the solver
                 emits under its pair filter — harmless, since defs
                 only strengthen the refuted conjunction soundly) *)
              List.iter
                (fun (f', args', vv') ->
                  if f = f' && List.length args = List.length args' then begin
                    let cong xs ys u w =
                      Term.mk_imp
                        (Term.mk_and (List.map2 Term.eq xs ys))
                        (Term.eq u w)
                    in
                    allow (cong args args' vv vv');
                    allow (cong args' args vv' vv)
                  end)
                !apps;
              apps := (f, args, vv) :: !apps
          | _ -> ())
      | Proof.IteV (c, a, b, v) ->
          if not (payload_ok c && payload_ok a && payload_ok b) then
            reject (Bad_fresh ("forward reference in ite of " ^ v));
          intro v;
          let vv = Term.var ~sort:Sort.Int v in
          itevs := (c, a, b, vv) :: !itevs;
          allow (Term.mk_imp c (Term.eq vv a));
          allow (Term.mk_imp (Term.mk_not c) (Term.eq vv b)))
    fresh;
  m.itevs <- List.rev !itevs;
  (m, allowed)

(** Enumerate a small input box and reject if the goal ever evaluates
    to [false] — pure ground evaluation, independent of everything
    above. Goals that cannot be evaluated (reals, applications, too
    many variables) are skipped. *)
let spot_check (goal : Term.t) : unit =
  let vars = Term.free_vars_sorted goal in
  if List.length vars <= 4 then
    match
      (try
         Eval.find_assignment ~ints:[ -2; -1; 0; 1; 2 ] vars (fun env ->
             match Eval.eval_bool env goal with
             | true -> None
             | false ->
                 Some
                   (String.concat ", "
                      (List.map
                         (fun (x, _) ->
                           Format.asprintf "%s = %a" x Eval.pp_value (env x))
                         vars)))
       with Eval.Unsupported _ | Division_by_zero | Not_found -> None)
    with
    | Some cex -> reject (Goal_falsified cex)
    | None -> ()

let check ?goal (p : Proof.t) : (unit, error) result =
  try
    (match goal with
    | Some g when not (Term.equal g p.Proof.goal) ->
        reject (Skeleton_mismatch "certificate is for a different goal")
    | _ -> ());
    let m, allowed = build_mirror p.Proof.goal p.Proof.fresh in
    (* every recorded def must be licensed by a fresh fact *)
    List.iter
      (fun d ->
        if not (TermTbl.mem allowed d) then
          reject (Bad_def (Term.to_string d)))
      p.Proof.defs;
    (* the recorded skeleton must be exactly the re-derived elaboration
       of the negated goal *)
    let skel = e_pred m (Term.mk_not p.Proof.goal) in
    if not (Term.equal skel p.Proof.skeleton) then
      reject
        (Skeleton_mismatch
           (Term.to_string skel ^ " <> " ^ Term.to_string p.Proof.skeleton));
    (* atoms must be boolean-sorted (they receive truth values in the
       model-extension argument) *)
    Array.iter
      (fun a ->
        match Term.sort_of a with
        | Sort.Bool -> ()
        | _ -> reject (Bad_tree "non-boolean atom")
        | exception Term.Ill_sorted _ -> reject (Bad_tree "ill-sorted atom"))
      p.Proof.atoms;
    let conj = Term.mk_and (p.Proof.skeleton :: p.Proof.defs) in
    (match conj with
    | Term.Bool false -> (
        match p.Proof.tree with
        | Proof.BoolLeaf -> ()
        | _ -> reject (Bad_tree "expected propositional leaf"))
    | Term.Bool true -> reject (Bad_tree "nothing to refute")
    | _ ->
        let ids : int TermTbl.t = TermTbl.create 64 in
        Array.iteri
          (fun i a -> if not (TermTbl.mem ids a) then TermTbl.add ids a i)
          p.Proof.atoms;
        let bf = to_bform ids true conj in
        let n = Array.length p.Proof.atoms in
        let assign = Array.make n 0 in
        let rec walk (t : Proof.tree) : unit =
          match t with
          | Proof.BoolLeaf ->
              if simplify assign bf <> BFalse then
                reject (Bad_tree "open path at propositional leaf")
          | Proof.TheoryLeaf tr -> check_trefut p.Proof.atoms assign tr
          | Proof.Unit (i, pol, sub) ->
              if i < 0 || i >= n then
                reject (Bad_tree "unit atom out of range");
              if assign.(i) <> 0 then
                reject (Bad_tree "unit on assigned atom");
              (* the opposite branch must close propositionally — that
                 is what makes covering only one side complete *)
              assign.(i) <- (if pol then 2 else 1);
              let closed = simplify assign bf = BFalse in
              assign.(i) <- 0;
              if not closed then reject (Bad_tree "unit literal not forced");
              assign.(i) <- (if pol then 1 else 2);
              Fun.protect
                ~finally:(fun () -> assign.(i) <- 0)
                (fun () -> walk sub)
          | Proof.Split (i, l, r) ->
              if i < 0 || i >= n then
                reject (Bad_tree "split atom out of range");
              if assign.(i) <> 0 then
                reject (Bad_tree "split on assigned atom");
              assign.(i) <- 1;
              Fun.protect
                ~finally:(fun () -> assign.(i) <- 0)
                (fun () -> walk l);
              assign.(i) <- 2;
              Fun.protect
                ~finally:(fun () -> assign.(i) <- 0)
                (fun () -> walk r)
        in
        walk p.Proof.tree);
    spot_check p.Proof.goal;
    Ok ()
  with
  | Reject e -> Error e
  | Term.Ill_sorted m -> Error (Bad_tree ("ill-sorted term: " ^ m))

let check_string ?goal (src : string) : (unit, error) result =
  match Proof.of_string src with
  | p -> check ?goal p
  | exception Proof.Parse_error m -> Error (Bad_sexp m)
  | exception Failure m -> Error (Bad_sexp m)
  | exception Invalid_argument m -> Error (Bad_sexp m)
  | exception Term.Ill_sorted m -> Error (Bad_sexp m)
