(** Seeded generator of well-typed Rust-subset programs for the
    soundness oracle.

    Two families, weighted toward the constructs that stress refinement
    inference:

    - the {b vector} family: a function over [&mut RVec<i32>] and two
      [usize] parameters, with arbitrary (possibly out-of-bounds) index
      arithmetic, guarded and unguarded reads/writes, while loops over
      the length, and optionally a refinement signature whose binders
      relate the indices to the length;
    - the {b integer} family: pure arithmetic over two [i32] parameters
      (including [/] and [%] by nonzero constants — the encoding PR 1
      fixed), with a refined return type drawn from a template pool and
      optional [requires] clauses.

    Programs are emitted as source text: the oracle parses them back,
    so the frontend is fuzzed for free, and the shrinker can work on
    the parsed AST through {!Flux_syntax.Ast.program_to_source}.

    The generator deliberately produces a healthy mix of programs the
    checker accepts and rejects; the meta-test in [test/test_fuzz.ml]
    pins that mix so the soundness property can never become vacuous. *)

(* ------------------------------------------------------------------ *)
(* Shared expression/statement skeleton                                *)
(* ------------------------------------------------------------------ *)

type gexpr =
  | GVar of string
  | GInt of int
  | GBin of string * gexpr * gexpr  (** rendered infix, parenthesized *)
  | GLen  (** v.len() *)

type gcond =
  | GCmp of string * gexpr * gexpr
  | GAnd of gcond * gcond
  | GNot of gcond
  | GBVar of string  (** a boolean local *)

type gstmt =
  | GLet of string * bool * gexpr  (** name, mutable?, init *)
  | GLetB of string * gcond  (** boolean local *)
  | GAssign of string * gexpr
  | GRead of gexpr  (** acc = acc + *v.get(e); *)
  | GWrite of gexpr  (** *v.get_mut(e) = acc; *)
  | GIf of gcond * gstmt list * gstmt list
  | GWhile of gcond * gstmt list

let rec render_expr = function
  | GVar x -> x
  | GInt n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | GBin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (render_expr a) op (render_expr b)
  | GLen -> "v.len()"

let rec render_cond = function
  | GCmp (op, a, b) -> Printf.sprintf "%s %s %s" (render_expr a) op (render_expr b)
  | GAnd (a, b) -> Printf.sprintf "(%s) && (%s)" (render_cond a) (render_cond b)
  | GNot c -> Printf.sprintf "!(%s)" (render_cond c)
  | GBVar x -> x

let rec render_stmt ind (s : gstmt) : string =
  let pad = String.make ind ' ' in
  let body ind ss = String.concat "\n" (List.map (render_stmt ind) ss) in
  match s with
  | GLet (x, m, e) ->
      Printf.sprintf "%slet %s%s = %s;" pad (if m then "mut " else "") x
        (render_expr e)
  | GLetB (x, c) -> Printf.sprintf "%slet %s = %s;" pad x (render_cond c)
  | GAssign (x, e) -> Printf.sprintf "%s%s = %s;" pad x (render_expr e)
  | GRead e -> Printf.sprintf "%sacc = acc + *v.get(%s);" pad (render_expr e)
  | GWrite e -> Printf.sprintf "%s*v.get_mut(%s) = acc;" pad (render_expr e)
  | GIf (c, t, []) ->
      Printf.sprintf "%sif %s {\n%s\n%s}" pad (render_cond c) (body (ind + 4) t)
        pad
  | GIf (c, t, e) ->
      Printf.sprintf "%sif %s {\n%s\n%s} else {\n%s\n%s}" pad (render_cond c)
        (body (ind + 4) t) pad (body (ind + 4) e) pad
  | GWhile (c, b) ->
      Printf.sprintf "%swhile %s {\n%s\n%s}" pad (render_cond c)
        (body (ind + 4) b) pad

(* ------------------------------------------------------------------ *)
(* Vector family                                                       *)
(* ------------------------------------------------------------------ *)

let vec_index_expr rng : gexpr =
  let base () =
    Rng.frequency rng
      [
        (4, GVar "i");
        (2, GVar "a");
        (1, GVar "b");
        (2, GInt (Rng.range rng 0 3));
        (2, GLen);
      ]
  in
  Rng.frequency rng
    [
      (4, base ());
      (2, GBin ("+", base (), base ()));
      (2, GBin ("-", base (), base ()));
      (1, GBin ("/", base (), GInt (Rng.range rng 2 4)));
      (1, GBin ("%", base (), GInt (Rng.range rng 2 4)));
      (1, GBin ("-", GLen, GInt 1));
    ]

let vec_cond rng : gcond =
  let e () = vec_index_expr rng in
  Rng.frequency rng
    [
      (4, GCmp ("<", e (), GLen));
      (2, GCmp ("<", e (), e ()));
      (1, GCmp ("<=", e (), e ()));
      (1, GAnd (GCmp ("<=", GInt 0, e ()), GCmp ("<", e (), GLen)));
    ]

(** Subtraction-free index expressions: non-negative by construction
    (all variables are [usize]), so a [e < v.len()] guard is exactly
    the proof obligation the checker must discharge. *)
let vec_safe_idx rng : gexpr =
  let base () =
    Rng.frequency rng
      [
        (4, GVar "i");
        (2, GVar "a");
        (1, GVar "b");
        (2, GInt (Rng.range rng 0 3));
      ]
  in
  Rng.frequency rng
    [
      (4, base ());
      (2, GBin ("+", base (), base ()));
      (1, GBin ("/", base (), GInt (Rng.range rng 2 4)));
      (1, GBin ("%", base (), GInt (Rng.range rng 2 4)));
    ]

(** A bounds-guarded access: verifiable iff the checker relates the
    guard to the access (branch path conditions + [usize]
    non-negativity) — the accepted side of the mix. *)
let guarded_access rng : gstmt =
  let e = vec_safe_idx rng in
  let access = if Rng.int rng 3 < 2 then GRead e else GWrite e in
  GIf (GCmp ("<", e, GLen), [ access ], [])

(** The classic verifiable traversal (needs loop-invariant inference
    for [i]). *)
let canonical_loop rng : gstmt =
  GWhile
    ( GCmp ("<", GVar "i", GLen),
      [
        (if Rng.bool rng then GRead (GVar "i") else GWrite (GVar "i"));
        GAssign ("i", GBin ("+", GVar "i", GInt 1));
      ] )

let rec vec_stmt rng depth : gstmt =
  let leaf () =
    Rng.frequency rng
      [
        (2, GRead (vec_index_expr rng));
        (2, GWrite (vec_index_expr rng));
        (3, guarded_access rng);
        (2, GAssign ("i", GBin ("+", GVar "i", GInt (Rng.range rng 1 2))));
        (1, GAssign ("i", vec_index_expr rng));
      ]
  in
  if depth <= 0 then leaf ()
  else
    Rng.frequency rng
      [
        (4, leaf ());
        (2, canonical_loop rng);
        ( 2,
          GIf
            ( vec_cond rng,
              [ vec_stmt rng (depth - 1) ],
              if Rng.bool rng then [ vec_stmt rng (depth - 1) ] else [] ) );
        ( 2,
          GWhile
            ( GCmp ("<", GVar "i", GLen),
              [
                vec_stmt rng (depth - 1);
                GAssign ("i", GBin ("+", GVar "i", GInt (Rng.range rng 1 2)));
              ] ) );
      ]

let vec_sig rng : string option =
  if Rng.int rng 2 = 0 then None
  else
    let a_rty =
      Rng.frequency rng
        [
          (3, "usize{k: k < n}");
          (2, "usize");
          (1, "usize{k: k + k < n + n}");
        ]
    in
    let req =
      Rng.frequency rng [ (2, ""); (2, " requires 0 < n"); (1, " requires 1 < n") ]
    in
    Some
      (Printf.sprintf "#[lr::sig(fn(&mut RVec<i32, @n>, %s, usize) -> i32%s)]"
         a_rty req)

let vec_program rng : string =
  let n = Rng.range rng 1 5 in
  let stmts = List.init n (fun _ -> vec_stmt rng (Rng.range rng 0 2)) in
  let sig_line = match vec_sig rng with Some s -> s ^ "\n" | None -> "" in
  Printf.sprintf
    "%sfn f(v: &mut RVec<i32>, a: usize, b: usize) -> i32 {\n\
    \    let mut acc = 0;\n\
    \    let mut i = 0;\n\
     %s\n\
    \    acc\n\
     }"
    sig_line
    (String.concat "\n" (List.map (render_stmt 4) stmts))

(* ------------------------------------------------------------------ *)
(* Integer family                                                      *)
(* ------------------------------------------------------------------ *)

let int_expr rng ~(vars : (int * gexpr) list) depth : gexpr =
  let base () = Rng.frequency rng ((2, GInt (Rng.range rng (-3) 4)) :: vars) in
  let rec go depth =
    if depth <= 0 then base ()
    else
      Rng.frequency rng
        [
          (3, base ());
          (3, GBin (Rng.choose rng [ "+"; "-" ], go (depth - 1), go (depth - 1)));
          (1, GBin ("*", go (depth - 1), GInt (Rng.range rng (-2) 3)));
          ( 2,
            GBin
              ( Rng.choose rng [ "/"; "%" ],
                go (depth - 1),
                GInt (Rng.choose rng [ -3; -2; 2; 3; 4 ]) ) );
        ]
  in
  go depth

(** Variable pools: the initializer of [x] may only mention the
    parameters; statements may also mention [x]. *)
let param_vars = [ (3, GVar "a"); (3, GVar "b") ]
let body_vars = (2, GVar "x") :: param_vars

let int_cond rng : gcond =
  let e () = int_expr rng ~vars:body_vars 1 in
  Rng.frequency rng
    [
      (3, GCmp (Rng.choose rng [ "<"; "<="; "=="; "!=" ], e (), e ()));
      (2, GCmp ("<=", GInt 0, e ()));
      (1, GNot (GCmp ("<", e (), e ())));
    ]

let rec int_stmt rng depth : gstmt =
  let leaf () =
    Rng.frequency rng
      [
        (4, GAssign ("x", int_expr rng ~vars:body_vars 2));
        (2, GAssign ("x", GBin ("+", GVar "x", int_expr rng ~vars:body_vars 1)));
      ]
  in
  if depth <= 0 then leaf ()
  else
    Rng.frequency rng
      [
        (4, leaf ());
        ( 3,
          GIf
            ( int_cond rng,
              [ int_stmt rng (depth - 1) ],
              if Rng.bool rng then [ int_stmt rng (depth - 1) ] else [] ) );
        ( 1,
          (* a bounded counting loop: terminates on every input *)
          GWhile
            ( GCmp ("<", GVar "t", GInt (Rng.range rng 1 4)),
              [ int_stmt rng (depth - 1); GAssign ("t", GBin ("+", GVar "t", GInt 1)) ]
            ) );
      ]

(** Postcondition templates over the binders [a], [b] and the value
    [v]. The first pool is valid for {e any} body (tautologies the
    checker must still discharge); the second is body-dependent and
    mostly rejected — together they give the acceptance mix both
    sides. *)
let int_post rng : string =
  Rng.frequency rng
    [
      ( 2,
        Rng.choose rng
          [ "v <= v + 1"; "0 <= v - v"; "v == v"; "a + v <= v + a + 1" ] );
      ( 3,
        Rng.choose rng
          [
            "0 <= v";
            "v < 10";
            "a <= v";
            "v <= a + b";
            "v + v <= a + b + b + 9";
            "v == a";
            "a - 1 <= v + v";
            "0 <= v + v";
            "v <= 100";
            "b <= v + 20";
          ] );
    ]

let int_requires rng : string =
  Rng.frequency rng
    [
      (3, "");
      (2, " requires 0 <= a");
      (1, " requires 0 <= a && 0 <= b");
      (1, " requires a < b");
      (1, " requires 0 < a && a <= 8");
    ]

let int_program rng : string =
  let n = Rng.range rng 1 4 in
  let stmts = List.init n (fun _ -> int_stmt rng (Rng.range rng 0 2)) in
  (* the abs-shaped variant is verifiable and stresses branch joins *)
  let abs_shaped = Rng.int rng 4 = 0 in
  let post = if abs_shaped then "0 <= v" else int_post rng in
  let tail =
    if abs_shaped then "if x < 0 { 0 - x } else { x }"
    else
      Rng.frequency rng
        [
          (3, "x");
          (2, render_expr (int_expr rng ~vars:body_vars 1));
          (1, "x + 1");
        ]
  in
  Printf.sprintf
    "#[lr::sig(fn(i32<@a>, i32<@b>) -> i32{v: %s}%s)]\n\
     fn f(a: i32, b: i32) -> i32 {\n\
    \    let mut x = %s;\n\
    \    let mut t = 0;\n\
     %s\n\
    \    %s\n\
     }"
    post (int_requires rng)
    (render_expr (int_expr rng ~vars:param_vars 1))
    (String.concat "\n" (List.map (render_stmt 4) stmts))
    tail

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)
(* ------------------------------------------------------------------ *)

(** Generate one program (source text; the single function is named
    [f]). *)
let gen (rng : Rng.t) : string =
  if Rng.int rng 5 < 3 then vec_program rng else int_program rng
