(** A small, fully deterministic PRNG for the fuzzing subsystem
    (splitmix64).

    Every randomized path in the fuzzer threads one of these explicitly
    — there is no [Random.self_init] (or global [Random] state) anywhere
    in the tree — so any failure reproduces exactly from the seed
    printed in its report, independent of the stdlib's generator
    version, the platform, or how many domains ran the campaign.

    [split] derives an independent child stream from a parent and a
    stream index; the campaign driver gives every case its own child,
    so case [i] generates identical input no matter which worker domain
    (or how many cases before it) ran. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make (seed : int) : t = { state = Int64.of_int seed }

let next (t : t) : int64 =
  t.state <- Int64.add t.state golden;
  mix t.state

(** Derive an independent generator for stream [i] of [t]'s seed,
    without advancing [t]. *)
let split (t : t) (i : int) : t =
  { state = mix (Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) 0xD1342543DE82EF95L)) }

(** Uniform in [0, bound); [bound] must be positive. *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

(** Uniform in [lo, hi] inclusive. *)
let range (t : t) (lo : int) (hi : int) : int = lo + int t (hi - lo + 1)

let bool (t : t) : bool = int t 2 = 0

(** Pick uniformly from a non-empty list. *)
let choose (t : t) (xs : 'a list) : 'a = List.nth xs (int t (List.length xs))

(** Weighted choice: [(w1, x1); ...] with positive weights. *)
let frequency (t : t) (xs : (int * 'a) list) : 'a =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 xs in
  let n = int t total in
  let rec go n = function
    | [] -> invalid_arg "Rng.frequency: empty"
    | (w, x) :: rest -> if n < w then x else go (n - w) rest
  in
  go n xs
