(** The differential oracles.

    Each oracle examines one randomly generated case and returns a
    {!verdict} — with any bug already shrunk to a minimal reproducer.
    All four exploit verdicts with a {e definite} polarity, so a
    mismatch is always a real bug, never solver incompleteness showing
    through:

    - {b soundness} — executable Theorem 3.2. If the checker verifies a
      program, running it on any input satisfying its precondition must
      not fault (no out-of-bounds access, no division by zero), and any
      produced value must satisfy the declared return refinement.
      Divergence (fuel exhaustion) is {e not} a violation: verification
      is partial-correctness.
    - {b solver differential} — [Solver.valid t = true] asserts truth
      under {e every} integer/boolean assignment, so one falsifying
      assignment in a finite box refutes it; dually a satisfying
      assignment refutes [Solver.sat t = false]. (The converses prove
      nothing — [valid = false] may be abstraction incompleteness — so
      they are not checked.)
    - {b fixpoint self-check} — a [Sat] answer from the fixpoint solver
      claims the κ assignment satisfies every Horn clause; substitute
      it back and re-verify each clause independently of the weakening
      loop's worklist bookkeeping.
    - {b certificate replay} — a [valid] verdict that produces a proof
      certificate must be accepted by the independent replay checker
      ({!Flux_cert.Replay}), which shares no solver code; rejection of
      a fresh (or round-tripped) certificate is always a bug in either
      the certifying solver or the checker.
    - {b full-vs-incremental differential} — the SCC-sliced schedule
      ({!Flux_fixpoint.Solve.solve_clauses_incremental}) promises
      verdicts, failure order and rendered solutions {e byte-identical}
      to the reference sweep ({!Flux_fixpoint.Solve.solve_clauses_full});
      any textual divergence on any generated κ system is a bug in the
      dependency graph, the skip bookkeeping, or the memo layers.

    The checker/solver entry points are injectable so the test suite
    can seed known-broken implementations (e.g. a Euclidean remainder
    encoding) and assert the pipeline catches and shrinks them.

    Every case derives its randomness from an {!Rng.t} the caller
    obtained via {!Rng.split}, and no oracle ever {e advances} the
    generator it is handed beyond its own case — results are a pure
    function of (seed, case index). *)

module Ast = Flux_syntax.Ast
module Checker = Flux_check.Checker
module Interp = Flux_interp.Interp
open Flux_smt
open Flux_fixpoint

type bug = {
  b_oracle : string;
      (** "soundness" | "solver" | "cert" | "fixpoint" | "incremental" *)
  b_seed : int;  (** campaign seed (reprinted in every report) *)
  b_case : int;  (** global case index within the campaign *)
  b_descr : string;  (** one-line description of the violation *)
  b_repro : string;  (** shrunk reproducer file contents *)
  b_ext : string;
      (** corpus file extension: "rs" / "term" / "cterm" / "horn" *)
}

(** Per-case outcome. [Skip] means the case tested nothing (checker
    rejected the program, or no precondition-satisfying input was
    found); [Frontend] means the generator emitted something the
    parser/typechecker rejected — not a soundness bug, but counted
    separately so generator/frontend drift is visible (the meta-tests
    pin it to zero). *)
type verdict = Ok | Skip | Frontend | Bug of bug

let shrink_budget = 400

(* ------------------------------------------------------------------ *)
(* Soundness                                                           *)
(* ------------------------------------------------------------------ *)

(** A pure description of one argument tuple; fresh [Interp.value]s are
    built per run because vector arguments are mutated in place. *)
type ival = IInt of int | IBool of bool | IVec of int list

let build_value = function
  | IInt n -> Interp.VInt n
  | IBool b -> Interp.VBool b
  | IVec ns ->
      Interp.VRefCell
        (ref
           (Interp.VVec
              (Interp.vec_of_list (List.map (fun n -> Interp.VInt n) ns))))

let ival_to_string = function
  | IInt n -> string_of_int n
  | IBool b -> string_of_bool b
  | IVec ns ->
      Printf.sprintf "vec![%s]" (String.concat ", " (List.map string_of_int ns))

(** Sample one candidate argument for a parameter type; [None] when the
    type is outside the sampled subset (structs, floats). *)
let rec gen_ival (rng : Rng.t) (ty : Ast.ty) : ival option =
  match ty with
  | Ast.TInt Ast.Usize -> Some (IInt (Rng.range rng 0 5))
  | Ast.TInt _ -> Some (IInt (Rng.range rng (-4) 4))
  | Ast.TBool -> Some (IBool (Rng.bool rng))
  | Ast.TVec (Ast.TInt _) ->
      let len = Rng.range rng 0 4 in
      Some (IVec (List.init len (fun _ -> Rng.range rng (-3) 3)))
  | Ast.TRef (_, t) -> gen_ival rng t
  | _ -> None

let fuel = 200_000
let input_attempts = 16
let max_runs = 6

(** Run the parsed program's [f] on precondition-satisfying inputs;
    return a violation description if any run faults (or breaks its
    return refinement). Only splits [rng], never advances it. *)
let run_on_inputs (rng : Rng.t) (prog : Ast.program) : string option =
  match Ast.find_fn prog "f" with
  | None -> None
  | Some fd ->
      let tys = List.map snd fd.Ast.fn_params in
      let rec attempt i runs =
        if i >= input_attempts || runs >= max_runs then None
        else
          let case_rng = Rng.split rng i in
          match
            List.fold_left
              (fun acc ty ->
                match acc with
                | None -> None
                | Some xs -> (
                    match gen_ival case_rng ty with
                    | Some v -> Some (v :: xs)
                    | None -> None))
              (Some []) tys
          with
          | None -> None (* unsampleable parameter type: skip program *)
          | Some rev_ivals -> (
              let ivals = List.rev rev_ivals in
              let args = List.map build_value ivals in
              match Spec_eval.precond_holds fd args with
              | Some true -> (
                  let call =
                    Printf.sprintf "f(%s)"
                      (String.concat ", " (List.map ival_to_string ivals))
                  in
                  match Interp.run ~fuel prog "f" args with
                  | Interp.OFault f ->
                      Some
                        (Format.asprintf "%s faulted: %a" call Interp.pp_fault
                           f)
                  | Interp.OValue v -> (
                      match Spec_eval.postcond_holds fd args v with
                      | Some false ->
                          Some
                            (Format.asprintf
                               "%s returned %a, violating its return \
                                refinement"
                               call Interp.pp_value v)
                      | _ -> attempt (i + 1) (runs + 1))
                  | Interp.ODiverged -> attempt (i + 1) (runs + 1))
              | _ -> attempt (i + 1) runs)
      in
      attempt 0 0

let parse_and_typecheck (src : string) : Ast.program option =
  match
    let prog = Flux_syntax.Parser.parse_program src in
    Flux_syntax.Typeck.check_program prog;
    prog
  with
  | prog -> Some prog
  | exception _ -> None

(** The full pipeline on source text: parse, typecheck, verify with
    [check], and if verified execute on sampled inputs. Used both for
    fresh cases and (with the same [input_rng]) by the shrinker's
    failure predicate. *)
let soundness_violation ~(check : Ast.program -> bool) ~(input_rng : Rng.t)
    (src : string) : string option =
  match parse_and_typecheck src with
  | None -> None
  | Some prog -> (
      match check prog with
      | exception _ -> None
      | false -> None
      | true -> run_on_inputs input_rng prog)

let default_check (prog : Ast.program) : bool =
  Checker.report_ok (Checker.check_program_ast prog)

let soundness_case ?(check = default_check) ~(seed : int) ~(case : int)
    (rng : Rng.t) : verdict =
  let gen_rng = Rng.split rng 0 in
  let input_rng = Rng.split rng 1 in
  let src = Pgen.gen gen_rng in
  match parse_and_typecheck src with
  | None -> Frontend
  | Some prog -> (
      match check prog with
      | exception _ -> Skip
      | false -> Skip
      | true -> (
          match run_on_inputs input_rng prog with
          | None -> Ok
          | Some descr ->
              let fails s = soundness_violation ~check ~input_rng s <> None in
              let repro =
                Shrink.minimize_program ~budget:shrink_budget fails prog
              in
              Bug
                {
                  b_oracle = "soundness";
                  b_seed = seed;
                  b_case = case;
                  b_descr = descr;
                  b_repro = repro;
                  b_ext = "rs";
                }))

(* ------------------------------------------------------------------ *)
(* Solver differential                                                 *)
(* ------------------------------------------------------------------ *)

(** A definite-polarity mismatch for [t], if any: a falsifying
    assignment refuting [valid t = true], a satisfying assignment
    refuting [sat t = false], or a claimed counterexample model that
    ground evaluation does not confirm (every [invalid] claim must come
    with an [Eval]-confirmed falsifying model). *)
let solver_mismatch ~(valid : Term.t -> bool) ~(sat : Term.t -> bool)
    ?(counterexample = Solver.counterexample) (t : Term.t) : string option =
  try
    let vars = Term.free_vars_sorted t in
    let render env =
      String.concat ", "
        (List.map
           (fun (x, _) ->
             Format.asprintf "%s = %a" x Eval.pp_value (env x))
           vars)
    in
    let search want =
      Eval.find_assignment ~ints:Tgen.int_box vars (fun env ->
          match Eval.eval_bool env t with
          | b when b = want -> Some (render env)
          | _ -> None
          | exception Division_by_zero -> None)
    in
    let refuted_valid =
      if valid t then
        match search false with
        | Some a -> Some ("claimed valid, falsified by " ^ a)
        | None -> None
      else None
    in
    match refuted_valid with
    | Some _ -> refuted_valid
    | None -> (
        let refuted_sat =
          if sat t then None
          else
            match search true with
            | Some a -> Some ("claimed unsat, satisfied by " ^ a)
            | None -> None
        in
        match refuted_sat with
        | Some _ -> refuted_sat
        | None -> (
            (* counterexample cross-check: a model claiming to falsify
               [t] must be confirmed by ground evaluation *)
            match counterexample t with
            | None -> None
            | Some model -> (
                let env x =
                  match List.assoc_opt x model with
                  | Some v -> v
                  | None -> (
                      match List.assoc_opt x vars with
                      | Some Sort.Bool -> Eval.VBool false
                      | _ -> Eval.VInt 0)
                in
                let rendered =
                  String.concat ", "
                    (List.map
                       (fun (x, v) ->
                         Format.asprintf "%s = %a" x Eval.pp_value v)
                       model)
                in
                match Eval.eval_bool env t with
                | false -> None
                | true ->
                    Some
                      ("claimed counterexample does not falsify: " ^ rendered)
                | exception Division_by_zero -> None)))
  with Eval.Unsupported _ -> None

let solver_case ?(valid = Solver.valid) ?(sat = Solver.sat)
    ?(counterexample = Solver.counterexample) ~(seed : int) ~(case : int)
    (rng : Rng.t) : verdict =
  let t = Tgen.gen rng in
  match solver_mismatch ~valid ~sat ~counterexample t with
  | None -> Ok
  | Some _ ->
      let fails t' =
        match solver_mismatch ~valid ~sat ~counterexample t' with
        | Some _ -> true
        | None -> false
        | exception _ -> false
      in
      let t' = Shrink.minimize_term ~budget:shrink_budget fails t in
      let descr =
        match solver_mismatch ~valid ~sat ~counterexample t' with
        | Some d -> Format.asprintf "%a — %s" Term.pp t' d
        | None | (exception _) -> Format.asprintf "%a" Term.pp t'
      in
      Bug
        {
          b_oracle = "solver";
          b_seed = seed;
          b_case = case;
          b_descr = descr;
          b_repro = Repro.term_to_string t';
          b_ext = "term";
        }

(* ------------------------------------------------------------------ *)
(* Certificate replay                                                   *)
(* ------------------------------------------------------------------ *)

module Replay = Flux_cert.Replay

(** A certificate-pipeline violation for [t], if any. The polarity is
    definite on the certified side: [certify] returning [None] is
    solver incompleteness (not a bug), but a produced certificate must
    (a) name exactly the goal it was asked about, (b) be accepted by
    the independent replay checker, and (c) still be accepted after a
    print/parse round-trip — replay shares no code with the solver, so
    acceptance is independent evidence for the [valid] verdict. *)
let cert_violation ~(valid : Term.t -> bool)
    ~(certify : Term.t -> Proof.t option) (t : Term.t) : string option =
  if not (try valid t with _ -> false) then None
  else
    match (try certify t with _ -> None) with
    | None -> None
    | Some p ->
        if not (Term.equal p.Proof.goal t) then
          Some "certificate names a different goal than the query"
        else (
          match Replay.check ~goal:t p with
          | Error e ->
              Some
                ("replay rejected a fresh certificate: "
                ^ Replay.error_to_string e)
          | Ok () -> (
              match Replay.check_string ~goal:t (Proof.to_string p) with
              | Error e ->
                  Some
                    ("replay rejected the round-tripped certificate: "
                    ^ Replay.error_to_string e)
              | Ok () -> None))

let cert_case ?(valid = Solver.valid) ?(certify = Solver.certify)
    ~(seed : int) ~(case : int) (rng : Rng.t) : verdict =
  let t = Tgen.gen rng in
  match cert_violation ~valid ~certify t with
  | None -> Ok
  | Some _ ->
      let fails t' =
        match cert_violation ~valid ~certify t' with
        | Some _ -> true
        | None -> false
        | exception _ -> false
      in
      let t' = Shrink.minimize_term ~budget:shrink_budget fails t in
      let descr =
        match cert_violation ~valid ~certify t' with
        | Some d -> Format.asprintf "%a — %s" Term.pp t' d
        | None | (exception _) -> Format.asprintf "%a" Term.pp t'
      in
      Bug
        {
          b_oracle = "cert";
          b_seed = seed;
          b_case = case;
          b_descr = descr;
          b_repro = Repro.term_to_string t';
          b_ext = "cterm";
        }

(* ------------------------------------------------------------------ *)
(* Fixpoint self-check                                                 *)
(* ------------------------------------------------------------------ *)

let default_solve ~kvars clauses = Solve.solve_clauses ~kvars clauses

(** A violated fixpoint invariant for this κ system, if any: a [Sat]
    solution failing re-validation, or an [Unsat] failure list that
    disagrees with re-checking its own clauses. *)
let fixpoint_violation
    ~(solve : kvars:Horn.kvar list -> Horn.clause list -> Solve.result)
    (kvars : Horn.kvar list) (clauses : Horn.clause list) : string option =
  match solve ~kvars clauses with
  | exception _ -> None
  | Solve.Sat sol -> (
      match Solve.validate_solution ~kvars sol clauses with
      | [] -> None
      | failing ->
          Some
            (Format.asprintf
               "Sat solution fails re-validation on clause(s) %s under@ %a"
               (String.concat ", "
                  (List.map (fun c -> string_of_int c.Horn.tag) failing))
               Solve.pp_solution sol))
  | Solve.Unsat (failures, sol) -> (
      (* every reported failure must really fail under the solution *)
      match
        List.find_opt
          (fun f -> Solve.check_clause ~kvars sol f.Solve.f_clause)
          failures
      with
      | Some f ->
          Some
            (Printf.sprintf
               "Unsat failure on clause %d passes re-checking (phantom \
                failure)"
               f.Solve.f_tag)
      | None -> None)

let fixpoint_case ?(solve = default_solve) ~(seed : int) ~(case : int)
    (rng : Rng.t) : verdict =
  let { Hgen.kvars; clauses } = Hgen.gen rng in
  match fixpoint_violation ~solve kvars clauses with
  | None -> Ok
  | Some _ ->
      let fails cls =
        match fixpoint_violation ~solve kvars cls with
        | Some _ -> true
        | None -> false
        | exception _ -> false
      in
      let clauses' =
        Shrink.minimize_clauses ~budget:shrink_budget fails clauses
      in
      let descr =
        match fixpoint_violation ~solve kvars clauses' with
        | Some d -> d
        | None | (exception _) -> "fixpoint invariant violated"
      in
      Bug
        {
          b_oracle = "fixpoint";
          b_seed = seed;
          b_case = case;
          b_descr = descr;
          b_repro = Repro.horn_to_string kvars clauses';
          b_ext = "horn";
        }

(* ------------------------------------------------------------------ *)
(* Full-vs-incremental differential                                    *)
(* ------------------------------------------------------------------ *)

(** Render everything the incremental schedule promises to reproduce
    byte-for-byte: the verdict tag, the failing clause tags in report
    order, and the pretty-printed solution. *)
let render_result (r : Solve.result) : string =
  match r with
  | Solve.Sat sol -> Format.asprintf "Sat@.%a" Solve.pp_solution sol
  | Solve.Unsat (failures, sol) ->
      Format.asprintf "Unsat [%s]@.%a"
        (String.concat ","
           (List.map (fun f -> string_of_int f.Solve.f_tag) failures))
        Solve.pp_solution sol

let default_incremental ~kvars clauses =
  Solve.solve_clauses_incremental ~kvars clauses

(** A divergence between the reference full sweep and the incremental
    schedule on this κ system, if any. Exceptions count as outcomes:
    both schedules must raise the same way (e.g. {!Solve.Unbound_kvar}
    on the same κ) or the case is a bug. *)
let incremental_mismatch
    ~(incremental :
       kvars:Horn.kvar list -> Horn.clause list -> Solve.result)
    (kvars : Horn.kvar list) (clauses : Horn.clause list) : string option =
  let outcome solve =
    match solve ~kvars clauses with
    | r -> render_result r
    | exception Solve.Unbound_kvar k -> "raised Unbound_kvar " ^ k
  in
  let full = outcome (fun ~kvars cls -> Solve.solve_clauses_full ~kvars cls) in
  let inc = outcome incremental in
  if String.equal full inc then None
  else
    Some
      (Printf.sprintf "schedules disagree\n--- full ---\n%s\n--- incremental ---\n%s"
         full inc)

let incremental_case ?(incremental = default_incremental) ~(seed : int)
    ~(case : int) (rng : Rng.t) : verdict =
  let { Hgen.kvars; clauses } = Hgen.gen rng in
  match incremental_mismatch ~incremental kvars clauses with
  | None -> Ok
  | Some _ ->
      let fails cls =
        match incremental_mismatch ~incremental kvars cls with
        | Some _ -> true
        | None -> false
        | exception _ -> false
      in
      let clauses' =
        Shrink.minimize_clauses ~budget:shrink_budget fails clauses
      in
      let descr =
        match incremental_mismatch ~incremental kvars clauses' with
        | Some d -> d
        | None | (exception _) -> "schedules disagree"
      in
      Bug
        {
          b_oracle = "incremental";
          b_seed = seed;
          b_case = case;
          b_descr = descr;
          b_repro = Repro.horn_to_string kvars clauses';
          b_ext = "horn";
        }

(* ------------------------------------------------------------------ *)
(* Abstract interpretation                                             *)
(* ------------------------------------------------------------------ *)

module Absint = Flux_absint.Absint
module Discharge = Flux_absint.Discharge

(** The integer view of a concrete local, exactly as the abstract
    domain models it: the value of an integer local, the {e length} of
    a vector local, nothing for anything else ([contains] treats an
    unviewable local as unconstrained). *)
let local_view (locals : Interp.value ref array) (l : int) : int option =
  if l < 0 || l >= Array.length locals then None
  else
    match !(locals.(l)) with
    | Interp.VInt n -> Some n
    | Interp.VVec v -> Some v.Interp.len
    | _ -> None

(** Run the parsed program's [f] on sampled inputs with a probe at
    every block entry asserting γ-containment: the concrete frame must
    lie in the abstract state the fixpoint computed for that point.
    No precondition filtering — the abstract entry state assumes
    nothing, so containment is promised on {e every} input. *)
let containment_violation ?(contains = Absint.contains)
    ~(input_rng : Rng.t) (prog : Ast.program) : string option =
  match Ast.find_fn prog "f" with
  | None -> None
  | Some fd ->
      let tys = List.map snd fd.Ast.fn_params in
      (* analyses for every body the machine executes, built on first
         probe (callee bodies included), keyed by physical identity *)
      let analyses : (Flux_mir.Ir.body * Absint.analysis) list ref = ref [] in
      let analysis_of body =
        match List.find_opt (fun (b, _) -> b == body) !analyses with
        | Some (_, a) -> a
        | None ->
            let a = Absint.analyze body in
            analyses := (body, a) :: !analyses;
            a
      in
      let violation = ref None in
      let probe body bb locals =
        if !violation = None then
          let a = analysis_of body in
          let st = Absint.block_entry a bb in
          if not (contains st (local_view locals)) then
            violation :=
              Some
                (Printf.sprintf
                   "concrete state at block entry bb%d escapes the abstract \
                    state"
                   bb)
      in
      let rec attempt i =
        if i >= input_attempts then None
        else
          let case_rng = Rng.split input_rng i in
          match
            List.fold_left
              (fun acc ty ->
                match acc with
                | None -> None
                | Some xs -> (
                    match gen_ival case_rng ty with
                    | Some v -> Some (v :: xs)
                    | None -> None))
              (Some []) tys
          with
          | None -> None (* unsampleable parameter type: skip program *)
          | Some rev_ivals -> (
              let args = List.map build_value (List.rev rev_ivals) in
              (* faults and divergence are fine — the probe has already
                 checked every block entry the execution reached *)
              ignore (Interp.run ~fuel ~probe prog "f" args);
              match !violation with
              | Some d -> Some d
              | None -> attempt (i + 1))
      in
      attempt 0

(** [containment_violation] on source text — the shrinker's failure
    predicate and the corpus replay entry point. *)
let absint_containment ?contains ~(input_rng : Rng.t) (src : string) :
    string option =
  match parse_and_typecheck src with
  | None -> None
  | Some prog -> containment_violation ?contains ~input_rng prog

(** Discharge soundness on one term: a clause the abstract environment
    answers must be solver-valid — [try_valid t = true] with
    [valid t = false] means the pre-solver would silently change a
    verdict, the one thing {!Flux_absint.Discharge} must never do. *)
let discharge_mismatch ?(try_valid = fun t -> Discharge.try_valid t)
    ?(valid = Solver.valid) (t : Term.t) : string option =
  if try_valid t && not (valid t) then
    Some "abstract environment discharged a clause the solver refutes"
  else None

let absint_case ?contains ?try_valid ?valid ~(seed : int) ~(case : int)
    (rng : Rng.t) : verdict =
  let gen_rng = Rng.split rng 0 in
  let input_rng = Rng.split rng 1 in
  let term_rng = Rng.split rng 2 in
  (* clause-discharge soundness on a random implication *)
  let t = Tgen.gen term_rng in
  match discharge_mismatch ?try_valid ?valid t with
  | Some d ->
      let fails t' =
        match discharge_mismatch ?try_valid ?valid t' with
        | Some _ -> true
        | None | (exception _) -> false
      in
      let t' = Shrink.minimize_term ~budget:shrink_budget fails t in
      Bug
        {
          b_oracle = "absint";
          b_seed = seed;
          b_case = case;
          b_descr = Format.asprintf "%a — %s" Term.pp t' d;
          b_repro = Repro.term_to_string t';
          b_ext = "aterm";
        }
  | None -> (
      (* γ-containment of a concrete trace *)
      let src = Pgen.gen gen_rng in
      match parse_and_typecheck src with
      | None -> Frontend
      | Some prog -> (
          match containment_violation ?contains ~input_rng prog with
          | None -> Ok
          | Some descr ->
              let fails s =
                absint_containment ?contains ~input_rng s <> None
              in
              let repro =
                Shrink.minimize_program ~budget:shrink_budget fails prog
              in
              Bug
                {
                  b_oracle = "absint";
                  b_seed = seed;
                  b_case = case;
                  b_descr = descr;
                  b_repro = repro;
                  b_ext = "airs";
                }))
