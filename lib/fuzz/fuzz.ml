(** The fuzzing campaign driver behind [flux fuzz].

    A campaign is a pure function of (seed, budget, oracle selection):
    the time budget is mapped to fixed per-oracle case counts through
    conservative throughput rates, every case derives its randomness
    from [Rng.split seed case_index], and cases are scheduled through
    {!Flux_engine.Engine.run_pool} with {e equal} size estimates so the
    pool's LPT tie-break preserves input order. Two runs with the same
    arguments therefore examine the identical case list and report
    identical verdicts, regardless of [--jobs] or machine speed — only
    the wall-clock line differs. (A hard safety stop at many multiples
    of the budget exists for pathological solver blowups; if it ever
    fires the report says so loudly, because truncation breaks the
    determinism guarantee.)

    Shrunk reproducers are written to the corpus directory as
    [<oracle>-seed<seed>-case<index>.<ext>]; [test/test_fuzz.ml]
    replays everything checked in there as regression tests. *)

module Engine = Flux_engine.Engine
module Ast = Flux_syntax.Ast
open Flux_smt
open Flux_fixpoint

type oracle_kind = Soundness | Solver | Cert | Fixpoint | Incremental | Absint

let all_oracles = [ Soundness; Solver; Cert; Fixpoint; Incremental; Absint ]

let oracle_name = function
  | Soundness -> "soundness"
  | Solver -> "solver"
  | Cert -> "cert"
  | Fixpoint -> "fixpoint"
  | Incremental -> "incremental"
  | Absint -> "absint"

let oracle_of_string = function
  | "soundness" -> Some [ Soundness ]
  | "solver" -> Some [ Solver ]
  | "cert" -> Some [ Cert ]
  | "fixpoint" -> Some [ Fixpoint ]
  | "incremental" -> Some [ Incremental ]
  | "absint" -> Some [ Absint ]
  | "all" -> Some all_oracles
  | _ -> None

(** Conservative sustained throughput (cases/second) used to translate
    [--budget SECS] into a deterministic case count. Understating the
    real rate only makes the campaign finish early; it never makes two
    runs diverge. *)
let rate = function
  | Soundness -> 3.0
  | Solver -> 2000.0
  | Cert -> 500.0
  | Fixpoint -> 300.0
  | Incremental -> 150.0
  | Absint -> 100.0

let cases_for ~(budget : float) (k : oracle_kind) : int =
  max 1 (int_of_float (budget *. rate k))

type config = {
  seed : int;
  budget : float;  (** seconds; mapped to counts via {!rate} *)
  oracles : oracle_kind list;
  jobs : int;
  corpus_dir : string option;  (** where to write shrunk reproducers *)
}

let default_config =
  {
    seed = 0;
    budget = 10.0;
    oracles = all_oracles;
    jobs = 0;
    corpus_dir = Some "fuzz-corpus";
  }

type oracle_summary = {
  o_name : string;
  o_cases : int;
  o_ok : int;
  o_skipped : int;
  o_frontend : int;  (** generated programs the frontend rejected *)
  o_bugs : Oracle.bug list;
}

type summary = {
  s_seed : int;
  s_oracles : oracle_summary list;
  s_elapsed : float;  (** wall clock; informational, not fingerprinted *)
  s_truncated : bool;  (** the pathological safety stop fired *)
}

let summary_bugs (s : summary) : Oracle.bug list =
  List.concat_map (fun o -> o.o_bugs) s.s_oracles

(** Everything determinism promises to reproduce: case counts and
    verdicts per oracle, bug descriptions and reproducers — but not
    wall-clock. Two runs with identical arguments must produce equal
    fingerprints (pinned by [test/test_fuzz.ml]). *)
let fingerprint (s : summary) : string =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "seed=%d truncated=%b\n" s.s_seed s.s_truncated;
  List.iter
    (fun o ->
      Printf.bprintf buf "%s cases=%d ok=%d skip=%d frontend=%d bugs=%d\n"
        o.o_name o.o_cases o.o_ok o.o_skipped o.o_frontend
        (List.length o.o_bugs);
      List.iter
        (fun (b : Oracle.bug) ->
          Printf.bprintf buf "bug case=%d %s\n%s\n" b.Oracle.b_case
            b.Oracle.b_descr b.Oracle.b_repro)
        o.o_bugs)
    s.s_oracles;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

(** Run a campaign. The optional [check]/[valid]/[sat]/[solve]/
    [incremental] arguments substitute broken implementations for the
    bug-seeding meta-tests; production callers omit them. Note the
    incremental oracle calls the two schedules {e explicitly}
    ({!Flux_fixpoint.Solve.solve_clauses_full} vs
    [solve_clauses_incremental]) — it never flips
    [Solve.incremental_enabled], which would race across the pool's
    worker domains. *)
let run ?(check : (Ast.program -> bool) option)
    ?(valid : (Term.t -> bool) option) ?(sat : (Term.t -> bool) option)
    ?(counterexample :
        (Term.t -> (string * Eval.value) list option) option)
    ?(certify : (Term.t -> Proof.t option) option)
    ?(solve : (kvars:Horn.kvar list -> Horn.clause list -> Solve.result) option)
    ?(incremental :
        (kvars:Horn.kvar list -> Horn.clause list -> Solve.result) option)
    (cfg : config) : summary =
  let t0 = Unix.gettimeofday () in
  (* never advanced, only split: safe to share across worker domains *)
  let root = Rng.make cfg.seed in
  let hard_stop = (cfg.budget *. 25.0) +. 120.0 in
  let truncated = ref false in
  let base = ref 0 in
  let run_oracle (kind : oracle_kind) : oracle_summary =
    let count = cases_for ~budget:cfg.budget kind in
    let base_index = !base in
    base := !base + count;
    let one (case : int) () : Oracle.verdict =
      if Unix.gettimeofday () -. t0 > hard_stop then begin
        truncated := true;
        Oracle.Skip
      end
      else
        let rng = Rng.split root case in
        match kind with
        | Soundness -> Oracle.soundness_case ?check ~seed:cfg.seed ~case rng
        | Solver ->
            Oracle.solver_case ?valid ?sat ?counterexample ~seed:cfg.seed
              ~case rng
        | Cert -> Oracle.cert_case ?valid ?certify ~seed:cfg.seed ~case rng
        | Fixpoint -> Oracle.fixpoint_case ?solve ~seed:cfg.seed ~case rng
        | Incremental ->
            Oracle.incremental_case ?incremental ~seed:cfg.seed ~case rng
        | Absint -> Oracle.absint_case ~seed:cfg.seed ~case rng
    in
    let fns = Array.init count (fun i -> one (base_index + i)) in
    let verdicts =
      Engine.run_pool ~jobs:cfg.jobs ~sizes:(Array.make count 1) fns
    in
    let ok = ref 0 and skipped = ref 0 and frontend = ref 0 and bugs = ref [] in
    Array.iter
      (function
        | Oracle.Ok -> incr ok
        | Oracle.Skip -> incr skipped
        | Oracle.Frontend -> incr frontend
        | Oracle.Bug b -> bugs := b :: !bugs)
      verdicts;
    {
      o_name = oracle_name kind;
      o_cases = count;
      o_ok = !ok;
      o_skipped = !skipped;
      o_frontend = !frontend;
      o_bugs = List.rev !bugs;
    }
  in
  let oracles = List.map run_oracle cfg.oracles in
  {
    s_seed = cfg.seed;
    s_oracles = oracles;
    s_elapsed = Unix.gettimeofday () -. t0;
    s_truncated = !truncated;
  }

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let bug_filename (b : Oracle.bug) : string =
  Printf.sprintf "%s-seed%d-case%d.%s" b.Oracle.b_oracle b.Oracle.b_seed
    b.Oracle.b_case b.Oracle.b_ext

(** Write each bug's shrunk reproducer into [dir] (created if needed);
    returns the paths written. *)
let write_corpus (dir : string) (bugs : Oracle.bug list) : string list =
  if bugs <> [] && not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.map
    (fun (b : Oracle.bug) ->
      let path = Filename.concat dir (bug_filename b) in
      let oc = open_out path in
      output_string oc b.Oracle.b_repro;
      close_out oc;
      path)
    bugs

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_summary fmt (s : summary) =
  List.iter
    (fun o ->
      Format.fprintf fmt "  %-9s %5d cases: %d ok, %d skipped%s, %d bug%s@."
        o.o_name o.o_cases o.o_ok o.o_skipped
        (if o.o_frontend > 0 then
           Printf.sprintf ", %d frontend-rejected" o.o_frontend
         else "")
        (List.length o.o_bugs)
        (if List.length o.o_bugs = 1 then "" else "s"))
    s.s_oracles;
  let bugs = summary_bugs s in
  List.iter
    (fun (b : Oracle.bug) ->
      Format.fprintf fmt "@.BUG [%s] seed=%d case=%d@.  %s@.  reproduce: flux fuzz --seed %d --oracle %s@."
        b.Oracle.b_oracle b.Oracle.b_seed b.Oracle.b_case b.Oracle.b_descr
        b.Oracle.b_seed b.Oracle.b_oracle)
    bugs;
  if s.s_truncated then
    Format.fprintf fmt
      "@.WARNING: hard time stop fired — case counts are NOT deterministic \
       for this run@.";
  Format.fprintf fmt "  total     %5d cases, %d bugs (%.1fs)@."
    (List.fold_left (fun a o -> a + o.o_cases) 0 s.s_oracles)
    (List.length bugs) s.s_elapsed
