(** Reproducer files for the fuzzing corpus.

    Each bug the campaign finds is written to [fuzz-corpus/] in a
    self-contained, re-parseable format, and every file checked into
    that directory is replayed as a regression test by
    [test/test_fuzz.ml]:

    - [*.rs] — a shrunk program for the soundness oracle (plain
      source, re-checked and re-executed on replay);
    - [*.term] — an S-expression of a term for the solver oracle
      (re-evaluated differentially on replay);
    - [*.horn] — an S-expression of a κ declaration set plus clause
      set for the fixpoint oracle (re-solved and re-validated).

    The S-expression syntax is deliberately tiny (atoms and parens, [;]
    line comments) because {!Flux_smt.Term.pp}'s output is for humans,
    not round trips. *)

open Flux_smt
open Flux_fixpoint

(* ------------------------------------------------------------------ *)
(* S-expressions                                                       *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | List of sexp list

exception Parse_error of string

let parse_sexps (src : string) : sexp list =
  let n = String.length src in
  let i = ref 0 in
  let peek () = if !i < n then Some src.[!i] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr i;
        skip_ws ()
    | Some ';' ->
        while !i < n && src.[!i] <> '\n' do
          incr i
        done;
        skip_ws ()
    | _ -> ()
  in
  let atom () =
    let start = !i in
    while
      !i < n
      && match src.[!i] with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> false
         | _ -> true
    do
      incr i
    done;
    if !i = start then raise (Parse_error "empty atom");
    Atom (String.sub src start (!i - start))
  in
  let rec sexp () =
    skip_ws ();
    match peek () with
    | Some '(' ->
        incr i;
        let rec items acc =
          skip_ws ();
          match peek () with
          | Some ')' ->
              incr i;
              List (List.rev acc)
          | None -> raise (Parse_error "unclosed '('")
          | _ -> items (sexp () :: acc)
        in
        items []
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | None -> raise (Parse_error "unexpected end of input")
    | _ -> atom ()
  in
  let rec top acc =
    skip_ws ();
    if !i >= n then List.rev acc else top (sexp () :: acc)
  in
  top []

let rec pp_sexp buf = function
  | Atom a -> Buffer.add_string buf a
  | List xs ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ' ';
          pp_sexp buf x)
        xs;
      Buffer.add_char buf ')'

let sexps_to_string (xs : sexp list) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun x ->
      pp_sexp buf x;
      Buffer.add_char buf '\n')
    xs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let sort_to_atom = function
  | Sort.Int -> "int"
  | Sort.Bool -> "bool"
  | Sort.Loc -> "loc"
  | Sort.Real -> "real"

let sort_of_atom = function
  | "int" -> Sort.Int
  | "bool" -> Sort.Bool
  | "loc" -> Sort.Loc
  | "real" -> Sort.Real
  | s -> raise (Parse_error ("unknown sort " ^ s))

let binop_tag = function
  | Term.Add -> "add"
  | Term.Sub -> "sub"
  | Term.Mul -> "mul"
  | Term.Div -> "div"
  | Term.Mod -> "mod"

let cmpop_tag = function
  | Term.Lt -> "lt"
  | Term.Le -> "le"
  | Term.Gt -> "gt"
  | Term.Ge -> "ge"

let rec term_to_sexp (t : Term.t) : sexp =
  let l tag xs = List (Atom tag :: xs) in
  match t with
  | Term.Var (x, s) -> l "var" [ Atom x; Atom (sort_to_atom s) ]
  | Term.Int n -> l "int" [ Atom (string_of_int n) ]
  | Term.Bool b -> l "bool" [ Atom (string_of_bool b) ]
  | Term.Real x -> l "real" [ Atom (string_of_float x) ]
  | Term.Binop (op, a, b) ->
      l (binop_tag op) [ term_to_sexp a; term_to_sexp b ]
  | Term.Neg a -> l "neg" [ term_to_sexp a ]
  | Term.Cmp (op, a, b) -> l (cmpop_tag op) [ term_to_sexp a; term_to_sexp b ]
  | Term.Eq (a, b) -> l "eq" [ term_to_sexp a; term_to_sexp b ]
  | Term.Ne (a, b) -> l "ne" [ term_to_sexp a; term_to_sexp b ]
  | Term.And ts -> l "and" (List.map term_to_sexp ts)
  | Term.Or ts -> l "or" (List.map term_to_sexp ts)
  | Term.Not a -> l "not" [ term_to_sexp a ]
  | Term.Imp (a, b) -> l "imp" [ term_to_sexp a; term_to_sexp b ]
  | Term.Iff (a, b) -> l "iff" [ term_to_sexp a; term_to_sexp b ]
  | Term.Ite (c, a, b) ->
      l "ite" [ term_to_sexp c; term_to_sexp a; term_to_sexp b ]
  | Term.App (f, ts) -> l "app" (Atom f :: List.map term_to_sexp ts)

let rec term_of_sexp (s : sexp) : Term.t =
  match s with
  | List (Atom tag :: args) -> (
      let t1 () = match args with [ a ] -> term_of_sexp a | _ -> raise (Parse_error tag) in
      let t2 () =
        match args with
        | [ a; b ] -> (term_of_sexp a, term_of_sexp b)
        | _ -> raise (Parse_error tag)
      in
      match tag with
      | "var" -> (
          match args with
          | [ Atom x; Atom s ] -> Term.var ~sort:(sort_of_atom s) x
          | _ -> raise (Parse_error "var"))
      | "int" -> (
          match args with
          | [ Atom n ] -> Term.int (int_of_string n)
          | _ -> raise (Parse_error "int"))
      | "bool" -> (
          match args with
          | [ Atom b ] -> Term.bool (bool_of_string b)
          | _ -> raise (Parse_error "bool"))
      | "real" -> (
          match args with
          | [ Atom x ] -> Term.real (float_of_string x)
          | _ -> raise (Parse_error "real"))
      | "add" | "sub" | "mul" | "div" | "mod" ->
          let a, b = t2 () in
          let op =
            match tag with
            | "add" -> Term.Add
            | "sub" -> Term.Sub
            | "mul" -> Term.Mul
            | "div" -> Term.Div
            | _ -> Term.Mod
          in
          Term.mk_binop op a b
      | "neg" -> Term.neg (t1 ())
      | "lt" | "le" | "gt" | "ge" ->
          let a, b = t2 () in
          let op =
            match tag with
            | "lt" -> Term.Lt
            | "le" -> Term.Le
            | "gt" -> Term.Gt
            | _ -> Term.Ge
          in
          Term.mk_cmp op a b
      | "eq" ->
          let a, b = t2 () in
          Term.mk_eq a b
      | "ne" ->
          let a, b = t2 () in
          Term.mk_ne a b
      | "and" -> Term.mk_and (List.map term_of_sexp args)
      | "or" -> Term.mk_or (List.map term_of_sexp args)
      | "not" -> Term.mk_not (t1 ())
      | "imp" ->
          let a, b = t2 () in
          Term.mk_imp a b
      | "iff" ->
          let a, b = t2 () in
          Term.mk_iff a b
      | "ite" -> (
          match args with
          | [ c; a; b ] ->
              Term.ite (term_of_sexp c) (term_of_sexp a) (term_of_sexp b)
          | _ -> raise (Parse_error "ite"))
      | "app" -> (
          match args with
          | Atom f :: ts -> Term.app f (List.map term_of_sexp ts)
          | _ -> raise (Parse_error "app"))
      | _ -> raise (Parse_error ("unknown term tag " ^ tag)))
  | _ -> raise (Parse_error "expected (tag ...)")

let term_to_string (t : Term.t) : string =
  sexps_to_string [ term_to_sexp t ]

let term_of_string (src : string) : Term.t =
  match parse_sexps src with
  | [ s ] -> term_of_sexp s
  | _ -> raise (Parse_error "expected exactly one term")

(* ------------------------------------------------------------------ *)
(* Horn systems                                                        *)
(* ------------------------------------------------------------------ *)

let binder_to_sexp (x, s) = List [ Atom x; Atom (sort_to_atom s) ]

let binder_of_sexp = function
  | List [ Atom x; Atom s ] -> (x, sort_of_atom s)
  | _ -> raise (Parse_error "binder")

let pred_to_sexp = function
  | Horn.Conc t -> List [ Atom "c"; term_to_sexp t ]
  | Horn.Kapp (k, ts) -> List (Atom "k" :: Atom k :: List.map term_to_sexp ts)

let pred_of_sexp = function
  | List [ Atom "c"; t ] -> Horn.Conc (term_of_sexp t)
  | List (Atom "k" :: Atom k :: ts) -> Horn.Kapp (k, List.map term_of_sexp ts)
  | _ -> raise (Parse_error "pred")

let clause_to_sexp (cl : Horn.clause) : sexp =
  List
    [
      Atom "clause";
      Atom (string_of_int cl.Horn.tag);
      List (List.map binder_to_sexp cl.Horn.binders);
      List (List.map pred_to_sexp cl.Horn.hyps);
      pred_to_sexp cl.Horn.head;
    ]

let clause_of_sexp = function
  | List [ Atom "clause"; Atom tag; List binders; List hyps; head ] ->
      {
        Horn.tag = int_of_string tag;
        binders = List.map binder_of_sexp binders;
        hyps = List.map pred_of_sexp hyps;
        head = pred_of_sexp head;
      }
  | _ -> raise (Parse_error "clause")

let kvar_to_sexp (kv : Horn.kvar) : sexp =
  List
    [
      Atom "kvar";
      Atom kv.Horn.kname;
      List (List.map binder_to_sexp kv.Horn.kparams);
      Atom (string_of_int kv.Horn.kvalues);
    ]

let kvar_of_sexp = function
  | List [ Atom "kvar"; Atom kname; List params; Atom kvalues ] ->
      {
        Horn.kname;
        kparams = List.map binder_of_sexp params;
        kvalues = int_of_string kvalues;
      }
  | _ -> raise (Parse_error "kvar")

let horn_to_string (kvars : Horn.kvar list) (clauses : Horn.clause list) :
    string =
  sexps_to_string (List.map kvar_to_sexp kvars @ List.map clause_to_sexp clauses)

let horn_of_string (src : string) : Horn.kvar list * Horn.clause list =
  let sexps = parse_sexps src in
  let kvars, clauses =
    List.partition
      (function List (Atom "kvar" :: _) -> true | _ -> false)
      sexps
  in
  (List.map kvar_of_sexp kvars, List.map clause_of_sexp clauses)
