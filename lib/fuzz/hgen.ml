(** Random Horn constraint systems for the fixpoint self-check oracle.

    Each case is a small κ system shaped like the constraints the
    checker emits for loops — a base clause seeding κ, inductive
    clauses re-entering it under a guard, and concrete-head query
    clauses — with randomized guards, steps, ghost scopes and an
    optional second κ chained to the first. The oracle solves the
    system and, when the solver answers [Sat], substitutes the solution
    back into {e every} clause and re-checks it for validity
    ({!Flux_fixpoint.Solve.validate_solution}): the fixpoint invariant
    that a solution satisfies all its clauses, checked independently of
    the weakening loop that produced it. *)

open Flux_smt
open Flux_fixpoint

type case = { kvars : Horn.kvar list; clauses : Horn.clause list }

(* Linear-ish predicates over a variable scope, kept inside the
   solver's exact fragment (plus the occasional div/mod by a nonzero
   constant to stress the truncated encoding). *)
let atom (rng : Rng.t) (scope : string list) : Term.t =
  let base () =
    Rng.frequency rng
      [
        (3, lazy (Term.var (Rng.choose rng scope)));
        (2, lazy (Term.int (Rng.range rng (-3) 4)));
      ]
    |> Lazy.force
  in
  let e () =
    Rng.frequency rng
      [
        (3, lazy (base ()));
        (2, lazy (Term.add (base ()) (base ())));
        (2, lazy (Term.sub (base ()) (base ())));
        ( 1,
          lazy
            (Term.mk_binop
               (if Rng.bool rng then Term.Div else Term.Mod)
               (base ())
               (Term.int (Rng.choose rng [ -2; 2; 3 ]))) );
      ]
    |> Lazy.force
  in
  let op = Rng.choose rng [ Term.Lt; Term.Le; Term.Gt; Term.Ge ] in
  Rng.frequency rng
    [
      (4, lazy (Term.mk_cmp op (e ()) (e ())));
      (1, lazy (Term.mk_eq (e ()) (e ())));
    ]
  |> Lazy.force

let guard rng scope : Term.t =
  match Rng.int rng 3 with
  | 0 -> atom rng scope
  | 1 -> Term.mk_and [ atom rng scope; atom rng scope ]
  | _ -> Term.mk_or [ atom rng scope; atom rng scope ]

let gen (rng : Rng.t) : case =
  let n_ghosts = Rng.range rng 0 2 in
  let ghosts = List.init n_ghosts (fun i -> Printf.sprintf "g%d" i) in
  let ghost_sorts = List.map (fun g -> (g, Sort.Int)) ghosts in
  let ghost_args = List.map (fun g -> Term.var g) ghosts in
  let k1 =
    Horn.{ kname = "k1"; kparams = ("v", Sort.Int) :: ghost_sorts; kvalues = 1 }
  in
  let two_kvars = Rng.int rng 3 = 0 in
  let k2 =
    Horn.{ kname = "k2"; kparams = ("v", Sort.Int) :: ghost_sorts; kvalues = 1 }
  in
  let kvars = if two_kvars then [ k1; k2 ] else [ k1 ] in
  let kapp name e = Horn.Kapp (name, e :: ghost_args) in
  let tag = ref 0 in
  let mk binders hyps head =
    incr tag;
    { Horn.binders; hyps; head; tag = !tag }
  in
  let scope = "v" :: ghosts in
  (* base clause(s): seed k1 at a constant or a ghost-derived value *)
  let init =
    let e0 =
      Rng.frequency rng
        [
          (3, Term.int (Rng.range rng 0 3));
          (2, (match ghosts with [] -> Term.int 0 | g :: _ -> Term.var g));
        ]
    in
    let hyps =
      if Rng.bool rng then [ Horn.Conc (guard rng (match ghosts with [] -> [ "u" ] | _ -> ghosts)) ]
      else []
    in
    mk (("u", Sort.Int) :: ghost_sorts) hyps (kapp "k1" e0)
  in
  (* inductive clauses: k1(j) ∧ guard ⇒ k1(j + step) *)
  let inductive =
    List.init (Rng.range rng 1 2) (fun _ ->
        let step = Rng.choose rng [ 1; 2; -1 ] in
        mk
          (("j", Sort.Int) :: ghost_sorts)
          [ Horn.Kapp ("k1", Term.var "j" :: ghost_args); Horn.Conc (guard rng ("j" :: ghosts)) ]
          (kapp "k1" (Term.add (Term.var "j") (Term.int step))))
  in
  (* optional chain: k1(v) ⇒ k2(v + c) *)
  let chain =
    if two_kvars then
      [
        mk
          (("v", Sort.Int) :: ghost_sorts)
          [ Horn.Kapp ("k1", Term.var "v" :: ghost_args) ]
          (kapp "k2" (Term.add (Term.var "v") (Term.int (Rng.range rng 0 2))));
      ]
    else []
  in
  (* queries: κ(v) [∧ guard] ⇒ concrete *)
  let queries =
    List.init (Rng.range rng 1 2) (fun _ ->
        let target = if two_kvars && Rng.bool rng then "k2" else "k1" in
        let hyps =
          Horn.Kapp (target, Term.var "v" :: ghost_args)
          :: (if Rng.bool rng then [ Horn.Conc (guard rng scope) ] else [])
        in
        mk (("v", Sort.Int) :: ghost_sorts) hyps (Horn.Conc (atom rng scope)))
  in
  { kvars; clauses = (init :: inductive) @ chain @ queries }

let pp_case fmt (c : case) =
  List.iter (fun cl -> Format.fprintf fmt "%a@." Horn.pp_clause cl) c.clauses
