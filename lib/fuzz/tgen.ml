(** Random QF-LIA + bool terms for the differential solver oracle.

    Terms are built from a small fixed variable set (three integers,
    two booleans) with constants in a narrow band, so brute-force
    enumeration over [-4, 4]³ × 𝔹² is cheap. Division and modulo only
    ever appear with a {e nonzero constant} divisor — the fragment the
    solver linearizes (and the one Rust programs produce after the
    checker has proved the divisor nonzero) — so concrete evaluation
    never faults. [Real] and uninterpreted [App] terms are never
    generated: the solver treats them opaquely, and opaque abstractions
    have no ground truth to differ against. *)

open Flux_smt

let int_vars = [ "x"; "y"; "z" ]
let bool_vars = [ "p"; "q" ]

let vars : (string * Sort.t) list =
  List.map (fun x -> (x, Sort.Int)) int_vars
  @ List.map (fun x -> (x, Sort.Bool)) bool_vars

(** The enumeration box for the brute-force oracle. Any falsifying
    assignment inside the box refutes [valid]; any satisfying one
    refutes a [sat = false] verdict — both verdict polarities are
    definite, so a mismatch is always a real bug. *)
let int_box = [ -4; -3; -2; -1; 0; 1; 2; 3; 4 ]

let divisors = [ -3; -2; 2; 3; 4 ]

let rec int_term (rng : Rng.t) (depth : int) : Term.t =
  if depth <= 0 then
    Rng.frequency rng
      [
        (3, lazy (Term.var (Rng.choose rng int_vars)));
        (2, lazy (Term.int (Rng.range rng (-4) 4)));
      ]
    |> Lazy.force
  else
    Rng.frequency rng
      [
        (3, lazy (int_term rng 0));
        ( 4,
          lazy
            (let op = Rng.choose rng [ Term.Add; Term.Sub; Term.Mul ] in
             let a = int_term rng (depth - 1) in
             let b =
               (* keep one side linear often enough that the solver's
                  exact fragment is exercised, not just the opaque
                  nonlinear abstraction *)
               if op = Term.Mul && Rng.int rng 3 > 0 then
                 Term.int (Rng.range rng (-3) 3)
               else int_term rng (depth - 1)
             in
             Term.mk_binop op a b) );
        ( 2,
          lazy
            (let op = if Rng.bool rng then Term.Div else Term.Mod in
             Term.mk_binop op
               (int_term rng (depth - 1))
               (Term.int (Rng.choose rng divisors))) );
        (1, lazy (Term.neg (int_term rng (depth - 1))));
        ( 1,
          lazy
            (Term.ite (pred rng (depth - 1))
               (int_term rng (depth - 1))
               (int_term rng (depth - 1))) );
      ]
    |> Lazy.force

and pred (rng : Rng.t) (depth : int) : Term.t =
  if depth <= 0 then
    Rng.frequency rng
      [
        (2, lazy (Term.bvar (Rng.choose rng bool_vars)));
        (1, lazy (Term.bool (Rng.bool rng)));
        ( 4,
          lazy
            (let op = Rng.choose rng [ Term.Lt; Term.Le; Term.Gt; Term.Ge ] in
             Term.mk_cmp op (int_term rng 1) (int_term rng 1)) );
      ]
    |> Lazy.force
  else
    Rng.frequency rng
      [
        (3, lazy (pred rng 0));
        ( 3,
          lazy
            (let op = Rng.choose rng [ Term.Lt; Term.Le; Term.Gt; Term.Ge ] in
             Term.mk_cmp op (int_term rng depth) (int_term rng depth)) );
        ( 2,
          lazy
            (let a = int_term rng (depth - 1) and b = int_term rng (depth - 1) in
             if Rng.bool rng then Term.mk_eq a b else Term.mk_ne a b) );
        ( 3,
          lazy
            (let n = Rng.range rng 2 3 in
             let ts = List.init n (fun _ -> pred rng (depth - 1)) in
             if Rng.bool rng then Term.mk_and ts else Term.mk_or ts) );
        (2, lazy (Term.mk_not (pred rng (depth - 1))));
        (2, lazy (Term.mk_imp (pred rng (depth - 1)) (pred rng (depth - 1))));
        (1, lazy (Term.mk_iff (pred rng (depth - 1)) (pred rng (depth - 1))));
      ]
    |> Lazy.force

(** A random boolean-sorted term (the oracle's query). *)
let gen (rng : Rng.t) : Term.t = pred rng (Rng.range rng 2 4)
