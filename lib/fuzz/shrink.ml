(** Delta-debugging shrinkers for the three oracle input shapes.

    All three follow the same greedy first-improvement loop
    ({!minimize}): enumerate one-step reductions of the current failing
    input, re-run the oracle's failure predicate on each, and restart
    from the first reduction that still fails, until no reduction fails
    or the evaluation budget runs out. The failure predicate re-runs
    the {e whole} oracle pipeline (parse → typecheck → verify → execute
    for programs), so candidates that fall outside the well-formed
    input space — shrinking is type-blind — simply don't fail and are
    discarded; no shrink step can manufacture a spurious bug.

    Budgets are deterministic (a fixed count of predicate evaluations),
    so shrunk reproducers are identical run to run. *)

module Ast = Flux_syntax.Ast
open Flux_smt
open Flux_fixpoint

(** Greedy minimization: keep taking the first one-step reduction that
    still satisfies [fails], spending at most [budget] evaluations. The
    input must satisfy [fails] already. *)
let minimize ~(budget : int) (fails : 'a -> bool) (steps : 'a -> 'a list)
    (x : 'a) : 'a =
  let budget = ref budget in
  let rec go x =
    let rec try_steps = function
      | [] -> x
      | c :: rest ->
          if !budget <= 0 then x
          else begin
            decr budget;
            if fails c then go c else try_steps rest
          end
    in
    try_steps (steps x)
  in
  go x

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let mk = Ast.mk_expr

(** One-step reductions of an expression: replace it by a subexpression
    or a small literal. Type-blind; the failure predicate filters. *)
let rec shrink_expr (e : Ast.expr) : Ast.expr list =
  let sub = function
    | [] -> []
    | xs -> xs
  in
  let children =
    match e.Ast.e with
    | Ast.EInt 0 | Ast.EBool _ | Ast.EUnit -> []
    | Ast.EInt n -> [ mk (Ast.EInt 0); mk (Ast.EInt (n / 2)) ]
    | Ast.EVar _ -> [ mk (Ast.EInt 0) ]
    | Ast.EBin (op, a, b) ->
        [ a; b ]
        @ List.map (fun a' -> mk (Ast.EBin (op, a', b))) (shrink_expr a)
        @ List.map (fun b' -> mk (Ast.EBin (op, a, b'))) (shrink_expr b)
    | Ast.EUn (op, a) ->
        (a :: List.map (fun a' -> mk (Ast.EUn (op, a'))) (shrink_expr a))
    | Ast.EMethod (r, m, args) ->
        List.map (fun r' -> mk (Ast.EMethod (r', m, args))) (shrink_expr r)
        @ List.concat
            (List.mapi
               (fun i a ->
                 List.map
                   (fun a' ->
                     mk
                       (Ast.EMethod
                          (r, m, List.mapi (fun j x -> if i = j then a' else x) args)))
                   (shrink_expr a))
               args)
    | Ast.ECall (f, args) ->
        List.concat
          (List.mapi
             (fun i a ->
               List.map
                 (fun a' ->
                   mk
                     (Ast.ECall
                        (f, List.mapi (fun j x -> if i = j then a' else x) args)))
                 (shrink_expr a))
             args)
    | Ast.EDeref a ->
        List.map (fun a' -> mk (Ast.EDeref a')) (shrink_expr a)
    | Ast.EIf (c, t, f) ->
        (match t.Ast.tail with Some e -> [ e ] | None -> [])
        @ (match f with
          | Some fb -> (
              mk (Ast.EIf (c, t, None))
              :: (match fb.Ast.tail with Some e -> [ e ] | None -> []))
          | None -> [])
        @ List.map (fun c' -> mk (Ast.EIf (c', t, f))) (shrink_expr c)
        @ List.map (fun t' -> mk (Ast.EIf (c, t', f))) (shrink_block t)
    | Ast.EBlock b ->
        (match (b.Ast.stmts, b.Ast.tail) with
        | [], Some e -> [ e ]
        | _ -> [])
        @ List.map (fun b' -> mk (Ast.EBlock b')) (shrink_block b)
    | _ -> []
  in
  sub children

(** One-step reductions of a block: drop a statement, shrink a
    statement in place, or shrink the tail. *)
and shrink_block (b : Ast.block) : Ast.block list =
  let drop =
    List.mapi
      (fun i _ ->
        {
          b with
          Ast.stmts = List.filteri (fun j _ -> j <> i) b.Ast.stmts;
        })
      b.Ast.stmts
  in
  let inplace =
    List.concat
      (List.mapi
         (fun i s ->
           List.map
             (fun s' ->
               {
                 b with
                 Ast.stmts = List.mapi (fun j x -> if i = j then s' else x) b.Ast.stmts;
               })
             (shrink_stmt s))
         b.Ast.stmts)
  in
  let tail =
    match b.Ast.tail with
    | None -> []
    | Some e ->
        List.map (fun e' -> { b with Ast.tail = Some e' }) (shrink_expr e)
  in
  drop @ tail @ inplace

and shrink_stmt (s : Ast.stmt) : Ast.stmt list =
  match s with
  | Ast.SLet { lname; lmut; lty; linit; lspan } ->
      List.map
        (fun e -> Ast.SLet { lname; lmut; lty; linit = e; lspan })
        (shrink_expr linit)
  | Ast.SAssign (p, op, e, sp) ->
      List.map (fun e' -> Ast.SAssign (p, op, e', sp)) (shrink_expr e)
  | Ast.SExpr e -> List.map (fun e' -> Ast.SExpr e') (shrink_expr e)
  | Ast.SWhile (c, b, sp) ->
      (* unroll once (preserves most faults) or shrink condition/body *)
      Ast.SExpr (mk (Ast.EBlock b))
      :: List.map (fun b' -> Ast.SWhile (c, b', sp)) (shrink_block b)
      @ List.map (fun c' -> Ast.SWhile (c', b, sp)) (shrink_expr c)
  | Ast.SInvariant _ | Ast.SBreak _ -> []
  | Ast.SReturn (Some e, sp) ->
      List.map (fun e' -> Ast.SReturn (Some e', sp)) (shrink_expr e)
  | Ast.SReturn (None, _) -> []

let shrink_fn_spec (fs : Ast.fn_spec) : Ast.fn_spec list =
  List.mapi
    (fun i _ ->
      {
        fs with
        Ast.fs_requires = List.filteri (fun j _ -> j <> i) fs.Ast.fs_requires;
      })
    fs.Ast.fs_requires
  @
  match fs.Ast.fs_ret with
  | Ast.RBase (b, _ :: _) -> [ { fs with Ast.fs_ret = Ast.RBase (b, []) } ]
  | Ast.RExists (_, b, _) -> [ { fs with Ast.fs_ret = Ast.RBase (b, []) } ]
  | _ -> []

let shrink_fn (fd : Ast.fn_def) : Ast.fn_def list =
  (match fd.Ast.fn_sig with
  | Some fs -> List.map (fun fs' -> { fd with Ast.fn_sig = Some fs' }) (shrink_fn_spec fs)
  | None -> [])
  @ (match fd.Ast.fn_body with
    | Some b -> List.map (fun b' -> { fd with Ast.fn_body = Some b' }) (shrink_block b)
    | None -> [])
  @ List.mapi
      (fun i _ ->
        {
          fd with
          Ast.fn_contract =
            {
              fd.Ast.fn_contract with
              Ast.c_requires =
                List.filteri (fun j _ -> j <> i) fd.Ast.fn_contract.Ast.c_requires;
            };
        })
      fd.Ast.fn_contract.Ast.c_requires

let shrink_program (p : Ast.program) : Ast.program list =
  List.concat
    (List.mapi
       (fun i item ->
         match item with
         | Ast.IFn fd ->
             List.map
               (fun fd' ->
                 List.mapi (fun j x -> if i = j then Ast.IFn fd' else x) p)
               (shrink_fn fd)
         | Ast.IStruct _ -> [])
       p)

(** Minimize a failing program. [fails] receives rendered source (the
    same artifact written to the corpus), so shrinking exercises the
    same frontend path the oracle does. *)
let minimize_program ~(budget : int) (fails : string -> bool)
    (p : Ast.program) : string =
  let fails_ast p' =
    match Ast.program_to_source p' with
    | src -> ( match Flux_syntax.Parser.parse_program src with
      | p'' ->
          (* source-stability: only accept candidates that survive the
             round trip, so the written reproducer is what we tested *)
          ignore p'';
          fails src
      | exception _ -> false)
    | exception _ -> false
  in
  let reduced = minimize ~budget fails_ast shrink_program p in
  Ast.program_to_source reduced

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let same_sort a b =
  match (Term.sort_of a, Term.sort_of b) with
  | sa, sb -> Sort.equal sa sb
  | exception Term.Ill_sorted _ -> false

(** One-step reductions of a term, preserving sort and the
    nonzero-constant-divisor invariant. *)
let rec shrink_term (t : Term.t) : Term.t list =
  let rebuild1 mk a = List.map mk (shrink_term a) in
  let raw =
    match t with
    | Term.Int 0 | Term.Bool _ -> []
    | Term.Int n -> [ Term.int 0; Term.int (n / 2) ]
    | Term.Var (_, Sort.Int) -> [ Term.int 0 ]
    | Term.Var (_, Sort.Bool) -> [ Term.bool true; Term.bool false ]
    | Term.Var _ -> []
    | Term.Binop (op, a, b) ->
        let keep_divisor b' =
          match (op, b') with
          | (Term.Div | Term.Mod), Term.Int 0 -> false
          | _ -> true
        in
        [ a; b ]
        @ rebuild1 (fun a' -> Term.mk_binop op a' b) a
        @ List.filter_map
            (fun b' ->
              if keep_divisor b' then Some (Term.mk_binop op a b') else None)
            (shrink_term b)
    | Term.Neg a -> a :: rebuild1 Term.neg a
    | Term.Cmp (op, a, b) ->
        Term.bool true :: Term.bool false
        :: rebuild1 (fun a' -> Term.mk_cmp op a' b) a
        @ rebuild1 (fun b' -> Term.mk_cmp op a b') b
    | Term.Eq (a, b) ->
        Term.bool true :: Term.bool false
        :: rebuild1 (fun a' -> Term.mk_eq a' b) a
        @ rebuild1 (fun b' -> Term.mk_eq a b') b
    | Term.Ne (a, b) ->
        Term.bool true :: Term.bool false
        :: rebuild1 (fun a' -> Term.mk_ne a' b) a
        @ rebuild1 (fun b' -> Term.mk_ne a b') b
    | Term.And ts ->
        ts
        @ List.mapi
            (fun i _ -> Term.mk_and (List.filteri (fun j _ -> j <> i) ts))
            ts
        @ List.concat
            (List.mapi
               (fun i x ->
                 List.map
                   (fun x' ->
                     Term.mk_and (List.mapi (fun j y -> if i = j then x' else y) ts))
                   (shrink_term x))
               ts)
    | Term.Or ts ->
        ts
        @ List.mapi
            (fun i _ -> Term.mk_or (List.filteri (fun j _ -> j <> i) ts))
            ts
        @ List.concat
            (List.mapi
               (fun i x ->
                 List.map
                   (fun x' ->
                     Term.mk_or (List.mapi (fun j y -> if i = j then x' else y) ts))
                   (shrink_term x))
               ts)
    | Term.Not a -> a :: rebuild1 Term.mk_not a
    | Term.Imp (a, b) ->
        [ b; Term.mk_not a ]
        @ rebuild1 (fun a' -> Term.mk_imp a' b) a
        @ rebuild1 (fun b' -> Term.mk_imp a b') b
    | Term.Iff (a, b) ->
        [ a; b ]
        @ rebuild1 (fun a' -> Term.mk_iff a' b) a
        @ rebuild1 (fun b' -> Term.mk_iff a b') b
    | Term.Ite (c, a, b) ->
        [ a; b ]
        @ rebuild1 (fun c' -> Term.ite c' a b) c
        @ rebuild1 (fun a' -> Term.ite c a' b) a
        @ rebuild1 (fun b' -> Term.ite c a b') b
    | Term.Real _ | Term.App _ -> []
  in
  List.filter (same_sort t) raw

let minimize_term ~(budget : int) (fails : Term.t -> bool) (t : Term.t) :
    Term.t =
  minimize ~budget fails shrink_term t

(* ------------------------------------------------------------------ *)
(* Horn clause systems                                                 *)
(* ------------------------------------------------------------------ *)

(** One-step reductions of a clause set: drop a clause, drop a
    hypothesis, or shrink a concrete predicate. κ declarations are left
    alone — unused κs are harmless. *)
let shrink_clauses (clauses : Horn.clause list) : Horn.clause list list =
  let drop =
    List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) clauses) clauses
  in
  let in_clause =
    List.concat
      (List.mapi
         (fun i (cl : Horn.clause) ->
           let drop_hyp =
             List.mapi
               (fun h _ ->
                 { cl with Horn.hyps = List.filteri (fun j _ -> j <> h) cl.Horn.hyps })
               cl.Horn.hyps
           in
           let shrink_conc =
             List.concat
               (List.mapi
                  (fun h p ->
                    match p with
                    | Horn.Conc t ->
                        List.map
                          (fun t' ->
                            {
                              cl with
                              Horn.hyps =
                                List.mapi
                                  (fun j q -> if h = j then Horn.Conc t' else q)
                                  cl.Horn.hyps;
                            })
                          (shrink_term t)
                    | Horn.Kapp _ -> [])
                  cl.Horn.hyps)
           in
           let shrink_head =
             match cl.Horn.head with
             | Horn.Conc t ->
                 List.map (fun t' -> { cl with Horn.head = Horn.Conc t' }) (shrink_term t)
             | Horn.Kapp _ -> []
           in
           List.map
             (fun cl' -> List.mapi (fun j c -> if i = j then cl' else c) clauses)
             (drop_hyp @ shrink_conc @ shrink_head))
         clauses)
  in
  drop @ in_clause

let minimize_clauses ~(budget : int) (fails : Horn.clause list -> bool)
    (clauses : Horn.clause list) : Horn.clause list =
  minimize ~budget fails shrink_clauses clauses
