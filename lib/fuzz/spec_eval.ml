(** Concrete evaluation of refinement specifications on runtime values.

    The soundness oracle may only run a verified function on inputs
    that satisfy its precondition, and must check the result against
    its declared return refinement. Both sides are decided here, on the
    {e parsed} specification — not on generator-side metadata — so they
    keep working as the shrinker rewrites the program.

    Everything is three-valued: [Some true] / [Some false] when the
    specification fragment is in the evaluable subset (integer/boolean
    arithmetic, binders, vector lengths), [None] when it is not
    (floats, [old], quantifiers, struct measures). The oracle treats
    [None] conservatively — it skips the input or the check — so an
    unsupported construct can never manufacture a false positive. *)

module Ast = Flux_syntax.Ast
module Interp = Flux_interp.Interp

type env = (string * Interp.value) list

let rec strip_ref (v : Interp.value) : Interp.value =
  match v with
  | Interp.VRefCell c -> strip_ref !c
  | Interp.VRefElem (vec, i) ->
      if i < 0 || i >= vec.Interp.len then v else strip_ref vec.Interp.items.(i)
  | v -> v

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval_expr (env : env) (e : Ast.expr) : Interp.value option =
  let open Interp in
  let int2 a b f =
    match (eval_expr env a, eval_expr env b) with
    | Some (VInt x), Some (VInt y) -> f x y
    | _ -> None
  in
  let bool2 a b f =
    match (eval_expr env a, eval_expr env b) with
    | Some (VBool x), Some (VBool y) -> Some (VBool (f x y))
    | _ -> None
  in
  match e.Ast.e with
  | Ast.EInt n -> Some (VInt n)
  | Ast.EBool b -> Some (VBool b)
  | Ast.EUnit -> Some VUnit
  | Ast.EFloat _ -> None
  | Ast.EVar x -> Option.map strip_ref (List.assoc_opt x env)
  | Ast.EUn (Ast.NegOp, a) -> (
      match eval_expr env a with
      | Some (VInt x) -> Some (VInt (-x))
      | _ -> None)
  | Ast.EUn (Ast.Not, a) -> (
      match eval_expr env a with
      | Some (VBool b) -> Some (VBool (not b))
      | _ -> None)
  | Ast.EBin (op, a, b) -> (
      match op with
      | Ast.Add -> int2 a b (fun x y -> Some (VInt (x + y)))
      | Ast.Sub -> int2 a b (fun x y -> Some (VInt (x - y)))
      | Ast.Mul -> int2 a b (fun x y -> Some (VInt (x * y)))
      | Ast.Div -> int2 a b (fun x y -> if y = 0 then None else Some (VInt (x / y)))
      | Ast.Rem ->
          int2 a b (fun x y -> if y = 0 then None else Some (VInt (x mod y)))
      | Ast.Lt -> int2 a b (fun x y -> Some (VBool (x < y)))
      | Ast.Le -> int2 a b (fun x y -> Some (VBool (x <= y)))
      | Ast.Gt -> int2 a b (fun x y -> Some (VBool (x > y)))
      | Ast.Ge -> int2 a b (fun x y -> Some (VBool (x >= y)))
      | Ast.EqOp -> (
          match (eval_expr env a, eval_expr env b) with
          | Some (VInt x), Some (VInt y) -> Some (VBool (x = y))
          | Some (VBool x), Some (VBool y) -> Some (VBool (x = y))
          | _ -> None)
      | Ast.NeOp -> (
          match (eval_expr env a, eval_expr env b) with
          | Some (VInt x), Some (VInt y) -> Some (VBool (x <> y))
          | Some (VBool x), Some (VBool y) -> Some (VBool (x <> y))
          | _ -> None)
      | Ast.AndOp -> bool2 a b ( && )
      | Ast.OrOp -> bool2 a b ( || )
      | Ast.ImpOp -> bool2 a b (fun x y -> (not x) || y))
  | Ast.EMethod (recv, "len", []) -> (
      match Option.map strip_ref (eval_expr env recv) with
      | Some (VVec v) -> Some (VInt v.Interp.len)
      | _ -> None)
  | Ast.EDeref a -> Option.map strip_ref (eval_expr env a)
  | Ast.EIf (c, t, f) -> (
      match eval_expr env c with
      | Some (VBool true) -> eval_block env t
      | Some (VBool false) -> Option.bind f (eval_block env)
      | _ -> None)
  | Ast.EBlock b -> eval_block env b
  | _ -> None (* calls, structs, forall, old, result: not evaluable here *)

and eval_block env (b : Ast.block) =
  match (b.Ast.stmts, b.Ast.tail) with
  | [], Some e -> eval_expr env e
  | _ -> None

let eval_pred env (e : Ast.expr) : bool option =
  match eval_expr env e with Some (Interp.VBool b) -> Some b | _ -> None

(* ------------------------------------------------------------------ *)
(* Binding signature binders against argument values                   *)
(* ------------------------------------------------------------------ *)

(** Walking one argument type against its runtime value produces new
    binder bindings plus deferred constraints (index equations and
    existential predicates), evaluated once every binder is bound. *)
type walk = {
  mutable binds : env;
  mutable constraints : (env -> bool option) list;
  mutable unknown : bool;
}

let rec walk_rty (w : walk) (t : Ast.rty) (v : Interp.value) : unit =
  match t with
  | Ast.RRef (_, t') -> walk_rty w t' (strip_ref v)
  | Ast.RBase (base, idxs) -> walk_base w base idxs v
  | Ast.RExists (x, base, p) ->
      (match index_value base v with
      | Some iv ->
          w.constraints <-
            (fun env -> eval_pred ((x, iv) :: env) p) :: w.constraints
      | None -> w.unknown <- true);
      (* the element type of an existential RVec must still be scanned *)
      walk_elt w base
  | Ast.RFn _ -> w.unknown <- true

(** The index a base type is refined by: the value itself for
    integers/booleans, the length for vectors. *)
and index_value (base : Ast.rbase) (v : Interp.value) : Interp.value option =
  match (base, strip_ref v) with
  | Ast.RBInt _, Interp.VInt n -> Some (Interp.VInt n)
  | Ast.RBBool, Interp.VBool b -> Some (Interp.VBool b)
  | Ast.RBVec _, Interp.VVec vec -> Some (Interp.VInt vec.Interp.len)
  | _ -> None

and walk_elt (w : walk) (base : Ast.rbase) : unit =
  match base with
  | Ast.RBVec (Ast.RBase (_, [])) -> ()
  | Ast.RBVec _ -> w.unknown <- true (* refined elements: not sampled *)
  | _ -> ()

and walk_base (w : walk) (base : Ast.rbase) (idxs : Ast.index list)
    (v : Interp.value) : unit =
  walk_elt w base;
  match idxs with
  | [] -> ()
  | [ idx ] -> (
      match index_value base v with
      | None -> w.unknown <- true
      | Some iv -> (
          match idx with
          | Ast.IxBinder n -> w.binds <- (n, iv) :: w.binds
          | Ast.IxExpr e ->
              w.constraints <-
                (fun env ->
                  match (eval_expr env e, iv) with
                  | Some (Interp.VInt x), Interp.VInt y -> Some (x = y)
                  | Some (Interp.VBool x), Interp.VBool y -> Some (x = y)
                  | _ -> None)
                :: w.constraints))
  | _ -> w.unknown <- true (* multi-index structs: not sampled *)

(** All-of over three-valued conjuncts: [Some false] dominates [None]
    (a definitely-violated precondition is decisive even if another
    conjunct is unsupported). *)
let conj3 (xs : bool option list) : bool option =
  if List.exists (fun x -> x = Some false) xs then Some false
  else if List.exists (fun x -> x = None) xs then None
  else Some true

(** Does [fd]'s precondition (signature binders/refinements, [requires]
    clauses of both spec styles) hold on [args]? *)
let precond_holds (fd : Ast.fn_def) (args : Interp.value list) : bool option =
  let w = { binds = []; constraints = []; unknown = false } in
  (match fd.Ast.fn_sig with
  | Some fs when List.length fs.Ast.fs_args = List.length args ->
      List.iter2 (walk_rty w) fs.Ast.fs_args args
  | Some _ -> w.unknown <- true
  | None -> ());
  let param_env =
    try List.map2 (fun (x, _) v -> (x, v)) fd.Ast.fn_params args
    with Invalid_argument _ -> []
  in
  let env = w.binds @ param_env in
  let sig_reqs =
    match fd.Ast.fn_sig with
    | Some fs -> List.map (eval_pred env) fs.Ast.fs_requires
    | None -> []
  in
  let contract_reqs =
    List.map (eval_pred env) fd.Ast.fn_contract.Ast.c_requires
  in
  let constraints = List.map (fun f -> f env) w.constraints in
  let verdicts = constraints @ sig_reqs @ contract_reqs in
  if w.unknown then
    if List.exists (fun x -> x = Some false) verdicts then Some false else None
  else conj3 verdicts

(** Does the declared return refinement hold of [result]? ([None] when
    the return type carries no evaluable refinement — including always
    for contract [ensures], which may mention [old].) *)
let postcond_holds (fd : Ast.fn_def) (args : Interp.value list)
    (result : Interp.value) : bool option =
  match fd.Ast.fn_sig with
  | None -> None
  | Some fs -> (
      let w = { binds = []; constraints = []; unknown = false } in
      if List.length fs.Ast.fs_args = List.length args then
        List.iter2 (walk_rty w) fs.Ast.fs_args args
      else w.unknown <- true;
      let env = w.binds in
      match fs.Ast.fs_ret with
      | Ast.RBase (_, []) -> None
      | Ast.RBase (base, [ Ast.IxExpr e ]) -> (
          if w.unknown then None
          else
            match (eval_expr env e, index_value base result) with
            | Some (Interp.VInt x), Some (Interp.VInt y) -> Some (x = y)
            | Some (Interp.VBool x), Some (Interp.VBool y) -> Some (x = y)
            | _ -> None)
      | Ast.RExists (x, base, p) -> (
          if w.unknown then None
          else
            match index_value base result with
            | Some iv -> eval_pred ((x, iv) :: env) p
            | None -> None)
      | _ -> None)
